// Quickstart: the smallest end-to-end use of the library.
//
// 1. Describe an overlay (data centers + session endpoints).
// 2. Ask the optimizer where to put coding VNFs and how to route.
// 3. Instantiate the session on the simulated network and run it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "ctrl/problem.hpp"
#include "graph/topology.hpp"

using namespace ncfn;

int main() {
  // --- 1. A tiny overlay: source -> two relay DCs -> two receivers. ---
  graph::Topology topo;
  graph::NodeInfo host;
  host.kind = graph::NodeKind::kHost;
  host.name = "source";
  const auto source = topo.add_node(host);
  host.name = "receiver-1";
  const auto rx1 = topo.add_node(host);
  host.name = "receiver-2";
  const auto rx2 = topo.add_node(host);

  graph::NodeInfo dc;
  dc.kind = graph::NodeKind::kDataCenter;
  dc.bin_bps = dc.bout_bps = dc.vnf_capacity_bps = 100e6;
  dc.name = "dc-east";
  const auto east = topo.add_node(dc);
  dc.name = "dc-west";
  const auto west = topo.add_node(dc);

  // Directed links: (from, to, one-way delay seconds, capacity bps).
  topo.add_edge(source, east, 0.010, 50e6);
  topo.add_edge(source, west, 0.012, 50e6);
  topo.add_edge(east, west, 0.008, 30e6);
  topo.add_edge(west, east, 0.008, 30e6);
  topo.add_edge(east, rx1, 0.009, 60e6);
  topo.add_edge(west, rx2, 0.011, 60e6);
  topo.add_edge(east, rx2, 0.020, 20e6);
  topo.add_edge(west, rx1, 0.020, 20e6);
  // Return paths for acknowledgements / repair requests.
  topo.add_edge(rx1, source, 0.020, 10e6);
  topo.add_edge(rx2, source, 0.022, 10e6);

  // --- 2. Solve deployment + routing (optimization (2)). ---
  ctrl::SessionSpec session;
  session.id = 1;
  session.source = source;
  session.receivers = {rx1, rx2};
  session.lmax_s = 0.100;  // 100 ms end-to-end budget

  ctrl::DeploymentProblem problem;
  problem.topo = &topo;
  problem.sessions = {session};
  problem.alpha = 5.0;  // cost of one VNF, in Mbps-equivalents

  const ctrl::DeploymentPlan plan = ctrl::solve_deployment(problem);
  if (!plan.feasible) {
    std::printf("no feasible deployment\n");
    return 1;
  }
  std::printf("planned multicast rate: %.1f Mbps with %d VNFs\n",
              plan.lambda_mbps[0], plan.total_vnfs());
  for (const auto& [v, n] : plan.vnf_count) {
    std::printf("  %d coding VNF(s) at %s\n", n, topo.node(v).name.c_str());
  }

  // --- 3. Run it: 8 MB of data through the real GF(2^8) data plane. ---
  coding::CodingParams params;  // 1460-byte blocks, 4 per generation
  app::SyntheticProvider data(/*seed=*/1, 8 * 1000 * 1000, params);

  app::SimNet sim(topo);
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  wiring.redundancy = 1;  // one extra coded packet per generation

  app::NcMulticastSession mc(sim, plan, 0, session, data, wiring);
  mc.receiver(0).set_verify(&data);
  mc.receiver(1).set_verify(&data);
  mc.start();
  sim.net().sim().run_until(30.0);

  for (std::size_t k = 0; k < mc.receiver_count(); ++k) {
    const auto& st = mc.receiver(k).stats();
    std::printf("receiver %zu: %.2f MB decoded, goodput %.1f Mbps, "
                "complete=%s, corrupt bytes=%llu\n",
                k, st.payload_bytes / 1e6, mc.receiver(k).goodput_mbps(),
                mc.receiver(k).complete() ? "yes" : "no",
                static_cast<unsigned long long>(st.verify_failures));
  }
  return 0;
}
