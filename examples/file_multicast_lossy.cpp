// Bulk file distribution over lossy Internet paths — the paper's second
// use case (large file sharing). Shows how per-generation redundancy
// (NC0/NC1/NC2, Sec. V.B.3) trades goodput for robustness: the same 20 MB
// file is pushed through the butterfly with 15% loss on the bottleneck at
// each redundancy level, and we report completion time and repair
// traffic.
#include <cstdio>
#include <memory>

#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "ctrl/problem.hpp"
#include "netsim/loss.hpp"

using namespace ncfn;

int main() {
  const auto b = app::scenarios::butterfly(false);
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions = {spec};
  const auto plan = ctrl::solve_deployment(prob);

  coding::CodingParams params;
  const std::size_t file_bytes = 20 * 1000 * 1000;
  app::SyntheticProvider file(77, file_bytes, params);

  std::printf("20 MB file multicast, 15%% uniform loss on the bottleneck\n\n");
  std::printf("%6s %16s %16s %12s %10s\n", "mode", "completion(s)",
              "goodput(Mbps)", "repair pkts", "corrupt");

  for (int redundancy = 0; redundancy <= 2; ++redundancy) {
    app::SimNet sim(b.topo);
    sim.link(b.bottleneck)
        ->set_loss_model(std::make_unique<netsim::UniformLoss>(0.15));
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.redundancy = redundancy;
    app::NcMulticastSession mc(sim, plan, 0, spec, file, wiring);
    mc.receiver(0).set_verify(&file);
    mc.receiver(1).set_verify(&file);
    mc.start();
    sim.net().sim().run_until(120.0);

    double completion = -1;
    if (mc.all_complete()) {
      completion = 0;
      for (std::size_t k = 0; k < 2; ++k) {
        completion =
            std::max(completion, mc.receiver(k).stats().completed_at);
      }
    }
    std::uint64_t corrupt = 0;
    for (std::size_t k = 0; k < 2; ++k) {
      corrupt += mc.receiver(k).stats().verify_failures;
    }
    std::printf("%5s%d %16.2f %16.2f %12llu %10llu\n", "NC", redundancy,
                completion, mc.session_goodput_mbps(),
                static_cast<unsigned long long>(
                    mc.source().stats().repair_packets_sent),
                static_cast<unsigned long long>(corrupt));
  }
  std::printf("\nNC0 leans on the repair loop (many retransmissions);\n"
              "NC1/NC2 absorb loss with proactive redundancy instead\n");
  return 0;
}
