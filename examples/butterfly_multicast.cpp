// The paper's showcase scenario (Sec. V.B): a file multicast over the
// classic butterfly with coding VNFs at four data centers, compared
// against routing-only relays on the same topology.
//
// Prints the theoretical bound (Ford–Fulkerson), the coded and
// routing-only goodput, per-relay coding statistics, and verifies every
// decoded byte.
#include <cstdio>

#include "app/baseline.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "ctrl/problem.hpp"
#include "graph/maxflow.hpp"

using namespace ncfn;

int main() {
  const auto b = app::scenarios::butterfly(false);
  const double bound =
      graph::multicast_capacity(b.topo, b.source, {b.recv_o2, b.recv_c2}) /
      1e6;
  std::printf("butterfly multicast, 2 receivers\n");
  std::printf("theoretical coded capacity (min cut): %.1f Mbps\n\n", bound);

  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;

  // --- Coded run ---
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions = {spec};
  const auto plan = ctrl::solve_deployment(prob);

  coding::CodingParams params;
  const std::size_t file_bytes = 40 * 1000 * 1000;  // 40 MB file
  app::SyntheticProvider file(123, file_bytes, params);

  double coded_goodput = 0;
  {
    app::SimNet sim(b.topo);
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    app::NcMulticastSession mc(sim, plan, 0, spec, file, wiring);
    mc.receiver(0).set_verify(&file);
    mc.receiver(1).set_verify(&file);
    mc.start();
    sim.net().sim().run_until(60.0);
    coded_goodput = mc.session_goodput_mbps();
    std::printf("with network coding VNFs:\n");
    for (std::size_t k = 0; k < 2; ++k) {
      const auto& st = mc.receiver(k).stats();
      std::printf("  receiver %zu: %.1f Mbps, %llu generations, complete=%s, "
                  "corrupt=%llu\n",
                  k, mc.receiver(k).goodput_mbps(),
                  static_cast<unsigned long long>(st.generations_decoded),
                  mc.receiver(k).complete() ? "yes" : "no",
                  static_cast<unsigned long long>(st.verify_failures));
    }
    for (const graph::NodeIdx v : {b.o1, b.c1, b.t, b.v2}) {
      if (const auto* relay = sim.find_vnf(v)) {
        const auto& s = relay->stats(1);
        std::printf("  relay %-14s in=%llu out=%llu innovative=%.1f%%\n",
                    b.topo.node(v).name.c_str(),
                    static_cast<unsigned long long>(s.received),
                    static_cast<unsigned long long>(s.emitted),
                    100.0 * s.innovative / std::max<std::uint64_t>(1, s.received));
      }
    }
  }

  // --- Routing-only run on the same relays ---
  const auto packing = app::pack_trees(b.topo, b.source,
                                       {b.recv_o2, b.recv_c2}, spec.lmax_s);
  double routed_goodput = 0;
  {
    app::SimNet sim(b.topo);
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    app::TreeMulticastSession mc(sim, packing, spec, file, wiring);
    mc.start();
    sim.net().sim().run_until(60.0);
    routed_goodput = mc.session_goodput_mbps();
  }
  std::printf("\nrouting-only (tree packing %.1f Mbps planned): measured %.1f Mbps\n",
              packing.total_rate_mbps, routed_goodput);
  std::printf("coding gain over routing: %.0f%%\n",
              (coded_goodput / routed_goodput - 1) * 100);
  return 0;
}
