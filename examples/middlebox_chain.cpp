// Service chaining with the modular middlebox framework — the paper's
// Sec. VI direction: the same NFV substrate that hosts coding functions
// can host other per-packet functions once the coding modules are
// swapped out.
//
// Chain: source -> [checksum tag + RLE compress] --WAN link-->
//        [RLE decompress + checksum verify] -> sink.
// The WAN link is slow and lossy; the compressor shrinks what crosses it
// and the verifier guarantees nothing corrupt reaches the application.
#include <cstdio>
#include <memory>
#include <random>

#include "netsim/loss.hpp"
#include "netsim/network.hpp"
#include "vnf/function.hpp"
#include "vnf/middlebox.hpp"

using namespace ncfn;

int main() {
  netsim::Network net(7);
  const auto src = net.add_node("branch-office");
  const auto egress = net.add_node("egress-middlebox");
  const auto ingress = net.add_node("ingress-middlebox");
  const auto sink = net.add_node("datacenter-app");

  netsim::LinkConfig lan;
  lan.capacity_bps = 1e9;
  lan.prop_delay = 0.0005;
  net.add_link(src, egress, lan);
  net.add_link(ingress, sink, lan);

  netsim::LinkConfig wan;
  wan.capacity_bps = 10e6;  // the scarce WAN uplink
  wan.prop_delay = 0.040;
  net.add_link(egress, ingress, wan);

  vnf::MiddleboxConfig cfg;
  vnf::MiddleboxVnf out_box(net, egress, cfg);
  out_box.add_function(std::make_unique<vnf::ChecksumTagFunction>());
  out_box.add_function(std::make_unique<vnf::RleCompressFunction>());
  out_box.set_next_hops({ctrl::NextHop{ingress, cfg.port}});

  vnf::MiddleboxVnf in_box(net, ingress, cfg);
  in_box.add_function(std::make_unique<vnf::RleDecompressFunction>());
  in_box.add_function(std::make_unique<vnf::ChecksumVerifyFunction>());
  in_box.set_next_hops({ctrl::NextHop{sink, 9000}});

  // Telemetry-style payloads: long zero runs, very compressible.
  std::mt19937 rng(3);
  std::size_t sent_bytes = 0, delivered_bytes = 0;
  int delivered = 0;
  net.bind(sink, 9000, [&](const netsim::Datagram& d) {
    ++delivered;
    delivered_bytes += d.payload.size();
  });

  const int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) {
    // Pace the telemetry stream (one packet per 0.5 ms ~ 19 Mbps offered).
    net.sim().schedule(i * 0.0005, [&, i] {
      std::vector<std::uint8_t> payload(1200, 0);
      for (int j = 0; j < 40; ++j) {
        payload[rng() % payload.size()] = static_cast<std::uint8_t>(rng());
      }
      sent_bytes += payload.size();
      netsim::Datagram d;
      d.src = src;
      d.dst = egress;
      d.dst_port = cfg.port;
      d.payload = std::move(payload);
      net.send(std::move(d));
    });
  }
  net.sim().run();

  const auto& wan_stats = net.link(egress, ingress)->stats();
  std::printf("sent:             %d packets, %.1f KB application data\n",
              kPackets, sent_bytes / 1e3);
  std::printf("across the WAN:   %.1f KB (%.1fx compression)\n",
              wan_stats.bytes_delivered / 1e3,
              static_cast<double>(sent_bytes) / wan_stats.bytes_delivered);
  std::printf("delivered:        %d packets, %.1f KB, all checksum-verified\n",
              delivered, delivered_bytes / 1e3);
  std::printf("transfer finished at t=%.3f s (would be ~%.3f s uncompressed)\n",
              net.sim().now(),
              sent_bytes * 8.0 / wan.capacity_bps + wan.prop_delay);
  return 0;
}
