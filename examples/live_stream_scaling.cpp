// Live-streaming service with dynamic VNF scaling — the paper's intro
// use case: a video service provider hosts fixed-rate multicast sessions
// (live streams must hit their bitrate exactly; the optimizer only picks
// the cheapest routing and deployment). Streams come and go; the
// controller scales coding VNFs out and in, reusing drained VMs when a
// stream returns within the tau grace window.
#include <algorithm>
#include <cstdio>
#include <random>

#include "app/scenarios.hpp"
#include "ctrl/controller.hpp"

using namespace ncfn;

int main() {
  const auto net = app::scenarios::six_datacenters();
  ctrl::Controller::Config cfg;
  cfg.alpha = 20.0;
  cfg.tau_s = 300.0;  // 5-minute grace before an idle VNF VM shuts down
  ctrl::Controller ctl(net.topo, cfg);

  std::mt19937 rng(2024);
  auto stream = [&](coding::SessionId id, double rate_mbps) {
    auto spec = app::scenarios::random_session(net, id, rng);
    spec.fixed_rate_mbps = rate_mbps;  // live stream: exact bitrate
    return spec;
  };

  std::printf("%8s %-34s %14s %7s %9s\n", "t(min)", "event", "total(Mbps)",
              "#VNFs", "launches");
  auto report = [&](int minute, const std::string& event) {
    std::printf("%8d %-34s %14.1f %7d %9d\n", minute, event.c_str(),
                ctl.total_throughput_mbps(), ctl.alive_vnfs(),
                ctl.vm_launches());
  };

  // A 4K event stream, two HD streams, then churn.
  ctl.add_session(stream(1, 25.0), 0);
  report(0, "4K stream 1 starts (25 Mbps)");
  ctl.add_session(stream(2, 8.0), 60);
  report(1, "HD stream 2 starts (8 Mbps)");
  ctl.add_session(stream(3, 8.0), 120);
  report(2, "HD stream 3 starts (8 Mbps)");

  ctl.remove_session(2, 600);
  ctl.tick(600);
  report(10, "stream 2 ends (VNFs drain for 5 min)");

  // Stream 4 arrives inside the grace window; if its demand lands on DCs
  // with draining VMs they are reused instead of launching fresh ones.
  ctl.add_session(stream(4, 8.0), 720);
  ctl.tick(720);
  report(12, "stream 4 starts");
  std::printf("%8s draining VMs reused so far: %d\n", "", ctl.vm_reuses());

  // A popular stream adds receivers mid-broadcast.
  const auto& s1 = ctl.sessions().front();
  for (graph::NodeIdx h : net.hosts) {
    if (h != s1.source &&
        std::find(s1.receivers.begin(), s1.receivers.end(), h) ==
            s1.receivers.end()) {
      if (ctl.add_receiver(1, h, 900)) break;
    }
  }
  ctl.tick(900);
  report(15, "new receiver joins the 4K stream");

  // Everything winds down.
  ctl.remove_session(1, 1800);
  ctl.remove_session(3, 1800);
  ctl.remove_session(4, 1800);
  ctl.tick(1800);
  report(30, "all streams end");
  ctl.tick(1800 + 301);
  report(35, "grace window over, VMs reclaimed");

  std::printf("\ncontrol-plane signals emitted: %zu\n",
              ctl.signal_log().size());
  return 0;
}
