# Empty dependencies file for bench_fig08_uniform_loss.
# This may be replaced when dependencies are built.
