# Empty dependencies file for bench_ablation_quantize.
# This may be replaced when dependencies are built.
