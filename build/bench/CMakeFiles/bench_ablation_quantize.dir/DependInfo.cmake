
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_quantize.cpp" "bench/CMakeFiles/bench_ablation_quantize.dir/bench_ablation_quantize.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_quantize.dir/bench_ablation_quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/ncfn_app.dir/DependInfo.cmake"
  "/root/repo/build/src/vnf/CMakeFiles/ncfn_vnf.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/ncfn_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ncfn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ncfn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/ncfn_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ncfn_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ncfn_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
