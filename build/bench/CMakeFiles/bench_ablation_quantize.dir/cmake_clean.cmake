file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quantize.dir/bench_ablation_quantize.cpp.o"
  "CMakeFiles/bench_ablation_quantize.dir/bench_ablation_quantize.cpp.o.d"
  "bench_ablation_quantize"
  "bench_ablation_quantize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
