file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lanes.dir/bench_ablation_lanes.cpp.o"
  "CMakeFiles/bench_ablation_lanes.dir/bench_ablation_lanes.cpp.o.d"
  "bench_ablation_lanes"
  "bench_ablation_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
