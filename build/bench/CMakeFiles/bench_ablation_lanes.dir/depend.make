# Empty dependencies file for bench_ablation_lanes.
# This may be replaced when dependencies are built.
