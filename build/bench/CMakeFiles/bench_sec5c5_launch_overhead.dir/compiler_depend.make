# Empty compiler generated dependencies file for bench_sec5c5_launch_overhead.
# This may be replaced when dependencies are built.
