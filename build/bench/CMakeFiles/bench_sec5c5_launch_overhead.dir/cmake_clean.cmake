file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5c5_launch_overhead.dir/bench_sec5c5_launch_overhead.cpp.o"
  "CMakeFiles/bench_sec5c5_launch_overhead.dir/bench_sec5c5_launch_overhead.cpp.o.d"
  "bench_sec5c5_launch_overhead"
  "bench_sec5c5_launch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5c5_launch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
