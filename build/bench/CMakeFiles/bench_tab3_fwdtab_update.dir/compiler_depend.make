# Empty compiler generated dependencies file for bench_tab3_fwdtab_update.
# This may be replaced when dependencies are built.
