file(REMOVE_RECURSE
  "CMakeFiles/bench_tab3_fwdtab_update.dir/bench_tab3_fwdtab_update.cpp.o"
  "CMakeFiles/bench_tab3_fwdtab_update.dir/bench_tab3_fwdtab_update.cpp.o.d"
  "bench_tab3_fwdtab_update"
  "bench_tab3_fwdtab_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_fwdtab_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
