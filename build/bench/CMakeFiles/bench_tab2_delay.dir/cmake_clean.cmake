file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_delay.dir/bench_tab2_delay.cpp.o"
  "CMakeFiles/bench_tab2_delay.dir/bench_tab2_delay.cpp.o.d"
  "bench_tab2_delay"
  "bench_tab2_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
