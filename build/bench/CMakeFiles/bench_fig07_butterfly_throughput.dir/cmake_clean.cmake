file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_butterfly_throughput.dir/bench_fig07_butterfly_throughput.cpp.o"
  "CMakeFiles/bench_fig07_butterfly_throughput.dir/bench_fig07_butterfly_throughput.cpp.o.d"
  "bench_fig07_butterfly_throughput"
  "bench_fig07_butterfly_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_butterfly_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
