# Empty compiler generated dependencies file for bench_fig09_burst_loss.
# This may be replaced when dependencies are built.
