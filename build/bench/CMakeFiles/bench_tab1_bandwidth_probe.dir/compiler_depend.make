# Empty compiler generated dependencies file for bench_tab1_bandwidth_probe.
# This may be replaced when dependencies are built.
