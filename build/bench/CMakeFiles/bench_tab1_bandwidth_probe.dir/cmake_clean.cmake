file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_bandwidth_probe.dir/bench_tab1_bandwidth_probe.cpp.o"
  "CMakeFiles/bench_tab1_bandwidth_probe.dir/bench_tab1_bandwidth_probe.cpp.o.d"
  "bench_tab1_bandwidth_probe"
  "bench_tab1_bandwidth_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_bandwidth_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
