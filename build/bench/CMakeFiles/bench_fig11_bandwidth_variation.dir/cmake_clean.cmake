file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bandwidth_variation.dir/bench_fig11_bandwidth_variation.cpp.o"
  "CMakeFiles/bench_fig11_bandwidth_variation.dir/bench_fig11_bandwidth_variation.cpp.o.d"
  "bench_fig11_bandwidth_variation"
  "bench_fig11_bandwidth_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bandwidth_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
