file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_generation_size.dir/bench_fig04_generation_size.cpp.o"
  "CMakeFiles/bench_fig04_generation_size.dir/bench_fig04_generation_size.cpp.o.d"
  "bench_fig04_generation_size"
  "bench_fig04_generation_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_generation_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
