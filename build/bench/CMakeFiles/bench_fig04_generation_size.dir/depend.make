# Empty dependencies file for bench_fig04_generation_size.
# This may be replaced when dependencies are built.
