file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dynamic_sessions.dir/bench_fig10_dynamic_sessions.cpp.o"
  "CMakeFiles/bench_fig10_dynamic_sessions.dir/bench_fig10_dynamic_sessions.cpp.o.d"
  "bench_fig10_dynamic_sessions"
  "bench_fig10_dynamic_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dynamic_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
