# Empty dependencies file for bench_fig10_dynamic_sessions.
# This may be replaced when dependencies are built.
