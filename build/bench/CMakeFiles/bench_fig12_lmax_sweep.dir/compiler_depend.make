# Empty compiler generated dependencies file for bench_fig12_lmax_sweep.
# This may be replaced when dependencies are built.
