# Empty compiler generated dependencies file for ncfn-plan.
# This may be replaced when dependencies are built.
