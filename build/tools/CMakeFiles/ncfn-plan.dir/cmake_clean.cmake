file(REMOVE_RECURSE
  "CMakeFiles/ncfn-plan.dir/ncfn-plan.cpp.o"
  "CMakeFiles/ncfn-plan.dir/ncfn-plan.cpp.o.d"
  "ncfn-plan"
  "ncfn-plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn-plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
