file(REMOVE_RECURSE
  "CMakeFiles/ncfn-run.dir/ncfn-run.cpp.o"
  "CMakeFiles/ncfn-run.dir/ncfn-run.cpp.o.d"
  "ncfn-run"
  "ncfn-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
