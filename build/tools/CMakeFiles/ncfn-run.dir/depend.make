# Empty dependencies file for ncfn-run.
# This may be replaced when dependencies are built.
