# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_gf[1]_include.cmake")
include("/root/repo/build/tests/test_coding[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_lp[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_ctrl[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_vnf[1]_include.cmake")
include("/root/repo/build/tests/test_app[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_orchestrator[1]_include.cmake")
include("/root/repo/build/tests/test_schedule[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_quantize[1]_include.cmake")
include("/root/repo/build/tests/test_middlebox[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
