# Empty dependencies file for ncfn_app.
# This may be replaced when dependencies are built.
