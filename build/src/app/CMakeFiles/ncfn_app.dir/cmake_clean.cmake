file(REMOVE_RECURSE
  "CMakeFiles/ncfn_app.dir/baseline.cpp.o"
  "CMakeFiles/ncfn_app.dir/baseline.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/config.cpp.o"
  "CMakeFiles/ncfn_app.dir/config.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/orchestrator.cpp.o"
  "CMakeFiles/ncfn_app.dir/orchestrator.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/provider.cpp.o"
  "CMakeFiles/ncfn_app.dir/provider.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/receiver.cpp.o"
  "CMakeFiles/ncfn_app.dir/receiver.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/runtime.cpp.o"
  "CMakeFiles/ncfn_app.dir/runtime.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/scenarios.cpp.o"
  "CMakeFiles/ncfn_app.dir/scenarios.cpp.o.d"
  "CMakeFiles/ncfn_app.dir/source.cpp.o"
  "CMakeFiles/ncfn_app.dir/source.cpp.o.d"
  "libncfn_app.a"
  "libncfn_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
