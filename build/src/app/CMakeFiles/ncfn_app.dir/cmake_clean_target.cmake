file(REMOVE_RECURSE
  "libncfn_app.a"
)
