file(REMOVE_RECURSE
  "CMakeFiles/ncfn_vnf.dir/coding_vnf.cpp.o"
  "CMakeFiles/ncfn_vnf.dir/coding_vnf.cpp.o.d"
  "CMakeFiles/ncfn_vnf.dir/daemon.cpp.o"
  "CMakeFiles/ncfn_vnf.dir/daemon.cpp.o.d"
  "CMakeFiles/ncfn_vnf.dir/function.cpp.o"
  "CMakeFiles/ncfn_vnf.dir/function.cpp.o.d"
  "CMakeFiles/ncfn_vnf.dir/middlebox.cpp.o"
  "CMakeFiles/ncfn_vnf.dir/middlebox.cpp.o.d"
  "libncfn_vnf.a"
  "libncfn_vnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_vnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
