# Empty compiler generated dependencies file for ncfn_vnf.
# This may be replaced when dependencies are built.
