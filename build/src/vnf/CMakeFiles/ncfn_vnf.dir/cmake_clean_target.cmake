file(REMOVE_RECURSE
  "libncfn_vnf.a"
)
