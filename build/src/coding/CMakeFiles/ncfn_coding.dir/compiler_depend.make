# Empty compiler generated dependencies file for ncfn_coding.
# This may be replaced when dependencies are built.
