file(REMOVE_RECURSE
  "libncfn_coding.a"
)
