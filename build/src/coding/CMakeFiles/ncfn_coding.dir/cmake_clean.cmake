file(REMOVE_RECURSE
  "CMakeFiles/ncfn_coding.dir/buffer.cpp.o"
  "CMakeFiles/ncfn_coding.dir/buffer.cpp.o.d"
  "CMakeFiles/ncfn_coding.dir/decoder.cpp.o"
  "CMakeFiles/ncfn_coding.dir/decoder.cpp.o.d"
  "CMakeFiles/ncfn_coding.dir/encoder.cpp.o"
  "CMakeFiles/ncfn_coding.dir/encoder.cpp.o.d"
  "CMakeFiles/ncfn_coding.dir/generation.cpp.o"
  "CMakeFiles/ncfn_coding.dir/generation.cpp.o.d"
  "CMakeFiles/ncfn_coding.dir/packet.cpp.o"
  "CMakeFiles/ncfn_coding.dir/packet.cpp.o.d"
  "libncfn_coding.a"
  "libncfn_coding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_coding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
