file(REMOVE_RECURSE
  "libncfn_lp.a"
)
