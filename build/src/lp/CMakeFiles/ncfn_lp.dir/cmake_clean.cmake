file(REMOVE_RECURSE
  "CMakeFiles/ncfn_lp.dir/simplex.cpp.o"
  "CMakeFiles/ncfn_lp.dir/simplex.cpp.o.d"
  "libncfn_lp.a"
  "libncfn_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
