# Empty dependencies file for ncfn_lp.
# This may be replaced when dependencies are built.
