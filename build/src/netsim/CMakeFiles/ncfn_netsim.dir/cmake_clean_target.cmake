file(REMOVE_RECURSE
  "libncfn_netsim.a"
)
