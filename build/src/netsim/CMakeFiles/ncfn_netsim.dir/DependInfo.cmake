
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/network.cpp" "src/netsim/CMakeFiles/ncfn_netsim.dir/network.cpp.o" "gcc" "src/netsim/CMakeFiles/ncfn_netsim.dir/network.cpp.o.d"
  "/root/repo/src/netsim/schedule.cpp" "src/netsim/CMakeFiles/ncfn_netsim.dir/schedule.cpp.o" "gcc" "src/netsim/CMakeFiles/ncfn_netsim.dir/schedule.cpp.o.d"
  "/root/repo/src/netsim/sim.cpp" "src/netsim/CMakeFiles/ncfn_netsim.dir/sim.cpp.o" "gcc" "src/netsim/CMakeFiles/ncfn_netsim.dir/sim.cpp.o.d"
  "/root/repo/src/netsim/tcp.cpp" "src/netsim/CMakeFiles/ncfn_netsim.dir/tcp.cpp.o" "gcc" "src/netsim/CMakeFiles/ncfn_netsim.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
