file(REMOVE_RECURSE
  "CMakeFiles/ncfn_netsim.dir/network.cpp.o"
  "CMakeFiles/ncfn_netsim.dir/network.cpp.o.d"
  "CMakeFiles/ncfn_netsim.dir/schedule.cpp.o"
  "CMakeFiles/ncfn_netsim.dir/schedule.cpp.o.d"
  "CMakeFiles/ncfn_netsim.dir/sim.cpp.o"
  "CMakeFiles/ncfn_netsim.dir/sim.cpp.o.d"
  "CMakeFiles/ncfn_netsim.dir/tcp.cpp.o"
  "CMakeFiles/ncfn_netsim.dir/tcp.cpp.o.d"
  "libncfn_netsim.a"
  "libncfn_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
