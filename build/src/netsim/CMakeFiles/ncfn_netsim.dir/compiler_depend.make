# Empty compiler generated dependencies file for ncfn_netsim.
# This may be replaced when dependencies are built.
