file(REMOVE_RECURSE
  "libncfn_graph.a"
)
