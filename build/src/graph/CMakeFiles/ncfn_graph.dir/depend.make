# Empty dependencies file for ncfn_graph.
# This may be replaced when dependencies are built.
