file(REMOVE_RECURSE
  "CMakeFiles/ncfn_graph.dir/maxflow.cpp.o"
  "CMakeFiles/ncfn_graph.dir/maxflow.cpp.o.d"
  "CMakeFiles/ncfn_graph.dir/paths.cpp.o"
  "CMakeFiles/ncfn_graph.dir/paths.cpp.o.d"
  "CMakeFiles/ncfn_graph.dir/topology.cpp.o"
  "CMakeFiles/ncfn_graph.dir/topology.cpp.o.d"
  "libncfn_graph.a"
  "libncfn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
