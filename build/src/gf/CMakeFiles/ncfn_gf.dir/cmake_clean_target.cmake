file(REMOVE_RECURSE
  "libncfn_gf.a"
)
