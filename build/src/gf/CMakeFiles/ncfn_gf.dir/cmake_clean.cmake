file(REMOVE_RECURSE
  "CMakeFiles/ncfn_gf.dir/gf256.cpp.o"
  "CMakeFiles/ncfn_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/ncfn_gf.dir/gf256_simd.cpp.o"
  "CMakeFiles/ncfn_gf.dir/gf256_simd.cpp.o.d"
  "libncfn_gf.a"
  "libncfn_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
