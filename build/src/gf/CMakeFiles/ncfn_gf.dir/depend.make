# Empty dependencies file for ncfn_gf.
# This may be replaced when dependencies are built.
