
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/controller.cpp" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/controller.cpp.o" "gcc" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/controller.cpp.o.d"
  "/root/repo/src/ctrl/fwdtable.cpp" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/fwdtable.cpp.o" "gcc" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/fwdtable.cpp.o.d"
  "/root/repo/src/ctrl/problem.cpp" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/problem.cpp.o" "gcc" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/problem.cpp.o.d"
  "/root/repo/src/ctrl/quantize.cpp" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/quantize.cpp.o" "gcc" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/quantize.cpp.o.d"
  "/root/repo/src/ctrl/signals.cpp" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/signals.cpp.o" "gcc" "src/ctrl/CMakeFiles/ncfn_ctrl.dir/signals.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ncfn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ncfn_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/coding/CMakeFiles/ncfn_coding.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ncfn_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
