file(REMOVE_RECURSE
  "libncfn_ctrl.a"
)
