# Empty compiler generated dependencies file for ncfn_ctrl.
# This may be replaced when dependencies are built.
