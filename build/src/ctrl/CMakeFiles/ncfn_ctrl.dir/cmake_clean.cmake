file(REMOVE_RECURSE
  "CMakeFiles/ncfn_ctrl.dir/controller.cpp.o"
  "CMakeFiles/ncfn_ctrl.dir/controller.cpp.o.d"
  "CMakeFiles/ncfn_ctrl.dir/fwdtable.cpp.o"
  "CMakeFiles/ncfn_ctrl.dir/fwdtable.cpp.o.d"
  "CMakeFiles/ncfn_ctrl.dir/problem.cpp.o"
  "CMakeFiles/ncfn_ctrl.dir/problem.cpp.o.d"
  "CMakeFiles/ncfn_ctrl.dir/quantize.cpp.o"
  "CMakeFiles/ncfn_ctrl.dir/quantize.cpp.o.d"
  "CMakeFiles/ncfn_ctrl.dir/signals.cpp.o"
  "CMakeFiles/ncfn_ctrl.dir/signals.cpp.o.d"
  "libncfn_ctrl.a"
  "libncfn_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ncfn_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
