# Empty dependencies file for butterfly_multicast.
# This may be replaced when dependencies are built.
