file(REMOVE_RECURSE
  "CMakeFiles/butterfly_multicast.dir/butterfly_multicast.cpp.o"
  "CMakeFiles/butterfly_multicast.dir/butterfly_multicast.cpp.o.d"
  "butterfly_multicast"
  "butterfly_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
