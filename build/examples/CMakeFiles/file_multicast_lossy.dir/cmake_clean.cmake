file(REMOVE_RECURSE
  "CMakeFiles/file_multicast_lossy.dir/file_multicast_lossy.cpp.o"
  "CMakeFiles/file_multicast_lossy.dir/file_multicast_lossy.cpp.o.d"
  "file_multicast_lossy"
  "file_multicast_lossy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_multicast_lossy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
