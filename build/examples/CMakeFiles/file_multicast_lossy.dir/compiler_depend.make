# Empty compiler generated dependencies file for file_multicast_lossy.
# This may be replaced when dependencies are built.
