file(REMOVE_RECURSE
  "CMakeFiles/live_stream_scaling.dir/live_stream_scaling.cpp.o"
  "CMakeFiles/live_stream_scaling.dir/live_stream_scaling.cpp.o.d"
  "live_stream_scaling"
  "live_stream_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_stream_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
