# Empty dependencies file for live_stream_scaling.
# This may be replaced when dependencies are built.
