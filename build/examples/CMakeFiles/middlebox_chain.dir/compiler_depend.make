# Empty compiler generated dependencies file for middlebox_chain.
# This may be replaced when dependencies are built.
