file(REMOVE_RECURSE
  "CMakeFiles/middlebox_chain.dir/middlebox_chain.cpp.o"
  "CMakeFiles/middlebox_chain.dir/middlebox_chain.cpp.o.d"
  "middlebox_chain"
  "middlebox_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middlebox_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
