// Unit tests for the discrete-event simulator and the network substrate:
// event ordering, link timing, queueing, loss models, probes.
#include <gtest/gtest.h>

#include <cmath>

#include "netsim/loss.hpp"
#include "netsim/network.hpp"
#include "netsim/sim.hpp"

using namespace ncfn::netsim;

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(5.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule(0.5, recurse);
  };
  sim.schedule(0.5, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, CancelSuppressesEvent) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(1.0, [&] { ++fired; });
  sim.schedule(2.0, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule(1.0, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // must not blow up or affect later events
  sim.schedule(1.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 2);
}

namespace {
Network make_two_node_net(double capacity_bps, double delay_s,
                          std::size_t queue = 512) {
  Network net(1);
  net.add_node("a");
  net.add_node("b");
  LinkConfig lc;
  lc.capacity_bps = capacity_bps;
  lc.prop_delay = delay_s;
  lc.queue_packets = queue;
  net.add_link(0, 1, lc);
  return net;
}

Datagram make_dgram(NodeId src, NodeId dst, Port port, std::size_t bytes) {
  Datagram d;
  d.src = src;
  d.dst = dst;
  d.dst_port = port;
  d.payload.assign(bytes, 0xAB);
  return d;
}
}  // namespace

TEST(Network, DeliversWithSerializationPlusPropagation) {
  Network net = make_two_node_net(8e6, 0.05);  // 8 Mbps, 50 ms
  double arrival = -1;
  net.bind(1, 9, [&](const Datagram&) { arrival = net.sim().now(); });
  // 972-byte payload + 28 overhead = 1000 B = 8000 bits -> 1 ms serialize.
  ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
  net.sim().run();
  EXPECT_NEAR(arrival, 0.051, 1e-9);
}

TEST(Network, BackToBackPacketsQueueBehindSerializer) {
  Network net = make_two_node_net(8e6, 0.0);
  std::vector<double> arrivals;
  net.bind(1, 9, [&](const Datagram&) { arrivals.push_back(net.sim().now()); });
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
  net.sim().run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 0.001, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.002, 1e-9);
  EXPECT_NEAR(arrivals[2], 0.003, 1e-9);
}

TEST(Network, TailDropWhenQueueFull) {
  Network net = make_two_node_net(8e6, 0.0, /*queue=*/2);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.send(make_dgram(0, 1, 9, 972));
  net.sim().run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.link(0, 1)->stats().dropped_queue, 8u);
}

TEST(Network, NoLinkMeansSendFails) {
  Network net = make_two_node_net(8e6, 0.0);
  EXPECT_FALSE(net.send(make_dgram(1, 0, 9, 10)));  // reverse direction
}

TEST(Network, UnboundPortDropsSilently) {
  Network net = make_two_node_net(8e6, 0.0);
  ASSERT_TRUE(net.send(make_dgram(0, 1, 1234, 10)));
  net.sim().run();  // no crash, packet vanished
  EXPECT_EQ(net.link(0, 1)->stats().delivered, 1u);
}

TEST(Network, UnbindStopsDelivery) {
  Network net = make_two_node_net(8e6, 0.0);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  net.send(make_dgram(0, 1, 9, 10));
  net.sim().run();
  net.unbind(1, 9);
  net.send(make_dgram(0, 1, 9, 10));
  net.sim().run();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, CapacityChangeAffectsOnlyLaterPackets) {
  Network net = make_two_node_net(8e6, 0.0);
  std::vector<double> arrivals;
  net.bind(1, 9, [&](const Datagram&) { arrivals.push_back(net.sim().now()); });
  net.send(make_dgram(0, 1, 9, 972));                 // 1 ms at 8 Mbps
  net.link(0, 1)->set_capacity_bps(4e6);              // halve
  net.send(make_dgram(0, 1, 9, 972));                 // 2 ms at 4 Mbps
  net.sim().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.001, 1e-9);
  EXPECT_NEAR(arrivals[1], 0.003, 1e-9);
}

TEST(Network, PingRttSumsBothDirections) {
  Network net(1);
  net.add_node("a");
  net.add_node("b");
  LinkConfig fwd{8e6, 0.030, 512};
  LinkConfig rev{8e6, 0.040, 512};
  net.add_link(0, 1, fwd);
  net.add_link(1, 0, rev);
  const auto rtt = net.ping_rtt(0, 1, 972);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_NEAR(*rtt, 0.030 + 0.040 + 2 * 0.001, 1e-9);
  EXPECT_FALSE(net.ping_rtt(0, 0, 64).has_value());
}

TEST(Network, BandwidthProbeIsNoisyButCentered) {
  Network net = make_two_node_net(100e6, 0.01);
  double sum = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const auto bw = net.probe_bandwidth_bps(0, 1, 0.02);
    ASSERT_TRUE(bw.has_value());
    EXPECT_GE(*bw, 98e6 - 1);
    EXPECT_LE(*bw, 102e6 + 1);
    sum += *bw;
  }
  EXPECT_NEAR(sum / n, 100e6, 0.5e6);
}

TEST(Network, JitterBoundsAndReordersDeliveries) {
  Network net(5);
  net.add_node("a");
  net.add_node("b");
  LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.010;
  lc.jitter = 0.005;
  net.add_link(0, 1, lc);
  std::vector<std::uint64_t> order;
  std::vector<double> arrivals;
  net.bind(1, 9, [&](const Datagram& d) {
    order.push_back(d.payload[0]);
    arrivals.push_back(net.sim().now());
  });
  for (int i = 0; i < 200; ++i) {
    Datagram d;
    d.src = 0;
    d.dst = 1;
    d.dst_port = 9;
    d.payload = {static_cast<std::uint8_t>(i)};
    net.send(std::move(d));
  }
  net.sim().run();
  ASSERT_EQ(order.size(), 200u);
  // Every delivery within [prop, prop + jitter] of its serialization end.
  for (double t : arrivals) {
    EXPECT_GE(t, 0.010 - 1e-12);
    EXPECT_LE(t, 0.010 + 0.005 + 200 * 29 * 8 / 1e9 + 1e-9);
  }
  // And the stream is genuinely reordered.
  bool reordered = false;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i] < order[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, ZeroJitterKeepsOrder) {
  Network net = make_two_node_net(1e9, 0.01);
  std::vector<std::uint8_t> order;
  net.bind(1, 9,
           [&](const Datagram& d) { order.push_back(d.payload[0]); });
  for (int i = 0; i < 50; ++i) {
    Datagram d;
    d.src = 0;
    d.dst = 1;
    d.dst_port = 9;
    d.payload = {static_cast<std::uint8_t>(i)};
    net.send(std::move(d));
  }
  net.sim().run();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

// ---- Loss models ----

TEST(Loss, UniformRateIsStatisticallyCorrect) {
  std::mt19937 rng(123);
  UniformLoss loss(0.3);
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.02);
}

TEST(Loss, NoLossNeverDrops) {
  std::mt19937 rng(1);
  NoLoss loss;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(loss.drop(rng));
}

TEST(Loss, BurstStationaryRateNearPaperFormula) {
  // P_n = 0.25 P_{n-1} + P converges to P / 0.75 when drops are rare.
  std::mt19937 rng(7);
  const double p = 0.02;
  BurstLoss loss(p);
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, p / 0.75, 0.005);
}

TEST(Loss, BurstZeroPNeverDrops) {
  std::mt19937 rng(7);
  BurstLoss loss(0.0);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop(rng));
}

TEST(Loss, GilbertElliottBadStateDropsMore) {
  std::mt19937 rng(9);
  GilbertElliottLoss loss(0.05, 0.2, 0.001, 0.5);
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  // Stationary bad-state probability = 0.05/(0.05+0.2) = 0.2
  // -> overall ~ 0.2*0.5 + 0.8*0.001 ~ 0.10.
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.10, 0.02);
}

TEST(Loss, GilbertElliottSamplesBeforeTransition) {
  // Deterministic alternation (p_gb = p_bg = 1): the first packet must be
  // sampled in the initial good state and survive; dropping it means the
  // implementation transitioned before sampling.
  std::mt19937 rng(1);
  GilbertElliottLoss loss(1.0, 1.0, 0.0, 1.0);
  EXPECT_FALSE(loss.drop(rng));  // good
  EXPECT_TRUE(loss.drop(rng));   // bad
  EXPECT_FALSE(loss.drop(rng));  // good again
}

TEST(Loss, GilbertElliottStationaryLossRate) {
  // Stationary bad-state share = p_gb/(p_gb+p_bg) = 0.2; with a lossless
  // good state the long-run loss rate is exactly 0.2 * loss_bad = 0.06.
  std::mt19937 rng(17);
  GilbertElliottLoss loss(0.02, 0.08, 0.0, 0.3);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.06, 0.006);
}

TEST(Network, LinkLossModelDropsPackets) {
  Network net = make_two_node_net(100e6, 0.0, /*queue=*/4096);
  net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.5));
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  const int n = 2000;
  for (int i = 0; i < n; ++i) net.send(make_dgram(0, 1, 9, 100));
  net.sim().run();
  EXPECT_NEAR(delivered, n / 2, 120);
  EXPECT_EQ(net.link(0, 1)->stats().dropped_loss + net.link(0, 1)->stats().delivered,
            static_cast<std::uint64_t>(n));
}
