// Tests for the application layer: data providers, feedback messages,
// the routing-only tree-packing baseline, and source pacing.
#include <gtest/gtest.h>

#include "app/baseline.hpp"
#include "app/messages.hpp"
#include "app/provider.hpp"
#include "app/scenarios.hpp"
#include "app/source.hpp"

using namespace ncfn;
using namespace ncfn::app;

TEST(Provider, SyntheticIsDeterministic) {
  coding::CodingParams p;
  p.block_size = 32;
  p.generation_blocks = 4;
  SyntheticProvider a(42, 1000, p), b(42, 1000, p), c(43, 1000, p);
  EXPECT_EQ(a.generation_bytes(3), b.generation_bytes(3));
  EXPECT_NE(a.generation_bytes(3), c.generation_bytes(3));
  EXPECT_NE(a.generation_bytes(2), a.generation_bytes(3));
}

TEST(Provider, SyntheticGenerationCountAndTail) {
  coding::CodingParams p;
  p.block_size = 10;
  p.generation_blocks = 4;  // 40 bytes per generation
  SyntheticProvider prov(1, 95, p);
  EXPECT_EQ(prov.generation_count(), 3u);
  EXPECT_EQ(prov.generation_bytes(2).size(), 15u);  // 95 - 80
  EXPECT_EQ(prov.generation(2).payload_bytes(), 15u);
}

TEST(Provider, BufferMatchesSourceData) {
  coding::CodingParams p;
  p.block_size = 16;
  p.generation_blocks = 2;
  std::vector<std::uint8_t> data(70);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 3);
  }
  BufferProvider prov(data, p);
  EXPECT_EQ(prov.generation_count(), 3u);
  const auto g1 = prov.generation(1);
  EXPECT_EQ(g1.block(0)[0], data[32]);
  EXPECT_EQ(prov.generation(2).payload_bytes(), 6u);
}

TEST(Messages, FeedbackRoundTrip) {
  Feedback f;
  f.type = FeedbackType::kRepair;
  f.session = 0xABCD1234;
  f.generation = 999;
  f.count = 3;
  f.block_mask = 0b1011;
  f.receiver_node = 17;
  const auto wire = f.serialize();
  const auto back = Feedback::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, f.type);
  EXPECT_EQ(back->session, f.session);
  EXPECT_EQ(back->generation, f.generation);
  EXPECT_EQ(back->count, f.count);
  EXPECT_EQ(back->block_mask, f.block_mask);
  EXPECT_EQ(back->receiver_node, f.receiver_node);
}

TEST(Messages, ParseRejectsBadInput) {
  std::vector<std::uint8_t> wire(23, 0);
  wire[0] = 9;  // unknown type
  EXPECT_FALSE(Feedback::parse(wire).has_value());
  wire.resize(10);
  EXPECT_FALSE(Feedback::parse(wire).has_value());
}

// ---- Tree packing (Non-NC baseline) ----

TEST(Baseline, ButterflyPacksToRoutingOptimum) {
  // The classic result: routing-only multicast on the butterfly achieves
  // 1.5x the link capacity = 52.5 Mbps, vs 70 with coding.
  const auto b = scenarios::butterfly(false);
  const auto packing =
      pack_trees(b.topo, b.source, {b.recv_o2, b.recv_c2}, 0.150);
  EXPECT_NEAR(packing.total_rate_mbps, 52.5, 1.0);
  EXPECT_GE(packing.trees.size(), 2u);
}

TEST(Baseline, SingleReceiverPackingEqualsMaxFlow) {
  // With one receiver, trees are just paths: packing = max flow.
  const auto b = scenarios::butterfly(false);
  const auto packing = pack_trees(b.topo, b.source, {b.recv_o2}, 0.150);
  EXPECT_NEAR(packing.total_rate_mbps, 70.0, 1.0);
}

TEST(Baseline, UnreachableReceiverGivesEmptyPacking) {
  graph::Topology t;
  graph::NodeInfo h;
  h.kind = graph::NodeKind::kHost;
  const auto s = t.add_node(h);
  const auto d = t.add_node(h);
  const auto packing = pack_trees(t, s, {d}, 0.1);
  EXPECT_TRUE(packing.trees.empty());
  EXPECT_EQ(packing.total_rate_mbps, 0.0);
}

TEST(Baseline, TreeNextHopsFollowEdges) {
  const auto b = scenarios::butterfly(false);
  const auto packing =
      pack_trees(b.topo, b.source, {b.recv_o2, b.recv_c2}, 0.150);
  ASSERT_FALSE(packing.trees.empty());
  for (const auto& tree : packing.trees) {
    // The source must have at least one outgoing hop in every tree.
    EXPECT_FALSE(tree.next_hops(b.topo, b.source).empty());
  }
}

TEST(Baseline, ScheduleSharesMatchRates) {
  std::vector<MulticastTree> trees(2);
  trees[0].rate_mbps = 30;
  trees[1].rate_mbps = 10;
  const auto sched = tree_schedule(trees, 400);
  ASSERT_EQ(sched.size(), 400u);
  int c0 = 0;
  for (auto s : sched) c0 += s == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(c0) / 400.0, 0.75, 0.02);
}

TEST(Baseline, ScheduleNeverStarvesATree) {
  std::vector<MulticastTree> trees(3);
  trees[0].rate_mbps = 100;
  trees[1].rate_mbps = 1;
  trees[2].rate_mbps = 1;
  const auto sched = tree_schedule(trees, 512);
  std::set<std::uint16_t> seen(sched.begin(), sched.end());
  EXPECT_EQ(seen.size(), 3u);
}

// ---- Source pacing ----

TEST(Source, PacesAtConfiguredRatePerHop) {
  netsim::Network net(1);
  const auto s = net.add_node("src");
  const auto d = net.add_node("dst");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  net.add_duplex_link(s, d, lc);

  coding::CodingParams params;
  params.block_size = 1460;
  params.generation_blocks = 4;
  SyntheticProvider provider(1, 300 * params.generation_bytes(), params);
  SourceConfig cfg;
  cfg.session = 1;
  cfg.params = params;
  cfg.lambda_mbps = 8.0;
  cfg.data_port = 9000;
  cfg.feedback_port = 9500;
  McSource src(net, s, provider, cfg);
  src.configure_hops({{ctrl::NextHop{d, 9000}, 8.0}});

  int packets = 0;
  net.bind(d, 9000, [&](const netsim::Datagram&) { ++packets; });
  src.start();
  net.sim().run_until(1.0);
  // 8 Mbps at 1460 B payload -> ~685 packets/s.
  EXPECT_NEAR(packets, 685, 30);
}

TEST(Source, RedundancyInflatesPacketCount) {
  auto run_with_redundancy = [](int r) {
    netsim::Network net(1);
    const auto s = net.add_node("src");
    const auto d = net.add_node("dst");
    netsim::LinkConfig lc;
    lc.capacity_bps = 1e9;
    lc.prop_delay = 0.001;
    net.add_duplex_link(s, d, lc);
    coding::CodingParams params;
    SyntheticProvider provider(1, 200 * params.generation_bytes(), params);
    SourceConfig cfg;
    cfg.params = params;
    cfg.lambda_mbps = 8.0;
    cfg.redundancy = r;
    McSource src(net, s, provider, cfg);
    src.configure_hops({{ctrl::NextHop{d, cfg.data_port}, 8.0}});
    int packets = 0;
    net.bind(d, cfg.data_port, [&](const netsim::Datagram&) { ++packets; });
    src.start();
    net.sim().run_until(2.0);
    return packets;
  };
  const int nc0 = run_with_redundancy(0);
  const int nc1 = run_with_redundancy(1);
  // NC1 sends (g+1)/g = 25% more packets at the same payload rate.
  EXPECT_NEAR(static_cast<double>(nc1) / nc0, 1.25, 0.05);
}

TEST(Source, StopsWhenDataExhausted) {
  netsim::Network net(1);
  const auto s = net.add_node("src");
  const auto d = net.add_node("dst");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  net.add_duplex_link(s, d, lc);
  coding::CodingParams params;
  SyntheticProvider provider(1, 2 * params.generation_bytes(), params);
  SourceConfig cfg;
  cfg.params = params;
  cfg.lambda_mbps = 50.0;
  McSource src(net, s, provider, cfg);
  src.configure_hops({{ctrl::NextHop{d, cfg.data_port}, 50.0}});
  int packets = 0;
  net.bind(d, cfg.data_port, [&](const netsim::Datagram&) { ++packets; });
  src.start();
  net.sim().run_until(60.0);
  EXPECT_TRUE(src.data_exhausted());
  // Roughly 2 generations * 4 blocks; the event queue must have drained
  // (pacers stop, no busy loop for a minute of sim time).
  EXPECT_LE(packets, 20);
}

TEST(Source, ServesRepairRequests) {
  netsim::Network net(1);
  const auto s = net.add_node("src");
  const auto d = net.add_node("dst");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  net.add_duplex_link(s, d, lc);
  coding::CodingParams params;
  SyntheticProvider provider(1, 4 * params.generation_bytes(), params);
  SourceConfig cfg;
  cfg.params = params;
  cfg.lambda_mbps = 80.0;
  McSource src(net, s, provider, cfg);
  src.configure_hops({{ctrl::NextHop{d, cfg.data_port}, 80.0}});
  int packets = 0;
  net.bind(d, cfg.data_port, [&](const netsim::Datagram&) { ++packets; });
  src.start();
  net.sim().run_until(10.0);
  ASSERT_TRUE(src.data_exhausted());
  const int before = packets;

  Feedback fb;
  fb.type = FeedbackType::kRepair;
  fb.session = cfg.session;
  fb.generation = 1;
  fb.count = 3;
  fb.receiver_node = d;
  netsim::Datagram dg;
  dg.src = d;
  dg.dst = s;
  dg.dst_port = cfg.feedback_port;
  dg.payload = fb.serialize();
  ASSERT_TRUE(net.send(std::move(dg)));
  net.sim().run_until(20.0);
  EXPECT_EQ(packets, before + 3);
  EXPECT_EQ(src.stats().repair_requests, 1u);
  EXPECT_EQ(src.stats().repair_packets_sent, 3u);
}
