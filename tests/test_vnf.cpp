// Tests for the coding VNF data plane (roles, pipelined recoding, credit
// shares, lanes, pause/resume) and the control daemon (signal handling,
// table-update cost, tau shutdown and reuse).
#include <gtest/gtest.h>

#include <algorithm>

#include "app/provider.hpp"
#include "coding/encoder.hpp"
#include "ctrl/signals.hpp"
#include "netsim/network.hpp"
#include "vnf/coding_vnf.hpp"
#include "vnf/daemon.hpp"

using namespace ncfn;
using namespace ncfn::vnf;
using ncfn::ctrl::NextHop;
using ncfn::ctrl::VnfRole;

namespace {

struct Rig {
  netsim::Network net{1};
  netsim::NodeId src, relay, dst;
  coding::CodingParams params;

  Rig() {
    src = net.add_node("src");
    relay = net.add_node("relay");
    dst = net.add_node("dst");
    netsim::LinkConfig lc;
    lc.capacity_bps = 1e9;
    lc.prop_delay = 0.001;
    net.add_link(src, relay, lc);
    net.add_link(relay, dst, lc);
    params.block_size = 64;
    params.generation_blocks = 4;
  }

  VnfConfig vnf_config() {
    VnfConfig cfg;
    cfg.params = params;
    cfg.seed = 3;
    return cfg;
  }

  void send_packet(const coding::CodedPacket& pkt, netsim::Port port) {
    netsim::Datagram d;
    d.src = src;
    d.dst = relay;
    d.dst_port = port;
    d.payload = pkt.serialize();
    ASSERT_TRUE(net.send(std::move(d)));
  }
};

}  // namespace

TEST(CodingVnf, RecodeRelayEmitsOnePacketPerArrival) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});

  std::vector<coding::CodedPacket> received;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram& d) {
    auto pkt = coding::CodedPacket::parse(d.payload, rig.params);
    ASSERT_TRUE(pkt.has_value());
    received.push_back(*pkt);
  });

  std::mt19937 rng(5);
  const auto data = app::SyntheticProvider(1, rig.params.generation_bytes(),
                                           rig.params)
                        .generation(0);
  coding::Encoder enc(1, data, rng);
  for (int i = 0; i < 6; ++i) rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();

  EXPECT_EQ(received.size(), 6u);
  EXPECT_EQ(relay.stats(1).received, 6u);
  EXPECT_EQ(relay.stats(1).emitted, 6u);
  // Downstream decoder completes from the recoded stream.
  coding::Decoder dec(1, 0, rig.params);
  for (const auto& p : received) dec.add(p);
  EXPECT_TRUE(dec.complete());
}

TEST(CodingVnf, FirstPacketOfGenerationPassesThroughUnchanged) {
  Rig rig;
  VnfConfig cfg = rig.vnf_config();
  cfg.recode_hold_s = 0;  // strict per-arrival emission
  CodingVnf relay(rig.net, rig.relay, cfg);
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});

  std::vector<coding::CodedPacket> received;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram& d) {
    received.push_back(*coding::CodedPacket::parse(d.payload, rig.params));
  });

  std::mt19937 rng(5);
  const auto gen = app::SyntheticProvider(2, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  const auto first = enc.encode_random();
  rig.send_packet(first, 9000);
  rig.net.sim().run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_TRUE(std::ranges::equal(received[0].coeffs(), first.coeffs()));
  EXPECT_TRUE(std::ranges::equal(received[0].payload(), first.payload()));
}

TEST(CodingVnf, CreditSharesThinTheStream) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kForward, 9000);
  // Half-rate next hop: 10 arrivals -> 5 emissions.
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 0.5}});
  int received = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++received; });

  std::mt19937 rng(6);
  const auto gen = app::SyntheticProvider(3, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  for (int i = 0; i < 10; ++i) rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  EXPECT_EQ(received, 5);
}

TEST(CodingVnf, DecodeRoleDeliversBlocksToSink) {
  Rig rig;
  CodingVnf dec_vnf(rig.net, rig.relay, rig.vnf_config());
  dec_vnf.configure_session(1, VnfRole::kDecode, 9000);
  std::vector<std::vector<std::uint8_t>> got;
  dec_vnf.set_decode_sink([&](coding::SessionId, coding::GenerationId,
                              std::vector<std::vector<std::uint8_t>> blocks) {
    got = std::move(blocks);
  });

  std::mt19937 rng(7);
  app::SyntheticProvider provider(4, rig.params.generation_bytes(),
                                  rig.params);
  const auto gen = provider.generation(0);
  coding::Encoder enc(1, gen, rng);
  for (int i = 0; i < 8; ++i) rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  ASSERT_EQ(got.size(), rig.params.generation_blocks);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], std::vector<std::uint8_t>(gen.block(i).begin(),
                                                gen.block(i).end()));
  }
  EXPECT_EQ(dec_vnf.stats(1).decoded_generations, 1u);
}

TEST(CodingVnf, ProcessingLaneSaturationDropsPackets) {
  Rig rig;
  VnfConfig cfg = rig.vnf_config();
  cfg.proc_rate_Bps = 1e4;  // pathologically slow VNF
  cfg.fixed_overhead_s = 0.01;
  cfg.proc_queue_limit = 4;
  CodingVnf relay(rig.net, rig.relay, cfg);
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});

  std::mt19937 rng(8);
  const auto gen = app::SyntheticProvider(5, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  for (int i = 0; i < 50; ++i) rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  EXPECT_GT(relay.stats(1).proc_dropped, 0u);
  EXPECT_LT(relay.stats(1).received, 50u);
}

TEST(CodingVnf, MoreLanesRaiseThroughput) {
  // Two generations hash to different lanes; with 2 lanes they are
  // processed concurrently, halving the finish time.
  auto run_with_lanes = [](std::size_t lanes) {
    Rig rig;
    VnfConfig cfg = rig.vnf_config();
    cfg.proc_rate_Bps = 1e5;
    cfg.fixed_overhead_s = 0.0;
    CodingVnf relay(rig.net, rig.relay, cfg);
    relay.set_lanes(lanes);
    relay.configure_session(1, VnfRole::kRecode, 9000);
    relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});
    std::mt19937 rng(9);
    app::SyntheticProvider provider(6, 4 * rig.params.generation_bytes(),
                                    rig.params);
    for (coding::GenerationId g = 0; g < 4; ++g) {
      const auto gen = provider.generation(g);
      coding::Encoder enc(1, gen, rng);
      for (int i = 0; i < 8; ++i) {
        netsim::Datagram d;
        d.src = rig.src;
        d.dst = rig.relay;
        d.dst_port = 9000;
        d.payload = enc.encode_random().serialize();
        rig.net.send(std::move(d));
      }
    }
    rig.net.sim().run();
    return rig.net.sim().now();
  };
  const double t1 = run_with_lanes(1);
  const double t4 = run_with_lanes(4);
  EXPECT_LT(t4, t1 * 0.75);
}

TEST(CodingVnf, PauseBuffersAndResumeFlushes) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});
  int received = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++received; });

  relay.pause();
  std::mt19937 rng(10);
  const auto gen = app::SyntheticProvider(7, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  for (int i = 0; i < 4; ++i) rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  EXPECT_EQ(received, 0);  // paused: nothing emitted
  relay.resume();
  rig.net.sim().run();
  EXPECT_EQ(received, 4);  // backlog flushed
}

TEST(CodingVnf, DropSessionStopsProcessing) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});
  relay.drop_session(1);
  int received = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++received; });
  std::mt19937 rng(11);
  const auto gen = app::SyntheticProvider(8, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  EXPECT_EQ(received, 0);
}

TEST(CodingVnf, TreeRoutingForwardsInnovativeAlongTheRightTree) {
  // Two trees; generations dispatched by schedule. The relay must copy
  // each innovative packet only to the generation's tree hops and drop
  // duplicates entirely.
  Rig rig;
  const auto dst2 = rig.net.add_node("dst2");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  rig.net.add_link(rig.relay, dst2, lc);

  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kForward, 9000);
  TreeRouting routing;
  routing.schedule = {0, 1};  // even generations -> tree 0, odd -> tree 1
  routing.hops_per_tree = {{NextHop{rig.dst, 9000}},
                           {NextHop{dst2, 9000}}};
  relay.set_tree_routing(1, std::move(routing));

  int to_dst = 0, to_dst2 = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++to_dst; });
  rig.net.bind(dst2, 9000, [&](const netsim::Datagram&) { ++to_dst2; });

  std::mt19937 rng(21);
  app::SyntheticProvider provider(31, 2 * rig.params.generation_bytes(),
                                  rig.params);
  for (coding::GenerationId g = 0; g < 2; ++g) {
    const auto gen = provider.generation(g);
    coding::Encoder enc(1, gen, rng);
    for (std::size_t i = 0; i < rig.params.generation_blocks; ++i) {
      const auto pkt = enc.encode_systematic(i);
      rig.send_packet(pkt, 9000);
      rig.send_packet(pkt, 9000);  // duplicate: must be dropped
    }
  }
  rig.net.sim().run();
  EXPECT_EQ(to_dst, 4);   // generation 0's four blocks, once each
  EXPECT_EQ(to_dst2, 4);  // generation 1's
}

TEST(CodingVnf, ConfigureSessionRebindsPort) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kRecode, 9000);
  relay.configure_session(1, VnfRole::kRecode, 9001);  // move ports
  relay.set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});
  int received = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++received; });
  std::mt19937 rng(5);
  const auto gen = app::SyntheticProvider(1, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  rig.send_packet(enc.encode_random(), 9000);  // old port: dead
  rig.send_packet(enc.encode_random(), 9001);  // new port: live
  rig.net.sim().run();
  EXPECT_EQ(received, 1);
}

TEST(CodingVnf, MalformedDatagramIsIgnored) {
  Rig rig;
  CodingVnf relay(rig.net, rig.relay, rig.vnf_config());
  relay.configure_session(1, VnfRole::kRecode, 9000);
  netsim::Datagram d;
  d.src = rig.src;
  d.dst = rig.relay;
  d.dst_port = 9000;
  d.payload = {1, 2, 3};  // not a coded packet
  ASSERT_TRUE(rig.net.send(std::move(d)));
  rig.net.sim().run();
  EXPECT_EQ(relay.stats(1).received, 0u);
}

// ---- Daemon ----

TEST(Daemon, SettingsConfigureSessions) {
  Rig rig;
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  VnfDaemon daemon(rig.net, rig.relay, dcfg);
  ctrl::NcSettings settings;
  settings.generation_blocks =
      static_cast<std::uint32_t>(rig.params.generation_blocks);
  settings.block_size = static_cast<std::uint32_t>(rig.params.block_size);
  settings.sessions = {ctrl::SessionSetting{1, VnfRole::kRecode, 9000}};
  daemon.handle_signal(settings);
  daemon.vnf().set_next_hops(1, {NextHopRate{NextHop{rig.dst, 9000}, 1.0}});

  int received = 0;
  rig.net.bind(rig.dst, 9000, [&](const netsim::Datagram&) { ++received; });
  std::mt19937 rng(12);
  const auto gen = app::SyntheticProvider(9, rig.params.generation_bytes(),
                                          rig.params)
                       .generation(0);
  coding::Encoder enc(1, gen, rng);
  rig.send_packet(enc.encode_random(), 9000);
  rig.net.sim().run();
  EXPECT_EQ(received, 1);
}

TEST(Daemon, SignalsArriveOverTheNetwork) {
  Rig rig;
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  VnfDaemon daemon(rig.net, rig.relay, dcfg);
  // Send NC_START over the control port as a datagram.
  netsim::Datagram d;
  d.src = rig.src;
  d.dst = rig.relay;
  d.dst_port = dcfg.control_port;
  const std::string text = ctrl::serialize(ctrl::Signal{ctrl::NcStart{1}});
  d.payload.assign(text.begin(), text.end());
  ASSERT_TRUE(rig.net.send(std::move(d)));
  rig.net.sim().run();
  EXPECT_EQ(daemon.stats().signals_received, 1u);
  EXPECT_EQ(daemon.stats().signals_malformed, 0u);
}

TEST(Daemon, MalformedControlMessageCounted) {
  Rig rig;
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  VnfDaemon daemon(rig.net, rig.relay, dcfg);
  netsim::Datagram d;
  d.src = rig.src;
  d.dst = rig.relay;
  d.dst_port = dcfg.control_port;
  const std::string text = "GARBAGE\nEND\n";
  d.payload.assign(text.begin(), text.end());
  rig.net.send(std::move(d));
  rig.net.sim().run();
  EXPECT_EQ(daemon.stats().signals_malformed, 1u);
}

TEST(Daemon, TableUpdateCostScalesWithChangedEntries) {
  Rig rig;
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  VnfDaemon daemon(rig.net, rig.relay, dcfg);

  ctrl::ForwardingTable t1;
  for (coding::SessionId s = 1; s <= 10; ++s) {
    t1.set(s, {NextHop{rig.dst, static_cast<std::uint16_t>(9000 + s)}});
  }
  daemon.handle_signal(ctrl::NcForwardTab{t1});
  const double full = daemon.stats().last_table_update_cost_s;
  EXPECT_NEAR(full, 10 * dcfg.table_entry_apply_s, 1e-9);
  rig.net.sim().run();

  // Change 2 of 10 entries: cost is 20% of the full update.
  ctrl::ForwardingTable t2 = t1;
  t2.set(1, {NextHop{rig.dst, 1}});
  t2.set(2, {NextHop{rig.dst, 2}});
  daemon.handle_signal(ctrl::NcForwardTab{t2});
  EXPECT_NEAR(daemon.stats().last_table_update_cost_s,
              2 * dcfg.table_entry_apply_s, 1e-9);
}

TEST(Daemon, VnfEndShutsDownAfterTauUnlessReused) {
  Rig rig;
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  {
    VnfDaemon daemon(rig.net, rig.relay, dcfg);
    daemon.handle_signal(ctrl::NcVnfEnd{0, 10.0});
    rig.net.sim().run_until(5.0);
    EXPECT_TRUE(daemon.running());  // still in the grace window
    rig.net.sim().run_until(11.0);
    EXPECT_FALSE(daemon.running());
    EXPECT_EQ(daemon.stats().shutdowns, 1u);
  }
  // Reuse case: NC_VNF_START within tau cancels the pending shutdown.
  {
    netsim::Network net2(2);
    const auto n = net2.add_node("relay");
    DaemonConfig cfg2;
    cfg2.vnf = dcfg.vnf;
    VnfDaemon daemon(net2, n, cfg2);
    daemon.handle_signal(ctrl::NcVnfEnd{0, 10.0});
    net2.sim().run_until(5.0);
    daemon.handle_signal(ctrl::NcVnfStart{0, 1});
    net2.sim().run_until(20.0);
    EXPECT_TRUE(daemon.running());
    EXPECT_EQ(daemon.stats().shutdowns, 0u);
  }
}

TEST(Daemon, ProbesReportBandwidthAndRtt) {
  Rig rig;
  netsim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.prop_delay = 0.020;
  rig.net.add_link(rig.relay, rig.src, lc);  // reverse path for RTT
  DaemonConfig dcfg;
  dcfg.vnf = rig.vnf_config();
  VnfDaemon daemon(rig.net, rig.relay, dcfg);
  int reports = 0;
  daemon.start_probes({rig.dst}, 1.0,
                      [&](netsim::NodeId peer, std::optional<double> bw,
                          std::optional<netsim::Time> /*rtt*/) {
                        EXPECT_EQ(peer, rig.dst);
                        ASSERT_TRUE(bw.has_value());
                        EXPECT_NEAR(*bw, 1e9, 0.05e9);
                        ++reports;
                      });
  rig.net.sim().run_until(5.5);
  EXPECT_EQ(reports, 5);
  daemon.stop_probes();
  rig.net.sim().run_until(20.0);
  EXPECT_EQ(reports, 5);
}
