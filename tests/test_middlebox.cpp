// Tests for the modular middlebox framework (packet functions + service
// chaining), the Sec. VI modularization direction.
#include <gtest/gtest.h>

#include <random>

#include "vnf/function.hpp"
#include "vnf/middlebox.hpp"

using namespace ncfn;
using namespace ncfn::vnf;

namespace {
std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}
}  // namespace

TEST(PacketFunction, PassthroughCopiesAndCounts) {
  PassthroughFunction fn;
  const auto in = bytes({1, 2, 3});
  const auto out = fn.process(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], in);
  fn.process(in);
  EXPECT_EQ(fn.packets_seen(), 2u);
}

TEST(PacketFunction, SamplerForwardsOneInN) {
  SamplerFunction fn(3);
  int forwarded = 0;
  for (int i = 0; i < 12; ++i) {
    forwarded += fn.process(bytes({1})).empty() ? 0 : 1;
  }
  EXPECT_EQ(forwarded, 4);
}

TEST(PacketFunction, ChecksumTagVerifyRoundTrip) {
  ChecksumTagFunction tag;
  ChecksumVerifyFunction verify;
  const auto in = bytes({10, 20, 30, 40, 50});
  const auto tagged = tag.process(in);
  ASSERT_EQ(tagged.size(), 1u);
  EXPECT_EQ(tagged[0].size(), in.size() + 4);
  const auto back = verify.process(tagged[0]);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], in);
  EXPECT_EQ(verify.dropped(), 0u);
}

TEST(PacketFunction, ChecksumVerifyDropsCorruptPackets) {
  ChecksumTagFunction tag;
  ChecksumVerifyFunction verify;
  auto tagged = tag.process(bytes({1, 2, 3}))[0];
  tagged[1] ^= 0xFF;  // corrupt the body
  EXPECT_TRUE(verify.process(tagged).empty());
  EXPECT_TRUE(verify.process(bytes({1, 2})).empty());  // too short
  EXPECT_EQ(verify.dropped(), 2u);
}

TEST(PacketFunction, RleRoundTripOnRuns) {
  const auto in = bytes({7, 7, 7, 7, 7, 7, 1, 2, 3, 0, 0, 0, 0});
  const auto compressed = RleCompressFunction::compress(in);
  EXPECT_LT(compressed.size(), in.size());
  EXPECT_EQ(RleDecompressFunction::decompress(compressed), in);
}

TEST(PacketFunction, RleHandlesEscapeByte) {
  const auto in = bytes({0xAA, 1, 0xAA, 0xAA, 2});
  const auto compressed = RleCompressFunction::compress(in);
  EXPECT_EQ(RleDecompressFunction::decompress(compressed), in);
}

TEST(PacketFunction, RleRoundTripRandomBuffers) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> in(rng() % 600);
    // Mix runs and noise.
    for (std::size_t i = 0; i < in.size();) {
      const std::uint8_t v = static_cast<std::uint8_t>(rng());
      const std::size_t run = 1 + rng() % 9;
      for (std::size_t j = 0; j < run && i < in.size(); ++j) in[i++] = v;
    }
    const auto c = RleCompressFunction::compress(in);
    ASSERT_EQ(RleDecompressFunction::decompress(c), in) << trial;
  }
}

// ---- MiddleboxVnf hosting ----

namespace {
struct MbRig {
  netsim::Network net{1};
  netsim::NodeId src, mb, dst;
  MbRig() {
    src = net.add_node("src");
    mb = net.add_node("middlebox");
    dst = net.add_node("dst");
    netsim::LinkConfig lc;
    lc.capacity_bps = 1e9;
    lc.prop_delay = 0.001;
    net.add_link(src, mb, lc);
    net.add_link(mb, dst, lc);
  }
  void send(std::vector<std::uint8_t> payload, netsim::Port port) {
    netsim::Datagram d;
    d.src = src;
    d.dst = mb;
    d.dst_port = port;
    d.payload = std::move(payload);
    ASSERT_TRUE(net.send(std::move(d)));
  }
};
}  // namespace

TEST(Middlebox, ChainTagsAndForwards) {
  MbRig rig;
  MiddleboxConfig cfg;
  MiddleboxVnf mb(rig.net, rig.mb, cfg);
  mb.add_function(std::make_unique<ChecksumTagFunction>());
  mb.set_next_hops({ctrl::NextHop{rig.dst, 9100}});

  std::vector<std::vector<std::uint8_t>> got;
  rig.net.bind(rig.dst, 9100,
               [&](const netsim::Datagram& d) { got.push_back(d.payload); });
  rig.send(bytes({5, 6, 7}), cfg.port);
  rig.net.sim().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].size(), 3u + 4u);
  ChecksumVerifyFunction verify;
  EXPECT_FALSE(verify.process(got[0]).empty());
}

TEST(Middlebox, ServiceChainAcrossTwoNodes) {
  // compress at one middlebox, decompress at the next — a WAN-optimizer
  // pair; the payload must survive the full chain byte-exact.
  netsim::Network net(1);
  const auto src = net.add_node("src");
  const auto mb1 = net.add_node("compressor");
  const auto mb2 = net.add_node("decompressor");
  const auto dst = net.add_node("dst");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  net.add_link(src, mb1, lc);
  net.add_link(mb1, mb2, lc);
  net.add_link(mb2, dst, lc);

  MiddleboxConfig cfg;
  MiddleboxVnf a(net, mb1, cfg), b(net, mb2, cfg);
  a.add_function(std::make_unique<RleCompressFunction>());
  a.set_next_hops({ctrl::NextHop{mb2, cfg.port}});
  b.add_function(std::make_unique<RleDecompressFunction>());
  b.set_next_hops({ctrl::NextHop{dst, 9200}});

  std::vector<std::uint8_t> in(512, 0x42);  // very compressible
  std::vector<std::vector<std::uint8_t>> got;
  net.bind(dst, 9200,
           [&](const netsim::Datagram& d) { got.push_back(d.payload); });
  netsim::Datagram d;
  d.src = src;
  d.dst = mb1;
  d.dst_port = cfg.port;
  d.payload = in;
  ASSERT_TRUE(net.send(std::move(d)));
  net.sim().run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], in);
  // The middle link carried the compressed form.
  EXPECT_LT(net.link(mb1, mb2)->stats().bytes_delivered,
            in.size() / 10 + netsim::kUdpIpOverhead);
}

TEST(Middlebox, SwallowedPacketsAreCounted) {
  MbRig rig;
  MiddleboxConfig cfg;
  MiddleboxVnf mb(rig.net, rig.mb, cfg);
  mb.add_function(std::make_unique<SamplerFunction>(2));  // drop every other
  mb.set_next_hops({ctrl::NextHop{rig.dst, 9100}});
  int received = 0;
  rig.net.bind(rig.dst, 9100, [&](const netsim::Datagram&) { ++received; });
  for (int i = 0; i < 10; ++i) rig.send(bytes({1, 2}), cfg.port);
  rig.net.sim().run();
  EXPECT_EQ(received, 5);
  EXPECT_EQ(mb.stats().swallowed, 5u);
  EXPECT_EQ(mb.stats().received, 10u);
}

TEST(Middlebox, SaturatedLaneDrops) {
  MbRig rig;
  MiddleboxConfig cfg;
  cfg.fixed_overhead_s = 0.5;  // pathologically slow
  cfg.proc_queue_limit = 2;
  MiddleboxVnf mb(rig.net, rig.mb, cfg);
  mb.add_function(std::make_unique<PassthroughFunction>());
  mb.set_next_hops({ctrl::NextHop{rig.dst, 9100}});
  for (int i = 0; i < 10; ++i) rig.send(bytes({1}), cfg.port);
  rig.net.sim().run();
  EXPECT_GT(mb.stats().proc_dropped, 0u);
  EXPECT_EQ(mb.stats().received + mb.stats().proc_dropped, 10u);
}
