// Failure injection and recovery: link/node outages with fixed
// lifetime/queue semantics, deterministic failure schedules, VNF
// crash/restart, the controller's failure re-solve, and the end-to-end
// acceptance scenario (mid-session link failure + VNF crash with every
// receiver still decoding every generation, byte-verified).
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "app/config.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "coding/encoder.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/problem.hpp"
#include "netsim/loss.hpp"
#include "netsim/network.hpp"
#include "netsim/schedule.hpp"

using namespace ncfn;
using namespace ncfn::netsim;

namespace {

Network make_two_node_net(double capacity_bps, double delay_s,
                          std::size_t queue = 512) {
  Network net(1);
  net.add_node("a");
  net.add_node("b");
  LinkConfig lc;
  lc.capacity_bps = capacity_bps;
  lc.prop_delay = delay_s;
  lc.queue_packets = queue;
  net.add_link(0, 1, lc);
  return net;
}

Datagram make_dgram(NodeId src, NodeId dst, Port port, std::size_t bytes) {
  Datagram d;
  d.src = src;
  d.dst = dst;
  d.dst_port = port;
  d.payload.assign(bytes, 0xCD);
  return d;
}

}  // namespace

// ---------------------------------------------------------------------------
// Link queue accounting: a slot frees when the packet leaves the
// serializer, not when it is finally delivered.
// ---------------------------------------------------------------------------

TEST(LinkQueue, SlotFreesAtSerializerDepartureNotDelivery) {
  // 8 Mbps -> 1 ms serialization per 1000-byte wire packet, but a full
  // second of propagation. With departure-based accounting the 2-slot
  // queue is empty again after ~2 ms; delivery-based accounting (the old
  // bug) kept both slots occupied for the whole flight time and
  // tail-dropped everything sent meanwhile.
  Network net = make_two_node_net(8e6, 1.0, /*queue=*/2);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
  ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
  net.sim().schedule(0.010, [&] {  // both serialized, both still in flight
    EXPECT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
    EXPECT_TRUE(net.send(make_dgram(0, 1, 9, 972)));
  });
  net.sim().run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(net.link(0, 1)->stats().dropped_queue, 0u);
}

TEST(LinkQueue, TailDropStillEnforcedAtTheSerializer) {
  // Same high-delay link; packets offered faster than the serializer
  // drains must still tail-drop — the fix must not disable the queue.
  Network net = make_two_node_net(8e6, 1.0, /*queue=*/2);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.send(make_dgram(0, 1, 9, 972));
  net.sim().run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.link(0, 1)->stats().dropped_queue, 8u);
}

// ---------------------------------------------------------------------------
// Link lifetime: replacing a link while packets are in flight must not
// touch freed memory (the delivery events hold weak handles).
// ---------------------------------------------------------------------------

TEST(LinkLifetime, ReplaceLinkWithPacketsInFlightIsSafe) {
  Network net = make_two_node_net(100e6, 0.5);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 200)));
  net.sim().run_until(0.1);  // serialized, still propagating

  LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.prop_delay = 0.001;
  net.add_link(0, 1, lc);  // replaces the old link; old packets evaporate
  net.sim().run_until(1.0);
  EXPECT_EQ(delivered, 0);  // in-flight packets died with their link

  ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 200)));
  net.sim().run();
  EXPECT_EQ(delivered, 1);  // the replacement link works
}

// ---------------------------------------------------------------------------
// Link up/down semantics.
// ---------------------------------------------------------------------------

TEST(LinkState, DownDropsNewAndInFlightPackets) {
  Network net = make_two_node_net(100e6, 0.5);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });

  ASSERT_TRUE(net.send(make_dgram(0, 1, 9, 200)));  // in flight until 0.5
  net.sim().schedule(0.2, [&] { net.link(0, 1)->set_up(false); });
  net.sim().schedule(0.3, [&] {
    EXPECT_TRUE(net.send(make_dgram(0, 1, 9, 200)));  // accepted, dropped
  });
  net.sim().schedule(0.6, [&] {
    net.link(0, 1)->set_up(true);
    EXPECT_TRUE(net.send(make_dgram(0, 1, 9, 200)));  // delivered
  });
  net.sim().run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.link(0, 1)->stats().dropped_down, 2u);
  EXPECT_TRUE(net.link(0, 1)->is_up());
}

TEST(LinkState, NodeDownSeversIncidentLinksAndLocalDelivery) {
  Network net(1);
  net.add_node("a");
  net.add_node("b");
  net.add_node("c");
  LinkConfig lc;
  lc.capacity_bps = 100e6;
  lc.prop_delay = 0.001;
  net.add_duplex_link(0, 1, lc);
  net.add_link(1, 2, lc);
  int at_b = 0;
  net.bind(1, 9, [&](const Datagram&) { ++at_b; });

  net.set_node_up(1, false);
  EXPECT_FALSE(net.link(0, 1)->is_up());
  EXPECT_FALSE(net.link(1, 0)->is_up());
  EXPECT_FALSE(net.link(1, 2)->is_up());
  EXPECT_FALSE(net.node_up(1));
  net.send(make_dgram(0, 1, 9, 100));
  net.sim().run();
  EXPECT_EQ(at_b, 0);

  net.set_node_up(1, true);
  EXPECT_TRUE(net.link(0, 1)->is_up());
  net.send(make_dgram(0, 1, 9, 100));
  net.sim().run();
  EXPECT_EQ(at_b, 1);
}

// ---------------------------------------------------------------------------
// Failure schedules.
// ---------------------------------------------------------------------------

TEST(FailureSchedule, OutagesToggleTheLinkOnCue) {
  Network net = make_two_node_net(100e6, 0.001);
  int delivered = 0;
  net.bind(1, 9, [&](const Datagram&) { ++delivered; });
  apply_failure_schedule(net, *net.link(0, 1),
                         {Outage{1.0, 1.0}, Outage{3.0, 0.5}});
  for (double t : {0.5, 1.5, 2.5, 3.2, 4.0}) {
    net.sim().schedule_at(t, [&] { net.send(make_dgram(0, 1, 9, 100)); });
  }
  net.sim().run();
  EXPECT_EQ(delivered, 3);  // 0.5, 2.5, 4.0 fall outside the outages
  EXPECT_EQ(net.link(0, 1)->stats().dropped_down, 2u);
}

TEST(FailureSchedule, RandomOutagesAreSeedDeterministic) {
  const FailureSchedule a = random_outages(100.0, 10.0, 1.0, 42);
  const FailureSchedule b = random_outages(100.0, 10.0, 1.0, 42);
  const FailureSchedule c = random_outages(100.0, 10.0, 1.0, 43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
  }
  EXPECT_FALSE(a.empty());
  bool same = a.size() == c.size();
  for (std::size_t i = 0; same && i < a.size(); ++i) {
    same = a[i].at == c[i].at && a[i].duration == c[i].duration;
  }
  EXPECT_FALSE(same);
  // Sorted and non-overlapping within the horizon.
  double prev_end = 0;
  for (const Outage& o : a) {
    EXPECT_GE(o.at, prev_end);
    EXPECT_GT(o.duration, 0.0);
    EXPECT_LE(o.at, 100.0);
    prev_end = o.at + o.duration;
  }
}

// ---------------------------------------------------------------------------
// Controller failure handling.
// ---------------------------------------------------------------------------

namespace {

/// Diamond overlay: host S -> DCs A,B -> host R, every edge duplex so
/// feedback and heartbeats can flow backwards.
struct Diamond {
  graph::Topology topo;
  graph::NodeIdx s, a, b, r;
  graph::EdgeIdx e_ar;  // the edge the tests fail

  Diamond() {
    graph::NodeInfo host;
    host.kind = graph::NodeKind::kHost;
    graph::NodeInfo dc;
    dc.kind = graph::NodeKind::kDataCenter;
    dc.bin_bps = 1e9;
    dc.bout_bps = 1e9;
    dc.vnf_capacity_bps = 1e9;
    host.name = "S";
    s = topo.add_node(host);
    dc.name = "A";
    a = topo.add_node(dc);
    dc.name = "B";
    b = topo.add_node(dc);
    host.name = "R";
    r = topo.add_node(host);
    auto duplex = [&](graph::NodeIdx u, graph::NodeIdx v) {
      topo.add_edge(u, v, 0.005, 100e6);
      topo.add_edge(v, u, 0.005, 100e6);
    };
    duplex(s, a);
    duplex(s, b);
    duplex(a, r);
    duplex(b, r);
    e_ar = topo.find_edge(a, r);
  }
};

}  // namespace

TEST(ControllerFailure, LinkDownResolvesAroundTheOutage) {
  Diamond d;
  ctrl::Controller::Config cfg;
  cfg.alpha = 1.0;
  ctrl::Controller ctl(d.topo, cfg);
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = d.s;
  spec.receivers = {d.r};
  spec.max_rate_mbps = 150.0;  // needs both paths
  ASSERT_TRUE(ctl.add_session(spec, 0.0));
  ASSERT_TRUE(ctl.plan().feasible);
  ASSERT_GT(ctl.plan().edge_rate_mbps[0].count(d.e_ar), 0u);
  const double before = ctl.plan().lambda_mbps[0];

  ctl.report_link_state(d.e_ar, false, 1.0);
  EXPECT_EQ(ctl.resolves(), 1);
  ASSERT_TRUE(ctl.plan().feasible);
  EXPECT_EQ(ctl.plan().edge_rate_mbps[0].count(d.e_ar), 0u);  // rerouted
  EXPECT_GT(ctl.plan().lambda_mbps[0], 0.0);
  EXPECT_LT(ctl.plan().lambda_mbps[0], before);  // one path left

  ctl.report_link_state(d.e_ar, true, 2.0);
  EXPECT_EQ(ctl.resolves(), 2);
  EXPECT_NEAR(ctl.plan().lambda_mbps[0], before, 1e-6);  // full rate back
}

TEST(ControllerFailure, HeartbeatTimeoutDeclaresNodeDownAndRevives) {
  Diamond d;
  ctrl::Controller::Config cfg;
  cfg.alpha = 1.0;
  cfg.heartbeat_timeout_s = 1.0;
  ctrl::Controller ctl(d.topo, cfg);
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = d.s;
  spec.receivers = {d.r};
  spec.max_rate_mbps = 150.0;
  ASSERT_TRUE(ctl.add_session(spec, 0.0));

  ctl.heartbeat(d.a, 0.0);
  ctl.heartbeat(d.b, 0.0);
  ctl.tick(0.5);
  EXPECT_FALSE(ctl.node_down(d.a));

  ctl.heartbeat(d.b, 2.0);  // only B stays alive
  ctl.tick(2.5);
  EXPECT_TRUE(ctl.node_down(d.a));
  EXPECT_FALSE(ctl.node_down(d.b));
  EXPECT_GE(ctl.resolves(), 1);
  // The surviving plan cannot route through A.
  for (const auto& [e, rate] : ctl.plan().edge_rate_mbps[0]) {
    const auto& ei = d.topo.edge(e);
    EXPECT_NE(ei.from, d.a);
    EXPECT_NE(ei.to, d.a);
  }

  ctl.heartbeat(d.a, 3.0);  // a late heartbeat revives the DC
  EXPECT_FALSE(ctl.node_down(d.a));
}

// ---------------------------------------------------------------------------
// End-to-end acceptance: mid-session link failure + VNF crash; every
// receiver decodes every generation byte-verified; the re-solve is
// visible in the trace; recovery time lands in the histogram; identical
// (scenario, seed) runs are byte-identical.
// ---------------------------------------------------------------------------

namespace {

constexpr char kFaultScenario[] = R"(
node S host
node A dc bin=1000 bout=1000 cap=1000
node B dc bin=1000 bout=1000 cap=1000
node R host
duplex S A 2 100
duplex S B 2 100
duplex A R 2 100
duplex B R 2 100
edge R S 5 10
session 1 S -> R lmax=500 maxrate=150
fail A R at=0.5 for=1.0
crash A at=0.6 for=0.4
)";

struct FaultRun {
  bool complete = false;
  std::uint64_t verify_failures = 0;
  std::uint64_t generations = 0;
  std::uint64_t recovery_samples = 0;
  int resolves = 0;
  std::string trace;
};

FaultRun run_fault_scenario(std::uint32_t seed) {
  app::ParseError err;
  const auto scenario = app::parse_scenario(kFaultScenario, &err);
  EXPECT_TRUE(scenario.has_value()) << err.message;
  FaultRun out;
  if (!scenario) return out;
  EXPECT_EQ(scenario->failures.size(), 1u);
  EXPECT_EQ(scenario->crashes.size(), 1u);
  if (scenario->failures.empty() || scenario->crashes.empty()) return out;

  coding::CodingParams params;
  app::SimNet sim(scenario->topo);
  sim.trace().enable();

  ctrl::Controller::Config ccfg;
  ccfg.alpha = scenario->alpha;
  ctrl::Controller ctl(scenario->topo, ccfg);
  ctl.set_obs(&sim.obs());
  for (const auto& spec : scenario->sessions) ctl.add_session(spec, 0.0);
  EXPECT_TRUE(ctl.plan().feasible);

  // ~2 s of payload at the planned rate, so the failure at 0.5 s lands
  // mid-transfer.
  const double lambda = ctl.plan().lambda_mbps[0];
  app::SyntheticProvider provider(
      seed, static_cast<std::size_t>(lambda * 1e6 / 8 * 2.0), params);
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  wiring.seed = seed;
  app::NcMulticastSession session(sim, ctl.plan(), 0, scenario->sessions[0],
                                  provider, wiring);
  session.receiver(0).set_verify(&provider);

  // Apply the scenario's fail/crash lines the way tools/ncfn-run does.
  const app::LinkFailure lf = scenario->failures[0];
  const graph::EdgeIdx e = scenario->topo.find_edge(lf.from, lf.to);
  sim.net().sim().schedule_at(lf.at_s, [&, e] {
    sim.link(e)->set_up(false);
    ctl.report_link_state(e, false, sim.net().sim().now());
    session.rewire(ctl.plan(), 0);
  });
  sim.net().sim().schedule_at(lf.at_s + lf.for_s, [&, e] {
    sim.link(e)->set_up(true);
    ctl.report_link_state(e, true, sim.net().sim().now());
    session.rewire(ctl.plan(), 0);
  });
  const app::VnfCrash cr = scenario->crashes[0];
  sim.net().sim().schedule_at(cr.at_s, [&] {
    if (vnf::CodingVnf* v = sim.find_vnf(cr.node)) v->crash();
  });
  sim.net().sim().schedule_at(cr.at_s + cr.for_s, [&] {
    if (vnf::CodingVnf* v = sim.find_vnf(cr.node)) v->restart();
  });

  session.start();
  sim.net().sim().run_until(30.0);

  out.complete = session.all_complete();
  out.verify_failures = session.receiver(0).stats().verify_failures;
  out.generations = session.receiver(0).stats().generations_decoded;
  if (const obs::Histogram* h =
          sim.metrics().find_histogram("app.recovery_time_s")) {
    out.recovery_samples = h->count();
  }
  out.resolves = ctl.resolves();
  out.trace = sim.trace().data();
  return out;
}

}  // namespace

TEST(FaultEndToEnd, LinkFailurePlusVnfCrashStillDecodesEverything) {
  const FaultRun r = run_fault_scenario(7);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.generations, 0u);
  EXPECT_EQ(r.resolves, 2);  // link_down + link_up
  EXPECT_GT(r.recovery_samples, 0u);
  // The controller's reaction and the outage itself are in the trace.
  EXPECT_NE(r.trace.find("\"ev\":\"resolve\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"link_down\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"link_up\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"vnf_crash\""), std::string::npos);
  EXPECT_NE(r.trace.find("\"ev\":\"vnf_restart\""), std::string::npos);
}

TEST(FaultEndToEnd, IdenticalSeedsAreByteIdentical) {
  const FaultRun a = run_fault_scenario(7);
  const FaultRun b = run_fault_scenario(7);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
}

// ---------------------------------------------------------------------------
// Receiver repair edge cases.
// ---------------------------------------------------------------------------

TEST(Repair, LargeGenerationFallsBackToCodedRepairs) {
  // g = 96 > 64: the 8-byte block mask cannot name the missing blocks;
  // the receiver must request coded repairs (mask 0) instead of a
  // truncated mask. The transfer completes despite loss on the data path.
  Network net(1);
  const NodeId s = net.add_node("src");
  const NodeId r = net.add_node("rcv");
  LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.002;
  net.add_duplex_link(s, r, lc);
  net.link(s, r)->set_loss_model(std::make_unique<UniformLoss>(0.10));

  coding::CodingParams params;
  params.block_size = 256;
  params.generation_blocks = 96;
  app::SyntheticProvider provider(3, 4 * params.generation_bytes(), params);

  app::SourceConfig scfg;
  scfg.session = 1;
  scfg.params = params;
  scfg.lambda_mbps = 20.0;
  app::McSource src(net, s, provider, scfg);
  src.configure_hops({{ctrl::NextHop{r, scfg.data_port}, 20.0}});

  app::ReceiverConfig rcfg;
  rcfg.session = 1;
  rcfg.params = params;
  rcfg.data_port = scfg.data_port;
  rcfg.source_node = s;
  rcfg.source_feedback_port = scfg.feedback_port;
  rcfg.repair_timeout_s = 0.05;
  rcfg.vnf.params = params;
  app::McReceiver rcv(net, r, provider, rcfg);
  rcv.set_verify(&provider);

  rcv.start();
  src.start();
  net.sim().run_until(30.0);
  EXPECT_TRUE(rcv.complete());
  EXPECT_EQ(rcv.stats().verify_failures, 0u);
  EXPECT_EQ(rcv.stats().generations_decoded, provider.generation_count());
}

TEST(Repair, RetryCountIsCappedPerGeneration) {
  // A receiver that can never complete (the source is gone) must stop
  // re-requesting after max_repair_rounds instead of retrying forever.
  Network net(1);
  const NodeId s = net.add_node("src");
  const NodeId r = net.add_node("rcv");
  LinkConfig lc;
  lc.capacity_bps = 1e9;
  lc.prop_delay = 0.001;
  net.add_duplex_link(s, r, lc);

  coding::CodingParams params;
  params.block_size = 64;
  params.generation_blocks = 4;
  app::SyntheticProvider provider(5, 2 * params.generation_bytes(), params);

  app::ReceiverConfig rcfg;
  rcfg.session = 1;
  rcfg.params = params;
  rcfg.data_port = 20001;
  rcfg.source_node = s;
  rcfg.source_feedback_port = 40001;
  rcfg.repair_timeout_s = 0.05;
  rcfg.max_repair_rounds = 3;
  rcfg.vnf.params = params;
  app::McReceiver rcv(net, r, provider, rcfg);

  int requests = 0;
  net.bind(s, 40001, [&](const Datagram&) { ++requests; });  // never answers

  // Feed fewer than g packets of generation 0 — decode can never finish.
  std::mt19937 rng(11);
  const coding::Generation gen = provider.generation(0);
  coding::Encoder enc(1, gen, rng);
  rcv.start();
  for (int i = 0; i < 3; ++i) {
    Datagram d;
    d.src = s;
    d.dst = r;
    d.dst_port = rcfg.data_port;
    d.payload = enc.encode_random().serialize();
    ASSERT_TRUE(net.send(std::move(d)));
  }
  net.sim().run_until(10.0);
  EXPECT_EQ(requests, 3);
  EXPECT_FALSE(rcv.complete());
}
