// Batched data-plane invariants (ctest label `batch`):
//
//   * PacketBatch fill / partial-flush / pool-return accounting — every
//     row a batch holds goes back to its pool on clear(), drop_front()
//     and destruction, including partially-filled batches (the
//     NCFN_AUDIT teardown check backs the same invariant end to end);
//   * draw-order equivalence of the batched coefficient draws
//     (recode_batch / encode_random_batch against their sequential
//     single-packet counterparts from the same engine state);
//   * the decoder's systematic fast path against the general
//     elimination path (identical rank trajectory and recovery);
//   * the batched-vs-unbatched butterfly differential: the same
//     scenario run with max_batch=1 (per-packet baseline) and
//     max_batch=32 must hand every receiver identical ordered decoded
//     payloads from the same deployment plan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "coding/batch.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/pool.hpp"
#include "ctrl/problem.hpp"
#include "obs/audit.hpp"

namespace ncfn {
namespace {

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}

/// Scoped NCFN_AUDIT override (restores the previous value on exit).
class ScopedAuditEnv {
 public:
  explicit ScopedAuditEnv(const char* value) {
    if (const char* prev = std::getenv("NCFN_AUDIT")) saved_ = prev;
    setenv("NCFN_AUDIT", value, /*overwrite=*/1);
  }
  ~ScopedAuditEnv() {
    if (saved_) {
      setenv("NCFN_AUDIT", saved_->c_str(), 1);
    } else {
      unsetenv("NCFN_AUDIT");
    }
  }
  ScopedAuditEnv(const ScopedAuditEnv&) = delete;
  ScopedAuditEnv& operator=(const ScopedAuditEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

TEST(Batch, FillToCapacityAndClearReturnsEveryRow) {
  auto pool = coding::PacketPool::make();
  coding::PacketBatch batch;
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.room(), coding::kBatchCapacity);
  for (std::size_t i = 0; i < coding::kBatchCapacity; ++i) {
    auto& pkt = batch.emplace(4, 64, pool);
    pkt.generation = static_cast<coding::GenerationId>(i);
  }
  EXPECT_TRUE(batch.full());
  EXPECT_EQ(batch.room(), 0u);
  EXPECT_EQ(pool.stats().outstanding(), coding::kBatchCapacity);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(pool.stats().outstanding(), 0u);
}

TEST(Batch, EmplaceHandsOutZeroFilledRowsWithZeroMeta) {
  auto pool = coding::PacketPool::make();
  coding::PacketBatch batch;
  auto& first = batch.emplace(4, 16, pool);
  for (std::uint8_t b : first.payload()) EXPECT_EQ(b, 0);
  batch.meta(0) = 0xFF;
  batch.clear();
  // Recycled slot: the metadata byte must not survive the previous use.
  batch.emplace(4, 16, pool);
  EXPECT_EQ(batch.meta(0), 0);
}

TEST(Batch, DropFrontPreservesOrderMetaAndReturnsRows) {
  auto pool = coding::PacketPool::make();
  coding::PacketBatch batch;
  for (std::size_t i = 0; i < 8; ++i) {
    auto& pkt = batch.emplace(4, 32, pool);
    pkt.generation = static_cast<coding::GenerationId>(i);
    batch.meta(i) = static_cast<std::uint8_t>(i);
  }
  const auto before = pool.stats().outstanding();
  batch.drop_front(3);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].generation, i + 3);
    EXPECT_EQ(batch.meta(i), i + 3);
  }
  // The three flushed rows went straight back to the pool.
  EXPECT_EQ(pool.stats().outstanding(), before - 3);
  batch.drop_front(batch.size());
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(pool.stats().outstanding(), 0u);
}

TEST(Batch, PartiallyFilledBatchTeardownReturnsRows) {
  auto pool = coding::PacketPool::make();
  {
    coding::PacketBatch batch;
    for (std::size_t i = 0; i < 5; ++i) batch.emplace(4, 64, pool);
    EXPECT_EQ(pool.stats().outstanding(), 5u);
    // Destroyed while partially filled: the destructor owns the rows.
  }
  EXPECT_EQ(pool.stats().outstanding(), 0u);
}

TEST(Batch, PartialBatchPassesAuditedTeardown) {
  ScopedAuditEnv on("1");
  const auto b = app::scenarios::butterfly(false);
  app::SimNet sim(b.topo);
  auto& vnf = sim.vnf_at(b.o1, vnf::VnfConfig{});
  {
    coding::PacketBatch batch;
    for (std::size_t i = 0; i < 7; ++i) {
      batch.emplace(4, 64, vnf.buffer().pool());
    }
  }
  // SimNet destructor runs the PacketPool conservation audit here; a
  // leaked row from the partially-filled batch would abort the test.
}

TEST(Batch, RecodeBatchMatchesSequentialDrawOrder) {
  // One k*g coefficient fill must reproduce k sequential per-packet
  // fills (g % 4 == 0 word-slicing; see rng_fill.hpp), so a batched
  // recoder is a drop-in for a per-packet one under the same seed.
  coding::CodingParams p;
  p.generation_blocks = 32;
  p.block_size = 128;
  const auto data = random_bytes(p.generation_bytes(), 21);
  coding::Generation gen(0, data, p);
  auto pool = coding::PacketPool::make();
  std::mt19937 enc_rng(22);
  coding::Encoder enc(1, gen, enc_rng, pool);
  coding::Decoder relay(1, 0, p, pool);
  for (std::size_t i = 0; i < p.generation_blocks; ++i) {
    relay.add(enc.encode_random());
  }
  ASSERT_TRUE(relay.complete());

  std::mt19937 rng_a(7);
  std::mt19937 rng_b(7);
  coding::PacketBatch batch;
  relay.recode_batch(rng_a, 8, batch);
  ASSERT_EQ(batch.size(), 8u);
  for (std::size_t j = 0; j < 8; ++j) {
    const auto single = relay.recode(rng_b);
    EXPECT_EQ(batch[j].serialize(), single.serialize()) << "packet " << j;
  }
}

TEST(Batch, EncodeRandomBatchMatchesSequentialDrawOrder) {
  coding::CodingParams p;
  p.generation_blocks = 32;
  p.block_size = 128;
  const auto data = random_bytes(p.generation_bytes(), 23);
  coding::Generation gen(0, data, p);
  auto pool = coding::PacketPool::make();
  std::mt19937 rng_a(9);
  std::mt19937 rng_b(9);
  coding::Encoder batched(1, gen, rng_a, pool);
  coding::Encoder sequential(1, gen, rng_b, pool);
  coding::PacketBatch batch;
  batched.encode_random_batch(8, batch);
  ASSERT_EQ(batch.size(), 8u);
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_EQ(batch[j].serialize(), sequential.encode_random().serialize())
        << "packet " << j;
  }
}

TEST(Batch, SystematicFastPathMatchesGeneralElimination) {
  // The fast path (identity coefficient row installed without a sweep)
  // must be observationally identical to full Gaussian elimination:
  // same per-add verdicts, same rank trajectory, same recovery.
  coding::CodingParams p;
  p.generation_blocks = 8;
  p.block_size = 64;
  const auto data = random_bytes(p.generation_bytes(), 31);
  coding::Generation gen(0, data, p);
  auto pool = coding::PacketPool::make();
  std::mt19937 rng(32);
  coding::Encoder enc(1, gen, rng, pool);

  // Interleave systematic rows (one duplicated) with random ones.
  std::vector<coding::CodedPacket> feed;
  feed.push_back(enc.encode_systematic(3));
  feed.push_back(enc.encode_random());
  feed.push_back(enc.encode_systematic(0));
  feed.push_back(enc.encode_systematic(3));  // duplicate: not innovative
  for (std::size_t i = 0; i < p.generation_blocks; ++i) {
    feed.push_back(enc.encode_systematic(i));
  }
  feed.push_back(enc.encode_random());

  coding::Decoder fast(1, 0, p, pool);
  coding::Decoder general(1, 0, p, pool);
  general.set_systematic_fastpath(false);
  for (std::size_t i = 0; i < feed.size(); ++i) {
    const bool a = fast.add(feed[i]);
    const bool b = general.add(feed[i]);
    EXPECT_EQ(a, b) << "add verdict diverged at packet " << i;
    EXPECT_EQ(fast.rank(), general.rank()) << "rank diverged at " << i;
  }
  ASSERT_TRUE(fast.complete());
  ASSERT_TRUE(general.complete());
  EXPECT_EQ(fast.recover(), general.recover());
}

// ---------------------------------------------------------------------
// Batched-vs-unbatched butterfly differential.

ctrl::SessionSpec butterfly_session(const app::scenarios::Butterfly& b) {
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  return spec;
}

/// Run the NC butterfly with the given lane batch size; returns each
/// receiver's ordered decoded byte stream.
std::vector<std::vector<std::uint8_t>> run_butterfly_payloads(
    std::size_t max_batch, double duration) {
  const auto b = app::scenarios::butterfly(false);
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions.push_back(butterfly_session(b));
  const auto plan = ctrl::solve_deployment(prob);
  EXPECT_TRUE(plan.feasible);

  coding::CodingParams params;
  app::SyntheticProvider provider(
      7, static_cast<std::size_t>(80e6 / 8 * (duration + 4)), params);
  app::SimNet sim(b.topo);
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  wiring.vnf.max_batch = max_batch;
  wiring.repair_timeout_s = 0.3;
  app::NcMulticastSession session(sim, plan, 0, butterfly_session(b),
                                  provider, wiring);
  std::vector<std::vector<std::uint8_t>> streams(session.receiver_count());
  for (std::size_t k = 0; k < session.receiver_count(); ++k) {
    session.receiver(k).set_verify(&provider);
    session.receiver(k).set_ordered_sink(
        [&streams, k](coding::GenerationId,
                      std::vector<std::uint8_t> payload) {
          streams[k].insert(streams[k].end(), payload.begin(), payload.end());
        });
  }
  session.start();
  sim.net().sim().run_until(duration);
  for (std::size_t k = 0; k < session.receiver_count(); ++k) {
    EXPECT_EQ(session.receiver(k).stats().verify_failures, 0u);
    EXPECT_GT(streams[k].size(), 0u);
  }
  return streams;
}

TEST(Batch, BatchedAndUnbatchedButterflyDecodeIdenticalPayloads) {
  const double duration = 2.0;
  const auto per_packet = run_butterfly_payloads(1, duration);
  const auto batched =
      run_butterfly_payloads(coding::kBatchCapacity, duration);
  ASSERT_EQ(per_packet.size(), batched.size());
  for (std::size_t k = 0; k < per_packet.size(); ++k) {
    // Identical content: whichever run decoded further by the cutoff,
    // the shorter stream must be a byte-exact prefix of the longer one
    // (both verified against the provider), and the coverage gap stays
    // under one generation — batching reorders event timestamps at the
    // margin but never the decoded bytes.
    const auto& a = per_packet[k];
    const auto& c = batched[k];
    const std::size_t n = std::min(a.size(), c.size());
    coding::CodingParams params;
    EXPECT_LE(std::max(a.size(), c.size()) - n, params.generation_bytes())
        << "receiver " << k;
    EXPECT_TRUE(std::equal(a.begin(), a.begin() + n, c.begin()))
        << "receiver " << k << " diverged within the common prefix";
  }
}

}  // namespace
}  // namespace ncfn
