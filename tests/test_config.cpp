// Tests for the scenario file format parser.
#include <gtest/gtest.h>

#include <cmath>

#include "app/config.hpp"
#include "ctrl/problem.hpp"

using namespace ncfn;
using namespace ncfn::app;

namespace {
const char* kButterfly = R"(
# comment
alpha 0
node V1 host
node O2 host
node C2 host
node O1 dc bin=200 bout=200 cap=200
node C1 dc bin=200 bout=200 cap=200
node T  dc bin=200 bout=200 cap=200
node V2 dc bin=200 bout=200 cap=200
edge V1 O1 30 35
edge V1 C1 25 35
edge O1 O2 15 35
edge C1 C2 12 35
edge O1 T  20 35
edge C1 T  17 35
edge T  V2 18 35
edge V2 O2 21 35
edge V2 C2 19 35
session 1 V1 -> O2 C2 lmax=150
)";
}  // namespace

TEST(Config, ParsesButterflyScenario) {
  ParseError err;
  const auto s = parse_scenario(kButterfly, &err);
  ASSERT_TRUE(s.has_value()) << err.line << ": " << err.message;
  EXPECT_EQ(s->topo.node_count(), 7);
  EXPECT_EQ(s->topo.edge_count(), 9);
  EXPECT_DOUBLE_EQ(s->alpha, 0.0);
  ASSERT_EQ(s->sessions.size(), 1u);
  EXPECT_EQ(s->sessions[0].id, 1u);
  EXPECT_EQ(s->sessions[0].receivers.size(), 2u);
  EXPECT_NEAR(s->sessions[0].lmax_s, 0.150, 1e-12);
  // Node attributes converted to bps.
  const auto o1 = s->nodes.at("O1");
  EXPECT_EQ(s->topo.node(o1).kind, graph::NodeKind::kDataCenter);
  EXPECT_NEAR(s->topo.node(o1).bin_bps, 200e6, 1);
  // Edge attributes: ms -> s, Mbps -> bps.
  const auto e = s->topo.find_edge(s->nodes.at("V1"), s->nodes.at("O1"));
  ASSERT_NE(e, -1);
  EXPECT_NEAR(s->topo.edge(e).delay_s, 0.030, 1e-12);
  EXPECT_NEAR(s->topo.edge(e).capacity_bps, 35e6, 1);
}

TEST(Config, ParsedScenarioSolvesToButterflyCapacity) {
  const auto s = parse_scenario(kButterfly);
  ASSERT_TRUE(s.has_value());
  ctrl::DeploymentProblem prob;
  prob.topo = &s->topo;
  prob.sessions = s->sessions;
  prob.alpha = s->alpha;
  const auto plan = ctrl::solve_deployment(prob);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.lambda_mbps[0], 70.0, 0.5);
}

TEST(Config, DuplexCreatesBothDirections) {
  const auto s = parse_scenario(
      "node a dc\nnode b dc\nduplex a b 10 50\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_NE(s->topo.find_edge(0, 1), -1);
  EXPECT_NE(s->topo.find_edge(1, 0), -1);
}

TEST(Config, UncappedEdgeIsInfinite) {
  const auto s = parse_scenario("node a dc\nnode b dc\nedge a b 5\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(std::isfinite(s->topo.edge(0).capacity_bps));
}

TEST(Config, SessionOptions) {
  const auto s = parse_scenario(
      "node a host\nnode b host\nnode d dc\n"
      "edge a d 5\nedge d b 5\n"
      "session 7 a -> b lmax=80 rate=25 maxrate=100\n");
  ASSERT_TRUE(s.has_value());
  const auto& spec = s->sessions.at(0);
  EXPECT_EQ(spec.id, 7u);
  EXPECT_NEAR(spec.lmax_s, 0.080, 1e-12);
  ASSERT_TRUE(spec.fixed_rate_mbps.has_value());
  EXPECT_DOUBLE_EQ(*spec.fixed_rate_mbps, 25.0);
  ASSERT_TRUE(spec.max_rate_mbps.has_value());
  EXPECT_DOUBLE_EQ(*spec.max_rate_mbps, 100.0);
}

TEST(Config, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    int line;
  };
  const Case cases[] = {
      {"node a dc\nnode a host\n", 2},            // duplicate name
      {"node a dc\nedge a bogus 5\n", 2},         // unknown node
      {"wibble\n", 1},                            // unknown keyword
      {"node a wrongkind\n", 1},                  // bad node kind
      {"node a dc zap=1\n", 1},                   // unknown option
      {"node a dc\nnode b host\nedge a b xyz\n", 3},  // bad delay
      {"node a host\nsession 1 a ->\n", 2},       // no receivers
      {"alpha banana\n", 1},                      // bad alpha
      {"node s host\nnode d host\n"
       "session 1 s -> d\nsession 1 s -> d\n", 4},  // duplicate session id
  };
  for (const Case& c : cases) {
    ParseError err;
    EXPECT_FALSE(parse_scenario(c.text, &err).has_value()) << c.text;
    EXPECT_EQ(err.line, c.line) << c.text << " -> " << err.message;
  }
}

TEST(Config, LoadScenarioReportsMissingFile) {
  ParseError err;
  EXPECT_FALSE(load_scenario("/nonexistent/path.ncfn", &err).has_value());
  EXPECT_EQ(err.line, 0);
}

TEST(Config, ShippedScenarioFilesParse) {
  // The repository's example scenario files must stay valid.
  for (const char* path : {"tools/scenarios/butterfly.ncfn",
                           "tools/scenarios/two_sessions.ncfn",
                           "tools/scenarios/diamond_fault.ncfn"}) {
    ParseError err;
    const auto s = load_scenario(std::string(NCFN_SOURCE_DIR) + "/" + path,
                                 &err);
    EXPECT_TRUE(s.has_value())
        << path << ":" << err.line << ": " << err.message;
  }
}

TEST(Config, ParsesFailAndCrashLines) {
  const auto s = parse_scenario(
      "node a dc cap=100\nnode b dc cap=100\nduplex a b 5 100\n"
      "fail a b at=2 for=1.5\n"
      "fail b a at=5\n"
      "crash a at=3 for=0.5\n"
      "crash b at=4\n");
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ(s->failures.size(), 2u);
  EXPECT_EQ(s->failures[0].from, s->nodes.at("a"));
  EXPECT_EQ(s->failures[0].to, s->nodes.at("b"));
  EXPECT_DOUBLE_EQ(s->failures[0].at_s, 2.0);
  EXPECT_DOUBLE_EQ(s->failures[0].for_s, 1.5);
  EXPECT_DOUBLE_EQ(s->failures[1].at_s, 5.0);
  EXPECT_DOUBLE_EQ(s->failures[1].for_s, 0.0);  // stays down
  ASSERT_EQ(s->crashes.size(), 2u);
  EXPECT_EQ(s->crashes[0].node, s->nodes.at("a"));
  EXPECT_DOUBLE_EQ(s->crashes[0].at_s, 3.0);
  EXPECT_DOUBLE_EQ(s->crashes[0].for_s, 0.5);
  EXPECT_DOUBLE_EQ(s->crashes[1].for_s, 0.0);  // default restart latency
}

TEST(Config, RejectsMalformedFailAndCrashLines) {
  struct Case {
    const char* text;
    int line;
  };
  const char* preamble =
      "node a dc cap=100\nnode b dc cap=100\nnode h host\nedge a b 5 100\n";
  const Case cases[] = {
      {"fail a b\n", 5},             // missing at=
      {"fail a bogus at=1\n", 5},    // unknown node
      {"fail b a at=1\n", 5},        // no such edge (a->b only)
      {"fail a b at=-1\n", 5},       // negative time
      {"fail a b at=1 zap=2\n", 5},  // unknown option
      {"crash a\n", 5},              // missing at=
      {"crash bogus at=1\n", 5},     // unknown node
      {"crash h at=1\n", 5},         // host, not a data center
      {"crash a at=1 for=-2\n", 5},  // negative duration
  };
  for (const Case& c : cases) {
    ParseError err;
    const std::string text = std::string(preamble) + c.text;
    EXPECT_FALSE(parse_scenario(text, &err).has_value()) << c.text;
    EXPECT_EQ(err.line, c.line) << c.text << " -> " << err.message;
  }
}
