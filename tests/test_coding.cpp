// Unit tests for the RLNC codec: header wire format, generation
// segmentation, encode/decode round trips, relay recoding, and the FIFO
// generation buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "coding/buffer.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/generic_codec.hpp"
#include "coding/packet.hpp"

using namespace ncfn;
using namespace ncfn::coding;

namespace {
std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}
}  // namespace

TEST(CodingParams, SizesMatchThePaper) {
  CodingParams p;  // defaults: 1460-byte blocks, 4 per generation
  EXPECT_EQ(p.block_size, 1460u);
  EXPECT_EQ(p.generation_blocks, 4u);
  EXPECT_EQ(p.header_bytes(), 12u);  // 8 B ids + 4 coefficients
  // NC packet + UDP (8) + IP (20) must equal the 1500-byte MTU.
  EXPECT_EQ(p.packet_bytes() + 8 + 20, 1500u);
  EXPECT_EQ(p.buffer_generations, 1024u);
}

TEST(Packet, SerializeParseRoundTrip) {
  CodingParams p;
  const std::vector<std::uint8_t> coeffs{1, 2, 3, 4};
  const auto payload = random_bytes(p.block_size, 7);
  const auto pkt = CodedPacket::make(0xDEADBEEF, 42, coeffs, payload);
  const auto wire = pkt.serialize();
  EXPECT_EQ(wire.size(), p.packet_bytes());
  const auto back = CodedPacket::parse(wire, p);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session, pkt.session);
  EXPECT_EQ(back->generation, pkt.generation);
  EXPECT_TRUE(std::ranges::equal(back->coeffs(), coeffs));
  EXPECT_TRUE(std::ranges::equal(back->payload(), payload));
}

TEST(Packet, SerializeIntoReusesCallerStorage) {
  CodingParams p;
  const std::vector<std::uint8_t> coeffs{9, 0, 0, 1};
  const auto payload = random_bytes(p.block_size, 8);
  const auto pkt = CodedPacket::make(5, 6, coeffs, payload);
  std::vector<std::uint8_t> wire;
  wire.reserve(p.packet_bytes());
  const auto* data_before = wire.data();
  pkt.serialize_into(wire);
  EXPECT_EQ(wire.data(), data_before);  // capacity was enough: no realloc
  EXPECT_EQ(wire, pkt.serialize());
}

TEST(Packet, ParseRejectsWrongSize) {
  CodingParams p;
  std::vector<std::uint8_t> wire(p.packet_bytes() - 1, 0);
  EXPECT_FALSE(CodedPacket::parse(wire, p).has_value());
  wire.resize(p.packet_bytes() + 3, 0);
  EXPECT_FALSE(CodedPacket::parse(wire, p).has_value());
}

TEST(Packet, SystematicIndexDetection) {
  const std::vector<std::uint8_t> payload(16, 0);
  auto with_coeffs = [&](std::vector<std::uint8_t> cs) {
    return CodedPacket::make(1, 0, cs, payload);
  };
  EXPECT_EQ(with_coeffs({0, 1, 0, 0}).systematic_index(), 1u);
  EXPECT_FALSE(with_coeffs({0, 2, 0, 0}).systematic_index().has_value());
  EXPECT_FALSE(with_coeffs({1, 1, 0, 0}).systematic_index().has_value());
  // All-zero coefficients: not a valid systematic packet.
  EXPECT_FALSE(with_coeffs({0, 0, 0, 0}).systematic_index().has_value());
}

TEST(Generation, PadsTailBlock) {
  CodingParams p;
  p.block_size = 10;
  p.generation_blocks = 3;
  const auto data = random_bytes(17, 3);
  Generation gen(5, data, p);
  EXPECT_EQ(gen.id(), 5u);
  EXPECT_EQ(gen.block_count(), 3u);
  EXPECT_EQ(gen.payload_bytes(), 17u);
  // Block 1 is half data, half zero padding; block 2 all padding.
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(gen.block(0)[i], data[i]);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(gen.block(1)[i], data[10 + i]);
  for (std::size_t i = 7; i < 10; ++i) EXPECT_EQ(gen.block(1)[i], 0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(gen.block(2)[i], 0);
}

TEST(Generation, SplitCoversAllBytes) {
  CodingParams p;
  p.block_size = 100;
  p.generation_blocks = 4;
  const auto data = random_bytes(1234, 11);
  const auto gens = split_into_generations(data, p, 10);
  ASSERT_EQ(gens.size(), 4u);  // ceil(1234 / 400)
  EXPECT_EQ(gens[0].id(), 10u);
  EXPECT_EQ(gens[3].id(), 13u);
  EXPECT_EQ(gens[3].payload_bytes(), 1234u - 3 * 400u);
}

class RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RoundTrip, RandomCodedPacketsDecode) {
  const std::size_t g = GetParam();
  CodingParams p;
  p.block_size = 64;
  p.generation_blocks = g;
  std::mt19937 rng(17);
  const auto data = random_bytes(p.generation_bytes(), 23);
  Generation gen(0, data, p);
  Encoder enc(9, gen, rng);
  Decoder dec(9, 0, p);

  std::size_t fed = 0;
  while (!dec.complete()) {
    dec.add(enc.encode_random());
    ++fed;
    ASSERT_LE(fed, g + 20) << "decoder is not converging";
  }
  EXPECT_EQ(dec.rank(), g);
  const auto blocks = dec.recover();
  ASSERT_EQ(blocks.size(), g);
  for (std::size_t i = 0; i < g; ++i) {
    EXPECT_EQ(std::vector<std::uint8_t>(gen.block(i).begin(),
                                        gen.block(i).end()),
              blocks[i])
        << "block " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(GenerationSizes, RoundTrip,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

TEST(Decoder, SystematicPacketsDecodeWithExactlyG) {
  CodingParams p;
  p.block_size = 32;
  p.generation_blocks = 6;
  std::mt19937 rng(19);
  const auto data = random_bytes(p.generation_bytes(), 29);
  Generation gen(1, data, p);
  Encoder enc(2, gen, rng);
  Decoder dec(2, 1, p);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(dec.add(enc.encode_systematic(i)));
  }
  EXPECT_TRUE(dec.complete());
}

TEST(Decoder, DuplicatePacketIsNotInnovative) {
  CodingParams p;
  p.block_size = 16;
  p.generation_blocks = 4;
  std::mt19937 rng(31);
  const auto data = random_bytes(p.generation_bytes(), 37);
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng);
  Decoder dec(1, 0, p);
  const auto pkt = enc.encode_random();
  EXPECT_TRUE(dec.add(pkt));
  EXPECT_FALSE(dec.add(pkt));
  EXPECT_EQ(dec.rank(), 1u);
  EXPECT_EQ(dec.packets_seen(), 2u);
}

TEST(Decoder, LinearCombinationOfReceivedIsNotInnovative) {
  CodingParams p;
  p.block_size = 16;
  p.generation_blocks = 4;
  std::mt19937 rng(41);
  const auto data = random_bytes(p.generation_bytes(), 43);
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng);
  Decoder dec(1, 0, p);
  const auto a = enc.encode_with(std::vector<std::uint8_t>{1, 2, 0, 0});
  const auto b = enc.encode_with(std::vector<std::uint8_t>{0, 0, 3, 1});
  ASSERT_TRUE(dec.add(a));
  ASSERT_TRUE(dec.add(b));
  // a + b is in the span.
  const auto c = enc.encode_with(std::vector<std::uint8_t>{1, 2, 3, 1});
  EXPECT_FALSE(dec.add(c));
}

TEST(Decoder, RecodedPacketsFromRelayChainDecode) {
  // source -> relay1 -> relay2 -> destination, all via recode().
  CodingParams p;
  p.block_size = 128;
  p.generation_blocks = 4;
  std::mt19937 rng(53);
  const auto data = random_bytes(p.generation_bytes(), 59);
  Generation gen(7, data, p);
  Encoder enc(3, gen, rng);
  Decoder relay1(3, 7, p), relay2(3, 7, p), dst(3, 7, p);

  int guard = 0;
  while (!dst.complete()) {
    ASSERT_LT(guard++, 200);
    relay1.add(enc.encode_random());
    if (relay1.rank() > 0) relay2.add(relay1.recode(rng));
    if (relay2.rank() > 0) dst.add(relay2.recode(rng));
  }
  const auto blocks = dst.recover();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::vector<std::uint8_t>(gen.block(i).begin(),
                                        gen.block(i).end()),
              blocks[i]);
  }
}

TEST(Decoder, RecodeNeverLeavesRowSpace) {
  CodingParams p;
  p.block_size = 8;
  p.generation_blocks = 4;
  std::mt19937 rng(61);
  const auto data = random_bytes(p.generation_bytes(), 67);
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng);
  Decoder partial(1, 0, p);
  partial.add(enc.encode_systematic(0));
  partial.add(enc.encode_systematic(1));
  ASSERT_EQ(partial.rank(), 2u);
  // Recoded packets from a rank-2 relay can never raise another rank-2
  // decoder that holds the same subspace to rank 3.
  Decoder other(1, 0, p);
  other.add(enc.encode_systematic(0));
  other.add(enc.encode_systematic(1));
  for (int i = 0; i < 50; ++i) {
    other.add(partial.recode(rng));
  }
  EXPECT_EQ(other.rank(), 2u);
}

TEST(Buffer, CreatesAndFindsState) {
  CodingParams p;
  GenerationBuffer buf(p);
  EXPECT_EQ(buf.find(1, 0), nullptr);
  Decoder& d = buf.state(1, 0);
  EXPECT_EQ(&d, buf.find(1, 0));
  EXPECT_EQ(buf.generations_buffered(), 1u);
}

TEST(Buffer, FifoEvictionPerSession) {
  CodingParams p;
  p.buffer_generations = 3;
  GenerationBuffer buf(p);
  buf.state(1, 10);
  buf.state(1, 11);
  buf.state(1, 12);
  buf.state(2, 99);  // other session: independent budget
  EXPECT_EQ(buf.evictions(), 0u);
  buf.state(1, 13);  // evicts (1, 10)
  EXPECT_EQ(buf.evictions(), 1u);
  EXPECT_EQ(buf.find(1, 10), nullptr);
  EXPECT_NE(buf.find(1, 11), nullptr);
  EXPECT_NE(buf.find(2, 99), nullptr);
}

TEST(Buffer, EraseSessionDropsAllItsGenerations) {
  CodingParams p;
  GenerationBuffer buf(p);
  buf.state(1, 0);
  buf.state(1, 1);
  buf.state(2, 0);
  buf.erase_session(1);
  EXPECT_EQ(buf.find(1, 0), nullptr);
  EXPECT_EQ(buf.find(1, 1), nullptr);
  EXPECT_NE(buf.find(2, 0), nullptr);
  EXPECT_EQ(buf.generations_buffered(), 1u);
}

TEST(Buffer, EraseSingleGeneration) {
  CodingParams p;
  p.buffer_generations = 2;
  GenerationBuffer buf(p);
  buf.state(1, 0);
  buf.state(1, 1);
  buf.erase(1, 0);
  EXPECT_EQ(buf.find(1, 0), nullptr);
  buf.state(1, 2);  // fits without eviction now
  EXPECT_EQ(buf.evictions(), 0u);
}

// ---- Generic (field-parameterized) codec ----

template <unsigned M>
void generic_roundtrip() {
  ncfn::gf::Field<M> field;
  using Elem = typename ncfn::gf::Field<M>::Elem;
  std::mt19937 rng(71);
  const std::size_t g = 4, elems = 64;
  std::vector<std::vector<Elem>> blocks(g);
  std::uniform_int_distribution<unsigned> d(0, ncfn::gf::Field<M>::kMax);
  for (auto& b : blocks) {
    b.resize(elems);
    for (auto& e : b) e = static_cast<Elem>(d(rng));
  }
  ncfn::coding::GenericEncoder<M> enc(field, blocks);
  ncfn::coding::GenericDecoder<M> dec(field, g, elems);
  int guard = 0;
  while (!dec.complete()) {
    ASSERT_LT(guard++, 100);
    dec.add(enc.encode_random(rng));
  }
  EXPECT_EQ(dec.recover(), blocks);
}

TEST(GenericCodec, RoundTripGf16) { generic_roundtrip<4>(); }
TEST(GenericCodec, RoundTripGf256) { generic_roundtrip<8>(); }
TEST(GenericCodec, RoundTripGf65536) { generic_roundtrip<16>(); }
