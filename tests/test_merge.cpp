// Edge-case suite for the post-barrier trace/metrics merge (ctest -L
// obs|mt). test_mt.cpp proves the merge agrees with the inline run on
// real scenarios; this file pins the boundary behavior with hand-
// written goldens, BYTE-compared: equal timestamps across 3+ inputs,
// empty input streams in every position, and header-only (registered
// but empty) metrics. Byte equality is the contract — a merge that is
// "semantically" right but reorders or reformats breaks replay diffs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ncfn;

obs::EventTrace make_trace(double* clock_slot) {
  obs::EventTrace tr;
  tr.enable();
  tr.set_clock([clock_slot] { return *clock_slot; });
  return tr;
}

// ---- Traces ----

TEST(MergeEdge, EqualTimestampsAcrossThreeInputsKeepInputOrder) {
  double t = 1.0;
  obs::EventTrace a = make_trace(&t);
  obs::EventTrace b = make_trace(&t);
  obs::EventTrace c = make_trace(&t);
  // Every record carries the same timestamp: the (input index, emission
  // order) tie-break decides everything. c emits twice to also pin
  // within-input stability under ties.
  a.node_state(1, true);
  b.node_state(2, true);
  c.node_state(3, true);
  c.node_state(4, false);

  const std::string merged = obs::merge_traces({&a, &b, &c});
  EXPECT_EQ(merged,
            "{\"t\":1.000000000,\"ev\":\"node_up\",\"node\":1}\n"
            "{\"t\":1.000000000,\"ev\":\"node_up\",\"node\":2}\n"
            "{\"t\":1.000000000,\"ev\":\"node_up\",\"node\":3}\n"
            "{\"t\":1.000000000,\"ev\":\"node_down\",\"node\":4}\n");
}

TEST(MergeEdge, EqualTimestampBlocksInterleaveByTimeNotInput) {
  double t = 0;
  obs::EventTrace a = make_trace(&t);
  obs::EventTrace b = make_trace(&t);
  t = 2.0;
  a.node_state(1, true);
  t = 1.0;
  b.node_state(2, true);
  t = 2.0;
  b.node_state(3, true);  // ties a's 2.0 record: input 0 first

  const std::string merged = obs::merge_traces({&a, &b});
  EXPECT_EQ(merged,
            "{\"t\":1.000000000,\"ev\":\"node_up\",\"node\":2}\n"
            "{\"t\":2.000000000,\"ev\":\"node_up\",\"node\":1}\n"
            "{\"t\":2.000000000,\"ev\":\"node_up\",\"node\":3}\n");
}

TEST(MergeEdge, EmptyInputsVanishWithoutATrace) {
  double t = 0.5;
  obs::EventTrace empty_head = make_trace(&t);
  obs::EventTrace populated = make_trace(&t);
  obs::EventTrace empty_tail = make_trace(&t);
  populated.node_state(7, true);

  // Empty streams in any position contribute zero bytes; a merge with
  // one live input IS that input, byte for byte.
  EXPECT_EQ(obs::merge_traces({&empty_head, &populated, &empty_tail}),
            populated.data());
  EXPECT_EQ(obs::merge_traces({&empty_head, &empty_tail}), "");
  EXPECT_EQ(obs::merge_traces({}), "");
}

// ---- Metrics ----

TEST(MergeEdge, HeaderOnlyMetricsSnapshotIsTheEmptyGolden) {
  // A registry with nothing registered serializes to the header-only
  // snapshot: all three sections present, all empty. The merge of such
  // registries is the same golden — sections never disappear.
  const std::string kEmptyGolden =
      "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  const obs::MetricsRegistry blank;
  EXPECT_EQ(blank.to_json(), kEmptyGolden);
  const obs::MetricsRegistry none = obs::merge_metrics({});
  EXPECT_EQ(none.to_json(), kEmptyGolden);

  obs::MetricsRegistry a, b;
  const obs::MetricsRegistry merged = obs::merge_metrics({&a, &b});
  EXPECT_EQ(merged.to_json(), kEmptyGolden);
}

TEST(MergeEdge, EmptyRegistriesAreTheMergeIdentity) {
  obs::MetricsRegistry empty_head, populated, empty_tail;
  populated.counter("pkts").inc(11);
  populated.gauge("load").add(2.5);
  const std::vector<double> bounds = {1.0, 4.0};
  populated.histogram("lat", bounds).record(0.5);
  populated.histogram("lat", bounds).record(6.0);

  const obs::MetricsRegistry merged =
      obs::merge_metrics({&empty_head, &populated, &empty_tail});
  EXPECT_EQ(merged.to_json(), populated.to_json());
}

TEST(MergeEdge, ZeroValuedEntriesSurviveTheFold) {
  // "Registered but never bumped" is observable state (the snapshot
  // names the metric); the fold must keep it rather than dropping
  // zero-valued entries.
  obs::MetricsRegistry a, b;
  a.counter("seen");  // registered, value 0
  b.counter("seen").inc(0);
  a.gauge("idle");
  const obs::MetricsRegistry merged = obs::merge_metrics({&a, &b});
  EXPECT_EQ(merged.to_json(),
            "{\"counters\":{\"seen\":0},\"gauges\":{\"idle\":0},"
            "\"histograms\":{}}");
}

}  // namespace
