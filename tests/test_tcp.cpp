// Tests for the TCP-Reno baseline transport: completion, goodput bounds,
// loss response, and retransmission accounting.
#include <gtest/gtest.h>

#include <set>

#include "netsim/loss.hpp"
#include "netsim/network.hpp"
#include "netsim/tcp.hpp"

using namespace ncfn::netsim;

namespace {
Network make_duplex(double capacity_bps, double delay_s) {
  Network net(1);
  net.add_node("src");
  net.add_node("dst");
  LinkConfig lc;
  lc.capacity_bps = capacity_bps;
  lc.prop_delay = delay_s;
  lc.queue_packets = 256;
  net.add_duplex_link(0, 1, lc);
  return net;
}
}  // namespace

TEST(Tcp, LosslessTransferCompletes) {
  Network net = make_duplex(10e6, 0.01);
  const std::size_t bytes = 2 * 1000 * 1000;
  TcpTransfer tcp(net, 0, 1, 5000, bytes);
  tcp.start();
  net.sim().run_until(120);
  ASSERT_TRUE(tcp.finished());
  EXPECT_EQ(tcp.stats().retransmissions, 0u);
  EXPECT_EQ(tcp.stats().timeouts, 0u);
  // Goodput should approach but not exceed link capacity.
  const double goodput = tcp.stats().goodput_bps(bytes);
  EXPECT_GT(goodput, 5e6);
  EXPECT_LE(goodput, 10e6);
}

TEST(Tcp, GoodputBoundedByBottleneck) {
  Network net = make_duplex(2e6, 0.02);
  const std::size_t bytes = 500 * 1000;
  TcpTransfer tcp(net, 0, 1, 5000, bytes);
  tcp.start();
  net.sim().run_until(300);
  ASSERT_TRUE(tcp.finished());
  EXPECT_LE(tcp.stats().goodput_bps(bytes), 2e6 * 1.02);
}

TEST(Tcp, SurvivesHeavyLoss) {
  Network net = make_duplex(10e6, 0.01);
  net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.05));
  const std::size_t bytes = 300 * 1000;
  TcpTransfer tcp(net, 0, 1, 5000, bytes);
  tcp.start();
  net.sim().run_until(600);
  ASSERT_TRUE(tcp.finished());
  EXPECT_GT(tcp.stats().retransmissions, 0u);
}

TEST(Tcp, LossReducesGoodput) {
  const std::size_t bytes = 1000 * 1000;
  double lossless_goodput = 0, lossy_goodput = 0;
  {
    Network net = make_duplex(20e6, 0.02);
    TcpTransfer tcp(net, 0, 1, 5000, bytes);
    tcp.start();
    net.sim().run_until(600);
    ASSERT_TRUE(tcp.finished());
    lossless_goodput = tcp.stats().goodput_bps(bytes);
  }
  {
    Network net = make_duplex(20e6, 0.02);
    net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.02));
    TcpTransfer tcp(net, 0, 1, 5000, bytes);
    tcp.start();
    net.sim().run_until(600);
    ASSERT_TRUE(tcp.finished());
    lossy_goodput = tcp.stats().goodput_bps(bytes);
  }
  EXPECT_LT(lossy_goodput, lossless_goodput);
}

TEST(Tcp, LongerRttLowersGoodputUnderLoss) {
  // With loss, TCP throughput ~ MSS/(RTT*sqrt(p)): doubling RTT must hurt.
  const std::size_t bytes = 600 * 1000;
  auto run_with_delay = [&](double delay) {
    Network net = make_duplex(50e6, delay);
    net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.01));
    TcpTransfer tcp(net, 0, 1, 5000, bytes);
    tcp.start();
    net.sim().run_until(1200);
    EXPECT_TRUE(tcp.finished());
    return tcp.stats().goodput_bps(bytes);
  };
  const double fast = run_with_delay(0.005);
  const double slow = run_with_delay(0.080);
  EXPECT_LT(slow, fast);
}

TEST(Tcp, FastRetransmitFiresOnIsolatedLoss) {
  Network net = make_duplex(10e6, 0.01);
  // Small deterministic-ish loss: enough packets that some loss happens
  // mid-stream and triggers dup-ACKs rather than timeouts only.
  net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.01));
  const std::size_t bytes = 2 * 1000 * 1000;
  TcpTransfer tcp(net, 0, 1, 5000, bytes);
  tcp.start();
  net.sim().run_until(600);
  ASSERT_TRUE(tcp.finished());
  EXPECT_GT(tcp.stats().fast_retransmits, 0u);
}

namespace {
/// Loss model that drops an exact set of packet indices (deterministic
/// multi-loss-in-one-window scenarios).
class DropListLoss final : public LossModel {
 public:
  explicit DropListLoss(std::set<std::uint64_t> drops)
      : drops_(std::move(drops)) {}
  bool drop(std::mt19937&) override { return drops_.count(count_++) > 0; }

 private:
  std::set<std::uint64_t> drops_;
  std::uint64_t count_ = 0;
};
}  // namespace

TEST(Tcp, NewRenoRecoversMultipleLossesInOneWindow) {
  // Drop three data packets from the same flight: partial ACKs must
  // retransmit each new hole without waiting for an RTO.
  Network net = make_duplex(10e6, 0.01);
  net.link(0, 1)->set_loss_model(
      std::make_unique<DropListLoss>(std::set<std::uint64_t>{30, 33, 36}));
  const std::size_t bytes = 200 * 1000;  // ~137 segments
  TcpTransfer tcp(net, 0, 1, 5000, bytes);
  tcp.start();
  net.sim().run_until(60.0);
  ASSERT_TRUE(tcp.finished());
  EXPECT_EQ(tcp.stats().timeouts, 0u);  // recovery handled it
  EXPECT_GE(tcp.stats().retransmissions, 3u);
}

TEST(Tcp, RtoBackoffIsBounded) {
  // Total blackout after a few packets: RTOs back off exponentially but
  // never beyond max_rto.
  Network net = make_duplex(10e6, 0.01);
  net.link(0, 1)->set_loss_model(
      std::make_unique<DropListLoss>([] {
        std::set<std::uint64_t> all;
        for (std::uint64_t i = 5; i < 100000; ++i) all.insert(i);
        return all;
      }()));
  TcpConfig cfg;
  cfg.max_rto = 4.0;
  TcpTransfer tcp(net, 0, 1, 5000, 100 * 1000, cfg);
  tcp.start();
  net.sim().run_until(60.0);
  EXPECT_FALSE(tcp.finished());
  // ~4s max RTO over 60s after a brief ramp: at least a dozen timeouts.
  EXPECT_GE(tcp.stats().timeouts, 10u);
  EXPECT_LE(tcp.stats().timeouts, 40u);
}

TEST(Tcp, BytesAckedIsMonotonic) {
  Network net = make_duplex(5e6, 0.02);
  net.link(0, 1)->set_loss_model(std::make_unique<UniformLoss>(0.03));
  TcpTransfer tcp(net, 0, 1, 5000, 400 * 1000);
  tcp.start();
  std::size_t last = 0;
  for (int t = 1; t <= 40 && !tcp.finished(); ++t) {
    net.sim().run_until(t * 0.25);
    EXPECT_GE(tcp.bytes_acked(), last);
    last = tcp.bytes_acked();
  }
}

TEST(Tcp, ZeroLikePayloadStillOneSegment) {
  Network net = make_duplex(10e6, 0.01);
  TcpTransfer tcp(net, 0, 1, 5000, 1);  // 1 byte -> 1 segment
  tcp.start();
  net.sim().run_until(10);
  ASSERT_TRUE(tcp.finished());
  EXPECT_EQ(tcp.stats().segments_sent, 1u);
}
