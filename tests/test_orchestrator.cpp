// End-to-end control-plane tests: controller decisions travel as NC_*
// text datagrams over the simulated network to per-DC daemons, which
// parse and apply them; daemon ping probes feed delay changes back.
#include <gtest/gtest.h>

#include "app/orchestrator.hpp"
#include "app/scenarios.hpp"

using namespace ncfn;
using namespace ncfn::app;

namespace {
Orchestrator::Config base_config() {
  Orchestrator::Config cfg;
  cfg.controller.alpha = 20.0;
  cfg.controller.tau_s = 600.0;
  cfg.controller.tau1_s = cfg.controller.tau2_s = 600.0;
  cfg.probe_interval_s = 0;  // enabled per-test
  cfg.tick_interval_s = 0;
  return cfg;
}

ctrl::SessionSpec make_session(const scenarios::SixDc& net,
                               coding::SessionId id, std::size_t src,
                               std::vector<std::size_t> dsts) {
  ctrl::SessionSpec s;
  s.id = id;
  s.source = net.hosts[src];
  for (std::size_t d : dsts) s.receivers.push_back(net.hosts[d]);
  s.lmax_s = 0.150;
  s.max_rate_mbps = 200.0;
  return s;
}
}  // namespace

TEST(Orchestrator, SignalsReachDaemonsOverTheNetwork) {
  const auto net = scenarios::six_datacenters();
  SimNet sim(net.topo);
  Orchestrator orch(sim, base_config());

  ASSERT_TRUE(orch.add_session(make_session(net, 1, 0, {10, 20})));
  EXPECT_GT(orch.signals_dispatched(), 0u);

  // Nothing is applied until the control datagrams arrive (40 ms links).
  std::uint64_t received_before = 0;
  for (graph::NodeIdx dc : net.topo.data_centers()) {
    received_before += orch.daemon(dc).stats().signals_received;
  }
  EXPECT_EQ(received_before, 0u);

  sim.net().sim().run_until(1.0);
  std::uint64_t received = 0, malformed = 0;
  for (graph::NodeIdx dc : net.topo.data_centers()) {
    received += orch.daemon(dc).stats().signals_received;
    malformed += orch.daemon(dc).stats().signals_malformed;
  }
  EXPECT_EQ(received, orch.signals_dispatched());
  EXPECT_EQ(malformed, 0u);
}

TEST(Orchestrator, ForwardingTablesInstalledMatchControllerState) {
  const auto net = scenarios::six_datacenters();
  SimNet sim(net.topo);
  Orchestrator orch(sim, base_config());
  ASSERT_TRUE(orch.add_session(make_session(net, 1, 0, {15})));
  sim.net().sim().run_until(5.0);

  // Every DC that routes the session must hold exactly the controller's
  // table after the text round trip.
  int tables_checked = 0;
  for (graph::NodeIdx dc : net.topo.data_centers()) {
    const auto expected = orch.controller().forwarding_table(dc);
    if (expected.size() == 0) continue;
    EXPECT_EQ(orch.daemon(dc).table(), expected) << "dc " << dc;
    ++tables_checked;
  }
  EXPECT_GT(tables_checked, 0);
}

TEST(Orchestrator, SessionRemovalDrainsDaemonsAfterTau) {
  const auto net = scenarios::six_datacenters();
  auto cfg = base_config();
  cfg.controller.tau_s = 60.0;
  SimNet sim(net.topo);
  Orchestrator orch(sim, cfg);
  ASSERT_TRUE(orch.add_session(make_session(net, 1, 0, {30})));
  sim.net().sim().run_until(1.0);

  orch.remove_session(1);
  orch.controller().tick(sim.net().sim().now());
  orch.flush_signals();
  sim.net().sim().run_until(2.0);
  // NC_VNF_END datagrams arrived: daemons at the session's DCs are still
  // running (grace window) ...
  bool any_end_received = false;
  for (graph::NodeIdx dc : net.topo.data_centers()) {
    if (orch.daemon(dc).stats().signals_received > 1) any_end_received = true;
  }
  EXPECT_TRUE(any_end_received);
  // ... and shut down after tau.
  sim.net().sim().run_until(120.0);
  std::uint64_t shutdowns = 0;
  for (graph::NodeIdx dc : net.topo.data_centers()) {
    shutdowns += orch.daemon(dc).stats().shutdowns;
  }
  EXPECT_GT(shutdowns, 0u);
}

TEST(Orchestrator, ProbeLoopFeedsDelayChangesIntoController) {
  const auto net = scenarios::six_datacenters();
  auto cfg = base_config();
  cfg.probe_interval_s = 100.0;
  cfg.controller.tau2_s = 150.0;
  cfg.controller.rho2 = 0.05;
  SimNet sim(net.topo);
  Orchestrator orch(sim, cfg);
  ASSERT_TRUE(orch.add_session(make_session(net, 1, 0, {25, 35})));

  // Triple the physical delay of a DC-DC link the plan uses; the probes
  // must detect it and, after tau2 persistence, update the controller's
  // topology model.
  graph::EdgeIdx victim = -1;
  const auto& plan = orch.controller().plan();
  for (const auto& [e, rate] : plan.edge_rate_mbps[0]) {
    const auto& ei = net.topo.edge(e);
    if (net.topo.node(ei.from).kind == graph::NodeKind::kDataCenter &&
        net.topo.node(ei.to).kind == graph::NodeKind::kDataCenter) {
      victim = e;
      break;
    }
  }
  ASSERT_NE(victim, -1);
  const double old_delay = net.topo.edge(victim).delay_s;
  sim.link(victim)->set_prop_delay(old_delay * 3);
  // Reverse direction too, so the ping RTT reflects the change fully.
  const graph::EdgeIdx reverse = net.topo.find_edge(
      net.topo.edge(victim).to, net.topo.edge(victim).from);
  if (reverse >= 0) sim.link(reverse)->set_prop_delay(old_delay * 3);

  sim.net().sim().run_until(600.0);  // several probe rounds + persistence
  EXPECT_GT(orch.controller().topology().edge(victim).delay_s,
            old_delay * 1.5);
}

TEST(Orchestrator, PeriodicTickRunsHousekeeping) {
  const auto net = scenarios::six_datacenters();
  auto cfg = base_config();
  cfg.tick_interval_s = 50.0;
  cfg.controller.tau_s = 120.0;
  SimNet sim(net.topo);
  Orchestrator orch(sim, cfg);
  ASSERT_TRUE(orch.add_session(make_session(net, 1, 2, {22})));
  sim.net().sim().run_until(1.0);
  const int alive_with_session = orch.controller().alive_vnfs();
  ASSERT_GT(alive_with_session, 0);
  orch.remove_session(1);
  // The periodic tick must expire the draining VNFs without manual calls.
  sim.net().sim().run_until(400.0);
  EXPECT_EQ(orch.controller().alive_vnfs(), 0);
}

TEST(Orchestrator, BandwidthReportTriggersAlg1ThroughTheFacade) {
  const auto net = scenarios::six_datacenters();
  auto cfg = base_config();
  cfg.controller.tau1_s = 100.0;
  SimNet sim(net.topo);
  Orchestrator orch(sim, cfg);
  ASSERT_TRUE(orch.add_session(make_session(net, 1, 0, {40})));
  graph::NodeIdx used = -1;
  for (const auto& [v, n] : orch.controller().plan().vnf_count) {
    if (n > 0) {
      used = v;
      break;
    }
  }
  ASSERT_NE(used, -1);
  const double bin = orch.controller().topology().node(used).bin_bps;
  orch.report_vm_bandwidth(used, bin / 2, bin / 2);
  sim.net().sim().run_until(150.0);
  orch.report_vm_bandwidth(used, bin / 2, bin / 2);
  EXPECT_NEAR(orch.controller().topology().node(used).bin_bps, bin / 2, 1);
}
