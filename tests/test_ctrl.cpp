// Tests for the control-plane pieces: forwarding-table text format,
// NC_* signal wire format, and optimization problem (2).
#include <gtest/gtest.h>

#include "app/scenarios.hpp"
#include "ctrl/fwdtable.hpp"
#include "ctrl/problem.hpp"
#include "ctrl/signals.hpp"

using namespace ncfn;
using namespace ncfn::ctrl;

TEST(FwdTable, SerializeParseRoundTrip) {
  ForwardingTable tab;
  tab.set(1, {NextHop{10, 20001}, NextHop{11, 20001}});
  tab.set(7, {NextHop{3, 20007}});
  const auto text = tab.serialize();
  const auto back = ForwardingTable::parse(text);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tab);
}

TEST(FwdTable, ParseSkipsCommentsAndBlankLines) {
  const auto tab = ForwardingTable::parse(
      "# comment\n\n5 1:9000 2:9001\n# trailing\n");
  ASSERT_TRUE(tab.has_value());
  const auto* hops = tab->find(5);
  ASSERT_NE(hops, nullptr);
  EXPECT_EQ(hops->size(), 2u);
  EXPECT_EQ((*hops)[0], (NextHop{1, 9000}));
}

TEST(FwdTable, ParseRejectsGarbage) {
  EXPECT_FALSE(ForwardingTable::parse("abc 1:2\n").has_value());
  EXPECT_FALSE(ForwardingTable::parse("1 nocolon\n").has_value());
  EXPECT_FALSE(ForwardingTable::parse("1 2:notaport\n").has_value());
}

TEST(FwdTable, SessionWithNoHopsRoundTrips) {
  ForwardingTable tab;
  tab.set(3, {});
  const auto back = ForwardingTable::parse(tab.serialize());
  ASSERT_TRUE(back.has_value());
  ASSERT_NE(back->find(3), nullptr);
  EXPECT_TRUE(back->find(3)->empty());
}

TEST(FwdTable, DiffCountsChangedEntries) {
  ForwardingTable a, b;
  a.set(1, {NextHop{1, 1}});
  a.set(2, {NextHop{2, 2}});
  b.set(1, {NextHop{1, 1}});      // same
  b.set(2, {NextHop{9, 9}});      // changed
  b.set(3, {NextHop{3, 3}});      // added
  EXPECT_EQ(ForwardingTable::diff_entries(a, b), 2u);
  EXPECT_EQ(ForwardingTable::diff_entries(a, a), 0u);
  // Removal counts too.
  ForwardingTable empty;
  EXPECT_EQ(ForwardingTable::diff_entries(a, empty), 2u);
}

TEST(Signals, AllFiveTypesRoundTrip) {
  ForwardingTable tab;
  tab.set(4, {NextHop{8, 20004}});
  const Signal signals[] = {
      NcStart{12},
      NcVnfStart{3, 2},
      NcVnfEnd{9, 600.0},
      NcForwardTab{tab},
      NcSettings{{SessionSetting{4, VnfRole::kRecode, 20004},
                  SessionSetting{5, VnfRole::kDecode, 20005}},
                 4, 1460},
  };
  for (const Signal& s : signals) {
    const auto text = serialize(s);
    const auto back = parse_signal(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(back->index(), s.index());
  }
}

TEST(Signals, SettingsFieldsSurvive) {
  NcSettings s;
  s.generation_blocks = 8;
  s.block_size = 512;
  s.sessions = {SessionSetting{77, VnfRole::kForward, 12345}};
  const auto back = parse_signal(serialize(Signal{s}));
  ASSERT_TRUE(back.has_value());
  const auto& bs = std::get<NcSettings>(*back);
  EXPECT_EQ(bs.generation_blocks, 8u);
  EXPECT_EQ(bs.block_size, 512u);
  ASSERT_EQ(bs.sessions.size(), 1u);
  EXPECT_EQ(bs.sessions[0].session, 77u);
  EXPECT_EQ(bs.sessions[0].role, VnfRole::kForward);
  EXPECT_EQ(bs.sessions[0].udp_port, 12345u);
}

TEST(Signals, ForwardTabPayloadSurvives) {
  ForwardingTable tab;
  tab.set(1, {NextHop{2, 3}, NextHop{4, 5}});
  const auto back = parse_signal(serialize(Signal{NcForwardTab{tab}}));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<NcForwardTab>(*back).table, tab);
}

TEST(Signals, MalformedInputsRejected) {
  EXPECT_FALSE(parse_signal("").has_value());
  EXPECT_FALSE(parse_signal("NC_BOGUS\nEND\n").has_value());
  EXPECT_FALSE(parse_signal("NC_START\n").has_value());  // no END
  EXPECT_FALSE(parse_signal("NC_START\nEND\n").has_value());  // no session
  EXPECT_FALSE(parse_signal("NC_VNF_START\ndatacenter 1\nEND\n").has_value());
}

TEST(Signals, RoleStrings) {
  EXPECT_EQ(role_from_string("recode"), VnfRole::kRecode);
  EXPECT_EQ(role_from_string("decode"), VnfRole::kDecode);
  EXPECT_EQ(role_from_string("forward"), VnfRole::kForward);
  EXPECT_FALSE(role_from_string("nonsense").has_value());
  EXPECT_EQ(to_string(VnfRole::kRecode), "recode");
}

// ---- Optimization problem (2) ----

namespace {
ctrl::DeploymentProblem butterfly_problem(const app::scenarios::Butterfly& b,
                                          double alpha = 0.0) {
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = alpha;
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  prob.sessions.push_back(spec);
  return prob;
}
}  // namespace

TEST(Problem, ButterflyReachesCodedCapacity) {
  // With conceptual flows, the optimum multicast rate equals the min cut:
  // 70 Mbps on our butterfly (the direct 40 Mbps links raise it further,
  // so exclude them).
  const auto b = app::scenarios::butterfly(false);
  const auto plan = solve_deployment(butterfly_problem(b));
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.lambda_mbps[0], 70.0, 0.5);
  // Coding happens at T: it must have a VNF; every used DC must.
  EXPECT_GE(plan.total_vnfs(), 1);
}

TEST(Problem, ButterflyWithDirectLinksExceedsRelayedCapacity) {
  const auto b = app::scenarios::butterfly(true);
  const auto plan = solve_deployment(butterfly_problem(b));
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.lambda_mbps[0], 70.0 + 1.0);  // direct links add capacity
}

TEST(Problem, AlphaZeroVersusLargeAlpha) {
  const auto b = app::scenarios::butterfly(false);
  const auto lo = solve_deployment(butterfly_problem(b, 0.0));
  const auto hi = solve_deployment(butterfly_problem(b, 1000.0));
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  // A VNF costs 1000 Mbps-equivalent: deploying nothing beats relaying.
  EXPECT_GT(lo.total_throughput_mbps(), hi.total_throughput_mbps());
  EXPECT_LE(hi.total_vnfs(), lo.total_vnfs());
  EXPECT_EQ(hi.total_vnfs(), 0);
}

TEST(Problem, ThroughputMonotoneInAlpha) {
  const auto b = app::scenarios::butterfly(false);
  double prev_tput = 1e18;
  int prev_vnfs = 1 << 20;
  for (const double alpha : {0.0, 5.0, 20.0, 50.0, 200.0}) {
    const auto plan = solve_deployment(butterfly_problem(b, alpha));
    ASSERT_TRUE(plan.feasible) << alpha;
    EXPECT_LE(plan.total_throughput_mbps(), prev_tput + 1e-6) << alpha;
    EXPECT_LE(plan.total_vnfs(), prev_vnfs) << alpha;
    prev_tput = plan.total_throughput_mbps();
    prev_vnfs = plan.total_vnfs();
  }
}

TEST(Problem, FixedRateSessionGetsExactRate) {
  const auto b = app::scenarios::butterfly(false);
  auto prob = butterfly_problem(b, 1.0);
  prob.sessions[0].fixed_rate_mbps = 30.0;
  const auto plan = solve_deployment(prob);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.lambda_mbps[0], 30.0, 1e-6);
}

TEST(Problem, InfeasibleFixedRate) {
  const auto b = app::scenarios::butterfly(false);
  auto prob = butterfly_problem(b, 1.0);
  prob.sessions[0].fixed_rate_mbps = 500.0;  // way above the 70 Mbps cut
  const auto plan = solve_deployment(prob);
  EXPECT_FALSE(plan.feasible);
}

TEST(Problem, LambdaBoundedByMaxFlow) {
  // The LP optimum can never exceed the information-theoretic bound.
  const auto net = app::scenarios::six_datacenters();
  std::mt19937 rng(11);
  for (int trial = 0; trial < 5; ++trial) {
    ctrl::DeploymentProblem prob;
    prob.topo = &net.topo;
    prob.alpha = 0.0;
    prob.sessions.push_back(
        app::scenarios::random_session(net, 1, rng));
    const auto plan = solve_deployment(prob);
    ASSERT_TRUE(plan.feasible);
    EXPECT_GT(plan.lambda_mbps[0], 0.0);
  }
}

TEST(Problem, TightLmaxReducesThroughput) {
  const auto b = app::scenarios::butterfly(false);
  auto loose = butterfly_problem(b);
  auto tight = butterfly_problem(b);
  tight.sessions[0].lmax_s = 0.050;  // kills the T->V2 detour
  const auto p_loose = solve_deployment(loose);
  const auto p_tight = solve_deployment(tight);
  ASSERT_TRUE(p_loose.feasible);
  ASSERT_TRUE(p_tight.feasible);
  EXPECT_LT(p_tight.lambda_mbps[0], p_loose.lambda_mbps[0] - 1.0);
}

TEST(Problem, VnfCountCoversFlow) {
  // x_v must satisfy (2c)/(2e): flow through v <= min(Bin, C) * x_v.
  const auto b = app::scenarios::butterfly(false);
  const auto plan = solve_deployment(butterfly_problem(b, 20.0));
  ASSERT_TRUE(plan.feasible);
  for (const auto& [v, count] : plan.vnf_count) {
    double inflow = 0;
    for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
      for (const auto& [e, rate] : plan.edge_rate_mbps[m]) {
        if (b.topo.edge(e).to == v) inflow += rate;
      }
    }
    const double cap_per_vnf =
        std::min(b.topo.node(v).bin_bps, b.topo.node(v).vnf_capacity_bps) / 1e6;
    EXPECT_LE(inflow, cap_per_vnf * count + 1e-6) << "dc " << v;
  }
}

TEST(Problem, FrozenSessionKeepsItsFlows) {
  const auto net = app::scenarios::six_datacenters();
  ctrl::DeploymentProblem prob;
  prob.topo = &net.topo;
  prob.alpha = 20.0;
  ctrl::SessionSpec s1;
  s1.id = 1;
  s1.source = net.hosts[0];
  s1.receivers = {net.hosts[3]};
  s1.lmax_s = 0.150;
  prob.sessions.push_back(s1);
  const auto first = solve_deployment(prob);
  ASSERT_TRUE(first.feasible);

  // Add a second session with the first frozen.
  ctrl::SessionSpec s2;
  s2.id = 2;
  s2.source = net.hosts[1];
  s2.receivers = {net.hosts[4], net.hosts[5]};
  s2.lmax_s = 0.150;
  prob.sessions.push_back(s2);
  ctrl::SolveOptions opts;
  opts.frozen_sessions = {1};
  opts.previous = &first;
  const auto second = solve_deployment(prob, opts);
  ASSERT_TRUE(second.feasible);
  const auto m1 = second.session_index(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_NEAR(second.lambda_mbps[*m1], first.lambda_mbps[0], 1e-4);
  EXPECT_GT(second.lambda_mbps[*second.session_index(2)], 0.0);
}

TEST(Problem, NextHopsFollowEdgeRates) {
  const auto b = app::scenarios::butterfly(false);
  const auto plan = solve_deployment(butterfly_problem(b));
  ASSERT_TRUE(plan.feasible);
  const auto src_hops = plan.next_hops(b.topo, 0, b.source);
  ASSERT_EQ(src_hops.size(), 2u);  // both branches used at 35 each
  double total = 0;
  for (const auto& [to, rate] : src_hops) total += rate;
  EXPECT_NEAR(total, 70.0, 0.5);
}
