# Script-mode negative-compile check — the `cmake -P` equivalent of
# try_compile (which only exists in project mode): compile one TU
# expecting FAILURE, and require the diagnostics to match the regex the
# TU itself declares in its "// negcompile-expect: <regex>" line. Both
# directions are asserted: a TU that compiles means the gate went dead
# (e.g. a refactor silently stripped the annotations); a failure with
# the WRONG diagnostic means the TU rotted into testing something else.
#
# Usage:
#   cmake -DCOMPILER=<c++> "-DFLAGS=<flag string>" -DTU=<file>
#         -P expect_fail.cmake
if(NOT COMPILER OR NOT TU)
  message(FATAL_ERROR "expect_fail.cmake: COMPILER and TU are required")
endif()

file(STRINGS "${TU}" _expect_lines REGEX "negcompile-expect:")
list(LENGTH _expect_lines _n)
if(NOT _n EQUAL 1)
  message(FATAL_ERROR
          "${TU}: need exactly one '// negcompile-expect: <regex>' line, "
          "found ${_n}")
endif()
string(REGEX REPLACE ".*negcompile-expect: *" "" EXPECT "${_expect_lines}")

separate_arguments(_flag_list UNIX_COMMAND "${FLAGS}")
execute_process(
  COMMAND ${COMPILER} ${_flag_list} "${TU}"
  RESULT_VARIABLE _rc
  OUTPUT_VARIABLE _out
  ERROR_VARIABLE _err)
set(_diag "${_out}${_err}")

if(_rc EQUAL 0)
  message(FATAL_ERROR
          "expected compilation of ${TU} to FAIL, but it succeeded — the "
          "negative-compile gate is dead (were the annotations stripped?)")
endif()
if(NOT _diag MATCHES "${EXPECT}")
  message(FATAL_ERROR
          "${TU} failed to compile (good) but the diagnostics do not match "
          "\"${EXPECT}\":\n${_diag}")
endif()
message(STATUS "ok: ${TU} fails to compile with \"${EXPECT}\"")
