// WorkerPool owns threads and a mutex; copying one would duplicate the
// lane handles and shear the generation protocol. Both copy members are
// deleted, so this TU must not compile under ANY compiler — it keeps
// the negcompile gate live even on hosts whose compiler lacks
// -Wthread-safety.
// negcompile-expect: deleted
#include "netsim/worker.hpp"

void copy_a_pool() {
  ncfn::netsim::WorkerPool pool(2);
  ncfn::netsim::WorkerPool clone = pool;
  (void)clone;
}
