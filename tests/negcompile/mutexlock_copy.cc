// MutexLock is a scoped capability: copying one would release the same
// mutex twice. Copy members are deleted, so this fails under any
// compiler (not just clang with -Wthread-safety).
// negcompile-expect: deleted
#include "common/sync.hpp"

void copy_a_lock() {
  ncfn::common::Mutex mu;
  const ncfn::common::MutexLock lock(mu);
  const ncfn::common::MutexLock clone = lock;
}
