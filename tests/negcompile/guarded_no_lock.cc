// Reading a NCFN_GUARDED_BY(mu_) field without holding mu_ must be
// rejected by clang's thread-safety analysis.
// negcompile-expect: requires holding mutex
#include <cstdint>

#include "common/sync.hpp"

namespace {

class Counter {
 public:
  std::uint64_t peek() const { return value_; }

 private:
  mutable ncfn::common::Mutex mu_;
  std::uint64_t value_ NCFN_GUARDED_BY(mu_) = 0;
};

}  // namespace

std::uint64_t race() {
  const Counter c;
  return c.peek();
}
