// The phantom Role capability models structural ownership (one worker
// lane per shard between barriers). Touching a NCFN_GUARDED_BY(owner)
// field without assert_held() means the caller never claimed ownership.
// negcompile-expect: requires holding role
#include <cstdint>

#include "common/sync.hpp"

namespace {

struct Shard {
  ncfn::common::Role owner;
  std::uint64_t events NCFN_GUARDED_BY(owner) = 0;
};

}  // namespace

std::uint64_t touch_unowned(const Shard& shard) {
  return shard.events;
}
