// Returning a reference to guarded state lets the caller touch it after
// the lock is gone. -Wthread-safety-reference catches the escape.
// negcompile-expect: requires holding mutex
#include <cstdint>
#include <vector>

#include "common/sync.hpp"

namespace {

class Queue {
 public:
  const std::vector<std::uint64_t>& items() const {
    const ncfn::common::MutexLock lock(mu_);
    return items_;  // reference outlives the lock
  }

 private:
  mutable ncfn::common::Mutex mu_;
  std::vector<std::uint64_t> items_ NCFN_GUARDED_BY(mu_);
};

}  // namespace

std::size_t escape() {
  const Queue q;
  return q.items().size();
}
