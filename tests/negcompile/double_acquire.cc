// Acquiring a non-recursive Mutex twice on one thread deadlocks; the
// analysis sees the second scoped acquire while the first is held.
// negcompile-expect: already held
#include "common/sync.hpp"

void deadlock() {
  ncfn::common::Mutex mu;
  const ncfn::common::MutexLock outer(mu);
  const ncfn::common::MutexLock inner(mu);
}
