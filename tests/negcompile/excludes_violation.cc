// NCFN_EXCLUDES(mu_) declares a function must be entered with mu_ NOT
// held (it will acquire mu_ itself — calling it under the lock is a
// self-deadlock). The analysis rejects the call while mu_ is held.
// negcompile-expect: while mutex
#include "common/sync.hpp"

namespace {

class Pool {
 public:
  void shutdown() NCFN_EXCLUDES(mu_) {
    const ncfn::common::MutexLock lock(mu_);
    stopped_ = true;
  }

  void oops() {
    const ncfn::common::MutexLock lock(mu_);
    shutdown();  // would self-deadlock: shutdown() re-acquires mu_
  }

 private:
  ncfn::common::Mutex mu_;
  bool stopped_ NCFN_GUARDED_BY(mu_) = false;
};

}  // namespace

void trigger() {
  Pool p;
  p.oops();
}
