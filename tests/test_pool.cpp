// Tests for the packet buffer pool: recycle-reuse correctness (no stale
// bytes across reuse), the exhaustion growth path, fully-pooled codec
// round trips, and the zero-allocation steady state the data plane
// promises (pool.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/packet.hpp"
#include "coding/pool.hpp"

using namespace ncfn::coding;

TEST(PacketPool, ReusedBufferIsZeroFilledNotStale) {
  auto pool = PacketPool::make();
  {
    PooledBuf b = pool.acquire(256);
    std::fill(b.span().begin(), b.span().end(), 0xFF);
  }  // released with poisoned contents
  EXPECT_EQ(pool.stats().free_buffers, 1u);

  PooledBuf again = pool.acquire(256);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_TRUE(std::all_of(again.span().begin(), again.span().end(),
                          [](std::uint8_t x) { return x == 0; }));

  // A smaller acquire must also reuse the larger recycled buffer and
  // present exactly the requested (zeroed) size.
  again.reset();
  PooledBuf smaller = pool.acquire(100);
  EXPECT_EQ(smaller.size(), 100u);
  EXPECT_EQ(pool.stats().reuses, 2u);
  EXPECT_TRUE(std::all_of(smaller.span().begin(), smaller.span().end(),
                          [](std::uint8_t x) { return x == 0; }));
}

TEST(PacketPool, ExhaustionGrowsInsteadOfFailing) {
  auto pool = PacketPool::make();
  std::vector<PooledBuf> live;
  for (int i = 0; i < 64; ++i) live.push_back(pool.acquire(128));
  // All buffers are live at once: every acquire had to hit the heap.
  EXPECT_EQ(pool.stats().acquires, 64u);
  EXPECT_EQ(pool.stats().heap_allocs, 64u);
  EXPECT_EQ(pool.stats().outstanding(), 64u);
  for (auto& b : live) {
    ASSERT_EQ(b.size(), 128u);
    b.span()[0] = 1;  // every buffer is distinct, writable storage
  }
  live.clear();
  EXPECT_EQ(pool.stats().outstanding(), 0u);
  EXPECT_EQ(pool.stats().free_buffers, 64u);
  // The next burst is served entirely from the freelist.
  for (int i = 0; i < 64; ++i) live.push_back(pool.acquire(128));
  EXPECT_EQ(pool.stats().heap_allocs, 64u);
  EXPECT_EQ(pool.stats().reuses, 64u);
}

TEST(PacketPool, BoundedFreelistDropsOverflow) {
  auto pool = PacketPool::make(/*max_free=*/2);
  std::vector<PooledBuf> live;
  for (int i = 0; i < 5; ++i) live.push_back(pool.acquire(64));
  live.clear();
  EXPECT_EQ(pool.stats().free_buffers, 2u);
  EXPECT_EQ(pool.stats().dropped, 3u);
}

TEST(PacketPool, CopyingAPooledPacketGivesIndependentStorage) {
  auto pool = PacketPool::make();
  const std::vector<std::uint8_t> coeffs{1, 2, 3, 4};
  const std::vector<std::uint8_t> payload(32, 0xAB);
  CodedPacket a = CodedPacket::make(7, 9, coeffs, payload, pool);
  CodedPacket b = a;
  ASSERT_NE(a.row().data(), b.row().data());
  EXPECT_TRUE(std::ranges::equal(a.row(), b.row()));
  b.coeffs()[0] = 0x55;
  EXPECT_EQ(a.coeffs()[0], 1);
}

TEST(PacketPool, DecoderRoundTripOnPooledBuffers) {
  CodingParams p;
  p.block_size = 64;
  p.generation_blocks = 8;
  auto pool = PacketPool::make();
  std::mt19937 rng(123);
  std::vector<std::uint8_t> data(p.generation_bytes());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng, pool);
  Decoder dec(1, 0, p, pool);
  int guard = 0;
  while (!dec.complete()) {
    ASSERT_LT(guard++, 40);
    dec.add(enc.encode_random());
  }
  const auto blocks = dec.recover();
  ASSERT_EQ(blocks.size(), p.generation_blocks);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_TRUE(std::ranges::equal(
        blocks[i], std::span<const std::uint8_t>(gen.block(i))))
        << "block " << i;
  }
}

TEST(PacketPool, SteadyStateEncodeRecodePathDoesNotAllocate) {
  CodingParams p;  // wire defaults: 1460-byte blocks, 4 per generation
  auto pool = PacketPool::make();
  std::mt19937 rng(7);
  std::vector<std::uint8_t> data(p.generation_bytes());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng, pool);

  auto one_round = [&](Decoder& dec) {
    for (std::size_t i = 0; i < p.generation_blocks + 2; ++i) {
      dec.add(enc.encode_random());
    }
    for (int i = 0; i < 8; ++i) {
      CodedPacket out = dec.recode(rng);
      ASSERT_EQ(out.payload_size(), p.block_size);
    }
  };

  // Warmup: one full decode + recode round sizes the freelist.
  {
    Decoder dec(1, 0, p, pool);
    one_round(dec);
  }
  const auto warm = pool.stats();

  // Steady state: many more rounds must be served purely from the
  // freelist — the heap-allocation counter stays flat.
  for (int round = 0; round < 20; ++round) {
    Decoder dec(1, 0, p, pool);
    one_round(dec);
  }
  const auto after = pool.stats();
  EXPECT_EQ(after.heap_allocs, warm.heap_allocs)
      << "steady-state encode/add/recode touched the heap";
  EXPECT_GT(after.reuses, warm.reuses);
  EXPECT_EQ(after.outstanding(), 0u);
}

TEST(PacketPool, NullPoolStillWorks) {
  PacketPool none;  // null handle: plain heap buffers
  EXPECT_FALSE(static_cast<bool>(none));
  PooledBuf b = none.acquire(64);
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(std::all_of(b.span().begin(), b.span().end(),
                          [](std::uint8_t x) { return x == 0; }));
  EXPECT_EQ(none.stats().acquires, 0u);  // null pool keeps no stats
}
