// Tests for the dynamic controller: Alg. 1 (bandwidth variation), Alg. 2
// (delay changes), Alg. 3 (session/receiver churn), VNF draining/reuse,
// and the signal log.
#include <gtest/gtest.h>

#include "app/scenarios.hpp"
#include "ctrl/controller.hpp"

using namespace ncfn;
using namespace ncfn::ctrl;

namespace {
Controller::Config base_config() {
  Controller::Config cfg;
  cfg.alpha = 20.0;
  cfg.tau_s = 600.0;   // 10 min
  cfg.tau1_s = 600.0;
  cfg.tau2_s = 600.0;
  cfg.rho1 = 0.05;
  cfg.rho2 = 0.05;
  return cfg;
}

SessionSpec session_between(const app::scenarios::SixDc& net,
                            coding::SessionId id, std::size_t src,
                            std::vector<std::size_t> dsts) {
  SessionSpec s;
  s.id = id;
  s.source = net.hosts[src];
  for (std::size_t d : dsts) s.receivers.push_back(net.hosts[d]);
  s.lmax_s = 0.150;
  return s;
}
}  // namespace

TEST(Controller, SessionJoinDeploysVnfsAndThroughput) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  EXPECT_GT(ctl.total_throughput_mbps(), 0.0);
  EXPECT_GE(ctl.running_vnfs(), 1);
  // Settings + start + vnf-start signals were emitted.
  bool saw_settings = false, saw_start = false, saw_vnf_start = false;
  for (const auto& ls : ctl.signal_log()) {
    saw_settings |= std::holds_alternative<NcSettings>(ls.signal);
    saw_start |= std::holds_alternative<NcStart>(ls.signal);
    saw_vnf_start |= std::holds_alternative<NcVnfStart>(ls.signal);
  }
  EXPECT_TRUE(saw_settings);
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_vnf_start);
}

TEST(Controller, MoreSessionsMoreVnfs) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3}), 0.0));
  const int vnfs1 = ctl.running_vnfs();
  const double tput1 = ctl.total_throughput_mbps();
  ASSERT_TRUE(ctl.add_session(session_between(net, 2, 1, {4, 5}), 60.0));
  ASSERT_TRUE(ctl.add_session(session_between(net, 3, 2, {0, 5}), 120.0));
  EXPECT_GE(ctl.running_vnfs(), vnfs1);
  EXPECT_GT(ctl.total_throughput_mbps(), tput1);
}

TEST(Controller, SessionQuitDrainsVnfsAfterTau) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  ASSERT_TRUE(ctl.add_session(session_between(net, 2, 1, {5}), 0.0));
  const int before = ctl.alive_vnfs();
  ctl.remove_session(2, 100.0);
  ctl.tick(100.0);
  // Within tau, drained VNFs are still alive (grace window).
  EXPECT_LE(ctl.running_vnfs(), before);
  const int alive_during_grace = ctl.alive_vnfs();
  ctl.tick(100.0 + 601.0);
  EXPECT_LE(ctl.alive_vnfs(), alive_during_grace);
  EXPECT_EQ(ctl.draining_vnfs(), 0);
}

TEST(Controller, DrainingVnfIsReusedOnNewDemand) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  ASSERT_TRUE(ctl.add_session(session_between(net, 2, 0, {3, 4}), 0.0));
  ctl.remove_session(2, 100.0);
  ctl.tick(100.0);
  const int launches_before = ctl.vm_launches();
  // Same-shaped demand returns within tau: the drained VNFs are reused.
  ASSERT_TRUE(ctl.add_session(session_between(net, 3, 0, {3, 4}), 200.0));
  if (ctl.draining_vnfs() == 0 && ctl.vm_reuses() > 0) {
    EXPECT_GE(ctl.vm_reuses(), 1);
  }
  // Either way, relaunching should not have exceeded the fresh demand.
  EXPECT_GE(ctl.vm_launches(), launches_before);
}

TEST(Controller, ReceiverJoinAndQuit) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3}), 0.0));
  ASSERT_TRUE(ctl.add_receiver(1, net.hosts[4], 10.0));
  EXPECT_EQ(ctl.sessions()[0].receivers.size(), 2u);
  EXPECT_GT(ctl.total_throughput_mbps(), 0.0);
  ctl.remove_receiver(1, net.hosts[4], 20.0);
  EXPECT_EQ(ctl.sessions()[0].receivers.size(), 1u);
}

TEST(Controller, RemovingLastReceiverEndsSession) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3}), 0.0));
  ctl.remove_receiver(1, net.hosts[3], 10.0);
  EXPECT_TRUE(ctl.sessions().empty());
}

TEST(Controller, BandwidthDropBelowThresholdIgnored) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  const double tput = ctl.total_throughput_mbps();
  // 2% change < rho1 = 5%: never even recorded as pending.
  const graph::NodeIdx v = net.dcs[0];
  const double bin = ctl.topology().node(v).bin_bps;
  ctl.report_bandwidth(v, bin * 0.98, bin * 0.98, 10.0);
  ctl.tick(10.0 + 700.0);
  EXPECT_NEAR(ctl.total_throughput_mbps(), tput, 1e-9);
  EXPECT_NEAR(ctl.topology().node(v).bin_bps, bin, 1);
}

TEST(Controller, BandwidthCutAppliedAfterPersistence) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  // Find a DC the plan actually uses.
  graph::NodeIdx used = -1;
  for (const auto& [v, n] : ctl.plan().vnf_count) {
    if (n > 0) {
      used = v;
      break;
    }
  }
  ASSERT_NE(used, -1);
  const double bin = ctl.topology().node(used).bin_bps;
  // Halve the bandwidth; must persist tau1 before the controller reacts.
  ctl.report_bandwidth(used, bin / 2, bin / 2, 100.0);
  EXPECT_NEAR(ctl.topology().node(used).bin_bps, bin, 1);  // not yet
  ctl.report_bandwidth(used, bin / 2, bin / 2, 100.0 + 601.0);
  EXPECT_NEAR(ctl.topology().node(used).bin_bps, bin / 2, 1);  // applied
}

TEST(Controller, BriefBandwidthSpikeIsForgotten) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3}), 0.0));
  const graph::NodeIdx v = net.dcs[1];
  const double bin = ctl.topology().node(v).bin_bps;
  ctl.report_bandwidth(v, bin / 2, bin / 2, 100.0);       // spike starts
  ctl.report_bandwidth(v, bin, bin, 200.0);               // back to normal
  ctl.report_bandwidth(v, bin / 2, bin / 2, 100.0 + 650.0);  // new spike
  // The pending clock restarted: the change must not yet be applied.
  EXPECT_NEAR(ctl.topology().node(v).bin_bps, bin, 1);
}

TEST(Controller, DelayIncreaseReroutesAfterPersistence) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  // Pick an edge carrying flow.
  graph::EdgeIdx used = -1;
  for (const auto& [e, r] : ctl.plan().edge_rate_mbps[0]) {
    used = e;
    break;
  }
  ASSERT_NE(used, -1);
  const double old_delay = ctl.topology().edge(used).delay_s;
  ctl.report_delay(used, old_delay * 3, 100.0);
  EXPECT_NEAR(ctl.topology().edge(used).delay_s, old_delay, 1e-12);
  ctl.report_delay(used, old_delay * 3, 100.0 + 601.0);
  EXPECT_NEAR(ctl.topology().edge(used).delay_s, old_delay * 3, 1e-12);
  // The plan is still feasible (rerouted or reduced).
  EXPECT_TRUE(ctl.plan().feasible);
}

TEST(Controller, ScalingDisabledIgnoresMeasurements) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3}), 0.0));
  ctl.set_scaling_enabled(false);
  const graph::NodeIdx v = net.dcs[0];
  const double bin = ctl.topology().node(v).bin_bps;
  ctl.report_bandwidth(v, bin / 4, bin / 4, 0.0);
  ctl.report_bandwidth(v, bin / 4, bin / 4, 1000.0);
  EXPECT_NEAR(ctl.topology().node(v).bin_bps, bin, 1);
}

TEST(Controller, ForwardingTablesPushedToRelays) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {3, 4}), 0.0));
  // At least one node received a non-empty forwarding table mentioning
  // session 1.
  bool found = false;
  for (const auto& ls : ctl.signal_log()) {
    if (const auto* ft = std::get_if<NcForwardTab>(&ls.signal)) {
      if (ft->table.find(1) != nullptr) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Controller, DelayDecreaseCanOnlyHelp) {
  // A link-delay drop expands every session's feasible path set; after
  // persistence the re-solve must not reduce total throughput.
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  SessionSpec s = session_between(net, 1, 0, {6, 9});
  s.lmax_s = 0.090;  // tight: long detours are initially infeasible
  ASSERT_TRUE(ctl.add_session(s, 0.0));
  const double before = ctl.total_throughput_mbps();

  // Halve the delay of every DC-DC edge (a dramatic routing improvement).
  for (int e = 0; e < net.topo.edge_count(); ++e) {
    const auto& ei = net.topo.edge(e);
    if (net.topo.node(ei.from).kind == graph::NodeKind::kDataCenter &&
        net.topo.node(ei.to).kind == graph::NodeKind::kDataCenter) {
      ctl.report_delay(e, ei.delay_s / 2, 100.0);
      ctl.report_delay(e, ei.delay_s / 2, 100.0 + 601.0);
    }
  }
  EXPECT_GE(ctl.total_throughput_mbps(), before - 1e-6);
}

TEST(Controller, ConsolidationDrainsIdleVnfs) {
  // Force the pools above the plan's needs, then tick: the excess must be
  // drained (NC_VNF_END) and expire after tau.
  const auto net = app::scenarios::six_datacenters();
  auto cfg = base_config();
  cfg.tau_s = 60.0;
  Controller ctl(net.topo, cfg);
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {12}), 0.0));
  ASSERT_TRUE(ctl.add_session(session_between(net, 2, 0, {13}), 0.0));
  const int needed = ctl.running_vnfs();
  ctl.remove_session(2, 10.0);
  ctl.tick(10.0);
  // After the departure the plan needs fewer VNFs than `needed`; the
  // surplus drains and expires.
  ctl.tick(10.0 + 61.0);
  EXPECT_LE(ctl.alive_vnfs(), needed);
  EXPECT_EQ(ctl.draining_vnfs(), 0);
}

TEST(Controller, FixedRateSessionAdmissionAndRejection) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  SessionSpec ok = session_between(net, 1, 0, {14});
  ok.fixed_rate_mbps = 50.0;  // a 50 Mbps live stream: admissible
  EXPECT_TRUE(ctl.add_session(ok, 0.0));
  EXPECT_NEAR(ctl.plan().lambda_mbps[0], 50.0, 1e-6);

  SessionSpec impossible = session_between(net, 2, 2, {15});
  impossible.fixed_rate_mbps = 5000.0;  // beyond any path capacity
  EXPECT_FALSE(ctl.add_session(impossible, 1.0));
  // The rejected session must not linger in controller state.
  EXPECT_EQ(ctl.sessions().size(), 1u);
  EXPECT_NEAR(ctl.total_throughput_mbps(), 50.0, 1e-6);
}

TEST(Controller, RemoveUnknownSessionIsNoop) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {16}), 0.0));
  const double tput = ctl.total_throughput_mbps();
  ctl.remove_session(99, 10.0);
  ctl.remove_receiver(99, net.hosts[1], 10.0);
  ctl.remove_receiver(1, net.hosts[5], 10.0);  // not a receiver of s1
  EXPECT_NEAR(ctl.total_throughput_mbps(), tput, 1e-9);
}

TEST(Controller, SignalLogTimestampsAreMonotonic) {
  const auto net = app::scenarios::six_datacenters();
  Controller ctl(net.topo, base_config());
  ASSERT_TRUE(ctl.add_session(session_between(net, 1, 0, {17}), 0.0));
  ASSERT_TRUE(ctl.add_session(session_between(net, 2, 2, {18}), 50.0));
  ctl.remove_session(1, 100.0);
  double last = -1;
  for (const auto& ls : ctl.signal_log()) {
    EXPECT_GE(ls.at_s, last);
    last = ls.at_s;
  }
}

TEST(Controller, LmaxSweepMonotone) {
  // Fig. 12's premise: larger Lmax can only help.
  const auto net = app::scenarios::six_datacenters();
  double prev = -1;
  for (const double lmax : {0.075, 0.100, 0.150, 0.200}) {
    Controller ctl(net.topo, base_config());
    SessionSpec s = session_between(net, 1, 0, {2, 3});
    s.lmax_s = lmax;
    ASSERT_TRUE(ctl.add_session(s, 0.0));
    const double tput = ctl.total_throughput_mbps();
    EXPECT_GE(tput, prev - 1e-6) << "lmax=" << lmax;
    prev = tput;
  }
}
