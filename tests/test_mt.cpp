// Multi-worker engine suite (ctest -L mt; CI runs it under TSan).
//
// The tests pin the engine's one load-bearing promise: worker count,
// window size and sweep fan-out change WALL CLOCK only — every
// observable output (traces, metrics, reports) is byte-identical to the
// inline single-threaded run. Plus the supporting invariants: the shard
// partition keeps conflicting sessions together, RNG streams split
// cleanly from the root seed, and concurrent shard teardown conserves
// the packet pools (NCFN_AUDIT=1 comes from ctest for this binary).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "app/config.hpp"
#include "app/shard.hpp"
#include "app/sweep.hpp"
#include "ctrl/problem.hpp"
#include "netsim/seedstream.hpp"
#include "netsim/worker.hpp"
#include "obs/merge.hpp"

namespace {

using namespace ncfn;

app::Scenario load(const char* rel) {
  app::ParseError err;
  auto s = app::load_scenario(std::string(NCFN_SOURCE_DIR) + rel, &err);
  EXPECT_TRUE(s.has_value()) << err.line << ": " << err.message;
  return *s;
}

ctrl::DeploymentPlan solve(const app::Scenario& s) {
  ctrl::DeploymentProblem prob;
  prob.topo = &s.topo;
  prob.sessions = s.sessions;
  prob.alpha = s.alpha;
  auto plan = ctrl::solve_deployment(prob);
  EXPECT_TRUE(plan.feasible);
  return plan;
}

// ---- WorkerPool ----

TEST(WorkerPool, CoversEveryJobExactlyOnceForAnyWorkerCount) {
  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    netsim::WorkerPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    // Each job owns its slot, so lanes never write the same cell.
    std::vector<int> hits(101, 0);
    pool.run(hits.size(), [&](std::size_t j) { hits[j] += 1; });
    for (const int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(WorkerPool, ZeroJobsAndReuseAreSafe) {
  netsim::WorkerPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  std::vector<int> hits(7, 0);
  for (int round = 0; round < 3; ++round) {
    pool.run(hits.size(), [&](std::size_t j) { hits[j] += 1; });
  }
  for (const int h : hits) EXPECT_EQ(h, 3);
}

TEST(WorkerPool, ShutdownUnderChurnNeverHangs) {
  // Regression for the classic lost-wakeup shutdown bug: if ~WorkerPool
  // flipped stop_ WITHOUT holding mu_, a lane caught between its
  // predicate check and its cv wait would sleep through the notify_all
  // and join() would hang forever. Because stop_ flips under mu_
  // (worker.cpp), a lane inside that window still holds the lock, so
  // the flag cannot change until the lane has atomically released mu_
  // inside wait(). Churn construction/teardown to drive lanes through
  // the window — destroying right after construction races the dtor
  // against lanes that have not even reached their first wait. A
  // regression shows up as a ctest timeout, not a flaky assert; TSan
  // (the mt CI job) additionally checks the handoff ordering.
  for (int round = 0; round < 200; ++round) {
    netsim::WorkerPool pool(4);
    if (round % 2 == 1) {
      std::vector<int> hits(13, 0);
      pool.run(hits.size(), [&hits](std::size_t j) { hits[j] += 1; });
      for (const int h : hits) ASSERT_EQ(h, 1);
    }
    // Half the rounds destroy a pool whose lanes never saw a
    // generation; the other half one that completed a barrier. Both
    // must join all lanes here.
  }
}

// ---- RNG stream splitting ----

TEST(SeedStream, StableDistinctAndRootSensitive) {
  const auto s00 = netsim::rng_stream_seed(7, 0);
  EXPECT_EQ(s00, netsim::rng_stream_seed(7, 0));  // pure function
  // Distinct across streams of one root and across roots of one stream
  // (the property that keeps shard RNGs and their seeds independent).
  for (std::uint64_t k = 1; k < 64; ++k) {
    EXPECT_NE(netsim::rng_stream_seed(7, k), s00) << k;
  }
  EXPECT_NE(netsim::rng_stream_seed(8, 0), s00);
  // A shard's stream seed never collapses to the root itself.
  EXPECT_NE(s00, 7u);
}

// ---- Partitioning ----

TEST(Partition, DisjointButterfliesGetOneShardEach) {
  const auto scenario = load("/tools/scenarios/butterfly_shards.ncfn");
  const auto plan = solve(scenario);
  const auto parts =
      app::partition_sessions(scenario.topo, plan, scenario.sessions);
  ASSERT_EQ(parts.shard_count(), 4u);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(parts.session_shard[m], m);  // numbered by smallest session
    ASSERT_EQ(parts.shard_sessions[m].size(), 1u);
    EXPECT_EQ(parts.shard_sessions[m][0], m);
  }
}

TEST(Partition, SessionsSharingANodeShareAShard) {
  const char* text =
      "alpha 0\n"
      "node V1 host\n"
      "node R1 host\n"
      "node R2 host\n"
      "node D1 dc bin=200 bout=200 cap=200\n"
      "node D2 dc bin=200 bout=200 cap=200\n"
      "edge V1 D1 10 50\n"
      "edge V1 D2 10 50\n"
      "edge D1 R1 10 50\n"
      "edge D2 R2 10 50\n"
      "edge R1 V1 20 10\n"
      "edge R2 V1 20 10\n"
      "session 1 V1 -> R1 lmax=150\n"
      "session 2 V1 -> R2 lmax=150\n";
  app::ParseError err;
  const auto scenario = app::parse_scenario(text, &err);
  ASSERT_TRUE(scenario.has_value()) << err.message;
  const auto plan = solve(*scenario);
  const auto parts =
      app::partition_sessions(scenario->topo, plan, scenario->sessions);
  // Both sessions source at V1: one shard, or they would race on V1's
  // out-links.
  EXPECT_EQ(parts.shard_count(), 1u);
  EXPECT_EQ(parts.session_shard[0], parts.session_shard[1]);
}

// ---- The determinism contract ----

struct RunOutput {
  std::string trace;
  std::string metrics;
  std::vector<app::ReceiverReport> reports;
  std::uint64_t events = 0;
};

RunOutput run_sharded(const app::Scenario& scenario,
                      const ctrl::DeploymentPlan& plan, std::size_t workers,
                      double window_s) {
  app::ShardedRunOptions opts;
  opts.workers = workers;
  opts.window_s = window_s;
  opts.duration_s = 0.6;
  opts.trace = true;
  app::ShardedScenarioRun run(scenario, plan, opts);
  run.run();
  return RunOutput{run.trace_jsonl(), run.metrics_json(), run.reports(),
                   run.events_executed()};
}

TEST(ShardedRun, WorkerCountChangesNothingObservable) {
  const auto scenario = load("/tools/scenarios/butterfly_shards.ncfn");
  const auto plan = solve(scenario);
  const RunOutput ref = run_sharded(scenario, plan, 1, 0.050);
  ASSERT_GT(ref.events, 0u);
  ASSERT_FALSE(ref.trace.empty());
  ASSERT_EQ(ref.reports.size(), 8u);  // 4 sessions x 2 receivers
  for (const std::size_t workers : {2u, 4u, 8u}) {
    const RunOutput out = run_sharded(scenario, plan, workers, 0.050);
    EXPECT_EQ(out.trace, ref.trace) << workers << " workers";
    EXPECT_EQ(out.metrics, ref.metrics) << workers << " workers";
    EXPECT_EQ(out.events, ref.events) << workers << " workers";
    ASSERT_EQ(out.reports.size(), ref.reports.size());
    for (std::size_t i = 0; i < ref.reports.size(); ++i) {
      EXPECT_EQ(out.reports[i].receiver, ref.reports[i].receiver);
      EXPECT_EQ(out.reports[i].goodput_mbps, ref.reports[i].goodput_mbps);
    }
  }
}

TEST(ShardedRun, WindowSizeChangesNothingObservable) {
  const auto scenario = load("/tools/scenarios/butterfly_shards.ncfn");
  const auto plan = solve(scenario);
  const RunOutput fine = run_sharded(scenario, plan, 2, 0.010);
  const RunOutput coarse = run_sharded(scenario, plan, 2, 0.500);
  const RunOutput single = run_sharded(scenario, plan, 2, 0.0);  // one window
  EXPECT_EQ(fine.trace, coarse.trace);
  EXPECT_EQ(fine.metrics, coarse.metrics);
  EXPECT_EQ(fine.trace, single.trace);
  EXPECT_EQ(fine.metrics, single.metrics);
}

TEST(ShardedRun, TracksShardCountInMetrics) {
  const auto scenario = load("/tools/scenarios/butterfly_shards.ncfn");
  const auto plan = solve(scenario);
  const RunOutput out = run_sharded(scenario, plan, 4, 0.050);
  EXPECT_NE(out.metrics.find("\"mt.shards\":4"), std::string::npos);
}

// ---- Concurrent build/run/teardown under the pool audit ----

TEST(ShardedRun, ConcurrentTeardownConservesPools) {
  // NCFN_AUDIT=1 (set by ctest for this binary) makes SimNet teardown
  // abort on any packet-pool or link-accounting leak. Four lanes build,
  // run and destroy full stacks concurrently; surviving this test means
  // teardown accounting holds when interleaved with other shards' work.
  const auto scenario = load("/tools/scenarios/butterfly.ncfn");
  const auto plan = solve(scenario);
  netsim::WorkerPool pool(4);
  pool.run(4, [&](std::size_t lane) {
    app::ShardedRunOptions opts;
    opts.workers = 1;
    opts.duration_s = 0.3;
    opts.seed = static_cast<std::uint32_t>(7 + lane);
    app::ShardedScenarioRun run(scenario, plan, opts);
    run.run();
    // run destructs here, on this lane, while siblings still simulate.
  });
}

// ---- Sweep driver ----

TEST(Sweep, JobFanOutChangesNothingObservable) {
  const auto scenario = load("/tools/scenarios/butterfly.ncfn");
  const auto plan = solve(scenario);
  app::SweepMatrix matrix;
  matrix.seeds = {3, 5};
  matrix.losses = {0.0, 0.02};
  matrix.batches = {0};
  matrix.duration_s = 0.3;
  const auto serial = app::run_sweep(scenario, plan, matrix, 1);
  const auto fanned = app::run_sweep(scenario, plan, matrix, 3);
  ASSERT_EQ(serial.size(), matrix.cell_count());
  EXPECT_EQ(app::sweep_json("butterfly", matrix, serial),
            app::sweep_json("butterfly", matrix, fanned));
  // Matrix order: seeds outermost, so cells 0,1 are seed 3.
  EXPECT_EQ(serial[0].seed, 3u);
  EXPECT_EQ(serial[0].loss, 0.0);
  EXPECT_EQ(serial[1].loss, 0.02);
  EXPECT_EQ(serial[2].seed, 5u);
  for (const auto& cell : serial) EXPECT_GT(cell.events, 0u);
}

// ---- Scenario keyword ----

TEST(Config, WorkersKeywordParses) {
  app::ParseError err;
  const auto s = app::parse_scenario("workers 4\n", &err);
  ASSERT_TRUE(s.has_value()) << err.message;
  EXPECT_EQ(s->workers, 4u);
  EXPECT_EQ(app::parse_scenario("")->workers, 0u);  // default: legacy engine
}

TEST(Config, WorkersKeywordRejectsGarbage) {
  for (const char* bad : {"workers 0\n", "workers -2\n", "workers 1.5\n",
                          "workers many\n", "workers\n"}) {
    app::ParseError err;
    EXPECT_FALSE(app::parse_scenario(bad, &err).has_value()) << bad;
    EXPECT_EQ(err.line, 1);
  }
}

// ---- Trace / metrics merging ----

TEST(Merge, TracesOrderBySimTimeThenInputIndex) {
  double t = 0;
  obs::EventTrace a, b;
  for (obs::EventTrace* tr : {&a, &b}) {
    tr->enable();
    tr->set_clock([&t] { return t; });
  }
  t = 0.25;
  b.node_state(2, true);
  t = 0.5;
  a.node_state(1, true);
  b.node_state(3, true);  // tie with a's 0.5 record: input order wins
  t = 10.0;
  b.node_state(4, false);
  t = 9.5;
  a.node_state(5, false);  // two-digit vs one-digit seconds ordering

  const std::string merged = obs::merge_traces({&a, &b});
  const auto pos = [&](const char* needle) {
    const std::size_t p = merged.find(needle);
    EXPECT_NE(p, std::string::npos) << needle << " in " << merged;
    return p;
  };
  EXPECT_LT(pos("\"node\":2"), pos("\"node\":1"));
  EXPECT_LT(pos("\"node\":1"), pos("\"node\":3"));
  EXPECT_LT(pos("\"node\":3"), pos("\"node\":5"));
  EXPECT_LT(pos("\"node\":5"), pos("\"node\":4"));
  // Byte-count conservation: a k-way merge reorders lines, never edits.
  EXPECT_EQ(merged.size(), a.data().size() + b.data().size());
}

TEST(Merge, MetricsFoldAcrossRegistries) {
  obs::MetricsRegistry r1, r2;
  r1.counter("pkts").inc(3);
  r2.counter("pkts").inc(4);
  r2.counter("only2").inc(1);
  r1.gauge("load").add(1.5);
  r2.gauge("load").add(2.0);
  const std::vector<double> bounds = {1.0, 2.0};
  r1.histogram("lat", bounds).record(0.5);
  r2.histogram("lat", bounds).record(1.5);
  r2.histogram("lat", bounds).record(5.0);

  const obs::MetricsRegistry merged = obs::merge_metrics({&r1, &r2});
  EXPECT_EQ(merged.counter_value("pkts"), 7u);
  EXPECT_EQ(merged.counter_value("only2"), 1u);
  EXPECT_DOUBLE_EQ(merged.gauges().at("load").value(), 3.5);
  const auto& h = merged.histograms().at("lat");
  EXPECT_EQ(h.bounds(), bounds);
}

}  // namespace
