// Tests for the topology model, delay-bounded DFS path enumeration, and
// Edmonds–Karp max-flow (including the paper's butterfly capacity).
#include <gtest/gtest.h>

#include "app/scenarios.hpp"
#include "graph/maxflow.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"

using namespace ncfn;
using namespace ncfn::graph;

namespace {
NodeInfo dc(const char* name, double cap_mbps = 1000) {
  NodeInfo ni;
  ni.name = name;
  ni.kind = NodeKind::kDataCenter;
  ni.bin_bps = cap_mbps * 1e6;
  ni.bout_bps = cap_mbps * 1e6;
  ni.vnf_capacity_bps = cap_mbps * 1e6;
  return ni;
}
NodeInfo host(const char* name) {
  NodeInfo ni;
  ni.name = name;
  ni.kind = NodeKind::kHost;
  return ni;
}
}  // namespace

TEST(Topology, FindEdgeAndDataCenters) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx b = t.add_node(dc("b"));
  const EdgeIdx e = t.add_edge(s, a, 0.01);
  EXPECT_EQ(t.find_edge(s, a), e);
  EXPECT_EQ(t.find_edge(a, s), -1);
  EXPECT_EQ(t.data_centers(), (std::vector<NodeIdx>{a, b}));
  EXPECT_EQ(t.out_edges(s).size(), 1u);
}

TEST(Paths, DirectAndRelayedEnumerated) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, d, 0.050);
  t.add_edge(s, a, 0.020);
  t.add_edge(a, d, 0.020);
  const auto paths = feasible_paths(t, s, d, 0.100);
  ASSERT_EQ(paths.size(), 2u);
  // Sorted by delay: relayed (40 ms) before direct (50 ms).
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeIdx>{s, a, d}));
  EXPECT_NEAR(paths[0].delay_s, 0.040, 1e-12);
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeIdx>{s, d}));
}

TEST(Paths, DelayBoundExcludesSlowPaths) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, a, 0.080);
  t.add_edge(a, d, 0.080);
  t.add_edge(s, d, 0.020);
  EXPECT_EQ(feasible_paths(t, s, d, 0.100).size(), 1u);   // only direct
  EXPECT_EQ(feasible_paths(t, s, d, 0.200).size(), 2u);
  EXPECT_EQ(feasible_paths(t, s, d, 0.010).size(), 0u);   // nothing fits
}

TEST(Paths, InteriorNodesMustBeDataCenters) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx h = t.add_node(host("other-host"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, h, 0.01);
  t.add_edge(h, d, 0.01);
  EXPECT_TRUE(feasible_paths(t, s, d, 1.0).empty());
}

TEST(Paths, NoCycles) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx b = t.add_node(dc("b"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, a, 0.001);
  t.add_edge(a, b, 0.001);
  t.add_edge(b, a, 0.001);  // cycle bait
  t.add_edge(b, d, 0.001);
  const auto paths = feasible_paths(t, s, d, 10.0);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeIdx>{s, a, b, d}));
}

TEST(Paths, MaxPathsKeepsLowestDelay) {
  // Parallel relays with increasing delay; cap at 2 keeps the fastest 2.
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx d = t.add_node(host("d"));
  for (int i = 0; i < 5; ++i) {
    const NodeIdx r = t.add_node(dc("r"));
    t.add_edge(s, r, 0.010 * (i + 1));
    t.add_edge(r, d, 0.010);
  }
  PathSearchLimits lim;
  lim.max_paths = 2;
  const auto paths = feasible_paths(t, s, d, 1.0, lim);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NEAR(paths[0].delay_s, 0.020, 1e-12);
  EXPECT_NEAR(paths[1].delay_s, 0.030, 1e-12);
}

TEST(Paths, UsesEdgeAndNodePredicates) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx d = t.add_node(host("d"));
  const EdgeIdx e1 = t.add_edge(s, a, 0.01);
  const EdgeIdx e2 = t.add_edge(a, d, 0.01);
  const EdgeIdx e3 = t.add_edge(s, d, 0.05);
  const auto paths = feasible_paths(t, s, d, 1.0);
  const Path& relayed = paths[0];
  EXPECT_TRUE(relayed.uses_edge(e1));
  EXPECT_TRUE(relayed.uses_edge(e2));
  EXPECT_FALSE(relayed.uses_edge(e3));
  EXPECT_TRUE(relayed.uses_node(a));
}

TEST(MaxFlow, SingleLink) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, d, 0.01, 42e6);
  EXPECT_NEAR(st_max_flow(t, s, d), 42e6, 1);
}

TEST(MaxFlow, ParallelAndSerial) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx a = t.add_node(dc("a"));
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, a, 0.01, 10e6);
  t.add_edge(a, d, 0.01, 6e6);   // serial bottleneck
  t.add_edge(s, d, 0.01, 3e6);   // parallel path
  EXPECT_NEAR(st_max_flow(t, s, d), 9e6, 1);
}

TEST(MaxFlow, NodeCapSplitting) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  NodeInfo relay = dc("a");
  relay.bin_bps = 4e6;
  relay.bout_bps = 10e6;
  const NodeIdx a = t.add_node(relay);
  const NodeIdx d = t.add_node(host("d"));
  t.add_edge(s, a, 0.01, 100e6);
  t.add_edge(a, d, 0.01, 100e6);
  EXPECT_NEAR(st_max_flow(t, s, d, /*apply_node_caps=*/true), 4e6, 1);
  EXPECT_NEAR(st_max_flow(t, s, d, /*apply_node_caps=*/false), 100e6, 1);
}

TEST(MaxFlow, ButterflyCapacityMatchesPaper) {
  // The paper computes 69.9 Mbps via Ford–Fulkerson on their measured
  // butterfly; ours is provisioned at exactly 35 Mbps per link -> 70.
  const auto b = app::scenarios::butterfly(false);
  const double o2 = st_max_flow(b.topo, b.source, b.recv_o2) / 1e6;
  const double c2 = st_max_flow(b.topo, b.source, b.recv_c2) / 1e6;
  EXPECT_NEAR(o2, 70.0, 1e-6);
  EXPECT_NEAR(c2, 70.0, 1e-6);
  EXPECT_NEAR(multicast_capacity(b.topo, b.source, {b.recv_o2, b.recv_c2}) / 1e6,
              70.0, 1e-6);
}

TEST(MaxFlow, MulticastCapacityIsMinOverReceivers) {
  Topology t;
  const NodeIdx s = t.add_node(host("s"));
  const NodeIdx d1 = t.add_node(host("d1"));
  const NodeIdx d2 = t.add_node(host("d2"));
  t.add_edge(s, d1, 0.01, 10e6);
  t.add_edge(s, d2, 0.01, 4e6);
  EXPECT_NEAR(multicast_capacity(t, s, {d1, d2}), 4e6, 1);
}

TEST(Scenarios, ButterflyShape) {
  const auto b = app::scenarios::butterfly(true);
  EXPECT_NEAR(app::scenarios::butterfly_capacity_mbps(b), 70.0, 1e-6);
  // Direct links present and capped at 40 Mbps.
  EXPECT_NEAR(b.topo.edge(b.direct_o2).capacity_bps, 40e6, 1);
  // Relayed O2 path delay near 89 ms one-way (RTT ~ 167 with feedback).
  const auto paths =
      feasible_paths(b.topo, b.source, b.recv_o2, 0.150);
  ASSERT_GE(paths.size(), 2u);
}

TEST(Scenarios, SixDcFullMesh) {
  const auto net = app::scenarios::six_datacenters();
  EXPECT_EQ(net.dcs.size(), 6u);
  EXPECT_EQ(net.hosts.size(), 48u);  // eight hosts per region
  for (graph::NodeIdx a : net.dcs) {
    for (graph::NodeIdx b : net.dcs) {
      if (a != b) {
        EXPECT_NE(net.topo.find_edge(a, b), -1);
      }
    }
  }
  std::mt19937 rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto spec = app::scenarios::random_session(net, 1, rng);
    EXPECT_GE(spec.receivers.size(), 1u);
    EXPECT_LE(spec.receivers.size(), 4u);
    for (graph::NodeIdx r : spec.receivers) EXPECT_NE(r, spec.source);
  }
}
