// End-to-end integration tests on the butterfly of Fig. 6: the full stack
// (LP plan -> VNF wiring -> packet-level simulation with the real GF(2^8)
// codec) must reproduce the paper's headline comparisons.
#include <gtest/gtest.h>

#include "app/baseline.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "ctrl/problem.hpp"
#include "netsim/loss.hpp"
#include "netsim/tcp.hpp"

using namespace ncfn;
using namespace ncfn::app;

namespace {

ctrl::SessionSpec butterfly_session(const scenarios::Butterfly& b) {
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  return spec;
}

ctrl::DeploymentPlan plan_butterfly(const scenarios::Butterfly& b) {
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions.push_back(butterfly_session(b));
  return ctrl::solve_deployment(prob);
}

SessionWiring default_wiring(const coding::CodingParams& params) {
  SessionWiring w;
  w.vnf.params = params;
  w.repair_timeout_s = 0.3;
  w.sample_interval_s = 1.0;
  return w;
}

/// Run an NC butterfly session for `duration` sim-seconds; returns the
/// session goodput (min over the two receivers).
struct NcRunResult {
  double goodput_mbps;
  std::uint64_t verify_failures;
  std::uint64_t repair_requests;
};

NcRunResult run_nc_butterfly(int redundancy, double bottleneck_loss,
                             double duration = 6.0) {
  const auto b = scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  EXPECT_TRUE(plan.feasible);

  coding::CodingParams params;  // paper defaults: 1460 x 4
  SyntheticProvider provider(
      7, static_cast<std::size_t>(80e6 / 8 * (duration + 4)), params);

  SimNet sim(b.topo);
  if (bottleneck_loss > 0) {
    sim.link(b.bottleneck)
        ->set_loss_model(
            std::make_unique<netsim::UniformLoss>(bottleneck_loss));
  }
  SessionWiring wiring = default_wiring(params);
  wiring.redundancy = redundancy;
  NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                             wiring);
  session.receiver(0).set_verify(&provider);
  session.receiver(1).set_verify(&provider);
  session.start();
  sim.net().sim().run_until(duration);

  NcRunResult r{};
  r.goodput_mbps = session.session_goodput_mbps();
  r.verify_failures = session.receiver(0).stats().verify_failures +
                      session.receiver(1).stats().verify_failures;
  r.repair_requests = session.receiver(0).stats().repair_requests_sent +
                      session.receiver(1).stats().repair_requests_sent;
  return r;
}

}  // namespace

TEST(Integration, NcButterflyApproachesTheoreticalCapacity) {
  const auto r = run_nc_butterfly(/*redundancy=*/0, /*loss=*/0.0);
  // Theoretical max is 70 Mbps (Ford-Fulkerson); the paper's NC curve sits
  // within a few percent of it. Allow pipeline ramp-up slack.
  EXPECT_GT(r.goodput_mbps, 60.0);
  EXPECT_LE(r.goodput_mbps, 70.5);
  EXPECT_EQ(r.verify_failures, 0u);
}

TEST(Integration, EveryDecodedByteIsCorrectUnderLoss) {
  const auto r = run_nc_butterfly(/*redundancy=*/2, /*loss=*/0.10, 4.0);
  EXPECT_EQ(r.verify_failures, 0u);
  EXPECT_GT(r.goodput_mbps, 40.0);
}

TEST(Integration, NonNcTreeRoutingHitsRoutingOptimum) {
  const auto b = scenarios::butterfly(false);
  const auto packing =
      pack_trees(b.topo, b.source, {b.recv_o2, b.recv_c2}, 0.150);
  ASSERT_NEAR(packing.total_rate_mbps, 52.5, 1.0);

  coding::CodingParams params;
  SyntheticProvider provider(9, static_cast<std::size_t>(60e6 / 8 * 10),
                             params);
  SimNet sim(b.topo);
  SessionWiring wiring = default_wiring(params);
  TreeMulticastSession session(sim, packing, butterfly_session(b), provider,
                               wiring);
  session.receiver(0).set_verify(&provider);
  session.receiver(1).set_verify(&provider);
  session.start();
  sim.net().sim().run_until(6.0);

  const double goodput = session.session_goodput_mbps();
  EXPECT_GT(goodput, 45.0);
  EXPECT_LE(goodput, 53.5);
  EXPECT_EQ(session.receiver(0).stats().verify_failures, 0u);
}

TEST(Integration, CodingBeatsRoutingBeatsDirectTcp) {
  // The Fig. 7 ordering: NC ~ 70 > Non-NC ~ 52 > direct TCP ~ 40.
  const double nc = run_nc_butterfly(0, 0.0).goodput_mbps;

  const auto b = scenarios::butterfly(false);
  const auto packing =
      pack_trees(b.topo, b.source, {b.recv_o2, b.recv_c2}, 0.150);
  coding::CodingParams params;
  SyntheticProvider provider(9, static_cast<std::size_t>(60e6 / 8 * 10),
                             params);
  SimNet sim(b.topo);
  TreeMulticastSession tree_session(sim, packing, butterfly_session(b),
                                    provider, default_wiring(params));
  tree_session.start();
  sim.net().sim().run_until(6.0);
  const double non_nc = tree_session.session_goodput_mbps();

  // Direct TCP on the direct 40 Mbps Internet paths.
  const auto bd = scenarios::butterfly(true);
  SimNet sim2(bd.topo);
  const std::size_t bytes = 25 * 1000 * 1000;
  netsim::TcpConfig tcfg;
  tcfg.initial_ssthresh = 256;  // ~BDP of the 40 Mbps, 90 ms direct path
  netsim::TcpTransfer tcp(sim2.net(), sim2.node(bd.source),
                          sim2.node(bd.recv_o2), 5000, bytes, tcfg);
  tcp.start();
  sim2.net().sim().run_until(120.0);
  ASSERT_TRUE(tcp.finished());
  const double direct = tcp.stats().goodput_bps(bytes) / 1e6;

  EXPECT_GT(nc, non_nc + 5.0);
  EXPECT_GT(non_nc, direct + 5.0);
}

TEST(Integration, RedundancyHelpsUnderLoss) {
  // Fig. 8's shape: lossless favors NC0 (redundancy wastes bandwidth when
  // links are reliable), while under loss NC2 retains almost all of its
  // lossless throughput and NC0 loses proportionally much more.
  const double nc0_lossless = run_nc_butterfly(0, 0.0, 4.0).goodput_mbps;
  const double nc2_lossless = run_nc_butterfly(2, 0.0, 4.0).goodput_mbps;
  const double nc0_lossy = run_nc_butterfly(0, 0.25, 4.0).goodput_mbps;
  const double nc2_lossy = run_nc_butterfly(2, 0.25, 4.0).goodput_mbps;
  EXPECT_GT(nc0_lossless, nc2_lossless + 3.0);  // redundancy costs goodput
  EXPECT_LT(nc0_lossy, nc0_lossless - 5.0);     // NC0 degrades under loss
  const double nc0_retention = nc0_lossy / nc0_lossless;
  const double nc2_retention = nc2_lossy / nc2_lossless;
  EXPECT_GT(nc2_retention, nc0_retention + 0.05);  // NC2 is more robust
}

TEST(Integration, Nc0RepairLoopEngagesUnderLoss) {
  const auto r = run_nc_butterfly(0, 0.15, 4.0);
  EXPECT_GT(r.repair_requests, 0u);
  EXPECT_EQ(r.verify_failures, 0u);
}

TEST(Integration, FileTransferDeliversEveryGeneration) {
  // Small complete file transfer: all generations decoded at both
  // receivers, then sources and receivers go quiet.
  const auto b = scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  coding::CodingParams params;
  SyntheticProvider provider(21, 2 * 1000 * 1000, params);  // 2 MB file
  SimNet sim(b.topo);
  SessionWiring wiring = default_wiring(params);
  wiring.redundancy = 1;
  NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                             wiring);
  session.receiver(0).set_verify(&provider);
  session.receiver(1).set_verify(&provider);
  session.start();
  sim.net().sim().run_until(30.0);
  EXPECT_TRUE(session.all_complete());
  for (std::size_t k = 0; k < 2; ++k) {
    const auto& st = session.receiver(k).stats();
    EXPECT_EQ(st.payload_bytes, 2 * 1000 * 1000u);
    EXPECT_EQ(st.verify_failures, 0u);
    EXPECT_GE(st.first_generation_decoded_at, 0.0);
    EXPECT_GE(st.completed_at, 0.0);
  }
}

TEST(Integration, FirstGenerationAckMeasuresRelayedRtt) {
  // Table II's measurement path: source records time from "first
  // generation completely sent" to the ACK from each receiver.
  const auto b = scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  coding::CodingParams params;
  SyntheticProvider provider(22, 1000 * 1000, params);
  SimNet sim(b.topo);
  SessionWiring wiring = default_wiring(params);
  wiring.redundancy = 1;
  NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                             wiring);
  session.start();
  sim.net().sim().run_until(10.0);
  const auto& acks = session.source().stats().first_gen_ack_rtt;
  ASSERT_EQ(acks.size(), 2u);
  for (const auto& [node, rtt] : acks) {
    // One-way relayed delay ~85 ms + feedback return ~45 ms; the paper
    // measured 166-169 ms total. Accept a broad but shaped window.
    EXPECT_GT(rtt, 0.080);
    EXPECT_LT(rtt, 0.40);
  }
}

TEST(Integration, TwoConcurrentSessionsShareTheRelays) {
  // Two sessions planned jointly and run simultaneously at packet level:
  // a 40 Mbps two-receiver multicast and a 20 Mbps unicast sharing the
  // same links and coding VNFs (distinct UDP ports per session). The
  // joint LP optimum splits session 1's flows into fractional
  // per-generation quanta, which the default wiring quantization
  // (ctrl::quantize_plan) snaps down — to 30 Mbps here — so the data
  // plane sees whole packets per generation and never stalls.
  const auto b = scenarios::butterfly(false);
  ctrl::SessionSpec s1 = butterfly_session(b);
  s1.max_rate_mbps = 40.0;
  ctrl::SessionSpec s2;
  s2.id = 2;
  s2.source = b.source;
  s2.receivers = {b.recv_c2};
  s2.lmax_s = 0.150;
  s2.max_rate_mbps = 20.0;

  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions = {s1, s2};
  const auto plan = ctrl::solve_deployment(prob);
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.lambda_mbps[0], 40.0, 0.5);  // fluid optimum
  EXPECT_NEAR(plan.lambda_mbps[1], 20.0, 0.5);

  coding::CodingParams params;
  SyntheticProvider data1(41, static_cast<std::size_t>(40e6 / 8 * 10),
                          params);
  SyntheticProvider data2(42, static_cast<std::size_t>(25e6 / 8 * 10),
                          params);
  SimNet sim(b.topo);
  SessionWiring w1 = default_wiring(params);
  SessionWiring w2 = default_wiring(params);
  w2.seed = 1234;
  NcMulticastSession mc1(sim, plan, 0, s1, data1, w1);
  NcMulticastSession mc2(sim, plan, 1, s2, data2, w2);
  mc1.receiver(0).set_verify(&data1);
  mc1.receiver(1).set_verify(&data1);
  mc2.receiver(0).set_verify(&data2);
  mc1.start();
  mc2.start();
  sim.net().sim().run_until(5.0);

  EXPECT_GT(mc1.session_goodput_mbps(), 25.0);
  EXPECT_LE(mc1.session_goodput_mbps(), 31.0);
  EXPECT_GT(mc2.session_goodput_mbps(), 17.0);
  EXPECT_LE(mc2.session_goodput_mbps(), 21.0);
  EXPECT_EQ(mc1.receiver(0).stats().verify_failures, 0u);
  EXPECT_EQ(mc1.receiver(1).stats().verify_failures, 0u);
  EXPECT_EQ(mc2.receiver(0).stats().verify_failures, 0u);
}

TEST(Integration, OrderedSinkReassemblesTheFileUnderJitterAndLoss) {
  // Heavy reordering (10 ms jitter on every link) plus bottleneck loss:
  // the ordered sink must still hand generations to the application in
  // exact order, and the concatenation must equal the source file.
  const auto b = scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  coding::CodingParams params;
  SyntheticProvider provider(33, 3 * 1000 * 1000, params);
  SimNet sim(b.topo);
  for (int e = 0; e < b.topo.edge_count(); ++e) {
    sim.link(e)->set_jitter(0.010);
  }
  sim.link(b.bottleneck)
      ->set_loss_model(std::make_unique<netsim::UniformLoss>(0.05));
  SessionWiring wiring = default_wiring(params);
  wiring.redundancy = 1;
  NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                             wiring);

  std::vector<std::uint8_t> reassembled;
  coding::GenerationId last = 0;
  bool in_order = true;
  session.receiver(0).set_ordered_sink(
      [&](coding::GenerationId gen, std::vector<std::uint8_t> bytes) {
        if (gen != last) in_order = false;
        ++last;
        reassembled.insert(reassembled.end(), bytes.begin(), bytes.end());
      });
  session.start();
  sim.net().sim().run_until(30.0);

  ASSERT_TRUE(session.receiver(0).complete());
  EXPECT_TRUE(in_order);
  EXPECT_EQ(session.receiver(0).held_back(), 0u);
  ASSERT_EQ(reassembled.size(), 3 * 1000 * 1000u);
  // Byte-exact reassembly against the source.
  for (coding::GenerationId g = 0; g < provider.generation_count(); ++g) {
    const auto expect = provider.generation_bytes(g);
    const std::size_t off = static_cast<std::size_t>(g) *
                            params.generation_bytes();
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(reassembled[off + i], expect[i]) << "gen " << g;
    }
  }
}

TEST(Integration, CodedGoodputIsJitterTolerant) {
  // The Sec. III.B.1 claim: out-of-order delivery does not hurt the
  // coding data plane.
  auto run_with_jitter = [](double jitter) {
    const auto b = scenarios::butterfly(false);
    const auto plan = plan_butterfly(b);
    coding::CodingParams params;
    SyntheticProvider provider(7, static_cast<std::size_t>(80e6 / 8 * 8),
                               params);
    SimNet sim(b.topo);
    for (int e = 0; e < b.topo.edge_count(); ++e) {
      sim.link(e)->set_jitter(jitter);
    }
    SessionWiring wiring = default_wiring(params);
    NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                               wiring);
    session.start();
    sim.net().sim().run_until(4.0);
    return session.session_goodput_mbps();
  };
  const double calm = run_with_jitter(0.0);
  const double stormy = run_with_jitter(0.010);
  EXPECT_GT(stormy, calm * 0.95);
}

TEST(Integration, BufferProviderFileRoundTrip) {
  // A real in-memory file (not synthetic): completion implies the decoder
  // recovered the exact generation count and byte count.
  const auto b = scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  coding::CodingParams params;
  std::vector<std::uint8_t> file(777777);
  for (std::size_t i = 0; i < file.size(); ++i) {
    file[i] = static_cast<std::uint8_t>((i * 2654435761u) >> 13);
  }
  BufferProvider provider(file, params);
  SimNet sim(b.topo);
  SessionWiring wiring = default_wiring(params);
  wiring.redundancy = 1;
  NcMulticastSession session(sim, plan, 0, butterfly_session(b), provider,
                             wiring);
  session.start();
  sim.net().sim().run_until(30.0);
  ASSERT_TRUE(session.all_complete());
  EXPECT_EQ(session.receiver(0).stats().payload_bytes, file.size());
  EXPECT_EQ(session.receiver(1).stats().payload_bytes, file.size());
}
