// Unit tests for GF(2^8) and the generic GF(2^m) fields: field axioms,
// table consistency, and the bulk buffer kernels the codec hot path uses.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gf/gf256.hpp"
#include "gf/gf_generic.hpp"

namespace gf = ncfn::gf;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf::sub(0x53, 0xCA), gf::add(0x53, 0xCA));
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf::add(static_cast<gf::u8>(a), static_cast<gf::u8>(a)), 0);
  }
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<gf::u8>(a);
    EXPECT_EQ(gf::mul(x, 1), x);
    EXPECT_EQ(gf::mul(1, x), x);
    EXPECT_EQ(gf::mul(x, 0), 0);
    EXPECT_EQ(gf::mul(0, x), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(gf::mul(static_cast<gf::u8>(a), static_cast<gf::u8>(b)),
                gf::mul(static_cast<gf::u8>(b), static_cast<gf::u8>(a)));
    }
  }
}

TEST(Gf256, MultiplicationAssociates) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> d(0, 255);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<gf::u8>(d(rng));
    const auto b = static_cast<gf::u8>(d(rng));
    const auto c = static_cast<gf::u8>(d(rng));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> d(0, 255);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<gf::u8>(d(rng));
    const auto b = static_cast<gf::u8>(d(rng));
    const auto c = static_cast<gf::u8>(d(rng));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)),
              gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, InverseIsExact) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<gf::u8>(a);
    EXPECT_EQ(gf::mul(x, gf::inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      const auto x = static_cast<gf::u8>(a);
      const auto y = static_cast<gf::u8>(b);
      EXPECT_EQ(gf::div(gf::mul(x, y), y), x);
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a = 0; a < 256; a += 11) {
    gf::u8 acc = 1;
    for (unsigned e = 0; e < 16; ++e) {
      EXPECT_EQ(gf::pow(static_cast<gf::u8>(a), e), acc) << a << "^" << e;
      acc = gf::mul(acc, static_cast<gf::u8>(a));
    }
  }
  EXPECT_EQ(gf::pow(0, 0), 1);
  EXPECT_EQ(gf::pow(0, 5), 0);
}

TEST(Gf256, MultiplicativeOrderDividesFieldOrder) {
  // g = 2 is primitive: its order must be exactly 255.
  gf::u8 x = 2;
  int order = 1;
  while (x != 1) {
    x = gf::mul(x, 2);
    ++order;
  }
  EXPECT_EQ(order, 255);
}

TEST(Gf256Bulk, XorMatchesScalar) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> a(1460), b(1460), expect(1460);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<gf::u8>(d(rng));
    b[i] = static_cast<gf::u8>(d(rng));
    expect[i] = gf::add(a[i], b[i]);
  }
  gf::bulk_xor(a, b);
  EXPECT_EQ(a, expect);
}

TEST(Gf256Bulk, MulAddMatchesScalar) {
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> d(0, 255);
  for (const int coeff : {0, 1, 2, 37, 255}) {
    std::vector<gf::u8> dst(777), src(777), expect(777);
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = static_cast<gf::u8>(d(rng));
      src[i] = static_cast<gf::u8>(d(rng));
      expect[i] = gf::add(dst[i], gf::mul(static_cast<gf::u8>(coeff), src[i]));
    }
    gf::bulk_muladd(dst, src, static_cast<gf::u8>(coeff));
    EXPECT_EQ(dst, expect) << "coeff=" << coeff;
  }
}

TEST(Gf256Bulk, MulByZeroClearsAndByOneKeeps) {
  std::vector<gf::u8> v{1, 2, 3, 250};
  auto keep = v;
  gf::bulk_mul(v, 1);
  EXPECT_EQ(v, keep);
  gf::bulk_mul(v, 0);
  EXPECT_EQ(v, (std::vector<gf::u8>{0, 0, 0, 0}));
}

TEST(Gf256Bulk, MulMatchesScalar) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> v(333), expect(333);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<gf::u8>(d(rng));
    expect[i] = gf::mul(static_cast<gf::u8>(0x8E), v[i]);
  }
  gf::bulk_mul(v, 0x8E);
  EXPECT_EQ(v, expect);
}

TEST(Gf256Bulk, DotProduct) {
  const std::vector<gf::u8> a{1, 0, 3};
  const std::vector<gf::u8> b{5, 9, 2};
  const gf::u8 want = gf::add(gf::mul(1, 5), gf::mul(3, 2));
  EXPECT_EQ(gf::dot(a, b), want);
}

// ---- Kernel tiers (scalar / SSSE3 / AVX2) and runtime dispatch ----

#include <algorithm>

#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "gf/gf256_simd.hpp"

namespace {

std::vector<gf::simd::Tier> supported_tiers() {
  std::vector<gf::simd::Tier> tiers;
  for (const auto t : {gf::simd::Tier::kScalar, gf::simd::Tier::kSsse3,
                       gf::simd::Tier::kAvx2, gf::simd::Tier::kGfni}) {
    if (gf::simd::tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

/// RAII tier override: all public gf::bulk_* calls inside the scope run on
/// the forced kernel tier.
class ForcedTier {
 public:
  explicit ForcedTier(gf::simd::Tier t) {
    EXPECT_TRUE(gf::simd::force_tier(t)) << gf::simd::tier_name(t);
  }
  ~ForcedTier() { gf::simd::reset_tier(); }
};

// Sizes straddle the 16- and 32-byte vector widths (so every tier
// exercises its main loop, its narrower step, and its scalar tail) and the
// wire block size; offsets force misaligned operands.
constexpr std::size_t kDiffSizes[] = {0, 1, 15, 16, 17, 31, 32, 33, 1460};
constexpr std::size_t kDiffOffsets[] = {0, 1, 7};

std::vector<gf::u8> random_buf(std::size_t n, std::mt19937& rng) {
  std::vector<gf::u8> out(n);
  std::uniform_int_distribution<int> d(0, 255);
  for (auto& b : out) b = static_cast<gf::u8>(d(rng));
  return out;
}

}  // namespace

TEST(Gf256Tiers, EverySupportedTierIsSelectable) {
  ASSERT_TRUE(gf::simd::tier_supported(gf::simd::Tier::kScalar));
  for (const auto t : supported_tiers()) {
    ForcedTier forced(t);
    EXPECT_EQ(gf::simd::active_tier(), t);
  }
  gf::simd::reset_tier();
  EXPECT_EQ(gf::simd::active_tier(), gf::simd::best_tier());
}

TEST(Gf256Tiers, MulAddMatchesReferenceOnEveryTierSizeAndAlignment) {
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> d(0, 255);
  for (const auto tier : supported_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t size : kDiffSizes) {
      for (const std::size_t offset : kDiffOffsets) {
        auto dst = random_buf(size + offset, rng);
        const auto src = random_buf(size + offset, rng);
        const auto c = static_cast<gf::u8>(d(rng));
        auto expect = dst;
        for (std::size_t i = offset; i < size + offset; ++i) {
          expect[i] ^= gf::mul(c, src[i]);
        }
        gf::bulk_muladd(std::span<gf::u8>(dst).subspan(offset),
                        std::span<const gf::u8>(src).subspan(offset), c);
        ASSERT_EQ(dst, expect)
            << gf::simd::tier_name(tier) << " size=" << size
            << " off=" << offset << " c=" << int(c);
      }
    }
  }
}

TEST(Gf256Tiers, MulAndXorMatchReferenceOnEveryTier) {
  std::mt19937 rng(12);
  std::uniform_int_distribution<int> d(0, 255);
  for (const auto tier : supported_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t size : kDiffSizes) {
      for (const int c : {0, 1, 2, 0x53, 255}) {
        auto v = random_buf(size, rng);
        auto expect = v;
        for (auto& b : expect) b = gf::mul(static_cast<gf::u8>(c), b);
        gf::bulk_mul(v, static_cast<gf::u8>(c));
        ASSERT_EQ(v, expect)
            << gf::simd::tier_name(tier) << " size=" << size << " c=" << c;
      }
      auto a = random_buf(size, rng);
      const auto b = random_buf(size, rng);
      auto expect = a;
      for (std::size_t i = 0; i < size; ++i) expect[i] ^= b[i];
      gf::bulk_xor(a, b);
      ASSERT_EQ(a, expect) << gf::simd::tier_name(tier) << " size=" << size;
    }
  }
}

TEST(Gf256Tiers, FusedX4MatchesFourSingleMulAdds) {
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> d(0, 255);
  for (const auto tier : supported_tiers()) {
    ForcedTier forced(tier);
    for (const std::size_t size : kDiffSizes) {
      for (const std::size_t offset : kDiffOffsets) {
        auto fused = random_buf(size + offset, rng);
        auto serial = fused;
        std::vector<std::vector<gf::u8>> rows;
        const gf::u8 c4[4] = {
            static_cast<gf::u8>(d(rng)), 0,  // zero coefficient in the mix
            static_cast<gf::u8>(d(rng)), static_cast<gf::u8>(d(rng))};
        for (int r = 0; r < 4; ++r) rows.push_back(random_buf(size + offset, rng));
        const gf::u8* src[4] = {rows[0].data() + offset, rows[1].data() + offset,
                                rows[2].data() + offset, rows[3].data() + offset};
        gf::bulk_muladd_x4(std::span<gf::u8>(fused).subspan(offset), src, c4);
        for (int r = 0; r < 4; ++r) {
          gf::bulk_muladd(std::span<gf::u8>(serial).subspan(offset),
                          std::span<const gf::u8>(rows[r]).subspan(offset),
                          c4[r]);
        }
        ASSERT_EQ(fused, serial) << gf::simd::tier_name(tier)
                                 << " size=" << size << " off=" << offset;
      }
    }
  }
}

TEST(Gf256Tiers, AllTiersEncodeByteIdenticalPackets) {
  // The dispatch proof: forcing each tier and encoding the same generation
  // with the same coefficients must give byte-identical wire packets.
  ncfn::coding::CodingParams p;  // 1460-byte blocks, 4 per generation
  std::mt19937 data_rng(14);
  auto data = random_buf(p.generation_bytes(), data_rng);
  ncfn::coding::Generation gen(0, data, p);
  const std::vector<std::uint8_t> coeffs{0x8E, 0x01, 0x00, 0xF3};

  std::vector<std::vector<std::uint8_t>> wires;
  for (const auto tier : supported_tiers()) {
    ForcedTier forced(tier);
    std::mt19937 rng(15);
    ncfn::coding::Encoder enc(1, gen, rng);
    wires.push_back(enc.encode_with(coeffs).serialize());
  }
  ASSERT_GE(wires.size(), 1u);
  for (std::size_t i = 1; i < wires.size(); ++i) {
    EXPECT_EQ(wires[i], wires[0])
        << "tier " << gf::simd::tier_name(supported_tiers()[i])
        << " disagrees with scalar";
  }
}

TEST(Gf256Simd, DispatchedPathIsBitExact) {
  // The public bulk_muladd (which may dispatch to SIMD) must agree with a
  // straight scalar loop on large buffers.
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> a(8192), b(8192);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<gf::u8>(d(rng));
    b[i] = static_cast<gf::u8>(d(rng));
  }
  auto expect = a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect[i] ^= gf::mul(0x9C, b[i]);
  }
  gf::bulk_muladd(a, b, 0x9C);
  EXPECT_EQ(a, expect);
}

// ---- Generic fields for the ablation ----

template <unsigned M>
void check_field_axioms() {
  gf::Field<M> f;
  using Elem = typename gf::Field<M>::Elem;
  std::mt19937 rng(42);
  std::uniform_int_distribution<unsigned> d(0, gf::Field<M>::kMax);
  // Inverse over all (small fields) or a sample (GF(2^16)).
  const unsigned step = M == 16 ? 257 : 1;
  for (unsigned a = 1; a < gf::Field<M>::kOrder; a += step) {
    const auto x = static_cast<Elem>(a);
    ASSERT_EQ(f.mul(x, f.inv(x)), 1u) << "M=" << M << " a=" << a;
  }
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<Elem>(d(rng));
    const auto b = static_cast<Elem>(d(rng));
    const auto c = static_cast<Elem>(d(rng));
    ASSERT_EQ(f.mul(a, b), f.mul(b, a));
    ASSERT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    ASSERT_EQ(f.mul(a, gf::Field<M>::add(b, c)),
              gf::Field<M>::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST(GfGeneric, Gf16Axioms) { check_field_axioms<4>(); }
TEST(GfGeneric, Gf256Axioms) { check_field_axioms<8>(); }
TEST(GfGeneric, Gf65536Axioms) { check_field_axioms<16>(); }

TEST(GfGeneric, Gf256MatchesConcreteImplementation) {
  gf::Field<8> f;
  for (int a = 0; a < 256; a += 5) {
    for (int b = 0; b < 256; b += 3) {
      EXPECT_EQ(f.mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                gf::mul(static_cast<gf::u8>(a), static_cast<gf::u8>(b)));
    }
  }
}

TEST(GfGeneric, BulkMulAddMatchesScalar) {
  gf::Field<16> f;
  std::mt19937 rng(6);
  std::uniform_int_distribution<unsigned> d(0, 0xFFFF);
  std::vector<std::uint16_t> dst(200), src(200), expect(200);
  const auto c = static_cast<std::uint16_t>(d(rng) | 1);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint16_t>(d(rng));
    src[i] = static_cast<std::uint16_t>(d(rng));
    expect[i] = static_cast<std::uint16_t>(dst[i] ^ f.mul(c, src[i]));
  }
  f.bulk_muladd(std::span<std::uint16_t>(dst),
                std::span<const std::uint16_t>(src), c);
  EXPECT_EQ(dst, expect);
}
