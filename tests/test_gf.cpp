// Unit tests for GF(2^8) and the generic GF(2^m) fields: field axioms,
// table consistency, and the bulk buffer kernels the codec hot path uses.
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gf/gf256.hpp"
#include "gf/gf_generic.hpp"

namespace gf = ncfn::gf;

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(gf::sub(0x53, 0xCA), gf::add(0x53, 0xCA));
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf::add(static_cast<gf::u8>(a), static_cast<gf::u8>(a)), 0);
  }
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<gf::u8>(a);
    EXPECT_EQ(gf::mul(x, 1), x);
    EXPECT_EQ(gf::mul(1, x), x);
    EXPECT_EQ(gf::mul(x, 0), 0);
    EXPECT_EQ(gf::mul(0, x), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; ++b) {
      EXPECT_EQ(gf::mul(static_cast<gf::u8>(a), static_cast<gf::u8>(b)),
                gf::mul(static_cast<gf::u8>(b), static_cast<gf::u8>(a)));
    }
  }
}

TEST(Gf256, MultiplicationAssociates) {
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> d(0, 255);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<gf::u8>(d(rng));
    const auto b = static_cast<gf::u8>(d(rng));
    const auto c = static_cast<gf::u8>(d(rng));
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  std::mt19937 rng(2);
  std::uniform_int_distribution<int> d(0, 255);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<gf::u8>(d(rng));
    const auto b = static_cast<gf::u8>(d(rng));
    const auto c = static_cast<gf::u8>(d(rng));
    EXPECT_EQ(gf::mul(a, gf::add(b, c)),
              gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, InverseIsExact) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<gf::u8>(a);
    EXPECT_EQ(gf::mul(x, gf::inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 3) {
    for (int b = 1; b < 256; b += 5) {
      const auto x = static_cast<gf::u8>(a);
      const auto y = static_cast<gf::u8>(b);
      EXPECT_EQ(gf::div(gf::mul(x, y), y), x);
    }
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a = 0; a < 256; a += 11) {
    gf::u8 acc = 1;
    for (unsigned e = 0; e < 16; ++e) {
      EXPECT_EQ(gf::pow(static_cast<gf::u8>(a), e), acc) << a << "^" << e;
      acc = gf::mul(acc, static_cast<gf::u8>(a));
    }
  }
  EXPECT_EQ(gf::pow(0, 0), 1);
  EXPECT_EQ(gf::pow(0, 5), 0);
}

TEST(Gf256, MultiplicativeOrderDividesFieldOrder) {
  // g = 2 is primitive: its order must be exactly 255.
  gf::u8 x = 2;
  int order = 1;
  while (x != 1) {
    x = gf::mul(x, 2);
    ++order;
  }
  EXPECT_EQ(order, 255);
}

TEST(Gf256Bulk, XorMatchesScalar) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> a(1460), b(1460), expect(1460);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<gf::u8>(d(rng));
    b[i] = static_cast<gf::u8>(d(rng));
    expect[i] = gf::add(a[i], b[i]);
  }
  gf::bulk_xor(a, b);
  EXPECT_EQ(a, expect);
}

TEST(Gf256Bulk, MulAddMatchesScalar) {
  std::mt19937 rng(4);
  std::uniform_int_distribution<int> d(0, 255);
  for (const int coeff : {0, 1, 2, 37, 255}) {
    std::vector<gf::u8> dst(777), src(777), expect(777);
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = static_cast<gf::u8>(d(rng));
      src[i] = static_cast<gf::u8>(d(rng));
      expect[i] = gf::add(dst[i], gf::mul(static_cast<gf::u8>(coeff), src[i]));
    }
    gf::bulk_muladd(dst, src, static_cast<gf::u8>(coeff));
    EXPECT_EQ(dst, expect) << "coeff=" << coeff;
  }
}

TEST(Gf256Bulk, MulByZeroClearsAndByOneKeeps) {
  std::vector<gf::u8> v{1, 2, 3, 250};
  auto keep = v;
  gf::bulk_mul(v, 1);
  EXPECT_EQ(v, keep);
  gf::bulk_mul(v, 0);
  EXPECT_EQ(v, (std::vector<gf::u8>{0, 0, 0, 0}));
}

TEST(Gf256Bulk, MulMatchesScalar) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> v(333), expect(333);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<gf::u8>(d(rng));
    expect[i] = gf::mul(static_cast<gf::u8>(0x8E), v[i]);
  }
  gf::bulk_mul(v, 0x8E);
  EXPECT_EQ(v, expect);
}

TEST(Gf256Bulk, DotProduct) {
  const std::vector<gf::u8> a{1, 0, 3};
  const std::vector<gf::u8> b{5, 9, 2};
  const gf::u8 want = gf::add(gf::mul(1, 5), gf::mul(3, 2));
  EXPECT_EQ(gf::dot(a, b), want);
}

// ---- SIMD kernels ----

#include "gf/gf256_simd.hpp"

TEST(Gf256Simd, MulAddMatchesScalarAtEverySizeAndAlignment) {
  if (!gf::simd::available()) GTEST_SKIP() << "no SSSE3 on this target";
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> d(0, 255);
  // Sizes straddling the 16-byte vector width and the dispatch threshold,
  // plus unaligned starting offsets.
  for (const std::size_t size : {64u, 65u, 79u, 128u, 1460u, 4097u}) {
    for (const std::size_t offset : {0u, 1u, 7u}) {
      std::vector<gf::u8> dst_simd(size + offset), src(size + offset);
      for (std::size_t i = 0; i < src.size(); ++i) {
        dst_simd[i] = static_cast<gf::u8>(d(rng));
        src[i] = static_cast<gf::u8>(d(rng));
      }
      auto dst_scalar = dst_simd;
      const auto c = static_cast<gf::u8>(d(rng) | 1);
      gf::simd::bulk_muladd(
          std::span<gf::u8>(dst_simd).subspan(offset),
          std::span<const gf::u8>(src).subspan(offset), c);
      // Scalar reference.
      const auto& t = gf::detail::tables();
      for (std::size_t i = offset; i < size + offset; ++i) {
        dst_scalar[i] ^= t.mul[c][src[i]];
      }
      ASSERT_EQ(dst_simd, dst_scalar) << "size=" << size << " off=" << offset
                                      << " c=" << int(c);
    }
  }
}

TEST(Gf256Simd, MulMatchesScalar) {
  if (!gf::simd::available()) GTEST_SKIP() << "no SSSE3 on this target";
  std::mt19937 rng(12);
  std::uniform_int_distribution<int> d(0, 255);
  for (const int c : {0, 1, 2, 0x53, 255}) {
    std::vector<gf::u8> v(333);
    for (auto& b : v) b = static_cast<gf::u8>(d(rng));
    auto expect = v;
    const auto& t = gf::detail::tables();
    for (auto& b : expect) {
      b = c == 0 ? 0 : t.mul[c][b];
    }
    gf::simd::bulk_mul(v, static_cast<gf::u8>(c));
    EXPECT_EQ(v, expect) << c;
  }
}

TEST(Gf256Simd, DispatchedPathIsBitExact) {
  // The public bulk_muladd (which may dispatch to SIMD) must agree with a
  // straight scalar loop on large buffers.
  std::mt19937 rng(13);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<gf::u8> a(8192), b(8192);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<gf::u8>(d(rng));
    b[i] = static_cast<gf::u8>(d(rng));
  }
  auto expect = a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect[i] ^= gf::mul(0x9C, b[i]);
  }
  gf::bulk_muladd(a, b, 0x9C);
  EXPECT_EQ(a, expect);
}

// ---- Generic fields for the ablation ----

template <unsigned M>
void check_field_axioms() {
  gf::Field<M> f;
  using Elem = typename gf::Field<M>::Elem;
  std::mt19937 rng(42);
  std::uniform_int_distribution<unsigned> d(0, gf::Field<M>::kMax);
  // Inverse over all (small fields) or a sample (GF(2^16)).
  const unsigned step = M == 16 ? 257 : 1;
  for (unsigned a = 1; a < gf::Field<M>::kOrder; a += step) {
    const auto x = static_cast<Elem>(a);
    ASSERT_EQ(f.mul(x, f.inv(x)), 1u) << "M=" << M << " a=" << a;
  }
  for (int i = 0; i < 1000; ++i) {
    const auto a = static_cast<Elem>(d(rng));
    const auto b = static_cast<Elem>(d(rng));
    const auto c = static_cast<Elem>(d(rng));
    ASSERT_EQ(f.mul(a, b), f.mul(b, a));
    ASSERT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    ASSERT_EQ(f.mul(a, gf::Field<M>::add(b, c)),
              gf::Field<M>::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST(GfGeneric, Gf16Axioms) { check_field_axioms<4>(); }
TEST(GfGeneric, Gf256Axioms) { check_field_axioms<8>(); }
TEST(GfGeneric, Gf65536Axioms) { check_field_axioms<16>(); }

TEST(GfGeneric, Gf256MatchesConcreteImplementation) {
  gf::Field<8> f;
  for (int a = 0; a < 256; a += 5) {
    for (int b = 0; b < 256; b += 3) {
      EXPECT_EQ(f.mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                gf::mul(static_cast<gf::u8>(a), static_cast<gf::u8>(b)));
    }
  }
}

TEST(GfGeneric, BulkMulAddMatchesScalar) {
  gf::Field<16> f;
  std::mt19937 rng(6);
  std::uniform_int_distribution<unsigned> d(0, 0xFFFF);
  std::vector<std::uint16_t> dst(200), src(200), expect(200);
  const auto c = static_cast<std::uint16_t>(d(rng) | 1);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint16_t>(d(rng));
    src[i] = static_cast<std::uint16_t>(d(rng));
    expect[i] = static_cast<std::uint16_t>(dst[i] ^ f.mul(c, src[i]));
  }
  f.bulk_muladd(std::span<std::uint16_t>(dst),
                std::span<const std::uint16_t>(src), c);
  EXPECT_EQ(dst, expect);
}
