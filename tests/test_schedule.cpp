// Tests for time-varying link schedules (capacity/delay traces).
#include <gtest/gtest.h>

#include "netsim/schedule.hpp"

using namespace ncfn::netsim;

namespace {
Network make_net() {
  Network net(1);
  net.add_node("a");
  net.add_node("b");
  LinkConfig lc;
  lc.capacity_bps = 10e6;
  lc.prop_delay = 0.0;
  net.add_link(0, 1, lc);
  return net;
}
}  // namespace

TEST(Schedule, CapacityStepsApplyAtTheirTimes) {
  Network net = make_net();
  Link* link = net.link(0, 1);
  apply_capacity_schedule(net, *link, {{1.0, 5e6}, {2.0, 20e6}});
  EXPECT_DOUBLE_EQ(link->capacity_bps(), 10e6);
  net.sim().run_until(1.5);
  EXPECT_DOUBLE_EQ(link->capacity_bps(), 5e6);
  net.sim().run_until(2.5);
  EXPECT_DOUBLE_EQ(link->capacity_bps(), 20e6);
}

TEST(Schedule, DelayStepsApply) {
  Network net = make_net();
  Link* link = net.link(0, 1);
  apply_delay_schedule(net, *link, {{0.5, 0.040}});
  net.sim().run_until(1.0);
  EXPECT_DOUBLE_EQ(link->prop_delay(), 0.040);
}

TEST(Schedule, ScheduledCapacityShapesDelivery) {
  Network net = make_net();
  Link* link = net.link(0, 1);
  // At t=1 the link becomes 10x slower.
  apply_capacity_schedule(net, *link, {{1.0, 1e6}});
  std::vector<double> arrivals;
  net.bind(1, 9, [&](const Datagram&) { arrivals.push_back(net.sim().now()); });
  // 1000-byte wire packets: 0.8 ms at 10 Mbps, 8 ms at 1 Mbps.
  auto send = [&] {
    Datagram d;
    d.src = 0;
    d.dst = 1;
    d.dst_port = 9;
    d.payload.assign(972, 0);
    net.send(std::move(d));
  };
  send();
  net.sim().run_until(1.5);
  send();
  net.sim().run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 0.0008, 1e-9);
  EXPECT_NEAR(arrivals[1], 1.5 + 0.008, 1e-9);
}

TEST(Schedule, Ar1TraceRevertsToNominal) {
  const auto trace = ar1_trace(920e6, 8e6, 0.7, 600.0, 200, 42);
  ASSERT_EQ(trace.size(), 200u);
  EXPECT_DOUBLE_EQ(trace.front().second, 920e6);
  double sum = 0, mn = 1e18, mx = 0;
  for (const auto& [t, v] : trace) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_NEAR(sum / 200.0, 920e6, 10e6);  // mean-reverting around nominal
  EXPECT_GT(mn, 800e6);                   // bounded wobble, like Tab. I
  EXPECT_LT(mx, 1040e6);
  // Timestamps are the sampling grid.
  EXPECT_DOUBLE_EQ(trace[3].first, 1800.0);
}

TEST(Schedule, Ar1TraceIsDeterministicPerSeed) {
  const auto a = ar1_trace(100e6, 5e6, 0.5, 10.0, 50, 7);
  const auto b = ar1_trace(100e6, 5e6, 0.5, 10.0, 50, 7);
  const auto c = ar1_trace(100e6, 5e6, 0.5, 10.0, 50, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Schedule, NeverGoesNegative) {
  const auto trace = ar1_trace(1e6, 5e6, 0.2, 1.0, 500, 3);
  for (const auto& [t, v] : trace) EXPECT_GE(v, 0.0);
}
