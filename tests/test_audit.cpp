// NCFN_AUDIT teardown checks: a leaked packet-pool row or an unbalanced
// link ledger must abort at SimNet destruction, and clean teardowns must
// stay silent. The audit is gated on obs::audit_enabled() (NCFN_AUDIT env
// override, default on only in debug builds), so each test pins the env
// var explicitly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>

#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "coding/pool.hpp"
#include "obs/audit.hpp"
#include "vnf/coding_vnf.hpp"

namespace ncfn {
namespace {

/// Scoped NCFN_AUDIT override (restores the previous value on exit).
class ScopedAuditEnv {
 public:
  explicit ScopedAuditEnv(const char* value) {
    if (const char* prev = std::getenv("NCFN_AUDIT")) saved_ = prev;
    setenv("NCFN_AUDIT", value, /*overwrite=*/1);
  }
  ~ScopedAuditEnv() {
    if (saved_) {
      setenv("NCFN_AUDIT", saved_->c_str(), 1);
    } else {
      unsetenv("NCFN_AUDIT");
    }
  }
  ScopedAuditEnv(const ScopedAuditEnv&) = delete;
  ScopedAuditEnv& operator=(const ScopedAuditEnv&) = delete;

 private:
  std::optional<std::string> saved_;
};

vnf::VnfConfig relay_config() { return vnf::VnfConfig{}; }

TEST(Audit, EnvVariableControlsGate) {
  {
    ScopedAuditEnv on("1");
    EXPECT_TRUE(obs::audit_enabled());
  }
  {
    ScopedAuditEnv off("0");
    EXPECT_FALSE(obs::audit_enabled());
  }
}

TEST(Audit, CleanTeardownIsSilent) {
  ScopedAuditEnv on("1");
  const auto b = app::scenarios::butterfly(false);
  app::SimNet sim(b.topo);
  auto& vnf = sim.vnf_at(b.o1, relay_config());
  // Borrow and return a pool row: balanced books must not trip the audit.
  { coding::PooledBuf row = vnf.buffer().pool().acquire(64); }
  // SimNet destructor runs the audit here; aborting would fail the test.
}

TEST(AuditDeathTest, LeakedPoolRowAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ScopedAuditEnv on("1");
  EXPECT_DEATH(
      {
        const auto b = app::scenarios::butterfly(false);
        coding::PooledBuf leaked;
        {
          app::SimNet sim(b.topo);
          auto& vnf = sim.vnf_at(b.o1, relay_config());
          leaked = vnf.buffer().pool().acquire(64);
          // `leaked` outlives SimNet: one acquire with no release.
        }
      },
      "ncfn audit: PacketPool");
}

TEST(Audit, DisabledGateIgnoresLeaks) {
  ScopedAuditEnv off("0");
  const auto b = app::scenarios::butterfly(false);
  coding::PooledBuf leaked;
  {
    app::SimNet sim(b.topo);
    auto& vnf = sim.vnf_at(b.o1, relay_config());
    leaked = vnf.buffer().pool().acquire(64);
  }
  // With the gate off the leak goes unreported (release it now so the
  // pool's books balance for any later user of the fixture).
  leaked.reset();
}

TEST(Audit, LinkLedgersConserveAfterTraffic) {
  ScopedAuditEnv on("1");
  const auto b = app::scenarios::butterfly(false);
  app::SimNet sim(b.topo);
  netsim::Network& net = sim.net();

  // Push a few datagrams across one edge and let them land.
  const auto& edge = b.topo.edge(0);
  for (int i = 0; i < 8; ++i) {
    netsim::Datagram d;
    d.src = static_cast<netsim::NodeId>(edge.from);
    d.dst = static_cast<netsim::NodeId>(edge.to);
    d.dst_port = 9;
    d.payload.assign(1200, 0);
    net.send(std::move(d));
  }
  // Mid-flight the ledger still balances because in_flight is a term.
  EXPECT_TRUE(net.audit_conservation().empty());
  net.sim().run_until(5.0);
  EXPECT_TRUE(net.audit_conservation().empty());

  const netsim::Link* l = net.link(static_cast<netsim::NodeId>(edge.from),
                                   static_cast<netsim::NodeId>(edge.to));
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->stats().offered, 8u);
  EXPECT_EQ(l->stats().in_flight, 0u);
  EXPECT_TRUE(l->stats().conserved());
}

}  // namespace
}  // namespace ncfn
