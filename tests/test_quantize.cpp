// Tests for generation-granular plan quantization (ctrl::quantize_plan):
// fractional per-generation flow quanta must be snapped to whole packets,
// trading at most a few quanta of planned rate, and clean plans must be
// left untouched.
#include <gtest/gtest.h>

#include "app/scenarios.hpp"
#include "ctrl/problem.hpp"
#include "ctrl/quantize.hpp"

using namespace ncfn;
using namespace ncfn::ctrl;

namespace {
/// Per-generation packet count every receiver collects at the plan's
/// lambda (minimum across receivers); -1 if any path rate is fractional
/// in generation quanta.
int min_packets_per_generation(const DeploymentPlan& plan, std::size_t m,
                               std::size_t g) {
  const double lambda = plan.lambda_mbps[m];
  if (lambda <= 0) return 0;
  int mn = 1 << 20;
  for (const auto& paths : plan.path_rates[m]) {
    double total = 0;
    for (const auto& pr : paths) {
      const double n = static_cast<double>(g) * pr.rate_mbps / lambda;
      if (std::abs(n - std::round(n)) > 1e-6) return -1;
      total += n;
    }
    mn = std::min(mn, static_cast<int>(std::round(total)));
  }
  return mn;
}

DeploymentPlan butterfly_plan(double max_rate_1, double max_rate_2) {
  const auto b = app::scenarios::butterfly(false);
  static app::scenarios::Butterfly holder = app::scenarios::butterfly(false);
  DeploymentProblem prob;
  prob.topo = &holder.topo;
  prob.alpha = 0.0;
  SessionSpec s1;
  s1.id = 1;
  s1.source = holder.source;
  s1.receivers = {holder.recv_o2, holder.recv_c2};
  s1.lmax_s = 0.150;
  if (max_rate_1 > 0) s1.max_rate_mbps = max_rate_1;
  prob.sessions.push_back(s1);
  if (max_rate_2 > 0) {
    SessionSpec s2;
    s2.id = 2;
    s2.source = holder.source;
    s2.receivers = {holder.recv_c2};
    s2.lmax_s = 0.150;
    s2.max_rate_mbps = max_rate_2;
    prob.sessions.push_back(s2);
  }
  return solve_deployment(prob);
}
}  // namespace

TEST(Quantize, CleanPlanIsUntouched) {
  // Single butterfly session: 35 + 35 splits are already multiples of
  // lambda/g = 17.5 for g = 4.
  auto plan = butterfly_plan(0, 0);
  ASSERT_TRUE(plan.feasible);
  const double lambda = plan.lambda_mbps[0];
  const auto result = quantize_plan(plan, 4);
  EXPECT_EQ(result.sessions_reduced, 0);
  EXPECT_NEAR(result.rate_lost_mbps, 0.0, 1e-6);
  EXPECT_NEAR(plan.lambda_mbps[0], lambda, 1e-6);
  EXPECT_GE(min_packets_per_generation(plan, 0, 4), 4);
}

TEST(Quantize, FractionalSplitsBecomeIntegral) {
  // 40/20 caps force the joint optimum into fractional per-generation
  // quanta on the shared edges; quantization must restore integrality.
  auto plan = butterfly_plan(40, 20);
  ASSERT_TRUE(plan.feasible);
  quantize_plan(plan, 4);
  for (std::size_t m = 0; m < 2; ++m) {
    if (plan.lambda_mbps[m] <= 0) continue;
    EXPECT_GE(min_packets_per_generation(plan, m, 4),
              4) << "session " << m;
  }
}

TEST(Quantize, LambdaNeverIncreasesAndLossIsBounded) {
  auto plan = butterfly_plan(40, 20);
  ASSERT_TRUE(plan.feasible);
  const std::vector<double> before = plan.lambda_mbps;
  const auto result = quantize_plan(plan, 4);
  double lost = 0;
  for (std::size_t m = 0; m < before.size(); ++m) {
    EXPECT_LE(plan.lambda_mbps[m], before[m] + 1e-9);
    lost += before[m] - plan.lambda_mbps[m];
  }
  EXPECT_NEAR(result.rate_lost_mbps, lost, 1e-6);
  // Each reduction step is one quantum = lambda/g; losing more than
  // g quanta would mean lambda reached zero.
  for (std::size_t m = 0; m < before.size(); ++m) {
    EXPECT_GE(plan.lambda_mbps[m], 0.0);
  }
}

TEST(Quantize, EdgeRatesMatchSnappedPaths) {
  auto plan = butterfly_plan(40, 20);
  ASSERT_TRUE(plan.feasible);
  quantize_plan(plan, 4);
  // f_m(e) = max over receivers of conceptual flow across e.
  const auto b = app::scenarios::butterfly(false);
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    std::map<graph::EdgeIdx, double> expect;
    for (const auto& paths : plan.path_rates[m]) {
      std::map<graph::EdgeIdx, double> conceptual;
      for (const auto& pr : paths) {
        for (graph::EdgeIdx e : pr.path.edges) conceptual[e] += pr.rate_mbps;
      }
      for (const auto& [e, r] : conceptual) {
        expect[e] = std::max(expect[e], r);
      }
    }
    for (const auto& [e, r] : expect) {
      if (r <= 1e-9) continue;
      auto it = plan.edge_rate_mbps[m].find(e);
      ASSERT_NE(it, plan.edge_rate_mbps[m].end());
      EXPECT_NEAR(it->second, r, 1e-9);
    }
  }
}

TEST(Quantize, QuantizedRatesNeverExceedOriginal) {
  // Wire rates must stay within the LP's (capacity-feasible) assignment.
  auto plan = butterfly_plan(40, 20);
  ASSERT_TRUE(plan.feasible);
  const auto before = plan.edge_rate_mbps;
  quantize_plan(plan, 4);
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    for (const auto& [e, r] : plan.edge_rate_mbps[m]) {
      const auto it = before[m].find(e);
      ASSERT_NE(it, before[m].end());
      EXPECT_LE(r, it->second + 1e-6);
    }
  }
}

TEST(Quantize, ZeroLambdaSessionIsLeftAlone) {
  auto plan = butterfly_plan(0, 0);
  ASSERT_TRUE(plan.feasible);
  plan.lambda_mbps[0] = 0.0;
  const auto result = quantize_plan(plan, 4);
  EXPECT_EQ(result.sessions_reduced, 0);
  EXPECT_EQ(plan.lambda_mbps[0], 0.0);
}

TEST(Quantize, LargerGenerationsNeedLessReduction) {
  // Finer quanta (bigger g) lose less rate on awkward splits.
  auto coarse = butterfly_plan(40, 20);
  auto fine = butterfly_plan(40, 20);
  ASSERT_TRUE(coarse.feasible);
  const auto r4 = quantize_plan(coarse, 4);
  const auto r16 = quantize_plan(fine, 16);
  EXPECT_LE(r16.rate_lost_mbps, r4.rate_lost_mbps + 1e-6);
}

TEST(Quantize, PathlessReceiverZerosSessionAndCountsIt) {
  // A re-solve after a failure can leave a receiver with no surviving
  // paths; no lambda > 0 reaches integrality for it, so the session is
  // zeroed (not left streaming into a void) and counted as reduced.
  DeploymentPlan plan;
  plan.feasible = true;
  plan.session_ids = {7};
  plan.lambda_mbps = {10.0};
  plan.path_rates.resize(1);
  plan.path_rates[0].resize(2);
  PathRate pr;
  pr.rate_mbps = 10.0;
  plan.path_rates[0][0].push_back(pr);  // receiver 0: one full-rate path
  // receiver 1: no paths at all.
  plan.edge_rate_mbps.resize(1);
  plan.edge_rate_mbps[0][0] = 10.0;

  const QuantizeResult result = quantize_plan(plan, 64);
  EXPECT_EQ(result.sessions_reduced, 1);
  EXPECT_NEAR(result.rate_lost_mbps, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(plan.lambda_mbps[0], 0.0);
  // Path and edge rates are snapped to the zeroed lambda.
  for (const auto& paths : plan.path_rates[0]) {
    for (const auto& p : paths) EXPECT_DOUBLE_EQ(p.rate_mbps, 0.0);
  }
  EXPECT_TRUE(plan.edge_rate_mbps[0].empty());
}
