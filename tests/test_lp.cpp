// Tests for the dense two-phase simplex solver: textbook LPs, edge cases
// (infeasible / unbounded / degenerate), bounds, fixing, equality rows.
#include <gtest/gtest.h>

#include <random>

#include "lp/simplex.hpp"

using namespace ncfn::lp;

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  -> x=2, y=6, obj=36.
  Problem p;
  const int x = p.add_var(3.0);
  const int y = p.add_var(5.0);
  p.add_constraint({{x, 1.0}}, Rel::kLe, 4.0);
  p.add_constraint({{y, 2.0}}, Rel::kLe, 12.0);
  p.add_constraint({{x, 3.0}, {y, 2.0}}, Rel::kLe, 18.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 36.0, 1e-7);
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
  EXPECT_NEAR(s.x[1], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraints) {
  // max -x - y s.t. x + y >= 3, x >= 1  -> x in [1,?], optimum x+y=3.
  Problem p;
  const int x = p.add_var(-1.0);
  const int y = p.add_var(-1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kGe, 3.0);
  p.add_constraint({{x, 1.0}}, Rel::kGe, 1.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -3.0, 1e-7);
  EXPECT_NEAR(s.x[0] + s.x[1], 3.0, 1e-7);
  EXPECT_GE(s.x[0], 1.0 - 1e-7);
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y s.t. x + y = 5, x - y = 1 -> x=3, y=2, obj=7.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(2.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 5.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Rel::kEq, 1.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 3.0, 1e-7);
  EXPECT_NEAR(s.x[1], 2.0, 1e-7);
  EXPECT_NEAR(s.objective, 7.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  const int x = p.add_var(1.0);
  p.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  p.add_constraint({{x, 1.0}}, Rel::kGe, 2.0);
  EXPECT_EQ(p.solve().status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(0.0);
  p.add_constraint({{y, 1.0}}, Rel::kLe, 5.0);
  (void)x;
  EXPECT_EQ(p.solve().status, Status::kUnbounded);
}

TEST(Simplex, UpperBoundsRespected) {
  Problem p;
  const int x = p.add_var(1.0, /*hi=*/2.5);
  p.add_constraint({{x, 1.0}}, Rel::kLe, 100.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 2.5, 1e-7);
}

TEST(Simplex, FixPinsVariable) {
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 10.0);
  p.fix(x, 3.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 3.0, 1e-7);
  EXPECT_NEAR(s.x[1], 7.0, 1e-7);
}

TEST(Simplex, NegativeRhsNormalization) {
  // max -x s.t. -x <= -2  (i.e. x >= 2) -> x = 2.
  Problem p;
  const int x = p.add_var(-1.0);
  p.add_constraint({{x, -1.0}}, Rel::kLe, -2.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
}

TEST(Simplex, RepeatedTermsAreSummed) {
  // x + x <= 4 means 2x <= 4.
  Problem p;
  const int x = p.add_var(1.0);
  p.add_constraint({{x, 1.0}, {x, 1.0}}, Rel::kLe, 4.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 2.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate vertex: several constraints meet at the optimum.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(1.0);
  p.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  p.add_constraint({{y, 1.0}}, Rel::kLe, 1.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 2.0);
  p.add_constraint({{x, 1.0}, {y, -1.0}}, Rel::kLe, 0.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 4 listed twice: phase 1 leaves a redundant artificial basic.
  Problem p;
  const int x = p.add_var(1.0);
  const int y = p.add_var(0.5);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 4.0);
  p.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 4.0);
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 4.0, 1e-7);
  EXPECT_NEAR(s.objective, 4.0, 1e-7);
}

TEST(Simplex, MaxFlowAsLp) {
  // Max-flow on the classic butterfly expressed as an LP must give the
  // min cut. s->a, s->b (cap 1); a->t1, b->t2 (cap 1); a->c, b->c (cap 1);
  // c->d (cap 1); d->t1, d->t2 (cap 1). Single-commodity s->t1:
  // paths: s-a-t1, s-a-c-d-t1, s-b-c-d-t1. Max flow = 2.
  Problem p;
  const int p1 = p.add_var(1.0);
  const int p2 = p.add_var(1.0);
  const int p3 = p.add_var(1.0);
  p.add_constraint({{p1, 1.0}, {p2, 1.0}}, Rel::kLe, 1.0);  // s->a
  p.add_constraint({{p3, 1.0}}, Rel::kLe, 1.0);             // s->b
  p.add_constraint({{p1, 1.0}}, Rel::kLe, 1.0);             // a->t1
  p.add_constraint({{p2, 1.0}, {p3, 1.0}}, Rel::kLe, 1.0);  // c->d
  const Solution s = p.solve();
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, 1e-7);
}

TEST(Simplex, RandomizedFeasibilitySanity) {
  // Random LPs with known feasible point x*: optimal objective must be
  // >= c^T x*; and every constraint must hold at the reported solution.
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::uniform_real_distribution<double> pos(0.0, 3.0);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 6, m = 8;
    std::vector<double> xstar(n);
    for (auto& v : xstar) v = pos(rng);
    Problem p;
    std::vector<double> c(n);
    for (int j = 0; j < n; ++j) {
      c[j] = coeff(rng);
      p.add_var(c[j], /*hi=*/10.0);
    }
    std::vector<std::vector<double>> rows(m, std::vector<double>(n));
    std::vector<double> rhs(m);
    for (int i = 0; i < m; ++i) {
      std::vector<Term> terms;
      double lhs_at_star = 0;
      for (int j = 0; j < n; ++j) {
        rows[i][static_cast<std::size_t>(j)] = coeff(rng);
        terms.push_back({j, rows[i][static_cast<std::size_t>(j)]});
        lhs_at_star += rows[i][static_cast<std::size_t>(j)] * xstar[static_cast<std::size_t>(j)];
      }
      rhs[i] = lhs_at_star + pos(rng);  // slack at x*: feasible
      p.add_constraint(std::move(terms), Rel::kLe, rhs[i]);
    }
    const Solution s = p.solve();
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    double obj_star = 0;
    for (int j = 0; j < n; ++j) obj_star += c[static_cast<std::size_t>(j)] * xstar[static_cast<std::size_t>(j)];
    EXPECT_GE(s.objective, obj_star - 1e-6);
    for (int i = 0; i < m; ++i) {
      double lhs = 0;
      for (int j = 0; j < n; ++j) lhs += rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * s.x[static_cast<std::size_t>(j)];
      EXPECT_LE(lhs, rhs[static_cast<std::size_t>(i)] + 1e-6);
    }
    for (int j = 0; j < n; ++j) {
      EXPECT_GE(s.x[static_cast<std::size_t>(j)], -1e-9);
      EXPECT_LE(s.x[static_cast<std::size_t>(j)], 10.0 + 1e-6);
    }
  }
}
