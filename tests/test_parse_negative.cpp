// Negative tests for the hardened text parsers: every malformed input
// class the fuzz harnesses assert against, pinned as named regressions.
// The positive paths live in test_ctrl / test_config / test_fuzz; this
// suite is the rejection catalogue — checked parse_num semantics, the
// forwarding-table grammar hardening (duplicates, overlong lines,
// trailing bytes), and the strict NC_* signal field rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "app/config.hpp"
#include "coding/strparse.hpp"
#include "ctrl/fwdtable.hpp"
#include "ctrl/signals.hpp"

using namespace ncfn;
using coding::parse_num;

// ---- parse_num<T> ----------------------------------------------------

TEST(ParseNum, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_num<std::uint32_t>("0"), 0u);
  EXPECT_EQ(parse_num<std::uint32_t>("4294967295"), 4294967295u);
  EXPECT_EQ(parse_num<int>("-17"), -17);
  EXPECT_EQ(parse_num<std::uint16_t>("65535"), 65535u);
}

TEST(ParseNum, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_num<std::uint32_t>("12abc").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("12 ").has_value());
  EXPECT_FALSE(parse_num<double>("1.5x").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("0x10").has_value());
}

TEST(ParseNum, RejectsEmptyAndNonNumeric) {
  EXPECT_FALSE(parse_num<std::uint32_t>("").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("abc").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>(" 1").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("+1").has_value());
  EXPECT_FALSE(parse_num<double>("").has_value());
}

TEST(ParseNum, RejectsOutOfRange) {
  EXPECT_FALSE(parse_num<std::uint16_t>("65536").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("4294967296").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("-1").has_value());
  EXPECT_FALSE(parse_num<std::uint32_t>("99999999999999999999").has_value());
  EXPECT_FALSE(parse_num<double>("1e999").has_value());  // overflows to inf
}

TEST(ParseNum, RejectsNonFiniteDoubles) {
  EXPECT_FALSE(parse_num<double>("inf").has_value());
  EXPECT_FALSE(parse_num<double>("nan").has_value());
  EXPECT_TRUE(parse_num<double>("0.376").has_value());
  EXPECT_TRUE(parse_num<double>("1e3").has_value());
}

// ---- ForwardingTable grammar hardening -------------------------------

TEST(FwdTableNegative, RejectsDuplicateSessionRecords) {
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 2:3\n1 4:5\n").has_value());
  // Distinct sessions are of course fine.
  EXPECT_TRUE(ctrl::ForwardingTable::parse("1 2:3\n2 4:5\n").has_value());
}

TEST(FwdTableNegative, RejectsTrailingBytesAfterLastRecord) {
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 2:3").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 2:3\n7 1:2").has_value());
  EXPECT_TRUE(ctrl::ForwardingTable::parse("1 2:3\n").has_value());
}

TEST(FwdTableNegative, RejectsOverlongLines) {
  std::string line = "1";
  for (int i = 0; i < 200; ++i) line += " " + std::to_string(i) + ":1";
  ASSERT_GT(line.size(), 512u);
  EXPECT_FALSE(ctrl::ForwardingTable::parse(line + "\n").has_value());
  // An overlong comment is just as rejected: line length gates first.
  EXPECT_FALSE(
      ctrl::ForwardingTable::parse("#" + std::string(600, 'x') + "\n")
          .has_value());
}

TEST(FwdTableNegative, RejectsOutOfRangeNodeAndPort) {
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 2:65536\n").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 4294967296:2\n").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("4294967296 1:2\n").has_value());
  EXPECT_TRUE(ctrl::ForwardingTable::parse("1 2:65535\n").has_value());
}

TEST(FwdTableNegative, RejectsSignsAndGarbageNumbers) {
  EXPECT_FALSE(ctrl::ForwardingTable::parse("-1 2:3\n").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 -2:3\n").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1 2:3x\n").has_value());
  EXPECT_FALSE(ctrl::ForwardingTable::parse("1x 2:3\n").has_value());
}

// ---- NC_* signal frames ----------------------------------------------

TEST(SignalNegative, RejectsNumericGarbageInsteadOfThrowing) {
  // Pre-hardening these were uncaught std::stoul/stod exceptions.
  EXPECT_FALSE(ctrl::parse_signal("NC_START\nsession abc\nEND\n").has_value());
  EXPECT_FALSE(
      ctrl::parse_signal("NC_START\nsession 99999999999999999999\nEND\n")
          .has_value());
  EXPECT_FALSE(
      ctrl::parse_signal("NC_VNF_END\nvnf 1\ntau oops\nEND\n").has_value());
  EXPECT_FALSE(
      ctrl::parse_signal("NC_VNF_END\nvnf 1\ntau inf\nEND\n").has_value());
}

TEST(SignalNegative, RejectsTrailingGarbageInNumericFields) {
  EXPECT_FALSE(ctrl::parse_signal("NC_START\nsession 1x\nEND\n").has_value());
  EXPECT_FALSE(
      ctrl::parse_signal("NC_VNF_START\ndatacenter 2 \ncount 3\nEND\n")
          .has_value());
}

TEST(SignalNegative, RejectsUnknownAndDuplicateFields) {
  EXPECT_FALSE(
      ctrl::parse_signal("NC_START\nsession 1\ncolour blue\nEND\n")
          .has_value());
  EXPECT_FALSE(
      ctrl::parse_signal("NC_START\nsession 1\nsession 2\nEND\n").has_value());
}

TEST(SignalNegative, RejectsBytesAfterEnd) {
  EXPECT_FALSE(ctrl::parse_signal("NC_START\nsession 1\nEND\njunk\n")
                   .has_value());
  EXPECT_TRUE(ctrl::parse_signal("NC_START\nsession 1\nEND\n").has_value());
}

TEST(SignalNegative, RejectsSettingsSessionLineAnomalies) {
  const std::string head =
      "NC_SETTINGS\ngeneration_blocks 4\nblock_size 1460\n";
  // Out-of-range port (previously silently truncated by the uint16 cast).
  EXPECT_FALSE(
      ctrl::parse_signal(head + "session 3 recode 70000\nEND\n").has_value());
  // Trailing token after the port.
  EXPECT_FALSE(
      ctrl::parse_signal(head + "session 3 recode 20003 extra\nEND\n")
          .has_value());
  // Unknown role.
  EXPECT_FALSE(
      ctrl::parse_signal(head + "session 3 dance 20003\nEND\n").has_value());
  // The well-formed line still parses.
  const auto ok = ctrl::parse_signal(head + "session 3 recode 20003\nEND\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(std::get<ctrl::NcSettings>(*ok).sessions.size(), 1u);
}

// ---- Scenario files ---------------------------------------------------

TEST(ScenarioNegative, RejectsNumericGarbageWithDiagnostics) {
  app::ParseError err;
  EXPECT_FALSE(app::parse_scenario("alpha notanumber\n", &err).has_value());
  EXPECT_EQ(err.line, 1);
  EXPECT_FALSE(
      app::parse_scenario("node V1 host\nnode O1 dc bin=1e999\n", &err)
          .has_value());
  EXPECT_EQ(err.line, 2);
  EXPECT_FALSE(app::parse_scenario("node V1 host\nnode O2 host\n"
                                   "session 12junk V1 -> O2\n",
                                   &err)
                   .has_value());
  EXPECT_EQ(err.line, 3);
}

TEST(ScenarioNegative, RejectsOutOfRangeSessionId) {
  app::ParseError err;
  EXPECT_FALSE(app::parse_scenario("node V1 host\nnode O2 host\n"
                                   "session 99999999999999999999 V1 -> O2\n",
                                   &err)
                   .has_value());
  EXPECT_EQ(err.line, 3);
}
