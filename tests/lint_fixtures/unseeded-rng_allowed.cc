// Fixture: the allow() escape hatch must suppress the unseeded-rng rule.
#include <cstdlib>

int tolerated_draw() {
  return std::rand();  // ncfn-lint: allow(unseeded-rng) — fixture
}
