// Fixture: a bare single-argument cv.wait() outside a predicate loop —
// spurious wakeups and a notify that fires before the wait both slip
// straight through. (The fixture never runs; the shapes are what the
// rule sees.)
struct Waiter {
  ncfn::common::Mutex mu;
  ncfn::common::CondVar cv;
  bool ready NCFN_GUARDED_BY(mu) = false;

  void naked_wait() {
    const ncfn::common::MutexLock lock(mu);
    cv.wait(mu);  // no predicate: a spurious wakeup proceeds unready
  }

  void if_is_not_a_loop() {
    const ncfn::common::MutexLock lock(mu);
    if (!ready) {
      cv.wait(mu);  // checked once; the re-check after wakeup is missing
    }
  }
};
