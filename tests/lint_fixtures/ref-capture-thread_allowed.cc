// Fixture: named captures crossing threads pass — the lambda header
// documents exactly which objects the other thread can touch — and a
// default [&] on a same-thread lambda (no entry point beside it) is
// fine, as is the allow() escape hatch.
#include <algorithm>
#include <cstddef>
#include <vector>

void pool_submit(ncfn::netsim::WorkerPool& pool, std::vector<int>& grid) {
  pool.run(grid.size(), [&grid](std::size_t j) { grid[j] = 1; });
}

int same_thread(const std::vector<int>& xs, int needle) {
  const auto it =
      std::find_if(xs.begin(), xs.end(), [&](int x) { return x == needle; });
  return it == xs.end() ? -1 : static_cast<int>(it - xs.begin());
}

void sanctioned(ncfn::netsim::WorkerPool& pool, std::vector<int>& grid) {
  // ncfn-lint: allow(ref-capture-thread) — fixture demonstrating the escape hatch
  pool.run(grid.size(), [&](std::size_t j) { grid[j] = 2; });
}
