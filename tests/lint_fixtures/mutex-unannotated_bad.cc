// Fixture: a mutex member with no NCFN_GUARDED_BY field naming it —
// the lock guards nothing the thread-safety analysis can see, so the
// analyze preset would wave racy accessors straight through. Both the
// raw std spelling and the annotated wrapper must be flagged.
#include <cstdint>
#include <mutex>  // ncfn-lint: allow(raw-thread) — fixture isolates mutex-unannotated

struct JobQueue {
  std::uint64_t pending = 0;
  // ncfn-lint: allow(raw-thread) — fixture isolates mutex-unannotated
  std::mutex queue_mu;
};

struct ShardState {
  ncfn::common::Mutex state_mu;
  std::uint64_t events = 0;  // racy: nothing ties this to state_mu
};
