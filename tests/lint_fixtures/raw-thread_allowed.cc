// Fixture: the allow() escape hatch must suppress the raw-thread rule,
// and non-threading lookalikes must not trip it.

// ncfn-lint: allow(raw-thread) — fixture demonstrating the escape hatch
#include <thread>

// Identifiers merely containing the banned words are fine, as is
// std::this_thread (sleep/yield cannot add a schedule dependence).
int thread_count = 0;
int mutex_like_id = 0;
void set_threads(int n) { thread_count = n; }
void nap() { std::this_thread::yield(); }
