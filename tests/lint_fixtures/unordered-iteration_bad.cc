// Fixture: iterating an unordered container in a file that emits
// trace/metrics output must be flagged.
#include <unordered_map>

class EventTrace;  // marker: this file emits trace output

int bad_sum(const std::unordered_map<int, int>& counts_by_id) {
  int total = 0;
  for (const auto& [id, n] : counts_by_id) total += n;
  return total;
}
