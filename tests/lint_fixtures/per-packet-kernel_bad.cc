// Fixture: per-packet kernel entry points must be flagged (VNF scope).
struct Dec {
  int recode(int rng);
};

int bad_per_packet_loop(Dec& dec, int rng, int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) sum += dec.recode(rng);
  return sum;
}
