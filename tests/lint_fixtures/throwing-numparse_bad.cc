// Fixture: throwing/unchecked string→number conversions must be flagged.
#include <cstdlib>
#include <string>

unsigned long bad_stoul(const std::string& s) { return std::stoul(s); }

double bad_stod(const std::string& s) { return std::stod(s); }

int bad_atoi(const char* s) { return std::atoi(s); }

long bad_strtol(const char* s) { return std::strtol(s, nullptr, 10); }
