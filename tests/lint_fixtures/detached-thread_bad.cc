// Fixture: detached threads must be flagged — a detached lane outlives
// its captures (stack use-after-free on exit) and cannot be joined at
// the barrier, so the determinism contract cannot hold.
#include <thread>  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread

void fire_and_forget(int* counter) {
  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread
  std::thread worker([counter] { ++*counter; });
  worker.detach();
}

struct Pool {
  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread
  std::thread lane;
  void abandon() { this->lane.detach(); }
};
