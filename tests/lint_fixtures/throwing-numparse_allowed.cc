// Fixture: the allow() escape hatch must suppress throwing-numparse.
#include <string>

unsigned long annotated_stoul(const std::string& s) {
  // ncfn-lint: allow(throwing-numparse) — fixture demonstrating the escape hatch
  return std::stoul(s);
}
