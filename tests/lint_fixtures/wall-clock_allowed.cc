// Fixture: the allow() escape hatch must suppress the wall-clock rule.
#include <ctime>

long stamped_epoch() {
  // ncfn-lint: allow(wall-clock) — fixture demonstrating the escape hatch
  return std::time(nullptr);
}
