// Fixture: the allow() escape hatch must suppress unordered-iteration.
#include <unordered_map>

class MetricsRegistry;  // marker: this file emits metrics output

int tolerated_sum(const std::unordered_map<int, int>& counts_by_id) {
  int total = 0;
  // ncfn-lint: allow(unordered-iteration) — fixture; sum is order-free
  for (const auto& [id, n] : counts_by_id) total += n;
  return total;
}
