// Fixture: iostream use must be flagged (hot-path scope).
#include <iostream>

void bad_log(long bytes) { std::cout << bytes << "\n"; }
