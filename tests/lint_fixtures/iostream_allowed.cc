// Fixture: the allow() escape hatch must suppress the iostream rule.
// ncfn-lint: allow(iostream) — fixture demonstrating the escape hatch
#include <iostream>

void tolerated_log(long bytes);
