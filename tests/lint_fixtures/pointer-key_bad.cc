// Fixture: pointer-keyed ordered containers must be flagged.
#include <map>

struct Session;

std::map<Session*, int>& bad_registry() {
  static std::map<Session*, int> by_session;
  return by_session;
}
