// Fixture: a mutex whose guarded fields are annotated passes, as does
// the allow() escape hatch, as do lookalikes (references alias a mutex
// annotated at its home; MutexLock is a lock, not a mutex).
#include <cstdint>

struct Counter {
  ncfn::common::Mutex mu;
  std::uint64_t value NCFN_GUARDED_BY(mu) = 0;
};

struct Wrapper {
  // ncfn-lint: allow(mutex-unannotated) — wrapper storage, nothing to guard
  ncfn::common::Mutex raw_mu;
};

void lookalikes(ncfn::common::Mutex& by_ref) {
  const ncfn::common::MutexLock lock(by_ref);
}
