// Fixture: raw new/delete must be flagged (hot-path scope).
int* bad_alloc(int n) { return new int[n]; }

void bad_free(const int* p) { delete[] p; }
