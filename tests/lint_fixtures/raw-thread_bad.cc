// Fixture: raw threading primitives outside the worker pool must be
// flagged — spawning, bare locks, waiting primitives, and the headers.
#include <mutex>
#include <thread>

int shared_counter = 0;
std::mutex counter_mu;

void bad_spawn() {
  std::thread t([] {
    const std::lock_guard<std::mutex> lock(counter_mu);
    ++shared_counter;
  });
  t.join();
}
