// Fixture: unseeded randomness must be flagged.
#include <cstdlib>
#include <random>

int bad_draw() {
  std::random_device rd;
  return static_cast<int>(rd()) + std::rand();
}
