// Fixture: the allow() escape hatch must suppress raw-new-delete.
struct Arena;

void* tolerated_alloc(Arena* a) {
  // ncfn-lint: allow(raw-new-delete) — fixture; arena placement new
  return new (a) unsigned long;
}
