// Fixture: batch spellings pass, and allow() suppresses a deliberate
// single-packet call site.
struct Batch;
struct Dec {
  int recode(int rng);
  void recode_batch(int rng, unsigned long k, Batch& out);
};

void good_batched(Dec& dec, int rng, Batch& out) {
  dec.recode_batch(rng, 32, out);
}

int tolerated_single(Dec& dec, int rng) {
  // ncfn-lint: allow(per-packet-kernel) — fixture; repair path sends one
  return dec.recode(rng);
}
