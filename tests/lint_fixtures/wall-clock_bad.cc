// Fixture: wall-clock time sources must be flagged.
#include <chrono>
#include <ctime>

double bad_now_seconds() {
  const auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_epoch() { return std::time(nullptr); }
