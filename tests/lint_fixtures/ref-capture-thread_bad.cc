// Fixture: a default [&] capture handed to a thread or pool entry
// point must be flagged — everything on the caller's stack becomes
// implicitly shared with another thread, and nothing documents which
// objects cross.
#include <cstddef>
#include <thread>  // ncfn-lint: allow(raw-thread) — fixture isolates ref-capture-thread

void pool_submit(ncfn::netsim::WorkerPool& pool, int* grid) {
  pool.run(8, [&](std::size_t j) { grid[j] = 1; });
}

void spawn(int* counter) {
  // ncfn-lint: allow(raw-thread) — fixture isolates ref-capture-thread
  std::thread t([&] { ++*counter; });
  t.join();
}
