// Fixture: the allow() escape hatch must suppress the raw-bytes rule.
#include <cstring>

void tolerated_copy(unsigned char* dst, const unsigned char* src,
                    unsigned long n) {
  // ncfn-lint: allow(raw-bytes) — fixture; size proven by the caller
  std::memcpy(dst, src, n);
}
