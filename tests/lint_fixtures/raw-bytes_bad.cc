// Fixture: raw byte access outside the byte-view header must be flagged.
#include <cstring>

void bad_copy(unsigned char* dst, const unsigned char* src,
              unsigned long n) {
  std::memcpy(dst, src, n);
}

unsigned long bad_cast(const unsigned char* p) {
  return *reinterpret_cast<const unsigned long*>(p);
}
