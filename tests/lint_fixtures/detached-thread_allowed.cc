// Fixture: joined threads and detach lookalikes pass, as does the
// allow() escape hatch.
#include <thread>  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread

void joined(int* counter) {
  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread
  std::thread worker([counter] { ++*counter; });
  worker.join();
}

// An identifier merely containing "detach" is not a detach call.
void detach_lookalike() {
  int detached_count = 0;
  auto undetach = [&detached_count] { ++detached_count; };
  undetach();
}

void sanctioned(int* counter) {
  // ncfn-lint: allow(raw-thread) — fixture isolates detached-thread
  std::thread watchdog([counter] { ++*counter; });
  // ncfn-lint: allow(detached-thread) — fixture demonstrating the escape hatch
  watchdog.detach();
}
