// Fixture: the allow() escape hatch must suppress the pointer-key rule.
#include <map>

struct Session;

// ncfn-lint: allow(pointer-key) — fixture; never iterated into output
std::map<Session*, int>* tolerated_registry();
