// Fixture: predicate-loop waits in every sanctioned shape pass — the
// wait on the while line, the brace-less while body, the braced while
// body — as does the two-argument predicate overload (its parens carry
// a comma) and the allow() escape hatch.
struct Waiter {
  ncfn::common::Mutex mu;
  ncfn::common::CondVar cv;
  bool ready NCFN_GUARDED_BY(mu) = false;

  void same_line() {
    const ncfn::common::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
  }

  void braceless_body() {
    const ncfn::common::MutexLock lock(mu);
    while (!ready)
      cv.wait(mu);
  }

  void braced_body() {
    const ncfn::common::MutexLock lock(mu);
    while (!ready) {
      cv.wait(mu);
    }
  }

  void predicate_overload(std::unique_lock<std::mutex>& lk) {
    std_cv.wait(lk, [this] { return ready; });
  }

  void escape_hatch() {
    const ncfn::common::MutexLock lock(mu);
    // ncfn-lint: allow(cv-wait-no-predicate) — fixture demonstrating the escape hatch
    cv.wait(mu);
  }
};
