// Property-based tests: invariants that must hold over randomized inputs
// and parameter sweeps (TEST_P), tying the optimizer to information-
// theoretic bounds and the codec to exact recovery.
#include <gtest/gtest.h>

#include <random>

#include "app/baseline.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "ctrl/problem.hpp"
#include "ctrl/quantize.hpp"
#include "graph/maxflow.hpp"
#include "netsim/loss.hpp"

using namespace ncfn;

namespace {
graph::Topology random_overlay(std::mt19937& rng, int n_dcs,
                               graph::NodeIdx& src, graph::NodeIdx& dst1,
                               graph::NodeIdx& dst2) {
  graph::Topology t;
  std::uniform_real_distribution<double> cap(10e6, 100e6);
  std::uniform_real_distribution<double> delay(0.005, 0.040);
  std::vector<graph::NodeIdx> dcs;
  for (int i = 0; i < n_dcs; ++i) {
    graph::NodeInfo ni;
    ni.name = "dc" + std::to_string(i);
    ni.kind = graph::NodeKind::kDataCenter;
    ni.bin_bps = 500e6;
    ni.bout_bps = 500e6;
    ni.vnf_capacity_bps = 500e6;
    dcs.push_back(t.add_node(ni));
  }
  graph::NodeInfo host;
  host.kind = graph::NodeKind::kHost;
  host.name = "src";
  src = t.add_node(host);
  host.name = "d1";
  dst1 = t.add_node(host);
  host.name = "d2";
  dst2 = t.add_node(host);
  // Source feeds 2-3 DCs; DCs form a sparse random mesh; 2-3 DCs feed
  // each receiver. Every edge has a finite random capacity.
  std::uniform_int_distribution<int> pick(0, n_dcs - 1);
  for (int i = 0; i < n_dcs; ++i) {
    if (i < 3) t.add_edge(src, dcs[static_cast<std::size_t>(i)], delay(rng), cap(rng));
    for (int j = 0; j < n_dcs; ++j) {
      if (i != j && (i + j) % 2 == 0) {
        t.add_edge(dcs[static_cast<std::size_t>(i)], dcs[static_cast<std::size_t>(j)], delay(rng), cap(rng));
      }
    }
  }
  t.add_edge(dcs[static_cast<std::size_t>(pick(rng))], dst1, delay(rng), cap(rng));
  t.add_edge(dcs[static_cast<std::size_t>(n_dcs - 1)], dst1, delay(rng), cap(rng));
  t.add_edge(dcs[static_cast<std::size_t>(pick(rng))], dst2, delay(rng), cap(rng));
  t.add_edge(dcs[0], dst2, delay(rng), cap(rng));
  return t;
}
}  // namespace

TEST(Property, PlanThroughputNeverExceedsMaxFlowBound) {
  // Conceptual-flow LP optimum <= min over receivers of s-t max flow
  // (Ahlswede et al.: with coding they are equal when paths are not
  // delay- or count-limited; the LP side can only be lower).
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    graph::NodeIdx src, d1, d2;
    const auto topo = random_overlay(rng, 5, src, d1, d2);
    ctrl::DeploymentProblem prob;
    prob.topo = &topo;
    prob.alpha = 0.0;
    ctrl::SessionSpec spec;
    spec.id = 1;
    spec.source = src;
    spec.receivers = {d1, d2};
    spec.lmax_s = 10.0;  // effectively unconstrained
    prob.sessions.push_back(spec);
    const auto plan = ctrl::solve_deployment(prob);
    ASSERT_TRUE(plan.feasible) << trial;
    const double bound =
        graph::multicast_capacity(topo, src, {d1, d2}) / 1e6;
    EXPECT_LE(plan.lambda_mbps[0], bound + 0.01) << "trial " << trial;
  }
}

TEST(Property, RoutingNeverBeatsCoding) {
  // Tree packing (routing) <= conceptual-flow LP (coding), always.
  std::mt19937 rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    graph::NodeIdx src, d1, d2;
    const auto topo = random_overlay(rng, 5, src, d1, d2);
    ctrl::DeploymentProblem prob;
    prob.topo = &topo;
    prob.alpha = 0.0;
    ctrl::SessionSpec spec;
    spec.id = 1;
    spec.source = src;
    spec.receivers = {d1, d2};
    spec.lmax_s = 10.0;
    prob.sessions.push_back(spec);
    const auto plan = ctrl::solve_deployment(prob);
    const auto packing = app::pack_trees(topo, src, {d1, d2}, 10.0);
    if (!plan.feasible) continue;
    EXPECT_LE(packing.total_rate_mbps, plan.lambda_mbps[0] + 0.5)
        << "trial " << trial;
  }
}

TEST(Property, EdgeRatesRespectCapsInEveryPlan) {
  std::mt19937 rng(55);
  for (int trial = 0; trial < 8; ++trial) {
    graph::NodeIdx src, d1, d2;
    const auto topo = random_overlay(rng, 6, src, d1, d2);
    ctrl::DeploymentProblem prob;
    prob.topo = &topo;
    prob.alpha = 10.0;
    ctrl::SessionSpec spec;
    spec.id = 1;
    spec.source = src;
    spec.receivers = {d1, d2};
    spec.lmax_s = 10.0;
    prob.sessions.push_back(spec);
    const auto plan = ctrl::solve_deployment(prob);
    if (!plan.feasible) continue;
    // Per-edge caps.
    for (const auto& [e, rate] : plan.edge_rate_mbps[0]) {
      EXPECT_LE(rate, topo.edge(e).capacity_bps / 1e6 + 1e-5);
    }
    // Conceptual flows deliver lambda to every receiver.
    for (std::size_t k = 0; k < 2; ++k) {
      double total = 0;
      for (const auto& pr : plan.path_rates[0][k]) total += pr.rate_mbps;
      EXPECT_GE(total, plan.lambda_mbps[0] - 1e-5);
    }
  }
}

TEST(Property, RandomTopologiesDecodeEndToEnd) {
  // Full stack on random overlays: solve (2), quantize, wire, run real
  // coded packets — every decoded byte must verify and goodput must be a
  // solid fraction of the planned (quantized) rate.
  std::mt19937 rng(31337);
  int exercised = 0;
  for (int trial = 0; trial < 6; ++trial) {
    graph::NodeIdx src, d1, d2;
    const auto topo = random_overlay(rng, 4, src, d1, d2);
    ctrl::DeploymentProblem prob;
    prob.topo = &topo;
    prob.alpha = 0.0;
    ctrl::SessionSpec spec;
    spec.id = 1;
    spec.source = src;
    spec.receivers = {d1, d2};
    spec.lmax_s = 10.0;
    spec.max_rate_mbps = 30.0;  // keep the packet-level run light
    prob.sessions.push_back(spec);
    auto plan = ctrl::solve_deployment(prob);
    if (!plan.feasible || plan.lambda_mbps[0] < 5.0) continue;
    // Reverse feedback edges so receivers can reach the source.
    auto topo2 = topo;
    for (graph::NodeIdx r : {d1, d2}) {
      if (topo2.find_edge(r, src) < 0) topo2.add_edge(r, src, 0.02, 10e6);
    }

    coding::CodingParams params;
    app::SyntheticProvider provider(
        static_cast<std::uint64_t>(trial) + 100,
        static_cast<std::size_t>(40e6 / 8 * 6), params);
    app::SimNet sim(topo2);
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.seed = static_cast<std::uint32_t>(trial * 7 + 3);
    app::NcMulticastSession mc(sim, plan, 0, spec, provider, wiring);
    mc.receiver(0).set_verify(&provider);
    mc.receiver(1).set_verify(&provider);
    mc.start();
    sim.net().sim().run_until(3.0);

    // Quantization may have lowered the deliverable rate; recompute it.
    auto quantized = plan;
    ctrl::quantize_plan(quantized, params.generation_blocks);
    const double target = quantized.lambda_mbps[0];
    if (target < 1.0) continue;
    ++exercised;
    EXPECT_GT(mc.session_goodput_mbps(), 0.55 * target)
        << "trial " << trial << " target " << target;
    EXPECT_EQ(mc.receiver(0).stats().verify_failures, 0u) << trial;
    EXPECT_EQ(mc.receiver(1).stats().verify_failures, 0u) << trial;
  }
  EXPECT_GE(exercised, 3);  // the generator must yield usable topologies
}

// ---- Codec properties over a parameter sweep ----

struct CodecParams {
  std::size_t blocks;
  std::size_t block_size;
  double loss;
};

class CodecSweep : public ::testing::TestWithParam<CodecParams> {};

TEST_P(CodecSweep, DecodesThroughLossyRelayChain) {
  const auto [g, bs, loss] = GetParam();
  coding::CodingParams p;
  p.generation_blocks = g;
  p.block_size = bs;
  std::mt19937 rng(static_cast<unsigned>(g * 1000 + bs));
  std::uniform_real_distribution<double> u(0, 1);

  std::vector<std::uint8_t> data(p.generation_bytes());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  coding::Generation gen(0, data, p);
  coding::Encoder enc(1, gen, rng);
  coding::Decoder relay(1, 0, p), dst(1, 0, p);

  int sent = 0;
  while (!dst.complete() && sent < 5000) {
    ++sent;
    if (u(rng) >= loss) relay.add(enc.encode_random());
    if (relay.rank() > 0 && u(rng) >= loss) dst.add(relay.recode(rng));
  }
  ASSERT_TRUE(dst.complete())
      << "g=" << g << " bs=" << bs << " loss=" << loss;
  const auto blocks = dst.recover();
  for (std::size_t i = 0; i < g; ++i) {
    ASSERT_EQ(blocks[i],
              std::vector<std::uint8_t>(gen.block(i).begin(),
                                        gen.block(i).end()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecSweep,
    ::testing::Values(CodecParams{1, 64, 0.0}, CodecParams{2, 64, 0.2},
                      CodecParams{4, 1460, 0.0}, CodecParams{4, 1460, 0.3},
                      CodecParams{8, 256, 0.5}, CodecParams{16, 128, 0.1},
                      CodecParams{32, 32, 0.0}, CodecParams{64, 16, 0.2}));

// ---- Loss model properties ----

class UniformLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(UniformLossSweep, EmpiricalRateMatches) {
  const double rate = GetParam();
  std::mt19937 rng(static_cast<unsigned>(rate * 1e4) + 1);
  netsim::UniformLoss loss(rate);
  int drops = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, rate, 0.015) << rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, UniformLossSweep,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.3, 0.5));

TEST(Property, BurstLossMonotoneInP) {
  std::mt19937 rng(3);
  double prev = -1;
  for (const double p : {0.0, 0.01, 0.02, 0.03, 0.05}) {
    netsim::BurstLoss loss(p);
    int drops = 0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) drops += loss.drop(rng) ? 1 : 0;
    const double rate = static_cast<double>(drops) / n;
    EXPECT_GE(rate, prev - 0.005) << p;
    prev = rate;
  }
}

TEST(Property, InnovationNeverExceedsPacketCount) {
  coding::CodingParams p;
  p.generation_blocks = 8;
  p.block_size = 32;
  std::mt19937 rng(9);
  std::vector<std::uint8_t> data(p.generation_bytes(), 1);
  coding::Generation gen(0, data, p);
  coding::Encoder enc(1, gen, rng);
  coding::Decoder dec(1, 0, p);
  for (int i = 1; i <= 20; ++i) {
    dec.add(enc.encode_random());
    EXPECT_LE(dec.rank(), std::min<std::size_t>(static_cast<std::size_t>(i),
                                                p.generation_blocks));
    EXPECT_EQ(dec.packets_seen(), static_cast<std::size_t>(i));
  }
}

TEST(Property, RandomCodingIsAlmostAlwaysInnovative) {
  // Over GF(2^8), a fresh random combination is dependent with probability
  // ~ 1/256 per missing dimension; across many generations the innovation
  // ratio must be near 1.
  coding::CodingParams p;
  p.generation_blocks = 4;
  p.block_size = 16;
  std::mt19937 rng(10);
  int innovative = 0, total = 0;
  for (int g = 0; g < 200; ++g) {
    std::vector<std::uint8_t> data(p.generation_bytes());
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    coding::Generation gen(static_cast<coding::GenerationId>(g), data, p);
    coding::Encoder enc(1, gen, rng);
    coding::Decoder dec(1, static_cast<coding::GenerationId>(g), p);
    for (std::size_t i = 0; i < p.generation_blocks; ++i) {
      ++total;
      innovative += dec.add(enc.encode_random()) ? 1 : 0;
    }
  }
  EXPECT_GT(static_cast<double>(innovative) / total, 0.97);
}
