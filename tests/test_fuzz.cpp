// Robustness tests: every wire-format parser must survive arbitrary
// bytes — malformed control traffic or corrupted datagrams must never
// crash a VNF, only be rejected. Randomized (seeded) byte soup plus
// targeted mutations of valid messages.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "app/messages.hpp"
#include "coding/packet.hpp"
#include "ctrl/fwdtable.hpp"
#include "ctrl/signals.hpp"

using namespace ncfn;

namespace {
std::vector<std::uint8_t> random_bytes(std::mt19937& rng, std::size_t n) {
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}
std::string random_text(std::mt19937& rng, std::size_t n) {
  // Printable-ish soup with newlines and spaces sprinkled in.
  std::uniform_int_distribution<int> d(0, 99);
  std::string out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int r = d(rng);
    if (r < 10) {
      out += '\n';
    } else if (r < 25) {
      out += ' ';
    } else if (r < 35) {
      out += static_cast<char>('0' + r % 10);
    } else {
      out += static_cast<char>('!' + r % 90);
    }
  }
  return out;
}
}  // namespace

TEST(Fuzz, CodedPacketParseSurvivesByteSoup) {
  coding::CodingParams params;
  std::mt19937 rng(1);
  std::uniform_int_distribution<std::size_t> len(0, 3000);
  for (int i = 0; i < 2000; ++i) {
    const auto wire = random_bytes(rng, len(rng));
    const auto pkt = coding::CodedPacket::parse(wire, params);
    // Only exactly-sized datagrams may parse; contents are then taken
    // verbatim (there is no checksum at this layer, like UDP payloads).
    EXPECT_EQ(pkt.has_value(), wire.size() == params.packet_bytes());
  }
}

TEST(Fuzz, FeedbackParseSurvivesByteSoup) {
  std::mt19937 rng(2);
  std::uniform_int_distribution<std::size_t> len(0, 64);
  int accepted = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto wire = random_bytes(rng, len(rng));
    const auto fb = app::Feedback::parse(wire);
    if (fb.has_value()) {
      ++accepted;
      EXPECT_EQ(wire.size(), 23u);
      EXPECT_TRUE(fb->type == app::FeedbackType::kRepair ||
                  fb->type == app::FeedbackType::kAck);
    }
  }
  // 23-byte random messages pass only with a valid type byte (2/256).
  EXPECT_LT(accepted, 50);
}

TEST(Fuzz, ForwardingTableParseSurvivesTextSoup) {
  std::mt19937 rng(3);
  std::uniform_int_distribution<std::size_t> len(0, 400);
  for (int i = 0; i < 3000; ++i) {
    const auto text = random_text(rng, len(rng));
    const auto tab = ctrl::ForwardingTable::parse(text);  // no crash
    if (tab.has_value()) {
      // Anything accepted must re-serialize and re-parse to itself.
      const auto again = ctrl::ForwardingTable::parse(tab->serialize());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *tab);
    }
  }
}

TEST(Fuzz, SignalParseSurvivesTextSoup) {
  std::mt19937 rng(4);
  std::uniform_int_distribution<std::size_t> len(0, 400);
  for (int i = 0; i < 3000; ++i) {
    const auto text = random_text(rng, len(rng));
    const auto sig = ctrl::parse_signal(text);  // must not crash or throw
    if (sig.has_value()) {
      const auto again = ctrl::parse_signal(ctrl::serialize(*sig));
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->index(), sig->index());
    }
  }
}

TEST(Fuzz, SignalParseSurvivesMutatedValidMessages) {
  // Start from each valid signal and flip/insert/truncate characters.
  ctrl::ForwardingTable tab;
  tab.set(3, {ctrl::NextHop{1, 20003}});
  const ctrl::Signal signals[] = {
      ctrl::NcStart{1},
      ctrl::NcVnfStart{2, 3},
      ctrl::NcVnfEnd{4, 600.0},
      ctrl::NcForwardTab{tab},
      ctrl::NcSettings{{ctrl::SessionSetting{3, ctrl::VnfRole::kRecode,
                                             20003}},
                       4, 1460},
  };
  std::mt19937 rng(5);
  for (const auto& base : signals) {
    const std::string text = ctrl::serialize(base);
    for (int trial = 0; trial < 500; ++trial) {
      std::string mutated = text;
      std::uniform_int_distribution<std::size_t> pos(0, mutated.size() - 1);
      switch (trial % 3) {
        case 0:  // flip a character
          mutated[pos(rng)] = static_cast<char>(rng() % 128);
          break;
        case 1:  // truncate
          mutated.resize(pos(rng));
          break;
        case 2:  // duplicate a chunk
          mutated.insert(pos(rng), mutated.substr(0, pos(rng) % 16));
          break;
      }
      (void)ctrl::parse_signal(mutated);  // no crash, no throw
    }
  }
}

TEST(Fuzz, FeedbackRoundTripIsStableOverRandomFields) {
  std::mt19937 rng(6);
  for (int i = 0; i < 2000; ++i) {
    app::Feedback f;
    f.type = (rng() & 1) ? app::FeedbackType::kRepair
                         : app::FeedbackType::kAck;
    f.session = rng();
    f.generation = rng();
    f.count = static_cast<std::uint16_t>(rng());
    f.block_mask = (static_cast<std::uint64_t>(rng()) << 32) | rng();
    f.receiver_node = rng();
    const auto back = app::Feedback::parse(f.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->session, f.session);
    EXPECT_EQ(back->generation, f.generation);
    EXPECT_EQ(back->count, f.count);
    EXPECT_EQ(back->block_mask, f.block_mask);
    EXPECT_EQ(back->receiver_node, f.receiver_node);
  }
}

TEST(Fuzz, ForwardingTableRoundTripOverRandomTables) {
  std::mt19937 rng(7);
  for (int i = 0; i < 500; ++i) {
    ctrl::ForwardingTable tab;
    const int sessions = static_cast<int>(rng() % 20);
    for (int s = 0; s < sessions; ++s) {
      std::vector<ctrl::NextHop> hops;
      const int nh = static_cast<int>(rng() % 5);
      for (int h = 0; h < nh; ++h) {
        hops.push_back(ctrl::NextHop{static_cast<std::uint32_t>(rng()),
                                     static_cast<std::uint16_t>(rng())});
      }
      tab.set(static_cast<coding::SessionId>(rng()), std::move(hops));
    }
    const auto back = ctrl::ForwardingTable::parse(tab.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, tab);
  }
}
