// Guards the seed-corpus layout contract: every file checked in under
// tests/corpus/ is exercised by exactly one replay test. The replay
// tests (fuzz.replay_<target>, see fuzz/CMakeLists.txt) each consume
// one directory tests/corpus/fuzz_<target>, so the contract reduces to:
//   * the top level of tests/corpus/ contains only the known target
//     directories — a stray dir would hold seeds nothing replays;
//   * each target directory exists and holds at least one regular file
//     — an empty corpus makes its replay test exit 2;
//   * no nested directories or non-regular files, which the replay
//     driver would skip silently.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

const std::set<std::string> kTargets = {
    "fuzz_packet",  "fuzz_feedback", "fuzz_signals",
    "fuzz_fwdtable", "fuzz_scenario", "fuzz_gf_diff",
};

fs::path corpus_root() {
  return fs::path(NCFN_SOURCE_DIR) / "tests" / "corpus";
}

}  // namespace

TEST(CorpusLayout, TopLevelIsExactlyTheKnownTargets) {
  ASSERT_TRUE(fs::is_directory(corpus_root()))
      << "missing corpus root " << corpus_root();
  std::set<std::string> found;
  for (const auto& entry : fs::directory_iterator(corpus_root())) {
    EXPECT_TRUE(entry.is_directory())
        << "stray non-directory in corpus root: " << entry.path()
        << " (seeds must live in a per-target subdirectory)";
    found.insert(entry.path().filename().string());
  }
  EXPECT_EQ(found, kTargets)
      << "corpus directories must match the fuzz target list in "
         "fuzz/CMakeLists.txt one-to-one; a mismatch means seeds exist "
         "that no replay test runs, or a replay test has no corpus";
}

TEST(CorpusLayout, EveryTargetHasFlatNonEmptySeeds) {
  for (const auto& target : kTargets) {
    const fs::path dir = corpus_root() / target;
    ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      EXPECT_TRUE(entry.is_regular_file())
          << "non-regular entry " << entry.path()
          << " — the replay driver only reads regular files at the top "
             "level, so this seed would never be replayed";
      EXPECT_GT(entry.file_size(), 0u)
          << "empty seed " << entry.path()
          << " exercises nothing; delete it or give it content";
      ++files;
    }
    EXPECT_GE(files, 1u) << "empty corpus " << dir
                         << " would make fuzz.replay fail with exit 2";
  }
}

TEST(CorpusLayout, SeedNamesAreReplayStable) {
  // Replay output lists seeds by filename and folds them in sorted
  // order; names must therefore be unique per directory (guaranteed by
  // the filesystem) and portable — ASCII, no spaces, so the one-line-
  // per-seed output stays parseable and diffs cleanly across presets.
  for (const auto& target : kTargets) {
    for (const auto& entry : fs::directory_iterator(corpus_root() / target)) {
      const std::string name = entry.path().filename().string();
      const bool portable =
          std::all_of(name.begin(), name.end(), [](unsigned char ch) {
            return (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                   ch == '.' || ch == '_' || ch == '-';
          });
      EXPECT_TRUE(portable)
          << "seed name " << entry.path()
          << " must be lowercase ASCII [a-z0-9._-] for stable replay logs";
    }
  }
}
