// Observability layer tests: metrics registry semantics, histogram edge
// cases, the trace determinism contract (two same-seed runs must be
// byte-identical), golden-trace regression for two end-to-end scenarios,
// and the zero-allocation guarantee of the instrumented hot path.
//
// Golden files live in tests/golden/. After an *intentional* behaviour
// change, regenerate them with:
//   NCFN_UPDATE_GOLDEN=1 ./build/tests/test_obs
// and commit the diff — the point of the harness is that packet ordering,
// drop behaviour and decode timing cannot change silently.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "ctrl/problem.hpp"
#include "graph/topology.hpp"
#include "netsim/loss.hpp"
#include "obs/obs.hpp"

namespace {

using namespace ncfn;

// ---------------------------------------------------------------------------
// Histogram edge cases
// ---------------------------------------------------------------------------

TEST(Histogram, EmptyReportsZeros) {
  const double bounds[] = {1.0, 2.0};
  obs::Histogram h{std::span<const double>(bounds)};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  ASSERT_EQ(h.buckets().size(), 3u);
  for (std::uint64_t b : h.buckets()) EXPECT_EQ(b, 0u);
}

TEST(Histogram, NoBoundsMeansSingleOverflowBucket) {
  obs::Histogram h{std::span<const double>{}};
  h.record(-5.0);
  h.record(0.0);
  h.record(1e12);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0], 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_EQ(h.max(), 1e12);
}

TEST(Histogram, BucketBoundariesAreHalfOpen) {
  // Bucket i holds bound[i-1] <= x < bound[i]; a sample exactly on a
  // bound belongs to the bucket above it.
  const double bounds[] = {1.0, 2.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 1 (not 0)
  h.record(1.99);  // bucket 1
  h.record(2.0);   // overflow bucket
  h.record(7.0);   // overflow bucket
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 2u);
  EXPECT_EQ(h.mean(), (0.5 + 1.0 + 1.99 + 2.0 + 7.0) / 5.0);
}

TEST(Histogram, MergeFoldsCountsAndExtremes) {
  const double bounds[] = {10.0};
  obs::Histogram a{std::span<const double>(bounds)};
  obs::Histogram b{std::span<const double>(bounds)};
  a.record(1.0);
  b.record(20.0);
  b.record(-3.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 18.0);
  EXPECT_EQ(a.min(), -3.0);
  EXPECT_EQ(a.max(), 20.0);
  EXPECT_EQ(a.buckets()[0], 2u);
  EXPECT_EQ(a.buckets()[1], 1u);
}

TEST(Histogram, MergeIntoEmptyAdoptsExtremes) {
  const double bounds[] = {10.0};
  obs::Histogram a{std::span<const double>(bounds)};
  obs::Histogram b{std::span<const double>(bounds)};
  b.record(4.0);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.min(), 4.0);
  EXPECT_EQ(a.max(), 4.0);
}

TEST(Histogram, MergeRejectsMismatchedBounds) {
  const double b1[] = {1.0};
  const double b2[] = {2.0};
  obs::Histogram a{std::span<const double>(b1)};
  obs::Histogram b{std::span<const double>(b2)};
  a.record(0.5);
  b.record(0.5);
  EXPECT_FALSE(a.merge(b));
  EXPECT_EQ(a.count(), 1u);  // unchanged on rejection
  EXPECT_EQ(a.buckets()[0], 1u);
}

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HandlesAreStableAcrossRegistrations) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x");
  a.inc(3);
  // Creating more entries must not invalidate the first handle.
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  obs::Counter& a2 = reg.counter("x");
  EXPECT_EQ(&a, &a2);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  EXPECT_EQ(reg.counter_value("never-registered"), 0u);
  EXPECT_EQ(reg.find_counter("never-registered"), nullptr);
}

TEST(MetricsRegistry, HistogramBoundsFixedByFirstRegistration) {
  obs::MetricsRegistry reg;
  const double b1[] = {1.0, 2.0};
  const double b2[] = {9.0};
  obs::Histogram& h = reg.histogram("h", b1);
  obs::Histogram& again = reg.histogram("h", b2);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndOrdered) {
  auto populate = [](obs::MetricsRegistry& reg) {
    // Insert in non-lexicographic order; output must still be sorted.
    reg.counter("zeta").inc(2);
    reg.counter("alpha").inc(1);
    reg.gauge("g").set(2.5);
    const double bounds[] = {0.5};
    reg.histogram("h", bounds).record(0.25);
  };
  obs::MetricsRegistry r1, r2;
  populate(r1);
  populate(r2);
  const std::string j = r1.to_json();
  EXPECT_EQ(j, r2.to_json());
  EXPECT_LT(j.find("\"alpha\""), j.find("\"zeta\""));
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace basics
// ---------------------------------------------------------------------------

TEST(EventTrace, DisabledEmitsNothing) {
  obs::EventTrace t;
  t.packet_enqueue(0, 1, 1500, 1);
  t.gen_decode(2, 1, 0, 5);
  t.signal(0, "NC_START");
  EXPECT_EQ(t.record_count(), 0u);
  EXPECT_TRUE(t.data().empty());
}

TEST(EventTrace, StampsClockAndFixedKeyOrder) {
  obs::EventTrace t;
  double now = 1.25;
  t.set_clock([&now] { return now; });
  t.enable();
  t.packet_enqueue(3, 4, 1500, 2);
  now = 2.5;
  t.packet_drop(3, 4, 1500, "queue");
  t.gen_close(5, 1, 7, "evict");
  ASSERT_EQ(t.record_count(), 3u);
  EXPECT_EQ(t.data(),
            "{\"t\":1.250000000,\"ev\":\"pkt_enq\",\"from\":3,\"to\":4,"
            "\"bytes\":1500,\"q\":2}\n"
            "{\"t\":2.500000000,\"ev\":\"pkt_drop\",\"from\":3,\"to\":4,"
            "\"bytes\":1500,\"reason\":\"queue\"}\n"
            "{\"t\":2.500000000,\"ev\":\"gen_close\",\"node\":5,"
            "\"session\":1,\"gen\":7,\"reason\":\"evict\"}\n");
}

// ---------------------------------------------------------------------------
// Zero-allocation hot path (the PR 1 PacketPool discipline must survive
// instrumentation): with counters attached and the trace disabled, the
// steady-state encode/add/recode loop may not touch the heap.
// ---------------------------------------------------------------------------

TEST(ObsHotPath, MetricsAttachedSteadyStateDoesNotAllocate) {
  using namespace ncfn::coding;
  CodingParams p;
  auto pool = PacketPool::make();
  std::mt19937 rng(7);
  std::vector<std::uint8_t> data(p.generation_bytes());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  Generation gen(0, data, p);
  Encoder enc(1, gen, rng, pool);

  obs::Observability obs;  // trace default-disabled; metrics always on
  const CodingObs handles = CodingObs::bind(obs, /*node=*/9);

  auto one_round = [&] {
    Decoder dec(1, 0, p, pool);
    dec.set_obs(&handles);
    for (std::size_t i = 0; i < p.generation_blocks + 2; ++i) {
      dec.add(enc.encode_random());
    }
    for (int i = 0; i < 8; ++i) {
      CodedPacket out = dec.recode(rng);
      ASSERT_EQ(out.payload_size(), p.block_size);
    }
  };

  one_round();  // warmup sizes the freelist and registers all counters
  const auto warm = pool.stats();
  const std::uint64_t seen_warm = obs.metrics.counter_value(
      "coding.packets_seen");

  for (int round = 0; round < 20; ++round) one_round();

  const auto after = pool.stats();
  EXPECT_EQ(after.heap_allocs, warm.heap_allocs)
      << "instrumented steady-state encode/add/recode touched the heap";
  EXPECT_GT(after.reuses, warm.reuses);
  // ...and the counters actually counted.
  EXPECT_EQ(obs.metrics.counter_value("coding.packets_seen"),
            seen_warm + 20 * (p.generation_blocks + 2));
  EXPECT_EQ(obs.metrics.counter_value("coding.recode_ops"),
            21u * 8u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism + golden traces
// ---------------------------------------------------------------------------

struct TracedRun {
  std::string trace;
  std::string metrics_json;
};

// The examples/quickstart.cpp overlay, shrunk to a few generations so the
// trace stays golden-file sized.
TracedRun run_quickstart(std::uint32_t seed) {
  graph::Topology topo;
  graph::NodeInfo host;
  host.kind = graph::NodeKind::kHost;
  host.name = "source";
  const auto source = topo.add_node(host);
  host.name = "receiver-1";
  const auto rx1 = topo.add_node(host);
  host.name = "receiver-2";
  const auto rx2 = topo.add_node(host);
  graph::NodeInfo dc;
  dc.kind = graph::NodeKind::kDataCenter;
  dc.bin_bps = dc.bout_bps = dc.vnf_capacity_bps = 100e6;
  dc.name = "dc-east";
  const auto east = topo.add_node(dc);
  dc.name = "dc-west";
  const auto west = topo.add_node(dc);
  topo.add_edge(source, east, 0.010, 50e6);
  topo.add_edge(source, west, 0.012, 50e6);
  topo.add_edge(east, west, 0.008, 30e6);
  topo.add_edge(west, east, 0.008, 30e6);
  topo.add_edge(east, rx1, 0.009, 60e6);
  topo.add_edge(west, rx2, 0.011, 60e6);
  topo.add_edge(east, rx2, 0.020, 20e6);
  topo.add_edge(west, rx1, 0.020, 20e6);
  topo.add_edge(rx1, source, 0.020, 10e6);
  topo.add_edge(rx2, source, 0.022, 10e6);

  ctrl::SessionSpec session;
  session.id = 1;
  session.source = source;
  session.receivers = {rx1, rx2};
  session.lmax_s = 0.100;
  ctrl::DeploymentProblem problem;
  problem.topo = &topo;
  problem.sessions = {session};
  problem.alpha = 5.0;
  const ctrl::DeploymentPlan plan = ctrl::solve_deployment(problem);
  EXPECT_TRUE(plan.feasible);

  coding::CodingParams params;
  app::SyntheticProvider data(seed, 3 * params.generation_bytes(), params);
  app::SimNet sim(topo);
  sim.trace().enable();
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  wiring.redundancy = 1;
  wiring.seed = seed + 90;
  app::NcMulticastSession mc(sim, plan, 0, session, data, wiring);
  mc.receiver(0).set_verify(&data);
  mc.receiver(1).set_verify(&data);
  mc.start();
  sim.net().sim().run_until(0.5);
  return TracedRun{sim.trace().data(), sim.metrics().to_json()};
}

// One NC session on the Fig. 6 butterfly, a few generations, with lossy
// bottleneck — the golden trace must cover the drop/repair path too. The
// network seed drives the loss draws, so different seeds genuinely change
// which packets die.
TracedRun run_butterfly(std::uint32_t seed) {
  const auto b = app::scenarios::butterfly(false);
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions = {spec};
  const auto plan = ctrl::solve_deployment(prob);
  EXPECT_TRUE(plan.feasible);

  coding::CodingParams params;
  app::SyntheticProvider provider(seed, 3 * params.generation_bytes(),
                                  params);
  app::SimNetConfig net_cfg;
  net_cfg.seed = seed;
  app::SimNet sim(b.topo, net_cfg);
  sim.link(b.bottleneck)
      ->set_loss_model(std::make_unique<netsim::UniformLoss>(0.35));
  sim.trace().enable();
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  wiring.redundancy = 0;
  wiring.repair_timeout_s = 0.3;
  wiring.seed = seed + 11;
  app::NcMulticastSession session(sim, plan, 0, spec, provider, wiring);
  session.receiver(0).set_verify(&provider);
  session.receiver(1).set_verify(&provider);
  session.start();
  sim.net().sim().run_until(1.0);
  return TracedRun{sim.trace().data(), sim.metrics().to_json()};
}

TEST(TraceDeterminism, QuickstartSameSeedByteIdentical) {
  const TracedRun a = run_quickstart(1);
  const TracedRun b = run_quickstart(1);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(TraceDeterminism, ButterflySameSeedByteIdentical) {
  const TracedRun a = run_butterfly(7);
  const TracedRun b = run_butterfly(7);
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(TraceDeterminism, DifferentSeedsDiverge) {
  // Sanity check that the harness is sensitive at all: a different
  // network seed changes which bottleneck packets are lost and hence the
  // recorded drop/repair trajectory.
  const TracedRun a = run_butterfly(7);
  const TracedRun b = run_butterfly(8);
  EXPECT_NE(a.trace, b.trace);
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path =
      std::string(NCFN_SOURCE_DIR) + "/tests/golden/" + name;
  if (std::getenv("NCFN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << path << " missing — run NCFN_UPDATE_GOLDEN=1 ./tests/test_obs";
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string expected = ss.str();
  // EXPECT_EQ on multi-MB strings produces unreadable failures; compare
  // prefix-wise and report the first diverging line instead.
  if (actual == expected) return;
  std::size_t line = 1, pos = 0;
  const std::size_t n = std::min(actual.size(), expected.size());
  while (pos < n && actual[pos] == expected[pos]) {
    if (actual[pos] == '\n') ++line;
    ++pos;
  }
  FAIL() << name << " diverges from golden at line " << line
         << " (byte " << pos << "; " << actual.size() << " vs "
         << expected.size() << " bytes). Intentional change? Regenerate "
         << "with NCFN_UPDATE_GOLDEN=1 and commit the diff.";
}

TEST(GoldenTrace, Quickstart) {
  check_golden("trace_quickstart.jsonl", run_quickstart(1).trace);
}

TEST(GoldenTrace, QuickstartMetrics) {
  check_golden("metrics_quickstart.json", run_quickstart(1).metrics_json);
}

TEST(GoldenTrace, Butterfly) {
  check_golden("trace_butterfly.jsonl", run_butterfly(7).trace);
}

TEST(GoldenTrace, ButterflyMetrics) {
  check_golden("metrics_butterfly.json", run_butterfly(7).metrics_json);
}

}  // namespace
