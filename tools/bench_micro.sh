#!/bin/sh
# Run the codec microbenchmarks and record machine-readable results at the
# repo root (BENCH_micro_codec.json). These numbers calibrate
# VnfConfig::proc_rate_Bps; see DESIGN.md "Data-plane memory model".
#
# Usage: tools/bench_micro.sh [build-dir] [extra benchmark args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/bench_micro_codec"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

exec "$bin" \
  --benchmark_out="$repo_root/BENCH_micro_codec.json" \
  --benchmark_out_format=json \
  "$@"
