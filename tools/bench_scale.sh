#!/bin/sh
# Run the multi-worker scaling benchmark and record machine-readable
# results at the repo root (BENCH_scale.json): the worker scaling curve
# on disjoint butterfly shards plus the 10^5-receiver aggregate
# scenario. Speedups are host-dependent — the JSON records host_cores.
#
# Usage: tools/bench_scale.sh [build-dir] [extra bench_scale args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/bench_scale"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$bin" "$@" > "$repo_root/BENCH_scale.json"
cat "$repo_root/BENCH_scale.json"
