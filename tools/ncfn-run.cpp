// ncfn-run — plan a scenario and actually run it: instantiate the coding
// VNFs, sources and receivers on the simulated network and push real
// GF(2^8)-coded packets end to end.
//
//   ncfn-run <scenario-file> [--duration <s>] [--redundancy <0|1|2>]
//            [--loss <frac>] [--seed <n>] [--workers <n>]
//            [--metrics-out <file>] [--trace-out <file>]
//
// --loss applies i.i.d. loss to every DC-DC link. Prints per-receiver
// goodput and integrity results. --metrics-out dumps the metrics registry
// as JSON after the run; --trace-out enables the deterministic event
// trace and writes it as JSONL — identical (scenario, seed, flags) runs
// produce byte-identical files.
//
// --workers <n> (or a `workers <n>` scenario line; the flag wins) routes
// the run through the sharded multi-worker engine: sessions partition
// into independent shards advanced in barrier-synchronized time windows.
// The worker count changes wall-clock only — traces and metrics are
// byte-identical for any <n> (CI diffs 1 vs 2 vs 8). Scenarios with
// fail/crash lines need the live controller and stay on the
// single-engine path (using --workers there is an error).
//
// Scenario `fail`/`crash` lines are honoured: a live controller watches
// the topology, re-solves around each outage, and the affected sessions
// are rewired onto the new plan mid-run (recovery latency lands in the
// app.recovery_time_s histogram).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "coding/strparse.hpp"

#include "app/config.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/shard.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/problem.hpp"
#include "netsim/loss.hpp"

using namespace ncfn;

namespace {
/// Parse a numeric CLI value or die with a usage error (no silent
/// atoi-style zero on garbage).
template <typename T>
T arg_num(const char* flag, const char* value) {
  const auto v = coding::parse_num<T>(value);
  if (!v) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return *v;
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [--duration <s>] "
                 "[--redundancy <n>] [--loss <frac>] [--seed <n>] "
                 "[--workers <n>] [--metrics-out <file>] "
                 "[--trace-out <file>]\n",
                 argv[0]);
    return 2;
  }
  double duration = 5.0, loss = 0.0;
  int redundancy = 0;
  std::uint32_t seed = 7;
  std::size_t workers = 0;  // 0 = scenario decides (default: legacy engine)
  std::string metrics_out, trace_out;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--duration") == 0) {
      duration = arg_num<double>("--duration", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--redundancy") == 0) {
      redundancy = arg_num<int>("--redundancy", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--loss") == 0) {
      loss = arg_num<double>("--loss", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
      seed = arg_num<std::uint32_t>("--seed", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--workers") == 0) {
      workers = arg_num<std::size_t>("--workers", argv[i + 1]);
      if (workers == 0) {
        std::fprintf(stderr, "--workers needs a positive integer\n");
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0) metrics_out = argv[i + 1];
    if (std::strcmp(argv[i], "--trace-out") == 0) trace_out = argv[i + 1];
  }

  app::ParseError err;
  const auto scenario = app::load_scenario(argv[1], &err);
  if (!scenario) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], err.line, err.message.c_str());
    return 1;
  }
  ctrl::DeploymentProblem prob;
  prob.topo = &scenario->topo;
  prob.sessions = scenario->sessions;
  prob.alpha = scenario->alpha;
  const auto plan = ctrl::solve_deployment(prob);
  if (!plan.feasible) {
    std::fprintf(stderr, "no feasible deployment\n");
    return 1;
  }

  // ---- Sharded multi-worker path (--workers / `workers` line) ----
  const std::size_t effective_workers =
      workers > 0 ? workers : scenario->workers;
  if (effective_workers > 0) {
    if (!scenario->failures.empty() || !scenario->crashes.empty()) {
      std::fprintf(stderr,
                   "scenario has fail/crash lines; the sharded engine does "
                   "not support live failure injection — drop --workers / "
                   "the workers line\n");
      return 1;
    }
    app::ShardedRunOptions opts;
    opts.workers = effective_workers;
    opts.duration_s = duration;
    opts.redundancy = redundancy;
    opts.loss = loss;
    opts.seed = seed;
    opts.trace = !trace_out.empty();
    app::ShardedScenarioRun run(*scenario, plan, opts);
    run.run();

    std::printf("%-10s %-12s %-12s %12s %10s %10s\n", "session", "receiver",
                "planned", "goodput", "repairs", "corrupt");
    for (const app::ReceiverReport& r : run.reports()) {
      std::printf("%-10u %-12s %9.2f Mbps %8.2f Mbps %10llu %10llu\n",
                  r.session, r.receiver.c_str(), r.planned_mbps,
                  r.goodput_mbps,
                  static_cast<unsigned long long>(r.repair_requests),
                  static_cast<unsigned long long>(r.verify_failures));
    }
    if (!metrics_out.empty() &&
        !write_file(metrics_out, run.metrics_json() + "\n")) {
      std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
      return 1;
    }
    if (!trace_out.empty() && !write_file(trace_out, run.trace_jsonl())) {
      std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
      return 1;
    }
    return 0;
  }

  app::SimNet sim(scenario->topo);
  if (!trace_out.empty()) sim.trace().enable();
  if (loss > 0) {
    std::uint32_t lseed = seed;
    for (int e = 0; e < scenario->topo.edge_count(); ++e) {
      const auto& ei = scenario->topo.edge(e);
      if (scenario->topo.node(ei.from).kind == graph::NodeKind::kDataCenter &&
          scenario->topo.node(ei.to).kind == graph::NodeKind::kDataCenter) {
        sim.link(e)->set_loss_model(std::make_unique<netsim::UniformLoss>(loss));
        ++lseed;
      }
    }
  }

  coding::CodingParams params;
  std::vector<std::unique_ptr<app::SyntheticProvider>> providers;
  std::vector<std::unique_ptr<app::NcMulticastSession>> sessions;
  for (std::size_t m = 0; m < scenario->sessions.size(); ++m) {
    const double lambda = plan.lambda_mbps[m];
    providers.push_back(std::make_unique<app::SyntheticProvider>(
        seed + m, static_cast<std::size_t>(
                      std::max(lambda, 1.0) * 1e6 / 8 * (duration + 5)),
        params));
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.vnf.max_batch = scenario->max_batch;
    wiring.redundancy = redundancy;
    wiring.seed = seed + static_cast<std::uint32_t>(m) * 101;
    sessions.push_back(std::make_unique<app::NcMulticastSession>(
        sim, plan, m, scenario->sessions[m], *providers[m], wiring));
    for (std::size_t k = 0; k < sessions[m]->receiver_count(); ++k) {
      sessions[m]->receiver(k).set_verify(providers[m].get());
    }
  }
  // ---- Failure injection (scenario `fail` / `crash` lines) ----
  // A controller instance mirrors the deployment; on an outage it
  // re-solves (frozen unaffected sessions) and the affected sessions are
  // rewired live onto its new plan.
  std::unique_ptr<ctrl::Controller> ctl;
  if (!scenario->failures.empty() || !scenario->crashes.empty()) {
    ctrl::Controller::Config ccfg;
    ccfg.alpha = scenario->alpha;
    ctl = std::make_unique<ctrl::Controller>(scenario->topo, ccfg);
    ctl->set_obs(&sim.obs());
    for (const auto& spec : scenario->sessions) {
      ctl->add_session(spec, 0.0);
    }
    for (const app::LinkFailure& lf : scenario->failures) {
      const graph::EdgeIdx e = scenario->topo.find_edge(lf.from, lf.to);
      sim.net().sim().schedule_at(lf.at_s, [&, e] {
        std::vector<std::size_t> affected;
        for (std::size_t m = 0; m < sessions.size(); ++m) {
          if (ctl->plan().edge_rate_mbps[m].count(e) > 0) affected.push_back(m);
        }
        sim.link(e)->set_up(false);
        ctl->report_link_state(e, false, sim.net().sim().now());
        for (std::size_t m : affected) sessions[m]->rewire(ctl->plan(), m);
      });
      if (lf.for_s > 0) {
        sim.net().sim().schedule_at(lf.at_s + lf.for_s, [&, e] {
          sim.link(e)->set_up(true);
          ctl->report_link_state(e, true, sim.net().sim().now());
          // Recovery unfreezes everything; rewire every session.
          for (std::size_t m = 0; m < sessions.size(); ++m) {
            sessions[m]->rewire(ctl->plan(), m);
          }
        });
      }
    }
    for (const app::VnfCrash& c : scenario->crashes) {
      sim.net().sim().schedule_at(c.at_s, [&, c] {
        if (vnf::CodingVnf* v = sim.find_vnf(c.node)) v->crash();
        for (std::size_t m = 0; m < sessions.size(); ++m) {
          bool uses = false;
          for (const auto& [e2, rate] : ctl->plan().edge_rate_mbps[m]) {
            const auto& ei = scenario->topo.edge(e2);
            uses = uses || ei.from == c.node || ei.to == c.node;
          }
          if (!uses) continue;
          for (std::size_t k = 0; k < sessions[m]->receiver_count(); ++k) {
            sessions[m]->receiver(k).mark_disruption();
          }
        }
      });
      const double restart_after = c.for_s > 0 ? c.for_s : 0.376;
      sim.net().sim().schedule_at(c.at_s + restart_after, [&, c] {
        if (vnf::CodingVnf* v = sim.find_vnf(c.node)) v->restart();
      });
    }
  }

  for (auto& s : sessions) s->start();
  sim.net().sim().run_until(duration);

  std::printf("%-10s %-12s %-12s %12s %10s %10s\n", "session", "receiver",
              "planned", "goodput", "repairs", "corrupt");
  for (std::size_t m = 0; m < sessions.size(); ++m) {
    const auto& spec = scenario->sessions[m];
    for (std::size_t k = 0; k < sessions[m]->receiver_count(); ++k) {
      const auto& st = sessions[m]->receiver(k).stats();
      std::printf("%-10u %-12s %9.2f Mbps %8.2f Mbps %10llu %10llu\n",
                  spec.id, scenario->node_name(spec.receivers[k]).c_str(),
                  plan.lambda_mbps[m],
                  sessions[m]->receiver(k).goodput_mbps(),
                  static_cast<unsigned long long>(st.repair_requests_sent),
                  static_cast<unsigned long long>(st.verify_failures));
    }
  }
  if (!metrics_out.empty() && !sim.metrics().write_json(metrics_out)) {
    std::fprintf(stderr, "failed to write %s\n", metrics_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !sim.trace().write(trace_out)) {
    std::fprintf(stderr, "failed to write %s\n", trace_out.c_str());
    return 1;
  }
  return 0;
}
