#!/bin/sh
# Run the clang static analyzer (core, deadcode, cplusplus checkers)
# over every library TU. Complements -Wthread-safety: the analyzer does
# path-sensitive lifetime/null/dead-store reasoning the warning flags
# cannot. Any report is a failure.
#
# Usage: tools/check_analyze.sh [clang++]
#   CXX env var or $1 selects the compiler; it must be clang
#   (--analyze is a clang driver flag).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cxx=${1:-${CXX:-clang++}}

if ! "$cxx" --version 2>/dev/null | grep -q clang; then
  echo "check_analyze.sh: '$cxx' is not clang; --analyze needs clang" >&2
  exit 2
fi

status=0
for tu in "$repo_root"/src/*/*.cpp; do
  # The gf kernels compile per-tier with ISA flags; mirror the build so
  # the analyzer sees the same preprocessed code it would ship.
  case "$tu" in
    */src/gf/*) set -- -mssse3 -mavx2 -mgfni ;;
    *) set -- ;;
  esac
  out=$("$cxx" --analyze --analyzer-output text \
        -Xclang -analyzer-checker=core,deadcode,cplusplus \
        -std=c++20 "-I$repo_root/src" -o /dev/null "$@" "$tu" 2>&1) || {
    echo "analyze FAILED: $tu" >&2
    echo "$out" >&2
    status=1
    continue
  }
  if [ -n "$out" ]; then
    echo "analyze reports: $tu" >&2
    echo "$out" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_analyze.sh: clean"
fi
exit "$status"
