// ncfn-lint — repo-specific determinism & safety linter.
//
// The repo's headline guarantee is byte-identical same-seed runs: every
// trace, metric dump and fault schedule must replay exactly. That
// property is easy to break with one careless line — an unseeded RNG, a
// wall-clock read, iterating an unordered container into the trace — and
// golden-file diffs only catch the breakage after the fact. This tool
// enforces the invariants at lint time, before the golden diff ever runs:
//
//   wall-clock           no system_clock / argless time() / clock() /
//                        gettimeofday anywhere (sim time comes from the
//                        Simulator; bench code may use steady_clock)
//   unseeded-rng         no rand()/srand()/std::random_device — every
//                        random draw must flow from a seeded engine
//   unordered-iteration  no iteration over unordered containers in a
//                        file that emits trace or metrics output
//                        (iteration order is unspecified => trace order
//                        would depend on the allocator)
//   pointer-key          no std::map/std::set keyed on raw pointers
//                        (pointer order is allocation order => output
//                        derived from it is nondeterministic)
//   raw-new-delete       no raw new/delete in the hot-path dirs
//                        (src/gf, src/coding, src/netsim) — storage
//                        there is pooled or RAII-owned
//   iostream             no <iostream>/std::cout/std::cerr in the
//                        hot-path dirs (iostreams allocate, lock and
//                        interleave; the data plane must not)
//   raw-bytes            memcpy/memmove/reinterpret_cast only inside
//                        the approved byte-view header
//                        (src/coding/byteview.hpp)
//   throwing-numparse    no std::sto* / atoi / strtol-family string→
//                        number conversion outside the approved checked
//                        helper (src/coding/strparse.hpp) — control-
//                        plane text is untrusted; parsers must be total
//                        functions, not throw or accept trailing garbage
//   per-packet-kernel    no per-packet kernel entry points in the VNF
//                        hot path (src/vnf) — gf::bulk_* sweeps,
//                        Decoder::recode and Encoder::encode_random
//                        belong behind the batch APIs (recode_batch,
//                        encode_random_batch) so the coefficient draw
//                        and dispatch overhead amortize over a
//                        PacketBatch instead of recurring per packet
//   raw-thread           no std::thread / std::async / bare mutexes or
//                        condition variables outside the worker pool
//                        (src/netsim/worker.*), the annotated wrappers
//                        (src/common/sync.hpp) and the sweep driver
//                        (tools/ncfn-sweep.cpp) — ad-hoc concurrency
//                        cannot honour the barrier-window determinism
//                        contract; shard work through netsim::WorkerPool
//   mutex-unannotated    every mutex member must guard something: a
//                        file declaring a mutex must annotate at least
//                        one field NCFN_GUARDED_BY(that mutex), or the
//                        `analyze` preset has nothing to check
//   cv-wait-no-predicate condition-variable waits must sit in a
//                        predicate loop (`while (!ready) cv.wait(mu);`)
//                        — a naked wait misses spurious wakeups and
//                        races the notify
//   detached-thread      no .detach() — a detached thread outlives its
//                        captures and cannot be joined at the barrier
//   ref-capture-thread   no default [&] capture handed to a thread or
//                        pool entry point — cross-thread lambdas must
//                        name their captures so sharing is explicit
//
// Escape hatch: a line carrying the comment
//     // ncfn-lint: allow(<rule>[,<rule>...]) — <justification>
// is exempt from those rules, as is the line directly below a line whose
// only content is such a comment. There is no file- or directory-level
// suppression on purpose: every exemption is visible at the line it
// excuses.
//
// Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//
// Self-test mode (`ncfn-lint --self-test <fixture-dir>`) checks the
// known-bad / allow-annotated fixture pairs under tests/lint_fixtures:
// a file named <rule>_bad.cc must produce at least one finding of
// exactly that rule, and <rule>_allowed.cc must produce none. It also
// cross-checks the rule table against the fixture dir both ways — a
// rule without its fixture pair fails, as does a fixture naming no
// rule — so the table and the fixtures cannot drift apart.
// `ncfn-lint --list-rules` prints the live table (id, scope, message).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Rule table

enum class Scope {
  kEverywhere,   // all scanned files
  kObsEmitters,  // files that emit trace/metrics output
  kHotPath,      // src/gf, src/coding, src/netsim
  kVnfHotPath,   // src/vnf — the batched data plane
};

struct Rule {
  const char* id;
  Scope scope;
  const char* message;
};

constexpr Rule kRules[] = {
    {"wall-clock", Scope::kEverywhere,
     "wall-clock time source; derive time from the Simulator clock"},
    {"unseeded-rng", Scope::kEverywhere,
     "unseeded randomness; draw from a seeded engine (std::mt19937)"},
    {"unordered-iteration", Scope::kObsEmitters,
     "iterating an unordered container in a file that emits trace/metrics; "
     "iteration order is unspecified"},
    {"pointer-key", Scope::kEverywhere,
     "pointer-keyed ordered container; pointer order is allocation order"},
    {"raw-new-delete", Scope::kHotPath,
     "raw new/delete in a hot-path dir; use pools or RAII owners"},
    {"iostream", Scope::kHotPath,
     "iostream in a hot-path dir; the data plane must not allocate or lock "
     "for logging"},
    {"raw-bytes", Scope::kEverywhere,
     "raw memcpy/memmove/reinterpret_cast outside the approved byte-view "
     "header (src/coding/byteview.hpp)"},
    {"throwing-numparse", Scope::kEverywhere,
     "throwing/unchecked string-to-number conversion; use "
     "coding::parse_num<T> (src/coding/strparse.hpp)"},
    {"per-packet-kernel", Scope::kVnfHotPath,
     "per-packet kernel entry point in the VNF hot path; use the batch "
     "APIs (Decoder::recode_batch / Encoder::encode_random_batch) so the "
     "sweep amortizes over a PacketBatch"},
    {"raw-thread", Scope::kEverywhere,
     "raw threading primitive outside the worker pool; shard work through "
     "netsim::WorkerPool (src/netsim/worker.hpp) so the barrier-window "
     "determinism contract holds"},
    {"mutex-unannotated", Scope::kEverywhere,
     "mutex member with no NCFN_GUARDED_BY field naming it; annotate what "
     "the mutex guards (src/common/thread_annotations.hpp) or the analyze "
     "preset has nothing to check"},
    {"cv-wait-no-predicate", Scope::kEverywhere,
     "condition-variable wait outside a predicate loop; spurious wakeups "
     "require `while (!ready) cv.wait(mu);`"},
    {"detached-thread", Scope::kEverywhere,
     "detached thread; a detached lane outlives its captures and cannot "
     "be joined at the barrier — keep the handle and join"},
    {"ref-capture-thread", Scope::kEverywhere,
     "default [&] capture handed to a thread/pool entry point; name the "
     "captures so cross-thread lifetime and sharing stay explicit"},
};

// Files exempt from a rule by design (normalized path suffix match).
struct FileException {
  const char* rule;
  const char* path_suffix;
};

constexpr FileException kFileExceptions[] = {
    // The byte-view header is the sanctioned home of raw byte access.
    {"raw-bytes", "src/coding/byteview.hpp"},
    // The seeded-RNG module is the one place allowed to talk about raw
    // engine words (it still must not touch random_device).
    {"unseeded-rng", "src/coding/rng_fill.hpp"},
    // The checked-parse helper is the sanctioned home of string→number
    // conversion (it uses std::from_chars, but the ban is on the whole
    // conversion family by site, not by spelling).
    {"throwing-numparse", "src/coding/strparse.hpp"},
    // The worker pool is the one sanctioned home of raw threading; the
    // annotated wrappers re-export the primitives with capabilities
    // attached, and the sweep driver owns process-level fan-out on top.
    {"raw-thread", "src/netsim/worker.hpp"},
    {"raw-thread", "src/netsim/worker.cpp"},
    {"raw-thread", "src/common/sync.hpp"},
    {"raw-thread", "tools/ncfn-sweep.cpp"},
};

constexpr const char* kHotPathDirs[] = {"src/gf/", "src/coding/",
                                        "src/netsim/"};

struct Finding {
  std::string file;
  std::size_t line;  // 1-based
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------
// Source preprocessing: per line, the code text with comments and
// string/char literals blanked out, plus any ncfn-lint annotations the
// comments carried.

struct SourceLine {
  std::string code;                 // literals/comments blanked
  std::set<std::string> allowed;    // rules allowed on this line
  bool allow_only = false;          // line is nothing but an allow comment
  int depth = 0;                    // brace depth at start of line
};

void parse_allow(const std::string& comment, std::set<std::string>* out) {
  static const std::regex re("ncfn-lint:\\s*allow\\(([^)]*)\\)");
  std::smatch m;
  if (!std::regex_search(comment, m, re)) return;
  std::stringstream list(m[1].str());
  std::string rule;
  while (std::getline(list, rule, ',')) {
    const auto b = rule.find_first_not_of(" \t");
    const auto e = rule.find_last_not_of(" \t");
    if (b != std::string::npos) out->insert(rule.substr(b, e - b + 1));
  }
}

/// Split file text into lines, blanking comments and literals while
/// collecting allow() annotations from the comment text.
std::vector<SourceLine> preprocess(const std::string& text) {
  std::vector<SourceLine> lines(1);
  enum { kCode, kBlock, kString, kChar } state = kCode;
  std::string comment;  // current line's comment text
  int depth = 0;        // running brace depth (code braces only)

  auto end_line = [&] {
    SourceLine& ln = lines.back();
    parse_allow(comment, &ln.allowed);
    if (!ln.allowed.empty() &&
        ln.code.find_first_not_of(" \t") == std::string::npos) {
      ln.allow_only = true;
    }
    comment.clear();
    lines.emplace_back();
    lines.back().depth = depth;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      end_line();
      continue;
    }
    switch (state) {
      case kCode:
        if (c == '/' && next == '/') {
          comment.append(text, i, text.find('\n', i) == std::string::npos
                                      ? text.size() - i
                                      : text.find('\n', i) - i);
          i = text.find('\n', i);
          if (i == std::string::npos) i = text.size();
          --i;  // loop ++ lands on the newline (or ends)
        } else if (c == '/' && next == '*') {
          state = kBlock;
          ++i;
        } else if (c == '"') {
          state = kString;
          lines.back().code += ' ';
        } else if (c == '\'') {
          state = kChar;
          lines.back().code += ' ';
        } else {
          if (c == '{') {
            ++depth;
          } else if (c == '}' && depth > 0) {
            --depth;
          }
          lines.back().code += c;
        }
        break;
      case kBlock:
        comment += c;
        if (c == '*' && next == '/') {
          state = kCode;
          ++i;
        }
        break;
      case kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = kCode;
        }
        break;
      case kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = kCode;
        }
        break;
    }
  }
  end_line();
  lines.pop_back();  // the trailing sentinel
  return lines;
}

// ---------------------------------------------------------------------
// Per-rule matchers over the blanked code lines.

bool matches_wall_clock(const std::string& code) {
  static const std::regex re(
      "system_clock|high_resolution_clock|gettimeofday|localtime|gmtime"
      "|(^|[^_\\w.>])time\\s*\\(\\s*(NULL|nullptr|0)?\\s*\\)"
      "|(^|[^_\\w.>])clock\\s*\\(\\s*\\)");
  return std::regex_search(code, re);
}

bool matches_unseeded_rng(const std::string& code) {
  static const std::regex re(
      "random_device|(^|[^_\\w])s?rand\\s*\\(");
  return std::regex_search(code, re);
}

bool matches_pointer_key(const std::string& code) {
  // std::map< or std::set< whose first template argument is a raw
  // pointer type (possibly cv-qualified / nested-namespace).
  static const std::regex re("std::(map|set)\\s*<[^,<>]*\\*\\s*[,>]");
  return std::regex_search(code, re);
}

bool matches_raw_new_delete(const std::string& code) {
  static const std::regex re(
      "(^|[^_\\w])new\\s+[_\\w:<]"     // new T / new std::... / placement
      "|(^|[^_\\w])new\\s*\\("        // new (ptr) T
      "|(^|[^_\\w])delete(\\s*\\[\\s*\\])?\\s+[_\\w(*]");
  if (!std::regex_search(code, re)) return false;
  // "= delete" declarations are fine.
  static const std::regex deleted_fn("=\\s*delete\\s*;");
  return !std::regex_search(code, deleted_fn);
}

bool matches_iostream(const std::string& code) {
  static const std::regex re(
      "#\\s*include\\s*<iostream>|std::(cout|cerr|clog)");
  return std::regex_search(code, re);
}

bool matches_raw_bytes(const std::string& code) {
  static const std::regex re(
      "(^|[^_\\w])mem(cpy|move)\\s*\\(|reinterpret_cast");
  return std::regex_search(code, re);
}

bool matches_per_packet_kernel(const std::string& code) {
  // Direct kernel sweeps (gf::bulk_*), single-packet recode and
  // single-packet random encode. The batch spellings (recode_batch,
  // encode_random_batch) do not match: the identifier continues with
  // '_' where these patterns require '('.
  static const std::regex re(
      "gf::bulk_\\w+\\s*\\("
      "|(\\.|->)recode\\s*\\("
      "|(^|[^_\\w])encode_random\\s*\\(");
  return std::regex_search(code, re);
}

bool matches_raw_thread(const std::string& code) {
  // Thread spawning, bare locks and synchronization primitives, plus
  // the headers that provide them. std::this_thread (sleep/yield) and
  // std::atomic are not flagged: neither can introduce a schedule
  // dependence by itself. The worker-pool exception files are the only
  // sanctioned users (kFileExceptions).
  static const std::regex re(
      "std::(thread|jthread|async|mutex|timed_mutex|recursive_mutex|"
      "shared_mutex|shared_timed_mutex|condition_variable|"
      "condition_variable_any|counting_semaphore|binary_semaphore|"
      "barrier|latch|promise|packaged_task)($|[^_\\w])"
      "|#\\s*include\\s*<(thread|mutex|shared_mutex|condition_variable|"
      "semaphore|barrier|latch|future)>"
      "|(^|[^_\\w])pthread_\\w+");
  return std::regex_search(code, re);
}

/// A mutex member declaration whose name is never the argument of a
/// *GUARDED_BY in the file: the mutex guards nothing the analysis can
/// see. Matches both the raw std spellings and the annotated
/// common::Mutex wrapper (a wrapper still needs guarded fields).
bool matches_mutex_unannotated(const std::string& code,
                               const std::string& text) {
  static const std::regex decl(
      "(^|[^_\\w])(std::(recursive_|timed_|shared_)?mutex|Mutex)"
      "\\s+(\\w+)\\s*[;{=]");
  for (std::sregex_iterator it(code.begin(), code.end(), decl), end;
       it != end; ++it) {
    const std::string name = (*it)[4].str();
    if (text.find("GUARDED_BY(" + name + ")") == std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Single-argument cv.wait(mu) — the bare-wait overload — outside a
/// predicate loop. The wait is exempt when its own line contains
/// `while`, or when the nearest preceding code line at enclosing-or-
/// equal brace depth does (the `while (!ready)\n  cv.wait(mu);` and
/// `while (!ready) { cv.wait(mu); }` shapes). The two-argument
/// predicate overload never matches: its parens contain a comma.
bool matches_cv_wait_no_predicate(const std::vector<SourceLine>& lines,
                                  std::size_t i) {
  static const std::regex bare_wait("(\\.|->)\\s*wait\\s*\\([^(),]*\\)");
  if (!std::regex_search(lines[i].code, bare_wait)) return false;
  static const std::regex while_re("(^|[^_\\w])while\\s*\\(");
  if (std::regex_search(lines[i].code, while_re)) return false;
  for (std::size_t j = i; j-- > 0;) {
    const SourceLine& ln = lines[j];
    if (ln.code.find_first_not_of(" \t") == std::string::npos) continue;
    if (ln.depth > lines[i].depth) break;  // sibling block, not enclosing
    return !std::regex_search(ln.code, while_re);
  }
  return true;
}

bool matches_detached_thread(const std::string& code) {
  static const std::regex re("(\\.|->)\\s*detach\\s*\\(");
  return std::regex_search(code, re);
}

bool matches_ref_capture_thread(const std::string& code) {
  // A default by-reference capture on the same line as a thread/pool
  // entry point. Named captures ([&cells, &matrix]) do not match; [&]
  // on a plain same-thread lambda (std::find_if etc.) has no entry-
  // point keyword beside it and does not match either.
  static const std::regex capture("\\[\\s*&\\s*\\]");
  if (!std::regex_search(code, capture)) return false;
  static const std::regex entry(
      "(^|[^_\\w])(run|submit|enqueue|post|dispatch|async|thread|jthread)"
      "\\s*[(<]");
  return std::regex_search(code, entry);
}

bool matches_throwing_numparse(const std::string& code) {
  // std::stoi/stol/stoul/stod/... (throwing), the atoi family (no error
  // reporting at all) and the strtol family (errno-based) — every
  // string→number conversion that is not parse_num's from_chars.
  static const std::regex re(
      "std::sto(i|l|ll|ul|ull|f|d|ld)\\s*\\("
      "|(^|[^_\\w])ato(i|l|ll|f)\\s*\\("
      "|(^|[^_\\w])strto(l|ll|ul|ull|f|d|ld|imax|umax)\\s*\\(");
  return std::regex_search(code, re);
}

/// Emits-trace/metrics heuristic for the unordered-iteration rule.
bool emits_observable_output(const std::string& text) {
  return text.find("EventTrace") != std::string::npos ||
         text.find("MetricsRegistry") != std::string::npos ||
         text.find("obs::Observability") != std::string::npos ||
         text.find("obs/obs.hpp") != std::string::npos ||
         text.find("obs/trace.hpp") != std::string::npos ||
         text.find("obs/metrics.hpp") != std::string::npos;
}

/// Names of variables/members declared with an unordered container type.
std::set<std::string> unordered_names(const std::vector<SourceLine>& lines) {
  static const std::regex decl(
      "unordered_(?:map|set|multimap|multiset)\\s*<[^;{}()]*>[\\s&]*(\\w+)");
  std::set<std::string> names;
  for (const SourceLine& ln : lines) {
    for (std::sregex_iterator it(ln.code.begin(), ln.code.end(), decl), end;
         it != end; ++it) {
      names.insert((*it)[1].str());
    }
  }
  return names;
}

bool matches_unordered_iteration(const std::string& code,
                                 const std::set<std::string>& names) {
  // Range-for whose range expression mentions a known unordered name,
  // or explicit iterator walks over one (name.begin()).
  static const std::regex range_for("for\\s*\\([^;)]*:\\s*([^)]*)\\)?");
  std::smatch m;
  if (std::regex_search(code, m, range_for)) {
    const std::string range = m[1].str();
    for (const std::string& n : names) {
      const std::regex word("(^|[^_\\w])" + n + "($|[^_\\w])");
      if (std::regex_search(range, word)) return true;
    }
  }
  for (const std::string& n : names) {
    const std::regex begin_walk("(^|[^_\\w])" + n +
                                "\\s*[.]\\s*c?begin\\s*\\(");
    if (std::regex_search(code, begin_walk)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Driver

std::string normalized(const fs::path& p) {
  std::string s = p.generic_string();
  std::replace(s.begin(), s.end(), '\\', '/');
  return s;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool rule_applies(const Rule& rule, const std::string& path,
                  bool obs_emitter, bool ignore_scopes) {
  for (const FileException& ex : kFileExceptions) {
    if (std::string(ex.rule) == rule.id && ends_with(path, ex.path_suffix)) {
      return false;
    }
  }
  if (ignore_scopes) return true;
  switch (rule.scope) {
    case Scope::kEverywhere:
      return true;
    case Scope::kObsEmitters:
      return obs_emitter;
    case Scope::kHotPath:
      for (const char* dir : kHotPathDirs) {
        if (path.find(dir) != std::string::npos) return true;
      }
      return false;
    case Scope::kVnfHotPath:
      return path.find("src/vnf/") != std::string::npos;
  }
  return false;
}

/// Lint one file. `ignore_scopes` (self-test mode) applies every rule
/// regardless of directory, so fixtures can live in one flat dir.
std::vector<Finding> lint_file(const fs::path& file, bool ignore_scopes) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ncfn-lint: cannot read %s\n",
                 normalized(file).c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string path = normalized(file);

  const std::vector<SourceLine> lines = preprocess(text);
  const bool obs_emitter = emits_observable_output(text);
  const std::set<std::string> unordered = unordered_names(lines);

  std::vector<Finding> findings;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const SourceLine& ln = lines[i];
    if (ln.allow_only) continue;  // the annotation line itself
    auto allowed = [&](const char* rule) {
      if (ln.allowed.count(rule) > 0) return true;
      // An allow-only comment line excuses the line below it.
      return i > 0 && lines[i - 1].allow_only &&
             lines[i - 1].allowed.count(rule) > 0;
    };
    for (const Rule& rule : kRules) {
      if (!rule_applies(rule, path, obs_emitter, ignore_scopes)) continue;
      const std::string id = rule.id;
      bool hit = false;
      if (id == "wall-clock") {
        hit = matches_wall_clock(ln.code);
      } else if (id == "unseeded-rng") {
        hit = matches_unseeded_rng(ln.code);
      } else if (id == "unordered-iteration") {
        hit = matches_unordered_iteration(ln.code, unordered);
      } else if (id == "pointer-key") {
        hit = matches_pointer_key(ln.code);
      } else if (id == "raw-new-delete") {
        hit = matches_raw_new_delete(ln.code);
      } else if (id == "iostream") {
        hit = matches_iostream(ln.code);
      } else if (id == "raw-bytes") {
        hit = matches_raw_bytes(ln.code);
      } else if (id == "throwing-numparse") {
        hit = matches_throwing_numparse(ln.code);
      } else if (id == "per-packet-kernel") {
        hit = matches_per_packet_kernel(ln.code);
      } else if (id == "raw-thread") {
        hit = matches_raw_thread(ln.code);
      } else if (id == "mutex-unannotated") {
        hit = matches_mutex_unannotated(ln.code, text);
      } else if (id == "cv-wait-no-predicate") {
        hit = matches_cv_wait_no_predicate(lines, i);
      } else if (id == "detached-thread") {
        hit = matches_detached_thread(ln.code);
      } else if (id == "ref-capture-thread") {
        hit = matches_ref_capture_thread(ln.code);
      }
      if (hit && !allowed(rule.id)) {
        findings.push_back({path, i + 1, rule.id, rule.message});
      }
    }
  }
  return findings;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<fs::path> collect(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    const fs::path p(root);
    if (fs::is_regular_file(p)) {
      if (lintable(p)) files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      std::fprintf(stderr, "ncfn-lint: no such file or directory: %s\n",
                   root.c_str());
      std::exit(2);
    }
    for (const auto& entry : fs::recursive_directory_iterator(p)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return normalized(a) < normalized(b);
            });
  return files;
}

int run_lint(const std::vector<std::string>& roots) {
  std::size_t total = 0;
  for (const fs::path& file : collect(roots)) {
    for (const Finding& f : lint_file(file, /*ignore_scopes=*/false)) {
      std::printf("%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.message.c_str());
      ++total;
    }
  }
  if (total > 0) {
    std::printf("ncfn-lint: %zu finding(s)\n", total);
    return 1;
  }
  return 0;
}

const char* scope_name(Scope s) {
  switch (s) {
    case Scope::kEverywhere:
      return "everywhere";
    case Scope::kObsEmitters:
      return "obs-emitters";
    case Scope::kHotPath:
      return "hot-path";
    case Scope::kVnfHotPath:
      return "vnf-hot-path";
  }
  return "?";
}

int run_list_rules() {
  for (const Rule& rule : kRules) {
    std::printf("%-22s %-12s %s\n", rule.id, scope_name(rule.scope),
                rule.message);
  }
  return 0;
}

int run_self_test(const std::string& fixture_dir) {
  std::size_t checked = 0;
  std::size_t failures = 0;
  // Drift check, both directions: every rule in the table must ship its
  // <rule>_bad.cc / <rule>_allowed.cc pair, and every fixture must name
  // a live rule. Adding a rule without fixtures — or renaming one and
  // orphaning its fixtures — fails the self-test, not just CI review.
  std::set<std::string> rule_ids;
  for (const Rule& rule : kRules) rule_ids.insert(rule.id);
  std::set<std::string> have_bad;
  std::set<std::string> have_allowed;
  for (const fs::path& file : collect({fixture_dir})) {
    const std::string stem = file.stem().string();
    const bool expect_bad = ends_with(stem, "_bad");
    const bool expect_allowed = ends_with(stem, "_allowed");
    if (!expect_bad && !expect_allowed) continue;
    const std::string rule =
        stem.substr(0, stem.rfind('_'));  // "<rule>_bad" -> "<rule>"
    if (rule_ids.count(rule) == 0) {
      std::printf("FAIL %s: fixture names no rule in the table "
                  "(see --list-rules)\n",
                  normalized(file).c_str());
      ++failures;
      continue;
    }
    (expect_bad ? have_bad : have_allowed).insert(rule);
    const auto findings = lint_file(file, /*ignore_scopes=*/true);
    ++checked;

    if (expect_bad) {
      bool rule_hit = false;
      for (const Finding& f : findings) rule_hit |= f.rule == rule;
      if (!rule_hit) {
        std::printf("FAIL %s: expected a [%s] finding, got %zu finding(s)\n",
                    normalized(file).c_str(), rule.c_str(), findings.size());
        for (const Finding& f : findings) {
          std::printf("  got %s:%zu [%s]\n", f.file.c_str(), f.line,
                      f.rule.c_str());
        }
        ++failures;
      }
    } else {  // expect_allowed: the annotated snippet must pass its rule
      std::size_t rule_hits = 0;
      for (const Finding& f : findings) {
        if (f.rule == rule) {
          std::printf("  unexpected %s:%zu [%s]\n", f.file.c_str(), f.line,
                      f.rule.c_str());
          ++rule_hits;
        }
      }
      if (rule_hits > 0) {
        std::printf("FAIL %s: allow(%s) annotation did not suppress\n",
                    normalized(file).c_str(), rule.c_str());
        ++failures;
      }
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "ncfn-lint: no *_bad / *_allowed fixtures in %s\n",
                 fixture_dir.c_str());
    return 2;
  }
  for (const std::string& rule : rule_ids) {
    if (have_bad.count(rule) == 0) {
      std::printf("FAIL rule [%s]: missing fixture %s_bad.cc\n", rule.c_str(),
                  rule.c_str());
      ++failures;
    }
    if (have_allowed.count(rule) == 0) {
      std::printf("FAIL rule [%s]: missing fixture %s_allowed.cc\n",
                  rule.c_str(), rule.c_str());
      ++failures;
    }
  }
  std::printf("ncfn-lint self-test: %zu fixture(s), %zu failure(s)\n",
              checked, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: ncfn-lint <dir|file>...\n"
                 "       ncfn-lint --self-test <fixture-dir>\n"
                 "       ncfn-lint --list-rules\n");
    return 2;
  }
  if (args[0] == "--list-rules") {
    return run_list_rules();
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::fprintf(stderr, "usage: ncfn-lint --self-test <fixture-dir>\n");
      return 2;
    }
    return run_self_test(args[1]);
  }
  return run_lint(args);
}
