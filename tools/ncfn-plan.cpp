// ncfn-plan — solve coding-function deployment + multicast routing for a
// scenario file and print the plan.
//
//   ncfn-plan <scenario-file> [--quantize <blocks>]
//
// Prints per-session rates, VNF placement, and the per-edge flow routing
// (the forwarding tables the controller would push). See
// tools/scenarios/ for examples of the file format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coding/strparse.hpp"

#include "app/config.hpp"
#include "ctrl/problem.hpp"
#include "ctrl/quantize.hpp"
#include "graph/maxflow.hpp"

using namespace ncfn;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [--quantize <blocks>]\n", argv[0]);
    return 2;
  }
  int quantize_blocks = 0;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--quantize") == 0) {
      const auto v = coding::parse_num<int>(argv[i + 1]);
      if (!v) {
        std::fprintf(stderr, "bad value for --quantize: '%s'\n", argv[i + 1]);
        return 2;
      }
      quantize_blocks = *v;
    }
  }

  app::ParseError err;
  const auto scenario = app::load_scenario(argv[1], &err);
  if (!scenario) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], err.line,
                 err.message.c_str());
    return 1;
  }
  if (scenario->sessions.empty()) {
    std::fprintf(stderr, "%s: no sessions declared\n", argv[1]);
    return 1;
  }

  ctrl::DeploymentProblem prob;
  prob.topo = &scenario->topo;
  prob.sessions = scenario->sessions;
  prob.alpha = scenario->alpha;
  auto plan = ctrl::solve_deployment(prob);
  if (!plan.feasible) {
    std::fprintf(stderr, "no feasible deployment (alpha=%.1f)\n",
                 scenario->alpha);
    return 1;
  }
  if (quantize_blocks > 0) {
    const auto q = ctrl::quantize_plan(
        plan, static_cast<std::size_t>(quantize_blocks));
    if (q.sessions_reduced > 0) {
      std::printf("quantization (g=%d) reduced %d session(s) by %.2f Mbps\n",
                  quantize_blocks, q.sessions_reduced, q.rate_lost_mbps);
    }
  }

  std::printf("objective: %.2f   total throughput: %.2f Mbps   VNFs: %d\n\n",
              plan.objective, plan.total_throughput_mbps(), plan.total_vnfs());

  std::printf("sessions:\n");
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    const auto& spec = scenario->sessions[m];
    std::printf("  session %u: %s ->", plan.session_ids[m],
                scenario->node_name(spec.source).c_str());
    for (graph::NodeIdx r : spec.receivers) {
      std::printf(" %s", scenario->node_name(r).c_str());
    }
    const double bound = graph::multicast_capacity(scenario->topo, spec.source,
                                                   spec.receivers) / 1e6;
    std::printf("   rate %.2f Mbps (max-flow bound %.2f)\n",
                plan.lambda_mbps[m], bound);
  }

  std::printf("\ncoding VNF deployment:\n");
  for (const auto& [v, n] : plan.vnf_count) {
    if (n > 0) {
      std::printf("  %-12s %d instance(s)\n",
                  scenario->node_name(v).c_str(), n);
    }
  }

  std::printf("\nflow routing (f_m(e)):\n");
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    for (const auto& [e, rate] : plan.edge_rate_mbps[m]) {
      const auto& ei = scenario->topo.edge(e);
      std::printf("  session %u: %-10s -> %-10s %8.2f Mbps\n",
                  plan.session_ids[m], scenario->node_name(ei.from).c_str(),
                  scenario->node_name(ei.to).c_str(), rate);
    }
  }
  return 0;
}
