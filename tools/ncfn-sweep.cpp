// ncfn-sweep — fan a scenario matrix (seeds x losses x batch sizes)
// across worker lanes and emit one deterministic metrics JSON document.
//
//   ncfn-sweep <scenario-file> [--seeds <a,b,...>] [--loss <a,b,...>]
//              [--batch <a,b,...>] [--duration <s>] [--redundancy <n>]
//              [--jobs <n>] [--out <file>]
//
// Every (seed, loss, batch) combination runs as one independent
// single-engine simulation; --jobs only picks the fan-out and never
// appears in the output, so the same matrix produces byte-identical
// JSON for any job count (CI exploits this the same way it checks
// ncfn-run --workers).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coding/strparse.hpp"

#include "app/config.hpp"
#include "app/sweep.hpp"
#include "ctrl/problem.hpp"

using namespace ncfn;

namespace {

template <typename T>
T arg_num(const char* flag, const char* value) {
  const auto v = coding::parse_num<T>(value);
  if (!v) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return *v;
}

/// Parse a comma-separated numeric list ("1,2,3") or die with usage.
template <typename T>
std::vector<T> arg_list(const char* flag, const char* value) {
  std::vector<T> out;
  const std::string s = value;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(arg_num<T>(flag, s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <scenario-file> [--seeds <a,b,...>] "
                 "[--loss <a,b,...>] [--batch <a,b,...>] [--duration <s>] "
                 "[--redundancy <n>] [--jobs <n>] [--out <file>]\n",
                 argv[0]);
    return 2;
  }
  app::SweepMatrix matrix;
  std::size_t jobs = 1;
  std::string out_path;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--seeds") == 0) {
      matrix.seeds = arg_list<std::uint32_t>("--seeds", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--loss") == 0) {
      matrix.losses = arg_list<double>("--loss", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--batch") == 0) {
      matrix.batches = arg_list<std::size_t>("--batch", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--duration") == 0) {
      matrix.duration_s = arg_num<double>("--duration", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--redundancy") == 0) {
      matrix.redundancy = arg_num<int>("--redundancy", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--jobs") == 0) {
      jobs = arg_num<std::size_t>("--jobs", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  app::ParseError err;
  const auto scenario = app::load_scenario(argv[1], &err);
  if (!scenario) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], err.line, err.message.c_str());
    return 1;
  }
  if (!scenario->failures.empty() || !scenario->crashes.empty()) {
    std::fprintf(stderr,
                 "scenario has fail/crash lines; sweeps run the sharded "
                 "engine, which does not support live failure injection — "
                 "use ncfn-run\n");
    return 1;
  }
  ctrl::DeploymentProblem prob;
  prob.topo = &scenario->topo;
  prob.sessions = scenario->sessions;
  prob.alpha = scenario->alpha;
  const auto plan = ctrl::solve_deployment(prob);
  if (!plan.feasible) {
    std::fprintf(stderr, "no feasible deployment\n");
    return 1;
  }

  const auto cells = app::run_sweep(*scenario, plan, matrix, jobs);
  const std::string json = app::sweep_json(argv[1], matrix, cells);
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr ||
      std::fwrite(json.data(), 1, json.size(), f) != json.size()) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    if (f != nullptr) std::fclose(f);
    return 1;
  }
  std::fclose(f);
  return 0;
}
