#!/usr/bin/env python3
"""Line-coverage gate for the parser/control surfaces.

Reads a coverage report, aggregates line coverage per scope (source
subtree), and fails when any scope drops below the committed baseline in
tools/coverage_baseline.json. CI runs this on clang source-based
coverage (`llvm-cov export`); the same gate accepts lcov tracefiles and
gcc `gcov --json-format` output so the numbers can be reproduced locally
on a gcc-only machine.

Formats (auto-detected from the path, or forced with --format):
  llvm-json  file produced by `llvm-cov export [-summary-only]`
  lcov       .info tracefile (SF:/DA:/LF:/LH: records)
  gcov-json  directory of *.gcov.json[.gz] from `gcov --json-format`

Usage:
  coverage_gate.py [--baseline FILE] [--format F] [--update] REPORT
  coverage_gate.py --self-test

Exit codes: 0 gate passed / baseline updated / self-test OK; 1 gate
failed (coverage regressed or scope missing); 2 usage or parse error.
"""

import argparse
import glob
import gzip
import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "coverage_baseline.json")


def norm(path):
    """Normalize a report path for scope matching."""
    return os.path.normpath(path).replace(os.sep, "/")


def scope_of(path, scopes):
    """Return the scope a file belongs to, or None.

    A scope like "src/coding" matches any path containing it as a
    directory-component run, so absolute build paths and repo-relative
    paths both land in the same bucket.
    """
    p = "/" + norm(path).lstrip("/") + "/"
    for scope in scopes:
        if "/" + scope.strip("/") + "/" in p:
            return scope
    return None


# ---------------------------------------------------------------------------
# Report readers. Each returns {filename: {line_number, ...} x2} as a pair of
# dicts (executable_lines, covered_lines) merged across translation units.


def _merge(acc, filename, executable, covered):
    exe, cov = acc.setdefault(filename, (set(), set()))
    exe.update(executable)
    cov.update(covered)


def read_llvm_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("type") != "llvm.coverage.json.export":
        raise ValueError(f"{path}: not an llvm-cov export document")
    acc = {}
    for data in doc.get("data", []):
        for entry in data.get("files", []):
            summary = entry.get("summary", {}).get("lines", {})
            count = int(summary.get("count", 0))
            covered = int(summary.get("covered", 0))
            # Summary-only exports carry no per-line detail; synthesize
            # distinct line keys so cross-file merging stays set-based.
            _merge(acc, norm(entry["filename"]), range(count), range(covered))
    return acc


def read_lcov(path):
    acc = {}
    current = None
    executable, covered = set(), set()
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            line = raw.strip()
            if line.startswith("SF:"):
                current = norm(line[3:])
                executable, covered = set(), set()
            elif line.startswith("DA:") and current is not None:
                lineno_s, _, count_s = line[3:].partition(",")
                lineno = int(lineno_s)
                executable.add(lineno)
                if int(count_s.split(",")[0]) > 0:
                    covered.add(lineno)
            elif line == "end_of_record" and current is not None:
                _merge(acc, current, executable, covered)
                current = None
    return acc


def read_gcov_json_dir(path):
    paths = sorted(
        glob.glob(os.path.join(path, "**", "*.gcov.json*"), recursive=True))
    if not paths:
        raise ValueError(f"{path}: no *.gcov.json[.gz] files found")
    acc = {}
    for p in paths:
        opener = gzip.open if p.endswith(".gz") else open
        with opener(p, "rt", encoding="utf-8") as fh:
            doc = json.load(fh)
        for entry in doc.get("files", []):
            executable = set()
            covered = set()
            for ln in entry.get("lines", []):
                lineno = int(ln["line_number"])
                executable.add(lineno)
                if int(ln.get("count", 0)) > 0:
                    covered.add(lineno)
            _merge(acc, norm(entry["file"]), executable, covered)
    return acc


def detect_format(path):
    if os.path.isdir(path):
        return "gcov-json"
    if path.endswith(".info"):
        return "lcov"
    return "llvm-json"


READERS = {
    "llvm-json": read_llvm_json,
    "lcov": read_lcov,
    "gcov-json": read_gcov_json_dir,
}


# ---------------------------------------------------------------------------
# Aggregation and the gate itself.


def aggregate(per_file, scopes):
    """Collapse per-file line sets into {scope: (covered, total)}."""
    totals = {scope: [0, 0] for scope in scopes}
    for filename, (executable, covered) in per_file.items():
        scope = scope_of(filename, scopes)
        if scope is None:
            continue
        totals[scope][0] += len(covered)
        totals[scope][1] += len(executable)
    return {s: (c, t) for s, (c, t) in totals.items()}


def pct(covered, total):
    return 100.0 * covered / total if total else 0.0


def run_gate(per_file, baseline):
    minima = baseline["min_line_coverage_pct"]
    measured = aggregate(per_file, minima.keys())
    failures = []
    for scope, minimum in sorted(minima.items()):
        covered, total = measured[scope]
        value = pct(covered, total)
        status = "ok"
        if total == 0:
            status = "FAIL (no lines measured — wrong report or scope?)"
            failures.append(scope)
        elif value + 1e-9 < minimum:
            status = "FAIL"
            failures.append(scope)
        print(f"coverage-gate: {scope}: {value:.1f}% "
              f"({covered}/{total} lines, floor {minimum:.1f}%) {status}")
    return failures


def update_baseline(per_file, baseline, baseline_path, margin):
    minima = baseline["min_line_coverage_pct"]
    measured = aggregate(per_file, minima.keys())
    for scope in minima:
        covered, total = measured[scope]
        if total == 0:
            print(f"coverage-gate: refusing to update {scope}: "
                  "no lines measured", file=sys.stderr)
            return 1
        floor = max(0.0, math.floor((pct(covered, total) - margin) * 10) / 10)
        minima[scope] = floor
    with open(baseline_path, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"coverage-gate: baseline updated ({baseline_path}, "
          f"margin {margin:.1f} pts)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: synthetic fixtures for all three formats plus gate logic.


def self_test():
    import tempfile

    failures = []

    def expect(cond, what):
        if not cond:
            failures.append(what)

    scopes = ["src/coding", "src/ctrl"]

    # llvm-json fixture: 8/10 coding lines, 9/10 ctrl lines.
    llvm_doc = {
        "type": "llvm.coverage.json.export",
        "version": "2.0.1",
        "data": [{
            "files": [
                {"filename": "/ci/repo/src/coding/packet.cpp",
                 "summary": {"lines": {"count": 10, "covered": 8}}},
                {"filename": "/ci/repo/src/ctrl/signals.cpp",
                 "summary": {"lines": {"count": 10, "covered": 9}}},
                {"filename": "/ci/repo/src/app/main.cpp",
                 "summary": {"lines": {"count": 50, "covered": 1}}},
            ],
        }],
    }

    # lcov fixture: same file appears twice (two TUs); union = 3/4 lines.
    lcov_text = (
        "TN:\n"
        "SF:/ci/repo/src/coding/strparse.hpp\n"
        "DA:1,1\nDA:2,0\nDA:3,0\nDA:4,1\n"
        "LF:4\nLH:2\nend_of_record\n"
        "SF:/ci/repo/src/coding/strparse.hpp\n"
        "DA:1,0\nDA:2,5\nDA:3,0\nDA:4,2\n"
        "LF:4\nLH:2\nend_of_record\n"
        "SF:/ci/repo/src/ctrl/fwdtable.cpp\n"
        "DA:1,1\nDA:2,1\n"
        "LF:2\nLH:2\nend_of_record\n")

    gcov_doc = {
        "format_version": "1",
        "files": [{
            "file": "src/ctrl/controller.cpp",
            "lines": [
                {"line_number": 3, "count": 2},
                {"line_number": 4, "count": 0},
            ],
        }],
    }

    with tempfile.TemporaryDirectory() as tmp:
        llvm_path = os.path.join(tmp, "export.json")
        with open(llvm_path, "w", encoding="utf-8") as fh:
            json.dump(llvm_doc, fh)
        lcov_path = os.path.join(tmp, "cov.info")
        with open(lcov_path, "w", encoding="utf-8") as fh:
            fh.write(lcov_text)
        gcov_dir = os.path.join(tmp, "gcov")
        os.mkdir(gcov_dir)
        with gzip.open(os.path.join(gcov_dir, "controller.gcov.json.gz"),
                       "wt", encoding="utf-8") as fh:
            json.dump(gcov_doc, fh)

        agg = aggregate(read_llvm_json(llvm_path), scopes)
        expect(agg["src/coding"] == (8, 10), f"llvm coding agg: {agg}")
        expect(agg["src/ctrl"] == (9, 10), f"llvm ctrl agg: {agg}")

        agg = aggregate(read_lcov(lcov_path), scopes)
        expect(agg["src/coding"] == (3, 4), f"lcov merge agg: {agg}")
        expect(agg["src/ctrl"] == (2, 2), f"lcov ctrl agg: {agg}")

        agg = aggregate(read_gcov_json_dir(gcov_dir), scopes)
        expect(agg["src/ctrl"] == (1, 2), f"gcov agg: {agg}")

        expect(detect_format(gcov_dir) == "gcov-json", "detect dir")
        expect(detect_format(lcov_path) == "lcov", "detect lcov")
        expect(detect_format(llvm_path) == "llvm-json", "detect llvm")

        # Gate: passes at the measured floor, fails above it, fails on
        # an unmeasured scope.
        per_file = read_llvm_json(llvm_path)
        ok = run_gate(per_file, {"min_line_coverage_pct": {
            "src/coding": 80.0, "src/ctrl": 90.0}})
        expect(ok == [], f"gate should pass at floor: {ok}")
        bad = run_gate(per_file, {"min_line_coverage_pct": {
            "src/coding": 80.1, "src/ctrl": 90.0}})
        expect(bad == ["src/coding"], f"gate should fail coding: {bad}")
        missing = run_gate(per_file, {"min_line_coverage_pct": {
            "src/vnf": 1.0}})
        expect(missing == ["src/vnf"], f"gate should fail unmeasured: {missing}")

        # Update: floors measured-minus-margin to one decimal.
        baseline_path = os.path.join(tmp, "baseline.json")
        baseline = {"min_line_coverage_pct": {"src/coding": 0.0,
                                              "src/ctrl": 0.0}}
        rc = update_baseline(per_file, baseline, baseline_path, margin=2.0)
        expect(rc == 0, "update should succeed")
        with open(baseline_path, "r", encoding="utf-8") as fh:
            written = json.load(fh)["min_line_coverage_pct"]
        expect(written == {"src/coding": 78.0, "src/ctrl": 88.0},
               f"update floors: {written}")

    if failures:
        for f in failures:
            print(f"coverage-gate self-test FAILED: {f}", file=sys.stderr)
        return 1
    print("coverage-gate self-test: OK")
    return 0


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("report", nargs="?",
                    help="coverage report (file or gcov-json directory)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--format", choices=sorted(READERS), default=None)
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the measured values")
    ap.add_argument("--margin", type=float, default=2.0,
                    help="safety margin subtracted on --update (pct points)")
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.report:
        ap.error("REPORT is required unless --self-test")

    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        fmt = args.format or detect_format(args.report)
        per_file = READERS[fmt](args.report)
    except (OSError, ValueError, KeyError) as err:
        print(f"coverage-gate: {err}", file=sys.stderr)
        return 2

    if args.update:
        return update_baseline(per_file, baseline, args.baseline, args.margin)
    failures = run_gate(per_file, baseline)
    if failures:
        print(f"coverage-gate: FAILED for {', '.join(failures)}; "
              "add tests (or, after review, refresh with --update)",
              file=sys.stderr)
        return 1
    print("coverage-gate: passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
