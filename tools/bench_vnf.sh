#!/bin/sh
# Run the end-to-end VNF packets/sec benchmark (batched PacketBatch lane
# vs the per-packet baseline) and record machine-readable results at the
# repo root (BENCH_vnf_pps.json). The acceptance bar for the batched data
# plane is >= 2x items_per_second for BM_VnfRecodeLanePps/32 over
# BM_VnfRecodeLanePps/1; see DESIGN.md "Batched data plane".
#
# Usage: tools/bench_vnf.sh [build-dir] [extra benchmark args...]
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

bin="$build_dir/bench/bench_vnf_pps"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

exec "$bin" \
  --benchmark_out="$repo_root/BENCH_vnf_pps.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=1 \
  --benchmark_repetitions=3 \
  "$@"
