#!/bin/sh
# Every public header must be self-contained: compilable as the first
# and only include of a TU. Non-self-contained headers work by accident
# of include order and break the first time someone includes them alone
# (exactly what tests/negcompile/ and external tools do).
#
# Usage: tools/check_headers.sh [c++]
#   CXX env var or $1 selects the compiler.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cxx=${1:-${CXX:-c++}}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT INT TERM

status=0
count=0
for header in "$repo_root"/src/*/*.hpp; do
  rel=${header#"$repo_root"/src/}
  tu="$tmpdir/tu.cc"
  printf '#include "%s"\n' "$rel" >"$tu"
  if ! out=$("$cxx" -std=c++20 -fsyntax-only -Wall -Wextra \
             "-I$repo_root/src" "$tu" 2>&1); then
    echo "not self-contained: src/$rel" >&2
    echo "$out" >&2
    status=1
  fi
  count=$((count + 1))
done

if [ "$status" -eq 0 ]; then
  echo "check_headers.sh: $count headers self-contained"
fi
exit "$status"
