// Fig. 7 — "Throughput comparison in the butterfly topology."
//
// Three curves over time for one multicast session (two receivers pulling
// a large file): NC (coding functions at the relays), Non-NC (the same
// relays, forwarding only), and Direct TCP (no relays, direct Internet
// paths). The paper's testbed shows NC ~ 70 Mbps (the Ford–Fulkerson
// bound is 69.9), Non-NC in the mid-50s, Direct TCP in the high 30s.
#include <vector>

#include "common.hpp"
#include "graph/maxflow.hpp"
#include "netsim/tcp.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 7", "Butterfly throughput over time: NC vs Non-NC vs Direct TCP");

  const auto b = app::scenarios::butterfly(false);
  const double bound =
      graph::multicast_capacity(b.topo, b.source, {b.recv_o2, b.recv_c2}) /
      1e6;
  std::printf("theoretical max (Ford–Fulkerson): %.1f Mbps (paper: 69.9)\n",
              bound);
  std::printf("paper: NC ~70, Non-NC ~52-55, Direct TCP ~35-40 Mbps\n\n");

  const double kDuration = 10.0;
  coding::CodingParams params;

  // ---- NC session ----
  std::vector<double> nc_series;
  {
    const auto plan = plan_butterfly(b);
    app::SyntheticProvider provider(
        7, static_cast<std::size_t>(80e6 / 8 * (kDuration + 5)), params);
    app::SimNet sim(b.topo);
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.sample_interval_s = 1.0;
    app::NcMulticastSession session(sim, plan, 0, butterfly_session(b),
                                    provider, wiring);
    session.start();
    for (int t = 1; t <= static_cast<int>(kDuration); ++t) {
      sim.net().sim().run_until(t);
      nc_series.push_back(session.receiver(0).windowed_goodput_mbps(1.0));
    }
  }

  // ---- Non-NC (tree forwarding) session ----
  std::vector<double> tree_series;
  {
    const auto packing = app::pack_trees(b.topo, b.source,
                                         {b.recv_o2, b.recv_c2}, 0.150);
    app::SyntheticProvider provider(
        9, static_cast<std::size_t>(60e6 / 8 * (kDuration + 5)), params);
    app::SimNet sim(b.topo);
    app::SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.sample_interval_s = 1.0;
    app::TreeMulticastSession session(sim, packing, butterfly_session(b),
                                      provider, wiring);
    session.start();
    for (int t = 1; t <= static_cast<int>(kDuration); ++t) {
      sim.net().sim().run_until(t);
      tree_series.push_back(session.receiver(0).windowed_goodput_mbps(1.0));
    }
  }

  // ---- Direct TCP ----
  std::vector<double> tcp_series;
  {
    const auto bd = app::scenarios::butterfly(true);
    app::SimNet sim(bd.topo);
    const std::size_t bytes = static_cast<std::size_t>(60e6 / 8 * kDuration);
    netsim::TcpConfig tcfg;
    tcfg.initial_ssthresh = 256;  // ~BDP of the 40 Mbps, 90 ms direct path
    netsim::TcpTransfer tcp(sim.net(), sim.node(bd.source),
                            sim.node(bd.recv_o2), 5000, bytes, tcfg);
    tcp.start();
    std::size_t prev = 0;
    for (int t = 1; t <= static_cast<int>(kDuration); ++t) {
      sim.net().sim().run_until(t);
      const std::size_t now_bytes = tcp.bytes_acked();
      tcp_series.push_back(static_cast<double>(now_bytes - prev) * 8.0 / 1e6);
      prev = now_bytes;
    }
  }

  std::printf("%8s %10s %10s %12s\n", "time(s)", "NC", "Non-NC", "Direct TCP");
  double nc_avg = 0, tree_avg = 0, tcp_avg = 0;
  int n = 0;
  for (std::size_t i = 0; i < nc_series.size(); ++i) {
    std::printf("%8zu %10.2f %10.2f %12.2f\n", i + 1, nc_series[i],
                tree_series[i], tcp_series[i]);
    if (i >= 2) {  // skip slow-start / pipeline ramp
      nc_avg += nc_series[i];
      tree_avg += tree_series[i];
      tcp_avg += tcp_series[i];
      ++n;
    }
  }
  std::printf("\nsteady-state averages: NC %.2f  Non-NC %.2f  Direct TCP %.2f Mbps\n",
              nc_avg / n, tree_avg / n, tcp_avg / n);
  return 0;
}
