// Ablation — multi-VNF dispatch within a data center (Sec. IV.A: "In
// case of multiple VNFs launched in one data center, we dispatch the
// incoming packets across these VNFs based on session id and generation
// id ... Packets belonging to the same generation are dispatched to the
// same VNF instance").
//
// One relay DC whose per-VNF coding rate is the bottleneck; the offered
// stream is far above a single instance's capacity. Throughput must scale
// close to linearly with the number of deployed instances (lanes) until
// the link rate is reached, because whole generations shard cleanly
// across instances.
#include "app/provider.hpp"
#include "app/receiver.hpp"
#include "app/source.hpp"
#include "common.hpp"
#include "vnf/coding_vnf.hpp"

namespace {

using namespace ncfn;

double run_with_lanes(std::size_t lanes) {
  netsim::Network net(1);
  const auto src = net.add_node("src");
  const auto dc = net.add_node("dc");
  const auto dst = net.add_node("dst");
  netsim::LinkConfig lc;
  lc.capacity_bps = 200e6;
  lc.prop_delay = 0.005;
  lc.queue_packets = 2048;
  net.add_link(src, dc, lc);
  net.add_link(dc, dst, lc);
  net.add_link(dst, src, lc);  // feedback

  coding::CodingParams params;
  app::SyntheticProvider provider(5, static_cast<std::size_t>(200e6 / 8 * 4),
                                  params);

  app::SourceConfig scfg;
  scfg.session = 1;
  scfg.params = params;
  scfg.lambda_mbps = 160.0;
  app::McSource source(net, src, provider, scfg);
  source.configure_hops({{ctrl::NextHop{dc, scfg.data_port}, 160.0}});

  vnf::VnfConfig vcfg;
  vcfg.params = params;
  // One instance codes ~40 Mbps: service = 2*4*1464 B / proc_rate.
  vcfg.proc_rate_Bps = 2.0 * 4 * 1464 * (40e6 / (1460 * 8));
  vcfg.fixed_overhead_s = 0;
  vnf::CodingVnf relay(net, dc, vcfg);
  relay.set_lanes(lanes);
  relay.configure_session(1, ctrl::VnfRole::kRecode, scfg.data_port);
  relay.set_next_hops(
      1, {vnf::NextHopRate{ctrl::NextHop{dst, scfg.data_port}, 1.0}});

  app::ReceiverConfig rcfg;
  rcfg.session = 1;
  rcfg.params = params;
  rcfg.data_port = scfg.data_port;
  rcfg.source_node = src;
  rcfg.source_feedback_port = scfg.feedback_port;
  rcfg.enable_repair = false;  // measure raw lane capacity
  rcfg.vnf = vcfg;
  rcfg.vnf.proc_rate_Bps = 1e12;  // receiver decode is not the bottleneck
  app::McReceiver rx(net, dst, provider, rcfg);

  rx.start();
  source.start();
  net.sim().run_until(2.0);
  return rx.goodput_mbps();
}

}  // namespace

int main() {
  using namespace ncfn::bench;
  print_header("Ablation", "Multi-VNF dispatch: throughput vs instances per DC");
  std::printf("one instance codes ~40 Mbps; offered stream 160 Mbps\n\n");
  std::printf("%10s %18s %14s\n", "lanes", "throughput(Mbps)", "scaling");
  double base = 0;
  for (const std::size_t lanes : {1, 2, 3, 4, 6, 8}) {
    const double tput = run_with_lanes(lanes);
    if (lanes == 1) base = tput;
    std::printf("%10zu %18.2f %13.2fx\n", lanes, tput, tput / base);
  }
  std::printf("\ngeneration-sharded dispatch scales until the offered rate "
              "(160 Mbps) is met\n");
  return 0;
}
