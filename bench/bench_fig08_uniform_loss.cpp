// Fig. 8 — "Throughput comparison at different uniform drop rates."
//
// I.i.d. loss on the T->V2 bottleneck, 0-50 %, four schemes: NC0 (no
// redundancy), NC1 (+1 coded packet/generation), NC2 (+2), Non-NC
// (forwarding only). Paper shape: NC0 wins at ~0 % but drops sharply with
// loss (it must wait for retransmissions); NC1/NC2 trade goodput for
// robustness and retain high throughput under loss; Non-NC degrades too.
#include "common.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 8", "Throughput vs uniform loss rate on the bottleneck");
  std::printf("paper: NC0 ~70 at 0%% plunging below Non-NC at high loss;\n");
  std::printf("       NC1/NC2 retain relatively high throughput under loss\n\n");
  std::printf("%10s %10s %10s %10s %10s\n", "loss(%)", "NC0", "NC1", "NC2",
              "Non-NC");

  for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}) {
    double vals[4];
    for (int r = 0; r < 3; ++r) {
      ButterflyRunConfig cfg;
      cfg.redundancy = r;
      cfg.uniform_loss = loss;
      cfg.duration_s = 3.0;
      vals[r] = run_nc_butterfly(cfg).goodput_mbps;
    }
    ButterflyRunConfig cfg;
    cfg.uniform_loss = loss;
    cfg.duration_s = 3.0;
    vals[3] = run_tree_butterfly(cfg).goodput_mbps;
    std::printf("%10.0f %10.2f %10.2f %10.2f %10.2f\n", loss * 100, vals[0],
                vals[1], vals[2], vals[3]);
  }
  return 0;
}
