// End-to-end packets/sec through a recode lane (google-benchmark): a
// source node feeds coded generations over a netsim link into a
// RECODE-role CodingVnf, which recodes and emits to a sink node. The
// wall-clock cost per packet is dominated by the fixed per-packet
// overheads this PR amortizes — simulator events, header parses, RNG
// draws, map lookups, counter updates — so the benchmark arg sweeps the
// lane batch size:
//
//   batch=1   strict per-packet operation (the pre-batching baseline:
//             one service event, one recode sweep, one link departure
//             and one delivery event per packet),
//   batch=32  full PacketBatch operation (one drain event per batch, one
//             recode_batch coefficient sweep per run, burst links).
//
// items_per_second is arrival packets through the lane; the acceptance
// gate for the batched data plane is >= 2x batch=32 over batch=1 at
// g=32. tools/bench_vnf.sh wraps this binary into BENCH_vnf_pps.json.
#include <benchmark/benchmark.h>

#include <random>
#include <span>
#include <vector>

#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/pool.hpp"
#include "netsim/network.hpp"
#include "vnf/coding_vnf.hpp"

namespace {

using namespace ncfn;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}

void BM_VnfRecodeLanePps(benchmark::State& state) {
  const auto max_batch = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = 32;  // the acceptance-gate generation size
  // RFC 2544-style minimum-frame payload: pps benchmarks use small
  // packets so the (batch-invariant) GF kernel share of each packet
  // stays low and the measurement isolates the fixed per-packet costs
  // this data plane amortizes — events, parses, draws, lookups. The
  // kernel-bound regime at MTU-sized blocks is bench_micro_codec's job.
  p.block_size = 64;

  netsim::Network net(1);
  const auto n_src = net.add_node("src");
  const auto n_relay = net.add_node("relay");
  const auto n_sink = net.add_node("sink");
  netsim::LinkConfig lc;
  lc.capacity_bps = 1e12;  // fat pipes: the lane, not the wire, dominates
  lc.prop_delay = 1e-6;
  lc.queue_packets = 1 << 16;
  net.add_link(n_src, n_relay, lc);
  net.add_link(n_relay, n_sink, lc);

  vnf::VnfConfig vc;
  vc.params = p;
  vc.max_batch = max_batch;
  vc.proc_queue_limit = 1 << 16;
  vnf::CodingVnf relay(net, n_relay, vc);
  relay.configure_session(1, ctrl::VnfRole::kRecode, 7000);
  relay.set_next_hops(1, {{{n_sink, 7001}, 1.0}});

  std::uint64_t sink_rx = 0;
  net.bind(n_sink, 7001, [&](const netsim::Datagram&) { ++sink_rx; });
  net.bind_burst(n_sink, 7001,
                 [&](std::span<netsim::Datagram> b) { sink_rx += b.size(); });

  // One prototype generation's worth of arrivals — systematic first (the
  // standard source setup; relay ingest takes the identity-coefficient
  // fast path), then 8 random combinations so the lane also sees coded
  // and post-completion traffic. Each timed generation re-stamps the
  // generation id, so every pass rebuilds decoder rank from zero.
  const auto data = random_bytes(p.generation_bytes(), 42);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(43);
  auto pool = coding::PacketPool::make();
  coding::Encoder enc(1, gen, rng, pool);
  std::vector<coding::CodedPacket> proto;
  for (std::size_t i = 0; i < p.generation_blocks; ++i) {
    proto.push_back(enc.encode_systematic(i));
  }
  for (std::size_t i = 0; i < 8; ++i) proto.push_back(enc.encode_random());

  std::uint64_t items = 0;
  coding::GenerationId gen_id = 0;
  constexpr std::size_t kGensPerIter = 4;
  std::vector<netsim::Datagram> burst;
  for (auto _ : state) {
    for (std::size_t m = 0; m < kGensPerIter; ++m) {
      const coding::GenerationId gid = gen_id++;
      for (coding::CodedPacket& pkt : proto) {
        pkt.generation = gid;
        netsim::Datagram d;
        d.src = n_src;
        d.dst = n_relay;
        d.dst_port = 7000;
        d.payload = net.take_buffer();
        pkt.serialize_into(d.payload);
        if (max_batch == 1) {
          // Pre-batching baseline: packet-at-a-time into the link.
          net.send(std::move(d));
        } else {
          burst.push_back(std::move(d));
          if (burst.size() == coding::kBatchCapacity) {
            net.send_burst(std::move(burst));
            burst.clear();
          }
        }
      }
      if (!burst.empty()) {
        net.send_burst(std::move(burst));
        burst.clear();
      }
      items += proto.size();
    }
    net.sim().run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
  state.counters["sink_rx"] = static_cast<double>(sink_rx);
  state.SetLabel(max_batch == 1 ? "per_packet" : "batched");
}
BENCHMARK(BM_VnfRecodeLanePps)->Arg(1)->Arg(32);

}  // namespace
