// Table III — "Time overhead for forwarding table update."
//
// A 10-entry forwarding table is updated with 20-100 % of its entries
// changed; the paper measures 78 ms (20 %) up to 311 ms (100 %), i.e.
// ~31 ms per changed entry including the SIGUSR1 pause/resume dance. We
// report (a) the modeled daemon-side cost on those constants and (b) the
// actual wall-clock cost of our control-plane code path (serialize ->
// parse -> diff -> install) for calibration.
#include <chrono>

#include "common.hpp"
#include "vnf/daemon.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Tab. III", "Forwarding-table update cost vs update percentage");
  std::printf("paper: 20%%=78.44  40%%=145.82  60%%=194.06  80%%=264.82  "
              "100%%=310.61 (ms)\n\n");

  netsim::Network net(1);
  const auto node = net.add_node("relay");
  vnf::DaemonConfig dcfg;
  dcfg.vnf.params = coding::CodingParams{};
  vnf::VnfDaemon daemon(net, node, dcfg);

  // Base table with 10 entries (as in the paper's measurement).
  ctrl::ForwardingTable base;
  for (coding::SessionId s = 1; s <= 10; ++s) {
    base.set(s, {ctrl::NextHop{s, static_cast<std::uint16_t>(20000 + s)}});
  }
  daemon.handle_signal(ctrl::NcForwardTab{base});
  net.sim().run();

  std::printf("%12s %22s %26s\n", "updated(%)", "modeled daemon (ms)",
              "real parse+diff+apply (us)");
  for (int pct = 20; pct <= 100; pct += 20) {
    ctrl::ForwardingTable next = base;
    const int changed = pct / 10;
    for (coding::SessionId s = 1; s <= static_cast<coding::SessionId>(changed);
         ++s) {
      next.set(s, {ctrl::NextHop{s + 100,
                                 static_cast<std::uint16_t>(30000 + s)}});
    }
    // Modeled cost (what the paper's numbers correspond to).
    daemon.handle_signal(ctrl::NcForwardTab{next});
    const double modeled = daemon.stats().last_table_update_cost_s * 1e3;
    net.sim().run();
    daemon.handle_signal(ctrl::NcForwardTab{base});  // restore
    net.sim().run();

    // Real cost of the text round trip + diff, averaged over 1000 reps.
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t sink = 0;
    const int reps = 1000;
    for (int i = 0; i < reps; ++i) {
      const std::string text = next.serialize();
      const auto parsed = ctrl::ForwardingTable::parse(text);
      sink += ctrl::ForwardingTable::diff_entries(base, *parsed);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double real_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / reps;
    std::printf("%12d %22.2f %26.2f\n", pct, modeled, real_us);
    (void)sink;
  }
  std::printf("\n(the paper's ms-scale costs are dominated by the pause/"
              "resume signal round trip,\n which the daemon models; the "
              "in-memory table operations themselves are microseconds)\n");
  return 0;
}
