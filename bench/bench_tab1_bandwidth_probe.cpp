// Table I — "Time varying inbound and outbound bandwidth for one hour in
// two EC2 data centers in Oregon and California."
//
// The paper measures per-VM in/out bandwidth every 10 minutes with iperf3
// and finds it wobbling around ~920 Mbps (roughly 880–940). We model each
// VM NIC as a nominally 920 Mbps link whose capacity drifts slowly
// (AR(1) around the nominal value) and sample it through the same
// bandwidth-probe API the daemons use.
#include <random>

#include "common.hpp"
#include "netsim/network.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Tab. I", "Time-varying per-VM bandwidth, one hour, 10-min probes");
  std::printf("paper (Oregon in):    926 918 906 915 915 893 Mbps\n");
  std::printf("paper (Oregon out):   920 938 889 929 914 881 Mbps\n\n");

  netsim::Network net(2026);
  const auto probe_host = net.add_node("prober");
  struct Dc {
    const char* name;
    netsim::NodeId node;
  };
  Dc dcs[2] = {{"Oregon", net.add_node("oregon")},
               {"California", net.add_node("california")}};
  for (const Dc& dc : dcs) {
    netsim::LinkConfig lc;
    lc.capacity_bps = 920e6;
    lc.prop_delay = 0.02;
    net.add_duplex_link(probe_host, dc.node, lc);
  }

  std::mt19937 drift_rng(99);
  std::normal_distribution<double> shock(0.0, 8e6);
  std::printf("%-14s", "time (min)");
  for (int t = 0; t <= 50; t += 10) std::printf("%10d", t);
  std::printf("\n");

  for (const Dc& dc : dcs) {
    // AR(1) drift of the true capacity in both directions.
    double cap_in = 920e6, cap_out = 920e6;
    std::vector<double> in_probe, out_probe;
    for (int t = 0; t <= 50; t += 10) {
      net.link(dc.node, probe_host)->set_capacity_bps(cap_in);
      net.link(probe_host, dc.node)->set_capacity_bps(cap_out);
      in_probe.push_back(*net.probe_bandwidth_bps(dc.node, probe_host, 0.01));
      out_probe.push_back(*net.probe_bandwidth_bps(probe_host, dc.node, 0.01));
      cap_in = 0.7 * cap_in + 0.3 * 920e6 + shock(drift_rng);
      cap_out = 0.7 * cap_out + 0.3 * 920e6 + shock(drift_rng);
    }
    std::printf("%-11s in", dc.name);
    for (double v : in_probe) std::printf("%10.0f", v / 1e6);
    std::printf("\n%-10s out", dc.name);
    for (double v : out_probe) std::printf("%10.0f", v / 1e6);
    std::printf("\n");
  }
  std::printf("\n(all values Mbps; wobble within ~5%% of nominal, as in the paper)\n");
  return 0;
}
