// Codec microbenchmarks (google-benchmark): the GF(2^8) bulk kernels and
// the encoder/recoder/decoder at several generation sizes. These numbers
// calibrate the VNF processing model (VnfConfig::proc_rate_Bps) that
// drives the Fig. 4 generation-size collapse.
#include <benchmark/benchmark.h>

#include <random>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "gf/gf256.hpp"

namespace {

using namespace ncfn;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}

void BM_GfBulkXor(benchmark::State& state) {
  auto a = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    gf::bulk_xor(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GfBulkXor)->Arg(1460)->Arg(65536);

void BM_GfBulkMulAdd(benchmark::State& state) {
  auto a = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  const auto b = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    gf::bulk_muladd(a, b, 0x8E);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GfBulkMulAdd)->Arg(1460)->Arg(65536);

void BM_EncodeGeneration(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 5);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(6);
  coding::Encoder enc(1, gen, rng);
  for (auto _ : state) {
    auto pkt = enc.encode_random();
    benchmark::DoNotOptimize(pkt.payload.data());
  }
  // Payload bytes produced per encoded packet.
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.block_size));
}
BENCHMARK(BM_EncodeGeneration)->Arg(2)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_DecodeGeneration(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 7);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(8);
  coding::Encoder enc(1, gen, rng);
  // Pre-encode enough packets outside the timed loop.
  std::vector<coding::CodedPacket> pkts;
  for (std::size_t i = 0; i < g + 8; ++i) pkts.push_back(enc.encode_random());
  for (auto _ : state) {
    coding::Decoder dec(1, 0, p);
    std::size_t i = 0;
    while (!dec.complete() && i < pkts.size()) dec.add(pkts[i++]);
    auto blocks = dec.recover();
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.generation_bytes()));
}
BENCHMARK(BM_DecodeGeneration)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_Recode(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 9);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(10);
  coding::Encoder enc(1, gen, rng);
  coding::Decoder relay(1, 0, p);
  for (std::size_t i = 0; i < g; ++i) relay.add(enc.encode_random());
  for (auto _ : state) {
    auto pkt = relay.recode(rng);
    benchmark::DoNotOptimize(pkt.payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.block_size));
}
BENCHMARK(BM_Recode)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_HeaderSerializeParse(benchmark::State& state) {
  coding::CodingParams p;
  coding::CodedPacket pkt;
  pkt.session = 1;
  pkt.generation = 42;
  pkt.coeffs = {1, 2, 3, 4};
  pkt.payload = random_bytes(p.block_size, 11);
  for (auto _ : state) {
    const auto wire = pkt.serialize();
    auto back = coding::CodedPacket::parse(wire, p);
    benchmark::DoNotOptimize(back->payload.data());
  }
}
BENCHMARK(BM_HeaderSerializeParse);

}  // namespace
