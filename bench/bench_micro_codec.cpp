// Codec microbenchmarks (google-benchmark): the GF(2^8) bulk kernels and
// the encoder/recoder/decoder at several generation sizes. These numbers
// calibrate the VNF processing model (VnfConfig::proc_rate_Bps) that
// drives the Fig. 4 generation-size collapse.
//
// Kernel benchmarks run once per supported ISA tier (scalar / SSSE3 /
// AVX2 / GFNI, forced through gf::simd::force_tier), so the dispatch win and the
// fused-x4 win are visible in one report. Codec benchmarks run on the
// dispatched (best) tier with a live PacketPool — the steady state they
// measure allocates nothing per packet. BM_EncodeGenerationLegacy keeps
// the pre-pool, per-row path inline as the self-documenting baseline.
// tools/bench_micro.sh wraps this binary and writes BENCH_micro_codec.json.
#include <benchmark/benchmark.h>

#include <random>
#include <string>

#include "coding/decoder.hpp"
#include "coding/encoder.hpp"
#include "coding/generation.hpp"
#include "coding/pool.hpp"
#include "gf/gf256.hpp"
#include "gf/gf256_simd.hpp"

namespace {

using namespace ncfn;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> d(0, 255);
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(d(rng));
  return out;
}

/// Forces the tier named by the benchmark arg for the benchmark's
/// lifetime; skips when the host lacks it.
class TierGuard {
 public:
  TierGuard(benchmark::State& state, gf::simd::Tier tier) {
    if (!gf::simd::force_tier(tier)) {
      state.SkipWithError(
          (std::string(gf::simd::tier_name(tier)) + " unsupported").c_str());
      ok_ = false;
    }
  }
  ~TierGuard() { gf::simd::reset_tier(); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool ok_ = true;
};

constexpr gf::simd::Tier kTiers[] = {
    gf::simd::Tier::kScalar, gf::simd::Tier::kSsse3, gf::simd::Tier::kAvx2,
    gf::simd::Tier::kGfni};

void BM_GfBulkXor(benchmark::State& state) {
  TierGuard tier(state, kTiers[state.range(1)]);
  if (!tier.ok()) return;
  auto a = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    gf::bulk_xor(a, b);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gf::simd::tier_name(kTiers[state.range(1)]));
}
BENCHMARK(BM_GfBulkXor)
    ->ArgsProduct({{1460, 65536}, {0, 1, 2, 3}});

void BM_GfBulkMulAdd(benchmark::State& state) {
  TierGuard tier(state, kTiers[state.range(1)]);
  if (!tier.ok()) return;
  auto a = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  const auto b = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    gf::bulk_muladd(a, b, 0x8E);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
  state.SetLabel(gf::simd::tier_name(kTiers[state.range(1)]));
}
BENCHMARK(BM_GfBulkMulAdd)
    ->ArgsProduct({{1460, 65536}, {0, 1, 2, 3}});

void BM_GfBulkMulAddX4(benchmark::State& state) {
  // Four source rows fused into one pass over dst; bytes processed counts
  // all four rows, so GB/s compares directly against 4x BM_GfBulkMulAdd.
  TierGuard tier(state, kTiers[state.range(1)]);
  if (!tier.ok()) return;
  const auto n = static_cast<std::size_t>(state.range(0));
  auto dst = random_bytes(n, 5);
  const auto r0 = random_bytes(n, 6), r1 = random_bytes(n, 7),
             r2 = random_bytes(n, 8), r3 = random_bytes(n, 9);
  const std::uint8_t* src[4] = {r0.data(), r1.data(), r2.data(), r3.data()};
  const std::uint8_t c4[4] = {0x8E, 0x35, 0xD1, 0x02};
  for (auto _ : state) {
    gf::bulk_muladd_x4(dst, src, c4);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
  state.SetLabel(gf::simd::tier_name(kTiers[state.range(1)]));
}
BENCHMARK(BM_GfBulkMulAddX4)
    ->ArgsProduct({{1460, 65536}, {0, 1, 2, 3}});

void BM_EncodeGeneration(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 5);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(6);
  auto pool = coding::PacketPool::make();
  coding::Encoder enc(1, gen, rng, pool);
  for (auto _ : state) {
    auto pkt = enc.encode_random();
    benchmark::DoNotOptimize(pkt.payload().data());
  }
  // Payload bytes produced per encoded packet.
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.block_size));
  state.counters["pool_heap_allocs"] =
      static_cast<double>(pool.stats().heap_allocs);
}
BENCHMARK(BM_EncodeGeneration)
    ->Arg(2)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_EncodeGenerationLegacy(benchmark::State& state) {
  // The pre-optimization encode path, kept inline as the baseline the
  // fused/pooled BM_EncodeGeneration is compared against: SSSE3 kernels
  // (the previous best tier), two fresh vector allocations per packet,
  // one distribution sample per coefficient byte, and one single-row
  // muladd pass per source block.
  TierGuard tier(state, gf::simd::Tier::kSsse3);
  if (!tier.ok()) return;
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 5);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(6);
  std::uniform_int_distribution<int> d(0, 255);
  for (auto _ : state) {
    std::vector<std::uint8_t> coeffs(g);
    std::vector<std::uint8_t> payload(p.block_size, 0);
    bool any = false;
    while (!any) {
      for (auto& c : coeffs) {
        c = static_cast<std::uint8_t>(d(rng));
        any = any || c != 0;
      }
    }
    for (std::size_t i = 0; i < g; ++i) {
      gf::bulk_muladd(payload, gen.block(i), coeffs[i]);
    }
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.block_size));
}
BENCHMARK(BM_EncodeGenerationLegacy)
    ->Arg(2)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_DecodeGeneration(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 7);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(8);
  auto pool = coding::PacketPool::make();
  coding::Encoder enc(1, gen, rng, pool);
  // Pre-encode enough packets outside the timed loop.
  std::vector<coding::CodedPacket> pkts;
  for (std::size_t i = 0; i < g + 8; ++i) pkts.push_back(enc.encode_random());
  for (auto _ : state) {
    coding::Decoder dec(1, 0, p, pool);
    std::size_t i = 0;
    while (!dec.complete() && i < pkts.size()) dec.add(pkts[i++]);
    auto blocks = dec.recover();
    benchmark::DoNotOptimize(blocks.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.generation_bytes()));
}
BENCHMARK(BM_DecodeGeneration)->Arg(2)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_Recode(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  coding::CodingParams p;
  p.generation_blocks = g;
  const auto data = random_bytes(p.generation_bytes(), 9);
  coding::Generation gen(0, data, p);
  std::mt19937 rng(10);
  auto pool = coding::PacketPool::make();
  coding::Encoder enc(1, gen, rng, pool);
  coding::Decoder relay(1, 0, p, pool);
  for (std::size_t i = 0; i < g; ++i) relay.add(enc.encode_random());
  for (auto _ : state) {
    auto pkt = relay.recode(rng);
    benchmark::DoNotOptimize(pkt.payload().data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.block_size));
}
BENCHMARK(BM_Recode)->Arg(2)->Arg(4)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_HeaderSerializeParse(benchmark::State& state) {
  coding::CodingParams p;
  auto pool = coding::PacketPool::make();
  const std::vector<std::uint8_t> coeffs{1, 2, 3, 4};
  const auto pkt =
      coding::CodedPacket::make(1, 42, coeffs, random_bytes(p.block_size, 11),
                                pool);
  std::vector<std::uint8_t> wire;
  for (auto _ : state) {
    pkt.serialize_into(wire);
    auto back = coding::CodedPacket::parse(wire, p, pool);
    benchmark::DoNotOptimize(back->payload().data());
  }
}
BENCHMARK(BM_HeaderSerializeParse);

}  // namespace
