// Ablation — generation-granular plan quantization (ctrl::quantize_plan,
// DESIGN.md refinement #8).
//
// Two sessions share the butterfly (a 40 Mbps-capped multicast plus a
// 20 Mbps-capped unicast). The joint fluid optimum assigns session 1
// fractional per-generation packet counts on the shared edges; run raw,
// a large fraction of generations stall on integer shortfalls and limp
// through the repair loop. Quantization trades planned rate (40 -> 30
// Mbps here) for a stall-free data plane and strictly higher goodput.
#include "app/provider.hpp"
#include "common.hpp"

namespace {

using namespace ncfn;

struct RunResult {
  double planned[2];
  double goodput[2];
  std::uint64_t repairs;
};

RunResult run(bool quantize) {
  const auto b = app::scenarios::butterfly(false);
  ctrl::SessionSpec s1 = bench::butterfly_session(b);
  s1.max_rate_mbps = 40.0;
  ctrl::SessionSpec s2;
  s2.id = 2;
  s2.source = b.source;
  s2.receivers = {b.recv_c2};
  s2.lmax_s = 0.150;
  s2.max_rate_mbps = 20.0;
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions = {s1, s2};
  const auto plan = ctrl::solve_deployment(prob);

  coding::CodingParams params;
  app::SyntheticProvider d1(41, static_cast<std::size_t>(40e6 / 8 * 10),
                            params);
  app::SyntheticProvider d2(42, static_cast<std::size_t>(25e6 / 8 * 10),
                            params);
  app::SimNet sim(b.topo);
  app::SessionWiring w1, w2;
  w1.vnf.params = w2.vnf.params = params;
  w1.quantize = w2.quantize = quantize;
  w2.seed = 1234;
  app::NcMulticastSession mc1(sim, plan, 0, s1, d1, w1);
  app::NcMulticastSession mc2(sim, plan, 1, s2, d2, w2);
  mc1.start();
  mc2.start();
  sim.net().sim().run_until(4.0);

  RunResult r{};
  r.planned[0] = plan.lambda_mbps[0];
  r.planned[1] = plan.lambda_mbps[1];
  r.goodput[0] = mc1.session_goodput_mbps();
  r.goodput[1] = mc2.session_goodput_mbps();
  r.repairs = mc1.receiver(0).stats().repair_requests_sent +
              mc1.receiver(1).stats().repair_requests_sent +
              mc2.receiver(0).stats().repair_requests_sent;
  return r;
}

}  // namespace

int main() {
  using namespace ncfn::bench;
  print_header("Ablation",
               "Plan quantization: fluid LP flows vs whole packets/generation");
  std::printf("%14s %12s %12s %12s %10s\n", "", "planned s1", "goodput s1",
              "goodput s2", "repairs");
  const auto raw = run(false);
  std::printf("%14s %9.1f Mbps %9.1f Mbps %9.1f Mbps %10llu\n", "raw plan",
              raw.planned[0], raw.goodput[0], raw.goodput[1],
              static_cast<unsigned long long>(raw.repairs));
  const auto q = run(true);
  std::printf("%14s %9.1f Mbps %9.1f Mbps %9.1f Mbps %10llu\n", "quantized",
              q.planned[0], q.goodput[0], q.goodput[1],
              static_cast<unsigned long long>(q.repairs));
  std::printf("\nquantization gives up planned rate to eliminate "
              "per-generation integer shortfalls;\nthe raw plan's extra "
              "10 Mbps exists only on paper\n");
  return 0;
}
