// Fig. 5 — "A comparison among various sizes of buffer."
//
// The paper sweeps the coding functions' FIFO buffer (in generations) and
// finds 1024 sufficient — larger buffers gain little. The reproduced
// mechanism: under loss, stalled generations sit in the receiver's buffer
// awaiting repair rounds; a buffer smaller than the repair window evicts
// them before recovery, permanently losing their payload.
#include "common.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 5", "Throughput vs buffer size (generations)");
  std::printf("paper: rises to ~70 Mbps, saturates at 1024 generations\n\n");
  std::printf("%10s %18s\n", "buffer", "throughput(Mbps)");

  double at_1024 = 0, at_2048 = 0;
  for (const std::size_t buf : {16, 64, 128, 256, 512, 1024, 2048}) {
    ButterflyRunConfig cfg;
    cfg.params.buffer_generations = buf;
    cfg.uniform_loss = 0.08;  // repairs keep a window of generations open
    cfg.duration_s = 3.0;
    const auto r = run_nc_butterfly(cfg);
    std::printf("%10zu %18.2f\n", buf, r.goodput_mbps);
    if (buf == 1024) at_1024 = r.goodput_mbps;
    if (buf == 2048) at_2048 = r.goodput_mbps;
  }
  std::printf("\n1024 vs 2048 generations: %.2f vs %.2f Mbps "
              "(larger buffer gains %.1f%%)\n",
              at_1024, at_2048, (at_2048 / at_1024 - 1) * 100);
  return 0;
}
