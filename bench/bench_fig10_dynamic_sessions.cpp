// Fig. 10 — "Total multicast throughput and total # of VNFs over time."
//
// The paper's dynamic scenario: start with three multicast sessions, add
// one every 10 minutes until six are running, then remove one every 10
// minutes back down to three. Then one receiver joins an existing session
// at minutes 70/80/90 and one leaves at 100/110/120. Sources/receivers
// are uniform over the six North-American data centers, each session has
// 1-4 receivers, alpha = 20, Lmax = 150 ms, tau = tau1 = tau2 = 10 min.
//
// Expected shape: throughput and VNF count rise for the first 30 minutes,
// the VNF count plateaus briefly (tau-delayed scale-in + reuse), then both
// fall; receiver churn barely moves total throughput (a joining/leaving
// receiver only matters if it is the session's bottleneck).
#include <random>

#include "common.hpp"
#include "ctrl/controller.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 10", "Throughput & #VNFs under session/receiver churn");
  std::printf("paper: rises ~30 min, VNFs plateau ~10 min, then decline;\n");
  std::printf("       stable throughput during receiver churn at 70-120 min\n\n");

  const auto net = app::scenarios::six_datacenters();
  ctrl::Controller::Config cfg;
  cfg.alpha = 20.0;
  cfg.tau_s = cfg.tau1_s = cfg.tau2_s = 600.0;
  ctrl::Controller ctl(net.topo, cfg);

  std::mt19937 rng(42);
  std::set<graph::NodeIdx> used_hosts;  // each endpoint is its own VM
  std::vector<ctrl::SessionSpec> pool;
  for (coding::SessionId id = 1; id <= 6; ++id) {
    pool.push_back(
        app::scenarios::random_session(net, id, rng, 0.150, &used_hosts));
  }

  std::printf("%12s %12s %20s %8s\n", "time(min)", "sessions",
              "throughput(Mbps)", "#VNFs");
  auto report = [&](int minute) {
    std::printf("%12d %12zu %20.1f %8d\n", minute, ctl.sessions().size(),
                ctl.total_throughput_mbps(), ctl.alive_vnfs());
  };

  // Receiver-churn bookkeeping: receivers added at 70/80/90 are removed
  // at 100/110/120 (most recently added first, as in the paper's setup).
  std::vector<std::pair<coding::SessionId, graph::NodeIdx>> added_receivers;
  std::uniform_int_distribution<std::size_t> host_pick(0, net.hosts.size() - 1);

  for (int minute = 0; minute <= 120; minute += 10) {
    const double now = minute * 60.0;
    if (minute == 0) {
      for (int i = 0; i < 3; ++i) ctl.add_session(pool[static_cast<std::size_t>(i)], now);
    } else if (minute <= 30) {
      ctl.add_session(pool[static_cast<std::size_t>(2 + minute / 10)], now);
    } else if (minute <= 60) {
      ctl.remove_session(pool[static_cast<std::size_t>(minute / 10 - 4)].id, now);
    } else if (minute <= 90) {
      // One receiver (a fresh VM) joins the first remaining session.
      const coding::SessionId sid = ctl.sessions().front().id;
      graph::NodeIdx r = -1;
      int guard = 0;
      while (guard++ < 200) {
        const graph::NodeIdx cand = net.hosts[host_pick(rng)];
        if (used_hosts.count(cand) == 0) {
          r = cand;
          break;
        }
      }
      if (r != -1 && ctl.add_receiver(sid, r, now)) {
        used_hosts.insert(r);
        added_receivers.emplace_back(sid, r);
      }
    } else if (!added_receivers.empty()) {
      const auto [sid, r] = added_receivers.back();
      added_receivers.pop_back();
      ctl.remove_receiver(sid, r, now);
    }
    ctl.tick(now);
    report(minute);
  }

  std::printf("\nVM launches: %d, reuses of draining VNFs: %d\n",
              ctl.vm_launches(), ctl.vm_reuses());
  return 0;
}
