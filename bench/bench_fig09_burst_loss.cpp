// Fig. 9 — "Throughput comparison at different burst drop rates."
//
// The paper's burst loss model on the bottleneck: the n-th packet is
// dropped with probability P_n = 0.25 * P_{n-1} + P, P_0 = 0, with P
// swept from 0 to 5 %. Same four schemes as Fig. 8; same qualitative
// ordering (NC0 degrades fastest; NC1/NC2 robust).
#include "common.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 9", "Throughput vs burst loss parameter P");
  std::printf("paper: NC0 declines with P; NC1/NC2 retain high throughput\n\n");
  std::printf("%10s %10s %10s %10s %10s\n", "P(%)", "NC0", "NC1", "NC2",
              "Non-NC");

  for (const double p : {0.0, 0.01, 0.02, 0.03, 0.04, 0.05}) {
    double vals[4];
    for (int r = 0; r < 3; ++r) {
      ButterflyRunConfig cfg;
      cfg.redundancy = r;
      cfg.burst_loss_p = p;
      cfg.duration_s = 3.0;
      vals[r] = run_nc_butterfly(cfg).goodput_mbps;
    }
    ButterflyRunConfig cfg;
    cfg.burst_loss_p = p;
    cfg.duration_s = 3.0;
    vals[3] = run_tree_butterfly(cfg).goodput_mbps;
    std::printf("%10.0f %10.2f %10.2f %10.2f %10.2f\n", p * 100, vals[0],
                vals[1], vals[2], vals[3]);
  }
  return 0;
}
