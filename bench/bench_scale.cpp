// bench_scale — multi-worker engine scaling curve plus a 10^5-receiver
// aggregate scenario, emitted as JSON (tools/bench_scale.sh captures it
// into BENCH_scale.json).
//
//   bench_scale [--shards <n>] [--duration <s>] [--aggregate-sessions <n>]
//               [--group <receivers-per-node>]
//
// Part 1: <n> disjoint copies of the Fig. 6 butterfly run to <s>
// simulated seconds under 1/2/4/8 workers; wall-clock per worker count
// and speedup vs the inline single-worker reference. The merged metrics
// of every run are byte-compared against the reference — the bench
// aborts if parallelism changed anything observable, so the numbers it
// prints are only ever measured on correct runs.
//
// Part 2: the paper argues NC VNFs suit CDN-scale distribution; 10^5
// individually simulated receivers is out of reach for one event queue,
// so receiver NODES model aggregate groups of co-located receivers
// (paper Sec. V's many-client story): sessions x 2 receiver nodes x
// group size = total receivers modeled. Reported: wall clock, events,
// bottleneck goodput.
//
// Speedup depends on the host — the JSON records host_cores; a 1-core
// container will honestly report ~1.0x.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "coding/strparse.hpp"

#include "app/config.hpp"
#include "app/shard.hpp"
#include "ctrl/problem.hpp"
#include "graph/topology.hpp"
#include "netsim/worker.hpp"

using namespace ncfn;

namespace {

template <typename T>
T arg_num(const char* flag, const char* value) {
  const auto v = coding::parse_num<T>(value);
  if (!v) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return *v;
}

double wall_ms(const std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double, std::milli>(dt).count();
}

/// `copies` disjoint butterflies (Fig. 6 geometry, one session each) in
/// one scenario — partition_sessions splits it into `copies` shards.
app::Scenario make_butterflies(std::size_t copies) {
  app::Scenario s;
  s.alpha = 0;
  for (std::size_t k = 0; k < copies; ++k) {
    const std::string p = "S" + std::to_string(k) + ".";
    auto host = [&](const char* name) {
      graph::NodeInfo n;
      n.name = p + name;
      n.kind = graph::NodeKind::kHost;
      const graph::NodeIdx idx = s.topo.add_node(n);
      s.nodes[n.name] = idx;
      return idx;
    };
    auto dc = [&](const char* name) {
      graph::NodeInfo n;
      n.name = p + name;
      n.kind = graph::NodeKind::kDataCenter;
      n.bin_bps = n.bout_bps = n.vnf_capacity_bps = 200e6;
      const graph::NodeIdx idx = s.topo.add_node(n);
      s.nodes[n.name] = idx;
      return idx;
    };
    const auto v1 = host("V1"), o2 = host("O2"), c2 = host("C2");
    const auto o1 = dc("O1"), c1 = dc("C1"), t = dc("T"), v2 = dc("V2");
    s.topo.add_edge(v1, o1, 0.030, 35e6);
    s.topo.add_edge(v1, c1, 0.025, 35e6);
    s.topo.add_edge(o1, o2, 0.015, 35e6);
    s.topo.add_edge(c1, c2, 0.012, 35e6);
    s.topo.add_edge(o1, t, 0.020, 35e6);
    s.topo.add_edge(c1, t, 0.017, 35e6);
    s.topo.add_edge(t, v2, 0.018, 35e6);
    s.topo.add_edge(v2, o2, 0.021, 35e6);
    s.topo.add_edge(v2, c2, 0.019, 35e6);
    s.topo.add_edge(o2, v1, 0.0454, 10e6);  // feedback return paths
    s.topo.add_edge(c2, v1, 0.0385, 10e6);
    ctrl::SessionSpec spec;
    spec.id = static_cast<coding::SessionId>(k + 1);
    spec.source = v1;
    spec.receivers = {o2, c2};
    spec.lmax_s = 0.150;
    s.sessions.push_back(spec);
  }
  return s;
}

struct TimedRun {
  double ms = 0;
  std::uint64_t events = 0;
  std::string metrics;
  double min_goodput_mbps = 0;
};

TimedRun timed_run(const app::Scenario& scenario,
                   const ctrl::DeploymentPlan& plan, std::size_t workers,
                   double duration_s) {
  const auto t0 = std::chrono::steady_clock::now();
  app::ShardedRunOptions opts;
  opts.workers = workers;
  opts.duration_s = duration_s;
  app::ShardedScenarioRun run(scenario, plan, opts);
  run.run();
  TimedRun out;
  out.ms = wall_ms(t0);
  out.events = run.events_executed();
  out.metrics = run.metrics_json();
  bool first = true;
  for (const app::ReceiverReport& r : run.reports()) {
    if (first || r.goodput_mbps < out.min_goodput_mbps) {
      out.min_goodput_mbps = r.goodput_mbps;
    }
    first = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t shards = 8;
  double duration = 2.0;
  std::size_t agg_sessions = 50;
  std::size_t group = 1000;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--shards") == 0) {
      shards = arg_num<std::size_t>("--shards", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--duration") == 0) {
      duration = arg_num<double>("--duration", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--aggregate-sessions") == 0) {
      agg_sessions = arg_num<std::size_t>("--aggregate-sessions", argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--group") == 0) {
      group = arg_num<std::size_t>("--group", argv[i + 1]);
    }
  }

  // ---- Part 1: worker scaling on `shards` disjoint butterflies ----
  const app::Scenario scenario = make_butterflies(shards);
  ctrl::DeploymentProblem prob;
  prob.topo = &scenario.topo;
  prob.sessions = scenario.sessions;
  prob.alpha = scenario.alpha;
  const auto plan = ctrl::solve_deployment(prob);
  if (!plan.feasible) {
    std::fprintf(stderr, "no feasible deployment for the scaling scenario\n");
    return 1;
  }

  std::printf("{\n  \"bench\": \"scale\",\n  \"host_cores\": %zu,\n",
              netsim::WorkerPool::hardware_workers());
  std::printf("  \"shards\": %zu,\n  \"duration_s\": %.3f,\n", shards,
              duration);
  std::printf("  \"scaling\": [\n");
  const TimedRun ref = timed_run(scenario, plan, 1, duration);
  const std::size_t counts[] = {1, 2, 4, 8};
  for (std::size_t i = 0; i < std::size(counts); ++i) {
    const TimedRun r = counts[i] == 1 ? ref
                                      : timed_run(scenario, plan, counts[i],
                                                  duration);
    if (r.metrics != ref.metrics) {
      // Never report a speedup from a run that diverged — that would be
      // measuring a different (broken) computation.
      std::fprintf(stderr, "FATAL: %zu-worker metrics diverge from 1-worker\n",
                   counts[i]);
      return 1;
    }
    std::printf(
        "    {\"workers\": %zu, \"wall_ms\": %.1f, \"speedup\": %.2f, "
        "\"events\": %llu}%s\n",
        counts[i], r.ms, ref.ms / (r.ms > 0 ? r.ms : 1e-9),
        static_cast<unsigned long long>(r.events),
        i + 1 == std::size(counts) ? "" : ",");
  }
  std::printf("  ],\n");

  // ---- Part 2: 10^5-receiver aggregate scenario ----
  const app::Scenario agg = make_butterflies(agg_sessions);
  ctrl::DeploymentProblem agg_prob;
  agg_prob.topo = &agg.topo;
  agg_prob.sessions = agg.sessions;
  agg_prob.alpha = agg.alpha;
  const auto agg_plan = ctrl::solve_deployment(agg_prob);
  if (!agg_plan.feasible) {
    std::fprintf(stderr, "no feasible deployment for the aggregate scenario\n");
    return 1;
  }
  const std::size_t agg_workers = netsim::WorkerPool::hardware_workers();
  const TimedRun r = timed_run(agg, agg_plan, agg_workers, 1.0);
  std::printf("  \"aggregate\": {\n");
  std::printf("    \"receivers_modeled\": %zu,\n", agg_sessions * 2 * group);
  std::printf("    \"sessions\": %zu,\n    \"receiver_nodes\": %zu,\n",
              agg_sessions, agg_sessions * 2);
  std::printf("    \"group_per_node\": %zu,\n    \"workers\": %zu,\n", group,
              agg_workers);
  std::printf("    \"wall_ms\": %.1f,\n    \"events\": %llu,\n", r.ms,
              static_cast<unsigned long long>(r.events));
  std::printf("    \"min_goodput_mbps\": %.2f\n  }\n}\n", r.min_goodput_mbps);
  return 0;
}
