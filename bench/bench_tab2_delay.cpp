// Table II — "Delay comparison."
//
// Three measurements per receiver, as in Sec. V.B.2:
//   (1) ping RTT on the direct Internet path (90.85/77.01 ms in the paper);
//   (2) round trip of the first generation over the relayed path
//       V1 -> C1 -> T -> V2 -> receiver with network coding in place
//       (~168 ms in the paper);
//   (3) the same relayed path with relays directly forwarding
//       (~167 ms — coding adds only 0.9-1.5 %).
// "We allow each receiver to send an acknowledge directly back to the
// source once it has successfully received the (decoded) first
// generation"; the return path mirrors the relayed route's delay.
//
// The coding overhead on the relayed path comes from packet
// synchronization (a recoding relay holds an emission until the
// generation reaches full rank) plus per-packet GF(2^8) work — both are
// modeled, so the delta is small and positive, as in the paper.
#include <algorithm>

#include "app/provider.hpp"
#include "app/receiver.hpp"
#include "app/source.hpp"
#include "common.hpp"
#include "vnf/coding_vnf.hpp"

namespace {

using namespace ncfn;

struct ChainResult {
  double rtt_s = -1;
};

/// One unicast transfer down the relay chain; relays either recode or
/// forward. Returns the first-generation round trip seen by the source.
ChainResult run_chain(bool with_coding, double feedback_jitter_s) {
  netsim::Network net(1);
  const auto v1 = net.add_node("V1:source");
  const auto c1 = net.add_node("C1");
  const auto t = net.add_node("T");
  const auto v2 = net.add_node("V2");
  const auto rx = net.add_node("receiver");

  auto link = [&](netsim::NodeId a, netsim::NodeId b, double delay) {
    netsim::LinkConfig lc;
    lc.capacity_bps = 35e6;
    lc.prop_delay = delay;
    net.add_link(a, b, lc);
  };
  link(v1, c1, 0.025);
  link(c1, t, 0.017);
  link(t, v2, 0.018);
  link(v2, rx, 0.021);
  // ACK return path: same length as the forward relay route (the paper's
  // acknowledgements ride the Internet back), plus measurement jitter.
  link(rx, v1, 0.081 + feedback_jitter_s);

  coding::CodingParams params;
  app::SyntheticProvider provider(3, 64 * params.generation_bytes(), params);

  app::SourceConfig scfg;
  scfg.session = 1;
  scfg.params = params;
  scfg.lambda_mbps = 35.0;
  scfg.redundancy = 0;
  app::McSource source(net, v1, provider, scfg);
  source.configure_hops({{ctrl::NextHop{c1, scfg.data_port}, 35.0}});

  const ctrl::VnfRole role =
      with_coding ? ctrl::VnfRole::kRecode : ctrl::VnfRole::kForward;
  vnf::VnfConfig vcfg;
  vcfg.params = params;
  std::vector<std::unique_ptr<vnf::CodingVnf>> relays;
  const netsim::NodeId chain[3] = {c1, t, v2};
  const netsim::NodeId next[3] = {t, v2, rx};
  for (int i = 0; i < 3; ++i) {
    vcfg.seed = static_cast<std::uint32_t>(10 + i);
    auto relay = std::make_unique<vnf::CodingVnf>(net, chain[i], vcfg);
    relay->configure_session(1, role, scfg.data_port);
    relay->set_next_hops(
        1, {vnf::NextHopRate{ctrl::NextHop{next[i], scfg.data_port}, 1.0}});
    relays.push_back(std::move(relay));
  }

  app::ReceiverConfig rcfg;
  rcfg.session = 1;
  rcfg.params = params;
  rcfg.data_port = scfg.data_port;
  rcfg.source_node = v1;
  rcfg.source_feedback_port = scfg.feedback_port;
  rcfg.enable_repair = false;
  rcfg.vnf = vcfg;
  app::McReceiver receiver(net, rx, provider, rcfg);

  receiver.start();
  source.start();
  net.sim().run_until(2.0);

  ChainResult r;
  const auto& acks = source.stats().first_gen_ack_rtt;
  if (auto it = acks.find(rx); it != acks.end()) r.rtt_s = it->second;
  return r;
}

struct Acc {
  double mn = 1e9, mx = 0, sum = 0;
  int n = 0;
  void add(double v) {
    if (v < 0) return;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
    ++n;
  }
  [[nodiscard]] double avg() const { return n > 0 ? sum / n : -1; }
};

}  // namespace

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Tab. II",
               "Delay comparison: direct ping vs relayed first-generation RTT");
  std::printf("paper: direct 90.9 / 77.0 ms; relayed w/ coding 168.8 / 168.2 ms;\n");
  std::printf("       relayed w/o coding 167.3 / 166.5 ms (coding adds 0.9-1.5%%)\n\n");

  // Direct pings (coded-packet-sized probes on the direct Internet paths).
  const auto bd = app::scenarios::butterfly(true);
  coding::CodingParams params;
  app::SimNet sim(bd.topo);
  const auto ping_o2 = sim.net().ping_rtt(
      sim.node(bd.source), sim.node(bd.recv_o2), params.packet_bytes());
  const auto ping_c2 = sim.net().ping_rtt(
      sim.node(bd.source), sim.node(bd.recv_c2), params.packet_bytes());

  Acc coded, plain;
  for (int run = 0; run < 8; ++run) {
    const double jitter = 0.0002 * run;  // 0 - 1.4 ms of path jitter
    coded.add(run_chain(/*with_coding=*/true, jitter).rtt_s);
    plain.add(run_chain(/*with_coding=*/false, jitter).rtt_s);
  }

  std::printf("%-26s %10s %10s %10s\n", "", "min(ms)", "max(ms)", "avg(ms)");
  std::printf("%-26s %10.2f %10.2f %10.2f   (receiver O2)\n",
              "Direct path (ping)", *ping_o2 * 1e3, *ping_o2 * 1e3,
              *ping_o2 * 1e3);
  std::printf("%-26s %10.2f %10.2f %10.2f   (receiver C2)\n\n",
              "Direct path (ping)", *ping_c2 * 1e3, *ping_c2 * 1e3,
              *ping_c2 * 1e3);
  std::printf("%-26s %10.2f %10.2f %10.2f\n", "Relayed path w/ coding",
              coded.mn * 1e3, coded.mx * 1e3, coded.avg() * 1e3);
  std::printf("%-26s %10.2f %10.2f %10.2f\n", "Relayed path w/o coding",
              plain.mn * 1e3, plain.mx * 1e3, plain.avg() * 1e3);
  std::printf("%-26s %+10.1f%%  (paper: +0.9%% to +1.5%%)\n",
              "coding delay overhead",
              (coded.avg() / plain.avg() - 1.0) * 100);
  return 0;
}
