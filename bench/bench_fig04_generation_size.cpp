// Fig. 4 — "A comparison among generation sizes; each block = 1460 bytes."
//
// The paper sweeps the number of blocks per generation on the butterfly
// multicast and observes throughput peaking at 4 blocks and plunging past
// 16. The mechanisms reproduced here:
//   * g = 1 degenerates coding into per-generation routing — the
//     bottleneck carries unmixed traffic, capping throughput near the
//     routing-only rate;
//   * small g amortizes the per-generation ramp (the first packet of a
//     generation is forwarded unmixed) poorly;
//   * large g makes the per-packet coding work (one elimination pass plus
//     one recode pass, ~2*g*block_size GF muladds) exceed the VNF's
//     processing rate C(v), collapsing throughput.
#include "common.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 4", "Throughput vs blocks per generation (butterfly)");
  std::printf("paper: peak ~68 Mbps at 4 blocks; ~45 Mbps at 128; plunge past 16\n\n");
  std::printf("%10s %18s %10s\n", "blocks", "throughput(Mbps)", "repairs");

  double peak = 0;
  std::size_t peak_g = 0;
  for (const std::size_t g : {1, 2, 4, 8, 16, 32, 64, 128}) {
    ButterflyRunConfig cfg;
    cfg.params.generation_blocks = g;
    cfg.params.block_size = 1460;
    cfg.duration_s = 3.0;
    cfg.redundancy = 0;
    const auto r = run_nc_butterfly(cfg);
    std::printf("%10zu %18.2f %10llu\n", g, r.goodput_mbps,
                static_cast<unsigned long long>(r.repair_requests));
    if (r.goodput_mbps > peak) {
      peak = r.goodput_mbps;
      peak_g = g;
    }
  }
  std::printf("\nmeasured peak: %.2f Mbps at %zu blocks per generation\n", peak,
              peak_g);
  return 0;
}
