// Fig. 12 — "Total multicast throughput when Lmax increases."
//
// Six sessions, scaling disabled, Lmax swept 75-200 ms. Larger Lmax
// admits more feasible paths, so throughput is non-decreasing; beyond
// some point (the paper finds 150 ms) newly admitted paths no longer
// contribute and the curve saturates.
#include <random>

#include "common.hpp"
#include "ctrl/controller.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 12", "Total throughput vs maximum tolerable delay Lmax");
  std::printf("paper: grows from ~1170 at 75 ms, saturates ~1330 past 150 ms\n\n");
  std::printf("%12s %20s %8s\n", "Lmax(ms)", "throughput(Mbps)", "#VNFs");

  // Static setting (the paper disables the scaling algorithm): all six
  // sessions are solved jointly at each Lmax value.
  const auto net = app::scenarios::six_datacenters();
  for (const double lmax_ms : {75, 100, 125, 150, 175, 200}) {
    ctrl::DeploymentProblem prob;
    prob.topo = &net.topo;
    prob.alpha = 20.0;
    prob.path_limits.max_paths = 24;
    std::mt19937 rng(31);  // identical session mix per Lmax value
    std::set<graph::NodeIdx> used_hosts;
    for (coding::SessionId id = 1; id <= 6; ++id) {
      prob.sessions.push_back(app::scenarios::random_session(
          net, id, rng, lmax_ms / 1e3, &used_hosts));
    }
    const auto plan = ctrl::solve_deployment(prob);
    std::printf("%12.0f %20.1f %8d\n", lmax_ms,
                plan.total_throughput_mbps(), plan.total_vnfs());
  }
  return 0;
}
