// Fig. 13 — "Multicast throughput and # of VNFs when alpha increases."
//
// Alpha converts VNF count into Mbps-equivalent cost in objective (2).
// Alpha = 0 reduces (2) to pure throughput maximization; as alpha grows
// the optimizer deploys fewer VNFs and throughput falls; at alpha = 200
// the paper observes the system "refuses to launch any new VNF" — the
// deployment cost outweighs any throughput it could add.
#include <random>

#include "common.hpp"
#include "ctrl/controller.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 13", "Throughput & #VNFs vs the tradeoff factor alpha");
  std::printf("paper: both decrease in alpha; zero VNFs at alpha = 200\n\n");
  std::printf("%10s %20s %8s\n", "alpha", "throughput(Mbps)", "#VNFs");

  // Static joint solve of all six sessions at each alpha.
  const auto net = app::scenarios::six_datacenters();
  for (const double alpha : {0.0, 10.0, 20.0, 50.0, 75.0, 100.0, 150.0, 200.0}) {
    ctrl::DeploymentProblem prob;
    prob.topo = &net.topo;
    prob.alpha = alpha;
    prob.path_limits.max_paths = 24;
    std::mt19937 rng(31);  // identical session mix per alpha
    std::set<graph::NodeIdx> used_hosts;
    for (coding::SessionId id = 1; id <= 6; ++id) {
      prob.sessions.push_back(app::scenarios::random_session(
          net, id, rng, 0.150, &used_hosts));
    }
    const auto plan = ctrl::solve_deployment(prob);
    std::printf("%10.0f %20.1f %8d\n", alpha, plan.total_throughput_mbps(),
                plan.total_vnfs());
  }
  return 0;
}
