// Ablation — relay emission policy (DESIGN.md data-plane refinement).
//
// The paper's relay "generates an encoded packet immediately after it
// receives a packet" (Sec. III.B.2). On paths with different delays, a
// merge relay's early arrivals all come from the faster path, so strict
// per-arrival emission sends packets confined to that path's subspace —
// useless to the receiver that already holds it. Our data plane defers an
// earned emission until the generation reaches full rank (or a hold
// timeout). This bench quantifies that choice on the butterfly, sweeping
// the hold timeout; hold = 0 is the strict per-arrival policy.
#include "common.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Ablation", "Relay emission: strict pipeline vs rank-hold");
  std::printf("%14s %18s %12s\n", "hold (ms)", "throughput(Mbps)", "repairs");

  for (const double hold_ms : {0.0, 5.0, 20.0, 50.0, 100.0}) {
    ButterflyRunConfig cfg;
    cfg.recode_hold_s = hold_ms / 1e3;
    cfg.duration_s = 3.0;
    const auto r = run_nc_butterfly(cfg);
    std::printf("%14.0f %18.2f %12llu\n", hold_ms, r.goodput_mbps,
                static_cast<unsigned long long>(r.repair_requests));
  }
  std::printf("\nstrict per-arrival emission (hold=0) starves the "
              "later-arriving path's\nreceiver on skewed paths; a ~1 "
              "generation-time hold recovers the coding gain\n");
  return 0;
}
