// Shared helpers for the figure/table reproduction harnesses.
//
// Each bench binary reproduces one table or figure from the paper's
// evaluation (Sec. V) and prints the same rows/series the paper reports,
// plus the paper's reference numbers where useful. Absolute Mbps depend
// on the simulated substrate; the *shape* (ordering, crossovers,
// saturation points) is the reproduction target — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "app/baseline.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "app/scenarios.hpp"
#include "ctrl/problem.hpp"
#include "netsim/loss.hpp"

namespace ncfn::bench {

inline ctrl::SessionSpec butterfly_session(const app::scenarios::Butterfly& b) {
  ctrl::SessionSpec spec;
  spec.id = 1;
  spec.source = b.source;
  spec.receivers = {b.recv_o2, b.recv_c2};
  spec.lmax_s = 0.150;
  return spec;
}

inline ctrl::DeploymentPlan plan_butterfly(const app::scenarios::Butterfly& b) {
  ctrl::DeploymentProblem prob;
  prob.topo = &b.topo;
  prob.alpha = 0.0;
  prob.sessions.push_back(butterfly_session(b));
  return ctrl::solve_deployment(prob);
}

struct ButterflyRunConfig {
  coding::CodingParams params;       // generation/block/buffer sizes
  int redundancy = 0;                // NC0/NC1/NC2
  double uniform_loss = 0.0;         // on the T->V2 bottleneck
  double burst_loss_p = 0.0;         // paper burst model parameter P
  double duration_s = 4.0;
  double recode_hold_s = 0.050;      // 0 = strict per-arrival pipeline
  double proc_rate_Bps = 4e8;      // VNF coding capacity model
  std::uint32_t seed = 7;
};

struct ButterflyRunResult {
  double goodput_mbps = 0.0;  // min over the two receivers
  double rx_goodput[2] = {0, 0};
  std::uint64_t repair_requests = 0;
  std::uint64_t verify_failures = 0;
  double first_gen_ack_rtt[2] = {-1, -1};  // seconds, per receiver
};

/// Run one NC multicast session on the Fig. 6 butterfly.
inline ButterflyRunResult run_nc_butterfly(const ButterflyRunConfig& cfg) {
  const auto b = app::scenarios::butterfly(false);
  const auto plan = plan_butterfly(b);
  app::SyntheticProvider provider(
      cfg.seed,
      static_cast<std::size_t>(80e6 / 8 * (cfg.duration_s + 5)),
      cfg.params);

  app::SimNet sim(b.topo);
  if (cfg.uniform_loss > 0) {
    sim.link(b.bottleneck)
        ->set_loss_model(
            std::make_unique<netsim::UniformLoss>(cfg.uniform_loss));
  } else if (cfg.burst_loss_p > 0) {
    sim.link(b.bottleneck)
        ->set_loss_model(
            std::make_unique<netsim::BurstLoss>(cfg.burst_loss_p));
  }
  app::SessionWiring wiring;
  wiring.vnf.params = cfg.params;
  wiring.vnf.recode_hold_s = cfg.recode_hold_s;
  wiring.vnf.proc_rate_Bps = cfg.proc_rate_Bps;
  wiring.redundancy = cfg.redundancy;
  wiring.repair_timeout_s = 0.3;
  wiring.sample_interval_s = 0.5;
  wiring.seed = cfg.seed + 11;
  app::NcMulticastSession session(sim, plan, 0, butterfly_session(b),
                                  provider, wiring);
  session.receiver(0).set_verify(&provider);
  session.receiver(1).set_verify(&provider);
  session.start();
  sim.net().sim().run_until(cfg.duration_s);

  ButterflyRunResult r;
  r.goodput_mbps = session.session_goodput_mbps();
  for (int k = 0; k < 2; ++k) {
    r.rx_goodput[k] = session.receiver(static_cast<std::size_t>(k)).goodput_mbps();
  }
  // Session-wide totals come from the shared metrics registry — the same
  // numbers every other consumer (ncfn-run --metrics-out, tests) sees.
  r.repair_requests = sim.metrics().counter_value("app.repair_requests_sent");
  r.verify_failures = sim.metrics().counter_value("app.verify_failures");
  int k = 0;
  for (const auto& [node, rtt] : session.source().stats().first_gen_ack_rtt) {
    if (k < 2) r.first_gen_ack_rtt[k++] = rtt;
  }
  return r;
}

/// Run one routing-only (Non-NC) session on the butterfly.
inline ButterflyRunResult run_tree_butterfly(const ButterflyRunConfig& cfg) {
  const auto b = app::scenarios::butterfly(false);
  const auto packing = app::pack_trees(b.topo, b.source,
                                       {b.recv_o2, b.recv_c2}, 0.150);
  app::SyntheticProvider provider(
      cfg.seed,
      static_cast<std::size_t>(60e6 / 8 * (cfg.duration_s + 5)),
      cfg.params);
  app::SimNet sim(b.topo);
  if (cfg.uniform_loss > 0) {
    sim.link(b.bottleneck)
        ->set_loss_model(
            std::make_unique<netsim::UniformLoss>(cfg.uniform_loss));
  } else if (cfg.burst_loss_p > 0) {
    sim.link(b.bottleneck)
        ->set_loss_model(
            std::make_unique<netsim::BurstLoss>(cfg.burst_loss_p));
  }
  app::SessionWiring wiring;
  wiring.vnf.params = cfg.params;
  wiring.vnf.proc_rate_Bps = cfg.proc_rate_Bps;
  wiring.repair_timeout_s = 0.3;
  wiring.sample_interval_s = 0.5;
  wiring.seed = cfg.seed + 13;
  app::TreeMulticastSession session(sim, packing, butterfly_session(b),
                                    provider, wiring);
  session.start();
  sim.net().sim().run_until(cfg.duration_s);

  ButterflyRunResult r;
  r.goodput_mbps = session.session_goodput_mbps();
  for (int k = 0; k < 2; ++k) {
    r.rx_goodput[k] = session.receiver(static_cast<std::size_t>(k)).goodput_mbps();
  }
  r.repair_requests = sim.metrics().counter_value("app.repair_requests_sent");
  int k = 0;
  for (const auto& [node, rtt] : session.source().stats().first_gen_ack_rtt) {
    if (k < 2) r.first_gen_ack_rtt[k++] = rtt;
  }
  return r;
}

inline void print_header(const char* fig, const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", fig, title);
  std::printf("==================================================================\n");
}

}  // namespace ncfn::bench
