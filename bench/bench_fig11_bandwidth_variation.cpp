// Fig. 11 — "Total multicast throughput and # of VNFs in case of
// bandwidth variation."
//
// Six sessions run; every 20 minutes the per-VM bandwidth of a randomly
// chosen in-use data center is cut in half (the paper does it with netem).
// Until the cut has persisted tau1 = 10 minutes the controller does not
// react, so during that window the *physical* throughput is the old plan
// clipped by the reduced capacity — that is the dip the paper's curve
// shows. Once Alg. 1 fires, it compares scaling out (more VMs make up for
// the halved per-VM bandwidth) against staying put; usually scale-out
// wins and throughput recovers, but when the added VNF cost outweighs the
// recovered throughput the system deliberately stays degraded — the paper
// observes exactly that on its third cut.
#include <random>

#include "common.hpp"
#include "ctrl/controller.hpp"

namespace {

using namespace ncfn;

/// Physical throughput of the current plan when DC capacities have been
/// cut but the controller has not yet adapted: each session's rate is
/// scaled by the worst capacity ratio over the DCs its flows traverse.
double clipped_throughput_mbps(
    const ctrl::Controller& ctl,
    const std::map<graph::NodeIdx, double>& cut_bin) {
  const ctrl::DeploymentPlan& plan = ctl.plan();
  const graph::Topology& topo = ctl.topology();
  // Per-DC inflow and post-cut capacity.
  std::map<graph::NodeIdx, double> inflow;
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    for (const auto& [e, rate] : plan.edge_rate_mbps[m]) {
      const graph::NodeIdx to = topo.edge(e).to;
      if (topo.node(to).kind == graph::NodeKind::kDataCenter) {
        inflow[to] += rate;
      }
    }
  }
  std::map<graph::NodeIdx, double> scale;
  for (const auto& [v, flow] : inflow) {
    double bin = topo.node(v).bin_bps;
    if (auto it = cut_bin.find(v); it != cut_bin.end()) {
      bin = std::min(bin, it->second);
    }
    const double cap =
        ctl.vnfs_at(v) *
        std::min(bin, topo.node(v).vnf_capacity_bps) / 1e6;
    scale[v] = flow > 1e-9 ? std::min(1.0, cap / flow) : 1.0;
  }
  double total = 0;
  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    double factor = 1.0;
    for (const auto& [e, rate] : plan.edge_rate_mbps[m]) {
      const graph::NodeIdx to = topo.edge(e).to;
      if (auto it = scale.find(to); it != scale.end()) {
        factor = std::min(factor, it->second);
      }
    }
    total += plan.lambda_mbps[m] * factor;
  }
  return total;
}

}  // namespace

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Fig. 11", "Throughput & #VNFs under bandwidth cuts");
  std::printf("paper: throughput dips on each cut, recovers within ~10 min\n");
  std::printf("       unless scaling out would lower objective (2) — third cut\n\n");

  const auto net = app::scenarios::six_datacenters();
  ctrl::Controller::Config cfg;
  // A cost regime where doubling a DC's VM fleet is *barely* worth it, so
  // the objective comparison can genuinely refuse a recovery.
  cfg.alpha = 60.0;
  cfg.tau_s = cfg.tau1_s = cfg.tau2_s = 600.0;
  ctrl::Controller ctl(net.topo, cfg);

  std::mt19937 rng(17);
  std::set<graph::NodeIdx> used_hosts;
  for (coding::SessionId id = 1; id <= 6; ++id) {
    ctl.add_session(
        app::scenarios::random_session(net, id, rng, 0.150, &used_hosts),
        0.0);
  }

  std::map<graph::NodeIdx, double> cut_bin, cut_bout;  // post-cut values
  std::printf("%12s %20s %8s %s\n", "time(min)", "throughput(Mbps)", "#VNFs",
              "event");

  for (int minute = 0; minute <= 70; minute += 10) {
    const double now = minute * 60.0;
    std::string event;
    if (minute == 10 || minute == 30 || minute == 50) {
      std::vector<graph::NodeIdx> used;
      for (const auto& [v, n] : ctl.plan().vnf_count) {
        if (n > 0 && cut_bin.count(v) == 0) used.push_back(v);
      }
      if (!used.empty()) {
        graph::NodeIdx victim =
            used[std::uniform_int_distribution<std::size_t>(
                0, used.size() - 1)(rng)];
        double factor = 2.0;
        if (minute == 50) {
          // The third degradation is severe (to one eighth) and hits the
          // busiest DC, which sources cannot route around. Per-VM
          // bandwidth falls below alpha, so every compensating VM costs
          // more than the throughput it restores — the objective test
          // refuses to scale out and throughput stays degraded (the
          // paper's observation on its third cut).
          factor = 8.0;
          double best_inflow = -1;
          for (const auto& [v, n] : ctl.plan().vnf_count) {
            if (n <= 0 || cut_bin.count(v) > 0) continue;
            double inflow = 0;
            for (std::size_t m = 0; m < ctl.plan().session_ids.size(); ++m) {
              for (const auto& [e, rate] : ctl.plan().edge_rate_mbps[m]) {
                if (ctl.topology().edge(e).to == v) inflow += rate;
              }
            }
            if (inflow > best_inflow) {
              best_inflow = inflow;
              victim = v;
            }
          }
        }
        cut_bin[victim] = ctl.topology().node(victim).bin_bps / factor;
        cut_bout[victim] = ctl.topology().node(victim).bout_bps / factor;
        event = "cut " + ctl.topology().node(victim).name + " to 1/" +
                std::to_string(static_cast<int>(factor));
      }
    }
    // Deliver this probe round's measurements for every cut DC.
    for (const auto& [v, bin] : cut_bin) {
      ctl.report_bandwidth(v, bin, cut_bout[v], now);
    }
    ctl.tick(now);
    // Physical throughput: plan rates clipped by any not-yet-adapted cut.
    const double physical = clipped_throughput_mbps(ctl, cut_bin);
    std::printf("%12d %20.1f %8d %s\n", minute, physical, ctl.alive_vnfs(),
                event.c_str());
  }
  return 0;
}
