// Ablation — reordering tolerance (Sec. III.B.1's rationale for UDP:
// "our system is not concerned with out-of-order packets or the loss of a
// single encoded packet").
//
// Add per-packet jitter (and therefore reordering) to every butterfly
// link and compare: the coded data plane is indifferent — any sufficient
// set of packets decodes a generation — while cumulative-ACK TCP on the
// direct path misreads reordering as loss (duplicate ACKs -> spurious
// fast retransmits and window cuts).
#include "common.hpp"
#include "netsim/tcp.hpp"

namespace {

using namespace ncfn;

double run_nc_with_jitter(double jitter_ms) {
  const auto b = app::scenarios::butterfly(false);
  const auto plan = bench::plan_butterfly(b);
  coding::CodingParams params;
  app::SyntheticProvider provider(7, static_cast<std::size_t>(80e6 / 8 * 8),
                                  params);
  app::SimNet sim(b.topo);
  for (int e = 0; e < b.topo.edge_count(); ++e) {
    sim.link(e)->set_jitter(jitter_ms / 1e3);
  }
  app::SessionWiring wiring;
  wiring.vnf.params = params;
  app::NcMulticastSession session(sim, plan, 0, bench::butterfly_session(b),
                                  provider, wiring);
  session.start();
  sim.net().sim().run_until(4.0);
  return session.session_goodput_mbps();
}

struct TcpResult {
  double goodput_mbps;
  std::uint64_t spurious_retx;
};

TcpResult run_tcp_with_jitter(double jitter_ms) {
  const auto b = app::scenarios::butterfly(true);
  app::SimNet sim(b.topo);
  sim.link(b.direct_o2)->set_jitter(jitter_ms / 1e3);
  const std::size_t bytes = 12 * 1000 * 1000;
  netsim::TcpConfig cfg;
  cfg.initial_ssthresh = 256;
  netsim::TcpTransfer tcp(sim.net(), sim.node(b.source),
                          sim.node(b.recv_o2), 5000, bytes, cfg);
  tcp.start();
  sim.net().sim().run_until(60.0);
  TcpResult r{};
  r.goodput_mbps = tcp.finished() ? tcp.stats().goodput_bps(bytes) / 1e6
                                  : tcp.bytes_acked() * 8.0 / 60.0 / 1e6;
  // With no genuine loss, every retransmission is jitter-induced.
  r.spurious_retx = tcp.stats().retransmissions;
  return r;
}

}  // namespace

int main() {
  using namespace ncfn::bench;
  print_header("Ablation",
               "Reordering (path jitter): coded UDP data plane vs direct TCP");
  std::printf("%12s %14s %18s %14s\n", "jitter(ms)", "NC (Mbps)",
              "TCP direct (Mbps)", "spurious retx");
  for (const double j : {0.0, 1.0, 3.0, 10.0}) {
    const double nc = run_nc_with_jitter(j);
    const auto tcp = run_tcp_with_jitter(j);
    std::printf("%12.0f %14.2f %18.2f %14llu\n", j, nc, tcp.goodput_mbps,
                static_cast<unsigned long long>(tcp.spurious_retx));
  }
  std::printf("\nreordering is invisible to the generation decoder; TCP "
              "misreads it as loss —\nthe paper's rationale for running the "
              "coding layer over UDP (Sec. III.B.1)\n");
  return 0;
}
