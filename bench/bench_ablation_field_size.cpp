// Ablation — field size (Sec. III.B.1).
//
// The paper fixes GF(2^8) "observed to enable the maximum throughput
// among all field sizes" (citing Chou et al. and Airlift). This bench
// re-derives the comparison with the field-generic codec:
//   * coding throughput (encode + decode wall-clock, MB/s of payload);
//   * linear-dependency overhead: extra packets needed per generation
//     (small fields produce dependent combinations more often);
//   * per-packet header overhead (coefficient bytes per block).
#include <chrono>
#include <random>

#include "coding/generic_codec.hpp"
#include "common.hpp"

namespace {

template <unsigned M>
void run_field(const char* name) {
  using Field = ncfn::gf::Field<M>;
  using Elem = typename Field::Elem;
  Field field;
  std::mt19937 rng(7);

  const std::size_t g = 4;
  const std::size_t block_bytes = 1460;
  const std::size_t elems = block_bytes / sizeof(Elem);
  std::uniform_int_distribution<unsigned> d(0, Field::kMax);

  // Dependency overhead + throughput over many generations.
  const int generations = 300;
  std::size_t total_packets = 0;
  double seconds = 0;
  for (int gen = 0; gen < generations; ++gen) {
    std::vector<std::vector<Elem>> blocks(g);
    for (auto& b : blocks) {
      b.resize(elems);
      for (auto& e : b) e = static_cast<Elem>(d(rng));
    }
    const auto t0 = std::chrono::steady_clock::now();
    ncfn::coding::GenericEncoder<M> enc(field, blocks);
    ncfn::coding::GenericDecoder<M> dec(field, g, elems);
    while (!dec.complete()) {
      dec.add(enc.encode_random(rng));
      ++total_packets;
    }
    auto out = dec.recover();
    const auto t1 = std::chrono::steady_clock::now();
    seconds += std::chrono::duration<double>(t1 - t0).count();
    if (out != blocks) std::printf("!! %s: corruption\n", name);
  }
  const double payload_mb =
      static_cast<double>(generations) * g * block_bytes / 1e6;
  const double extra_pct =
      (static_cast<double>(total_packets) / (generations * g) - 1.0) * 100;
  std::printf("%-10s %16.1f %18.2f %16zu\n", name, payload_mb / seconds,
              extra_pct, sizeof(Elem) * g);
}

}  // namespace

int main() {
  using namespace ncfn::bench;
  print_header("Ablation", "Field size: GF(2^4) vs GF(2^8) vs GF(2^16)");
  std::printf("paper fixes GF(2^8) as the throughput-maximizing field\n\n");
  std::printf("%-10s %16s %18s %16s\n", "field", "codec MB/s",
              "extra pkts (%)", "coeff bytes");
  run_field<4>("GF(2^4)");
  run_field<8>("GF(2^8)");
  run_field<16>("GF(2^16)");
  std::printf("\nGF(2^8): near-zero dependency overhead at full table-driven "
              "speed;\nGF(2^4) wastes packets on dependencies, GF(2^16) pays "
              "log/exp arithmetic\n");
  return 0;
}
