// Sec. V.C.5 — "Delay Overhead for VNF Launch and Update."
//
// Three cases measured in the paper, averaged over ten runs:
//   (i)   launching a new VM instance            ~35 s
//   (ii)  starting a coding function on a VM     ~376 ms
//   (iii) updating a 10-entry forwarding table   78-311 ms
// Launching a VM is ~100x slower than starting a coding function, which
// justifies the tau-delayed shutdown + reuse design. We reproduce the
// ordering with the daemon's provisioning model plus jitter.
#include <random>

#include "common.hpp"
#include "vnf/daemon.hpp"

int main() {
  using namespace ncfn;
  using namespace ncfn::bench;
  print_header("Sec. V.C.5", "VNF launch / start / table-update overhead");
  std::printf("paper: VM launch 35 s; coding-function start 376.21 ms;\n");
  std::printf("       table update 78-311 ms (Table III)\n\n");

  std::mt19937 rng(5);
  std::normal_distribution<double> vm_jitter(0.0, 2.0);
  std::normal_distribution<double> start_jitter(0.0, 0.020);

  double vm_sum = 0, start_sum = 0, update_sum = 0;
  const int runs = 10;
  for (int i = 0; i < runs; ++i) {
    netsim::Network net(static_cast<std::uint32_t>(100 + i));
    const auto node = net.add_node("relay");
    vnf::DaemonConfig dcfg;
    dcfg.vm_launch_s = 35.0 + vm_jitter(rng);
    dcfg.vnf_start_s = 0.376 + start_jitter(rng);
    vnf::VnfDaemon daemon(net, node, dcfg);

    vm_sum += dcfg.vm_launch_s;

    // (ii) coding-function start: signal -> ready event.
    const double before = net.sim().now();
    daemon.handle_signal(ctrl::NcVnfStart{0, 1});
    net.sim().run();
    start_sum += net.sim().now() - before;

    // (iii) full 10-entry table install.
    ctrl::ForwardingTable tab;
    for (coding::SessionId s = 1; s <= 10; ++s) {
      tab.set(s, {ctrl::NextHop{s, static_cast<std::uint16_t>(20000 + s)}});
    }
    daemon.handle_signal(ctrl::NcForwardTab{tab});
    update_sum += daemon.stats().last_table_update_cost_s;
    net.sim().run();
  }

  std::printf("%-38s %12.2f s\n", "(i)   VM instance launch (avg of 10)",
              vm_sum / runs);
  std::printf("%-38s %12.2f ms\n", "(ii)  coding-function start (avg of 10)",
              start_sum / runs * 1e3);
  std::printf("%-38s %12.2f ms\n", "(iii) 10-entry table update (avg of 10)",
              update_sum / runs * 1e3);
  std::printf("\nVM launch / function start ratio: %.0fx (paper: ~100x)\n",
              (vm_sum / runs) / (start_sum / runs));
  return 0;
}
