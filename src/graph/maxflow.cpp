#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace ncfn::graph {

void FlowGraph::add_arc(int from, int to, double capacity) {
  arcs_.push_back(Arc{to, capacity, head_[static_cast<std::size_t>(from)]});
  head_[static_cast<std::size_t>(from)] = static_cast<int>(arcs_.size() - 1);
  arcs_.push_back(Arc{from, 0.0, head_[static_cast<std::size_t>(to)]});
  head_[static_cast<std::size_t>(to)] = static_cast<int>(arcs_.size() - 1);
}

double FlowGraph::max_flow(int s, int t) {
  constexpr double kEps = 1e-12;
  double total = 0.0;
  const int n = node_count();
  std::vector<int> prev_arc(static_cast<std::size_t>(n));
  while (true) {
    // BFS for a shortest augmenting path.
    std::fill(prev_arc.begin(), prev_arc.end(), -1);
    std::queue<int> q;
    q.push(s);
    prev_arc[static_cast<std::size_t>(s)] = -2;
    while (!q.empty() && prev_arc[static_cast<std::size_t>(t)] == -1) {
      const int u = q.front();
      q.pop();
      for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
           a = arcs_[static_cast<std::size_t>(a)].next) {
        const Arc& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap > kEps &&
            prev_arc[static_cast<std::size_t>(arc.to)] == -1) {
          prev_arc[static_cast<std::size_t>(arc.to)] = a;
          q.push(arc.to);
        }
      }
    }
    if (prev_arc[static_cast<std::size_t>(t)] == -1) break;

    // Bottleneck along the path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int v = t; v != s;) {
      const int a = prev_arc[static_cast<std::size_t>(v)];
      bottleneck = std::min(bottleneck, arcs_[static_cast<std::size_t>(a)].cap);
      v = arcs_[static_cast<std::size_t>(a ^ 1)].to;
    }
    for (int v = t; v != s;) {
      const int a = prev_arc[static_cast<std::size_t>(v)];
      arcs_[static_cast<std::size_t>(a)].cap -= bottleneck;
      arcs_[static_cast<std::size_t>(a ^ 1)].cap += bottleneck;
      v = arcs_[static_cast<std::size_t>(a ^ 1)].to;
    }
    total += bottleneck;
  }
  return total;
}

FlowGraph build_flow_graph(const Topology& topo, bool apply_node_caps) {
  FlowGraph g(2 * topo.node_count());
  for (int i = 0; i < topo.node_count(); ++i) {
    const NodeInfo& ni = topo.node(i);
    double internal = kInf;
    if (apply_node_caps && ni.kind == NodeKind::kDataCenter) {
      internal = std::min(ni.bin_bps, ni.bout_bps);
    }
    g.add_arc(2 * i, 2 * i + 1, internal);
  }
  for (int e = 0; e < topo.edge_count(); ++e) {
    const EdgeInfo& ei = topo.edge(e);
    g.add_arc(2 * ei.from + 1, 2 * ei.to, ei.capacity_bps);
  }
  return g;
}

double st_max_flow(const Topology& topo, NodeIdx s, NodeIdx t,
                   bool apply_node_caps) {
  FlowGraph g = build_flow_graph(topo, apply_node_caps);
  return g.max_flow(2 * s + 1, 2 * t);
}

double multicast_capacity(const Topology& topo, NodeIdx source,
                          const std::vector<NodeIdx>& receivers,
                          bool apply_node_caps) {
  double cap = kInf;
  for (NodeIdx r : receivers) {
    cap = std::min(cap, st_max_flow(topo, source, r, apply_node_caps));
  }
  return cap;
}

}  // namespace ncfn::graph
