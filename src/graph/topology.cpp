#include "graph/topology.hpp"

namespace ncfn::graph {

NodeIdx Topology::add_node(NodeInfo info) {
  nodes_.push_back(std::move(info));
  out_.emplace_back();
  return static_cast<NodeIdx>(nodes_.size() - 1);
}

EdgeIdx Topology::add_edge(NodeIdx from, NodeIdx to, double delay_s,
                           double capacity_bps) {
  edges_.push_back(EdgeInfo{from, to, delay_s, capacity_bps});
  const auto e = static_cast<EdgeIdx>(edges_.size() - 1);
  out_.at(static_cast<std::size_t>(from)).push_back(e);
  return e;
}

EdgeIdx Topology::find_edge(NodeIdx from, NodeIdx to) const {
  for (EdgeIdx e : out_.at(static_cast<std::size_t>(from))) {
    if (edges_[static_cast<std::size_t>(e)].to == to) return e;
  }
  return -1;
}

std::vector<NodeIdx> Topology::data_centers() const {
  std::vector<NodeIdx> out;
  for (int i = 0; i < node_count(); ++i) {
    if (nodes_[static_cast<std::size_t>(i)].kind == NodeKind::kDataCenter) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace ncfn::graph
