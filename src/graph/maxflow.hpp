// Edmonds–Karp max-flow, used for the theoretical multicast capacity
// reference in Sec. V.B.1: "We can compute the theoretical maximal
// throughput of the multicast session using the Ford–Fulkerson algorithm,
// which is 69.9 Mbps" — with network coding, the achievable multicast rate
// equals the minimum over receivers of the source→receiver max-flow
// (Ahlswede et al.).
#pragma once

#include <vector>

#include "graph/topology.hpp"

namespace ncfn::graph {

/// Standalone capacity graph for flow computation.
class FlowGraph {
 public:
  explicit FlowGraph(int num_nodes) : head_(static_cast<std::size_t>(num_nodes), -1) {}

  /// Add a directed arc with the given capacity (residual arc added
  /// automatically with zero capacity).
  void add_arc(int from, int to, double capacity);

  /// Max-flow value from s to t (Edmonds–Karp / BFS augmenting paths).
  /// Mutates residual capacities; call on a fresh copy per query.
  [[nodiscard]] double max_flow(int s, int t);

  [[nodiscard]] int node_count() const { return static_cast<int>(head_.size()); }

 private:
  struct Arc {
    int to;
    double cap;
    int next;  // next arc out of the same node
  };
  std::vector<Arc> arcs_;
  std::vector<int> head_;
};

/// Build a flow graph from a topology using edge capacities, splitting
/// each data-center node v into v_in → v_out with capacity
/// `vnf_throughput_cap(v)` (pass kInf for the pure edge-capacity bound).
/// Node i maps to (2i, 2i+1) = (in, out); hosts get an infinite internal
/// arc.
[[nodiscard]] FlowGraph build_flow_graph(const Topology& topo,
                                         bool apply_node_caps);

/// Source→receiver max-flow in the (node-split) graph.
[[nodiscard]] double st_max_flow(const Topology& topo, NodeIdx s, NodeIdx t,
                                 bool apply_node_caps = false);

/// Theoretical coded multicast capacity: min over receivers of the
/// source→receiver max-flow.
[[nodiscard]] double multicast_capacity(const Topology& topo, NodeIdx source,
                                        const std::vector<NodeIdx>& receivers,
                                        bool apply_node_caps = false);

}  // namespace ncfn::graph
