#include "graph/paths.hpp"

#include <algorithm>

namespace ncfn::graph {

namespace {
struct DfsState {
  const Topology& topo;
  NodeIdx dst;
  double lmax;
  const PathSearchLimits& limits;
  std::vector<bool> visited;
  std::vector<NodeIdx> nodes;
  std::vector<EdgeIdx> edges;
  double delay = 0.0;
  std::size_t expansions = 0;
  std::vector<Path> found;
};

void dfs(DfsState& s, NodeIdx at) {
  if (s.expansions++ > s.limits.max_expansions) return;
  if (at == s.dst) {
    s.found.push_back(Path{s.nodes, s.edges, s.delay});
    return;
  }
  for (EdgeIdx e : s.topo.out_edges(at)) {
    const EdgeInfo& ei = s.topo.edge(e);
    if (!ei.up) continue;  // failed edge: no feasible path crosses it
    const NodeIdx next = ei.to;
    if (s.visited[static_cast<std::size_t>(next)]) continue;
    if (s.delay + ei.delay_s > s.lmax) continue;
    // Interior nodes must be data centers; the destination is exempt.
    if (next != s.dst &&
        s.topo.node(next).kind != NodeKind::kDataCenter) {
      continue;
    }
    s.visited[static_cast<std::size_t>(next)] = true;
    s.nodes.push_back(next);
    s.edges.push_back(e);
    s.delay += ei.delay_s;
    dfs(s, next);
    s.delay -= ei.delay_s;
    s.edges.pop_back();
    s.nodes.pop_back();
    s.visited[static_cast<std::size_t>(next)] = false;
  }
}
}  // namespace

std::vector<Path> feasible_paths(const Topology& topo, NodeIdx src,
                                 NodeIdx dst, double lmax_s,
                                 const PathSearchLimits& limits) {
  DfsState s{topo, dst, lmax_s, limits,
             std::vector<bool>(static_cast<std::size_t>(topo.node_count()),
                               false),
             {}, {}, 0.0, 0, {}};
  s.visited[static_cast<std::size_t>(src)] = true;
  s.nodes.push_back(src);
  dfs(s, src);
  std::sort(s.found.begin(), s.found.end(),
            [](const Path& a, const Path& b) { return a.delay_s < b.delay_s; });
  if (s.found.size() > limits.max_paths) s.found.resize(limits.max_paths);
  return s.found;
}

}  // namespace ncfn::graph
