// Feasible-path enumeration (Sec. IV.A, "Feasible paths").
//
// "Given the set of candidate data centers V, we can decide all feasible
// paths (whose end-to-end delay is no larger than Lmax_m) between the
// source and each destination ... by running a modified depth-first-search
// ... as long as the path currently obtained has a delay smaller than
// Lmax_m and has no cycles."
//
// Interior nodes of a relayed path must be data centers (a flow cannot be
// relayed through another session's host). The direct source→destination
// edge, if present and within the delay bound, is always included. Paths
// are returned sorted by delay; `max_paths` caps the set (the paper notes
// candidate DC counts of 5–20 keep this search small).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/topology.hpp"

namespace ncfn::graph {

struct Path {
  std::vector<NodeIdx> nodes;  // src, relays..., dst
  std::vector<EdgeIdx> edges;  // nodes.size() - 1 edges
  double delay_s = 0.0;

  [[nodiscard]] bool uses_edge(EdgeIdx e) const {
    for (EdgeIdx x : edges) {
      if (x == e) return true;
    }
    return false;
  }
  [[nodiscard]] bool uses_node(NodeIdx n) const {
    for (NodeIdx x : nodes) {
      if (x == n) return true;
    }
    return false;
  }
};

struct PathSearchLimits {
  std::size_t max_paths = 32;       // keep the lowest-delay paths
  std::size_t max_expansions = 100000;  // DFS safety valve
};

/// All simple src→dst paths with total delay <= lmax_s whose interior
/// nodes are data centers, lowest delay first, truncated to limits.
[[nodiscard]] std::vector<Path> feasible_paths(const Topology& topo,
                                               NodeIdx src, NodeIdx dst,
                                               double lmax_s,
                                               const PathSearchLimits& limits = {});

}  // namespace ncfn::graph
