// Controller-side overlay model (Sec. IV.A).
//
// Nodes are cloud data centers (candidate VNF locations, set V), session
// sources and receivers; directed edges E are the Internet paths between
// them with time-varying delay L(e). Per the formulation, bandwidth caps
// live at nodes: Bin(v)/Bout(v) per deployed VM, and C(v) is the maximum
// coding rate of one VNF in data center v. Edges may optionally carry a
// capacity of their own (an extension used to express per-link bottlenecks
// like the butterfly topology's T→V2 link; default +infinity preserves the
// paper's exact formulation).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace ncfn::graph {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

using NodeIdx = int;
using EdgeIdx = int;

enum class NodeKind { kDataCenter, kHost };  // hosts: sources / receivers

struct NodeInfo {
  std::string name;
  NodeKind kind = NodeKind::kHost;
  double bin_bps = kInf;   // inbound bandwidth cap per VM at this node
  double bout_bps = kInf;  // outbound bandwidth cap per VM
  double vnf_capacity_bps = kInf;  // C(v): max coding rate of one VNF
};

struct EdgeInfo {
  NodeIdx from = -1;
  NodeIdx to = -1;
  double delay_s = 0.0;        // L(e)
  double capacity_bps = kInf;  // optional per-link cap (extension)
  bool up = true;  // failed edges stay in the graph but carry no paths
};

class Topology {
 public:
  NodeIdx add_node(NodeInfo info);
  EdgeIdx add_edge(NodeIdx from, NodeIdx to, double delay_s,
                   double capacity_bps = kInf);

  [[nodiscard]] int node_count() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int edge_count() const { return static_cast<int>(edges_.size()); }
  [[nodiscard]] const NodeInfo& node(NodeIdx i) const {
    return nodes_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] NodeInfo& node(NodeIdx i) {
    return nodes_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const EdgeInfo& edge(EdgeIdx e) const {
    return edges_.at(static_cast<std::size_t>(e));
  }
  [[nodiscard]] EdgeInfo& edge(EdgeIdx e) {
    return edges_.at(static_cast<std::size_t>(e));
  }
  /// Outgoing edge indices of a node.
  [[nodiscard]] const std::vector<EdgeIdx>& out_edges(NodeIdx i) const {
    return out_.at(static_cast<std::size_t>(i));
  }
  /// Edge from→to if present, else -1.
  [[nodiscard]] EdgeIdx find_edge(NodeIdx from, NodeIdx to) const;

  /// All data-center node indices.
  [[nodiscard]] std::vector<NodeIdx> data_centers() const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<EdgeInfo> edges_;
  std::vector<std::vector<EdgeIdx>> out_;
};

}  // namespace ncfn::graph
