#include "netsim/tcp.hpp"

#include <algorithm>
#include <cassert>

#include "coding/byteview.hpp"

namespace ncfn::netsim {

namespace {
// 8-byte sequence number rides in the payload; the rest is padding up to
// the segment size so the link charges realistic serialization time.
std::vector<std::uint8_t> encode_seq(std::uint64_t seq, std::size_t size) {
  std::vector<std::uint8_t> out(std::max<std::size_t>(size, 8), 0);
  coding::ByteWriter w(out);
  w.u64(seq);
  return out;
}
std::uint64_t decode_seq(const std::vector<std::uint8_t>& p) {
  coding::ByteView v(p);
  return v.u64();  // short probe payloads sticky-fail to sequence 0
}
}  // namespace

TcpTransfer::TcpTransfer(Network& net, NodeId src, NodeId dst, Port port,
                         std::size_t total_bytes, const TcpConfig& cfg,
                         std::function<void(const TcpStats&)> on_complete)
    : net_(net),
      src_(src),
      dst_(dst),
      data_port_(port),
      ack_port_(static_cast<Port>(port + 1)),
      cfg_(cfg),
      on_complete_(std::move(on_complete)),
      total_segments_((total_bytes + cfg.mss - 1) / cfg.mss),
      ssthresh_(cfg.initial_ssthresh) {
  assert(total_segments_ > 0);
}

TcpTransfer::~TcpTransfer() {
  net_.unbind(dst_, data_port_);
  net_.unbind(src_, ack_port_);
}

void TcpTransfer::start() {
  assert(!started_);
  started_ = true;
  net_.bind(dst_, data_port_, [this](const Datagram& d) { on_data(d); });
  net_.bind(src_, ack_port_, [this](const Datagram& d) {
    if (!finished_) on_ack(decode_seq(d.payload));
  });
  send_window();
}

void TcpTransfer::send_window() {
  const auto wnd = static_cast<Seq>(
      std::min(cwnd_, static_cast<double>(cfg_.receiver_window)));
  while (snd_nxt_ < total_segments_ && snd_nxt_ < snd_una_ + wnd) {
    send_segment(snd_nxt_, /*is_retransmit=*/false);
    ++snd_nxt_;
  }
  if (!rto_armed_ && snd_una_ < snd_nxt_) arm_rto();
}

void TcpTransfer::send_segment(Seq seq, bool is_retransmit) {
  ++stats_.segments_sent;
  if (is_retransmit) {
    ++stats_.retransmissions;
    retransmitted_.insert(seq);
  } else if (timed_sent_at_ < 0 && retransmitted_.count(seq) == 0) {
    timed_seq_ = seq;
    timed_sent_at_ = net_.sim().now();
  }
  Datagram d;
  d.src = src_;
  d.dst = dst_;
  d.dst_port = data_port_;
  d.payload = encode_seq(seq, cfg_.mss);
  net_.send(std::move(d));
}

void TcpTransfer::on_data(const Datagram& d) {
  const Seq seq = decode_seq(d.payload);
  if (seq == rcv_nxt_) {
    ++rcv_nxt_;
    while (out_of_order_.count(rcv_nxt_)) {
      out_of_order_.erase(rcv_nxt_);
      ++rcv_nxt_;
    }
  } else if (seq > rcv_nxt_) {
    out_of_order_.insert(seq);
  }
  Datagram ack;
  ack.src = dst_;
  ack.dst = src_;
  ack.dst_port = ack_port_;
  ack.payload = encode_seq(rcv_nxt_, 40);  // ACK-sized segment
  net_.send(std::move(ack));
}

void TcpTransfer::on_ack(Seq cumulative_ack) {
  if (cumulative_ack > snd_una_) {
    // New data acknowledged.
    if (timed_sent_at_ >= 0 && cumulative_ack > timed_seq_) {
      const Time sample = net_.sim().now() - timed_sent_at_;
      timed_sent_at_ = -1;
      if (!rtt_seeded_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
        rtt_seeded_ = true;
      } else {
        rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
        srtt_ = 0.875 * srtt_ + 0.125 * sample;
      }
      rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
    }
    const Seq newly = cumulative_ack - snd_una_;
    snd_una_ = cumulative_ack;
    dup_acks_ = 0;
    for (Seq s = snd_una_ > newly ? snd_una_ - newly : 0; s < snd_una_; ++s) {
      retransmitted_.erase(s);
    }
    if (in_recovery_) {
      if (snd_una_ >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: another segment from the same window was
        // lost; retransmit the new front hole immediately instead of
        // waiting for three more duplicates (or the RTO).
        send_segment(snd_una_, /*is_retransmit=*/true);
      }
    }
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly);  // slow start
      } else {
        cwnd_ += static_cast<double>(newly) / cwnd_;  // AIMD
      }
    }
    if (rto_armed_) {
      net_.sim().cancel(rto_event_);
      rto_armed_ = false;
    }
    if (snd_una_ >= total_segments_) {
      complete();
      return;
    }
    arm_rto();
    send_window();
  } else if (cumulative_ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + recovery.
      ++stats_.fast_retransmits;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3;
      in_recovery_ = true;
      recovery_point_ = snd_nxt_;
      send_segment(snd_una_, /*is_retransmit=*/true);
      if (rto_armed_) net_.sim().cancel(rto_event_);
      rto_armed_ = false;
      arm_rto();
    } else if (in_recovery_) {
      cwnd_ += 1;  // inflate
      send_window();
    }
  }
}

void TcpTransfer::arm_rto() {
  rto_event_ = net_.sim().schedule(rto_, [this] {
    rto_armed_ = false;
    if (!finished_) on_rto();
  });
  rto_armed_ = true;
}

void TcpTransfer::on_rto() {
  ++stats_.timeouts;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  timed_sent_at_ = -1;
  rto_ = std::min(rto_ * 2, cfg_.max_rto);
  snd_nxt_ = snd_una_;  // go-back-N restart from the hole
  send_segment(snd_nxt_, /*is_retransmit=*/true);
  ++snd_nxt_;
  arm_rto();
}

void TcpTransfer::complete() {
  finished_ = true;
  stats_.completion_time = net_.sim().now();
  if (rto_armed_) {
    net_.sim().cancel(rto_event_);
    rto_armed_ = false;
  }
  if (on_complete_) on_complete_(stats_);
}

}  // namespace ncfn::netsim
