// Time-varying link properties: replay a capacity (or delay) schedule on
// a simulated link — the mechanism behind the paper's Tab. I measurements
// ("It is common for data centers to set a bandwidth cap ... which can be
// time varying as well according to our measurements") and the netem-
// driven bandwidth cuts of Fig. 11.
#pragma once

#include <utility>
#include <vector>

#include "netsim/network.hpp"

namespace ncfn::netsim {

/// A piecewise-constant schedule of (time, value) steps. Values apply
/// from their timestamp until the next step.
using Schedule = std::vector<std::pair<Time, double>>;

/// Install a capacity schedule on a link: at each step time the link's
/// bandwidth cap changes to the step value (bps). Steps must be sorted by
/// time and in the future. Already-queued transmissions keep their old
/// timing, like a token-bucket reconfiguration.
void apply_capacity_schedule(Network& net, Link& link, Schedule steps);

/// Same for the propagation delay (route changes on the Internet path).
void apply_delay_schedule(Network& net, Link& link, Schedule steps);

/// One outage: the link (or node) is down over [at, at + duration).
struct Outage {
  Time at = 0;
  Time duration = 0;
};

/// A deterministic failure schedule: sorted, non-overlapping outages,
/// replayed by the simulator exactly like capacity/delay schedules.
using FailureSchedule = std::vector<Outage>;

/// Install a link failure schedule: at each outage start the link goes
/// down (in-flight packets are lost), at start + duration it comes back.
void apply_failure_schedule(Network& net, Link& link,
                            const FailureSchedule& outages);

/// Same for a whole machine: every link incident to `node` flaps with it.
void apply_node_failure_schedule(Network& net, NodeId node,
                                 const FailureSchedule& outages);

/// Seedable random outages over [0, horizon): exponential inter-arrival
/// with mean `mean_interval_s`, exponential duration with mean
/// `mean_duration_s`, truncated so outages never overlap. Deterministic
/// for a given seed.
[[nodiscard]] FailureSchedule random_outages(Time horizon,
                                             double mean_interval_s,
                                             double mean_duration_s,
                                             std::uint32_t seed);

/// Build an AR(1) mean-reverting trace around `nominal`:
///   v_{t+1} = reversion * v_t + (1 - reversion) * nominal + N(0, sigma)
/// sampled every `interval_s` for `steps` samples — the shape of the
/// paper's measured per-VM bandwidth in Tab. I.
[[nodiscard]] Schedule ar1_trace(double nominal, double sigma,
                                 double reversion, Time interval_s,
                                 std::size_t steps, std::uint32_t seed);

}  // namespace ncfn::netsim
