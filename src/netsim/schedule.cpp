#include "netsim/schedule.hpp"

#include <random>

namespace ncfn::netsim {

// Schedules hold weak handles so a link replaced (Network::add_link on an
// existing pair) or removed mid-run just stops reacting instead of
// dangling.
void apply_capacity_schedule(Network& net, Link& link, Schedule steps) {
  for (const auto& [at, bps] : steps) {
    net.sim().schedule_at(at, [w = link.weak_from_this(), v = bps] {
      if (auto l = w.lock()) l->set_capacity_bps(v);
    });
  }
}

void apply_delay_schedule(Network& net, Link& link, Schedule steps) {
  for (const auto& [at, delay] : steps) {
    net.sim().schedule_at(at, [w = link.weak_from_this(), v = delay] {
      if (auto l = w.lock()) l->set_prop_delay(v);
    });
  }
}

void apply_failure_schedule(Network& net, Link& link,
                            const FailureSchedule& outages) {
  for (const auto& o : outages) {
    net.sim().schedule_at(o.at, [w = link.weak_from_this()] {
      if (auto l = w.lock()) l->set_up(false);
    });
    net.sim().schedule_at(o.at + o.duration, [w = link.weak_from_this()] {
      if (auto l = w.lock()) l->set_up(true);
    });
  }
}

void apply_node_failure_schedule(Network& net, NodeId node,
                                 const FailureSchedule& outages) {
  for (const auto& o : outages) {
    net.sim().schedule_at(o.at, [&net, node] { net.set_node_up(node, false); });
    net.sim().schedule_at(o.at + o.duration,
                          [&net, node] { net.set_node_up(node, true); });
  }
}

FailureSchedule random_outages(Time horizon, double mean_interval_s,
                               double mean_duration_s, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::exponential_distribution<double> gap(1.0 / mean_interval_s);
  std::exponential_distribution<double> dur(1.0 / mean_duration_s);
  FailureSchedule out;
  Time t = 0;
  while (true) {
    t += gap(rng);
    if (t >= horizon) break;
    Time d = dur(rng);
    if (t + d > horizon) d = horizon - t;  // truncate at the horizon
    out.push_back({t, d});
    t += d;  // next inter-arrival starts after recovery: no overlap
  }
  return out;
}

Schedule ar1_trace(double nominal, double sigma, double reversion,
                   Time interval_s, std::size_t steps, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> shock(0.0, sigma);
  Schedule out;
  out.reserve(steps);
  double v = nominal;
  for (std::size_t i = 0; i < steps; ++i) {
    out.emplace_back(static_cast<Time>(i) * interval_s, v);
    v = reversion * v + (1.0 - reversion) * nominal + shock(rng);
    if (v < 0) v = 0;
  }
  return out;
}

}  // namespace ncfn::netsim
