#include "netsim/schedule.hpp"

#include <random>

namespace ncfn::netsim {

void apply_capacity_schedule(Network& net, Link& link, Schedule steps) {
  for (const auto& [at, bps] : steps) {
    net.sim().schedule_at(at, [&link, v = bps] { link.set_capacity_bps(v); });
  }
}

void apply_delay_schedule(Network& net, Link& link, Schedule steps) {
  for (const auto& [at, delay] : steps) {
    net.sim().schedule_at(at, [&link, v = delay] { link.set_prop_delay(v); });
  }
}

Schedule ar1_trace(double nominal, double sigma, double reversion,
                   Time interval_s, std::size_t steps, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> shock(0.0, sigma);
  Schedule out;
  out.reserve(steps);
  double v = nominal;
  for (std::size_t i = 0; i < steps; ++i) {
    out.emplace_back(static_cast<Time>(i) * interval_s, v);
    v = reversion * v + (1.0 - reversion) * nominal + shock(rng);
    if (v < 0) v = 0;
  }
  return out;
}

}  // namespace ncfn::netsim
