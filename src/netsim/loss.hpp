// Packet-loss models, the netem substitute (Sec. V.B.3).
//
// The paper emulates (a) i.i.d. uniform loss at rates 0–50 % and (b) burst
// loss where "the loss rate of the n-th packet is P_n = 25% x P_{n-1} + P"
// with P_0 = 0 and P in 0–5 %. Both are provided here, plus a classic
// two-state Gilbert–Elliott model for extra failure-injection coverage.
#pragma once

#include <memory>
#include <random>

namespace ncfn::netsim {

/// Decides, per packet, whether the link drops it.
class LossModel {
 public:
  virtual ~LossModel() = default;
  /// Returns true if the packet should be dropped.
  virtual bool drop(std::mt19937& rng) = 0;
};

/// Never drops.
class NoLoss final : public LossModel {
 public:
  bool drop(std::mt19937&) override { return false; }
};

/// I.i.d. Bernoulli loss with fixed rate.
class UniformLoss final : public LossModel {
 public:
  explicit UniformLoss(double rate) : rate_(rate) {}
  bool drop(std::mt19937& rng) override {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < rate_;
  }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
};

/// The paper's burst model: P_n = 0.25 * P_{n-1} + P, P_0 = 0.
/// After a drop the loss probability spikes (the 0.25 carry-over decays a
/// burst geometrically); stationary per-packet rate works out near
/// P / (1 - 0.25) for small P.
class BurstLoss final : public LossModel {
 public:
  explicit BurstLoss(double p) : p_(p) {}
  bool drop(std::mt19937& rng) override {
    pn_ = 0.25 * pn_ + p_;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < pn_;
  }

 private:
  double p_;
  double pn_ = 0.0;
};

/// Two-state Gilbert–Elliott channel (good/bad), for failure injection.
class GilbertElliottLoss final : public LossModel {
 public:
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_good, double loss_bad)
      : p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        loss_good_(loss_good),
        loss_bad_(loss_bad) {}
  bool drop(std::mt19937& rng) override {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    // Sample the loss in the *current* state, then transition: the n-th
    // packet sees the state reached after n-1 packets. Transitioning
    // first made the first packet of every burst draw from the wrong
    // state and skewed the stationary loss rate.
    const bool dropped = u(rng) < (good_ ? loss_good_ : loss_bad_);
    if (good_) {
      if (u(rng) < p_gb_) good_ = false;
    } else {
      if (u(rng) < p_bg_) good_ = true;
    }
    return dropped;
  }

 private:
  double p_gb_, p_bg_, loss_good_, loss_bad_;
  bool good_ = true;
};

}  // namespace ncfn::netsim
