#include "netsim/sim.hpp"

#include <algorithm>
#include <cassert>

namespace ncfn::netsim {

EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule into the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  return id;
}

bool Simulator::is_cancelled(EventId id) {
  auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
  if (it == cancelled_.end()) return false;
  cancelled_.erase(it);
  return true;
}

std::size_t Simulator::run_until(Time t_end) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().at <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    if (is_cancelled(ev.id)) {
      if (cancelled_live_ > 0) --cancelled_live_;
      continue;
    }
    now_ = ev.at;
    ev.fn();
    ++executed;
  }
  // Track how many cancelled ids still refer to queued events so empty()
  // stays meaningful.
  cancelled_live_ = cancelled_.size();
  if (queue_.empty()) {
    cancelled_.clear();
    cancelled_live_ = 0;
  }
  if (now_ < t_end && t_end != kForever) now_ = t_end;
  return executed;
}

}  // namespace ncfn::netsim
