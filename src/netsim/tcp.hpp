// Simplified TCP-Reno transfer over the simulator — the paper's
// "Direct TCP" baseline in Fig. 7.
//
// Packet-level Reno: slow start, congestion avoidance, triple-duplicate-ACK
// fast retransmit with window halving, RTO with exponential backoff and
// Karn's rule for RTT sampling. The receiver delivers cumulative ACKs and
// buffers out-of-order segments. Only the qualitative behaviour matters
// for the reproduction (loss- and RTT-limited throughput below the UDP
// route capacity), so flow control / SACK / Nagle are out of scope.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "netsim/network.hpp"

namespace ncfn::netsim {

struct TcpConfig {
  std::size_t mss = 1460;        // payload bytes per segment
  double initial_ssthresh = 64;  // packets
  Time min_rto = 0.2;
  Time max_rto = 60.0;
  std::size_t receiver_window = 4096;  // packets (effectively unlimited)
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  Time completion_time = 0;
  [[nodiscard]] double goodput_bps(std::size_t total_bytes) const {
    return completion_time > 0
               ? static_cast<double>(total_bytes) * 8.0 / completion_time
               : 0.0;
  }
};

/// One unidirectional bulk transfer src→dst over their direct link pair.
/// Construct, then call start(); `on_complete` fires (in sim time) when the
/// last byte is cumulatively acknowledged.
class TcpTransfer {
 public:
  TcpTransfer(Network& net, NodeId src, NodeId dst, Port port,
              std::size_t total_bytes, const TcpConfig& cfg = {},
              std::function<void(const TcpStats&)> on_complete = nullptr);
  ~TcpTransfer();

  TcpTransfer(const TcpTransfer&) = delete;
  TcpTransfer& operator=(const TcpTransfer&) = delete;

  void start();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const TcpStats& stats() const { return stats_; }
  /// Bytes cumulatively acknowledged so far.
  [[nodiscard]] std::size_t bytes_acked() const {
    return static_cast<std::size_t>(snd_una_) * cfg_.mss;
  }

 private:
  using Seq = std::uint64_t;

  void send_window();
  void send_segment(Seq seq, bool is_retransmit);
  void on_ack(Seq cumulative_ack);
  void on_data(const Datagram& d);       // receiver side
  void arm_rto();
  void on_rto();
  void complete();

  Network& net_;
  NodeId src_, dst_;
  Port data_port_, ack_port_;
  TcpConfig cfg_;
  std::function<void(const TcpStats&)> on_complete_;

  Seq total_segments_;
  Seq snd_una_ = 0;   // oldest unacked segment
  Seq snd_nxt_ = 0;   // next segment to send
  double cwnd_ = 1.0;     // packets
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  Seq recovery_point_ = 0;

  // RTT estimation (RFC 6298 style).
  Time srtt_ = 0, rttvar_ = 0, rto_ = 1.0;
  bool rtt_seeded_ = false;
  Seq timed_seq_ = 0;
  Time timed_sent_at_ = -1;  // -1: no sample in flight
  std::set<Seq> retransmitted_;  // Karn: never time retransmitted segments

  EventId rto_event_ = 0;
  bool rto_armed_ = false;

  // Receiver state.
  Seq rcv_nxt_ = 0;
  std::set<Seq> out_of_order_;

  bool started_ = false;
  bool finished_ = false;
  TcpStats stats_;
};

}  // namespace ncfn::netsim
