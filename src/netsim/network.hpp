// Simulated overlay network: nodes (VMs / end hosts) joined by directed
// links (inter-data-center Internet paths).
//
// A link models what the paper measures on EC2/Linode paths: a bandwidth
// cap (time-varying, cf. Tab. I), a propagation delay (time-varying, for
// Alg. 2's delay-change events), a finite FIFO egress queue with tail
// drop, and a netem-style loss model. Datagram service is UDP-like:
// unreliable, in-order per link (a single simulated path), with 28 bytes
// of UDP+IP overhead charged per packet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "netsim/loss.hpp"
#include "netsim/sim.hpp"
#include "obs/obs.hpp"

namespace ncfn::netsim {

using NodeId = std::uint32_t;
using Port = std::uint16_t;

inline constexpr std::size_t kUdpIpOverhead = 28;  // 8 B UDP + 20 B IP

struct Datagram {
  NodeId src = 0;
  NodeId dst = 0;
  Port dst_port = 0;
  std::vector<std::uint8_t> payload;

  [[nodiscard]] std::size_t wire_bytes() const {
    return payload.size() + kUdpIpOverhead;
  }
};

struct LinkConfig {
  double capacity_bps = 100e6;  // bandwidth cap
  Time prop_delay = 0.010;      // one-way propagation delay (s)
  std::size_t queue_packets = 512;  // egress queue limit (tail drop)
  /// Uniform per-packet extra delay in [0, jitter]: Internet path jitter.
  /// Nonzero jitter reorders packets — harmless to the coding data plane
  /// (any sufficient set of packets decodes; Sec. III.B.1's case for UDP)
  /// but poison for cumulative-ACK TCP.
  Time jitter = 0.0;
};

struct LinkStats {
  std::uint64_t offered = 0;        // packets handed to the link
  std::uint64_t delivered = 0;      // packets that reached the far end
  std::uint64_t dropped_loss = 0;   // loss-model drops
  std::uint64_t dropped_queue = 0;  // tail drops
  std::uint64_t dropped_down = 0;   // dropped while (or because) link down
  std::uint64_t in_flight = 0;      // committed to the wire, not yet resolved
  std::uint64_t bytes_delivered = 0;

  /// Packet conservation: every offered packet is exactly one of
  /// delivered, dropped, or still in flight. Checked by the NCFN_AUDIT
  /// teardown pass (obs/audit.hpp).
  [[nodiscard]] bool conserved() const {
    return offered ==
           delivered + dropped_loss + dropped_queue + dropped_down + in_flight;
  }
};

class Network;

/// One directed link. Created and owned by Network (shared so that
/// in-flight delivery events hold weak handles and survive the link
/// being replaced or removed at runtime).
class Link : public std::enable_shared_from_this<Link> {
 public:
  Link(Network& net, NodeId from, NodeId to, const LinkConfig& cfg);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  [[nodiscard]] NodeId from() const { return from_; }
  [[nodiscard]] NodeId to() const { return to_; }
  [[nodiscard]] double capacity_bps() const { return capacity_bps_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }

  /// Change the bandwidth cap at the current simulated time (already
  /// scheduled transmissions keep their old timing, like a shaper change).
  void set_capacity_bps(double bps) { capacity_bps_ = bps; }
  /// Change the propagation delay (route change on the Internet path).
  void set_prop_delay(Time d) { prop_delay_ = d; }
  /// Change the per-packet jitter bound.
  void set_jitter(Time j) { jitter_ = j; }
  /// Install / replace the loss model (nullptr = lossless).
  void set_loss_model(std::unique_ptr<LossModel> m) { loss_ = std::move(m); }

  /// Administrative up/down (outage injection). While down, transmit()
  /// drops every datagram with reason "down"; packets already serialized
  /// or in propagation when the link goes down are lost too (they are
  /// dropped, deterministically, at their scheduled delivery time).
  /// Coming back up does not resurrect anything.
  void set_up(bool up);
  [[nodiscard]] bool is_up() const { return up_; }

  /// Queue a datagram for transmission. Applies loss model and tail drop.
  void transmit(Datagram d);

  /// Queue a burst of datagrams back-to-back. Admission (loss model, tail
  /// drop, down check) and traces stay per-packet, but the burst shares
  /// ONE serializer-departure event (the egress queue shrinks by the whole
  /// burst when its last packet leaves the serializer) and ONE delivery
  /// event with a single jitter draw (all survivors land together, in
  /// order, at the last packet's delivery time) — the deliberate timing
  /// coarsening that buys an O(batch) reduction in simulator events. A
  /// one-packet burst is event-for-event identical to transmit().
  /// Consumes the spanned datagrams (moves their payloads).
  void transmit_burst(std::span<Datagram> burst);

  /// (Re)bind observability handles; nullptr detaches. Called by Network
  /// on creation and whenever the hub is attached.
  void bind_obs(obs::Observability* obs);

 private:
  /// Serializer finished pushing one packet onto the wire: the egress
  /// queue shrinks now, not when the packet lands after propagation.
  void serializer_departure();
  /// Burst variant: the serializer finished the burst's last packet.
  void burst_departure(std::size_t n);
  /// Propagation finished; deliver unless the link went down (epoch
  /// mismatch) while the packet was in flight.
  void complete_delivery(Datagram pkt, std::uint64_t epoch);
  /// Burst variant: deliver (or drop, on epoch mismatch) every survivor.
  void complete_burst_delivery(std::vector<Datagram> pkts,
                               std::uint64_t epoch);

  Network& net_;
  NodeId from_, to_;
  double capacity_bps_;
  Time prop_delay_;
  Time jitter_;
  std::size_t queue_limit_;
  std::unique_ptr<LossModel> loss_;
  Time busy_until_ = 0;  // when the serializer frees up
  std::size_t queued_ = 0;  // packets waiting for / inside the serializer
  bool up_ = true;
  std::uint64_t down_epoch_ = 0;  // bumped on every set_up(false)
  LinkStats stats_;
  // Observability handles (all null, or all live — bound together).
  obs::EventTrace* trace_ = nullptr;
  obs::Counter* m_enqueued_ = nullptr;
  obs::Counter* m_delivered_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_drop_loss_ = nullptr;
  obs::Counter* m_drop_queue_ = nullptr;
  obs::Counter* m_drop_down_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_busy_s_ = nullptr;  // cumulative serialization time
};

/// Handler invoked on datagram arrival at a bound (node, port).
using DatagramHandler = std::function<void(const Datagram&)>;

/// Handler invoked with a whole arriving burst at a bound (node, port).
/// The span is mutable so batch-aware receivers can steal payloads; any
/// payload left behind is recycled by the caller.
using BurstHandler = std::function<void(std::span<Datagram>)>;

class Network {
 public:
  explicit Network(std::uint32_t seed = 1) : rng_(seed) {}

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] std::mt19937& rng() { return rng_; }

  /// Attach (or detach, with nullptr) the observability hub. Existing and
  /// future links register their per-link metrics; components built on
  /// this network (VNFs, endpoints) pick the hub up from here. The hub
  /// must outlive the network.
  void set_obs(obs::Observability* obs);
  [[nodiscard]] obs::Observability* obs() const { return obs_; }

  /// Add a node; returns its id. Names are for diagnostics.
  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const {
    return node_names_.at(id);
  }
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }

  /// Add a directed link. Replaces any existing from→to link; packets in
  /// flight on the replaced link evaporate (their delivery events hold a
  /// weak handle that no longer resolves).
  Link& add_link(NodeId from, NodeId to, const LinkConfig& cfg);
  /// Add a pair of symmetric links.
  void add_duplex_link(NodeId a, NodeId b, const LinkConfig& cfg);

  [[nodiscard]] Link* link(NodeId from, NodeId to);
  [[nodiscard]] const Link* link(NodeId from, NodeId to) const;

  /// Machine-level outage: takes every link incident to `node` down (or
  /// back up) and gates delivery to the node itself. Emits node_down /
  /// node_up trace events around the per-link transitions.
  void set_node_up(NodeId node, bool up);
  [[nodiscard]] bool node_up(NodeId node) const {
    return node >= node_down_.size() || !node_down_[node];
  }

  /// Bind a datagram handler at (node, port); replaces a previous binding.
  void bind(NodeId node, Port port, DatagramHandler handler);
  void unbind(NodeId node, Port port);

  /// Bind a burst handler at (node, port). When present it receives whole
  /// arriving bursts in one call; single deliveries and bursts at ports
  /// without one fall back to the per-datagram handler.
  void bind_burst(NodeId node, Port port, BurstHandler handler);
  void unbind_burst(NodeId node, Port port);

  /// Send a datagram over the direct link src→dst.
  /// Returns false (and drops) if no such link exists.
  bool send(Datagram d);

  /// Send a burst. Consecutive datagrams sharing (src, dst) ride the same
  /// link burst (one lookup, one departure + one delivery event — see
  /// Link::transmit_burst); runs with no link are dropped and recycled.
  void send_burst(std::vector<Datagram>&& burst);

  /// Round-trip time of a small probe on the direct a→b and b→a links:
  /// the `ping` the paper's daemons run periodically. Returns nullopt if
  /// either direction is missing.
  [[nodiscard]] std::optional<Time> ping_rtt(NodeId a, NodeId b,
                                             std::size_t probe_bytes) const;

  /// The `iperf3`-style bandwidth probe: reports the current capacity of
  /// the a→b link perturbed by measurement noise (matching the few-percent
  /// wobble in Tab. I). Returns nullopt if there is no link.
  [[nodiscard]] std::optional<double> probe_bandwidth_bps(NodeId a, NodeId b,
                                                          double noise_frac);

  // Internal: called by Link to hand a datagram to the destination node.
  void deliver(const Datagram& d);
  // Internal: hand a whole burst to the destination node. Consecutive
  // same-port runs go to that port's burst handler in one call when one
  // is bound, else datagram-at-a-time to the ordinary handler.
  void deliver_burst(std::span<Datagram> burst);

  /// Packet-conservation audit: one "<from>-><to>: ..." line per link
  /// whose LinkStats fail conserved(). Empty when every link balances.
  /// SimNet runs this at teardown when audits are enabled.
  [[nodiscard]] std::vector<std::string> audit_conservation() const;

  /// Payload-buffer recycling. take_buffer() hands out an empty vector
  /// whose capacity was earned by an earlier recycled datagram, so the
  /// steady-state send path reuses storage instead of allocating.
  /// recycle_buffer() returns a payload (typically from a consumed or
  /// dropped datagram) to the bounded freelist.
  [[nodiscard]] std::vector<std::uint8_t> take_buffer();
  void recycle_buffer(std::vector<std::uint8_t>&& buf);
  [[nodiscard]] std::size_t recycled_buffers() const {
    return buffer_pool_.size();
  }

 private:
  static constexpr std::size_t kMaxRecycledBuffers = 4096;

  Simulator sim_;
  std::mt19937 rng_;
  obs::Observability* obs_ = nullptr;
  std::vector<std::string> node_names_;
  std::vector<bool> node_down_;  // lazily grown; default everything up
  std::map<std::pair<NodeId, NodeId>, std::shared_ptr<Link>> links_;
  std::map<std::pair<NodeId, Port>, DatagramHandler> handlers_;
  std::map<std::pair<NodeId, Port>, BurstHandler> burst_handlers_;
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
};

}  // namespace ncfn::netsim
