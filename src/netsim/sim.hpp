// Discrete-event simulation core.
//
// This is the substrate that stands in for the paper's EC2/Linode testbed:
// a deterministic event loop with a virtual clock. All network, VNF and
// controller activity in the reproduction is driven from this queue, so
// every experiment is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ncfn::netsim {

/// Simulated time in seconds.
using Time = double;

/// Handle for cancelling a scheduled event.
using EventId = std::uint64_t;

class Simulator {
 public:
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(Time delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedule `fn` at absolute time `t` (t >= now()).
  EventId schedule_at(Time t, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is
  /// a no-op (the common race when a timer and its cause fire together).
  void cancel(EventId id) { cancelled_.push_back(id); }

  /// Run events until the queue drains or the clock passes `t_end`.
  /// Returns the number of events executed.
  std::size_t run_until(Time t_end);

  /// Run until the queue drains entirely.
  std::size_t run() { return run_until(kForever); }

  [[nodiscard]] bool empty() const { return queue_.size() == cancelled_live_; }

  static constexpr Time kForever = 1e18;

 private:
  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;  // FIFO among simultaneous events
    }
  };

  bool is_cancelled(EventId id);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;
  std::size_t cancelled_live_ = 0;  // cancelled events still sitting in queue_
};

}  // namespace ncfn::netsim
