#include "netsim/network.hpp"

#include <cassert>
#include <utility>

namespace ncfn::netsim {

Link::Link(Network& net, NodeId from, NodeId to, const LinkConfig& cfg)
    : net_(net),
      from_(from),
      to_(to),
      capacity_bps_(cfg.capacity_bps),
      prop_delay_(cfg.prop_delay),
      jitter_(cfg.jitter),
      queue_limit_(cfg.queue_packets) {}

void Link::bind_obs(obs::Observability* obs) {
  if (obs == nullptr) {
    trace_ = nullptr;
    m_enqueued_ = m_delivered_ = m_bytes_ = m_drop_loss_ = m_drop_queue_ =
        m_drop_down_ = nullptr;
    m_queue_depth_ = m_busy_s_ = nullptr;
    return;
  }
  trace_ = &obs->trace;
  const std::string prefix = "netsim.link." + std::to_string(from_) + "-" +
                             std::to_string(to_) + ".";
  m_enqueued_ = &obs->metrics.counter(prefix + "enqueued");
  m_delivered_ = &obs->metrics.counter(prefix + "delivered");
  m_bytes_ = &obs->metrics.counter(prefix + "bytes_delivered");
  m_drop_loss_ = &obs->metrics.counter(prefix + "dropped_loss");
  m_drop_queue_ = &obs->metrics.counter(prefix + "dropped_queue");
  m_drop_down_ = &obs->metrics.counter(prefix + "dropped_down");
  m_queue_depth_ = &obs->metrics.gauge(prefix + "queue_depth");
  // Cumulative serializer busy time: utilization over [0, T] is
  // busy_s / T without any per-delivery division on the hot path.
  m_busy_s_ = &obs->metrics.gauge(prefix + "busy_s");
}

void Link::set_up(bool up) {
  if (up == up_) return;
  up_ = up;
  if (!up) ++down_epoch_;  // packets in flight are lost at delivery time
  if (trace_ != nullptr) trace_->link_state(from_, to_, up);
}

void Link::transmit(Datagram d) {
  ++stats_.offered;
  Simulator& sim = net_.sim();

  if (!up_) {
    ++stats_.dropped_down;
    if (m_drop_down_ != nullptr) m_drop_down_->inc();
    if (trace_ != nullptr) {
      trace_->packet_drop(from_, to_, d.wire_bytes(), "down");
    }
    net_.recycle_buffer(std::move(d.payload));
    return;
  }
  if (loss_ && loss_->drop(net_.rng())) {
    ++stats_.dropped_loss;
    if (m_drop_loss_ != nullptr) m_drop_loss_->inc();
    if (trace_ != nullptr) {
      trace_->packet_drop(from_, to_, d.wire_bytes(), "loss");
    }
    net_.recycle_buffer(std::move(d.payload));
    return;
  }
  if (queued_ >= queue_limit_) {
    ++stats_.dropped_queue;
    if (m_drop_queue_ != nullptr) m_drop_queue_->inc();
    if (trace_ != nullptr) {
      trace_->packet_drop(from_, to_, d.wire_bytes(), "queue");
    }
    net_.recycle_buffer(std::move(d.payload));
    return;
  }

  const double bits = static_cast<double>(d.wire_bytes()) * 8.0;
  const Time start = std::max(sim.now(), busy_until_);
  const Time tx = bits / capacity_bps_;
  busy_until_ = start + tx;
  ++queued_;
  if (m_enqueued_ != nullptr) {
    m_enqueued_->inc();
    m_queue_depth_->set(static_cast<double>(queued_));
    m_busy_s_->add(tx);
  }
  if (trace_ != nullptr) {
    trace_->packet_enqueue(from_, to_, d.wire_bytes(), queued_);
  }

  // The egress queue empties when the serializer finishes the packet, not
  // when the packet lands `prop_delay_` later: a long-delay path must not
  // eat queue budget with packets that are already in propagation.
  // Scheduled before the delivery event so that at equal timestamps
  // (zero-delay links) the queue shrinks before delivery is observed.
  sim.schedule_at(busy_until_, [self = weak_from_this()] {
    if (auto link = self.lock()) link->serializer_departure();
  });

  Time deliver_at = busy_until_ + prop_delay_;
  if (jitter_ > 0) {
    deliver_at += std::uniform_real_distribution<Time>(0, jitter_)(net_.rng());
  }
  ++stats_.in_flight;
  // Weak handle: if the link is replaced/removed while the packet is in
  // flight, the packet evaporates instead of touching a dead Link. The
  // Network itself outlives every event (it owns the Simulator).
  sim.schedule_at(deliver_at, [self = weak_from_this(), net = &net_,
                               epoch = down_epoch_,
                               pkt = std::move(d)]() mutable {
    if (auto link = self.lock()) {
      link->complete_delivery(std::move(pkt), epoch);
    } else {
      net->recycle_buffer(std::move(pkt.payload));
    }
  });
}

void Link::transmit_burst(std::span<Datagram> burst) {
  if (burst.empty()) return;
  if (burst.size() == 1) {
    transmit(std::move(burst.front()));
    return;
  }
  Simulator& sim = net_.sim();

  // Per-packet admission, exactly as transmit(): loss model draws happen
  // in arrival order, every drop keeps its own trace line. Survivors move
  // into the burst vector that rides the shared delivery event.
  std::vector<Datagram> committed;
  committed.reserve(burst.size());
  std::uint64_t enqueued = 0;
  double burst_tx = 0.0;
  for (Datagram& d : burst) {
    ++stats_.offered;
    if (!up_) {
      ++stats_.dropped_down;
      if (m_drop_down_ != nullptr) m_drop_down_->inc();
      if (trace_ != nullptr) {
        trace_->packet_drop(from_, to_, d.wire_bytes(), "down");
      }
      net_.recycle_buffer(std::move(d.payload));
      continue;
    }
    if (loss_ && loss_->drop(net_.rng())) {
      ++stats_.dropped_loss;
      if (m_drop_loss_ != nullptr) m_drop_loss_->inc();
      if (trace_ != nullptr) {
        trace_->packet_drop(from_, to_, d.wire_bytes(), "loss");
      }
      net_.recycle_buffer(std::move(d.payload));
      continue;
    }
    if (queued_ >= queue_limit_) {
      ++stats_.dropped_queue;
      if (m_drop_queue_ != nullptr) m_drop_queue_->inc();
      if (trace_ != nullptr) {
        trace_->packet_drop(from_, to_, d.wire_bytes(), "queue");
      }
      net_.recycle_buffer(std::move(d.payload));
      continue;
    }
    const double bits = static_cast<double>(d.wire_bytes()) * 8.0;
    const Time start = std::max(sim.now(), busy_until_);
    busy_until_ = start + bits / capacity_bps_;
    burst_tx += bits / capacity_bps_;
    ++queued_;
    ++enqueued;
    if (trace_ != nullptr) {
      trace_->packet_enqueue(from_, to_, d.wire_bytes(), queued_);
    }
    committed.push_back(std::move(d));
  }
  if (committed.empty()) return;
  const std::size_t n = committed.size();
  if (m_enqueued_ != nullptr) {
    m_enqueued_->inc(enqueued);
    m_queue_depth_->set(static_cast<double>(queued_));
    m_busy_s_->add(burst_tx);
  }

  // One departure for the burst's tail packet (scheduled first, so a
  // zero-delay delivery at the same timestamp observes the drained
  // queue, matching transmit()'s ordering)...
  sim.schedule_at(busy_until_, [self = weak_from_this(), n] {
    if (auto link = self.lock()) link->burst_departure(n);
  });

  // ...and one delivery with a single jitter draw for the whole burst.
  Time deliver_at = busy_until_ + prop_delay_;
  if (jitter_ > 0) {
    deliver_at += std::uniform_real_distribution<Time>(0, jitter_)(net_.rng());
  }
  stats_.in_flight += n;
  sim.schedule_at(deliver_at, [self = weak_from_this(), net = &net_,
                               epoch = down_epoch_,
                               pkts = std::move(committed)]() mutable {
    if (auto link = self.lock()) {
      link->complete_burst_delivery(std::move(pkts), epoch);
    } else {
      for (Datagram& p : pkts) net->recycle_buffer(std::move(p.payload));
    }
  });
}

void Link::serializer_departure() {
  --queued_;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<double>(queued_));
  }
}

void Link::burst_departure(std::size_t n) {
  assert(queued_ >= n);
  queued_ -= n;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->set(static_cast<double>(queued_));
  }
}

void Link::complete_delivery(Datagram pkt, std::uint64_t epoch) {
  --stats_.in_flight;
  if (epoch != down_epoch_) {
    // The link went down after this packet was committed to the wire.
    ++stats_.dropped_down;
    if (m_drop_down_ != nullptr) m_drop_down_->inc();
    if (trace_ != nullptr) {
      trace_->packet_drop(from_, to_, pkt.wire_bytes(), "down");
    }
    net_.recycle_buffer(std::move(pkt.payload));
    return;
  }
  ++stats_.delivered;
  stats_.bytes_delivered += pkt.wire_bytes();
  if (m_delivered_ != nullptr) {
    m_delivered_->inc();
    m_bytes_->inc(pkt.wire_bytes());
  }
  if (trace_ != nullptr) {
    trace_->packet_deliver(from_, to_, pkt.wire_bytes(), queued_);
  }
  net_.deliver(pkt);
  // Handlers see the datagram by const reference (and copy what they
  // keep), so the payload storage can go back to the pool.
  net_.recycle_buffer(std::move(pkt.payload));
}

void Link::complete_burst_delivery(std::vector<Datagram> pkts,
                                   std::uint64_t epoch) {
  stats_.in_flight -= pkts.size();
  if (epoch != down_epoch_) {
    // The link went down while the burst was committed to the wire; every
    // packet in it is lost together.
    stats_.dropped_down += pkts.size();
    if (m_drop_down_ != nullptr) m_drop_down_->inc(pkts.size());
    for (Datagram& p : pkts) {
      if (trace_ != nullptr) {
        trace_->packet_drop(from_, to_, p.wire_bytes(), "down");
      }
      net_.recycle_buffer(std::move(p.payload));
    }
    return;
  }
  std::uint64_t bytes = 0;
  for (const Datagram& p : pkts) {
    ++stats_.delivered;
    stats_.bytes_delivered += p.wire_bytes();
    bytes += p.wire_bytes();
    if (trace_ != nullptr) {
      trace_->packet_deliver(from_, to_, p.wire_bytes(), queued_);
    }
  }
  if (m_delivered_ != nullptr) {
    m_delivered_->inc(pkts.size());
    m_bytes_->inc(bytes);
  }
  net_.deliver_burst(pkts);
  for (Datagram& p : pkts) net_.recycle_buffer(std::move(p.payload));
}

NodeId Network::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  return static_cast<NodeId>(node_names_.size() - 1);
}

Link& Network::add_link(NodeId from, NodeId to, const LinkConfig& cfg) {
  auto link = std::make_shared<Link>(*this, from, to, cfg);
  link->bind_obs(obs_);
  auto& slot = links_[{from, to}];
  // Replacing drops the last strong reference to any previous link; its
  // in-flight delivery events hold weak handles and become no-ops.
  slot = std::move(link);
  return *slot;
}

void Network::set_node_up(NodeId node, bool up) {
  if (node >= node_down_.size()) node_down_.resize(node + 1, false);
  if (node_down_[node] == !up) return;
  node_down_[node] = !up;
  if (obs_ != nullptr) obs_->trace.node_state(node, up);
  for (auto& [key, link] : links_) {
    if (key.first == node || key.second == node) link->set_up(up);
  }
}

void Network::set_obs(obs::Observability* obs) {
  obs_ = obs;
  for (auto& [key, link] : links_) link->bind_obs(obs);
}

void Network::add_duplex_link(NodeId a, NodeId b, const LinkConfig& cfg) {
  add_link(a, b, cfg);
  add_link(b, a, cfg);
}

Link* Network::link(NodeId from, NodeId to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

const Link* Network::link(NodeId from, NodeId to) const {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : it->second.get();
}

void Network::bind(NodeId node, Port port, DatagramHandler handler) {
  handlers_[{node, port}] = std::move(handler);
}

void Network::unbind(NodeId node, Port port) {
  handlers_.erase({node, port});
}

void Network::bind_burst(NodeId node, Port port, BurstHandler handler) {
  burst_handlers_[{node, port}] = std::move(handler);
}

void Network::unbind_burst(NodeId node, Port port) {
  burst_handlers_.erase({node, port});
}

bool Network::send(Datagram d) {
  Link* l = link(d.src, d.dst);
  if (l == nullptr) {
    recycle_buffer(std::move(d.payload));
    return false;
  }
  l->transmit(std::move(d));
  return true;
}

void Network::send_burst(std::vector<Datagram>&& burst) {
  // Consecutive same-(src, dst) runs share one link lookup and one
  // transmit_burst; the common case (a lane flushing to one next hop) is
  // a single run.
  std::size_t i = 0;
  while (i < burst.size()) {
    std::size_t j = i + 1;
    while (j < burst.size() && burst[j].src == burst[i].src &&
           burst[j].dst == burst[i].dst) {
      ++j;
    }
    Link* l = link(burst[i].src, burst[i].dst);
    if (l == nullptr) {
      for (std::size_t k = i; k < j; ++k) {
        recycle_buffer(std::move(burst[k].payload));
      }
    } else {
      l->transmit_burst(std::span<Datagram>(burst).subspan(i, j - i));
    }
    i = j;
  }
  burst.clear();
}

std::vector<std::string> Network::audit_conservation() const {
  std::vector<std::string> violations;
  for (const auto& [key, link] : links_) {
    const LinkStats& s = link->stats();
    if (s.conserved()) continue;
    violations.push_back(
        std::to_string(key.first) + "->" + std::to_string(key.second) +
        ": offered " + std::to_string(s.offered) + " != delivered " +
        std::to_string(s.delivered) + " + dropped " +
        std::to_string(s.dropped_loss + s.dropped_queue + s.dropped_down) +
        " + in_flight " + std::to_string(s.in_flight));
  }
  return violations;
}

std::vector<std::uint8_t> Network::take_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buf = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buf.clear();
  return buf;
}

void Network::recycle_buffer(std::vector<std::uint8_t>&& buf) {
  if (buf.capacity() == 0 || buffer_pool_.size() >= kMaxRecycledBuffers) {
    return;
  }
  buffer_pool_.push_back(std::move(buf));
}

void Network::deliver(const Datagram& d) {
  if (!node_up(d.dst)) return;  // machine down: datagram vanishes
  auto it = handlers_.find({d.dst, d.dst_port});
  if (it != handlers_.end()) it->second(d);
  // No binding: silently dropped, like a closed UDP port.
}

void Network::deliver_burst(std::span<Datagram> burst) {
  if (burst.empty()) return;
  if (!node_up(burst.front().dst)) return;  // one link => one dst node
  std::size_t i = 0;
  while (i < burst.size()) {
    std::size_t j = i + 1;
    while (j < burst.size() && burst[j].dst_port == burst[i].dst_port) ++j;
    if (auto it = burst_handlers_.find({burst[i].dst, burst[i].dst_port});
        it != burst_handlers_.end()) {
      it->second(burst.subspan(i, j - i));
    } else {
      for (std::size_t k = i; k < j; ++k) deliver(burst[k]);
    }
    i = j;
  }
}

std::optional<Time> Network::ping_rtt(NodeId a, NodeId b,
                                      std::size_t probe_bytes) const {
  const Link* fwd = link(a, b);
  const Link* rev = link(b, a);
  if (fwd == nullptr || rev == nullptr) return std::nullopt;
  const double bits = static_cast<double>(probe_bytes + kUdpIpOverhead) * 8.0;
  return fwd->prop_delay() + bits / fwd->capacity_bps() + rev->prop_delay() +
         bits / rev->capacity_bps();
}

std::optional<double> Network::probe_bandwidth_bps(NodeId a, NodeId b,
                                                   double noise_frac) {
  Link* l = link(a, b);
  if (l == nullptr) return std::nullopt;
  std::uniform_real_distribution<double> noise(1.0 - noise_frac,
                                               1.0 + noise_frac);
  return l->capacity_bps() * noise(rng_);
}

}  // namespace ncfn::netsim
