#include "netsim/worker.hpp"

namespace ncfn::netsim {

using common::MutexLock;

std::size_t WorkerPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  if (workers_ == 1) return;  // inline mode: no threads at all
  threads_.reserve(workers_);
  for (std::size_t lane = 0; lane < workers_; ++lane) {
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

WorkerPool::~WorkerPool() {
  if (threads_.empty()) return;
  {
    // stop_ flips under mu_ — the classic lost-wakeup defense: a lane
    // between its predicate check and its cv wait still HOLDS mu_, so
    // the flag cannot change (nor the notify fire into the void) until
    // the lane has atomically released mu_ inside wait(). Regression:
    // WorkerPool.ShutdownUnderChurnNeverHangs in tests/test_mt.cpp.
    const MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(std::size_t jobs,
                     const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_ == 1 || jobs == 1) {
    // Inline reference path: same job order a one-lane pool would use.
    for (std::size_t j = 0; j < jobs; ++j) fn(j);
    return;
  }
  {
    const MutexLock lock(mu_);
    jobs_ = jobs;
    fn_ = &fn;
    lanes_done_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    const MutexLock lock(mu_);
    while (lanes_done_ != workers_) done_cv_.wait(mu_);
    fn_ = nullptr;
  }
}

void WorkerPool::worker_main(std::size_t lane) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::size_t jobs = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      const MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) work_cv_.wait(mu_);
      if (stop_) return;
      seen_generation = generation_;
      jobs = jobs_;
      fn = fn_;
    }
    // Static stride assignment: lane w owns jobs w, w+W, w+2W, ... —
    // deterministic, disjoint, and independent of scheduling order.
    for (std::size_t j = lane; j < jobs; j += workers_) (*fn)(j);
    bool last = false;
    {
      const MutexLock lock(mu_);
      ++lanes_done_;
      last = lanes_done_ == workers_;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace ncfn::netsim
