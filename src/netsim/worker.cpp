#include "netsim/worker.hpp"

namespace ncfn::netsim {

std::size_t WorkerPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

WorkerPool::WorkerPool(std::size_t workers)
    : workers_(workers == 0 ? 1 : workers) {
  if (workers_ == 1) return;  // inline mode: no threads at all
  threads_.reserve(workers_);
  for (std::size_t lane = 0; lane < workers_; ++lane) {
    threads_.emplace_back([this, lane] { worker_main(lane); });
  }
}

WorkerPool::~WorkerPool() {
  if (threads_.empty()) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(std::size_t jobs,
                     const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) return;
  if (workers_ == 1 || jobs == 1) {
    // Inline reference path: same job order a one-lane pool would use.
    for (std::size_t j = 0; j < jobs; ++j) fn(j);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  jobs_ = jobs;
  fn_ = &fn;
  lanes_done_ = 0;
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();
  lock.lock();
  done_cv_.wait(lock, [this] { return lanes_done_ == workers_; });
  fn_ = nullptr;
}

void WorkerPool::worker_main(std::size_t lane) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    const std::size_t jobs = jobs_;
    const std::function<void(std::size_t)>* fn = fn_;
    lock.unlock();
    // Static stride assignment: lane w owns jobs w, w+W, w+2W, ... —
    // deterministic, disjoint, and independent of scheduling order.
    for (std::size_t j = lane; j < jobs; j += workers_) (*fn)(j);
    lock.lock();
    ++lanes_done_;
    if (lanes_done_ == workers_) {
      lock.unlock();
      done_cv_.notify_one();
    }
  }
}

}  // namespace ncfn::netsim
