// Deterministic RNG stream splitting for sharded simulation.
//
// Every shard of a multi-worker run needs its own random stream — shards
// advance concurrently, so they cannot share one engine — but all streams
// must derive from the single root seed so that a run is reproducible
// from that seed alone. rng_stream_seed() is a splitmix64 finalizer over
// (root, stream): a bijective avalanche mix, so nearby roots or stream
// indices land far apart and, critically, the mapping depends only on
// the STREAM index, never on which worker lane happens to execute the
// shard. That independence is the heart of the worker-count determinism
// gate: seeds (and hence traces) are identical for 1, 2 or 8 workers.
#pragma once

#include <cstdint>

namespace ncfn::netsim {

/// splitmix64 finalizer (Steele, Lea & Flood; the PCG/xoshiro seeding
/// recommendation): bijective on 64-bit words with full avalanche.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// The seed for stream `stream` split from `root`. Distinct streams of
/// the same root give unrelated engines; the same (root, stream) pair
/// always gives the same seed.
[[nodiscard]] constexpr std::uint32_t rng_stream_seed(
    std::uint32_t root, std::uint64_t stream) noexcept {
  const std::uint64_t mixed =
      mix64((static_cast<std::uint64_t>(root) << 32) ^ mix64(stream));
  // Fold both halves so no 32 bits of the mix are discarded outright.
  return static_cast<std::uint32_t>(mixed) ^
         static_cast<std::uint32_t>(mixed >> 32);
}

}  // namespace ncfn::netsim
