// Barrier-synchronized worker pool — the ONLY sanctioned home of raw
// thread spawning in the tree (ncfn-lint's raw-thread rule bans
// std::thread / std::async / bare std mutexes everywhere else, so
// nondeterministic concurrency cannot leak into the data plane; this
// file, worker.cpp, the annotated primitives in src/common/sync.hpp and
// the sweep driver are the rule's only exceptions).
//
// Model (BESS master/worker split, core/master.cc + core/worker.h): a
// fixed set of worker lanes executes a batch of independent jobs — one
// job per simulation shard — and the caller blocks on a barrier until
// every lane has drained its share. Determinism contract: job j always
// maps to lane (j % workers), lanes never share jobs, and jobs must
// touch disjoint state; under those rules the result of run() is a pure
// function of the jobs themselves, so the SAME seed produces the SAME
// bytes whether the pool has 1, 2 or 8 workers. A one-worker pool runs
// every job inline on the calling thread — no threads are ever spawned —
// which is what makes `--workers 1` the bit-exact reference for the
// worker-count determinism gate.
//
// Lock discipline is a compile-time property: every cross-thread field
// is NCFN_GUARDED_BY(mu_) and the clang `analyze` preset
// (-Wthread-safety -Werror) rejects any access outside a MutexLock
// scope — see DESIGN.md "Thread-safety capabilities" and the
// tests/negcompile/ suite that proves the gate bites.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace ncfn::netsim {

class WorkerPool {
 public:
  /// A pool with `workers` lanes (clamped to >= 1). With one lane no
  /// thread is ever created; run() degrades to a plain loop.
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool() NCFN_EXCLUDES(mu_);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_; }

  /// Hardware thread count, clamped to >= 1 (hardware_concurrency may
  /// report 0). Callers size pools with this instead of naming
  /// std::thread themselves (which the raw-thread lint rule would flag).
  [[nodiscard]] static std::size_t hardware_workers();

  /// Execute fn(0) .. fn(jobs-1), job j on lane (j % workers), and
  /// barrier until all jobs have finished. Jobs MUST NOT touch shared
  /// mutable state: each job owns its shard outright. fn must not throw
  /// (an escaped exception on a lane terminates the process).
  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn)
      NCFN_EXCLUDES(mu_);

 private:
  void worker_main(std::size_t lane) NCFN_EXCLUDES(mu_);

  std::size_t workers_;
  std::vector<std::thread> threads_;
  common::Mutex mu_;
  common::CondVar work_cv_;  // signaled: new generation, or stop
  common::CondVar done_cv_;  // signaled: last lane finished its share
  std::uint64_t generation_ NCFN_GUARDED_BY(mu_) = 0;  // per run() dispatch
  std::size_t jobs_ NCFN_GUARDED_BY(mu_) = 0;
  const std::function<void(std::size_t)>* fn_ NCFN_GUARDED_BY(mu_) = nullptr;
  std::size_t lanes_done_ NCFN_GUARDED_BY(mu_) = 0;
  bool stop_ NCFN_GUARDED_BY(mu_) = false;
};

}  // namespace ncfn::netsim
