#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ncfn::lp {

namespace {

constexpr double kTolPivot = 1e-9;
constexpr double kTolFeas = 1e-7;
constexpr double kTolCost = 1e-9;

/// Dense tableau: m rows x (ncols + 1); column ncols holds the RHS.
struct Tableau {
  int m = 0;
  int ncols = 0;
  std::vector<double> a;   // row-major, m * (ncols + 1)
  std::vector<int> basis;  // basic column per row
  std::vector<double> cost;  // reduced-cost row, length ncols
  double objval = 0.0;

  double& at(int r, int c) { return a[static_cast<std::size_t>(r) * (ncols + 1) + c]; }
  [[nodiscard]] double get(int r, int c) const {
    return a[static_cast<std::size_t>(r) * (ncols + 1) + c];
  }
  double& rhs(int r) { return at(r, ncols); }

  void pivot(int pr, int pc) {
    const double pv = at(pr, pc);
    assert(std::abs(pv) > kTolPivot);
    const double inv = 1.0 / pv;
    for (int c = 0; c <= ncols; ++c) at(pr, c) *= inv;
    at(pr, pc) = 1.0;  // fight rounding
    for (int r = 0; r < m; ++r) {
      if (r == pr) continue;
      const double f = at(r, pc);
      if (std::abs(f) < kTolPivot) continue;
      for (int c = 0; c <= ncols; ++c) at(r, c) -= f * at(pr, c);
      at(r, pc) = 0.0;
    }
    const double fc = cost[static_cast<std::size_t>(pc)];
    if (std::abs(fc) > 0) {
      for (int c = 0; c < ncols; ++c) {
        cost[static_cast<std::size_t>(c)] -= fc * get(pr, c);
      }
      objval += fc * get(pr, ncols);
      cost[static_cast<std::size_t>(pc)] = 0.0;
    }
    basis[static_cast<std::size_t>(pr)] = pc;
  }
};

/// Runs the simplex loop (maximization) on the current cost row.
/// `enterable[c]` masks which columns may enter the basis.
Status run_simplex(Tableau& t, const std::vector<bool>& enterable,
                   std::size_t& iters_left) {
  int degenerate_streak = 0;
  while (iters_left > 0) {
    --iters_left;
    const bool bland = degenerate_streak > 2 * t.ncols;

    // Entering column: positive reduced cost.
    int pc = -1;
    double best = kTolCost;
    for (int c = 0; c < t.ncols; ++c) {
      if (!enterable[static_cast<std::size_t>(c)]) continue;
      const double rc = t.cost[static_cast<std::size_t>(c)];
      if (rc > best) {
        pc = c;
        if (bland) break;  // first eligible index
        best = rc;
      }
    }
    if (pc < 0) return Status::kOptimal;

    // Ratio test.
    int pr = -1;
    double best_ratio = 0.0;
    for (int r = 0; r < t.m; ++r) {
      const double arc = t.get(r, pc);
      if (arc <= kTolPivot) continue;
      const double ratio = t.get(r, t.ncols) / arc;
      if (pr < 0 || ratio < best_ratio - kTolPivot ||
          (std::abs(ratio - best_ratio) <= kTolPivot &&
           t.basis[static_cast<std::size_t>(r)] <
               t.basis[static_cast<std::size_t>(pr)])) {
        pr = r;
        best_ratio = ratio;
      }
    }
    if (pr < 0) return Status::kUnbounded;

    degenerate_streak = best_ratio < kTolPivot ? degenerate_streak + 1 : 0;
    t.pivot(pr, pc);
  }
  return Status::kIterLimit;
}

}  // namespace

int Problem::add_var(double obj, double hi, std::string name) {
  obj_.push_back(obj);
  hi_.push_back(hi);
  if (name.empty()) name = "x" + std::to_string(obj_.size() - 1);
  names_.push_back(std::move(name));
  return static_cast<int>(obj_.size() - 1);
}

void Problem::add_constraint(std::vector<Term> terms, Rel rel, double rhs) {
  for ([[maybe_unused]] const Term& t : terms) {
    assert(t.var >= 0 && t.var < num_vars());
  }
  rows_.push_back(Row{std::move(terms), rel, rhs});
}

Solution Problem::solve(std::size_t max_iters) const {
  const int n = num_vars();

  // Collect all rows: user rows plus upper-bound rows.
  struct NRow {
    std::vector<double> a;  // dense over structural vars
    Rel rel;
    double rhs;
  };
  std::vector<NRow> rows;
  rows.reserve(rows_.size());
  for (const Row& r : rows_) {
    NRow nr{std::vector<double>(static_cast<std::size_t>(n), 0.0), r.rel,
            r.rhs};
    for (const Term& t : r.terms) {
      nr.a[static_cast<std::size_t>(t.var)] += t.coeff;
    }
    rows.push_back(std::move(nr));
  }
  for (int v = 0; v < n; ++v) {
    const double hi = hi_[static_cast<std::size_t>(v)];
    if (std::isfinite(hi)) {
      NRow nr{std::vector<double>(static_cast<std::size_t>(n), 0.0), Rel::kLe,
              hi};
      nr.a[static_cast<std::size_t>(v)] = 1.0;
      rows.push_back(std::move(nr));
    }
  }

  // Normalize RHS >= 0.
  for (NRow& r : rows) {
    if (r.rhs < 0) {
      for (double& c : r.a) c = -c;
      r.rhs = -r.rhs;
      if (r.rel == Rel::kLe) {
        r.rel = Rel::kGe;
      } else if (r.rel == Rel::kGe) {
        r.rel = Rel::kLe;
      }
    }
  }

  const int m = static_cast<int>(rows.size());

  // Column layout: [0,n) structural, then one slack/surplus per inequality,
  // then artificials for >= and == rows.
  int num_slack = 0, num_art = 0;
  for (const NRow& r : rows) {
    if (r.rel != Rel::kEq) ++num_slack;
    if (r.rel != Rel::kLe) ++num_art;
  }
  const int ncols = n + num_slack + num_art;
  const int art_begin = n + num_slack;

  Tableau t;
  t.m = m;
  t.ncols = ncols;
  t.a.assign(static_cast<std::size_t>(m) * (ncols + 1), 0.0);
  t.basis.assign(static_cast<std::size_t>(m), -1);
  t.cost.assign(static_cast<std::size_t>(ncols), 0.0);

  int slack_col = n, art_col = art_begin;
  for (int r = 0; r < m; ++r) {
    const NRow& row = rows[static_cast<std::size_t>(r)];
    for (int c = 0; c < n; ++c) t.at(r, c) = row.a[static_cast<std::size_t>(c)];
    t.rhs(r) = row.rhs;
    if (row.rel == Rel::kLe) {
      t.at(r, slack_col) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = slack_col++;
    } else if (row.rel == Rel::kGe) {
      t.at(r, slack_col++) = -1.0;  // surplus
      t.at(r, art_col) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = art_col++;
    } else {
      t.at(r, art_col) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = art_col++;
    }
  }

  Solution sol;
  std::vector<bool> enterable(static_cast<std::size_t>(ncols), true);
  std::size_t iters_left = max_iters;

  // ---- Phase 1: maximize -(sum of artificials) ----
  if (num_art > 0) {
    // Maximize z = -(sum of artificials). Substituting each artificial
    // row art_r = rhs_r - sum_c a_rc x_c gives reduced costs
    // cost_j = +sum over artificial rows of a_rj and objval = -sum rhs.
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] < art_begin) continue;
      for (int c = 0; c < ncols; ++c) {
        t.cost[static_cast<std::size_t>(c)] += t.get(r, c);
      }
      t.objval -= t.rhs(r);
    }
    for (int c = art_begin; c < ncols; ++c) {
      t.cost[static_cast<std::size_t>(c)] = 0.0;  // basic artificials
    }

    const Status st = run_simplex(t, enterable, iters_left);
    if (st == Status::kIterLimit) {
      sol.status = st;
      return sol;
    }
    if (t.objval < -kTolFeas) {
      sol.status = Status::kInfeasible;
      return sol;
    }
    // Drive remaining basic artificials out where possible; redundant rows
    // keep a zero-valued artificial that is simply barred from re-entering.
    for (int r = 0; r < m; ++r) {
      if (t.basis[static_cast<std::size_t>(r)] < art_begin) continue;
      for (int c = 0; c < art_begin; ++c) {
        if (std::abs(t.get(r, c)) > kTolPivot) {
          t.pivot(r, c);
          break;
        }
      }
    }
    for (int c = art_begin; c < ncols; ++c) {
      enterable[static_cast<std::size_t>(c)] = false;
    }
  }

  // ---- Phase 2: real objective ----
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  t.objval = 0.0;
  for (int c = 0; c < n; ++c) {
    t.cost[static_cast<std::size_t>(c)] = obj_[static_cast<std::size_t>(c)];
  }
  // Price out the current basis.
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<std::size_t>(r)];
    const double cb = b < n ? obj_[static_cast<std::size_t>(b)] : 0.0;
    if (cb == 0.0) continue;
    for (int c = 0; c < ncols; ++c) {
      t.cost[static_cast<std::size_t>(c)] -= cb * t.get(r, c);
    }
    t.objval += cb * t.rhs(r);
  }
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<std::size_t>(r)];
    t.cost[static_cast<std::size_t>(b)] = 0.0;
  }

  const Status st = run_simplex(t, enterable, iters_left);
  if (st != Status::kOptimal) {
    sol.status = st;
    return sol;
  }

  sol.status = Status::kOptimal;
  sol.objective = t.objval;
  sol.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int r = 0; r < m; ++r) {
    const int b = t.basis[static_cast<std::size_t>(r)];
    if (b < n) sol.x[static_cast<std::size_t>(b)] = t.rhs(r);
  }
  // Clamp tiny negatives from rounding.
  for (double& v : sol.x) {
    if (v < 0 && v > -kTolFeas) v = 0;
  }
  return sol;
}

}  // namespace ncfn::lp
