// Linear programming by dense two-phase primal simplex — the substitute
// for glpk/cplex, which the paper uses to solve (the relaxation of)
// optimization problem (2).
//
// Problem sizes in this system are small (5–20 data centers, a handful of
// sessions, a few hundred path variables), so a dense tableau with
// Dantzig pricing and a Bland anti-cycling fallback is both exact and
// fast. Maximization form:
//
//     maximize    c^T x
//     subject to  a_i^T x  {<=, >=, =}  b_i      for each row i
//                 0 <= x_j <= hi_j               (hi may be +infinity)
//
// Finite upper bounds are handled by adding a row (fine at this scale).
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace ncfn::lp {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Rel { kLe, kGe, kEq };

enum class Status { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct Term {
  int var;
  double coeff;
};

struct Solution {
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;

  [[nodiscard]] bool ok() const { return status == Status::kOptimal; }
};

class Problem {
 public:
  /// Add a variable with bounds [0, hi] and objective coefficient `obj`.
  /// Returns the variable index.
  int add_var(double obj, double hi = kInf, std::string name = "");

  /// Replace a variable's objective coefficient.
  void set_objective(int var, double obj) { obj_.at(static_cast<std::size_t>(var)) = obj; }

  /// Tighten a variable's upper bound (lower bound stays 0).
  void set_upper_bound(int var, double hi) { hi_.at(static_cast<std::size_t>(var)) = hi; }

  /// Fix a variable to a value: adds an equality row var == v.
  void fix(int var, double v) { add_constraint({{var, 1.0}}, Rel::kEq, v); }

  /// Add a general linear constraint. Terms may repeat a variable
  /// (coefficients are summed).
  void add_constraint(std::vector<Term> terms, Rel rel, double rhs);

  [[nodiscard]] int num_vars() const { return static_cast<int>(obj_.size()); }
  [[nodiscard]] int num_constraints() const { return static_cast<int>(rows_.size()); }
  [[nodiscard]] const std::string& var_name(int v) const {
    return names_.at(static_cast<std::size_t>(v));
  }

  /// Solve. `max_iters` bounds total simplex pivots.
  [[nodiscard]] Solution solve(std::size_t max_iters = 100000) const;

 private:
  struct Row {
    std::vector<Term> terms;
    Rel rel;
    double rhs;
  };

  std::vector<double> obj_;
  std::vector<double> hi_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace ncfn::lp
