// AVX2 tier: VPSHUFB nibble-table kernels, 32 bytes per shuffle. The
// 16-byte nibble tables are broadcast to both 128-bit lanes once per
// coefficient; VPSHUFB shuffles within each lane, which is exactly the
// semantics the nibble lookup needs. Compiled with -mavx2; the runtime
// CPU probe in avx2_table() keeps the dispatcher honest on older
// hardware. Sub-32-byte tails take one SSE step then the scalar row walk.
// All memory access goes through the load/store helpers in
// gf256_kernels.hpp.
#include "gf/gf256_kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#define NCFN_HAVE_AVX2 1
#else
#define NCFN_HAVE_AVX2 0
#endif

namespace ncfn::gf::simd::detail {

#if NCFN_HAVE_AVX2

namespace {

bool cpu_has_avx2() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return true;  // built with AVX2: assume the target can run it
#endif
}

/// Load a 16-byte nibble table and broadcast it to both ymm lanes.
inline __m256i load_tab(const std::uint8_t* tab16) {
  return _mm256_broadcastsi128_si256(load_table_128(tab16));
}

void muladd_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                 std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  const __m256i lo_tab = load_tab(nt.lo[c]);
  const __m256i hi_tab = load_tab(nt.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  // Two independent 32-byte streams per iteration hide the
  // shuffle->xor->store latency chain on long buffers.
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 = load_u256(src + i);
    const __m256i s1 = load_u256(src + i + 32);
    const __m256i d0 = load_u256(dst + i);
    const __m256i d1 = load_u256(dst + i + 32);
    const __m256i lo0 = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s0, mask));
    const __m256i lo1 = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s1, mask));
    const __m256i hi0 = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask));
    const __m256i hi1 = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask));
    store_u256(dst + i, _mm256_xor_si256(d0, _mm256_xor_si256(lo0, hi0)));
    store_u256(dst + i + 32, _mm256_xor_si256(d1, _mm256_xor_si256(lo1, hi1)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s = load_u256(src + i);
    const __m256i d = load_u256(dst + i);
    const __m256i lo = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(s, mask));
    const __m256i hi = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi64(s, 4), mask));
    store_u256(dst + i, _mm256_xor_si256(d, _mm256_xor_si256(lo, hi)));
  }
  if (i + 16 <= n) {
    const __m128i lo128 = _mm256_castsi256_si128(lo_tab);
    const __m128i hi128 = _mm256_castsi256_si128(hi_tab);
    const __m128i m128 = _mm_set1_epi8(0x0F);
    const __m128i s = load_u128(src + i);
    const __m128i d = load_u128(dst + i);
    const __m128i lo = _mm_shuffle_epi8(lo128, _mm_and_si128(s, m128));
    const __m128i hi =
        _mm_shuffle_epi8(hi128, _mm_and_si128(_mm_srli_epi64(s, 4), m128));
    store_u128(dst + i, _mm_xor_si128(d, _mm_xor_si128(lo, hi)));
    i += 16;
  }
  if (i < n) scalar_table()->muladd(dst + i, src + i, n - i, c);
}

void mul_avx2(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  const __m256i lo_tab = load_tab(nt.lo[c]);
  const __m256i hi_tab = load_tab(nt.hi[c]);
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d = load_u256(dst + i);
    const __m256i lo = _mm256_shuffle_epi8(lo_tab, _mm256_and_si256(d, mask));
    const __m256i hi = _mm256_shuffle_epi8(
        hi_tab, _mm256_and_si256(_mm256_srli_epi64(d, 4), mask));
    store_u256(dst + i, _mm256_xor_si256(lo, hi));
  }
  if (i < n) scalar_table()->mul(dst + i, n - i, c);
}

void xor_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = load_u256(src + i);
    const __m256i d = load_u256(dst + i);
    store_u256(dst + i, _mm256_xor_si256(d, s));
  }
  if (i < n) scalar_table()->bxor(dst + i, src + i, n - i);
}

void muladd_x4_avx2(std::uint8_t* dst, const std::uint8_t* const src[4],
                    const std::uint8_t c[4], std::size_t n) {
  const NibbleTables& nt = nibble_tables();
  __m256i lo_tab[4], hi_tab[4];
  for (int j = 0; j < 4; ++j) {
    lo_tab[j] = load_tab(nt.lo[c[j]]);
    hi_tab[j] = load_tab(nt.hi[c[j]]);
  }
  const __m256i mask = _mm256_set1_epi8(0x0F);

  std::size_t i = 0;
  // Two accumulators per source row split the eight-xor dependency chain
  // in half; they fold together once per 32-byte block.
  for (; i + 32 <= n; i += 32) {
    __m256i acc0 = load_u256(dst + i);
    __m256i acc1 = _mm256_setzero_si256();
    for (int j = 0; j < 4; ++j) {
      const __m256i s = load_u256(src[j] + i);
      acc0 = _mm256_xor_si256(
          acc0, _mm256_shuffle_epi8(lo_tab[j], _mm256_and_si256(s, mask)));
      acc1 = _mm256_xor_si256(
          acc1, _mm256_shuffle_epi8(
                    hi_tab[j],
                    _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    }
    store_u256(dst + i, _mm256_xor_si256(acc0, acc1));
  }
  if (i + 16 <= n) {
    const __m128i m128 = _mm_set1_epi8(0x0F);
    __m128i acc = load_u128(dst + i);
    for (int j = 0; j < 4; ++j) {
      const __m128i s = load_u128(src[j] + i);
      acc = _mm_xor_si128(
          acc, _mm_shuffle_epi8(_mm256_castsi256_si128(lo_tab[j]),
                                _mm_and_si128(s, m128)));
      acc = _mm_xor_si128(
          acc, _mm_shuffle_epi8(_mm256_castsi256_si128(hi_tab[j]),
                                _mm_and_si128(_mm_srli_epi64(s, 4), m128)));
    }
    store_u128(dst + i, acc);
    i += 16;
  }
  if (i < n) {
    const std::uint8_t* tails[4] = {src[0] + i, src[1] + i, src[2] + i,
                                    src[3] + i};
    scalar_table()->muladd_x4(dst + i, tails, c, n - i);
  }
}

constexpr KernelTable kAvx2Table{muladd_avx2, mul_avx2, xor_avx2,
                                 muladd_x4_avx2, Tier::kAvx2, "avx2"};

}  // namespace

const KernelTable* avx2_table() noexcept {
  static const KernelTable* t = cpu_has_avx2() ? &kAvx2Table : nullptr;
  return t;
}

#else  // !NCFN_HAVE_AVX2

const KernelTable* avx2_table() noexcept { return nullptr; }

#endif

}  // namespace ncfn::gf::simd::detail
