// SIMD kernels for the GF(2^8) hot path, behind a runtime dispatch table.
//
// Three tiers of the classic nibble-table technique (used by Kodo, ISA-L,
// Jerasure): split every source byte into nibbles and resolve c*x through
// two 16-entry lookup tables with a byte shuffle.
//
//   * scalar — one 256-byte product-table row per coefficient (baseline,
//     kept for the ablation and as the tail path);
//   * ssse3  — PSHUFB, 16 bytes per shuffle;
//   * avx2   — VPSHUFB, 32 bytes per shuffle with the 16-byte tables
//     broadcast to both 128-bit lanes;
//   * gfni   — GF2P8AFFINEQB: multiplication by a constant is a linear
//     map over GF(2), so one affine instruction per 32 bytes replaces the
//     whole nibble dance (the ISA-L modern path).
//
// Each tier also provides a fused four-row kernel (muladd_x4) that
// accumulates four source rows per pass over dst — the ISA-L/Jerasure
// trick that cuts dst load/store traffic 4x on generation encodes.
//
// The active tier is resolved once on first use: the best tier the build
// and CPU both support, unless the NCFN_GF_ISA environment variable
// ("scalar" | "ssse3" | "avx2" | "gfni") or force_tier() overrides it.
// All tiers are bit-exact (tests assert equality across every tier).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ncfn::gf::simd {

/// Instruction-set tiers for the bulk kernels, worst to best.
enum class Tier : int { kScalar = 0, kSsse3 = 1, kAvx2 = 2, kGfni = 3 };

/// One tier's kernels. Raw-pointer signatures — the gf:: wrappers add the
/// span/precondition layer. Every kernel accepts any n and handles
/// sub-vector tails internally.
struct KernelTable {
  void (*muladd)(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                 std::uint8_t c);  // dst[i] ^= c * src[i]
  void (*mul)(std::uint8_t* dst, std::size_t n,
              std::uint8_t c);  // dst[i] = c * dst[i]
  void (*bxor)(std::uint8_t* dst, const std::uint8_t* src,
               std::size_t n);  // dst[i] ^= src[i]
  /// dst[i] ^= c[0]*src[0][i] ^ c[1]*src[1][i] ^ c[2]*src[2][i]
  ///           ^ c[3]*src[3][i] — four source rows fused into one pass
  /// over dst (one dst load + store per four rows).
  void (*muladd_x4)(std::uint8_t* dst, const std::uint8_t* const src[4],
                    const std::uint8_t c[4], std::size_t n);
  Tier tier;
  const char* name;
};

/// The active kernel table (dispatch resolved on first call).
[[nodiscard]] const KernelTable& kernels() noexcept;

[[nodiscard]] Tier active_tier() noexcept;
/// Best tier this build + CPU can run.
[[nodiscard]] Tier best_tier() noexcept;
[[nodiscard]] bool tier_supported(Tier t) noexcept;
[[nodiscard]] const char* tier_name(Tier t) noexcept;

/// Force dispatch to a tier (tests, ablation). Returns false and leaves
/// dispatch unchanged when the build/CPU can't run it.
bool force_tier(Tier t) noexcept;
/// Drop any force_tier() override; dispatch reverts to env/auto selection.
void reset_tier() noexcept;

/// True if any vector tier (SSSE3 or better) can run on this build + CPU.
[[nodiscard]] bool available() noexcept;

}  // namespace ncfn::gf::simd
