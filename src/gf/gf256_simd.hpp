// SIMD kernels for the GF(2^8) hot path.
//
// The classic PSHUFB technique (used by Kodo, ISA-L, etc.): split every
// source byte into nibbles and resolve c*x through two 16-entry lookup
// tables with a byte shuffle, processing 16 bytes per instruction. The
// per-coefficient tables (16 B low-nibble + 16 B high-nibble products)
// are precomputed for all 256 coefficients at startup (8 KiB total).
//
// The public entry points in gf256.hpp dispatch here automatically when
// the build has SSSE3 support and the CPU reports it; everything falls
// back to the scalar table kernels otherwise, so results are identical
// on every platform (tests assert bit-equality).
#pragma once

#include <cstdint>
#include <span>

namespace ncfn::gf::simd {

/// True if this build and CPU can run the SSSE3 kernels.
[[nodiscard]] bool available() noexcept;

/// dst[i] ^= c * src[i]; preconditions as gf::bulk_muladd. Only call when
/// available() is true.
void bulk_muladd(std::span<std::uint8_t> dst,
                 std::span<const std::uint8_t> src, std::uint8_t c) noexcept;

/// dst[i] = c * dst[i]; only call when available() is true.
void bulk_mul(std::span<std::uint8_t> dst, std::uint8_t c) noexcept;

}  // namespace ncfn::gf::simd
