// SSSE3 tier: PSHUFB nibble-table kernels, 16 bytes per shuffle. This
// translation unit is compiled with -mssse3; the runtime CPU probe in
// ssse3_table() keeps the dispatcher from ever selecting it on hardware
// that can't run it. All memory access goes through the load/store
// helpers in gf256_kernels.hpp.
#include "gf/gf256_kernels.hpp"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#define NCFN_HAVE_SSSE3 1
#else
#define NCFN_HAVE_SSSE3 0
#endif

namespace ncfn::gf::simd::detail {

#if NCFN_HAVE_SSSE3

namespace {

bool cpu_has_ssse3() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("ssse3") != 0;
#else
  return true;  // built with SSSE3: assume the target can run it
#endif
}

void muladd_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                  std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  const __m128i lo_tab = load_table_128(nt.lo[c]);
  const __m128i hi_tab = load_table_128(nt.hi[c]);
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  // Two independent 16-byte streams per iteration hide the
  // shuffle->xor->store latency chain on long buffers.
  for (; i + 32 <= n; i += 32) {
    const __m128i s0 = load_u128(src + i);
    const __m128i s1 = load_u128(src + i + 16);
    const __m128i d0 = load_u128(dst + i);
    const __m128i d1 = load_u128(dst + i + 16);
    const __m128i lo0 = _mm_shuffle_epi8(lo_tab, _mm_and_si128(s0, mask));
    const __m128i lo1 = _mm_shuffle_epi8(lo_tab, _mm_and_si128(s1, mask));
    const __m128i hi0 =
        _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi64(s0, 4), mask));
    const __m128i hi1 =
        _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi64(s1, 4), mask));
    store_u128(dst + i, _mm_xor_si128(d0, _mm_xor_si128(lo0, hi0)));
    store_u128(dst + i + 16, _mm_xor_si128(d1, _mm_xor_si128(lo1, hi1)));
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i s = load_u128(src + i);
    const __m128i d = load_u128(dst + i);
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(s, mask));
    const __m128i hi =
        _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    store_u128(dst + i, _mm_xor_si128(d, _mm_xor_si128(lo, hi)));
  }
  if (i < n) scalar_table()->muladd(dst + i, src + i, n - i, c);
}

void mul_ssse3(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  const NibbleTables& nt = nibble_tables();
  const __m128i lo_tab = load_table_128(nt.lo[c]);
  const __m128i hi_tab = load_table_128(nt.hi[c]);
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i d = load_u128(dst + i);
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(d, mask));
    const __m128i hi =
        _mm_shuffle_epi8(hi_tab, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
    store_u128(dst + i, _mm_xor_si128(lo, hi));
  }
  if (i < n) scalar_table()->mul(dst + i, n - i, c);
}

void xor_ssse3(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = load_u128(src + i);
    const __m128i d = load_u128(dst + i);
    store_u128(dst + i, _mm_xor_si128(d, s));
  }
  if (i < n) scalar_table()->bxor(dst + i, src + i, n - i);
}

void muladd_x4_ssse3(std::uint8_t* dst, const std::uint8_t* const src[4],
                     const std::uint8_t c[4], std::size_t n) {
  const NibbleTables& nt = nibble_tables();
  __m128i lo_tab[4], hi_tab[4];
  for (int j = 0; j < 4; ++j) {
    lo_tab[j] = load_table_128(nt.lo[c[j]]);
    hi_tab[j] = load_table_128(nt.hi[c[j]]);
  }
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  // Two accumulators per source row split the eight-xor dependency chain
  // in half; they fold together once per 16-byte block.
  for (; i + 16 <= n; i += 16) {
    __m128i acc0 = load_u128(dst + i);
    __m128i acc1 = _mm_setzero_si128();
    for (int j = 0; j < 4; ++j) {
      const __m128i s = load_u128(src[j] + i);
      acc0 = _mm_xor_si128(
          acc0, _mm_shuffle_epi8(lo_tab[j], _mm_and_si128(s, mask)));
      acc1 = _mm_xor_si128(
          acc1, _mm_shuffle_epi8(hi_tab[j],
                                 _mm_and_si128(_mm_srli_epi64(s, 4), mask)));
    }
    store_u128(dst + i, _mm_xor_si128(acc0, acc1));
  }
  if (i < n) {
    const std::uint8_t* tails[4] = {src[0] + i, src[1] + i, src[2] + i,
                                    src[3] + i};
    scalar_table()->muladd_x4(dst + i, tails, c, n - i);
  }
}

constexpr KernelTable kSsse3Table{muladd_ssse3, mul_ssse3, xor_ssse3,
                                  muladd_x4_ssse3, Tier::kSsse3, "ssse3"};

}  // namespace

const KernelTable* ssse3_table() noexcept {
  static const KernelTable* t = cpu_has_ssse3() ? &kSsse3Table : nullptr;
  return t;
}

#else  // !NCFN_HAVE_SSSE3

const KernelTable* ssse3_table() noexcept { return nullptr; }

#endif

}  // namespace ncfn::gf::simd::detail
