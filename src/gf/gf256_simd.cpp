#include "gf/gf256_simd.hpp"

#include "gf/gf256.hpp"

#if defined(__SSSE3__)
#include <tmmintrin.h>
#define NCFN_HAVE_SSSE3 1
#else
#define NCFN_HAVE_SSSE3 0
#endif

namespace ncfn::gf::simd {

#if NCFN_HAVE_SSSE3

namespace {

/// Per-coefficient nibble product tables: lo[c][x] = c * x,
/// hi[c][x] = c * (x << 4), each 16 bytes — PSHUFB operands.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};

const NibbleTables& nibble_tables() noexcept {
  static const NibbleTables t = [] {
    NibbleTables nt{};
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 16; ++x) {
        nt.lo[c][x] = mul(static_cast<u8>(c), static_cast<u8>(x));
        nt.hi[c][x] = mul(static_cast<u8>(c), static_cast<u8>(x << 4));
      }
    }
    return nt;
  }();
  return t;
}

}  // namespace

bool available() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("ssse3") != 0;
#else
  return true;  // built with SSSE3: assume the target can run it
#endif
}

void bulk_muladd(std::span<std::uint8_t> dst,
                 std::span<const std::uint8_t> src, std::uint8_t c) noexcept {
  if (c == 0) return;
  const NibbleTables& nt = nibble_tables();
  const __m128i lo_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]));
  const __m128i hi_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  const std::size_t n = dst.size();
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&src[i]));
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&dst[i]));
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(s, mask));
    const __m128i hi = _mm_shuffle_epi8(
        hi_tab, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    const __m128i prod = _mm_xor_si128(lo, hi);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&dst[i]),
                     _mm_xor_si128(d, prod));
  }
  // Scalar tail.
  const std::uint8_t* row = detail::tables().mul[c];
  for (; i < n; ++i) dst[i] ^= row[src[i]];
}

void bulk_mul(std::span<std::uint8_t> dst, std::uint8_t c) noexcept {
  if (c == 1) return;
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  const NibbleTables& nt = nibble_tables();
  const __m128i lo_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.lo[c]));
  const __m128i hi_tab =
      _mm_load_si128(reinterpret_cast<const __m128i*>(nt.hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0F);

  std::size_t i = 0;
  const std::size_t n = dst.size();
  for (; i + 16 <= n; i += 16) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(&dst[i]));
    const __m128i lo = _mm_shuffle_epi8(lo_tab, _mm_and_si128(d, mask));
    const __m128i hi = _mm_shuffle_epi8(
        hi_tab, _mm_and_si128(_mm_srli_epi64(d, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(&dst[i]),
                     _mm_xor_si128(lo, hi));
  }
  const std::uint8_t* row = detail::tables().mul[c];
  for (; i < n; ++i) dst[i] = row[dst[i]];
}

#else  // !NCFN_HAVE_SSSE3

bool available() noexcept { return false; }

void bulk_muladd(std::span<std::uint8_t>, std::span<const std::uint8_t>,
                 std::uint8_t) noexcept {}

void bulk_mul(std::span<std::uint8_t>, std::uint8_t) noexcept {}

#endif

}  // namespace ncfn::gf::simd
