// Generic GF(2^m) for the field-size ablation (Sec. III.B.1 cites prior
// work observing that GF(2^8) maximizes throughput among field sizes; the
// ablation bench reproduces that comparison with GF(2^4), GF(2^8) and
// GF(2^16)).
//
// GF(2^4) and GF(2^8) use full product tables; GF(2^16) uses log/exp
// (a 2^32-entry product table would not be cache-resident, which is itself
// part of why large fields lose the throughput comparison).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

namespace ncfn::gf {

template <unsigned M>
struct FieldTraits;

template <>
struct FieldTraits<4> {
  using Elem = std::uint8_t;
  static constexpr unsigned kPoly = 0x13;  // x^4 + x + 1
  static constexpr bool kUseMulTable = true;
};
template <>
struct FieldTraits<8> {
  using Elem = std::uint8_t;
  static constexpr unsigned kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
  static constexpr bool kUseMulTable = true;
};
template <>
struct FieldTraits<16> {
  using Elem = std::uint16_t;
  static constexpr unsigned kPoly = 0x1100B;  // x^16 + x^12 + x^3 + x + 1
  static constexpr bool kUseMulTable = false;
};

/// Arithmetic in GF(2^M), M in {4, 8, 16}.
template <unsigned M>
class Field {
 public:
  using Elem = typename FieldTraits<M>::Elem;
  static constexpr unsigned kOrder = 1u << M;   // field size q
  static constexpr Elem kMax = static_cast<Elem>(kOrder - 1);

  Field() { build(); }

  [[nodiscard]] static constexpr Elem add(Elem a, Elem b) noexcept {
    return static_cast<Elem>(a ^ b);
  }

  [[nodiscard]] Elem mul(Elem a, Elem b) const noexcept {
    if constexpr (FieldTraits<M>::kUseMulTable) {
      return mul_table_[static_cast<std::size_t>(a) * kOrder + b];
    } else {
      if (a == 0 || b == 0) return 0;
      return exp_[(static_cast<unsigned>(log_[a]) + log_[b]) % (kOrder - 1)];
    }
  }

  [[nodiscard]] Elem inv(Elem a) const noexcept {
    assert(a != 0);
    return exp_[(kOrder - 1) - log_[a]];
  }

  [[nodiscard]] Elem div(Elem a, Elem b) const noexcept {
    return mul(a, inv(b));
  }

  /// dst[i] ^= c * src[i] over element buffers.
  void bulk_muladd(std::span<Elem> dst, std::span<const Elem> src,
                   Elem c) const noexcept {
    assert(dst.size() == src.size());
    if (c == 0) return;
    if constexpr (FieldTraits<M>::kUseMulTable) {
      const Elem* row = &mul_table_[static_cast<std::size_t>(c) * kOrder];
      for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
    } else {
      const unsigned lc = log_[c];
      for (std::size_t i = 0; i < dst.size(); ++i) {
        if (src[i] != 0) {
          dst[i] ^= exp_[(lc + log_[src[i]]) % (kOrder - 1)];
        }
      }
    }
  }

 private:
  void build() {
    exp_.resize(kOrder);
    log_.resize(kOrder);
    unsigned x = 1;
    for (unsigned i = 0; i < kOrder - 1; ++i) {
      exp_[i] = static_cast<Elem>(x);
      log_[x] = static_cast<std::uint32_t>(i);
      x <<= 1;
      if (x & kOrder) x ^= FieldTraits<M>::kPoly;
    }
    exp_[kOrder - 1] = exp_[0];
    if constexpr (FieldTraits<M>::kUseMulTable) {
      mul_table_.assign(static_cast<std::size_t>(kOrder) * kOrder, 0);
      for (unsigned a = 1; a < kOrder; ++a) {
        for (unsigned b = 1; b < kOrder; ++b) {
          mul_table_[static_cast<std::size_t>(a) * kOrder + b] =
              exp_[(static_cast<unsigned>(log_[a]) + log_[b]) % (kOrder - 1)];
        }
      }
    }
  }

  std::vector<Elem> exp_;
  std::vector<std::uint32_t> log_;
  std::vector<Elem> mul_table_;
};

}  // namespace ncfn::gf
