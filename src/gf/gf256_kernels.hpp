// Internal: per-tier kernel tables, the shared PSHUFB nibble product
// tables, and the vector load/store helpers. Included only by the
// gf256_* kernel translation units and the dispatcher — the public
// surface is gf256.hpp / gf256_simd.hpp.
#pragma once

#include "gf/gf256_simd.hpp"

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace ncfn::gf::simd::detail {

// ---- Vector memory access -------------------------------------------
//
// The kernels' single sanctioned window onto raw packet memory. Every
// tier routes its loads/stores through these helpers instead of casting
// pointers inline, so the intrinsic pointer-cast idiom lives on exactly
// the annotated lines below and nowhere else (ncfn-lint rule
// `raw-bytes`). The *_u128/u256 forms are unaligned — _mm_loadu /
// _mm256_loadu are defined for any alignment, so arbitrary packet-row
// offsets are safe under -fsanitize=alignment. load_table_128 is the
// one aligned load: its operand is always a 16-byte row of the
// alignas(16) NibbleTables.

#if defined(__SSE2__)

inline __m128i load_u128(const std::uint8_t* p) noexcept {
  // ncfn-lint: allow(raw-bytes) — unaligned vector load; _mm_loadu_si128 permits any alignment
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void store_u128(std::uint8_t* p, __m128i v) noexcept {
  // ncfn-lint: allow(raw-bytes) — unaligned vector store; _mm_storeu_si128 permits any alignment
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

/// Aligned 16-byte table-row load; `tab16` must be a NibbleTables row.
inline __m128i load_table_128(const std::uint8_t* tab16) noexcept {
  // ncfn-lint: allow(raw-bytes) — aligned load of an alignas(16) nibble-table row
  return _mm_load_si128(reinterpret_cast<const __m128i*>(tab16));
}

#endif  // __SSE2__

#if defined(__AVX2__)

inline __m256i load_u256(const std::uint8_t* p) noexcept {
  // ncfn-lint: allow(raw-bytes) — unaligned vector load; _mm256_loadu_si256 permits any alignment
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store_u256(std::uint8_t* p, __m256i v) noexcept {
  // ncfn-lint: allow(raw-bytes) — unaligned vector store; _mm256_storeu_si256 permits any alignment
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

#endif  // __AVX2__

/// Per-coefficient nibble product tables: lo[c][x] = c * x,
/// hi[c][x] = c * (x << 4), each 16 bytes — PSHUFB/VPSHUFB operands.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};
[[nodiscard]] const NibbleTables& nibble_tables() noexcept;

/// Scalar table-walk kernels; always present (also the tail path of the
/// vector tiers).
[[nodiscard]] const KernelTable* scalar_table() noexcept;

/// Vector tiers: null when the build lacks the ISA or the CPU doesn't
/// report it, so the dispatcher can treat "supported" as non-null.
[[nodiscard]] const KernelTable* ssse3_table() noexcept;
[[nodiscard]] const KernelTable* avx2_table() noexcept;
[[nodiscard]] const KernelTable* gfni_table() noexcept;

}  // namespace ncfn::gf::simd::detail
