// Internal: per-tier kernel tables and the shared PSHUFB nibble product
// tables. Included only by the gf256_* kernel translation units and the
// dispatcher — the public surface is gf256.hpp / gf256_simd.hpp.
#pragma once

#include "gf/gf256_simd.hpp"

namespace ncfn::gf::simd::detail {

/// Per-coefficient nibble product tables: lo[c][x] = c * x,
/// hi[c][x] = c * (x << 4), each 16 bytes — PSHUFB/VPSHUFB operands.
struct NibbleTables {
  alignas(16) std::uint8_t lo[256][16];
  alignas(16) std::uint8_t hi[256][16];
};
[[nodiscard]] const NibbleTables& nibble_tables() noexcept;

/// Scalar table-walk kernels; always present (also the tail path of the
/// vector tiers).
[[nodiscard]] const KernelTable* scalar_table() noexcept;

/// Vector tiers: null when the build lacks the ISA or the CPU doesn't
/// report it, so the dispatcher can treat "supported" as non-null.
[[nodiscard]] const KernelTable* ssse3_table() noexcept;
[[nodiscard]] const KernelTable* avx2_table() noexcept;
[[nodiscard]] const KernelTable* gfni_table() noexcept;

}  // namespace ncfn::gf::simd::detail
