// GF(2^8) arithmetic for random linear network coding.
//
// The paper (Sec. III.B.1) follows the practice of Chou et al. and Airlift
// and fixes the field to GF(2^8), "observed to enable the maximum throughput
// among all field sizes".  This module provides scalar field operations plus
// the bulk buffer kernels the codec hot path runs on: for each coded block
// the encoder computes dst += c * src over 1460-byte payloads, so
// bulk_muladd() is the single most performance-critical routine in the
// data plane.
//
// Representation: polynomial basis over the AES/Rijndael-compatible
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D).  Multiplication
// uses a full 256x256 product table (64 KiB, L2-resident); each bulk kernel
// walks one 256-byte row of it, which keeps the inner loop free of
// log/exp branching on zero operands.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ncfn::gf {

/// Field element of GF(2^8).
using u8 = std::uint8_t;

/// Number of elements in GF(2^8).
inline constexpr int kFieldSize = 256;

/// Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1.
inline constexpr unsigned kPrimitivePoly = 0x11D;

namespace detail {
struct Tables {
  u8 exp[2 * kFieldSize];        // exp[i] = g^i, doubled to skip a mod
  u8 log[kFieldSize];            // log[exp[i]] = i; log[0] unused
  u8 inv[kFieldSize];            // multiplicative inverse; inv[0] unused
  u8 mul[kFieldSize][kFieldSize];
};
const Tables& tables() noexcept;
}  // namespace detail

/// Addition in GF(2^8) is XOR (characteristic 2). Subtraction is identical.
[[nodiscard]] inline u8 add(u8 a, u8 b) noexcept { return a ^ b; }
[[nodiscard]] inline u8 sub(u8 a, u8 b) noexcept { return a ^ b; }

/// Field multiplication via the product table.
[[nodiscard]] inline u8 mul(u8 a, u8 b) noexcept {
  return detail::tables().mul[a][b];
}

/// Multiplicative inverse. Precondition: a != 0.
[[nodiscard]] u8 inv(u8 a) noexcept;

/// Division a / b. Precondition: b != 0.
[[nodiscard]] inline u8 div(u8 a, u8 b) noexcept { return mul(a, inv(b)); }

/// a raised to integer power e (e >= 0); 0^0 defined as 1.
[[nodiscard]] u8 pow(u8 a, unsigned e) noexcept;

// ---- Bulk kernels over byte buffers (the codec hot path) ----

/// dst[i] ^= src[i].  Buffers must be the same length.
void bulk_xor(std::span<u8> dst, std::span<const u8> src) noexcept;

/// dst[i] = c * dst[i].
void bulk_mul(std::span<u8> dst, u8 c) noexcept;

/// dst[i] ^= c * src[i].  The generation-encode inner loop.
void bulk_muladd(std::span<u8> dst, std::span<const u8> src, u8 c) noexcept;

/// dst[i] ^= c[0]*src[0][i] ^ c[1]*src[1][i] ^ c[2]*src[2][i]
///           ^ c[3]*src[3][i].
/// Fused four-row accumulate: one pass over dst for four source rows
/// (the ISA-L/Jerasure trick — ~4x less dst load/store traffic than four
/// bulk_muladd calls). Each src[j] must point at dst.size() bytes; zero
/// and one coefficients are handled by the product tables, so callers
/// need not compact the rows.
void bulk_muladd_x4(std::span<u8> dst, const u8* const src[4],
                    const u8 c[4]) noexcept;

/// Dot product sum_i a[i] * b[i] — used to combine coefficient vectors
/// when a relay recodes already-coded packets.
[[nodiscard]] u8 dot(std::span<const u8> a, std::span<const u8> b) noexcept;

}  // namespace ncfn::gf
