#include "gf/gf256.hpp"

#include <cassert>

#include "gf/gf256_simd.hpp"

namespace ncfn::gf {

namespace detail {

namespace {
Tables build_tables() noexcept {
  Tables t{};
  // Generate exp/log from the primitive element g = 0x02.
  unsigned x = 1;
  for (int i = 0; i < kFieldSize - 1; ++i) {
    t.exp[i] = static_cast<u8>(x);
    t.log[x] = static_cast<u8>(i);
    x <<= 1;
    if (x & 0x100u) x ^= kPrimitivePoly;
  }
  for (int i = kFieldSize - 1; i < 2 * kFieldSize; ++i) {
    t.exp[i] = t.exp[i - (kFieldSize - 1)];
  }
  t.log[0] = 0;  // never consulted for 0
  // Product table; row/col 0 are all zeros.
  for (int a = 1; a < kFieldSize; ++a) {
    for (int b = 1; b < kFieldSize; ++b) {
      t.mul[a][b] = t.exp[t.log[a] + t.log[b]];
    }
  }
  // Inverses: a * inv(a) == 1.
  t.inv[1] = 1;
  for (int a = 2; a < kFieldSize; ++a) {
    t.inv[a] = t.exp[(kFieldSize - 1) - t.log[a]];
  }
  return t;
}
}  // namespace

const Tables& tables() noexcept {
  static const Tables t = build_tables();
  return t;
}

}  // namespace detail

u8 inv(u8 a) noexcept {
  assert(a != 0 && "division by zero in GF(2^8)");
  return detail::tables().inv[a];
}

u8 pow(u8 a, unsigned e) noexcept {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  const unsigned l = (static_cast<unsigned>(t.log[a]) * e) % (kFieldSize - 1);
  return t.exp[l];
}

// The bulk kernels route through the runtime-dispatched tier table
// (scalar / SSSE3 / AVX2 — see gf256_simd.hpp); every tier handles
// arbitrary lengths and alignments internally.

void bulk_xor(std::span<u8> dst, std::span<const u8> src) noexcept {
  assert(dst.size() == src.size());
  if (dst.empty()) return;
  simd::kernels().bxor(dst.data(), src.data(), dst.size());
}

void bulk_mul(std::span<u8> dst, u8 c) noexcept {
  if (c == 1 || dst.empty()) return;
  if (c == 0) {
    for (auto& b : dst) b = 0;
    return;
  }
  simd::kernels().mul(dst.data(), dst.size(), c);
}

void bulk_muladd(std::span<u8> dst, std::span<const u8> src, u8 c) noexcept {
  assert(dst.size() == src.size());
  if (c == 0 || dst.empty()) return;
  if (c == 1) {
    simd::kernels().bxor(dst.data(), src.data(), dst.size());
    return;
  }
  simd::kernels().muladd(dst.data(), src.data(), dst.size(), c);
}

void bulk_muladd_x4(std::span<u8> dst, const u8* const src[4],
                    const u8 c[4]) noexcept {
  if (dst.empty()) return;
  simd::kernels().muladd_x4(dst.data(), src, c, dst.size());
}

u8 dot(std::span<const u8> a, std::span<const u8> b) noexcept {
  assert(a.size() == b.size());
  u8 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc ^= mul(a[i], b[i]);
  return acc;
}

}  // namespace ncfn::gf
