// GFNI tier: GF2P8AFFINEQB kernels, 32 bytes per instruction. Multiplying
// GF(2^8) by a constant c is a linear map over GF(2), so it can be
// expressed as one 8x8 bit-matrix affine transform: the per-coefficient
// matrix packs the products c*2^k column-wise, and a single
// vgf2p8affineqb replaces the two shuffles + masking of the nibble path.
// Compiled with -mavx2 -mgfni; the runtime probe in gfni_table() keeps
// the dispatcher honest on hardware without GFNI. All memory access goes
// through the load/store helpers in gf256_kernels.hpp.
//
// Note: GF2P8AFFINEQB's sibling GF2P8MULB multiplies in the AES field
// (poly 0x11B), not ours (0x11D) — the affine form works for any poly
// because the matrix is built from our own mul().
#include "gf/gf256.hpp"
#include "gf/gf256_kernels.hpp"

#if defined(__GFNI__) && defined(__AVX2__)
#include <immintrin.h>
#define NCFN_HAVE_GFNI 1
#else
#define NCFN_HAVE_GFNI 0
#endif

namespace ncfn::gf::simd::detail {

#if NCFN_HAVE_GFNI

namespace {

bool cpu_has_gfni() noexcept {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("gfni") != 0 &&
         __builtin_cpu_supports("avx2") != 0;
#else
  return true;  // built with GFNI: assume the target can run it
#endif
}

/// Per-coefficient affine matrices. GF2P8AFFINEQB computes output bit i
/// as the parity of (matrix byte [7-i] AND source byte), so byte 7-i of
/// the qword holds, at bit k, bit i of c * 2^k.
struct AffineMatrices {
  std::uint64_t m[256];
};

const AffineMatrices& affine_matrices() noexcept {
  static const AffineMatrices tabs = [] {
    AffineMatrices t{};
    for (int c = 0; c < 256; ++c) {
      std::uint64_t qw = 0;
      for (int i = 0; i < 8; ++i) {
        std::uint8_t row = 0;
        for (int k = 0; k < 8; ++k) {
          const u8 prod = mul(static_cast<u8>(c), static_cast<u8>(1u << k));
          if ((prod >> i) & 1u) row |= static_cast<std::uint8_t>(1u << k);
        }
        qw |= static_cast<std::uint64_t>(row) << (8 * (7 - i));
      }
      t.m[c] = qw;
    }
    return t;
  }();
  return tabs;
}

void muladd_gfni(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                 std::uint8_t c) {
  const __m256i A = _mm256_set1_epi64x(
      static_cast<long long>(affine_matrices().m[c]));

  std::size_t i = 0;
  // Two independent 32-byte streams per iteration hide the
  // affine->xor->store latency chain on long buffers.
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 = load_u256(src + i);
    const __m256i s1 = load_u256(src + i + 32);
    const __m256i d0 = load_u256(dst + i);
    const __m256i d1 = load_u256(dst + i + 32);
    store_u256(dst + i,
               _mm256_xor_si256(d0, _mm256_gf2p8affine_epi64_epi8(s0, A, 0)));
    store_u256(dst + i + 32,
               _mm256_xor_si256(d1, _mm256_gf2p8affine_epi64_epi8(s1, A, 0)));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s = load_u256(src + i);
    const __m256i d = load_u256(dst + i);
    store_u256(dst + i,
               _mm256_xor_si256(d, _mm256_gf2p8affine_epi64_epi8(s, A, 0)));
  }
  if (i + 16 <= n) {
    const __m128i A128 = _mm256_castsi256_si128(A);
    const __m128i s = load_u128(src + i);
    const __m128i d = load_u128(dst + i);
    store_u128(dst + i,
               _mm_xor_si128(d, _mm_gf2p8affine_epi64_epi8(s, A128, 0)));
    i += 16;
  }
  if (i < n) scalar_table()->muladd(dst + i, src + i, n - i, c);
}

void mul_gfni(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  const __m256i A = _mm256_set1_epi64x(
      static_cast<long long>(affine_matrices().m[c]));

  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d = load_u256(dst + i);
    store_u256(dst + i, _mm256_gf2p8affine_epi64_epi8(d, A, 0));
  }
  if (i < n) scalar_table()->mul(dst + i, n - i, c);
}

void xor_gfni(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = load_u256(src + i);
    const __m256i d = load_u256(dst + i);
    store_u256(dst + i, _mm256_xor_si256(d, s));
  }
  if (i < n) scalar_table()->bxor(dst + i, src + i, n - i);
}

void muladd_x4_gfni(std::uint8_t* dst, const std::uint8_t* const src[4],
                    const std::uint8_t c[4], std::size_t n) {
  const AffineMatrices& am = affine_matrices();
  __m256i A[4];
  for (int j = 0; j < 4; ++j) {
    A[j] = _mm256_set1_epi64x(static_cast<long long>(am.m[c[j]]));
  }

  std::size_t i = 0;
  // Two accumulators split the four-xor dependency chain in half; they
  // fold together once per 32-byte block.
  for (; i + 32 <= n; i += 32) {
    __m256i acc0 = load_u256(dst + i);
    __m256i acc1 = _mm256_setzero_si256();
    for (int j = 0; j < 4; j += 2) {
      const __m256i s0 = load_u256(src[j] + i);
      const __m256i s1 = load_u256(src[j + 1] + i);
      acc0 = _mm256_xor_si256(acc0, _mm256_gf2p8affine_epi64_epi8(s0, A[j], 0));
      acc1 =
          _mm256_xor_si256(acc1, _mm256_gf2p8affine_epi64_epi8(s1, A[j + 1], 0));
    }
    store_u256(dst + i, _mm256_xor_si256(acc0, acc1));
  }
  if (i + 16 <= n) {
    __m128i acc = load_u128(dst + i);
    for (int j = 0; j < 4; ++j) {
      const __m128i s = load_u128(src[j] + i);
      acc = _mm_xor_si128(
          acc, _mm_gf2p8affine_epi64_epi8(s, _mm256_castsi256_si128(A[j]), 0));
    }
    store_u128(dst + i, acc);
    i += 16;
  }
  if (i < n) {
    const std::uint8_t* tails[4] = {src[0] + i, src[1] + i, src[2] + i,
                                    src[3] + i};
    scalar_table()->muladd_x4(dst + i, tails, c, n - i);
  }
}

constexpr KernelTable kGfniTable{muladd_gfni, mul_gfni, xor_gfni,
                                 muladd_x4_gfni, Tier::kGfni, "gfni"};

}  // namespace

const KernelTable* gfni_table() noexcept {
  static const KernelTable* t = cpu_has_gfni() ? &kGfniTable : nullptr;
  return t;
}

#else  // !NCFN_HAVE_GFNI

const KernelTable* gfni_table() noexcept { return nullptr; }

#endif

}  // namespace ncfn::gf::simd::detail
