// Runtime kernel dispatch: resolves the active tier once on first use —
// the best tier the build and CPU support, unless NCFN_GF_ISA or
// force_tier() overrides it. Lives in its own translation unit compiled
// without ISA flags so the selection logic itself runs on any CPU.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "gf/gf256_kernels.hpp"

namespace ncfn::gf::simd {

namespace {

const KernelTable* table_for(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar:
      return detail::scalar_table();
    case Tier::kSsse3:
      return detail::ssse3_table();
    case Tier::kAvx2:
      return detail::avx2_table();
    case Tier::kGfni:
      return detail::gfni_table();
  }
  return nullptr;
}

const KernelTable* auto_select() noexcept {
  if (const char* e = std::getenv("NCFN_GF_ISA"); e != nullptr) {
    for (Tier t : {Tier::kScalar, Tier::kSsse3, Tier::kAvx2, Tier::kGfni}) {
      if (std::strcmp(e, tier_name(t)) == 0) {
        if (const KernelTable* kt = table_for(t)) return kt;
      }
    }
    // Unknown or unsupported value: fall through to auto selection.
  }
  if (const KernelTable* kt = table_for(Tier::kGfni)) return kt;
  if (const KernelTable* kt = table_for(Tier::kAvx2)) return kt;
  if (const KernelTable* kt = table_for(Tier::kSsse3)) return kt;
  return detail::scalar_table();
}

// Publication contract (release/acquire): every store below publishes a
// pointer to a KernelTable that is immutable and fully constructed
// BEFORE the store — the tables live in static storage inside the
// detail::*_table() functions, so the release store is what makes their
// initialization visible to the acquire load on any other thread. Two
// threads racing first use may both run auto_select(); it is a pure
// function of (env, CPUID), so both compute the same pointer and the
// duplicate store is harmless. force_tier()/reset_tier() reuse the same
// release publication; they are test-only knobs whose callers serialize
// externally (worker lanes never retune the tier mid-run).
std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const KernelTable& kernels() noexcept {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    t = auto_select();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Tier active_tier() noexcept { return kernels().tier; }

Tier best_tier() noexcept {
  if (tier_supported(Tier::kGfni)) return Tier::kGfni;
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kSsse3)) return Tier::kSsse3;
  return Tier::kScalar;
}

bool tier_supported(Tier t) noexcept { return table_for(t) != nullptr; }

const char* tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSsse3:
      return "ssse3";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kGfni:
      return "gfni";
  }
  return "?";
}

bool force_tier(Tier t) noexcept {
  const KernelTable* kt = table_for(t);
  if (kt == nullptr) return false;
  g_active.store(kt, std::memory_order_release);
  return true;
}

void reset_tier() noexcept {
  g_active.store(auto_select(), std::memory_order_release);
}

bool available() noexcept { return tier_supported(Tier::kSsse3); }

}  // namespace ncfn::gf::simd
