// Scalar tier: 256-byte product-table row walks. Baseline for the
// ablation benches and the tail path of every vector tier. Built without
// ISA-specific flags so it runs anywhere.
#include "gf/gf256.hpp"
#include "gf/gf256_kernels.hpp"

namespace ncfn::gf::simd::detail {

const NibbleTables& nibble_tables() noexcept {
  static const NibbleTables t = [] {
    NibbleTables nt{};
    for (int c = 0; c < 256; ++c) {
      for (int x = 0; x < 16; ++x) {
        nt.lo[c][x] = mul(static_cast<u8>(c), static_cast<u8>(x));
        nt.hi[c][x] = mul(static_cast<u8>(c), static_cast<u8>(x << 4));
      }
    }
    return nt;
  }();
  return t;
}

namespace {

void muladd_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                   std::uint8_t c) {
  const std::uint8_t* row = gf::detail::tables().mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= row[src[i]];
}

void mul_scalar(std::uint8_t* dst, std::size_t n, std::uint8_t c) {
  const std::uint8_t* row = gf::detail::tables().mul[c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[dst[i]];
}

void xor_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void muladd_x4_scalar(std::uint8_t* dst, const std::uint8_t* const src[4],
                      const std::uint8_t c[4], std::size_t n) {
  const auto& t = gf::detail::tables();
  const std::uint8_t* r0 = t.mul[c[0]];
  const std::uint8_t* r1 = t.mul[c[1]];
  const std::uint8_t* r2 = t.mul[c[2]];
  const std::uint8_t* r3 = t.mul[c[3]];
  const std::uint8_t* s0 = src[0];
  const std::uint8_t* s1 = src[1];
  const std::uint8_t* s2 = src[2];
  const std::uint8_t* s3 = src[3];
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ r0[s0[i]] ^ r1[s1[i]] ^
                                       r2[s2[i]] ^ r3[s3[i]]);
  }
}

constexpr KernelTable kScalarTable{muladd_scalar, mul_scalar, xor_scalar,
                                   muladd_x4_scalar, Tier::kScalar, "scalar"};

}  // namespace

const KernelTable* scalar_table() noexcept { return &kScalarTable; }

}  // namespace ncfn::gf::simd::detail
