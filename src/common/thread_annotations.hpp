// Clang Thread Safety Analysis capability macros (NCFN_ spelling).
//
// The multi-worker engine's race defense used to be purely dynamic:
// TSan on whatever the `mt` tests happened to execute. These macros
// make lock discipline a COMPILE-TIME property instead: every
// shared-state class declares which capability (mutex, or a logical
// ownership Role) guards each field, and clang's `-Wthread-safety`
// analysis rejects any access that cannot prove it holds the
// capability — before a thread ever runs. The `analyze` CMake preset
// turns the warnings into errors; `tests/negcompile/` proves the gate
// bites by compiling known violations and asserting they FAIL.
//
// On GCC (which has no thread safety analysis) every macro expands to
// nothing, so annotated code builds identically everywhere; only the
// clang-based `analyze` preset and CI job enforce the contracts.
//
// Conventions (see DESIGN.md "Thread-safety capabilities"):
//   * Fields:    int jobs_ NCFN_GUARDED_BY(mu_);
//   * Methods:   void drain() NCFN_REQUIRES(mu_);     // caller locks
//                void run()   NCFN_EXCLUDES(mu_);     // caller must NOT
//   * Lock ops:  void lock()  NCFN_ACQUIRE();         // on Mutex only
//   * RAII:      class NCFN_SCOPED_CAPABILITY MutexLock;
//   * Escapes:   NCFN_NO_THREAD_SAFETY_ANALYSIS only inside the
//                annotated primitives themselves (src/common/sync.hpp),
//                never in user code.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define NCFN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NCFN_THREAD_ANNOTATION(x)  // no-op: GCC has no -Wthread-safety
#endif

/// Marks a class as a capability (lockable or logical role). The string
/// names the capability kind in diagnostics ("mutex", "role").
#define NCFN_CAPABILITY(x) NCFN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (std::lock_guard shape).
#define NCFN_SCOPED_CAPABILITY NCFN_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the given capability.
#define NCFN_GUARDED_BY(x) NCFN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose POINTEE is protected by the capability (the
/// pointer itself may be read freely).
#define NCFN_PT_GUARDED_BY(x) NCFN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (caller locks).
#define NCFN_REQUIRES(...) \
  NCFN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the capability held SHARED on entry.
#define NCFN_REQUIRES_SHARED(...) \
  NCFN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function must be called WITHOUT the capability (it acquires it
/// itself, or a self-deadlock would result).
#define NCFN_EXCLUDES(...) NCFN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on return, not on entry).
#define NCFN_ACQUIRE(...) \
  NCFN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define NCFN_RELEASE(...) \
  NCFN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define NCFN_TRY_ACQUIRE(ret, ...) \
  NCFN_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Runtime assertion that the capability is held: tells the analysis
/// "held from here to end of scope" (the barrier-handoff idiom used by
/// common::Role — see src/common/sync.hpp).
#define NCFN_ASSERT_CAPABILITY(x) \
  NCFN_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to a value guarded by the capability.
#define NCFN_RETURN_CAPABILITY(x) NCFN_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function body out of the analysis. Reserved for the annotated
/// primitives in src/common/sync.hpp whose bodies bridge to the
/// un-annotated standard library; using it anywhere else defeats the
/// gate (and the negcompile suite exists to keep the gate honest).
#define NCFN_NO_THREAD_SAFETY_ANALYSIS \
  NCFN_THREAD_ANNOTATION(no_thread_safety_analysis)
