// Annotated synchronization primitives — the capability-carrying
// wrappers behind every NCFN_GUARDED_BY in the tree.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so
// clang's analysis cannot see a std::lock_guard acquire it. These thin
// wrappers re-export exactly the primitives the repo sanctions (a plain
// mutex, a scoped lock, a condition variable, and a zero-cost logical
// Role) with the capability annotations attached, at zero runtime cost.
// This header and the worker pool are the only files allowed to name
// the std primitives directly (ncfn-lint raw-thread rule); everything
// else locks through common::Mutex so the `analyze` preset can prove
// lock discipline at compile time.
//
// NCFN_NO_THREAD_SAFETY_ANALYSIS appears ONLY here, on the bodies that
// bridge into the un-annotated standard library; the annotations on the
// declarations are what user code is checked against.
#pragma once

#include <condition_variable>  // ncfn-lint: allow(raw-thread) — sanctioned primitive home
#include <mutex>  // ncfn-lint: allow(raw-thread) — sanctioned primitive home

#include "common/thread_annotations.hpp"

namespace ncfn::common {

/// An annotated std::mutex. Lock it through MutexLock; bare
/// lock()/unlock() exist for the pool's structured scopes and for
/// CondVar, which needs a BasicLockable.
class NCFN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NCFN_ACQUIRE() { mu_.lock(); }
  void unlock() NCFN_RELEASE() { mu_.unlock(); }
  bool try_lock() NCFN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tell the analysis this thread holds the mutex (checked only by the
  /// caller's reasoning, not at runtime). Prefer structured MutexLock
  /// scopes; this exists for call paths the analysis cannot follow.
  void assert_held() const NCFN_ASSERT_CAPABILITY(this) {}

 private:
  // ncfn-lint: allow(raw-thread) — the one sanctioned std::mutex
  std::mutex mu_;  // ncfn-lint: allow(mutex-unannotated) — wrapper storage, nothing to guard
};

/// RAII lock with the std::lock_guard shape, visible to the analysis as
/// a scoped capability: the constructor acquires, the destructor
/// releases, and guarded fields are accessible for exactly the scope.
class NCFN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NCFN_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() NCFN_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over common::Mutex. wait() requires the mutex
/// held (the analysis enforces it at every call site) and is the
/// bare-wait building block: ALWAYS call it from a predicate loop —
///     while (!ready) cv.wait(mu);
/// ncfn-lint's cv-wait-no-predicate rule flags naked waits that are not
/// wrapped this way.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, sleep, and re-acquire before returning.
  /// Spurious wakeups happen; re-check the predicate (see class doc).
  void wait(Mutex& mu) NCFN_REQUIRES(mu) NCFN_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);  // ncfn-lint: allow(cv-wait-no-predicate) — the predicate loop lives at the annotated call site
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // _any: waits on any BasicLockable, so it can release common::Mutex
  // directly instead of forcing an std::unique_lock the analysis
  // cannot see through.
  // ncfn-lint: allow(raw-thread) — the one sanctioned condition variable
  std::condition_variable_any cv_;
};

/// A phantom capability naming a LOGICAL ownership domain — no lock at
/// runtime, zero bytes of behavior. The multi-worker engine transfers
/// shard ownership structurally (the pool barrier hands shard k to lane
/// k % W for a window; after the final barrier the caller owns all of
/// them), so there is no mutex for the analysis to track. Instead the
/// shard's fields are NCFN_GUARDED_BY(owner) and every code path that
/// legitimately holds the domain states so with assert_held(): the
/// compiler then rejects any NEW code path that touches shard state
/// without declaring how it came to own it.
class NCFN_CAPABILITY("role") Role {
 public:
  Role() = default;
  Role(const Role&) = delete;
  Role& operator=(const Role&) = delete;

  /// Caller asserts it owns the domain (it is the lane the barrier
  /// handed this state to, or the single post-barrier thread).
  void assert_held() const NCFN_ASSERT_CAPABILITY(this) {}
};

}  // namespace ncfn::common
