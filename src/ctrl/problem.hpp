// Optimization problem (2) of Sec. IV.A: joint coding-function deployment
// and multicast routing over conceptual flows.
//
//   maximize   sum_m lambda_m  -  alpha * sum_v x_v
//   s.t. (2a)  lambda_m <= sum_{p in P^k_m} f^k_m(p)           forall m,k
//        (2b)  sum_{p in P^k_m: e in p} f^k_m(p) <= f_m(e)     forall m,k,e
//        (2c)  sum_m sum_{e into v} f_m(e) <= Bin(v) x_v       forall v in V
//        (2c') sum_{e into d^k_m} f_m(e) <= Bin(d^k_m)         forall m,k
//        (2d)  sum_m sum_{e out of u} f_m(e) <= Bout(u) x_u    forall u in V
//        (2d') sum_{e=(s_m,*)} f_m(e) <= Bout(s_m)             forall m
//        (2e)  sum_m sum_{e into v} f_m(e) <= C(v) x_v         forall v in V
//        plus  sum_m f_m(e) <= cap(e) for finite per-edge caps (extension)
//
// lambda_m may be fixed (live-streaming mode); x_v are integers obtained by
// solving the LP relaxation and rounding up, then re-solving the LP with x
// fixed (the paper's own relax-and-round approach). Incremental re-solves
// for the dynamic algorithms freeze unaffected sessions' flows and treat
// the current deployment as a floor (scale-out) or re-derive it (scale-in).
//
// All rates in this module are in Mbps (the LP stays well-scaled).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "coding/types.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"
#include "lp/simplex.hpp"

namespace ncfn::ctrl {

struct SessionSpec {
  coding::SessionId id = 0;
  graph::NodeIdx source = -1;
  std::vector<graph::NodeIdx> receivers;
  double lmax_s = 0.150;  // max tolerable end-to-end delay
  /// If set, the session runs at exactly this rate (e.g., live streaming)
  /// and the solver only finds the cheapest routing for it.
  std::optional<double> fixed_rate_mbps;
  /// If set, an upper bound on the session rate (a service tier / the
  /// application's demand) — without it, one elastic session can grab all
  /// multipath capacity and starve every later arrival.
  std::optional<double> max_rate_mbps;
};

struct DeploymentProblem {
  const graph::Topology* topo = nullptr;
  std::vector<SessionSpec> sessions;
  double alpha = 20.0;  // Mbps-equivalent cost per deployed VNF
  graph::PathSearchLimits path_limits;
  int max_vnfs_per_dc = 64;  // sanity cap on x_v
};

/// One conceptual-flow path with its solved rate.
struct PathRate {
  graph::Path path;
  double rate_mbps = 0.0;
};

struct DeploymentPlan {
  bool feasible = false;
  /// LP solver outcomes of the relaxation and the fixed-integer re-solve
  /// (diagnostics; kOptimal/kOptimal when feasible).
  lp::Status relax_status = lp::Status::kInfeasible;
  lp::Status final_status = lp::Status::kInfeasible;
  double objective = 0.0;  // sum lambda - alpha * sum x, Mbps
  std::vector<coding::SessionId> session_ids;  // parallel to lambda_mbps etc.
  std::vector<double> lambda_mbps;  // per session (parallel to sessions)
  std::map<graph::NodeIdx, int> vnf_count;  // x_v > 0 entries only
  /// f_m(e): per session, edge -> actual multicast flow rate.
  std::vector<std::map<graph::EdgeIdx, double>> edge_rate_mbps;
  /// Conceptual flows: [session][receiver] -> set of used paths.
  std::vector<std::vector<std::vector<PathRate>>> path_rates;

  [[nodiscard]] double total_throughput_mbps() const;
  [[nodiscard]] int total_vnfs() const;
  /// Index of a session id within this plan, or nullopt.
  [[nodiscard]] std::optional<std::size_t> session_index(
      coding::SessionId id) const;
  /// Next hops of `node` for session index `m` (nodes with f_m(e) > eps on
  /// an out-edge of `node`), with the edge rates.
  [[nodiscard]] std::vector<std::pair<graph::NodeIdx, double>> next_hops(
      const graph::Topology& topo, std::size_t m, graph::NodeIdx node) const;
};

struct SolveOptions {
  /// Keep at least this many VNFs per DC (current deployment; scale-out
  /// solves pass the live counts here so the LP never tears down a VNF).
  std::map<graph::NodeIdx, int> vnf_floor;
  /// Hard-set x_v (used for the rounding re-solve and for "deployment
  /// fixed, maximize throughput" mode).
  std::map<graph::NodeIdx, int> vnf_fixed;
  /// Sessions whose flows are frozen at their values in `previous`
  /// (the paper's incremental update: "except the affected ... flows").
  std::set<coding::SessionId> frozen_sessions;
  const DeploymentPlan* previous = nullptr;
};

/// Solve (2): LP relaxation, round x up, re-solve flows with x fixed.
[[nodiscard]] DeploymentPlan solve_deployment(const DeploymentProblem& prob,
                                              const SolveOptions& opts = {});

}  // namespace ncfn::ctrl
