#include "ctrl/controller.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ncfn::ctrl {

namespace {
constexpr double kObjEps = 1e-6;

bool changed_by_more_than(double old_v, double new_v, double rho) {
  if (old_v <= 0) return new_v > 0;
  return std::abs(new_v - old_v) / old_v > rho;
}
}  // namespace

Controller::Controller(graph::Topology topo, const Config& cfg)
    : topo_(std::move(topo)), cfg_(cfg) {
  for (graph::NodeIdx v : topo_.data_centers()) pools_[v];  // default pools
}

DeploymentPlan Controller::solve_with(const SolveOptions& opts) const {
  DeploymentProblem prob;
  prob.topo = &topo_;
  prob.sessions = sessions_;
  prob.alpha = cfg_.alpha;
  prob.path_limits = cfg_.path_limits;
  prob.max_vnfs_per_dc = cfg_.max_vnfs_per_dc;
  return solve_deployment(prob, opts);
}

std::set<coding::SessionId> Controller::all_session_ids() const {
  std::set<coding::SessionId> ids;
  for (const SessionSpec& s : sessions_) ids.insert(s.id);
  return ids;
}

std::set<coding::SessionId> Controller::sessions_using_dc(
    graph::NodeIdx v) const {
  std::set<coding::SessionId> out;
  for (std::size_t m = 0; m < plan_.session_ids.size(); ++m) {
    for (const auto& [e, rate] : plan_.edge_rate_mbps[m]) {
      const graph::EdgeInfo& ei = topo_.edge(e);
      if (ei.from == v || ei.to == v) {
        out.insert(plan_.session_ids[m]);
        break;
      }
    }
  }
  return out;
}

std::set<coding::SessionId> Controller::sessions_using_edge(
    graph::EdgeIdx e) const {
  std::set<coding::SessionId> out;
  for (std::size_t m = 0; m < plan_.session_ids.size(); ++m) {
    if (plan_.edge_rate_mbps[m].count(e) > 0) {
      out.insert(plan_.session_ids[m]);
    }
  }
  return out;
}

std::map<graph::NodeIdx, int> Controller::current_deployment() const {
  std::map<graph::NodeIdx, int> dep;
  for (const auto& [v, pool] : pools_) {
    const int n = pool.running + static_cast<int>(pool.draining.size());
    if (n > 0) dep[v] = n;
  }
  return dep;
}

int Controller::alive_vnfs() const {
  return running_vnfs() + draining_vnfs();
}
int Controller::running_vnfs() const {
  int n = 0;
  for (const auto& [v, pool] : pools_) n += pool.running;
  return n;
}
int Controller::draining_vnfs() const {
  int n = 0;
  for (const auto& [v, pool] : pools_) n += static_cast<int>(pool.draining.size());
  return n;
}
int Controller::vnfs_at(graph::NodeIdx v) const {
  auto it = pools_.find(v);
  if (it == pools_.end()) return 0;
  return it->second.running + static_cast<int>(it->second.draining.size());
}

void Controller::emit(double now_s, std::uint32_t target, Signal s) {
  if (obs_ != nullptr) {
    const char* kind = signal_name(s);
    obs_->metrics.counter(std::string("ctrl.signals_emitted.") + kind).inc();
    obs_->trace.signal(target, kind);
  }
  signals_.push_back(LoggedSignal{now_s, target, std::move(s)});
}

ForwardingTable Controller::forwarding_table(graph::NodeIdx node) const {
  auto it = pushed_tables_.find(node);
  return it == pushed_tables_.end() ? ForwardingTable{} : it->second;
}

void Controller::apply_plan(DeploymentPlan next, double now_s) {
  if (!next.feasible) return;  // keep the old plan; nothing to install

  // ---- Adjust per-DC VNF pools ----
  for (auto& [v, pool] : pools_) {
    const auto it = next.vnf_count.find(v);
    const int want = it == next.vnf_count.end() ? 0 : it->second;
    // Reuse draining VNFs first (cancel their pending shutdown).
    while (pool.running < want && !pool.draining.empty()) {
      pool.draining.pop_back();  // most recently drained: longest grace left
      ++pool.running;
      ++vm_reuses_;
    }
    if (pool.running < want) {
      const int launch = want - pool.running;
      emit(now_s, static_cast<std::uint32_t>(v),
           NcVnfStart{static_cast<std::uint32_t>(v),
                      static_cast<std::uint32_t>(launch)});
      pool.running = want;
      vm_launches_ += launch;
    } else if (pool.running > want) {
      // Excess VNFs: NC_VNF_END now, actual shutdown after tau.
      const int drain = pool.running - want;
      for (int i = 0; i < drain; ++i) {
        pool.draining.push_back(now_s + cfg_.tau_s);
        emit(now_s, static_cast<std::uint32_t>(v),
             NcVnfEnd{static_cast<std::uint32_t>(v), cfg_.tau_s});
      }
      std::sort(pool.draining.begin(), pool.draining.end());
      pool.running = want;
    }
  }

  // ---- Push forwarding-table updates where routing changed ----
  // Relay tables for every node that forwards traffic in the new plan.
  std::map<graph::NodeIdx, ForwardingTable> tables;
  for (std::size_t m = 0; m < next.session_ids.size(); ++m) {
    const coding::SessionId sid = next.session_ids[m];
    const std::uint16_t port = session_data_port(sid);
    for (const auto& [e, rate] : next.edge_rate_mbps[m]) {
      const graph::EdgeInfo& ei = topo_.edge(e);
      (void)rate;
      auto& tab = tables[ei.from];
      std::vector<NextHop> hops;
      if (const auto* existing = tab.find(sid)) hops = *existing;
      hops.push_back(NextHop{static_cast<std::uint32_t>(ei.to), port});
      std::sort(hops.begin(), hops.end());
      tab.set(sid, std::move(hops));
    }
  }
  for (auto& [node, tab] : tables) {
    auto it = pushed_tables_.find(node);
    if (it != pushed_tables_.end() && it->second == tab) continue;
    emit(now_s, static_cast<std::uint32_t>(node), NcForwardTab{tab});
    pushed_tables_[node] = std::move(tab);
  }
  // Nodes that previously had tables but now route nothing get an empty one.
  for (auto& [node, tab] : pushed_tables_) {
    if (tables.count(node) == 0 && tab.size() > 0) {
      emit(now_s, static_cast<std::uint32_t>(node),
           NcForwardTab{ForwardingTable{}});
      tab = ForwardingTable{};
    }
  }

  plan_ = std::move(next);
}

void Controller::resolve_all(double now_s) {
  apply_plan(solve_with(SolveOptions{}), now_s);
}

// ---------------- Alg. 3: session / receiver churn ----------------

bool Controller::add_session(const SessionSpec& spec, double now_s) {
  sessions_.push_back(spec);

  // Settings + start signals for the new session's endpoints.
  NcSettings settings;
  settings.sessions.push_back(SessionSetting{
      spec.id, VnfRole::kRecode, session_data_port(spec.id)});
  emit(now_s, static_cast<std::uint32_t>(spec.source), settings);
  emit(now_s, static_cast<std::uint32_t>(spec.source), NcStart{spec.id});

  // Solve for the new session only, on top of the current deployment and
  // the existing sessions' flows.
  SolveOptions opts;
  opts.frozen_sessions = all_session_ids();
  opts.frozen_sessions.erase(spec.id);
  opts.previous = &plan_;
  opts.vnf_floor = current_deployment();
  DeploymentPlan next = solve_with(opts);
  if (!next.feasible) {
    sessions_.pop_back();
    return false;
  }
  // A fixed-rate session that cannot reach all receivers is rejected.
  if (spec.fixed_rate_mbps) {
    const auto m = next.session_index(spec.id);
    if (!m || next.lambda_mbps[*m] + kObjEps < *spec.fixed_rate_mbps) {
      sessions_.pop_back();
      return false;
    }
  }
  apply_plan(std::move(next), now_s);
  return true;
}

void Controller::remove_session(coding::SessionId id, double now_s) {
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&](const SessionSpec& s) { return s.id == id; });
  if (it == sessions_.end()) return;
  sessions_.erase(it);

  if (sessions_.empty()) {
    apply_plan(solve_with(SolveOptions{}), now_s);
    return;
  }

  // g1: keep the deployment, let remaining flows grow into freed capacity.
  SolveOptions o1;
  o1.vnf_fixed = current_deployment();
  const DeploymentPlan g1 = solve_with(o1);

  // g2: keep the remaining flows, shrink the deployment.
  SolveOptions o2;
  o2.frozen_sessions = all_session_ids();
  o2.previous = &plan_;
  const DeploymentPlan g2 = solve_with(o2);

  if (g1.feasible && (!g2.feasible || g1.objective > g2.objective + kObjEps)) {
    apply_plan(g1, now_s);
  } else if (g2.feasible) {
    apply_plan(g2, now_s);
  }
}

bool Controller::add_receiver(coding::SessionId id, graph::NodeIdx receiver,
                              double now_s) {
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&](const SessionSpec& s) { return s.id == id; });
  if (it == sessions_.end()) return false;
  it->receivers.push_back(receiver);

  SolveOptions opts;
  opts.frozen_sessions = all_session_ids();
  opts.frozen_sessions.erase(id);
  opts.previous = &plan_;
  opts.vnf_floor = current_deployment();
  DeploymentPlan next = solve_with(opts);
  if (!next.feasible) {
    it->receivers.pop_back();
    return false;
  }
  apply_plan(std::move(next), now_s);
  return true;
}

void Controller::remove_receiver(coding::SessionId id,
                                 graph::NodeIdx receiver, double now_s) {
  auto it = std::find_if(sessions_.begin(), sessions_.end(),
                         [&](const SessionSpec& s) { return s.id == id; });
  if (it == sessions_.end()) return;
  auto rit = std::find(it->receivers.begin(), it->receivers.end(), receiver);
  if (rit == it->receivers.end()) return;
  it->receivers.erase(rit);

  if (it->receivers.empty()) {
    remove_session(id, now_s);
    return;
  }
  // Re-solve the affected session with the shrunk receiver set; the
  // deployment may shrink (VNFs drain via tau).
  SolveOptions opts;
  opts.frozen_sessions = all_session_ids();
  opts.frozen_sessions.erase(id);
  opts.previous = &plan_;
  DeploymentPlan next = solve_with(opts);
  if (next.feasible) apply_plan(std::move(next), now_s);
}

// ---------------- Alg. 1: bandwidth variation ----------------

void Controller::report_bandwidth(graph::NodeIdx v, double bin_bps,
                                  double bout_bps, double now_s) {
  if (!scaling_enabled_) return;
  const graph::NodeInfo& ni = topo_.node(v);
  const bool significant = changed_by_more_than(ni.bin_bps, bin_bps, cfg_.rho1) ||
                           changed_by_more_than(ni.bout_bps, bout_bps, cfg_.rho1);
  if (!significant) {
    pending_bw_.erase(v);  // brief spike ended
    return;
  }
  auto it = pending_bw_.find(v);
  if (it == pending_bw_.end()) {
    pending_bw_[v] = PendingBandwidth{bin_bps, bout_bps, now_s};
    return;
  }
  it->second.bin_bps = bin_bps;
  it->second.bout_bps = bout_bps;
  if (now_s - it->second.since_s >= cfg_.tau1_s) {
    const PendingBandwidth pb = it->second;
    pending_bw_.erase(it);
    apply_bandwidth_change(v, pb, now_s);
  }
}

void Controller::apply_bandwidth_change(graph::NodeIdx v,
                                        const PendingBandwidth& pb,
                                        double now_s) {
  topo_.node(v).bin_bps = pb.bin_bps;
  topo_.node(v).bout_bps = pb.bout_bps;

  // Freeze flows of sessions not touching the affected data center.
  std::set<coding::SessionId> frozen = all_session_ids();
  for (coding::SessionId id : sessions_using_dc(v)) frozen.erase(id);

  // Candidate: allow scale-out on top of the current deployment.
  SolveOptions grow;
  grow.frozen_sessions = frozen;
  grow.previous = &plan_;
  grow.vnf_floor = current_deployment();
  const DeploymentPlan g = solve_with(grow);

  // Fallback: keep the deployment fixed, reroute/shrink flows only.
  SolveOptions keep;
  keep.frozen_sessions = frozen;
  keep.previous = &plan_;
  keep.vnf_fixed = current_deployment();
  const DeploymentPlan kept = solve_with(keep);

  if (g.feasible &&
      (!kept.feasible || g.objective > kept.objective + kObjEps)) {
    apply_plan(g, now_s);
  } else if (kept.feasible) {
    apply_plan(kept, now_s);
  }
}

// ---------------- Alg. 2: delay changes ----------------

void Controller::report_delay(graph::EdgeIdx e, double delay_s,
                              double now_s) {
  if (!scaling_enabled_) return;
  const graph::EdgeInfo& ei = topo_.edge(e);
  if (!changed_by_more_than(ei.delay_s, delay_s, cfg_.rho2)) {
    pending_delay_.erase(e);
    return;
  }
  auto it = pending_delay_.find(e);
  if (it == pending_delay_.end()) {
    pending_delay_[e] = PendingDelay{delay_s, now_s};
    return;
  }
  it->second.delay_s = delay_s;
  if (now_s - it->second.since_s >= cfg_.tau2_s) {
    const PendingDelay pd = it->second;
    pending_delay_.erase(it);
    apply_delay_change(e, pd, now_s);
  }
}

void Controller::apply_delay_change(graph::EdgeIdx e, const PendingDelay& pd,
                                    double now_s) {
  const bool increased = pd.delay_s > topo_.edge(e).delay_s;
  topo_.edge(e).delay_s = pd.delay_s;

  std::set<coding::SessionId> frozen;
  if (increased) {
    // Only sessions routed over e are affected; their path sets shrink.
    frozen = all_session_ids();
    for (coding::SessionId id : sessions_using_edge(e)) frozen.erase(id);
  }
  // A delay decrease expands every session's feasible path set, so nothing
  // is frozen and all sessions may benefit.
  SolveOptions opts;
  opts.frozen_sessions = frozen;
  opts.previous = &plan_;
  opts.vnf_floor = current_deployment();
  DeploymentPlan next = solve_with(opts);
  if (next.feasible) apply_plan(std::move(next), now_s);
}

// ---------------- failure handling ----------------

void Controller::resolve_after_failure(
    const std::set<coding::SessionId>& affected, const char* cause,
    double now_s) {
  ++resolves_;
  if (obs_ != nullptr) {
    obs_->metrics.counter("ctrl.resolves").inc();
    obs_->trace.resolve(cause, affected.size());
  }
  std::set<coding::SessionId> frozen = all_session_ids();
  for (coding::SessionId id : affected) frozen.erase(id);
  SolveOptions opts;
  opts.frozen_sessions = frozen;
  opts.previous = &plan_;
  opts.vnf_floor = current_deployment();
  DeploymentPlan next = solve_with(opts);
  if (next.feasible) apply_plan(std::move(next), now_s);
}

void Controller::report_link_state(graph::EdgeIdx e, bool up, double now_s) {
  graph::EdgeInfo& ei = topo_.edge(e);
  if (ei.up == up) return;
  ei.up = up;
  if (!up) {
    // Only sessions routed over the failed edge need new flows; the
    // feasible-path sets they re-solve against exclude the edge now.
    resolve_after_failure(sessions_using_edge(e), "link_down", now_s);
  } else {
    // Recovery expands every session's path set, like a delay decrease.
    resolve_after_failure(all_session_ids(), "link_up", now_s);
  }
}

void Controller::report_node_state(graph::NodeIdx v, bool up, double now_s) {
  const bool was_down = down_nodes_.count(v) > 0;
  if (up != was_down) return;  // no transition
  std::set<coding::SessionId> affected;
  if (!up) {
    down_nodes_.insert(v);
    affected = sessions_using_dc(v);
    // The DC's VMs crashed with the machine; nothing drains gracefully.
    auto it = pools_.find(v);
    if (it != pools_.end()) {
      it->second.running = 0;
      it->second.draining.clear();
    }
  } else {
    down_nodes_.erase(v);
    affected = all_session_ids();
  }
  for (graph::EdgeIdx e = 0; e < topo_.edge_count(); ++e) {
    graph::EdgeInfo& ei = topo_.edge(e);
    if (ei.from == v || ei.to == v) ei.up = up;
  }
  resolve_after_failure(affected, up ? "node_up" : "node_down", now_s);
}

void Controller::heartbeat(graph::NodeIdx v, double now_s) {
  last_heartbeat_[v] = now_s;
  if (down_nodes_.count(v) > 0) report_node_state(v, true, now_s);
}

// ---------------- housekeeping ----------------

void Controller::tick(double now_s) {
  // Daemon liveness: a DC whose heartbeat went stale is declared down.
  if (cfg_.heartbeat_timeout_s > 0) {
    for (const auto& [v, last] : last_heartbeat_) {
      if (down_nodes_.count(v) == 0 &&
          now_s - last >= cfg_.heartbeat_timeout_s) {
        report_node_state(v, false, now_s);
      }
    }
  }
  // Apply pending measurement changes whose persistence requirement has
  // been met even if no fresh report arrived exactly at the deadline.
  for (auto it = pending_bw_.begin(); it != pending_bw_.end();) {
    if (now_s - it->second.since_s >= cfg_.tau1_s) {
      const auto v = it->first;
      const PendingBandwidth pb = it->second;
      it = pending_bw_.erase(it);
      apply_bandwidth_change(v, pb, now_s);
    } else {
      ++it;
    }
  }
  for (auto it = pending_delay_.begin(); it != pending_delay_.end();) {
    if (now_s - it->second.since_s >= cfg_.tau2_s) {
      const auto e = it->first;
      const PendingDelay pd = it->second;
      it = pending_delay_.erase(it);
      apply_delay_change(e, pd, now_s);
    } else {
      ++it;
    }
  }
  // Expire draining VNFs whose grace period ended.
  for (auto& [v, pool] : pools_) {
    while (!pool.draining.empty() && pool.draining.front() <= now_s) {
      pool.draining.pop_front();
    }
  }
  // Consolidation: if the plan needs fewer VNFs than are running at a DC,
  // drain the excess (traffic re-steering happens implicitly because the
  // plan's flow rates already fit the smaller pool).
  if (scaling_enabled_) {
    for (auto& [v, pool] : pools_) {
      const auto it = plan_.vnf_count.find(v);
      const int want = it == plan_.vnf_count.end() ? 0 : it->second;
      while (pool.running > want) {
        pool.draining.push_back(now_s + cfg_.tau_s);
        emit(now_s, static_cast<std::uint32_t>(v),
             NcVnfEnd{static_cast<std::uint32_t>(v), cfg_.tau_s});
        --pool.running;
      }
      std::sort(pool.draining.begin(), pool.draining.end());
    }
  }
}

}  // namespace ncfn::ctrl
