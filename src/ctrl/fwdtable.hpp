// Forwarding table (Sec. III.A).
//
// "The forwarding table is a text file, recording the next hops' IP
// addresses for each relevant multicast session the coding function
// belongs to."  We keep the text format: one line per session,
//
//     <session-id> <node>:<port>[ <node>:<port> ...]
//
// where <node> is the overlay node id (the simulator's stand-in for an IP
// address). Lines starting with '#' are comments. apply() on a daemon
// parses the file, pauses the coding function, installs the new table and
// resumes — mirroring the SIGUSR1 pause/resume dance in the paper; the
// pause cost is what Table III measures.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "coding/types.hpp"

namespace ncfn::ctrl {

struct NextHop {
  std::uint32_t node = 0;  // netsim::NodeId
  std::uint16_t port = 0;
  bool operator==(const NextHop&) const = default;
  auto operator<=>(const NextHop&) const = default;
};

class ForwardingTable {
 public:
  ForwardingTable() = default;

  void set(coding::SessionId session, std::vector<NextHop> hops) {
    entries_[session] = std::move(hops);
  }
  void erase(coding::SessionId session) { entries_.erase(session); }

  [[nodiscard]] const std::vector<NextHop>* find(
      coding::SessionId session) const {
    auto it = entries_.find(session);
    return it == entries_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::map<coding::SessionId, std::vector<NextHop>>&
  entries() const {
    return entries_;
  }

  /// Render to the text-file format.
  [[nodiscard]] std::string serialize() const;

  /// Parse the text-file format; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<ForwardingTable> parse(
      const std::string& text);

  /// Number of entries that differ between two tables (used to compute the
  /// "update percentage" of Table III).
  [[nodiscard]] static std::size_t diff_entries(const ForwardingTable& a,
                                                const ForwardingTable& b);

  bool operator==(const ForwardingTable&) const = default;

 private:
  std::map<coding::SessionId, std::vector<NextHop>> entries_;
};

}  // namespace ncfn::ctrl
