// Generation-granular plan quantization.
//
// Optimization (2) is a fluid model: its optimum may assign a conceptual
// flow 0.5 packets per generation on some path. The data plane, however,
// codes within generations of g blocks, so a receiver whose paths deliver
// fractional per-generation packet counts sees integer shortfalls on a
// fraction of generations — each one a stall that only the repair loop
// can clear. Quantization trades a little planned rate for exactness:
//
//   for each session, find the largest lambda' <= lambda such that every
//   receiver's paths deliver, at integer per-generation packet counts
//   n_p = floor(g * rate_p / lambda'), at least g packets per generation;
//   then snap each path rate to n_p * lambda' / g.
//
// The butterfly's clean 35/35 splits are untouched (lambda' = lambda);
// awkward splits lose at most a few quanta of planned rate and gain a
// stall-free data plane. Applied by the session runtime before wiring
// (SessionWiring::quantize).
#pragma once

#include "ctrl/problem.hpp"

namespace ncfn::ctrl {

struct QuantizeResult {
  /// Sessions whose lambda was reduced to reach integrality.
  int sessions_reduced = 0;
  /// Total planned rate given up (Mbps, across sessions).
  double rate_lost_mbps = 0.0;
};

/// Quantize every session of `plan` in place for generations of
/// `generation_blocks` blocks. Edge rates f_m(e) are recomputed from the
/// snapped path rates; VNF counts are left unchanged (they covered the
/// larger rates, so they still cover). Sessions whose lambda is 0 or that
/// cannot reach integrality even at one quantum are zeroed.
QuantizeResult quantize_plan(DeploymentPlan& plan,
                             std::size_t generation_blocks);

}  // namespace ncfn::ctrl
