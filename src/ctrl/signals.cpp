#include "ctrl/signals.hpp"

#include <sstream>

namespace ncfn::ctrl {

std::string to_string(VnfRole role) {
  switch (role) {
    case VnfRole::kForward:
      return "forward";
    case VnfRole::kRecode:
      return "recode";
    case VnfRole::kDecode:
      return "decode";
  }
  return "forward";
}

std::optional<VnfRole> role_from_string(std::string_view s) {
  if (s == "forward") return VnfRole::kForward;
  if (s == "recode") return VnfRole::kRecode;
  if (s == "decode") return VnfRole::kDecode;
  return std::nullopt;
}

namespace {

struct SerializeVisitor {
  std::ostringstream& out;

  void operator()(const NcStart& s) const {
    out << "NC_START\nsession " << s.session << '\n';
  }
  void operator()(const NcVnfStart& s) const {
    out << "NC_VNF_START\ndatacenter " << s.datacenter << "\ncount "
        << s.count << '\n';
  }
  void operator()(const NcVnfEnd& s) const {
    out << "NC_VNF_END\nvnf " << s.vnf_id << "\ntau " << s.tau_s << '\n';
  }
  void operator()(const NcForwardTab& s) const {
    out << "NC_FORWARD_TAB\n";
    // The table's own text format, minus comment lines, prefixed per line.
    std::istringstream in(s.table.serialize());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      out << "tab " << line << '\n';
    }
  }
  void operator()(const NcSettings& s) const {
    out << "NC_SETTINGS\ngeneration_blocks " << s.generation_blocks
        << "\nblock_size " << s.block_size << '\n';
    for (const SessionSetting& ss : s.sessions) {
      out << "session " << ss.session << ' ' << to_string(ss.role) << ' '
          << ss.udp_port << '\n';
    }
  }
};

}  // namespace

std::string serialize(const Signal& s) {
  std::ostringstream out;
  std::visit(SerializeVisitor{out}, s);
  out << "END\n";
  return out.str();
}

const char* signal_name(const Signal& s) {
  return std::visit(
      [](const auto& sig) {
        using T = std::decay_t<decltype(sig)>;
        if constexpr (std::is_same_v<T, NcStart>) return "NC_START";
        if constexpr (std::is_same_v<T, NcVnfStart>) return "NC_VNF_START";
        if constexpr (std::is_same_v<T, NcVnfEnd>) return "NC_VNF_END";
        if constexpr (std::is_same_v<T, NcForwardTab>) return "NC_FORWARD_TAB";
        if constexpr (std::is_same_v<T, NcSettings>) return "NC_SETTINGS";
      },
      s);
}

std::optional<Signal> parse_signal(const std::string& text) {
  std::istringstream in(text);
  std::string kind;
  if (!std::getline(in, kind)) return std::nullopt;

  std::vector<std::pair<std::string, std::string>> fields;
  std::string line;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line == "END") {
      terminated = true;
      break;
    }
    const auto space = line.find(' ');
    if (space == std::string::npos) return std::nullopt;
    fields.emplace_back(line.substr(0, space), line.substr(space + 1));
  }
  if (!terminated) return std::nullopt;

  auto field = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };

  try {
    if (kind == "NC_START") {
      auto v = field("session");
      if (!v) return std::nullopt;
      return NcStart{static_cast<coding::SessionId>(std::stoul(*v))};
    }
    if (kind == "NC_VNF_START") {
      auto dc = field("datacenter");
      auto count = field("count");
      if (!dc || !count) return std::nullopt;
      return NcVnfStart{static_cast<std::uint32_t>(std::stoul(*dc)),
                        static_cast<std::uint32_t>(std::stoul(*count))};
    }
    if (kind == "NC_VNF_END") {
      auto vnf = field("vnf");
      auto tau = field("tau");
      if (!vnf || !tau) return std::nullopt;
      return NcVnfEnd{static_cast<std::uint32_t>(std::stoul(*vnf)),
                      std::stod(*tau)};
    }
    if (kind == "NC_FORWARD_TAB") {
      std::string table_text;
      for (const auto& [k, v] : fields) {
        if (k == "tab") table_text += v + '\n';
      }
      auto tab = ForwardingTable::parse(table_text);
      if (!tab) return std::nullopt;
      return NcForwardTab{std::move(*tab)};
    }
    if (kind == "NC_SETTINGS") {
      NcSettings s;
      auto gb = field("generation_blocks");
      auto bs = field("block_size");
      if (!gb || !bs) return std::nullopt;
      s.generation_blocks = static_cast<std::uint32_t>(std::stoul(*gb));
      s.block_size = static_cast<std::uint32_t>(std::stoul(*bs));
      for (const auto& [k, v] : fields) {
        if (k != "session") continue;
        std::istringstream fs(v);
        std::string id, role, port;
        if (!(fs >> id >> role >> port)) return std::nullopt;
        auto r = role_from_string(role);
        if (!r) return std::nullopt;
        s.sessions.push_back(SessionSetting{
            static_cast<coding::SessionId>(std::stoul(id)), *r,
            static_cast<std::uint16_t>(std::stoul(port))});
      }
      return s;
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace ncfn::ctrl
