#include "ctrl/signals.hpp"

#include <sstream>

#include "coding/strparse.hpp"

namespace ncfn::ctrl {

std::string to_string(VnfRole role) {
  switch (role) {
    case VnfRole::kForward:
      return "forward";
    case VnfRole::kRecode:
      return "recode";
    case VnfRole::kDecode:
      return "decode";
  }
  return "forward";
}

std::optional<VnfRole> role_from_string(std::string_view s) {
  if (s == "forward") return VnfRole::kForward;
  if (s == "recode") return VnfRole::kRecode;
  if (s == "decode") return VnfRole::kDecode;
  return std::nullopt;
}

namespace {

struct SerializeVisitor {
  std::ostringstream& out;

  void operator()(const NcStart& s) const {
    out << "NC_START\nsession " << s.session << '\n';
  }
  void operator()(const NcVnfStart& s) const {
    out << "NC_VNF_START\ndatacenter " << s.datacenter << "\ncount "
        << s.count << '\n';
  }
  void operator()(const NcVnfEnd& s) const {
    out << "NC_VNF_END\nvnf " << s.vnf_id << "\ntau " << s.tau_s << '\n';
  }
  void operator()(const NcForwardTab& s) const {
    out << "NC_FORWARD_TAB\n";
    // The table's own text format, minus comment lines, prefixed per line.
    std::istringstream in(s.table.serialize());
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      out << "tab " << line << '\n';
    }
  }
  void operator()(const NcSettings& s) const {
    out << "NC_SETTINGS\ngeneration_blocks " << s.generation_blocks
        << "\nblock_size " << s.block_size << '\n';
    for (const SessionSetting& ss : s.sessions) {
      out << "session " << ss.session << ' ' << to_string(ss.role) << ' '
          << ss.udp_port << '\n';
    }
  }
};

}  // namespace

std::string serialize(const Signal& s) {
  std::ostringstream out;
  std::visit(SerializeVisitor{out}, s);
  out << "END\n";
  return out.str();
}

const char* signal_name(const Signal& s) {
  return std::visit(
      [](const auto& sig) {
        using T = std::decay_t<decltype(sig)>;
        if constexpr (std::is_same_v<T, NcStart>) return "NC_START";
        if constexpr (std::is_same_v<T, NcVnfStart>) return "NC_VNF_START";
        if constexpr (std::is_same_v<T, NcVnfEnd>) return "NC_VNF_END";
        if constexpr (std::is_same_v<T, NcForwardTab>) return "NC_FORWARD_TAB";
        if constexpr (std::is_same_v<T, NcSettings>) return "NC_SETTINGS";
      },
      s);
}

namespace {

using coding::parse_num;

struct Fields {
  std::vector<std::pair<std::string, std::string>> kv;

  /// The value of a single-occurrence key; nullopt when absent or
  /// duplicated (a repeated scalar field is a malformed frame, not a
  /// silent first-wins).
  [[nodiscard]] std::optional<std::string> unique(
      const std::string& key) const {
    std::optional<std::string> found;
    for (const auto& [k, v] : kv) {
      if (k != key) continue;
      if (found.has_value()) return std::nullopt;
      found = v;
    }
    return found;
  }

  /// Every key is one of `allowed` — unknown fields reject the frame, so
  /// a parsed signal round-trips without dropping input.
  [[nodiscard]] bool keys_subset_of(
      std::initializer_list<const char*> allowed) const {
    for (const auto& [k, v] : kv) {
      bool known = false;
      for (const char* a : allowed) known |= (k == a);
      if (!known) return false;
    }
    return true;
  }
};

/// Parse a single-occurrence numeric field of the frame.
template <typename T>
std::optional<T> num_field(const Fields& fields, const std::string& key) {
  const auto v = fields.unique(key);
  if (!v) return std::nullopt;
  return parse_num<T>(*v);
}

}  // namespace

std::optional<Signal> parse_signal(const std::string& text) {
  std::istringstream in(text);
  std::string kind;
  if (!std::getline(in, kind)) return std::nullopt;

  Fields fields;
  std::string line;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line == "END") {
      terminated = true;
      break;
    }
    const auto space = line.find(' ');
    if (space == std::string::npos) return std::nullopt;
    fields.kv.emplace_back(line.substr(0, space), line.substr(space + 1));
  }
  // Unterminated frames and trailing bytes after END both reject: the
  // frame must be exactly [kind, fields..., END].
  if (!terminated || in.peek() != std::istringstream::traits_type::eof()) {
    return std::nullopt;
  }

  if (kind == "NC_START") {
    if (!fields.keys_subset_of({"session"})) return std::nullopt;
    const auto v = num_field<coding::SessionId>(fields, "session");
    if (!v) return std::nullopt;
    return NcStart{*v};
  }
  if (kind == "NC_VNF_START") {
    if (!fields.keys_subset_of({"datacenter", "count"})) return std::nullopt;
    const auto dc = num_field<std::uint32_t>(fields, "datacenter");
    const auto count = num_field<std::uint32_t>(fields, "count");
    if (!dc || !count) return std::nullopt;
    return NcVnfStart{*dc, *count};
  }
  if (kind == "NC_VNF_END") {
    if (!fields.keys_subset_of({"vnf", "tau"})) return std::nullopt;
    const auto vnf = num_field<std::uint32_t>(fields, "vnf");
    const auto tau = num_field<double>(fields, "tau");
    if (!vnf || !tau) return std::nullopt;
    return NcVnfEnd{*vnf, *tau};
  }
  if (kind == "NC_FORWARD_TAB") {
    if (!fields.keys_subset_of({"tab"})) return std::nullopt;
    std::string table_text;
    for (const auto& [k, v] : fields.kv) {
      if (k == "tab") table_text += v + '\n';
    }
    auto tab = ForwardingTable::parse(table_text);
    if (!tab) return std::nullopt;
    return NcForwardTab{std::move(*tab)};
  }
  if (kind == "NC_SETTINGS") {
    if (!fields.keys_subset_of({"generation_blocks", "block_size",
                                "session"})) {
      return std::nullopt;
    }
    NcSettings s;
    const auto gb = num_field<std::uint32_t>(fields, "generation_blocks");
    const auto bs = num_field<std::uint32_t>(fields, "block_size");
    if (!gb || !bs) return std::nullopt;
    s.generation_blocks = *gb;
    s.block_size = *bs;
    for (const auto& [k, v] : fields.kv) {
      if (k != "session") continue;
      // Exactly "<id> <role> <port>" — no extra tokens.
      std::istringstream fs(v);
      std::string id, role, port, extra;
      if (!(fs >> id >> role >> port) || (fs >> extra)) return std::nullopt;
      const auto sid = parse_num<coding::SessionId>(id);
      const auto r = role_from_string(role);
      const auto p = parse_num<std::uint16_t>(port);
      if (!sid || !r || !p) return std::nullopt;
      s.sessions.push_back(SessionSetting{*sid, *r, *p});
    }
    return s;
  }
  return std::nullopt;
}

}  // namespace ncfn::ctrl
