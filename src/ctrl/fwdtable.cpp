#include "ctrl/fwdtable.hpp"

#include <sstream>
#include <string_view>

#include "coding/strparse.hpp"

namespace ncfn::ctrl {

std::string ForwardingTable::serialize() const {
  std::ostringstream out;
  out << "# ncfn forwarding table: session next-hop[,next-hop...]\n";
  for (const auto& [session, hops] : entries_) {
    out << session;
    for (const NextHop& h : hops) out << ' ' << h.node << ':' << h.port;
    out << '\n';
  }
  return out.str();
}

std::optional<ForwardingTable> ForwardingTable::parse(
    const std::string& text) {
  using coding::parse_num;
  // A record line is small: a session id plus a handful of node:port
  // hops. Anything longer is attacker-shaped, not a table.
  constexpr std::size_t kMaxLineBytes = 512;

  ForwardingTable tab;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const auto nl = text.find('\n', pos);
    // The file format is newline-terminated records; bytes after the
    // last record (a final line with no '\n') mean truncation or
    // concatenation garbage — reject rather than guess.
    if (nl == std::string::npos) return std::nullopt;
    std::string_view line(text.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.size() > kMaxLineBytes) return std::nullopt;
    if (line.empty() || line[0] == '#') continue;

    std::istringstream ls{std::string(line)};
    std::string tok;
    if (!(ls >> tok)) continue;  // whitespace-only line
    const auto session = parse_num<std::uint32_t>(tok);
    if (!session) return std::nullopt;
    if (tab.find(*session) != nullptr) return std::nullopt;  // duplicate
    std::vector<NextHop> hops;
    while (ls >> tok) {
      const auto colon = tok.find(':');
      if (colon == std::string::npos) return std::nullopt;
      const std::string_view tv(tok);
      const auto node = parse_num<std::uint32_t>(tv.substr(0, colon));
      const auto port = parse_num<std::uint16_t>(tv.substr(colon + 1));
      if (!node || !port) return std::nullopt;
      hops.push_back(NextHop{*node, *port});
    }
    tab.set(*session, std::move(hops));
  }
  return tab;
}

std::size_t ForwardingTable::diff_entries(const ForwardingTable& a,
                                          const ForwardingTable& b) {
  std::size_t diff = 0;
  for (const auto& [session, hops] : a.entries_) {
    const auto* other = b.find(session);
    if (other == nullptr || *other != hops) ++diff;
  }
  for (const auto& [session, hops] : b.entries_) {
    if (a.find(session) == nullptr) ++diff;
  }
  return diff;
}

}  // namespace ncfn::ctrl
