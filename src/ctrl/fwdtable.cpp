#include "ctrl/fwdtable.hpp"

#include <charconv>
#include <sstream>

namespace ncfn::ctrl {

namespace {
bool parse_u32(std::string_view s, std::uint32_t& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}
bool parse_u16(std::string_view s, std::uint16_t& out) {
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}
}  // namespace

std::string ForwardingTable::serialize() const {
  std::ostringstream out;
  out << "# ncfn forwarding table: session next-hop[,next-hop...]\n";
  for (const auto& [session, hops] : entries_) {
    out << session;
    for (const NextHop& h : hops) out << ' ' << h.node << ':' << h.port;
    out << '\n';
  }
  return out.str();
}

std::optional<ForwardingTable> ForwardingTable::parse(
    const std::string& text) {
  ForwardingTable tab;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    std::uint32_t session = 0;
    if (!parse_u32(tok, session)) return std::nullopt;
    std::vector<NextHop> hops;
    while (ls >> tok) {
      const auto colon = tok.find(':');
      if (colon == std::string::npos) return std::nullopt;
      NextHop h;
      if (!parse_u32(std::string_view(tok).substr(0, colon), h.node) ||
          !parse_u16(std::string_view(tok).substr(colon + 1), h.port)) {
        return std::nullopt;
      }
      hops.push_back(h);
    }
    tab.set(session, std::move(hops));
  }
  return tab;
}

std::size_t ForwardingTable::diff_entries(const ForwardingTable& a,
                                          const ForwardingTable& b) {
  std::size_t diff = 0;
  for (const auto& [session, hops] : a.entries_) {
    const auto* other = b.find(session);
    if (other == nullptr || *other != hops) ++diff;
  }
  for (const auto& [session, hops] : b.entries_) {
    if (a.find(session) == nullptr) ++diff;
  }
  return diff;
}

}  // namespace ncfn::ctrl
