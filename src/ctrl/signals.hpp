// Control-plane signals (Sec. III.A).
//
// The controller drives daemons with five message types:
//   NC_START        — begin network-coding-enabled transmission
//   NC_VNF_START    — launch N new VNFs (VMs) in a data center
//   NC_VNF_END      — a VNF is no longer used; shut down after tau
//   NC_FORWARD_TAB  — replace a daemon's forwarding table
//   NC_SETTINGS     — roles, session ids, UDP ports, generation/block sizes
//
// Messages serialize to a line-oriented text wire format so the control
// plane can be carried over the simulated network like any other traffic
// (and so parse/serialize round-trips are testable).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "coding/types.hpp"
#include "ctrl/fwdtable.hpp"

namespace ncfn::ctrl {

enum class VnfRole : std::uint8_t {
  kForward = 0,  // pass packets through unchanged
  kRecode = 1,   // pipelined re-encoding relay
  kDecode = 2,   // decode and deliver to the local application
};

[[nodiscard]] std::string to_string(VnfRole role);
[[nodiscard]] std::optional<VnfRole> role_from_string(std::string_view s);

struct NcStart {
  coding::SessionId session = 0;
};

struct NcVnfStart {
  std::uint32_t datacenter = 0;  // graph NodeIdx of the DC
  std::uint32_t count = 1;       // number of new VNFs (VMs)
};

struct NcVnfEnd {
  std::uint32_t vnf_id = 0;
  double tau_s = 600.0;  // shut down after tau unless reused
};

struct NcForwardTab {
  ForwardingTable table;
};

struct SessionSetting {
  coding::SessionId session = 0;
  VnfRole role = VnfRole::kForward;
  std::uint16_t udp_port = 0;
};

struct NcSettings {
  std::vector<SessionSetting> sessions;
  std::uint32_t generation_blocks = coding::kDefaultGenerationBlocks;
  std::uint32_t block_size = coding::kDefaultBlockSize;
};

using Signal =
    std::variant<NcStart, NcVnfStart, NcVnfEnd, NcForwardTab, NcSettings>;

/// Text wire format: first line is the signal name, following lines are
/// the payload; terminated by a line containing only "END".
[[nodiscard]] std::string serialize(const Signal& s);
[[nodiscard]] std::optional<Signal> parse_signal(const std::string& text);

/// Stable wire name of a signal's type ("NC_START", "NC_VNF_START", ...);
/// used as the metric / trace label for control-plane observability.
[[nodiscard]] const char* signal_name(const Signal& s);

}  // namespace ncfn::ctrl
