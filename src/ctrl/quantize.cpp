#include "ctrl/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace ncfn::ctrl {

namespace {
constexpr double kEps = 1e-9;

/// Packets per generation path p delivers at session rate lambda.
/// Computed and returned in 64 bits: a plain int cast of the double
/// product narrows, and (with a tiny lambda) can overflow int — which
/// float-cast-overflow UBSan rightly rejects. The floored value is an
/// exact integer, so llround converts it losslessly.
std::int64_t per_gen_count(double rate_mbps, double lambda_mbps,
                           std::size_t g) {
  return std::llround(
      std::floor(static_cast<double>(g) * rate_mbps / lambda_mbps + kEps));
}

/// True if every receiver collects >= g packets per generation at lambda.
bool integral_at(const std::vector<std::vector<PathRate>>& receivers,
                 double lambda_mbps, std::size_t g) {
  for (const auto& paths : receivers) {
    std::int64_t total = 0;
    for (const PathRate& pr : paths) {
      total += per_gen_count(pr.rate_mbps, lambda_mbps, g);
    }
    if (total < static_cast<std::int64_t>(g)) return false;
  }
  return true;
}
}  // namespace

QuantizeResult quantize_plan(DeploymentPlan& plan,
                             std::size_t generation_blocks) {
  QuantizeResult result;
  const auto g = static_cast<double>(generation_blocks);

  for (std::size_t m = 0; m < plan.session_ids.size(); ++m) {
    const double lambda = plan.lambda_mbps[m];
    if (lambda <= kEps) continue;
    auto& receivers = plan.path_rates[m];

    // Walk lambda down one quantum at a time until every receiver's
    // floored per-generation counts sum to >= g. Each step enlarges every
    // count monotonically, so this terminates quickly (and certainly by
    // lambda = max path rate / 1, where the largest path alone covers g).
    double lambda_q = lambda;
    const double quantum = lambda / g;
    while (lambda_q > quantum - kEps &&
           !integral_at(receivers, lambda_q, generation_blocks)) {
      lambda_q -= quantum;
    }
    if (lambda_q <= quantum - kEps) {
      // Degenerate (e.g., a receiver with no paths): zero the session.
      lambda_q = 0.0;
    }

    if (lambda_q < lambda - kEps) {
      ++result.sessions_reduced;
      result.rate_lost_mbps += lambda - lambda_q;
    }
    plan.lambda_mbps[m] = lambda_q;

    // Snap path rates to whole per-generation packet counts at lambda_q.
    for (auto& paths : receivers) {
      for (PathRate& pr : paths) {
        const std::int64_t n =
            lambda_q > kEps
                ? per_gen_count(pr.rate_mbps, lambda_q, generation_blocks)
                : 0;
        pr.rate_mbps = static_cast<double>(n) * lambda_q / g;
      }
    }

    // Recompute actual edge rates: f_m(e) = max over receivers of the
    // conceptual flow crossing e (Eqn. (1) of the paper).
    plan.edge_rate_mbps[m].clear();
    for (const auto& paths : receivers) {
      std::map<graph::EdgeIdx, double> conceptual;
      for (const PathRate& pr : paths) {
        if (pr.rate_mbps <= kEps) continue;
        for (graph::EdgeIdx e : pr.path.edges) {
          conceptual[e] += pr.rate_mbps;
        }
      }
      for (const auto& [e, r] : conceptual) {
        auto& cell = plan.edge_rate_mbps[m][e];
        cell = std::max(cell, r);
      }
    }
  }
  return result;
}

}  // namespace ncfn::ctrl
