// The central controller (Sec. III.A + Sec. IV.B).
//
// Owns the controller-side view of the overlay (topology with measured
// bandwidths/delays), the set of multicast sessions, the current
// deployment plan, and the per-DC VNF pools. Implements the paper's
// dynamic algorithms:
//
//   Alg. 1  Bandwidth variation — a per-VM bandwidth change > rho1 % that
//           persists for tau1 triggers an incremental re-solve of (2) with
//           unaffected sessions' flows frozen; scale-out happens only if
//           the re-solved objective beats keeping the current deployment.
//   Alg. 2  Delay changes — a link-delay change > rho2 % persisting for
//           tau2 updates the feasible path sets and re-solves.
//   Alg. 3  Session/receiver arrivals and departures — joins solve for the
//           new demand only (existing flows frozen, deployment as floor);
//           quits compare "grow flows into freed capacity" against
//           "shut down now-redundant VNFs" by objective value.
//
// VNF lifecycle: a VNF ordered to stop (NC_VNF_END) keeps running for tau
// seconds and is reused in preference to launching a new VM if demand
// returns — the paper measured VM launch at ~35 s versus ~376 ms for
// starting a coding function on a live VM.
//
// Every decision is exposed through a signal log (the NC_* messages of
// Sec. III.A) so daemons — or tests — can replay exactly what the
// controller ordered.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ctrl/problem.hpp"
#include "ctrl/signals.hpp"
#include "graph/topology.hpp"
#include "obs/obs.hpp"

namespace ncfn::ctrl {

/// UDP data port used for a session's coded traffic.
[[nodiscard]] inline std::uint16_t session_data_port(coding::SessionId id) {
  return static_cast<std::uint16_t>(20000 + id % 20000);
}

class Controller {
 public:
  struct Config {
    double alpha = 20.0;  // Mbps-equivalent cost per VNF
    double rho1 = 0.05;   // bandwidth-change threshold (fraction)
    double rho2 = 0.05;   // delay-change threshold (fraction)
    double tau_s = 600.0;   // idle-VNF grace period before shutdown
    double tau1_s = 600.0;  // bandwidth-change persistence requirement
    double tau2_s = 600.0;  // delay-change persistence requirement
    graph::PathSearchLimits path_limits;
    int max_vnfs_per_dc = 64;
    /// Declare a data center down when its daemon heartbeat is older
    /// than this at tick() time. 0 disables liveness tracking.
    double heartbeat_timeout_s = 0.0;
  };

  struct LoggedSignal {
    double at_s;
    std::uint32_t target_node;  // daemon's node (DC idx), or controller
    Signal signal;
  };

  Controller(graph::Topology topo, const Config& cfg);

  // ---- Session management (Alg. 3) ----
  /// SESSION JOIN. Returns false if the session could not be admitted
  /// (e.g., no feasible path for a fixed-rate session).
  bool add_session(const SessionSpec& spec, double now_s);
  /// SESSION QUIT.
  void remove_session(coding::SessionId id, double now_s);
  /// RECEIVER JOIN/QUIT on an existing session.
  bool add_receiver(coding::SessionId id, graph::NodeIdx receiver,
                    double now_s);
  void remove_receiver(coding::SessionId id, graph::NodeIdx receiver,
                       double now_s);

  // ---- Measurement reports (Algs. 1 & 2) ----
  /// Per-VM in/out bandwidth measured at data center v (the iperf3 probe).
  void report_bandwidth(graph::NodeIdx v, double bin_bps, double bout_bps,
                        double now_s);
  /// One-way delay measured on edge e (the ping probe).
  void report_delay(graph::EdgeIdx e, double delay_s, double now_s);

  // ---- Failure handling ----
  /// Explicit topology-change event: edge e failed (up=false) or
  /// recovered. Unlike bandwidth/delay noise there is no tau persistence
  /// filter — an outage re-solves immediately: sessions routed over the
  /// edge are re-planned around it (others stay frozen), new forwarding
  /// tables and NC_VNF_START/END signals are pushed, and a `resolve`
  /// trace event records the reaction. Recovery re-solves everything.
  void report_link_state(graph::EdgeIdx e, bool up, double now_s);
  /// Machine-level failure: every edge incident to v fails with it and
  /// the DC's VNF pool is lost (crashed VMs do not drain gracefully).
  void report_node_state(graph::NodeIdx v, bool up, double now_s);
  /// Daemon liveness report. A heartbeat from a down DC revives it.
  void heartbeat(graph::NodeIdx v, double now_s);
  /// Count of failure-triggered re-solves performed so far.
  [[nodiscard]] int resolves() const { return resolves_; }
  [[nodiscard]] bool node_down(graph::NodeIdx v) const {
    return down_nodes_.count(v) > 0;
  }

  /// Periodic housekeeping: applies measurement changes that persisted past
  /// tau1/tau2, expires draining VNFs, consolidates under-utilized ones,
  /// and declares DCs with stale heartbeats down.
  void tick(double now_s);

  // ---- Introspection ----
  [[nodiscard]] const DeploymentPlan& plan() const { return plan_; }
  [[nodiscard]] const graph::Topology& topology() const { return topo_; }
  [[nodiscard]] const std::vector<SessionSpec>& sessions() const {
    return sessions_;
  }
  [[nodiscard]] double total_throughput_mbps() const {
    return plan_.total_throughput_mbps();
  }
  /// VNFs currently alive (running + draining within their tau window).
  [[nodiscard]] int alive_vnfs() const;
  [[nodiscard]] int running_vnfs() const;
  [[nodiscard]] int draining_vnfs() const;
  [[nodiscard]] int vnfs_at(graph::NodeIdx v) const;
  /// Cumulative count of VM launches actually performed (reuse avoids them).
  [[nodiscard]] int vm_launches() const { return vm_launches_; }
  [[nodiscard]] int vm_reuses() const { return vm_reuses_; }

  [[nodiscard]] const std::vector<LoggedSignal>& signal_log() const {
    return signals_;
  }
  /// Forwarding table most recently pushed to a node (empty if none).
  [[nodiscard]] ForwardingTable forwarding_table(graph::NodeIdx node) const;

  /// Disable/enable the scaling machinery (used by the Lmax sweep, which
  /// the paper runs "disabling the scaling algorithm").
  void set_scaling_enabled(bool enabled) { scaling_enabled_ = enabled; }

  /// Attach an observability hub (must outlive the controller): every
  /// emitted NC_* signal is counted per kind under
  /// "ctrl.signals_emitted.<KIND>" and recorded in the event trace.
  void set_obs(obs::Observability* obs) { obs_ = obs; }

  /// Force a full re-solve of (2) from scratch (initial deployment or
  /// evaluation sweeps).
  void resolve_all(double now_s);

 private:
  struct VnfPool {
    int running = 0;
    std::deque<double> draining;  // shutdown deadlines, soonest first
  };
  struct PendingBandwidth {
    double bin_bps, bout_bps;
    double since_s;
  };
  struct PendingDelay {
    double delay_s;
    double since_s;
  };

  DeploymentPlan solve_with(const SolveOptions& opts) const;
  /// Sessions whose current plan touches data center v.
  [[nodiscard]] std::set<coding::SessionId> sessions_using_dc(
      graph::NodeIdx v) const;
  [[nodiscard]] std::set<coding::SessionId> sessions_using_edge(
      graph::EdgeIdx e) const;
  [[nodiscard]] std::set<coding::SessionId> all_session_ids() const;
  [[nodiscard]] std::map<graph::NodeIdx, int> current_deployment() const;

  /// Install `next` as the active plan: adjust pools (reuse draining VNFs,
  /// launch, or begin draining), emit NC_* signals, push table updates.
  void apply_plan(DeploymentPlan next, double now_s);
  void emit(double now_s, std::uint32_t target, Signal s);
  void apply_bandwidth_change(graph::NodeIdx v, const PendingBandwidth& pb,
                              double now_s);
  void apply_delay_change(graph::EdgeIdx e, const PendingDelay& pd,
                          double now_s);
  /// Re-solve with only `affected` sessions unfrozen and install the
  /// result; records the `resolve` trace event and counter.
  void resolve_after_failure(const std::set<coding::SessionId>& affected,
                             const char* cause, double now_s);

  graph::Topology topo_;
  Config cfg_;
  std::vector<SessionSpec> sessions_;
  DeploymentPlan plan_;
  std::map<graph::NodeIdx, VnfPool> pools_;
  std::map<graph::NodeIdx, PendingBandwidth> pending_bw_;
  std::map<graph::EdgeIdx, PendingDelay> pending_delay_;
  std::map<graph::NodeIdx, double> last_heartbeat_;
  std::set<graph::NodeIdx> down_nodes_;
  int resolves_ = 0;
  std::map<graph::NodeIdx, ForwardingTable> pushed_tables_;
  std::vector<LoggedSignal> signals_;
  obs::Observability* obs_ = nullptr;
  bool scaling_enabled_ = true;
  int vm_launches_ = 0;
  int vm_reuses_ = 0;
};

}  // namespace ncfn::ctrl
