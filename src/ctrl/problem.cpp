#include "ctrl/problem.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lp/simplex.hpp"

namespace ncfn::ctrl {

namespace {

constexpr double kRateEps = 1e-6;  // Mbps below this is "no flow"

double mbps(double bps) {
  return std::isfinite(bps) ? bps / 1e6 : graph::kInf;
}

/// All LP variable indices for one solve.
struct VarIndex {
  // pvar[m][k][pi]: conceptual flow rate on path pi of receiver k.
  std::vector<std::vector<std::vector<int>>> pvar;
  // evar[m]: edge -> f_m(e) variable.
  std::vector<std::map<graph::EdgeIdx, int>> evar;
  std::vector<int> lvar;               // lambda_m
  std::map<graph::NodeIdx, int> xvar;  // x_v
};

struct BuildResult {
  lp::Problem lp;
  VarIndex vars;
};

/// Candidate path sets per (session, receiver); frozen sessions reuse the
/// paths of the previous plan.
std::vector<std::vector<std::vector<graph::Path>>> collect_paths(
    const DeploymentProblem& prob, const SolveOptions& opts) {
  std::vector<std::vector<std::vector<graph::Path>>> paths(
      prob.sessions.size());
  for (std::size_t m = 0; m < prob.sessions.size(); ++m) {
    const SessionSpec& s = prob.sessions[m];
    paths[m].resize(s.receivers.size());
    const bool frozen =
        opts.frozen_sessions.count(s.id) > 0 && opts.previous != nullptr;
    std::optional<std::size_t> prev_m;
    if (frozen) prev_m = opts.previous->session_index(s.id);
    for (std::size_t k = 0; k < s.receivers.size(); ++k) {
      if (prev_m && k < opts.previous->path_rates[*prev_m].size()) {
        for (const PathRate& pr : opts.previous->path_rates[*prev_m][k]) {
          paths[m][k].push_back(pr.path);
        }
      } else {
        paths[m][k] = graph::feasible_paths(*prob.topo, s.source,
                                            s.receivers[k], s.lmax_s,
                                            prob.path_limits);
      }
    }
  }
  return paths;
}

BuildResult build_lp(
    const DeploymentProblem& prob, const SolveOptions& opts,
    const std::vector<std::vector<std::vector<graph::Path>>>& paths) {
  const graph::Topology& topo = *prob.topo;
  BuildResult out;
  lp::Problem& lp = out.lp;
  VarIndex& vars = out.vars;
  const std::size_t nm = prob.sessions.size();

  // ---- Variables ----
  vars.pvar.resize(nm);
  vars.evar.resize(nm);
  vars.lvar.resize(nm);
  for (std::size_t m = 0; m < nm; ++m) {
    const SessionSpec& s = prob.sessions[m];
    vars.pvar[m].resize(s.receivers.size());
    std::set<graph::EdgeIdx> session_edges;
    for (std::size_t k = 0; k < s.receivers.size(); ++k) {
      for (std::size_t pi = 0; pi < paths[m][k].size(); ++pi) {
        vars.pvar[m][k].push_back(lp.add_var(0.0));
        for (graph::EdgeIdx e : paths[m][k][pi].edges) session_edges.insert(e);
      }
    }
    for (graph::EdgeIdx e : session_edges) {
      // Tiny negative cost on actual flow: among throughput-optimal
      // solutions, prefer the one using the least bandwidth (the paper's
      // stated efficiency goal). This also keeps flow splits "clean" —
      // without it the LP may spread a generation's packets so thinly
      // across relays that no single relay ever reaches full rank.
      vars.evar[m][e] = lp.add_var(-1e-4);
    }
    vars.lvar[m] = lp.add_var(1.0);  // throughput term of the objective
    if (s.max_rate_mbps) lp.set_upper_bound(vars.lvar[m], *s.max_rate_mbps);
  }
  // One x_v per data center. Cost -alpha; if alpha == 0, a tiny epsilon
  // cost keeps the deployment minimal instead of arbitrary.
  const double xcost = prob.alpha > 0 ? -prob.alpha : -1e-6;
  for (graph::NodeIdx v : topo.data_centers()) {
    const int x = lp.add_var(xcost, static_cast<double>(prob.max_vnfs_per_dc));
    vars.xvar[v] = x;
  }

  // ---- Fixings ----
  for (std::size_t m = 0; m < nm; ++m) {
    const SessionSpec& s = prob.sessions[m];
    const bool frozen =
        opts.frozen_sessions.count(s.id) > 0 && opts.previous != nullptr;
    if (frozen) {
      const auto prev_m = opts.previous->session_index(s.id);
      if (prev_m) {
        const DeploymentPlan& prev = *opts.previous;
        for (std::size_t k = 0; k < s.receivers.size(); ++k) {
          if (k >= prev.path_rates[*prev_m].size()) continue;
          for (std::size_t pi = 0; pi < vars.pvar[m][k].size(); ++pi) {
            lp.fix(vars.pvar[m][k][pi],
                   prev.path_rates[*prev_m][k][pi].rate_mbps);
          }
        }
        for (const auto& [e, var] : vars.evar[m]) {
          const auto it = prev.edge_rate_mbps[*prev_m].find(e);
          lp.fix(var, it == prev.edge_rate_mbps[*prev_m].end() ? 0.0
                                                               : it->second);
        }
        lp.fix(vars.lvar[m], prev.lambda_mbps[*prev_m]);
        continue;
      }
    }
    if (s.fixed_rate_mbps) lp.fix(vars.lvar[m], *s.fixed_rate_mbps);
  }
  for (const auto& [v, n] : opts.vnf_fixed) {
    if (auto it = vars.xvar.find(v); it != vars.xvar.end()) {
      lp.fix(it->second, static_cast<double>(n));
    }
  }
  for (const auto& [v, n] : opts.vnf_floor) {
    if (opts.vnf_fixed.count(v)) continue;
    if (auto it = vars.xvar.find(v); it != vars.xvar.end()) {
      lp.add_constraint({{it->second, 1.0}}, lp::Rel::kGe,
                        static_cast<double>(n));
    }
  }

  // ---- (2a) lambda_m <= sum_p f^k_m(p), per receiver ----
  for (std::size_t m = 0; m < nm; ++m) {
    for (std::size_t k = 0; k < vars.pvar[m].size(); ++k) {
      std::vector<lp::Term> terms{{vars.lvar[m], 1.0}};
      for (int pv : vars.pvar[m][k]) terms.push_back({pv, -1.0});
      lp.add_constraint(std::move(terms), lp::Rel::kLe, 0.0);
    }
  }

  // ---- (2b) sum_{p ni e} f^k_m(p) <= f_m(e) ----
  for (std::size_t m = 0; m < nm; ++m) {
    for (std::size_t k = 0; k < vars.pvar[m].size(); ++k) {
      std::map<graph::EdgeIdx, std::vector<int>> by_edge;
      for (std::size_t pi = 0; pi < paths[m][k].size(); ++pi) {
        for (graph::EdgeIdx e : paths[m][k][pi].edges) {
          by_edge[e].push_back(vars.pvar[m][k][pi]);
        }
      }
      for (const auto& [e, pvs] : by_edge) {
        std::vector<lp::Term> terms;
        terms.reserve(pvs.size() + 1);
        for (int pv : pvs) terms.push_back({pv, 1.0});
        terms.push_back({vars.evar[m].at(e), -1.0});
        lp.add_constraint(std::move(terms), lp::Rel::kLe, 0.0);
      }
    }
  }

  // ---- Per-DC caps: (2c) inbound, (2d) outbound, (2e) coding capacity ----
  for (const auto& [v, xv] : vars.xvar) {
    std::vector<lp::Term> in_terms, out_terms;
    for (std::size_t m = 0; m < nm; ++m) {
      for (const auto& [e, var] : vars.evar[m]) {
        const graph::EdgeInfo& ei = topo.edge(e);
        if (ei.to == v) in_terms.push_back({var, 1.0});
        if (ei.from == v) out_terms.push_back({var, 1.0});
      }
    }
    const graph::NodeInfo& ni = topo.node(v);
    if (!in_terms.empty()) {
      if (std::isfinite(ni.bin_bps)) {
        auto t = in_terms;
        t.push_back({xv, -mbps(ni.bin_bps)});
        lp.add_constraint(std::move(t), lp::Rel::kLe, 0.0);  // (2c)
      }
      if (std::isfinite(ni.vnf_capacity_bps)) {
        auto t = in_terms;
        t.push_back({xv, -mbps(ni.vnf_capacity_bps)});
        lp.add_constraint(std::move(t), lp::Rel::kLe, 0.0);  // (2e)
      }
    }
    if (!out_terms.empty() && std::isfinite(ni.bout_bps)) {
      auto t = out_terms;
      t.push_back({xv, -mbps(ni.bout_bps)});
      lp.add_constraint(std::move(t), lp::Rel::kLe, 0.0);  // (2d)
    }
  }

  // ---- (2c') receiver inbound, (2d') source outbound ----
  for (std::size_t m = 0; m < nm; ++m) {
    const SessionSpec& s = prob.sessions[m];
    for (graph::NodeIdx d : s.receivers) {
      const graph::NodeInfo& ni = topo.node(d);
      if (!std::isfinite(ni.bin_bps)) continue;
      std::vector<lp::Term> terms;
      for (const auto& [e, var] : vars.evar[m]) {
        if (topo.edge(e).to == d) terms.push_back({var, 1.0});
      }
      if (!terms.empty()) {
        lp.add_constraint(std::move(terms), lp::Rel::kLe, mbps(ni.bin_bps));
      }
    }
    const graph::NodeInfo& src = topo.node(s.source);
    if (std::isfinite(src.bout_bps)) {
      std::vector<lp::Term> terms;
      for (const auto& [e, var] : vars.evar[m]) {
        if (topo.edge(e).from == s.source) terms.push_back({var, 1.0});
      }
      if (!terms.empty()) {
        lp.add_constraint(std::move(terms), lp::Rel::kLe, mbps(src.bout_bps));
      }
    }
  }

  // ---- Per-edge capacity extension ----
  std::set<graph::EdgeIdx> used_edges;
  for (std::size_t m = 0; m < nm; ++m) {
    for (const auto& [e, var] : vars.evar[m]) used_edges.insert(e);
  }
  for (graph::EdgeIdx e : used_edges) {
    const graph::EdgeInfo& ei = topo.edge(e);
    if (!std::isfinite(ei.capacity_bps)) continue;
    std::vector<lp::Term> terms;
    for (std::size_t m = 0; m < nm; ++m) {
      if (auto it = vars.evar[m].find(e); it != vars.evar[m].end()) {
        terms.push_back({it->second, 1.0});
      }
    }
    lp.add_constraint(std::move(terms), lp::Rel::kLe, mbps(ei.capacity_bps));
  }

  return out;
}

DeploymentPlan extract_plan(
    const DeploymentProblem& prob, const VarIndex& vars,
    const lp::Solution& sol,
    const std::vector<std::vector<std::vector<graph::Path>>>& paths,
    const std::map<graph::NodeIdx, int>& x_int) {
  DeploymentPlan plan;
  plan.feasible = true;
  plan.lambda_mbps.resize(prob.sessions.size(), 0.0);
  plan.edge_rate_mbps.resize(prob.sessions.size());
  plan.path_rates.resize(prob.sessions.size());
  double sum_lambda = 0.0;
  for (std::size_t m = 0; m < prob.sessions.size(); ++m) {
    plan.session_ids.push_back(prob.sessions[m].id);
    plan.lambda_mbps[m] = sol.x[static_cast<std::size_t>(vars.lvar[m])];
    sum_lambda += plan.lambda_mbps[m];
    for (const auto& [e, var] : vars.evar[m]) {
      const double r = sol.x[static_cast<std::size_t>(var)];
      if (r > kRateEps) plan.edge_rate_mbps[m][e] = r;
    }
    plan.path_rates[m].resize(vars.pvar[m].size());
    for (std::size_t k = 0; k < vars.pvar[m].size(); ++k) {
      for (std::size_t pi = 0; pi < vars.pvar[m][k].size(); ++pi) {
        plan.path_rates[m][k].push_back(PathRate{
            paths[m][k][pi],
            sol.x[static_cast<std::size_t>(vars.pvar[m][k][pi])]});
      }
    }
  }
  int total_x = 0;
  for (const auto& [v, n] : x_int) {
    if (n > 0) plan.vnf_count[v] = n;
    total_x += n;
  }
  plan.objective = sum_lambda - prob.alpha * total_x;
  return plan;
}

}  // namespace

double DeploymentPlan::total_throughput_mbps() const {
  double sum = 0.0;
  for (double l : lambda_mbps) sum += l;
  return sum;
}

int DeploymentPlan::total_vnfs() const {
  int sum = 0;
  for (const auto& [v, n] : vnf_count) sum += n;
  return sum;
}

std::optional<std::size_t> DeploymentPlan::session_index(
    coding::SessionId id) const {
  for (std::size_t i = 0; i < session_ids.size(); ++i) {
    if (session_ids[i] == id) return i;
  }
  return std::nullopt;
}

std::vector<std::pair<graph::NodeIdx, double>> DeploymentPlan::next_hops(
    const graph::Topology& topo, std::size_t m, graph::NodeIdx node) const {
  std::vector<std::pair<graph::NodeIdx, double>> hops;
  for (const auto& [e, rate] : edge_rate_mbps.at(m)) {
    if (topo.edge(e).from == node) hops.emplace_back(topo.edge(e).to, rate);
  }
  return hops;
}

DeploymentPlan solve_deployment(const DeploymentProblem& prob,
                                const SolveOptions& opts) {
  assert(prob.topo != nullptr);
  const auto paths = collect_paths(prob, opts);

  // Pass 1: LP relaxation (x continuous).
  BuildResult rel = build_lp(prob, opts, paths);
  const lp::Solution rsol = rel.lp.solve();
  if (!rsol.ok()) {
    DeploymentPlan failed;
    failed.relax_status = rsol.status;
    return failed;
  }

  // Round x up, respecting caller floors/fixings.
  std::map<graph::NodeIdx, int> x_int;
  for (const auto& [v, var] : rel.vars.xvar) {
    const double frac = rsol.x[static_cast<std::size_t>(var)];
    int n = static_cast<int>(std::ceil(frac - 1e-6));
    if (auto it = opts.vnf_floor.find(v); it != opts.vnf_floor.end()) {
      n = std::max(n, it->second);
    }
    if (auto it = opts.vnf_fixed.find(v); it != opts.vnf_fixed.end()) {
      n = it->second;
    }
    x_int[v] = std::max(n, 0);
  }

  // Pass 2: flows with the integer deployment fixed.
  SolveOptions fixed_opts = opts;
  fixed_opts.vnf_fixed = x_int;
  fixed_opts.vnf_floor.clear();
  BuildResult fin = build_lp(prob, fixed_opts, paths);
  const lp::Solution fsol = fin.lp.solve();
  if (!fsol.ok()) {
    DeploymentPlan failed;
    failed.relax_status = rsol.status;
    failed.final_status = fsol.status;
    return failed;
  }

  DeploymentPlan plan = extract_plan(prob, fin.vars, fsol, paths, x_int);
  plan.relax_status = rsol.status;
  plan.final_status = fsol.status;
  return plan;
}

}  // namespace ncfn::ctrl
