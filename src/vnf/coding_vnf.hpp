// The virtual network coding function — the paper's data plane
// (Sec. III.B.2), one object per data center, with one processing lane per
// deployed VNF instance (VM).
//
// Behaviour per received coded packet, as in the paper:
//   * the packet is stored in the per-(session, generation) FIFO buffer;
//   * a RECODE-role VNF "generates an encoded packet immediately after it
//     receives a packet from the same session and generation" (pipelined
//     recoding) — except the first packet of a generation, which is
//     forwarded unchanged;
//   * a FORWARD-role VNF copies packets through (the paper's routing-only
//     baseline);
//   * a DECODE-role VNF recovers a generation once it has enough linearly
//     independent packets and hands the blocks to the application sink.
//
// Rate conservation: a relay must emit at the rates the controller's plan
// assigned to its out-edges. Each (session, next-hop) pair carries a
// credit share = f(e_out) / sum of the session's inbound rates; every
// arrival adds the share and a packet is emitted per whole credit. This
// keeps relay output deterministic and exactly plan-shaped.
//
// Emission deferral: when upstream paths have different delays, a merge
// relay's early arrivals all come from the faster path, so per-arrival
// recoding would emit packets confined to that path's subspace — useless
// to the receiver that already has it (the classic pipelined-recoding
// pathology on skewed paths). An emission credit earned for a generation
// that is not yet full-rank is therefore held until the rank completes
// (usually the very next arrivals) or `recode_hold_s` expires, whichever
// is first. This preserves pipelining at sub-generation timescales while
// guaranteeing fully-mixed emissions on merge relays.
//
// Processing model (the DPDK substitution): each packet costs
//     service = fixed_overhead + 2 * g * block_size / proc_rate
// of lane time — one generation-sized Gaussian-elimination pass plus one
// recode pass over GF(2^8), with proc_rate calibrated against the real
// codec microbenchmarks. Packets arriving at a saturated lane queue up to
// `proc_queue_limit` and overflow is dropped; this is C(v) in the
// formulation and is what makes large generation sizes collapse in Fig. 4.
//
// Batched data plane (the BESS substitution): a lane is a batch server.
// Arrivals enqueue; each service event drains up to `max_batch` packets
// as one PacketBatch through a module pipeline (decode-ingest stage, then
// credit-check/recode-emit stage — see module.hpp), charging the batch
// k * service_time of lane time. Per-packet *simulated* cost is thus
// unchanged, but the real-CPU fixed costs — simulator events, RNG draws,
// map lookups, counter updates, pivot scans — amortize across the batch,
// and every run of same-(session, generation) packets recodes through one
// Decoder::recode_batch coefficient-matrix sweep and leaves through one
// netsim burst (one departure + one delivery event). `max_batch = 1`
// reproduces strict per-packet operation and is the bench baseline.
//
// When a DC runs several VNF instances, "packets belonging to the same
// generation are dispatched to the same VNF instance" by hashing
// (session, generation) over the lanes, exactly as in Sec. IV.A.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "coding/batch.hpp"
#include "coding/buffer.hpp"
#include "coding/packet.hpp"
#include "ctrl/signals.hpp"
#include "netsim/network.hpp"

namespace ncfn::vnf {

struct VnfConfig {
  coding::CodingParams params;
  /// GF(2^8) bulk-op throughput of one VNF instance, bytes/second. The
  /// default models a 2016-era cloud VM core doing scalar table-driven
  /// muladd (the paper's testbed); this repo's own codec measures ~1.9 GB/s
  /// scalar, ~15 GB/s SSSE3, ~21 GB/s AVX2 and ~30 GB/s GFNI on the bulk
  /// kernels (bench_micro_codec), so raise this if you want to model
  /// modern SIMD-equipped VNFs.
  double proc_rate_Bps = 4e8;
  /// Fixed per-packet overhead (header parse, socket, dispatch).
  double fixed_overhead_s = 5e-6;
  std::size_t proc_queue_limit = 4096;  // packets per lane
  /// Recode-emission hold (see the class comment): an earned emission for
  /// a generation whose decoding matrix is not yet full-rank is deferred
  /// until the rank completes or this timeout expires. Covers the arrival
  /// skew between upstream paths; 0 disables deferral (strict per-arrival
  /// emission, the ablation baseline).
  double recode_hold_s = 0.050;
  /// Largest packet vector a lane drains per service event (clamped to
  /// [1, coding::kBatchCapacity] at construction). 1 reproduces strict
  /// per-packet processing — the pre-batching baseline the pps bench
  /// compares against. Batches larger than 1 only form under lane
  /// queueing (back-to-back arrivals), so lightly loaded runs behave
  /// identically at any setting.
  std::size_t max_batch = coding::kBatchCapacity;
  std::uint32_t seed = 1;
};

struct NextHopRate {
  ctrl::NextHop hop;
  double share = 1.0;  // credits earned per inbound packet
};

/// Routing-only (Non-NC) forwarding state: the session's generations are
/// dispatched across packed multicast trees (see app/baseline.hpp); every
/// node knows, per tree, its own next hops, and forwards each *innovative*
/// packet of a generation along the generation's tree. Innovation-only
/// forwarding dedupes the DAG union of paths without per-packet ids.
struct TreeRouting {
  std::vector<std::uint16_t> schedule;  // generation -> tree index, cyclic
  std::vector<std::vector<ctrl::NextHop>> hops_per_tree;  // this node's hops
};

struct VnfSessionStats {
  std::uint64_t received = 0;
  std::uint64_t innovative = 0;
  std::uint64_t emitted = 0;
  std::uint64_t proc_dropped = 0;  // arrivals dropped at a saturated lane
  std::uint64_t decoded_generations = 0;
};

/// Decoded-generation sink: (session, generation, blocks, params).
using DecodeSink = std::function<void(
    coding::SessionId, coding::GenerationId,
    std::vector<std::vector<std::uint8_t>> blocks)>;

/// Per-packet tap, invoked after each processed packet:
/// (session, generation, rank after, complete, innovative).
using PacketTap = std::function<void(coding::SessionId, coding::GenerationId,
                                     std::size_t, bool, bool)>;

class CodingVnf {
 public:
  CodingVnf(netsim::Network& net, netsim::NodeId node,
            const VnfConfig& cfg);
  ~CodingVnf();

  CodingVnf(const CodingVnf&) = delete;
  CodingVnf& operator=(const CodingVnf&) = delete;

  [[nodiscard]] netsim::NodeId node() const { return node_; }

  /// Number of VNF instances (VMs) at this DC. Changing the lane count
  /// re-shards future generations; in-flight generation state is kept.
  void set_lanes(std::size_t lanes);
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  /// Configure a session: role and listening port (NC_SETTINGS).
  void configure_session(coding::SessionId id, ctrl::VnfRole role,
                         netsim::Port port);
  void drop_session(coding::SessionId id);

  /// Set the next hops and their credit shares for a session
  /// (NC_FORWARD_TAB plus the plan's rates).
  void set_next_hops(coding::SessionId id, std::vector<NextHopRate> hops);

  /// Switch a session to routing-only tree forwarding (the Non-NC
  /// baseline); replaces any credit-based next hops.
  void set_tree_routing(coding::SessionId id, TreeRouting routing);

  /// Pause/resume the coding function (the SIGUSR1 dance around a
  /// forwarding-table load). While paused, arrivals are buffered in the
  /// processing queue but nothing is emitted.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Kill the coding process mid-flight: every buffered generation's
  /// decoder/recoder state, credit ledger and queued work is lost, and
  /// arrivals are dropped until restart(). Session/port configuration is
  /// the daemon's (it re-pushes settings and tables on restart), so it
  /// survives here.
  void crash();
  /// Cold restart after crash(): accepts traffic again with empty state.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  void set_decode_sink(DecodeSink sink) { sink_ = std::move(sink); }
  /// Observe every processed packet (used by receivers for repair timers).
  void set_packet_tap(PacketTap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const VnfSessionStats& stats(coding::SessionId id) const;
  [[nodiscard]] const VnfConfig& config() const { return cfg_; }
  /// Decoding state of a buffered generation, or nullptr.
  [[nodiscard]] coding::Decoder* find_decoder(coding::SessionId s,
                                              coding::GenerationId g) {
    return buffer_.find(s, g);
  }
  [[nodiscard]] const coding::GenerationBuffer& buffer() const {
    return buffer_;
  }

 private:
  struct SessionState {
    ctrl::VnfRole role = ctrl::VnfRole::kForward;
    netsim::Port port = 0;
    std::vector<NextHopRate> hops;
    std::optional<TreeRouting> trees;
    // Per-generation emission ledger. Credits must be accounted per
    // generation, not globally: arrival streams from skewed upstream
    // paths interleave different generations, and a global ledger would
    // attribute tokens by arrival parity, starving some generations.
    struct GenLedger {
      std::vector<double> credit;          // per hop
      std::vector<std::uint32_t> deferred;  // earned but held emissions
      bool timer_armed = false;
    };
    std::map<coding::GenerationId, GenLedger> ledger;
    VnfSessionStats stats;
  };
  /// A lane is a batch server: arrivals queue here, and each service
  /// event drains up to cfg_.max_batch of them through the pipeline.
  struct Lane {
    netsim::Time busy_until = 0;
    std::deque<coding::CodedPacket> queue;
    bool draining = false;  // a drain event is scheduled
  };

  // Pipeline stages (module.hpp subclasses, defined in coding_vnf.cpp;
  // nested so they reach the VNF's session/buffer state directly).
  struct IngestStage;
  struct EmitStage;

  // Per-packet metadata bits the ingest stage annotates on the batch for
  // the emit stage (PacketBatch::meta).
  static constexpr std::uint8_t kMetaInnovative = 0x01;
  /// First packet of its generation and rank <= 1 after ingest: eligible
  /// for unchanged pass-through on a recode relay (Sec. III.B.2).
  static constexpr std::uint8_t kMetaFirstUncoded = 0x02;
  /// This packet completed the generation's rank.
  static constexpr std::uint8_t kMetaCompletedNow = 0x04;

  void on_datagram(const netsim::Datagram& d);
  void on_burst(std::span<netsim::Datagram> burst);
  /// Parse + lane admission; returns the lane index or npos on drop.
  std::size_t enqueue_datagram(const netsim::Datagram& d);
  /// Refresh the lane-backlog gauge (once per arrival burst, not per
  /// packet — Gauge::set only stores, intermediate values are invisible).
  void note_backlog();
  /// Arm a drain event for the lane if work is queued and none is armed.
  void start_drain(std::size_t lane);
  /// Service completion: pop up to k packets and run them as one batch.
  void drain(std::size_t lane, std::size_t k, std::uint64_t epoch);
  void run_pipeline(coding::PacketBatch& batch);
  void ingest_batch(coding::PacketBatch& batch);
  void emit_batch(coding::PacketBatch& batch);
  /// Credit accounting + emission for one same-(session, generation) run
  /// [i, j) of the batch.
  void credit_run(SessionState& st, coding::PacketBatch& batch,
                  std::size_t i, std::size_t j, coding::Decoder& dec);
  /// Emit counts[h] recoded packets to hop h (counts exclude linkless
  /// hops), generated through recode_batch in kBatchCapacity chunks.
  void emit_recoded_counts(SessionState& st, coding::Decoder& dec,
                           std::span<const std::size_t> counts);
  void flush_pending(coding::SessionId session, coding::GenerationId gen);
  /// Hand the accumulated out_burst_ to the network (no-op inside the
  /// pipeline, whose epilogue sends exactly once).
  void flush_burst();
  [[nodiscard]] double service_time() const;
  [[nodiscard]] std::size_t lane_of(coding::SessionId s,
                                    coding::GenerationId g) const;

  netsim::Network& net_;
  netsim::NodeId node_;
  VnfConfig cfg_;
  std::mt19937 rng_;
  coding::GenerationBuffer buffer_;
  // Per-function observability handles, bound from net_.obs() at
  // construction (all null when the network has no hub attached).
  obs::EventTrace* trace_ = nullptr;
  obs::Counter* m_received_ = nullptr;
  obs::Counter* m_innovative_ = nullptr;
  obs::Counter* m_emitted_ = nullptr;
  obs::Counter* m_recoded_ = nullptr;
  obs::Counter* m_proc_dropped_ = nullptr;
  obs::Counter* m_decoded_ = nullptr;
  obs::Counter* m_crash_dropped_ = nullptr;
  obs::Counter* m_batches_ = nullptr;  // pipeline runs (lane drains)
  obs::Gauge* m_lane_backlog_ = nullptr;  // packets queued across all lanes
  obs::Histogram* h_batch_size_ = nullptr;  // packets per pipeline run
  std::size_t queued_total_ = 0;
  std::map<coding::SessionId, SessionState> sessions_;
  // Arrival-path session cache: bursts are same-session runs, so only
  // the first packet of a run walks sessions_. Cleared on drop_session.
  coding::SessionId cached_session_ = 0;
  SessionState* cached_state_ = nullptr;
  std::vector<Lane> lanes_;
  bool paused_ = false;
  bool crashed_ = false;
  // Bumped on every crash: work admitted to a lane before the crash is
  // discarded at service time even if the function restarted meanwhile.
  std::uint64_t crash_epoch_ = 0;
  std::vector<coding::CodedPacket> paused_backlog_;
  DecodeSink sink_;
  PacketTap tap_;
  // Pipeline wiring and reusable hot-path scratch (no steady-state
  // allocation: the batches are pooled rows, the vectors keep capacity).
  std::unique_ptr<IngestStage> stage_ingest_;
  std::unique_ptr<EmitStage> stage_emit_;
  coding::PacketBatch batch_;           // lane-drain working batch
  coding::PacketBatch recode_scratch_;  // recode_batch output staging
  std::vector<netsim::Datagram> out_burst_;
  std::vector<std::size_t> recode_counts_;  // per-hop counts in credit runs
  std::vector<char> hop_link_ok_;           // per-hop link cache per run
  std::vector<std::size_t> touched_lanes_;  // burst-arrival scratch
  bool in_pipeline_ = false;
};

}  // namespace ncfn::vnf
