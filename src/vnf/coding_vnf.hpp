// The virtual network coding function — the paper's data plane
// (Sec. III.B.2), one object per data center, with one processing lane per
// deployed VNF instance (VM).
//
// Behaviour per received coded packet, as in the paper:
//   * the packet is stored in the per-(session, generation) FIFO buffer;
//   * a RECODE-role VNF "generates an encoded packet immediately after it
//     receives a packet from the same session and generation" (pipelined
//     recoding) — except the first packet of a generation, which is
//     forwarded unchanged;
//   * a FORWARD-role VNF copies packets through (the paper's routing-only
//     baseline);
//   * a DECODE-role VNF recovers a generation once it has enough linearly
//     independent packets and hands the blocks to the application sink.
//
// Rate conservation: a relay must emit at the rates the controller's plan
// assigned to its out-edges. Each (session, next-hop) pair carries a
// credit share = f(e_out) / sum of the session's inbound rates; every
// arrival adds the share and a packet is emitted per whole credit. This
// keeps relay output deterministic and exactly plan-shaped.
//
// Emission deferral: when upstream paths have different delays, a merge
// relay's early arrivals all come from the faster path, so per-arrival
// recoding would emit packets confined to that path's subspace — useless
// to the receiver that already has it (the classic pipelined-recoding
// pathology on skewed paths). An emission credit earned for a generation
// that is not yet full-rank is therefore held until the rank completes
// (usually the very next arrivals) or `recode_hold_s` expires, whichever
// is first. This preserves pipelining at sub-generation timescales while
// guaranteeing fully-mixed emissions on merge relays.
//
// Processing model (the DPDK substitution): each packet costs
//     service = fixed_overhead + 2 * g * block_size / proc_rate
// of lane time — one generation-sized Gaussian-elimination pass plus one
// recode pass over GF(2^8), with proc_rate calibrated against the real
// codec microbenchmarks. Packets arriving at a saturated lane queue up to
// `proc_queue_limit` and overflow is dropped; this is C(v) in the
// formulation and is what makes large generation sizes collapse in Fig. 4.
//
// When a DC runs several VNF instances, "packets belonging to the same
// generation are dispatched to the same VNF instance" by hashing
// (session, generation) over the lanes, exactly as in Sec. IV.A.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <random>
#include <vector>

#include "coding/buffer.hpp"
#include "coding/packet.hpp"
#include "ctrl/signals.hpp"
#include "netsim/network.hpp"

namespace ncfn::vnf {

struct VnfConfig {
  coding::CodingParams params;
  /// GF(2^8) bulk-op throughput of one VNF instance, bytes/second. The
  /// default models a 2016-era cloud VM core doing scalar table-driven
  /// muladd (the paper's testbed); this repo's own codec measures ~1.9 GB/s
  /// scalar, ~15 GB/s SSSE3, ~21 GB/s AVX2 and ~30 GB/s GFNI on the bulk
  /// kernels (bench_micro_codec), so raise this if you want to model
  /// modern SIMD-equipped VNFs.
  double proc_rate_Bps = 4e8;
  /// Fixed per-packet overhead (header parse, socket, dispatch).
  double fixed_overhead_s = 5e-6;
  std::size_t proc_queue_limit = 4096;  // packets per lane
  /// Recode-emission hold (see the class comment): an earned emission for
  /// a generation whose decoding matrix is not yet full-rank is deferred
  /// until the rank completes or this timeout expires. Covers the arrival
  /// skew between upstream paths; 0 disables deferral (strict per-arrival
  /// emission, the ablation baseline).
  double recode_hold_s = 0.050;
  std::uint32_t seed = 1;
};

struct NextHopRate {
  ctrl::NextHop hop;
  double share = 1.0;  // credits earned per inbound packet
};

/// Routing-only (Non-NC) forwarding state: the session's generations are
/// dispatched across packed multicast trees (see app/baseline.hpp); every
/// node knows, per tree, its own next hops, and forwards each *innovative*
/// packet of a generation along the generation's tree. Innovation-only
/// forwarding dedupes the DAG union of paths without per-packet ids.
struct TreeRouting {
  std::vector<std::uint16_t> schedule;  // generation -> tree index, cyclic
  std::vector<std::vector<ctrl::NextHop>> hops_per_tree;  // this node's hops
};

struct VnfSessionStats {
  std::uint64_t received = 0;
  std::uint64_t innovative = 0;
  std::uint64_t emitted = 0;
  std::uint64_t proc_dropped = 0;  // arrivals dropped at a saturated lane
  std::uint64_t decoded_generations = 0;
};

/// Decoded-generation sink: (session, generation, blocks, params).
using DecodeSink = std::function<void(
    coding::SessionId, coding::GenerationId,
    std::vector<std::vector<std::uint8_t>> blocks)>;

/// Per-packet tap, invoked after each processed packet:
/// (session, generation, rank after, complete, innovative).
using PacketTap = std::function<void(coding::SessionId, coding::GenerationId,
                                     std::size_t, bool, bool)>;

class CodingVnf {
 public:
  CodingVnf(netsim::Network& net, netsim::NodeId node,
            const VnfConfig& cfg);
  ~CodingVnf();

  CodingVnf(const CodingVnf&) = delete;
  CodingVnf& operator=(const CodingVnf&) = delete;

  [[nodiscard]] netsim::NodeId node() const { return node_; }

  /// Number of VNF instances (VMs) at this DC. Changing the lane count
  /// re-shards future generations; in-flight generation state is kept.
  void set_lanes(std::size_t lanes);
  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  /// Configure a session: role and listening port (NC_SETTINGS).
  void configure_session(coding::SessionId id, ctrl::VnfRole role,
                         netsim::Port port);
  void drop_session(coding::SessionId id);

  /// Set the next hops and their credit shares for a session
  /// (NC_FORWARD_TAB plus the plan's rates).
  void set_next_hops(coding::SessionId id, std::vector<NextHopRate> hops);

  /// Switch a session to routing-only tree forwarding (the Non-NC
  /// baseline); replaces any credit-based next hops.
  void set_tree_routing(coding::SessionId id, TreeRouting routing);

  /// Pause/resume the coding function (the SIGUSR1 dance around a
  /// forwarding-table load). While paused, arrivals are buffered in the
  /// processing queue but nothing is emitted.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  /// Kill the coding process mid-flight: every buffered generation's
  /// decoder/recoder state, credit ledger and queued work is lost, and
  /// arrivals are dropped until restart(). Session/port configuration is
  /// the daemon's (it re-pushes settings and tables on restart), so it
  /// survives here.
  void crash();
  /// Cold restart after crash(): accepts traffic again with empty state.
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  void set_decode_sink(DecodeSink sink) { sink_ = std::move(sink); }
  /// Observe every processed packet (used by receivers for repair timers).
  void set_packet_tap(PacketTap tap) { tap_ = std::move(tap); }

  [[nodiscard]] const VnfSessionStats& stats(coding::SessionId id) const;
  [[nodiscard]] const VnfConfig& config() const { return cfg_; }
  /// Decoding state of a buffered generation, or nullptr.
  [[nodiscard]] coding::Decoder* find_decoder(coding::SessionId s,
                                              coding::GenerationId g) {
    return buffer_.find(s, g);
  }
  [[nodiscard]] const coding::GenerationBuffer& buffer() const {
    return buffer_;
  }

 private:
  struct SessionState {
    ctrl::VnfRole role = ctrl::VnfRole::kForward;
    netsim::Port port = 0;
    std::vector<NextHopRate> hops;
    std::optional<TreeRouting> trees;
    // Per-generation emission ledger. Credits must be accounted per
    // generation, not globally: arrival streams from skewed upstream
    // paths interleave different generations, and a global ledger would
    // attribute tokens by arrival parity, starving some generations.
    struct GenLedger {
      std::vector<double> credit;          // per hop
      std::vector<std::uint32_t> deferred;  // earned but held emissions
      bool timer_armed = false;
    };
    std::map<coding::GenerationId, GenLedger> ledger;
    VnfSessionStats stats;
  };
  struct Lane {
    netsim::Time busy_until = 0;
    std::size_t queued = 0;
  };

  void on_datagram(const netsim::Datagram& d);
  void process(coding::CodedPacket pkt);
  void emit(SessionState& st, const coding::CodedPacket& arrival,
            coding::Decoder& dec, bool first_of_generation);
  void send_recoded(SessionState& st, coding::Decoder& dec, std::size_t hop);
  void flush_pending(coding::SessionId session, coding::GenerationId gen);
  [[nodiscard]] double service_time() const;
  [[nodiscard]] std::size_t lane_of(coding::SessionId s,
                                    coding::GenerationId g) const;

  netsim::Network& net_;
  netsim::NodeId node_;
  VnfConfig cfg_;
  std::mt19937 rng_;
  coding::GenerationBuffer buffer_;
  // Per-function observability handles, bound from net_.obs() at
  // construction (all null when the network has no hub attached).
  obs::EventTrace* trace_ = nullptr;
  obs::Counter* m_received_ = nullptr;
  obs::Counter* m_innovative_ = nullptr;
  obs::Counter* m_emitted_ = nullptr;
  obs::Counter* m_recoded_ = nullptr;
  obs::Counter* m_proc_dropped_ = nullptr;
  obs::Counter* m_decoded_ = nullptr;
  obs::Counter* m_crash_dropped_ = nullptr;
  obs::Gauge* m_lane_backlog_ = nullptr;  // packets queued across all lanes
  std::size_t queued_total_ = 0;
  std::map<coding::SessionId, SessionState> sessions_;
  std::vector<Lane> lanes_;
  bool paused_ = false;
  bool crashed_ = false;
  // Bumped on every crash: work admitted to a lane before the crash is
  // discarded at service time even if the function restarted meanwhile.
  std::uint64_t crash_epoch_ = 0;
  std::vector<coding::CodedPacket> paused_backlog_;
  DecodeSink sink_;
  PacketTap tap_;
};

}  // namespace ncfn::vnf
