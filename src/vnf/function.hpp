// Modular packet functions — the paper's future-work direction (Sec. VI):
// "Modularizing the system design ... so that our system can directly
// support a broad range of application scenarios beyond network coding,
// once the network coding related modules are replaced by other
// application-specific modules."
//
// A PacketFunction consumes one arriving payload and yields zero or more
// payloads to emit downstream; MiddleboxVnf (middlebox.hpp) hosts a chain
// of them on a node with the same processing-lane model as the coding
// VNF. The network-coding data plane keeps its specialized implementation
// (CodingVnf) for performance; these functions cover the framework's
// other middlebox roles.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ncfn::vnf {

class PacketFunction {
 public:
  virtual ~PacketFunction() = default;
  /// Process one arriving payload. Each returned payload is emitted to
  /// every configured next hop; returning {} swallows the packet.
  virtual std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Forwards every packet unchanged (a monitoring tap / pure relay).
class PassthroughFunction final : public PacketFunction {
 public:
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override {
    ++seen_;
    return {std::vector<std::uint8_t>(payload.begin(), payload.end())};
  }
  [[nodiscard]] std::string name() const override { return "passthrough"; }
  [[nodiscard]] std::uint64_t packets_seen() const { return seen_; }

 private:
  std::uint64_t seen_ = 0;
};

/// Forwards one packet in N (telemetry mirror / sampled monitoring).
class SamplerFunction final : public PacketFunction {
 public:
  explicit SamplerFunction(std::uint32_t one_in_n) : n_(one_in_n) {}
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override {
    if (++count_ % n_ != 0) return {};
    return {std::vector<std::uint8_t>(payload.begin(), payload.end())};
  }
  [[nodiscard]] std::string name() const override { return "sampler"; }

 private:
  std::uint32_t n_;
  std::uint64_t count_ = 0;
};

/// Appends a 4-byte FNV-1a checksum trailer (integrity middlebox, tag
/// side). Pair with ChecksumVerifyFunction downstream.
class ChecksumTagFunction final : public PacketFunction {
 public:
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] std::string name() const override { return "checksum-tag"; }

  [[nodiscard]] static std::uint32_t fnv1a(std::span<const std::uint8_t> d);
};

/// Strips and validates the checksum trailer; drops corrupt packets.
class ChecksumVerifyFunction final : public PacketFunction {
 public:
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] std::string name() const override { return "checksum-verify"; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::uint64_t dropped_ = 0;
};

/// Byte-level run-length compressor (WAN-optimizer stand-in). Escape
/// byte 0xAA: runs of >= 4 equal bytes become {0xAA, byte, count}; a
/// literal 0xAA is {0xAA, 0xAA, 0}. Pair with RleDecompressFunction.
class RleCompressFunction final : public PacketFunction {
 public:
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] std::string name() const override { return "rle-compress"; }
  [[nodiscard]] static std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> in);
};

class RleDecompressFunction final : public PacketFunction {
 public:
  std::vector<std::vector<std::uint8_t>> process(
      std::span<const std::uint8_t> payload) override;
  [[nodiscard]] std::string name() const override { return "rle-decompress"; }
  [[nodiscard]] static std::vector<std::uint8_t> decompress(
      std::span<const std::uint8_t> in);
};

}  // namespace ncfn::vnf
