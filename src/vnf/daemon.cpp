#include "vnf/daemon.hpp"

namespace ncfn::vnf {

VnfDaemon::VnfDaemon(netsim::Network& net, netsim::NodeId node,
                     const DaemonConfig& cfg)
    : net_(net), node_(node), cfg_(cfg) {
  vnf_ = std::make_unique<CodingVnf>(net_, node_, cfg_.vnf);
  if ((obs_ = net_.obs()) != nullptr) {
    // Bucket bounds span Table III's range: per-entry cost ~31 ms, full
    // 10-entry table swap ~311 ms.
    static constexpr double kBounds[] = {0.025, 0.05, 0.1, 0.2, 0.4};
    m_table_update_s_ = &obs_->metrics.histogram("ctrl.table_update_s",
                                                 kBounds);
    m_table_updates_ = &obs_->metrics.counter("ctrl.table_updates");
    m_vnf_starts_ = &obs_->metrics.counter("vnf.starts");
    m_shutdowns_ = &obs_->metrics.counter("vnf.shutdowns");
    m_shutdowns_cancelled_ = &obs_->metrics.counter("vnf.shutdowns_cancelled");
  }
  net_.bind(node_, cfg_.control_port,
            [this](const netsim::Datagram& d) { on_control_datagram(d); });
}

VnfDaemon::~VnfDaemon() { net_.unbind(node_, cfg_.control_port); }

void VnfDaemon::on_control_datagram(const netsim::Datagram& d) {
  ++stats_.signals_received;
  const std::string text(d.payload.begin(), d.payload.end());
  auto signal = ctrl::parse_signal(text);
  if (!signal) {
    ++stats_.signals_malformed;
    return;
  }
  handle_signal(*signal);
}

void VnfDaemon::handle_signal(const ctrl::Signal& s) {
  if (obs_ != nullptr) {
    const char* kind = ctrl::signal_name(s);
    obs_->metrics.counter(std::string("ctrl.signals_received.") + kind).inc();
    obs_->trace.signal(node_, kind);
  }
  std::visit(
      [this](const auto& sig) {
        using T = std::decay_t<decltype(sig)>;
        if constexpr (std::is_same_v<T, ctrl::NcStart>) {
          running_ = true;
          ++shutdown_epoch_;
          shutdown_pending_ = false;
        } else if constexpr (std::is_same_v<T, ctrl::NcVnfStart>) {
          // Reuse an existing (draining) VM if possible, else "launch".
          // Either way any pending shutdown is cancelled.
          if (shutdown_pending_) {
            ++stats_.shutdowns_cancelled;
            if (m_shutdowns_cancelled_ != nullptr) {
              m_shutdowns_cancelled_->inc();
            }
          }
          shutdown_pending_ = false;
          ++shutdown_epoch_;
          running_ = true;
          // Coding function becomes ready after the start latency; the
          // VNF_READY trace record carries the Sec. V.C.5 launch
          // timestamp.
          net_.sim().schedule(cfg_.vnf_start_s, [this] {
            ++stats_.vnf_starts;
            if (m_vnf_starts_ != nullptr) m_vnf_starts_->inc();
            if (obs_ != nullptr) obs_->trace.signal(node_, "VNF_READY");
          });
          if (sig.count > vnf_->lanes()) vnf_->set_lanes(sig.count);
        } else if constexpr (std::is_same_v<T, ctrl::NcVnfEnd>) {
          const std::uint64_t epoch = ++shutdown_epoch_;
          shutdown_pending_ = true;
          net_.sim().schedule(sig.tau_s, [this, epoch] {
            if (shutdown_epoch_ == epoch && running_) {
              running_ = false;
              shutdown_pending_ = false;
              ++stats_.shutdowns;
              if (m_shutdowns_ != nullptr) m_shutdowns_->inc();
              if (obs_ != nullptr) obs_->trace.signal(node_, "VNF_SHUTDOWN");
            }
          });
        } else if constexpr (std::is_same_v<T, ctrl::NcForwardTab>) {
          apply_table(sig);
        } else if constexpr (std::is_same_v<T, ctrl::NcSettings>) {
          apply_settings(sig);
        }
      },
      s);
}

void VnfDaemon::apply_settings(const ctrl::NcSettings& s) {
  coding::CodingParams params = cfg_.vnf.params;
  params.generation_blocks = s.generation_blocks;
  params.block_size = s.block_size;
  // Coding parameters are system-wide and set at initialization; a change
  // requires restarting the coding function with a fresh buffer.
  if (params.generation_blocks != cfg_.vnf.params.generation_blocks ||
      params.block_size != cfg_.vnf.params.block_size) {
    cfg_.vnf.params = params;
    vnf_ = std::make_unique<CodingVnf>(net_, node_, cfg_.vnf);
  }
  for (const ctrl::SessionSetting& ss : s.sessions) {
    vnf_->configure_session(ss.session, ss.role, ss.udp_port);
  }
}

void VnfDaemon::refetch_table() {
  for (const auto& [session, hops] : table_.entries()) {
    std::vector<NextHopRate> rates;
    rates.reserve(hops.size());
    for (const ctrl::NextHop& h : hops) rates.push_back(NextHopRate{h, 1.0});
    vnf_->set_next_hops(session, std::move(rates));
  }
}

void VnfDaemon::crash(std::optional<double> restart_after_s) {
  const double delay = restart_after_s.value_or(cfg_.vnf_start_s);
  ++stats_.crashes;
  if (obs_ != nullptr) obs_->metrics.counter("vnf.crashes").inc();
  vnf_->crash();
  running_ = false;
  const std::uint64_t epoch = ++crash_epoch_;
  net_.sim().schedule(delay, [this, epoch] {
    if (crash_epoch_ != epoch) return;  // crashed again before this restart
    vnf_->restart();
    refetch_table();
    running_ = true;
    ++stats_.vnf_starts;
    if (m_vnf_starts_ != nullptr) m_vnf_starts_->inc();
    if (obs_ != nullptr) obs_->trace.signal(node_, "VNF_READY");
  });
}

void VnfDaemon::apply_table(const ctrl::NcForwardTab& t) {
  // SIGUSR1: pause, load the table, resume. The apply cost scales with
  // the number of entries that actually changed (Table III).
  const std::size_t changed =
      ctrl::ForwardingTable::diff_entries(table_, t.table);
  const double cost =
      static_cast<double>(changed) * cfg_.table_entry_apply_s;
  vnf_->pause();
  stats_.last_table_update_cost_s = cost;
  ++stats_.table_updates;
  if (obs_ != nullptr) {
    m_table_updates_->inc();
    m_table_update_s_->record(cost);
    obs_->trace.fwdtab_swap(node_, changed, cost);
  }
  table_ = t.table;
  net_.sim().schedule(cost, [this, tab = t.table] {
    for (const auto& [session, hops] : tab.entries()) {
      std::vector<NextHopRate> rates;
      rates.reserve(hops.size());
      for (const ctrl::NextHop& h : hops) {
        rates.push_back(NextHopRate{h, 1.0});
      }
      vnf_->set_next_hops(session, std::move(rates));
    }
    vnf_->resume();
  });
}

void VnfDaemon::start_probes(std::vector<netsim::NodeId> peers,
                             double interval_s, ProbeReport report) {
  probe_peers_ = std::move(peers);
  probe_interval_s_ = interval_s;
  probe_report_ = std::move(report);
  probing_ = true;
  net_.sim().schedule(probe_interval_s_, [this] { probe_round(); });
}

void VnfDaemon::probe_round() {
  if (!probing_) return;
  for (netsim::NodeId peer : probe_peers_) {
    const auto bw = net_.probe_bandwidth_bps(node_, peer, 0.02);
    const auto rtt = net_.ping_rtt(node_, peer, 64);
    if (probe_report_) probe_report_(peer, bw, rtt);
  }
  net_.sim().schedule(probe_interval_s_, [this] { probe_round(); });
}

void VnfDaemon::start_heartbeats(netsim::NodeId controller, netsim::Port port,
                                 double interval_s) {
  hb_target_ = controller;
  hb_port_ = port;
  hb_interval_s_ = interval_s;
  heartbeating_ = true;
  net_.sim().schedule(hb_interval_s_, [this] { heartbeat_round(); });
}

void VnfDaemon::heartbeat_round() {
  if (!heartbeating_) return;
  netsim::Datagram d;
  d.src = node_;
  d.dst = hb_target_;
  d.dst_port = hb_port_;
  d.payload = net_.take_buffer();
  const std::string text = "HB " + std::to_string(node_);
  d.payload.assign(text.begin(), text.end());
  net_.send(std::move(d));
  net_.sim().schedule(hb_interval_s_, [this] { heartbeat_round(); });
}

}  // namespace ncfn::vnf
