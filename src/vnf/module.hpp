// Module/gate pipeline skeleton for the batched VNF data plane (the BESS
// idiom: a packet-processing graph whose edges carry whole PacketBatches).
//
// A Module is one processing stage — header classify, decode-ingest,
// credit check + recode-emit — that consumes a batch in place and pushes
// the (possibly annotated, possibly emptied) batch downstream through a
// numbered output gate. Gates are wired once at pipeline construction;
// emitting to an unconnected gate discards nothing because the batch stays
// with the caller — ownership never leaves the synchronous call chain, so
// a batch's pooled rows are always released by whoever holds it last.
//
// This is deliberately minimal: no dynamic graph edits, no per-gate
// queueing. Stages run synchronously within one lane-drain event; the
// simulator models the lane's *time* (service charge per batch), the
// module graph models the lane's *work*.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <string_view>

#include "coding/batch.hpp"

namespace ncfn::vnf {

class Module {
 public:
  static constexpr std::size_t kMaxGates = 4;

  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Run this stage over `batch`. The stage may annotate per-packet
  /// metadata (batch.meta), drop packets, or consume the batch entirely;
  /// whatever remains when the stage returns still belongs to the caller.
  virtual void process(coding::PacketBatch& batch) = 0;

  /// Wire output gate `gate` to `next` (non-owning; the pipeline owner
  /// keeps every module alive for the wiring's lifetime).
  void connect(std::size_t gate, Module* next) {
    assert(gate < kMaxGates);
    gates_[gate] = next;
  }

 protected:
  /// Push `batch` through output gate `gate`; a no-op (batch untouched)
  /// when the gate is unconnected.
  void emit(std::size_t gate, coding::PacketBatch& batch) {
    assert(gate < kMaxGates);
    if (gates_[gate] != nullptr && !batch.empty()) {
      gates_[gate]->process(batch);
    }
  }

 private:
  std::array<Module*, kMaxGates> gates_{};
};

}  // namespace ncfn::vnf
