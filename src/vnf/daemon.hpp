// Per-node daemon (Sec. III.A): receives NC_* signals from the controller
// over the (simulated) network and manages the local coding function.
//
// The daemon reproduces the control-plane costs the paper measures in
// Sec. V.C.5 and Table III:
//   * launching a new VM instance:            ~35 s
//   * starting a coding function on a live VM: ~376 ms
//   * forwarding-table update:                 ~31 ms per changed entry
//     (78 ms at 20 % of a 10-entry table up to 311 ms at 100 %)
// A forwarding-table update pauses the coding function (the SIGUSR1
// analogue), applies the new table, then resumes. NC_VNF_END arms a
// shutdown timer tau seconds out; a reuse (NC_VNF_START or new settings
// before the deadline) cancels it, modelling the paper's VNF-reuse
// optimization.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "ctrl/signals.hpp"
#include "netsim/network.hpp"
#include "vnf/coding_vnf.hpp"

namespace ncfn::vnf {

struct DaemonConfig {
  netsim::Port control_port = 100;
  double vm_launch_s = 35.0;          // case (i) of Sec. V.C.5
  double vnf_start_s = 0.376;         // case (ii)
  double table_entry_apply_s = 0.031;  // case (iii), per changed entry
  VnfConfig vnf;
};

struct DaemonStats {
  std::uint64_t signals_received = 0;
  std::uint64_t signals_malformed = 0;
  std::uint64_t table_updates = 0;
  double last_table_update_cost_s = 0;
  std::uint64_t vnf_starts = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t shutdowns_cancelled = 0;  // reuse within tau
  std::uint64_t crashes = 0;
};

class VnfDaemon {
 public:
  VnfDaemon(netsim::Network& net, netsim::NodeId node,
            const DaemonConfig& cfg);
  ~VnfDaemon();

  VnfDaemon(const VnfDaemon&) = delete;
  VnfDaemon& operator=(const VnfDaemon&) = delete;

  /// Deliver a control signal as the controller would (also reachable via
  /// the network on the control port with the text wire format).
  void handle_signal(const ctrl::Signal& s);

  [[nodiscard]] CodingVnf& vnf() { return *vnf_; }
  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const ctrl::ForwardingTable& table() const { return table_; }

  /// Periodic measurement loop: every `interval_s`, reports the measured
  /// bandwidth/RTT towards each peer via `report` (the iperf3/ping loop
  /// feeding the controller in Sec. IV.B).
  using ProbeReport = std::function<void(
      netsim::NodeId peer, std::optional<double> bandwidth_bps,
      std::optional<netsim::Time> rtt_s)>;
  void start_probes(std::vector<netsim::NodeId> peers, double interval_s,
                    ProbeReport report);
  void stop_probes() { probing_ = false; }

  /// Simulate a coding-process crash: the CodingVnf loses all buffered
  /// state and drops traffic until the cold restart `restart_after_s`
  /// later (default: the Sec. V.C.5 coding-function start latency,
  /// cfg.vnf_start_s). On restart the daemon re-applies its cached
  /// forwarding table — the table re-fetch of a cold start.
  void crash(std::optional<double> restart_after_s = std::nullopt);

  /// Periodic liveness beacon: a tiny "HB <node>" datagram to the
  /// controller node's heartbeat port every `interval_s`. Heartbeats ride
  /// the same simulated links as everything else, so a severed control
  /// path starves the controller's liveness tracker.
  void start_heartbeats(netsim::NodeId controller, netsim::Port port,
                        double interval_s);
  void stop_heartbeats() { heartbeating_ = false; }

 private:
  void on_control_datagram(const netsim::Datagram& d);
  void apply_settings(const ctrl::NcSettings& s);
  void apply_table(const ctrl::NcForwardTab& t);
  void refetch_table();
  void probe_round();
  void heartbeat_round();

  netsim::Network& net_;
  netsim::NodeId node_;
  DaemonConfig cfg_;
  std::unique_ptr<CodingVnf> vnf_;
  ctrl::ForwardingTable table_;
  DaemonStats stats_;
  // Control-plane observability (null without a hub on the network).
  obs::Observability* obs_ = nullptr;
  obs::Histogram* m_table_update_s_ = nullptr;
  obs::Counter* m_table_updates_ = nullptr;
  obs::Counter* m_vnf_starts_ = nullptr;
  obs::Counter* m_shutdowns_ = nullptr;
  obs::Counter* m_shutdowns_cancelled_ = nullptr;
  bool running_ = true;
  std::uint64_t shutdown_epoch_ = 0;  // bump to cancel pending shutdowns
  bool shutdown_pending_ = false;
  std::uint64_t crash_epoch_ = 0;  // a re-crash cancels the older restart

  bool probing_ = false;
  std::vector<netsim::NodeId> probe_peers_;
  double probe_interval_s_ = 600;
  ProbeReport probe_report_;

  bool heartbeating_ = false;
  netsim::NodeId hb_target_ = 0;
  netsim::Port hb_port_ = 0;
  double hb_interval_s_ = 1.0;
};

}  // namespace ncfn::vnf
