#include "vnf/middlebox.hpp"

#include <algorithm>

namespace ncfn::vnf {

MiddleboxVnf::MiddleboxVnf(netsim::Network& net, netsim::NodeId node,
                           const MiddleboxConfig& cfg)
    : net_(net), node_(node), cfg_(cfg) {
  net_.bind(node_, cfg_.port,
            [this](const netsim::Datagram& d) { on_datagram(d); });
}

MiddleboxVnf::~MiddleboxVnf() { net_.unbind(node_, cfg_.port); }

void MiddleboxVnf::add_function(std::unique_ptr<PacketFunction> fn) {
  chain_.push_back(std::move(fn));
}

void MiddleboxVnf::on_datagram(const netsim::Datagram& d) {
  if (queued_ >= cfg_.proc_queue_limit) {
    ++stats_.proc_dropped;
    return;
  }
  ++queued_;
  const double service =
      cfg_.fixed_overhead_s +
      static_cast<double>(d.payload.size()) / cfg_.proc_rate_Bps;
  netsim::Simulator& sim = net_.sim();
  const netsim::Time start = std::max(sim.now(), busy_until_);
  busy_until_ = start + service;
  sim.schedule_at(busy_until_, [this, p = d.payload]() mutable {
    --queued_;
    process(std::move(p));
  });
}

void MiddleboxVnf::process(std::vector<std::uint8_t> payload) {
  ++stats_.received;
  std::vector<std::vector<std::uint8_t>> stage{std::move(payload)};
  for (const auto& fn : chain_) {
    std::vector<std::vector<std::uint8_t>> next;
    for (const auto& p : stage) {
      auto outs = fn->process(p);
      for (auto& o : outs) next.push_back(std::move(o));
    }
    stage = std::move(next);
    if (stage.empty()) break;
  }
  if (stage.empty()) {
    ++stats_.swallowed;
    return;
  }
  for (const auto& out : stage) {
    for (const ctrl::NextHop& hop : hops_) {
      netsim::Datagram d;
      d.src = node_;
      d.dst = hop.node;
      d.dst_port = hop.port;
      d.payload = out;
      if (net_.send(std::move(d))) ++stats_.emitted;
    }
  }
}

}  // namespace ncfn::vnf
