#include "vnf/function.hpp"

namespace ncfn::vnf {

std::uint32_t ChecksumTagFunction::fnv1a(std::span<const std::uint8_t> d) {
  std::uint32_t h = 2166136261u;
  for (std::uint8_t b : d) {
    h ^= b;
    h *= 16777619u;
  }
  return h;
}

std::vector<std::vector<std::uint8_t>> ChecksumTagFunction::process(
    std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out(payload.begin(), payload.end());
  const std::uint32_t h = fnv1a(payload);
  out.push_back(static_cast<std::uint8_t>(h >> 24));
  out.push_back(static_cast<std::uint8_t>(h >> 16));
  out.push_back(static_cast<std::uint8_t>(h >> 8));
  out.push_back(static_cast<std::uint8_t>(h));
  return {std::move(out)};
}

std::vector<std::vector<std::uint8_t>> ChecksumVerifyFunction::process(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) {
    ++dropped_;
    return {};
  }
  const auto body = payload.subspan(0, payload.size() - 4);
  const std::uint32_t want =
      (static_cast<std::uint32_t>(payload[payload.size() - 4]) << 24) |
      (static_cast<std::uint32_t>(payload[payload.size() - 3]) << 16) |
      (static_cast<std::uint32_t>(payload[payload.size() - 2]) << 8) |
      static_cast<std::uint32_t>(payload[payload.size() - 1]);
  if (ChecksumTagFunction::fnv1a(body) != want) {
    ++dropped_;
    return {};
  }
  return {std::vector<std::uint8_t>(body.begin(), body.end())};
}

namespace {
constexpr std::uint8_t kEscape = 0xAA;
constexpr std::size_t kMinRun = 4;
}  // namespace

std::vector<std::uint8_t> RleCompressFunction::compress(
    std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size());
  std::size_t i = 0;
  while (i < in.size()) {
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == in[i] && run < 255) ++run;
    if (run >= kMinRun) {
      out.push_back(kEscape);
      out.push_back(in[i]);
      out.push_back(static_cast<std::uint8_t>(run));
      i += run;
    } else if (in[i] == kEscape) {
      out.push_back(kEscape);
      out.push_back(kEscape);
      out.push_back(0);
      ++i;
    } else {
      out.push_back(in[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::uint8_t> RleDecompressFunction::decompress(
    std::span<const std::uint8_t> in) {
  std::vector<std::uint8_t> out;
  out.reserve(in.size());
  std::size_t i = 0;
  while (i < in.size()) {
    if (in[i] == kEscape && i + 2 < in.size()) {
      const std::uint8_t byte = in[i + 1];
      const std::uint8_t count = in[i + 2];
      if (byte == kEscape && count == 0) {
        out.push_back(kEscape);
      } else {
        out.insert(out.end(), count, byte);
      }
      i += 3;
    } else {
      out.push_back(in[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> RleCompressFunction::process(
    std::span<const std::uint8_t> payload) {
  return {compress(payload)};
}

std::vector<std::vector<std::uint8_t>> RleDecompressFunction::process(
    std::span<const std::uint8_t> payload) {
  return {decompress(payload)};
}

}  // namespace ncfn::vnf
