#include "vnf/coding_vnf.hpp"

#include <algorithm>
#include <cassert>

namespace ncfn::vnf {

CodingVnf::CodingVnf(netsim::Network& net, netsim::NodeId node,
                     const VnfConfig& cfg)
    : net_(net), node_(node), cfg_(cfg), rng_(cfg.seed), buffer_(cfg.params) {
  lanes_.resize(1);
  if (obs::Observability* obs = net_.obs()) {
    buffer_.set_obs(obs, node_);
    trace_ = &obs->trace;
    const std::string p = "vnf.node." + std::to_string(node_) + ".";
    m_received_ = &obs->metrics.counter(p + "received");
    m_innovative_ = &obs->metrics.counter(p + "innovative");
    m_emitted_ = &obs->metrics.counter(p + "emitted");
    m_recoded_ = &obs->metrics.counter(p + "recoded");
    m_proc_dropped_ = &obs->metrics.counter(p + "proc_dropped");
    m_decoded_ = &obs->metrics.counter(p + "decoded_generations");
    m_crash_dropped_ = &obs->metrics.counter(p + "crash_dropped");
    m_lane_backlog_ = &obs->metrics.gauge(p + "lane_backlog");
  }
}

CodingVnf::~CodingVnf() {
  for (const auto& [id, st] : sessions_) net_.unbind(node_, st.port);
}

void CodingVnf::set_lanes(std::size_t lanes) {
  assert(lanes >= 1);
  lanes_.resize(lanes);
}

void CodingVnf::configure_session(coding::SessionId id, ctrl::VnfRole role,
                                  netsim::Port port) {
  auto& st = sessions_[id];
  if (st.port != 0 && st.port != port) net_.unbind(node_, st.port);
  st.role = role;
  st.port = port;
  net_.bind(node_, port, [this](const netsim::Datagram& d) { on_datagram(d); });
}

void CodingVnf::drop_session(coding::SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  net_.unbind(node_, it->second.port);
  buffer_.erase_session(id);
  sessions_.erase(it);
}

void CodingVnf::set_next_hops(coding::SessionId id,
                              std::vector<NextHopRate> hops) {
  auto& st = sessions_[id];
  st.hops = std::move(hops);
  st.ledger.clear();
  st.trees.reset();
}

void CodingVnf::set_tree_routing(coding::SessionId id, TreeRouting routing) {
  assert(!routing.schedule.empty());
  auto& st = sessions_[id];
  st.trees = std::move(routing);
  st.hops.clear();
  st.ledger.clear();
}

void CodingVnf::pause() { paused_ = true; }

void CodingVnf::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_epoch_;
  // Everything the process held in memory dies with it: decoder state,
  // emission credits, deferred emissions, paused backlog.
  for (auto& [id, st] : sessions_) {
    buffer_.erase_session(id);
    st.ledger.clear();
  }
  paused_backlog_.clear();
  paused_ = false;
  if (trace_ != nullptr) trace_->vnf_crash(node_);
}

void CodingVnf::restart() {
  if (!crashed_) return;
  crashed_ = false;
  if (trace_ != nullptr) trace_->vnf_restart(node_);
}

void CodingVnf::resume() {
  paused_ = false;
  auto backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  for (auto& pkt : backlog) process(std::move(pkt));
}

const VnfSessionStats& CodingVnf::stats(coding::SessionId id) const {
  static const VnfSessionStats kEmpty;
  auto it = sessions_.find(id);
  return it == sessions_.end() ? kEmpty : it->second.stats;
}

double CodingVnf::service_time() const {
  const auto& p = cfg_.params;
  const double work_bytes =
      2.0 * static_cast<double>(p.generation_blocks) *
      static_cast<double>(p.block_size + p.generation_blocks);
  return cfg_.fixed_overhead_s + work_bytes / cfg_.proc_rate_Bps;
}

std::size_t CodingVnf::lane_of(coding::SessionId s,
                               coding::GenerationId g) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | g;
  return std::hash<std::uint64_t>{}(key) % lanes_.size();
}

void CodingVnf::on_datagram(const netsim::Datagram& d) {
  if (crashed_) {
    // The process is dead; the bound port drops traffic on the floor.
    if (m_crash_dropped_ != nullptr) m_crash_dropped_->inc();
    return;
  }
  auto pkt = coding::CodedPacket::parse(d.payload, cfg_.params, buffer_.pool());
  if (!pkt) return;  // not an NC packet for our parameters
  auto sit = sessions_.find(pkt->session);
  if (sit == sessions_.end()) return;

  // Admission to the processing lane serving this generation.
  Lane& lane = lanes_[lane_of(pkt->session, pkt->generation)];
  if (lane.queued >= cfg_.proc_queue_limit) {
    ++sit->second.stats.proc_dropped;
    if (m_proc_dropped_ != nullptr) m_proc_dropped_->inc();
    return;
  }
  ++lane.queued;
  ++queued_total_;
  if (m_lane_backlog_ != nullptr) {
    m_lane_backlog_->set(static_cast<double>(queued_total_));
  }
  netsim::Simulator& sim = net_.sim();
  const netsim::Time start = std::max(sim.now(), lane.busy_until);
  lane.busy_until = start + service_time();
  sim.schedule_at(lane.busy_until, [this, &lane, epoch = crash_epoch_,
                                    p = std::move(*pkt)]() mutable {
    --lane.queued;
    --queued_total_;
    if (m_lane_backlog_ != nullptr) {
      m_lane_backlog_->set(static_cast<double>(queued_total_));
    }
    // Work admitted before a crash died with the process, even if the
    // function has since restarted.
    if (crashed_ || epoch != crash_epoch_) return;
    if (paused_) {
      paused_backlog_.push_back(std::move(p));
    } else {
      process(std::move(p));
    }
  });
}

void CodingVnf::process(coding::CodedPacket pkt) {
  auto sit = sessions_.find(pkt.session);
  if (sit == sessions_.end()) return;
  SessionState& st = sit->second;
  ++st.stats.received;
  if (m_received_ != nullptr) m_received_->inc();

  coding::Decoder& dec = buffer_.state(pkt.session, pkt.generation);
  const bool was_complete = dec.complete();
  const bool first_of_generation = dec.packets_seen() == 0;
  const bool innovative = dec.add(pkt);
  if (innovative) {
    ++st.stats.innovative;
    if (m_innovative_ != nullptr) m_innovative_->inc();
  }
#ifdef NCFN_DEBUG_GEN0
  if (pkt.generation == 0) {
    printf("[%.6f] node=%u gen0 arrival rank=%zu innov=%d role=%d\n",
           net_.sim().now(), node_, dec.rank(), (int)innovative, (int)st.role);
  }
#endif
  if (tap_) tap_(pkt.session, pkt.generation, dec.rank(), dec.complete(),
                 innovative);

  switch (st.role) {
    case ctrl::VnfRole::kDecode:
      if (!was_complete && dec.complete()) {
        ++st.stats.decoded_generations;
        if (m_decoded_ != nullptr) m_decoded_->inc();
        if (sink_) sink_(pkt.session, pkt.generation, dec.recover());
      }
      break;
    case ctrl::VnfRole::kForward:
    case ctrl::VnfRole::kRecode:
      if (st.trees) {
        // Routing-only tree forwarding: copy each innovative packet along
        // the generation's tree.
        if (!innovative) break;
        const TreeRouting& tr = *st.trees;
        const std::size_t tree =
            tr.schedule[pkt.generation % tr.schedule.size()];
        if (tree >= tr.hops_per_tree.size()) break;
        for (const ctrl::NextHop& hop : tr.hops_per_tree[tree]) {
          netsim::Datagram d;
          d.src = node_;
          d.dst = hop.node;
          d.dst_port = hop.port;
          d.payload = net_.take_buffer();
          pkt.serialize_into(d.payload);
          if (net_.send(std::move(d))) {
            ++st.stats.emitted;
            if (m_emitted_ != nullptr) m_emitted_->inc();
          }
        }
      } else {
        emit(st, pkt, dec, first_of_generation);
        // A newly completed generation releases its deferred emissions
        // with fully-mixed content.
        if (!was_complete && dec.complete()) {
          flush_pending(pkt.session, pkt.generation);
        }
      }
      break;
  }
}

void CodingVnf::emit(SessionState& st, const coding::CodedPacket& arrival,
                     coding::Decoder& dec, bool first_of_generation) {
  // Per-generation largest-remainder credits: each arrival of generation
  // g earns share credits for g on every hop; whole credits become
  // emissions of g (possibly deferred until g reaches full rank).
  constexpr double kCreditEps = 1e-9;
  constexpr std::size_t kLedgerLimit = 4096;
  const bool defer = st.role == ctrl::VnfRole::kRecode &&
                     cfg_.recode_hold_s > 0 && !dec.complete();
  auto& gl = st.ledger[arrival.generation];
  if (gl.credit.size() < st.hops.size()) {
    gl.credit.resize(st.hops.size(), 0.0);
    gl.deferred.resize(st.hops.size(), 0);
  }
  for (std::size_t h = 0; h < st.hops.size(); ++h) {
    gl.credit[h] += st.hops[h].share;
    while (gl.credit[h] >= 1.0 - kCreditEps) {
      gl.credit[h] -= 1.0;
      if (defer) {
        // Hold the emission until the generation's rank completes or the
        // hold timer fires (see the class comment on emission deferral).
        ++gl.deferred[h];
        if (!gl.timer_armed) {
          gl.timer_armed = true;
          net_.sim().schedule(
              cfg_.recode_hold_s,
              [this, session = arrival.session, gen = arrival.generation] {
                flush_pending(session, gen);
              });
        }
        continue;
      }
      coding::CodedPacket out;
      bool recoded = false;
      if (st.role == ctrl::VnfRole::kForward ||
          (first_of_generation && dec.rank() <= 1)) {
        // Routing-only relays copy packets through; a recoding relay also
        // passes the very first packet of a generation unchanged
        // (Sec. III.B.2), since recoding one row is a scalar multiple.
        out = arrival;
      } else {
        out = dec.recode(rng_);
        recoded = true;
      }
      netsim::Datagram d;
      d.src = node_;
      d.dst = st.hops[h].hop.node;
      d.dst_port = st.hops[h].hop.port;
      d.payload = net_.take_buffer();
      out.serialize_into(d.payload);
      if (net_.send(std::move(d))) {
        ++st.stats.emitted;
        if (m_emitted_ != nullptr) {
          m_emitted_->inc();
          if (recoded) m_recoded_->inc();
        }
        if (recoded && trace_ != nullptr) {
          trace_->vnf_recode(node_, arrival.session, arrival.generation,
                             dec.rank());
        }
      }
    }
  }
  // Bound the ledger: forward-role entries have no flush timer, so evict
  // the oldest once the map grows past the decoder buffer's own budget.
  while (st.ledger.size() > kLedgerLimit) st.ledger.erase(st.ledger.begin());
}

void CodingVnf::send_recoded(SessionState& st, coding::Decoder& dec,
                             std::size_t hop) {
  netsim::Datagram d;
  d.src = node_;
  d.dst = st.hops[hop].hop.node;
  d.dst_port = st.hops[hop].hop.port;
  d.payload = net_.take_buffer();
  dec.recode(rng_).serialize_into(d.payload);
  if (net_.send(std::move(d))) {
    ++st.stats.emitted;
    if (m_emitted_ != nullptr) {
      m_emitted_->inc();
      m_recoded_->inc();
    }
    if (trace_ != nullptr) {
      trace_->vnf_recode(node_, dec.session(), dec.generation(), dec.rank());
    }
  }
}

void CodingVnf::flush_pending(coding::SessionId session,
                              coding::GenerationId gen) {
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) return;
  SessionState& st = sit->second;
  auto lit = st.ledger.find(gen);
  if (lit == st.ledger.end()) return;
  coding::Decoder* dec = buffer_.find(session, gen);
  if (dec != nullptr && dec->rank() > 0) {
    for (std::size_t h = 0;
         h < lit->second.deferred.size() && h < st.hops.size(); ++h) {
      for (std::uint32_t i = 0; i < lit->second.deferred[h]; ++i) {
        send_recoded(st, *dec, h);
      }
      lit->second.deferred[h] = 0;
    }
  }
  lit->second.timer_armed = false;
}

}  // namespace ncfn::vnf
