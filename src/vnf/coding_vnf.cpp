#include "vnf/coding_vnf.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "vnf/module.hpp"

namespace ncfn::vnf {

// --- pipeline stages --------------------------------------------------
//
// Two modules, wired ingest -> emit (gate 0). The ingest stage folds the
// whole batch into the decoding matrices and annotates per-packet facts
// (innovative / first-uncoded / completed-now) on the batch metadata; the
// emit stage walks same-(session, generation) runs, settles emission
// credits, and turns earned emissions into one outgoing burst.

struct CodingVnf::IngestStage : Module {
  explicit IngestStage(CodingVnf& v) : vnf(v) {}
  [[nodiscard]] std::string_view name() const override { return "ingest"; }
  void process(coding::PacketBatch& batch) override {
    vnf.ingest_batch(batch);
    emit(0, batch);
  }
  CodingVnf& vnf;
};

struct CodingVnf::EmitStage : Module {
  explicit EmitStage(CodingVnf& v) : vnf(v) {}
  [[nodiscard]] std::string_view name() const override { return "emit"; }
  void process(coding::PacketBatch& batch) override {
    vnf.emit_batch(batch);
  }
  CodingVnf& vnf;
};

CodingVnf::CodingVnf(netsim::Network& net, netsim::NodeId node,
                     const VnfConfig& cfg)
    : net_(net), node_(node), cfg_(cfg), rng_(cfg.seed), buffer_(cfg.params) {
  cfg_.max_batch =
      std::clamp<std::size_t>(cfg_.max_batch, 1, coding::kBatchCapacity);
  lanes_.resize(1);
  if (obs::Observability* obs = net_.obs()) {
    buffer_.set_obs(obs, node_);
    trace_ = &obs->trace;
    const std::string p = "vnf.node." + std::to_string(node_) + ".";
    m_received_ = &obs->metrics.counter(p + "received");
    m_innovative_ = &obs->metrics.counter(p + "innovative");
    m_emitted_ = &obs->metrics.counter(p + "emitted");
    m_recoded_ = &obs->metrics.counter(p + "recoded");
    m_proc_dropped_ = &obs->metrics.counter(p + "proc_dropped");
    m_decoded_ = &obs->metrics.counter(p + "decoded_generations");
    m_crash_dropped_ = &obs->metrics.counter(p + "crash_dropped");
    m_batches_ = &obs->metrics.counter(p + "batches");
    m_lane_backlog_ = &obs->metrics.gauge(p + "lane_backlog");
    static constexpr double kBatchBounds[] = {1, 2, 4, 8, 16, 32};
    h_batch_size_ = &obs->metrics.histogram(p + "batch_size", kBatchBounds);
  }
  stage_ingest_ = std::make_unique<IngestStage>(*this);
  stage_emit_ = std::make_unique<EmitStage>(*this);
  stage_ingest_->connect(0, stage_emit_.get());
}

CodingVnf::~CodingVnf() {
  for (const auto& [id, st] : sessions_) {
    net_.unbind(node_, st.port);
    net_.unbind_burst(node_, st.port);
  }
}

void CodingVnf::set_lanes(std::size_t lanes) {
  assert(lanes >= 1);
  if (lanes == lanes_.size()) return;
  // Re-sharding moves every queued packet to the lane its generation
  // hashes to under the new count; surviving drain events clamp to their
  // lane's queue, so nothing is processed twice or lost.
  std::vector<coding::CodedPacket> pending;
  for (Lane& lane : lanes_) {
    while (!lane.queue.empty()) {
      pending.push_back(std::move(lane.queue.front()));
      lane.queue.pop_front();
    }
  }
  lanes_.resize(lanes);
  for (coding::CodedPacket& p : pending) {
    lanes_[lane_of(p.session, p.generation)].queue.push_back(std::move(p));
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) start_drain(i);
}

void CodingVnf::configure_session(coding::SessionId id, ctrl::VnfRole role,
                                  netsim::Port port) {
  auto& st = sessions_[id];
  if (st.port != 0 && st.port != port) {
    net_.unbind(node_, st.port);
    net_.unbind_burst(node_, st.port);
  }
  st.role = role;
  st.port = port;
  net_.bind(node_, port, [this](const netsim::Datagram& d) { on_datagram(d); });
  net_.bind_burst(node_, port,
                  [this](std::span<netsim::Datagram> b) { on_burst(b); });
}

void CodingVnf::drop_session(coding::SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  net_.unbind(node_, it->second.port);
  net_.unbind_burst(node_, it->second.port);
  buffer_.erase_session(id);
  cached_state_ = nullptr;  // the arrival-path cache may point at `it`
  sessions_.erase(it);
}

void CodingVnf::set_next_hops(coding::SessionId id,
                              std::vector<NextHopRate> hops) {
  auto& st = sessions_[id];
  st.hops = std::move(hops);
  st.ledger.clear();
  st.trees.reset();
}

void CodingVnf::set_tree_routing(coding::SessionId id, TreeRouting routing) {
  assert(!routing.schedule.empty());
  auto& st = sessions_[id];
  st.trees = std::move(routing);
  st.hops.clear();
  st.ledger.clear();
}

void CodingVnf::pause() { paused_ = true; }

void CodingVnf::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crash_epoch_;
  // Everything the process held in memory dies with it: decoder state,
  // emission credits, deferred emissions, lane queues, paused backlog.
  for (auto& [id, st] : sessions_) {
    buffer_.erase_session(id);
    st.ledger.clear();
  }
  for (Lane& lane : lanes_) {
    queued_total_ -= lane.queue.size();
    lane.queue.clear();
  }
  if (m_lane_backlog_ != nullptr) {
    m_lane_backlog_->set(static_cast<double>(queued_total_));
  }
  paused_backlog_.clear();
  paused_ = false;
  if (trace_ != nullptr) trace_->vnf_crash(node_);
}

void CodingVnf::restart() {
  if (!crashed_) return;
  crashed_ = false;
  if (trace_ != nullptr) trace_->vnf_restart(node_);
}

void CodingVnf::resume() {
  paused_ = false;
  auto backlog = std::move(paused_backlog_);
  paused_backlog_.clear();
  std::size_t i = 0;
  while (i < backlog.size()) {
    const std::size_t k = std::min(backlog.size() - i, cfg_.max_batch);
    batch_.clear();
    for (std::size_t t = 0; t < k; ++t) {
      batch_.push(std::move(backlog[i + t]));
    }
    i += k;
    run_pipeline(batch_);
  }
}

const VnfSessionStats& CodingVnf::stats(coding::SessionId id) const {
  static const VnfSessionStats kEmpty;
  auto it = sessions_.find(id);
  return it == sessions_.end() ? kEmpty : it->second.stats;
}

double CodingVnf::service_time() const {
  const auto& p = cfg_.params;
  const double work_bytes =
      2.0 * static_cast<double>(p.generation_blocks) *
      static_cast<double>(p.block_size + p.generation_blocks);
  return cfg_.fixed_overhead_s + work_bytes / cfg_.proc_rate_Bps;
}

std::size_t CodingVnf::lane_of(coding::SessionId s,
                               coding::GenerationId g) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | g;
  return std::hash<std::uint64_t>{}(key) % lanes_.size();
}

// --- arrivals ---------------------------------------------------------

std::size_t CodingVnf::enqueue_datagram(const netsim::Datagram& d) {
  constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);
  if (crashed_) {
    // The process is dead; the bound port drops traffic on the floor.
    if (m_crash_dropped_ != nullptr) m_crash_dropped_->inc();
    return kNoLane;
  }
  auto pkt = coding::CodedPacket::parse(d.payload, cfg_.params, buffer_.pool());
  if (!pkt) return kNoLane;  // not an NC packet for our parameters
  // A burst is overwhelmingly one session's packets back to back; cache
  // the last hit so only the first packet of a run pays the map walk.
  if (cached_state_ == nullptr || cached_session_ != pkt->session) {
    auto sit = sessions_.find(pkt->session);
    if (sit == sessions_.end()) return kNoLane;
    cached_session_ = sit->first;
    cached_state_ = &sit->second;
  }

  // Admission to the processing lane serving this generation.
  const std::size_t idx = lane_of(pkt->session, pkt->generation);
  Lane& lane = lanes_[idx];
  if (lane.queue.size() >= cfg_.proc_queue_limit) {
    ++cached_state_->stats.proc_dropped;
    if (m_proc_dropped_ != nullptr) m_proc_dropped_->inc();
    return kNoLane;
  }
  lane.queue.push_back(std::move(*pkt));
  ++queued_total_;
  return idx;
}

void CodingVnf::note_backlog() {
  if (m_lane_backlog_ != nullptr) {
    m_lane_backlog_->set(static_cast<double>(queued_total_));
  }
}

void CodingVnf::on_datagram(const netsim::Datagram& d) {
  const std::size_t idx = enqueue_datagram(d);
  note_backlog();
  if (idx != static_cast<std::size_t>(-1)) start_drain(idx);
}

void CodingVnf::on_burst(std::span<netsim::Datagram> burst) {
  // Enqueue the whole burst before arming any drain so the first service
  // event sees the full backlog and drains a full batch, not a singleton.
  touched_lanes_.clear();
  for (const netsim::Datagram& d : burst) {
    const std::size_t idx = enqueue_datagram(d);
    if (idx == static_cast<std::size_t>(-1)) continue;
    if (std::find(touched_lanes_.begin(), touched_lanes_.end(), idx) ==
        touched_lanes_.end()) {
      touched_lanes_.push_back(idx);
    }
  }
  note_backlog();
  for (const std::size_t idx : touched_lanes_) start_drain(idx);
}

void CodingVnf::start_drain(std::size_t lane_idx) {
  Lane& lane = lanes_[lane_idx];
  if (lane.draining || lane.queue.empty()) return;
  const std::size_t k = std::min(lane.queue.size(), cfg_.max_batch);
  netsim::Simulator& sim = net_.sim();
  const netsim::Time start = std::max(sim.now(), lane.busy_until);
  lane.busy_until = start + static_cast<double>(k) * service_time();
  lane.draining = true;
  // Capture the lane by index, not reference: set_lanes() may reallocate
  // lanes_ while this event is in flight.
  sim.schedule_at(lane.busy_until, [this, lane_idx, k, epoch = crash_epoch_] {
    drain(lane_idx, k, epoch);
  });
}

void CodingVnf::drain(std::size_t lane_idx, std::size_t k,
                      std::uint64_t epoch) {
  if (lane_idx >= lanes_.size()) return;  // lanes shrank; work re-sharded
  Lane& lane = lanes_[lane_idx];
  lane.draining = false;
  if (crashed_ || epoch != crash_epoch_) {
    // Work admitted before a crash died with the process (the queue was
    // wiped); re-arm for anything admitted since restart.
    start_drain(lane_idx);
    return;
  }
  k = std::min(k, lane.queue.size());
  batch_.clear();
  for (std::size_t t = 0; t < k; ++t) {
    batch_.push(std::move(lane.queue.front()));
    lane.queue.pop_front();
  }
  queued_total_ -= k;
  if (m_lane_backlog_ != nullptr) {
    m_lane_backlog_->set(static_cast<double>(queued_total_));
  }
  if (paused_) {
    // Serviced while paused: buffered, nothing emitted until resume().
    for (coding::CodedPacket& p : batch_.packets()) {
      paused_backlog_.push_back(std::move(p));
    }
    batch_.clear();
  } else {
    run_pipeline(batch_);
  }
  start_drain(lane_idx);
}

// --- pipeline ---------------------------------------------------------

void CodingVnf::run_pipeline(coding::PacketBatch& batch) {
  if (batch.empty()) return;
  if (m_batches_ != nullptr) {
    m_batches_->inc();
    h_batch_size_->record(static_cast<double>(batch.size()));
  }
  in_pipeline_ = true;
  stage_ingest_->process(batch);
  in_pipeline_ = false;
  batch.clear();
  flush_burst();
}

void CodingVnf::ingest_batch(coding::PacketBatch& batch) {
  std::uint64_t received = 0;
  std::uint64_t innovative = 0;
  // Consecutive packets usually share (session, generation) — one lane
  // serves one generation's stream — so both map lookups cache across
  // the run.
  coding::SessionId run_session = 0;
  SessionState* run_st = nullptr;
  coding::GenerationId run_gen = 0;
  coding::Decoder* run_dec = nullptr;
  for (std::size_t p = 0; p < batch.size(); ++p) {
    coding::CodedPacket& pkt = batch[p];
    batch.meta(p) = 0;
    if (run_st == nullptr || pkt.session != run_session) {
      auto sit = sessions_.find(pkt.session);
      run_st = sit == sessions_.end() ? nullptr : &sit->second;
      run_session = pkt.session;
      run_dec = nullptr;
    }
    if (run_st == nullptr) continue;  // session dropped while queued
    SessionState& st = *run_st;
    ++st.stats.received;
    ++received;

    if (run_dec == nullptr || pkt.generation != run_gen) {
      run_dec = &buffer_.state(pkt.session, pkt.generation);
      run_gen = pkt.generation;
    }
    coding::Decoder& dec = *run_dec;
    const bool was_complete = dec.complete();
    const bool first_of_generation = dec.packets_seen() == 0;
    const bool innov = dec.add(pkt);
    std::uint8_t m = 0;
    if (innov) {
      m |= kMetaInnovative;
      ++st.stats.innovative;
      ++innovative;
    }
    if (first_of_generation && dec.rank() <= 1) m |= kMetaFirstUncoded;
    if (!was_complete && dec.complete()) m |= kMetaCompletedNow;
    batch.meta(p) = m;
#ifdef NCFN_DEBUG_GEN0
    if (pkt.generation == 0) {
      printf("[%.6f] node=%u gen0 arrival rank=%zu innov=%d role=%d\n",
             net_.sim().now(), node_, dec.rank(), (int)innov, (int)st.role);
    }
#endif
    if (tap_) {
      tap_(pkt.session, pkt.generation, dec.rank(), dec.complete(), innov);
    }
  }
  if (m_received_ != nullptr) m_received_->inc(received);
  if (m_innovative_ != nullptr) m_innovative_->inc(innovative);
}

void CodingVnf::emit_batch(coding::PacketBatch& batch) {
  const std::size_t n = batch.size();
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && batch[j].session == batch[i].session &&
           batch[j].generation == batch[i].generation) {
      ++j;
    }
    auto sit = sessions_.find(batch[i].session);
    coding::Decoder* dec =
        sit == sessions_.end()
            ? nullptr
            : buffer_.find(batch[i].session, batch[i].generation);
    if (dec == nullptr) {
      i = j;
      continue;
    }
    SessionState& st = sit->second;
    switch (st.role) {
      case ctrl::VnfRole::kDecode:
        for (std::size_t p = i; p < j; ++p) {
          if ((batch.meta(p) & kMetaCompletedNow) == 0) continue;
          ++st.stats.decoded_generations;
          if (m_decoded_ != nullptr) m_decoded_->inc();
          if (sink_) {
            sink_(batch[p].session, batch[p].generation, dec->recover());
          }
        }
        break;
      case ctrl::VnfRole::kForward:
      case ctrl::VnfRole::kRecode:
        if (st.trees) {
          // Routing-only tree forwarding: copy each innovative packet
          // along the generation's tree.
          const TreeRouting& tr = *st.trees;
          const std::size_t tree =
              tr.schedule[batch[i].generation % tr.schedule.size()];
          if (tree >= tr.hops_per_tree.size()) break;
          for (std::size_t p = i; p < j; ++p) {
            if ((batch.meta(p) & kMetaInnovative) == 0) continue;
            for (const ctrl::NextHop& hop : tr.hops_per_tree[tree]) {
              if (net_.link(node_, hop.node) == nullptr) continue;
              netsim::Datagram d;
              d.src = node_;
              d.dst = hop.node;
              d.dst_port = hop.port;
              d.payload = net_.take_buffer();
              batch[p].serialize_into(d.payload);
              out_burst_.push_back(std::move(d));
              ++st.stats.emitted;
              if (m_emitted_ != nullptr) m_emitted_->inc();
            }
          }
        } else {
          credit_run(st, batch, i, j, *dec);
          // A newly completed generation releases its deferred emissions
          // with fully-mixed content.
          for (std::size_t p = i; p < j; ++p) {
            if ((batch.meta(p) & kMetaCompletedNow) != 0) {
              flush_pending(batch[p].session, batch[p].generation);
              break;
            }
          }
        }
        break;
    }
    i = j;
  }
  batch.clear();
}

void CodingVnf::credit_run(SessionState& st, coding::PacketBatch& batch,
                           std::size_t i, std::size_t j,
                           coding::Decoder& dec) {
  // Per-generation largest-remainder credits, settled once per run: each
  // arrival earns share credits on every hop; whole credits become
  // emissions with the run's post-ingest decoder state (possibly deferred
  // until the generation reaches full rank).
  constexpr double kCreditEps = 1e-9;
  constexpr std::size_t kLedgerLimit = 4096;
  const coding::SessionId session = batch[i].session;
  const coding::GenerationId gen = batch[i].generation;
  const bool defer = st.role == ctrl::VnfRole::kRecode &&
                     cfg_.recode_hold_s > 0 && !dec.complete();
  auto& gl = st.ledger[gen];
  if (gl.credit.size() < st.hops.size()) {
    gl.credit.resize(st.hops.size(), 0.0);
    gl.deferred.resize(st.hops.size(), 0);
  }
  recode_counts_.assign(st.hops.size(), 0);
  hop_link_ok_.resize(st.hops.size());
  for (std::size_t h = 0; h < st.hops.size(); ++h) {
    hop_link_ok_[h] = net_.link(node_, st.hops[h].hop.node) != nullptr;
  }

  for (std::size_t p = i; p < j; ++p) {
    for (std::size_t h = 0; h < st.hops.size(); ++h) {
      gl.credit[h] += st.hops[h].share;
      while (gl.credit[h] >= 1.0 - kCreditEps) {
        gl.credit[h] -= 1.0;
        if (defer) {
          // Hold the emission until the generation's rank completes or
          // the hold timer fires (see the class comment).
          ++gl.deferred[h];
          if (!gl.timer_armed) {
            gl.timer_armed = true;
            net_.sim().schedule(cfg_.recode_hold_s,
                                [this, session, gen] {
                                  flush_pending(session, gen);
                                });
          }
          continue;
        }
        if (!hop_link_ok_[h]) continue;  // credit consumed, nothing to send
        if (st.role == ctrl::VnfRole::kForward ||
            (batch.meta(p) & kMetaFirstUncoded) != 0) {
          // Routing-only relays copy packets through; a recoding relay
          // also passes the very first packet of a generation unchanged
          // (Sec. III.B.2), since recoding one row is a scalar multiple.
          netsim::Datagram d;
          d.src = node_;
          d.dst = st.hops[h].hop.node;
          d.dst_port = st.hops[h].hop.port;
          d.payload = net_.take_buffer();
          batch[p].serialize_into(d.payload);
          out_burst_.push_back(std::move(d));
          ++st.stats.emitted;
          if (m_emitted_ != nullptr) m_emitted_->inc();
        } else {
          ++recode_counts_[h];
        }
      }
    }
  }
  emit_recoded_counts(st, dec, recode_counts_);
  // Bound the ledger: forward-role entries have no flush timer, so evict
  // the oldest once the map grows past the decoder buffer's own budget.
  while (st.ledger.size() > kLedgerLimit) st.ledger.erase(st.ledger.begin());
}

void CodingVnf::emit_recoded_counts(SessionState& st, coding::Decoder& dec,
                                    std::span<const std::size_t> counts) {
  std::size_t total = std::accumulate(counts.begin(), counts.end(),
                                      std::size_t{0});
  if (total == 0) return;
  std::size_t h = 0;
  std::size_t left = counts[0];
  const auto advance = [&] {
    while (h < counts.size() && left == 0) {
      ++h;
      if (h < counts.size()) left = counts[h];
    }
  };
  advance();
  // k recoded packets per coefficient-matrix sweep instead of k
  // independent recode() passes — the tentpole amortization.
  while (total > 0) {
    const std::size_t k = std::min(total, coding::kBatchCapacity);
    recode_scratch_.clear();
    dec.recode_batch(rng_, k, recode_scratch_);
    for (std::size_t t = 0; t < k; ++t) {
      netsim::Datagram d;
      d.src = node_;
      d.dst = st.hops[h].hop.node;
      d.dst_port = st.hops[h].hop.port;
      d.payload = net_.take_buffer();
      recode_scratch_[t].serialize_into(d.payload);
      out_burst_.push_back(std::move(d));
      ++st.stats.emitted;
      if (m_emitted_ != nullptr) {
        m_emitted_->inc();
        m_recoded_->inc();
      }
      if (trace_ != nullptr) {
        trace_->vnf_recode(node_, dec.session(), dec.generation(),
                           dec.rank());
      }
      --left;
      advance();
    }
    recode_scratch_.clear();
    total -= k;
  }
}

void CodingVnf::flush_pending(coding::SessionId session,
                              coding::GenerationId gen) {
  auto sit = sessions_.find(session);
  if (sit == sessions_.end()) return;
  SessionState& st = sit->second;
  auto lit = st.ledger.find(gen);
  if (lit == st.ledger.end()) return;
  coding::Decoder* dec = buffer_.find(session, gen);
  if (dec != nullptr && dec->rank() > 0) {
    recode_counts_.assign(st.hops.size(), 0);
    for (std::size_t h = 0;
         h < lit->second.deferred.size() && h < st.hops.size(); ++h) {
      if (net_.link(node_, st.hops[h].hop.node) != nullptr) {
        recode_counts_[h] = lit->second.deferred[h];
      }
      lit->second.deferred[h] = 0;
    }
    emit_recoded_counts(st, *dec, recode_counts_);
  }
  lit->second.timer_armed = false;
  flush_burst();
}

void CodingVnf::flush_burst() {
  if (in_pipeline_ || out_burst_.empty()) return;
  net_.send_burst(std::move(out_burst_));
  out_burst_.clear();
}

}  // namespace ncfn::vnf
