// Generic middlebox VNF host: the modular counterpart of CodingVnf
// (Sec. VI's modularization direction). Binds a UDP port on a node, runs
// each arriving payload through a chain of PacketFunctions under the same
// processing-lane model as the coding VNF (per-packet service time,
// queue-limited lanes), and emits the survivors to its next hops.
//
// Service chaining: functions run in order; each stage fans its outputs
// into the next ("tag checksum -> sample 1/N -> compress" is three
// chained stages on one middlebox, or three middleboxes on a path).
#pragma once

#include <memory>
#include <vector>

#include "ctrl/fwdtable.hpp"
#include "netsim/network.hpp"
#include "vnf/function.hpp"

namespace ncfn::vnf {

struct MiddleboxConfig {
  netsim::Port port = 25000;
  /// Per-payload processing cost: fixed + bytes / rate.
  double proc_rate_Bps = 1e9;
  double fixed_overhead_s = 5e-6;
  std::size_t proc_queue_limit = 4096;
};

struct MiddleboxStats {
  std::uint64_t received = 0;
  std::uint64_t emitted = 0;
  std::uint64_t swallowed = 0;     // chain returned no output
  std::uint64_t proc_dropped = 0;  // lane saturated
};

class MiddleboxVnf {
 public:
  MiddleboxVnf(netsim::Network& net, netsim::NodeId node,
               const MiddleboxConfig& cfg);
  ~MiddleboxVnf();

  MiddleboxVnf(const MiddleboxVnf&) = delete;
  MiddleboxVnf& operator=(const MiddleboxVnf&) = delete;

  /// Append a stage to the service chain (runs in push order).
  void add_function(std::unique_ptr<PacketFunction> fn);
  [[nodiscard]] std::size_t chain_length() const { return chain_.size(); }
  [[nodiscard]] PacketFunction& function(std::size_t i) {
    return *chain_.at(i);
  }

  void set_next_hops(std::vector<ctrl::NextHop> hops) {
    hops_ = std::move(hops);
  }

  [[nodiscard]] const MiddleboxStats& stats() const { return stats_; }

 private:
  void on_datagram(const netsim::Datagram& d);
  void process(std::vector<std::uint8_t> payload);

  netsim::Network& net_;
  netsim::NodeId node_;
  MiddleboxConfig cfg_;
  std::vector<std::unique_ptr<PacketFunction>> chain_;
  std::vector<ctrl::NextHop> hops_;
  netsim::Time busy_until_ = 0;
  std::size_t queued_ = 0;
  MiddleboxStats stats_;
};

}  // namespace ncfn::vnf
