#include "app/scenarios.hpp"

#include <algorithm>

#include "graph/maxflow.hpp"

namespace ncfn::app::scenarios {

namespace {
constexpr double kMbps = 1e6;
}

Butterfly butterfly(bool with_direct_links) {
  Butterfly b;
  graph::Topology& t = b.topo;

  auto dc = [&](const char* name) {
    graph::NodeInfo ni;
    ni.name = name;
    ni.kind = graph::NodeKind::kDataCenter;
    // Generous per-VM caps: the butterfly's bottlenecks are its links.
    ni.bin_bps = 200 * kMbps;
    ni.bout_bps = 200 * kMbps;
    ni.vnf_capacity_bps = 200 * kMbps;
    return t.add_node(ni);
  };
  auto host = [&](const char* name) {
    graph::NodeInfo ni;
    ni.name = name;
    ni.kind = graph::NodeKind::kHost;
    return t.add_node(ni);
  };

  b.source = host("V1:source");
  b.o1 = dc("O1:oregon");
  b.c1 = dc("C1:california");
  b.t = dc("T:texas");
  b.v2 = dc("V2:virginia");
  b.recv_o2 = host("O2:receiver");
  b.recv_c2 = host("C2:receiver");

  const double cap = 35 * kMbps;
  // One-way delays chosen so the relayed round trips land near Table II
  // (~167 ms) and direct pings near 90.9 / 77.0 ms.
  t.add_edge(b.source, b.o1, 0.030, cap);
  t.add_edge(b.source, b.c1, 0.025, cap);
  t.add_edge(b.o1, b.recv_o2, 0.015, cap);
  t.add_edge(b.c1, b.recv_c2, 0.012, cap);
  t.add_edge(b.o1, b.t, 0.020, cap);
  t.add_edge(b.c1, b.t, 0.017, cap);
  b.bottleneck = t.add_edge(b.t, b.v2, 0.018, cap);
  t.add_edge(b.v2, b.recv_o2, 0.021, cap);
  t.add_edge(b.v2, b.recv_c2, 0.019, cap);

  if (with_direct_links) {
    const double direct_cap = 40 * kMbps;
    b.direct_o2 = t.add_edge(b.source, b.recv_o2, 0.0454, direct_cap);
    b.direct_c2 = t.add_edge(b.source, b.recv_c2, 0.0385, direct_cap);
    // Reverse host links (ACK / ping return paths).
    t.add_edge(b.recv_o2, b.source, 0.0454, direct_cap);
    t.add_edge(b.recv_c2, b.source, 0.0385, direct_cap);
  } else {
    b.direct_o2 = -1;
    b.direct_c2 = -1;
    // Low-capacity reverse paths still exist for feedback traffic.
    t.add_edge(b.recv_o2, b.source, 0.0454, 10 * kMbps);
    t.add_edge(b.recv_c2, b.source, 0.0385, 10 * kMbps);
  }
  return b;
}

double butterfly_capacity_mbps(const Butterfly& b) {
  // The paper's 69.9 Mbps refers to the relayed butterfly, so compute the
  // bound on a copy without the direct links regardless of how `b` was
  // built (the direct links only ever add capacity).
  (void)b;
  Butterfly relay_only = butterfly(false);
  return graph::multicast_capacity(
             relay_only.topo, relay_only.source,
             {relay_only.recv_o2, relay_only.recv_c2}) /
         kMbps;
}

SixDc six_datacenters(const SixDcParams& p) {
  SixDc out;
  graph::Topology& t = out.topo;
  const char* names[6] = {"CA", "OR", "VA", "TX", "GA", "NJ"};
  // One-way inter-region delays (seconds), loosely based on North American
  // geography (CA-OR short, CA-NJ long, ...). Symmetric. Large enough
  // that the Lmax budget of 75-200 ms genuinely prunes multi-relay paths:
  // the longest single-relay-pair paths sit near 95 ms and useful detours
  // through a third region land in the 100-150 ms band.
  const double d[6][6] = {
      {0, 0.018, 0.081, 0.046, 0.062, 0.085},
      {0.018, 0, 0.087, 0.055, 0.072, 0.091},
      {0.081, 0.087, 0, 0.042, 0.017, 0.010},
      {0.046, 0.055, 0.042, 0, 0.025, 0.049},
      {0.062, 0.072, 0.017, 0.025, 0, 0.029},
      {0.085, 0.091, 0.010, 0.049, 0.029, 0}};

  for (int i = 0; i < 6; ++i) {
    graph::NodeInfo ni;
    ni.name = names[i];
    ni.kind = graph::NodeKind::kDataCenter;
    ni.bin_bps = p.vm_bin_mbps * kMbps;
    ni.bout_bps = p.vm_bout_mbps * kMbps;
    ni.vnf_capacity_bps = p.vnf_capacity_mbps * kMbps;
    out.dcs.push_back(t.add_node(ni));
  }
  // Several hosts per region: each session endpoint gets its own VM, and
  // same-region sessions (one relay DC) coexist with cross-region ones
  // (two or more relays), spreading the alpha break-even points so the
  // Fig. 13 decline is gradual.
  for (int i = 0; i < 6; ++i) {
    for (int h = 0; h < p.hosts_per_region; ++h) {
      graph::NodeInfo ni;
      ni.name = std::string("host-") + names[i] + "-" + std::to_string(h);
      ni.kind = graph::NodeKind::kHost;
      ni.bout_bps = p.host_bout_mbps * kMbps;
      ni.bin_bps = p.host_bin_mbps * kMbps;
      out.hosts.push_back(t.add_node(ni));
    }
  }
  // Full mesh between DCs with deterministic heterogeneous capacities.
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (i == j) continue;
      const double cap =
          (p.mesh_capacity_base_mbps +
           static_cast<double>((i * 7 + j * 13) % 8) / 7.0 *
               p.mesh_capacity_spread_mbps) *
          kMbps;
      t.add_edge(out.dcs[static_cast<std::size_t>(i)],
                 out.dcs[static_cast<std::size_t>(j)], d[i][j], cap);
    }
  }
  // Each host attaches to its home data center only; cross-region traffic
  // must ride the DC mesh (and therefore the coding VNFs).
  for (std::size_t h = 0; h < out.hosts.size(); ++h) {
    const std::size_t region = h / static_cast<std::size_t>(p.hosts_per_region);
    t.add_edge(out.hosts[h], out.dcs[region], 0.002,
               p.host_bout_mbps * kMbps);
    t.add_edge(out.dcs[region], out.hosts[h], 0.002,
               p.host_bin_mbps * kMbps);
  }
  return out;
}

ctrl::SessionSpec random_session(const SixDc& net, coding::SessionId id,
                                 std::mt19937& rng, double lmax_s,
                                 std::set<graph::NodeIdx>* used_hosts) {
  // "Sources and receivers are distributed uniformly randomly across the
  // six data centers": pick a region uniformly, then an unused host VM in
  // that region (each endpoint is its own VM on the paper's testbed).
  const std::size_t per_region = net.hosts.size() / 6;
  std::uniform_int_distribution<std::size_t> region_pick(0, 5);
  std::uniform_int_distribution<std::size_t> host_pick(0, per_region - 1);
  std::set<graph::NodeIdx> local_used;
  std::set<graph::NodeIdx>& used = used_hosts ? *used_hosts : local_used;

  auto pick_host = [&]() -> graph::NodeIdx {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const std::size_t region = region_pick(rng);
      const graph::NodeIdx h = net.hosts[region * per_region + host_pick(rng)];
      if (used.count(h) == 0) return h;
    }
    // Fall back to any free host.
    for (graph::NodeIdx h : net.hosts) {
      if (used.count(h) == 0) return h;
    }
    return net.hosts.front();
  };

  ctrl::SessionSpec spec;
  spec.id = id;
  spec.lmax_s = lmax_s;
  spec.max_rate_mbps = 200.0;  // service tier: one session cannot grab
                               // the whole mesh and starve later joins
  spec.source = pick_host();
  used.insert(spec.source);
  const int k = std::uniform_int_distribution<int>(1, 4)(rng);
  for (int i = 0; i < k; ++i) {
    const graph::NodeIdx r = pick_host();
    used.insert(r);
    spec.receivers.push_back(r);
  }
  return spec;
}

}  // namespace ncfn::app::scenarios
