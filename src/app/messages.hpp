// Application feedback messages: repair requests (retransmission of
// packets for an incomplete generation) and first-generation ACKs (used by
// the Table II delay measurement: "we allow each receiver to send an
// acknowledge directly back to the source once it has successfully
// received the (decoded) first generation").
//
// Wire layout (big-endian):
//   [0]      type (1 = repair, 2 = ack)
//   [1..4]   session id
//   [5..8]   generation id
//   [9..10]  count  (repair: packets wanted; ack: 0)
//   [11..18] block mask (repair, Non-NC: which original blocks are missing)
//   [19..22] receiver node id
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/byteview.hpp"
#include "coding/types.hpp"

namespace ncfn::app {

enum class FeedbackType : std::uint8_t { kRepair = 1, kAck = 2 };

struct Feedback {
  FeedbackType type = FeedbackType::kRepair;
  coding::SessionId session = 0;
  coding::GenerationId generation = 0;
  std::uint16_t count = 0;
  std::uint64_t block_mask = 0;
  std::uint32_t receiver_node = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<Feedback> parse(
      std::span<const std::uint8_t> wire);
};

inline constexpr std::size_t kFeedbackWireBytes = 23;

inline std::vector<std::uint8_t> Feedback::serialize() const {
  std::vector<std::uint8_t> out(kFeedbackWireBytes);
  coding::ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(session);
  w.u32(generation);
  w.u16(count);
  w.u64(block_mask);
  w.u32(receiver_node);
  return out;
}

inline std::optional<Feedback> Feedback::parse(
    std::span<const std::uint8_t> wire) {
  coding::ByteView v(wire);
  Feedback f;
  const std::uint8_t type = v.u8();
  if (type != 1 && type != 2) return std::nullopt;
  f.type = static_cast<FeedbackType>(type);
  f.session = v.u32();
  f.generation = v.u32();
  f.count = v.u16();
  f.block_mask = v.u64();
  f.receiver_node = v.u32();
  if (!v.done()) return std::nullopt;  // short or oversize datagram
  return f;
}

}  // namespace ncfn::app
