// Application feedback messages: repair requests (retransmission of
// packets for an incomplete generation) and first-generation ACKs (used by
// the Table II delay measurement: "we allow each receiver to send an
// acknowledge directly back to the source once it has successfully
// received the (decoded) first generation").
//
// Wire layout (big-endian):
//   [0]      type (1 = repair, 2 = ack)
//   [1..4]   session id
//   [5..8]   generation id
//   [9..10]  count  (repair: packets wanted; ack: 0)
//   [11..18] block mask (repair, Non-NC: which original blocks are missing)
//   [19..22] receiver node id
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/types.hpp"

namespace ncfn::app {

enum class FeedbackType : std::uint8_t { kRepair = 1, kAck = 2 };

struct Feedback {
  FeedbackType type = FeedbackType::kRepair;
  coding::SessionId session = 0;
  coding::GenerationId generation = 0;
  std::uint16_t count = 0;
  std::uint64_t block_mask = 0;
  std::uint32_t receiver_node = 0;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static std::optional<Feedback> parse(
      std::span<const std::uint8_t> wire);
};

inline std::vector<std::uint8_t> Feedback::serialize() const {
  std::vector<std::uint8_t> out(23);
  out[0] = static_cast<std::uint8_t>(type);
  auto put32 = [&](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (24 - 8 * i));
    }
  };
  put32(1, session);
  put32(5, generation);
  out[9] = static_cast<std::uint8_t>(count >> 8);
  out[10] = static_cast<std::uint8_t>(count);
  for (int i = 0; i < 8; ++i) {
    out[11 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(block_mask >> (56 - 8 * i));
  }
  put32(19, receiver_node);
  return out;
}

inline std::optional<Feedback> Feedback::parse(
    std::span<const std::uint8_t> wire) {
  if (wire.size() != 23) return std::nullopt;
  if (wire[0] != 1 && wire[0] != 2) return std::nullopt;
  Feedback f;
  f.type = static_cast<FeedbackType>(wire[0]);
  auto get32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v = (v << 8) | wire[at + static_cast<std::size_t>(i)];
    }
    return v;
  };
  f.session = get32(1);
  f.generation = get32(5);
  f.count = static_cast<std::uint16_t>((wire[9] << 8) | wire[10]);
  for (int i = 0; i < 8; ++i) f.block_mask = (f.block_mask << 8) | wire[11 + static_cast<std::size_t>(i)];
  f.receiver_node = get32(19);
  return f;
}

}  // namespace ncfn::app
