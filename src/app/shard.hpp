// Multi-worker simulation engine: deterministic sharding of independent
// sessions across worker threads.
//
// The paper's evaluation is many concurrent NC sessions on Internet
// paths; one discrete-event queue cannot reach that scale wall-clock-
// wise. The engine here shards the run (BESS master/worker split): each
// shard owns a disjoint set of sessions plus its OWN SimNet — event
// queue, links, VNFs, packet pools, observability hub, and an RNG stream
// split from the root seed by SHARD index (netsim/seedstream.hpp). The
// worker pool advances all shards in barrier-synchronized lockstep time
// windows; after the final barrier the per-shard traces are k-way merged
// in sim-time order and the per-shard metrics registries are folded
// (obs/merge.hpp).
//
// Determinism argument, in one paragraph: sessions are grouped so that
// two sessions whose deployment plans touch ANY common topology node
// land in the same shard (partition_sessions), so no two shards ever
// share a link, queue, VNF or RNG — a shard's evolution is a pure
// function of (scenario, plan, root seed, shard index). Worker count
// only chooses which OS thread executes which shard; it appears nowhere
// in any seed, any schedule, or any merge key. Hence the same seed
// produces byte-identical merged traces and metrics for 1, 2 or 8
// workers — the property CI's worker-count determinism gate enforces.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "app/config.hpp"
#include "app/provider.hpp"
#include "app/runtime.hpp"
#include "common/sync.hpp"
#include "ctrl/problem.hpp"
#include "netsim/worker.hpp"

namespace ncfn::app {

/// Deterministic partition of sessions into independent shards. Shards
/// are numbered by their smallest session index, ascending.
struct ShardPlan {
  std::vector<std::size_t> session_shard;  // session index -> shard
  std::vector<std::vector<std::size_t>> shard_sessions;  // shard -> ascending

  [[nodiscard]] std::size_t shard_count() const {
    return shard_sessions.size();
  }
};

/// Group sessions that must share a simulator: two sessions conflict
/// when their planned flows (plan edge endpoints) or endpoints (source,
/// receivers) touch a common topology node — sharing a node means
/// potentially sharing that node's links, queues or VNF. The transitive
/// closure of "conflicts" defines the shards; fully disjoint sessions
/// get a shard each.
[[nodiscard]] ShardPlan partition_sessions(
    const graph::Topology& topo, const ctrl::DeploymentPlan& plan,
    const std::vector<ctrl::SessionSpec>& sessions);

/// One worker-owned shard: a private SimNet plus the sessions living on
/// it. Everything reachable from here is touched by exactly one worker
/// lane during a window.
///
/// Ownership is transferred structurally, not by a lock: the building
/// lane owns the shard during construction, the pool barrier hands it
/// to lane (k % W) for each window, and after the final barrier the
/// caller's single thread owns every shard. The `owner` Role makes that
/// handoff a compile-time contract — all state is NCFN_GUARDED_BY(owner)
/// and each code path declares how it came to own the shard with
/// owner.assert_held() (no-op at runtime; required by the `analyze`
/// preset's -Wthread-safety pass).
struct SimShard {
  common::Role owner;
  std::unique_ptr<SimNet> sim NCFN_GUARDED_BY(owner);
  std::vector<std::unique_ptr<SyntheticProvider>> providers
      NCFN_GUARDED_BY(owner);
  std::vector<std::unique_ptr<NcMulticastSession>> sessions
      NCFN_GUARDED_BY(owner);
  // Global index per entry.
  std::vector<std::size_t> session_index NCFN_GUARDED_BY(owner);
  // Events executed by run_shard_windows.
  std::uint64_t events NCFN_GUARDED_BY(owner) = 0;
};

/// Advance every shard to `t_end` in barrier-synchronized lockstep
/// windows of `window_s` simulated seconds: within a window each worker
/// drains its shards' queues up to the window edge, then all workers
/// barrier before the next window opens. Shards are independent, so the
/// window size cannot change any shard's outcome (tested); it exists to
/// bound inter-shard skew, which is what will let windowed shards
/// exchange cross-shard traffic at window boundaries when topology-
/// region sharding lands. window_s <= 0 runs a single window.
void run_shard_windows(netsim::WorkerPool& pool,
                       std::span<const std::unique_ptr<SimShard>> shards,
                       double t_end, double window_s);

/// Per-shard traces k-way merged in (sim time, shard) order.
[[nodiscard]] std::string merged_trace(
    std::span<const std::unique_ptr<SimShard>> shards);

/// Per-shard metrics folded into one deterministic JSON snapshot.
[[nodiscard]] std::string merged_metrics_json(
    std::span<const std::unique_ptr<SimShard>> shards);

struct ShardedRunOptions {
  std::size_t workers = 1;
  double window_s = 0.050;
  double duration_s = 5.0;
  int redundancy = 0;
  double loss = 0.0;  // i.i.d. loss applied to every DC-DC link
  std::uint32_t seed = 7;
  bool trace = false;
};

/// One receiver row of the run summary (what ncfn-run prints).
struct ReceiverReport {
  coding::SessionId session = 0;
  std::string receiver;
  double planned_mbps = 0;
  double goodput_mbps = 0;
  std::uint64_t repair_requests = 0;
  std::uint64_t verify_failures = 0;
};

/// The sharded scenario engine behind `ncfn-run --workers` and
/// `ncfn-sweep`: partitions the plan's sessions, builds one shard per
/// group (in parallel — construction is per-shard work too), runs the
/// lockstep windows, and exposes deterministically merged outputs.
/// Scenarios with fail/crash lines are not supported here (the live
/// controller is a cross-session coupling); callers route those through
/// the single-engine path.
class ShardedScenarioRun {
 public:
  /// `scenario` and `plan` must outlive the run.
  ShardedScenarioRun(const Scenario& scenario,
                     const ctrl::DeploymentPlan& plan,
                     const ShardedRunOptions& opts);

  /// Build every shard and advance to opts.duration_s.
  void run();

  [[nodiscard]] const ShardPlan& shard_plan() const { return parts_; }
  [[nodiscard]] std::size_t workers() const { return pool_.workers(); }
  [[nodiscard]] std::uint64_t events_executed() const;
  /// Rows in (session, receiver) declaration order, any worker count.
  [[nodiscard]] std::vector<ReceiverReport> reports() const;
  [[nodiscard]] std::string trace_jsonl() const;
  [[nodiscard]] std::string metrics_json() const;

 private:
  void build_shard(std::size_t k);

  const Scenario* scenario_;
  const ctrl::DeploymentPlan* plan_;
  ShardedRunOptions opts_;
  ShardPlan parts_;
  netsim::WorkerPool pool_;
  std::vector<std::unique_ptr<SimShard>> shards_;
};

}  // namespace ncfn::app
