#include "app/receiver.hpp"

#include <algorithm>
#include <cassert>

namespace ncfn::app {

McReceiver::McReceiver(netsim::Network& net, netsim::NodeId node,
                       const GenerationProvider& provider,
                       const ReceiverConfig& cfg)
    : net_(net), node_(node), provider_(provider), cfg_(cfg) {
  if (obs::Observability* obs = net_.obs()) {
    m_generations_decoded_ = &obs->metrics.counter("app.generations_decoded");
    m_payload_bytes_ = &obs->metrics.counter("app.payload_bytes");
    m_repair_requests_ = &obs->metrics.counter("app.repair_requests_sent");
    m_verify_failures_ = &obs->metrics.counter("app.verify_failures");
    // Recovery latency spans sub-second re-routes up to repair-loop-bound
    // multi-second rebuilds.
    static constexpr double kRecoveryBounds[] = {0.1, 0.25, 0.5, 1.0,
                                                 2.5,  5.0, 10.0};
    m_recovery_s_ = &obs->metrics.histogram("app.recovery_time_s",
                                            kRecoveryBounds);
  }
  cfg_.vnf.params = cfg_.params;
  vnf_ = std::make_unique<vnf::CodingVnf>(net_, node_, cfg_.vnf);
  vnf_->configure_session(cfg_.session, ctrl::VnfRole::kDecode,
                          cfg_.data_port);
  vnf_->set_decode_sink(
      [this](coding::SessionId, coding::GenerationId gen,
             std::vector<std::vector<std::uint8_t>> blocks) {
        on_generation_decoded(gen, blocks);
      });
  vnf_->set_packet_tap([this](coding::SessionId, coding::GenerationId gen,
                              std::size_t rank, bool complete, bool) {
    on_packet(gen, rank, complete);
  });
}

void McReceiver::start() {
  start_time_ = net_.sim().now();
  if (cfg_.sample_interval_s > 0) {
    net_.sim().schedule(cfg_.sample_interval_s, [this] { sample(); });
  }
}

double McReceiver::goodput_mbps() const {
  // For a finished transfer, average over the actual transfer time, not
  // however long the simulation kept running afterwards.
  const double end =
      stats_.completed_at >= 0 ? stats_.completed_at : net_.sim().now();
  const double elapsed = end - start_time_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(stats_.payload_bytes) * 8.0 / elapsed / 1e6;
}

double McReceiver::windowed_goodput_mbps(double window_s) const {
  if (samples_.empty()) return goodput_mbps();
  const ThroughputSample& last = samples_.back();
  // Find the sample at (or before) last.at_s - window_s.
  std::uint64_t base_bytes = 0;
  double base_t = start_time_;
  for (const ThroughputSample& s : samples_) {
    if (s.at_s + 1e-9 < last.at_s - window_s) {
      base_bytes = s.cumulative_bytes;
      base_t = s.at_s;
    }
  }
  const double dt = last.at_s - base_t;
  if (dt <= 0) return 0.0;
  return static_cast<double>(last.cumulative_bytes - base_bytes) * 8.0 / dt /
         1e6;
}

void McReceiver::sample() {
  samples_.push_back(ThroughputSample{net_.sim().now(), stats_.payload_bytes});
  if (!complete()) {
    net_.sim().schedule(cfg_.sample_interval_s, [this] { sample(); });
  }
}

void McReceiver::on_packet(coding::GenerationId gen, std::size_t /*rank*/,
                           bool complete) {
  if (complete || decoded_.count(gen) > 0 || !cfg_.enable_repair) return;
  arm_repair_timer(gen);
}

void McReceiver::arm_repair_timer(coding::GenerationId gen) {
  GenProgress& gp = progress_[gen];
  if (gp.timer_armed) return;
  gp.timer_armed = true;
  net_.sim().schedule(cfg_.repair_timeout_s, [this, gen] {
    auto it = progress_.find(gen);
    if (it == progress_.end()) return;  // decoded meanwhile
    it->second.timer_armed = false;
    if (decoded_.count(gen) > 0) return;
    if (it->second.repair_rounds >= cfg_.max_repair_rounds) return;
    ++it->second.repair_rounds;

    // How much is still missing?
    std::size_t rank = 0;
    std::uint64_t have_mask = 0;
    const std::size_t g = cfg_.params.generation_blocks;
    if (auto* d = vnf_->find_decoder(cfg_.session, gen)) {
      rank = d->rank();
      for (std::size_t c = 0; c < g && c < 64; ++c) {
        if (d->has_pivot(c)) have_mask |= 1ull << c;
      }
    }
    if (rank >= g) return;

    Feedback fb;
    fb.type = FeedbackType::kRepair;
    fb.session = cfg_.session;
    fb.generation = gen;
    fb.count = static_cast<std::uint16_t>(g - rank);
    // The 8-byte wire mask can name at most 64 blocks. For larger
    // generations it cannot describe what is missing (the pivot scan
    // above stops at bit 63), so send 0 — the source then answers with
    // coded repairs, which close a rank gap at any generation size.
    // Truncating instead (the old behaviour) made the Non-NC baseline
    // retransmit only blocks 0..63 and livelock on g > 64.
    fb.block_mask =
        g > 64 ? 0
               : (~have_mask & ((g == 64) ? ~0ull : ((1ull << g) - 1)));
    fb.receiver_node = node_;
    netsim::Datagram d;
    d.src = node_;
    d.dst = cfg_.source_node;
    d.dst_port = cfg_.source_feedback_port;
    d.payload = fb.serialize();
    if (net_.send(std::move(d))) {
      ++stats_.repair_requests_sent;
      if (m_repair_requests_ != nullptr) m_repair_requests_->inc();
    }
    arm_repair_timer(gen);  // keep retrying until decoded or capped
  });
}

void McReceiver::mark_disruption() { disruption_at_ = net_.sim().now(); }

void McReceiver::on_generation_decoded(
    coding::GenerationId gen,
    const std::vector<std::vector<std::uint8_t>>& blocks) {
  if (!decoded_.insert(gen).second) return;
  progress_.erase(gen);

  if (disruption_at_ >= 0) {
    stats_.last_recovery_s = net_.sim().now() - disruption_at_;
    if (m_recovery_s_ != nullptr) m_recovery_s_->record(stats_.last_recovery_s);
    disruption_at_ = -1;
  }

  // Unpadded byte count of this generation.
  const std::size_t gen_bytes = cfg_.params.generation_bytes();
  const std::size_t total = provider_.total_bytes();
  const std::size_t off = static_cast<std::size_t>(gen) * gen_bytes;
  const std::size_t n = off < total ? std::min(gen_bytes, total - off) : 0;
  stats_.payload_bytes += n;
  ++stats_.generations_decoded;
  if (m_generations_decoded_ != nullptr) {
    m_generations_decoded_->inc();
    m_payload_bytes_->inc(n);
  }

  if (verify_ != nullptr) {
    const auto expected = verify_->generation_bytes(gen);
    std::size_t i = 0;
    bool ok = expected.size() == n;
    for (const auto& blk : blocks) {
      for (std::uint8_t b : blk) {
        if (i >= n) break;
        if (b != expected[i]) {
          ok = false;
          break;
        }
        ++i;
      }
      if (!ok) break;
    }
    if (!ok) {
      ++stats_.verify_failures;
      if (m_verify_failures_ != nullptr) m_verify_failures_->inc();
    }
  }

  if (ordered_sink_) {
    // Flatten the blocks to the generation's unpadded bytes.
    std::vector<std::uint8_t> bytes;
    bytes.reserve(n);
    for (const auto& blk : blocks) {
      for (std::uint8_t b : blk) {
        if (bytes.size() >= n) break;
        bytes.push_back(b);
      }
    }
    held_back_[gen] = std::move(bytes);
    while (true) {
      auto it = held_back_.find(next_ordered_);
      if (it == held_back_.end()) break;
      ordered_sink_(next_ordered_, std::move(it->second));
      held_back_.erase(it);
      ++next_ordered_;
    }
  }

  if (gen == 0) {
    stats_.first_generation_decoded_at = net_.sim().now();
    // First-generation ACK straight back to the source (Table II).
    Feedback ack;
    ack.type = FeedbackType::kAck;
    ack.session = cfg_.session;
    ack.generation = 0;
    ack.receiver_node = node_;
    netsim::Datagram d;
    d.src = node_;
    d.dst = cfg_.source_node;
    d.dst_port = cfg_.source_feedback_port;
    d.payload = ack.serialize();
    net_.send(std::move(d));
  }

  if (decoded_.size() >= provider_.generation_count()) {
    stats_.completed_at = net_.sim().now();
  }
}

}  // namespace ncfn::app
