// Shared evaluation scenarios.
//
// * butterfly(): the classic butterfly overlay of Fig. 6 — source V1
//   (Virginia), receivers O2 (Oregon) and C2 (California), relay DCs O1,
//   C1, T (Texas) and V2, every labelled link capped at 35 Mbps so the
//   theoretical coded multicast capacity (Ford–Fulkerson) is 70 Mbps,
//   routing-only tree packing gives 52.5 Mbps, and the direct paths
//   support ~40 Mbps. One-way delays are set so the direct-ping RTTs and
//   relayed RTTs land near Table II (≈91/77 ms direct, ≈167 ms relayed).
//
// * six_datacenters(): the dynamic-scenario overlay of Sec. V.C — six
//   North-American data centers (the paper's three EC2 + three Linode
//   regions), full mesh with measured-looking delays, per-VM Bin/Bout
//   caps and per-VNF coding capacity C(v); plus helpers generating the
//   paper's random sessions ("each with a uniformly random number of
//   receivers in [1,4], sources and receivers distributed uniformly at
//   random across the six data centers").
#pragma once

#include <random>
#include <set>
#include <vector>

#include "ctrl/problem.hpp"
#include "graph/topology.hpp"

namespace ncfn::app::scenarios {

struct Butterfly {
  graph::Topology topo;
  graph::NodeIdx source;     // V1
  graph::NodeIdx o1, c1, t, v2;  // relay data centers
  graph::NodeIdx recv_o2, recv_c2;
  graph::EdgeIdx bottleneck;      // T -> V2
  graph::EdgeIdx direct_o2, direct_c2;  // direct Internet paths (TCP baseline)
};

/// Build the Fig. 6 butterfly. `with_direct_links` adds the direct
/// source→receiver paths used by the ping rows of Table II and the
/// Direct-TCP baseline of Fig. 7 (they are NOT part of the relayed
/// butterfly, so relayed experiments exclude them via `lmax` or by
/// passing false).
[[nodiscard]] Butterfly butterfly(bool with_direct_links = true);

/// The theoretical coded multicast capacity of the butterfly (Mbps).
[[nodiscard]] double butterfly_capacity_mbps(const Butterfly& b);

struct SixDc {
  graph::Topology topo;
  std::vector<graph::NodeIdx> dcs;  // CA, OR, VA, TX, GA, NJ
  /// Host nodes co-located with each DC (sources/receivers attach here);
  /// each host connects only to its home data center.
  std::vector<graph::NodeIdx> hosts;
};

struct SixDcParams {
  double vm_bin_mbps = 400;   // per-VM inbound cap
  double vm_bout_mbps = 400;  // per-VM outbound cap
  /// C(v): coding rate of one VNF. A cross-region flow traverses two
  /// relay DCs, so the marginal value of one VNF is ~C/2 and deployments
  /// stop being worthwhile as alpha approaches C/2 — C = 400 places the
  /// Fig. 13 zero crossing at the paper's alpha = 200.
  double vnf_capacity_mbps = 400;
  double host_bout_mbps = 500;     // source uplink
  double host_bin_mbps = 400;      // receiver downlink
  /// Inter-DC path capacities vary deterministically in
  /// [mesh_capacity_base, base + spread] Mbps — reaching a receiver's full
  /// downlink needs several (possibly longer) paths, which is what makes
  /// Lmax and alpha meaningful knobs (Figs. 12 and 13).
  double mesh_capacity_base_mbps = 100;
  double mesh_capacity_spread_mbps = 140;
  /// Hosts provisioned per region. Each session endpoint is its own VM
  /// (as on the paper's testbed), so enough hosts must exist for all
  /// concurrent sessions' endpoints to be distinct.
  int hosts_per_region = 8;
};

[[nodiscard]] SixDc six_datacenters(const SixDcParams& params = {});

/// The paper's random session mix: sources/receivers uniform over the six
/// regions, 1–4 receivers per session, Lmax = 150 ms. Endpoints are drawn
/// without replacement from `used_hosts` (if given), so concurrent
/// sessions get distinct VMs as on the paper's testbed.
[[nodiscard]] ctrl::SessionSpec random_session(
    const SixDc& net, coding::SessionId id, std::mt19937& rng,
    double lmax_s = 0.150, std::set<graph::NodeIdx>* used_hosts = nullptr);

}  // namespace ncfn::app::scenarios
