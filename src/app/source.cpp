#include "app/source.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace ncfn::app {

namespace {
constexpr std::size_t kEncoderCacheLimit = 8;
}

McSource::McSource(netsim::Network& net, netsim::NodeId node,
                   const GenerationProvider& provider,
                   const SourceConfig& cfg)
    : net_(net), node_(node), provider_(provider), cfg_(cfg), rng_(cfg.seed) {
  if (obs::Observability* obs = net_.obs()) {
    m_packets_sent_ = &obs->metrics.counter("app.packets_sent");
    m_repair_packets_sent_ =
        &obs->metrics.counter("app.repair_packets_sent");
    m_repair_requests_ =
        &obs->metrics.counter("app.repair_requests_received");
  }
  net_.bind(node_, cfg_.feedback_port,
            [this](const netsim::Datagram& d) { on_feedback(d); });
}

McSource::~McSource() { net_.unbind(node_, cfg_.feedback_port); }

void McSource::configure_hops(
    std::vector<std::pair<ctrl::NextHop, double>> hops) {
  tree_mode_ = false;
  pacers_.clear();
  const auto& p = cfg_.params;
  // The wire rate on each edge stays at the plan's f_m(e); redundancy
  // packets displace data packets (each generation takes g+R slots), so
  // the effective data rate is lambda * g / (g + R) — protection is paid
  // for with goodput, never by overdriving the link.
  for (const auto& [hop, rate_mbps] : hops) {
    if (rate_mbps <= 0) continue;
    Pacer pacer;
    pacer.hops = {hop};
    pacer.interval_s =
        static_cast<double>(p.block_size) * 8.0 / (rate_mbps * 1e6);
    pacer.quota_per_gen =
        static_cast<double>(p.generation_blocks + cfg_.redundancy) *
        rate_mbps / cfg_.lambda_mbps;
    pacers_.push_back(std::move(pacer));
  }
}

void McSource::reconfigure_hops(
    std::vector<std::pair<ctrl::NextHop, double>> hops, double lambda_mbps) {
  assert(!tree_mode_ && "live rewire is NC-mode only");
  if (lambda_mbps > 0) cfg_.lambda_mbps = lambda_mbps;
  // Resume from the least-advanced generation across the old pacers: the
  // new edge set must not skip a generation some receiver never got, and
  // redundant coded packets for already-decoded generations are harmless.
  coding::GenerationId resume = provider_.generation_count();
  std::deque<Feedback> pending;
  for (Pacer& p : pacers_) {
    resume = std::min(resume, p.gen_cursor);
    for (const Feedback& fb : p.repair_queue) pending.push_back(fb);
  }
  ++pacer_epoch_;  // invalidate every tick scheduled against the old pacers
  configure_hops(std::move(hops));
  for (Pacer& p : pacers_) p.gen_cursor = resume;
  // Outstanding repair work survives the rewire, spread round-robin.
  if (!pacers_.empty()) {
    for (const Feedback& fb : pending) {
      pacers_[repair_rr_++ % pacers_.size()].repair_queue.push_back(fb);
    }
  }
  if (started_) {
    for (std::size_t i = 0; i < pacers_.size(); ++i) {
      pacers_[i].running = true;
      const double phase =
          pacers_[i].interval_s *
          (1.0 + 0.1 * static_cast<double>(i) /
                     static_cast<double>(pacers_.size()));
      schedule_tick(i, phase);
    }
  }
}

void McSource::configure_trees(const graph::Topology& topo,
                               std::vector<MulticastTree> trees,
                               netsim::Port data_port_override) {
  tree_mode_ = true;
  trees_ = std::move(trees);
  schedule_ = tree_schedule(trees_);
  pacers_.clear();
  const netsim::Port port =
      data_port_override != 0 ? data_port_override : cfg_.data_port;
  const auto& p = cfg_.params;
  for (std::size_t j = 0; j < trees_.size(); ++j) {
    Pacer pacer;
    pacer.tree_index = j;
    // Root hops: this node's out-edges within the tree. NodeIdx in the
    // topology equals NodeId in the simulated network (see SimNet).
    for (graph::NodeIdx hop :
         trees_[j].next_hops(topo, static_cast<graph::NodeIdx>(node_))) {
      pacer.hops.push_back(
          ctrl::NextHop{static_cast<std::uint32_t>(hop), port});
    }
    pacer.interval_s =
        static_cast<double>(p.block_size) * 8.0 / (trees_[j].rate_mbps * 1e6);
    // First generation belonging to this tree.
    coding::GenerationId g = 0;
    while (g < provider_.generation_count() &&
           schedule_[g % schedule_.size()] != j) {
      ++g;
    }
    pacer.tree_cursor = g;
    pacers_.push_back(std::move(pacer));
  }
}

void McSource::start() {
  assert(!pacers_.empty() && "configure hops or trees before start()");
  started_ = true;
  stopped_ = false;
  start_time_ = net_.sim().now();
  for (std::size_t i = 0; i < pacers_.size(); ++i) {
    pacers_[i].running = true;
    // Small index-dependent phase offset de-synchronizes the pacers.
    const double phase =
        pacers_[i].interval_s * (1.0 + 0.1 * static_cast<double>(i) /
                                           static_cast<double>(pacers_.size()));
    schedule_tick(i, phase);
  }
}

void McSource::schedule_tick(std::size_t idx, double delay_s) {
  net_.sim().schedule(delay_s, [this, idx, epoch = pacer_epoch_] {
    if (epoch == pacer_epoch_) pacer_tick(idx);
  });
}

void McSource::stop() { stopped_ = true; }

bool McSource::data_exhausted() const {
  if (!started_) return false;
  for (const Pacer& p : pacers_) {
    const coding::GenerationId cursor =
        tree_mode_ ? p.tree_cursor : p.gen_cursor;
    if (cursor < provider_.generation_count()) return false;
  }
  return true;
}

void McSource::ensure_encoder(coding::GenerationId gen) {
  if (encoders_.count(gen) > 0) return;
  auto generation = std::make_unique<coding::Generation>(
      provider_.generation(gen));
  auto encoder = std::make_unique<coding::Encoder>(cfg_.session, *generation,
                                                   rng_, pool_);
  encoders_[gen] = {std::move(generation), std::move(encoder)};
  // Keep the cache small; evict the oldest generations — but never the one
  // just materialized (a repair for an old generation would otherwise be
  // evicted before use, since old ids sort first).
  while (encoders_.size() > kEncoderCacheLimit) {
    auto victim = encoders_.begin();
    if (victim->first == gen) ++victim;
    encoders_.erase(victim);
  }
}

void McSource::send_packet(Pacer& p, const coding::CodedPacket& pkt,
                           bool repair) {
  for (const ctrl::NextHop& hop : p.hops) {
    netsim::Datagram d;
    d.src = node_;
    d.dst = hop.node;
    d.dst_port = hop.port;
    d.payload = net_.take_buffer();
    pkt.serialize_into(d.payload);
    if (net_.send(std::move(d))) {
      ++stats_.packets_sent;
      if (m_packets_sent_ != nullptr) m_packets_sent_->inc();
      if (repair) {
        ++stats_.repair_packets_sent;
        if (m_repair_packets_sent_ != nullptr) m_repair_packets_sent_->inc();
      }
    }
  }
}

void McSource::pacer_tick(std::size_t idx) {
  Pacer& p = pacers_[idx];
  if (!started_) {
    p.running = false;
    return;
  }
  bool emitted = false;

  if (!p.repair_queue.empty()) {
    Feedback fb = p.repair_queue.front();
    p.repair_queue.pop_front();
    if (fb.generation < provider_.generation_count()) {
      ensure_encoder(fb.generation);
      auto& [generation, encoder] = encoders_.at(fb.generation);
      if (tree_mode_ && fb.block_mask != 0) {
        // Retransmit a specific original block.
        const auto bit = static_cast<std::size_t>(
            std::countr_zero(fb.block_mask));
        if (bit < cfg_.params.generation_blocks) {
          send_packet(p, encoder->encode_systematic(bit), /*repair=*/true);
          emitted = true;
        }
      } else {
        send_packet(p, encoder->encode_random(), /*repair=*/true);
        emitted = true;
      }
    }
  } else if (!stopped_) {
    if (tree_mode_) {
      if (p.tree_cursor < provider_.generation_count()) {
        ensure_encoder(p.tree_cursor);
        auto& [generation, encoder] = encoders_.at(p.tree_cursor);
        send_packet(p, encoder->encode_systematic(p.block_cursor),
                    /*repair=*/false);
        emitted = true;
        if (p.tree_cursor == 0) {
          // Track completion of the first generation for Table II.
          if (p.block_cursor + 1 == cfg_.params.generation_blocks &&
              first_gen_sent_at_ < 0) {
            first_gen_sent_at_ = net_.sim().now();
          }
        }
        if (++p.block_cursor >= cfg_.params.generation_blocks) {
          p.block_cursor = 0;
          do {
            ++p.tree_cursor;
          } while (p.tree_cursor < provider_.generation_count() &&
                   schedule_[p.tree_cursor % schedule_.size()] !=
                       p.tree_index);
        }
      }
    } else {
      // Take the next generation's quota if the current one is spent.
      if (p.remaining == 0) {
        while (p.gen_cursor < provider_.generation_count()) {
          p.quota_acc += p.quota_per_gen;
          const int take = static_cast<int>(std::floor(p.quota_acc + 1e-9));
          if (take > 0) {
            p.quota_acc -= take;
            p.remaining = take;
            break;
          }
          ++p.gen_cursor;  // this edge carries nothing for this generation
        }
      }
      if (p.remaining > 0 && p.gen_cursor < provider_.generation_count()) {
        ensure_encoder(p.gen_cursor);
        auto& [generation, encoder] = encoders_.at(p.gen_cursor);
        send_packet(p, encoder->encode_random(), /*repair=*/false);
        emitted = true;
        if (--p.remaining == 0) ++p.gen_cursor;
        if (first_gen_sent_at_ < 0) {
          bool all_past_gen0 = true;
          for (const Pacer& q : pacers_) {
            all_past_gen0 = all_past_gen0 && q.gen_cursor > 0;
          }
          if (all_past_gen0) first_gen_sent_at_ = net_.sim().now();
        }
      }
    }
  }

  if (emitted || !p.repair_queue.empty() ||
      (!stopped_ && !data_exhausted())) {
    schedule_tick(idx, p.interval_s);
  } else {
    p.running = false;  // idle; a repair request will wake it up
  }
}

void McSource::on_feedback(const netsim::Datagram& d) {
  auto fb = Feedback::parse(d.payload);
  if (!fb || fb->session != cfg_.session) return;

  if (fb->type == FeedbackType::kAck) {
    if (first_gen_sent_at_ >= 0 &&
        stats_.first_gen_ack_rtt.count(fb->receiver_node) == 0) {
      stats_.first_gen_ack_rtt[fb->receiver_node] =
          net_.sim().now() - first_gen_sent_at_;
    }
    return;
  }

  ++stats_.repair_requests;
  if (m_repair_requests_ != nullptr) m_repair_requests_->inc();
  if (pacers_.empty()) return;

  if (tree_mode_) {
    const std::size_t tree = schedule_[fb->generation % schedule_.size()];
    std::size_t pidx = 0;
    for (std::size_t i = 0; i < pacers_.size(); ++i) {
      if (pacers_[i].tree_index == tree) pidx = i;
    }
    // One queue entry per missing block. A zero mask (the receiver cannot
    // name blocks >= 64) asks for `count` coded repairs instead.
    std::uint64_t mask = fb->block_mask;
    if (mask == 0) {
      for (std::uint16_t c = 0; c < fb->count; ++c) {
        pacers_[pidx].repair_queue.push_back(*fb);
      }
    }
    while (mask != 0) {
      const std::uint64_t bit = mask & (~mask + 1);
      mask ^= bit;
      Feedback one = *fb;
      one.block_mask = bit;
      pacers_[pidx].repair_queue.push_back(one);
    }
    if (!pacers_[pidx].running && started_) {
      pacers_[pidx].running = true;
      schedule_tick(pidx, pacers_[pidx].interval_s);
    }
  } else {
    // Spread the requested coded packets across the pacers round-robin.
    for (std::uint16_t c = 0; c < fb->count; ++c) {
      const std::size_t pidx = repair_rr_++ % pacers_.size();
      Feedback one = *fb;
      one.block_mask = 0;
      pacers_[pidx].repair_queue.push_back(one);
      if (!pacers_[pidx].running && started_) {
        pacers_[pidx].running = true;
        schedule_tick(pidx, pacers_[pidx].interval_s);
      }
    }
  }
}

}  // namespace ncfn::app
