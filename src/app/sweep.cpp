#include "app/sweep.hpp"

#include <cstdio>

#include "app/shard.hpp"
#include "netsim/worker.hpp"

namespace ncfn::app {

std::vector<SweepCell> run_sweep(const Scenario& scenario,
                                 const ctrl::DeploymentPlan& plan,
                                 const SweepMatrix& matrix,
                                 std::size_t jobs) {
  std::vector<SweepCell> cells(matrix.cell_count());
  netsim::WorkerPool pool(jobs);
  // Each job writes only its own pre-sized slot: no shared state, no
  // ordering dependence on which lane ran which cell. Captures are
  // named (not a default [&]) so ncfn-lint's ref-capture-thread rule
  // can hold every pool submit to an explicit reachable-state list.
  pool.run(cells.size(), [&cells, &matrix, &scenario, &plan](std::size_t j) {
    const std::size_t bi = j % matrix.batches.size();
    const std::size_t li = (j / matrix.batches.size()) % matrix.losses.size();
    const std::size_t si = j / (matrix.batches.size() * matrix.losses.size());

    Scenario cell_scenario = scenario;
    if (matrix.batches[bi] != 0) cell_scenario.max_batch = matrix.batches[bi];

    ShardedRunOptions opts;
    opts.workers = 1;  // parallelism lives across cells, not inside one
    opts.duration_s = matrix.duration_s;
    opts.redundancy = matrix.redundancy;
    opts.loss = matrix.losses[li];
    opts.seed = matrix.seeds[si];
    ShardedScenarioRun run(cell_scenario, plan, opts);
    run.run();

    SweepCell& cell = cells[j];
    cell.seed = matrix.seeds[si];
    cell.loss = matrix.losses[li];
    cell.batch = cell_scenario.max_batch;
    cell.events = run.events_executed();
    cell.shards = run.shard_plan().shard_count();
    double sum = 0;
    std::size_t n = 0;
    for (const ReceiverReport& r : run.reports()) {
      if (n == 0 || r.goodput_mbps < cell.min_goodput_mbps) {
        cell.min_goodput_mbps = r.goodput_mbps;
      }
      sum += r.goodput_mbps;
      ++n;
      cell.repair_requests += r.repair_requests;
      cell.verify_failures += r.verify_failures;
    }
    cell.mean_goodput_mbps = n == 0 ? 0 : sum / static_cast<double>(n);
  });
  return cells;
}

std::string sweep_json(const std::string& scenario_name,
                       const SweepMatrix& matrix,
                       const std::vector<SweepCell>& cells) {
  std::string out;
  char buf[256];
  out += "{\n";
  out += "  \"scenario\": \"" + scenario_name + "\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"duration_s\": %.3f,\n  \"redundancy\": %d,\n",
                matrix.duration_s, matrix.redundancy);
  out += buf;
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepCell& c = cells[i];
    std::snprintf(buf, sizeof buf,
                  "    {\"seed\": %u, \"loss\": %.4f, \"batch\": %zu, "
                  "\"min_goodput_mbps\": %.3f, \"mean_goodput_mbps\": %.3f, "
                  "\"repair_requests\": %llu, \"verify_failures\": %llu, "
                  "\"events\": %llu, \"shards\": %zu}%s\n",
                  c.seed, c.loss, c.batch, c.min_goodput_mbps,
                  c.mean_goodput_mbps,
                  static_cast<unsigned long long>(c.repair_requests),
                  static_cast<unsigned long long>(c.verify_failures),
                  static_cast<unsigned long long>(c.events), c.shards,
                  i + 1 == cells.size() ? "" : ",");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace ncfn::app
