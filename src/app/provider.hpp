// Application data source: supplies the bytes of each generation.
//
// Two implementations:
//   * BufferProvider — a real in-memory file (the paper's file-transfer
//     driver app), split into generations.
//   * SyntheticProvider — deterministic pseudo-random content generated
//     per (session, generation) on demand, so long transfers need O(1)
//     memory on both ends and receivers can still verify every decoded
//     byte by regenerating the expected content.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coding/generation.hpp"
#include "coding/types.hpp"

namespace ncfn::app {

class GenerationProvider {
 public:
  virtual ~GenerationProvider() = default;
  /// Total number of generations in the session's data.
  [[nodiscard]] virtual coding::GenerationId generation_count() const = 0;
  /// Total meaningful payload bytes.
  [[nodiscard]] virtual std::size_t total_bytes() const = 0;
  /// Materialize generation `id` (0-based, < generation_count()).
  [[nodiscard]] virtual coding::Generation generation(
      coding::GenerationId id) const = 0;
};

/// Provider over a caller-supplied byte buffer.
class BufferProvider final : public GenerationProvider {
 public:
  BufferProvider(std::vector<std::uint8_t> data,
                 const coding::CodingParams& params);

  [[nodiscard]] coding::GenerationId generation_count() const override;
  [[nodiscard]] std::size_t total_bytes() const override { return data_.size(); }
  [[nodiscard]] coding::Generation generation(
      coding::GenerationId id) const override;
  [[nodiscard]] std::span<const std::uint8_t> data() const { return data_; }

 private:
  std::vector<std::uint8_t> data_;
  coding::CodingParams params_;
};

/// Deterministic synthetic content keyed by (seed, generation).
class SyntheticProvider final : public GenerationProvider {
 public:
  SyntheticProvider(std::uint64_t seed, std::size_t total_bytes,
                    const coding::CodingParams& params)
      : seed_(seed), total_bytes_(total_bytes), params_(params) {}

  [[nodiscard]] coding::GenerationId generation_count() const override;
  [[nodiscard]] std::size_t total_bytes() const override { return total_bytes_; }
  [[nodiscard]] coding::Generation generation(
      coding::GenerationId id) const override;

  /// Expected raw bytes of generation `id` (for receiver-side verification).
  [[nodiscard]] std::vector<std::uint8_t> generation_bytes(
      coding::GenerationId id) const;

 private:
  std::uint64_t seed_;
  std::size_t total_bytes_;
  coding::CodingParams params_;
};

}  // namespace ncfn::app
