#include "app/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "lp/simplex.hpp"

namespace ncfn::app {

std::vector<graph::NodeIdx> MulticastTree::next_hops(
    const graph::Topology& topo, graph::NodeIdx node) const {
  std::vector<graph::NodeIdx> hops;
  for (graph::EdgeIdx e : edges) {
    if (topo.edge(e).from == node) hops.push_back(topo.edge(e).to);
  }
  return hops;
}

TreePacking pack_trees(const graph::Topology& topo, graph::NodeIdx source,
                       const std::vector<graph::NodeIdx>& receivers,
                       double lmax_s, const TreePackingLimits& limits,
                       const std::map<graph::NodeIdx, int>& vnfs_per_dc) {
  TreePacking out;
  if (receivers.empty()) return out;

  // Per-receiver candidate paths.
  graph::PathSearchLimits pl;
  pl.max_paths = limits.max_paths_per_receiver;
  std::vector<std::vector<graph::Path>> paths;
  paths.reserve(receivers.size());
  for (graph::NodeIdx r : receivers) {
    paths.push_back(graph::feasible_paths(topo, source, r, lmax_s, pl));
    if (paths.back().empty()) return out;  // a receiver is unreachable
  }

  // Cartesian product -> candidate trees, deduped by edge set.
  std::set<std::vector<graph::EdgeIdx>> seen;
  std::vector<MulticastTree> candidates;
  std::vector<std::size_t> pick(paths.size(), 0);
  while (candidates.size() < limits.max_trees) {
    std::set<graph::EdgeIdx> union_edges;
    for (std::size_t k = 0; k < paths.size(); ++k) {
      for (graph::EdgeIdx e : paths[k][pick[k]].edges) union_edges.insert(e);
    }
    std::vector<graph::EdgeIdx> key(union_edges.begin(), union_edges.end());
    if (seen.insert(key).second) {
      candidates.push_back(MulticastTree{std::move(key), 0.0});
    }
    // Advance the product counter.
    std::size_t k = 0;
    while (k < pick.size() && ++pick[k] == paths[k].size()) {
      pick[k] = 0;
      ++k;
    }
    if (k == pick.size()) break;  // product exhausted
  }
  if (candidates.empty()) return out;

  // LP: maximize sum t_j subject to edge and node capacities.
  lp::Problem lp;
  std::vector<int> tvar;
  tvar.reserve(candidates.size());
  for (std::size_t j = 0; j < candidates.size(); ++j) {
    tvar.push_back(lp.add_var(1.0));
  }
  // Per-edge caps.
  std::set<graph::EdgeIdx> used;
  for (const MulticastTree& t : candidates) {
    used.insert(t.edges.begin(), t.edges.end());
  }
  for (graph::EdgeIdx e : used) {
    const double cap = topo.edge(e).capacity_bps;
    if (!std::isfinite(cap)) continue;
    std::vector<lp::Term> terms;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (std::find(candidates[j].edges.begin(), candidates[j].edges.end(),
                    e) != candidates[j].edges.end()) {
        terms.push_back({tvar[j], 1.0});
      }
    }
    lp.add_constraint(std::move(terms), lp::Rel::kLe, cap / 1e6);
  }
  // Per-DC in/out caps scaled by the deployed VNF count.
  for (const auto& [v, n] : vnfs_per_dc) {
    const graph::NodeInfo& ni = topo.node(v);
    std::vector<lp::Term> in_terms, out_terms;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      bool in = false, outgoing = false;
      for (graph::EdgeIdx e : candidates[j].edges) {
        if (topo.edge(e).to == v) in = true;
        if (topo.edge(e).from == v) outgoing = true;
      }
      if (in) in_terms.push_back({tvar[j], 1.0});
      if (outgoing) out_terms.push_back({tvar[j], 1.0});
    }
    if (!in_terms.empty() && std::isfinite(ni.bin_bps)) {
      lp.add_constraint(std::move(in_terms), lp::Rel::kLe,
                        n * ni.bin_bps / 1e6);
    }
    if (!out_terms.empty() && std::isfinite(ni.bout_bps)) {
      lp.add_constraint(std::move(out_terms), lp::Rel::kLe,
                        n * ni.bout_bps / 1e6);
    }
  }

  const lp::Solution sol = lp.solve();
  if (!sol.ok()) return out;

  for (std::size_t j = 0; j < candidates.size(); ++j) {
    const double r = sol.x[static_cast<std::size_t>(tvar[j])];
    if (r > 1e-6) {
      candidates[j].rate_mbps = r;
      out.total_rate_mbps += r;
      out.trees.push_back(std::move(candidates[j]));
    }
  }
  return out;
}

std::vector<std::uint16_t> tree_schedule(
    const std::vector<MulticastTree>& trees, std::size_t length) {
  std::vector<std::uint16_t> schedule;
  if (trees.empty()) return {0};
  schedule.reserve(length);
  double total = 0.0;
  for (const MulticastTree& t : trees) total += t.rate_mbps;
  // Largest-remainder weighted round robin: at each slot pick the tree
  // with the highest accumulated deficit.
  std::vector<double> credit(trees.size(), 0.0);
  for (std::size_t s = 0; s < length; ++s) {
    std::size_t best = 0;
    for (std::size_t j = 0; j < trees.size(); ++j) {
      credit[j] += trees[j].rate_mbps / total;
      if (credit[j] > credit[best]) best = j;
    }
    credit[best] -= 1.0;
    schedule.push_back(static_cast<std::uint16_t>(best));
  }
  return schedule;
}

}  // namespace ncfn::app
