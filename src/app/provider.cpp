#include "app/provider.hpp"

#include <algorithm>
#include <cassert>

namespace ncfn::app {

namespace {
/// splitmix64: tiny, fast, deterministic byte stream.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

BufferProvider::BufferProvider(std::vector<std::uint8_t> data,
                               const coding::CodingParams& params)
    : data_(std::move(data)), params_(params) {
  assert(!data_.empty());
}

coding::GenerationId BufferProvider::generation_count() const {
  const std::size_t gb = params_.generation_bytes();
  return static_cast<coding::GenerationId>((data_.size() + gb - 1) / gb);
}

coding::Generation BufferProvider::generation(coding::GenerationId id) const {
  const std::size_t gb = params_.generation_bytes();
  const std::size_t off = static_cast<std::size_t>(id) * gb;
  assert(off < data_.size());
  const std::size_t n = std::min(gb, data_.size() - off);
  return coding::Generation(
      id, std::span<const std::uint8_t>(data_).subspan(off, n), params_);
}

coding::GenerationId SyntheticProvider::generation_count() const {
  const std::size_t gb = params_.generation_bytes();
  return static_cast<coding::GenerationId>((total_bytes_ + gb - 1) / gb);
}

std::vector<std::uint8_t> SyntheticProvider::generation_bytes(
    coding::GenerationId id) const {
  const std::size_t gb = params_.generation_bytes();
  const std::size_t off = static_cast<std::size_t>(id) * gb;
  assert(off < total_bytes_);
  const std::size_t n = std::min(gb, total_bytes_ - off);
  std::vector<std::uint8_t> out(n);
  std::uint64_t state = seed_ ^ (0xA5A5A5A5ull + id * 0x2545F4914F6CDD1Dull);
  std::size_t i = 0;
  while (i < n) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

coding::Generation SyntheticProvider::generation(
    coding::GenerationId id) const {
  const auto bytes = generation_bytes(id);
  return coding::Generation(id, bytes, params_);
}

}  // namespace ncfn::app
