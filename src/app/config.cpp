#include "app/config.hpp"

#include <fstream>
#include <sstream>

#include "coding/strparse.hpp"

namespace ncfn::app {

namespace {

bool parse_double(const std::string& s, double& out) {
  const auto v = coding::parse_num<double>(s);
  if (!v) return false;
  out = *v;
  return true;
}

/// Splits "key=value" options; returns false on a malformed token.
bool parse_option(const std::string& tok, std::string& key, double& value) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= tok.size()) {
    return false;
  }
  key = tok.substr(0, eq);
  return parse_double(tok.substr(eq + 1), value);
}

struct LineParser {
  Scenario& scenario;
  ParseError* error;
  int line_no = 0;

  bool fail(const std::string& msg) {
    if (error != nullptr) *error = ParseError{line_no, msg};
    return false;
  }

  std::optional<graph::NodeIdx> lookup(const std::string& name) {
    auto it = scenario.nodes.find(name);
    if (it == scenario.nodes.end()) return std::nullopt;
    return it->second;
  }

  bool handle_node(std::istringstream& in) {
    std::string name, kind;
    if (!(in >> name >> kind)) return fail("node needs: node <name> dc|host");
    if (scenario.nodes.count(name) > 0) {
      return fail("duplicate node name '" + name + "'");
    }
    graph::NodeInfo ni;
    ni.name = name;
    if (kind == "dc") {
      ni.kind = graph::NodeKind::kDataCenter;
    } else if (kind == "host") {
      ni.kind = graph::NodeKind::kHost;
    } else {
      return fail("node kind must be 'dc' or 'host', got '" + kind + "'");
    }
    std::string tok;
    while (in >> tok) {
      std::string key;
      double v = 0;
      if (!parse_option(tok, key, v)) return fail("bad option '" + tok + "'");
      if (key == "bin") {
        ni.bin_bps = v * 1e6;
      } else if (key == "bout") {
        ni.bout_bps = v * 1e6;
      } else if (key == "cap") {
        ni.vnf_capacity_bps = v * 1e6;
      } else {
        return fail("unknown node option '" + key + "'");
      }
    }
    scenario.nodes[name] = scenario.topo.add_node(std::move(ni));
    return true;
  }

  bool handle_edge(std::istringstream& in, bool duplex) {
    std::string from, to;
    double delay_ms = 0;
    if (!(in >> from >> to >> delay_ms)) {
      return fail("edge needs: edge <from> <to> <delay_ms> [capacity_Mbps]");
    }
    const auto f = lookup(from);
    const auto t = lookup(to);
    if (!f) return fail("unknown node '" + from + "'");
    if (!t) return fail("unknown node '" + to + "'");
    double cap_mbps = -1;
    std::string rest;
    if (in >> rest) {
      if (!parse_double(rest, cap_mbps) || cap_mbps <= 0) {
        return fail("bad capacity '" + rest + "'");
      }
    }
    const double cap_bps = cap_mbps > 0 ? cap_mbps * 1e6 : graph::kInf;
    scenario.topo.add_edge(*f, *t, delay_ms / 1e3, cap_bps);
    if (duplex) scenario.topo.add_edge(*t, *f, delay_ms / 1e3, cap_bps);
    return true;
  }

  bool handle_session(std::istringstream& in) {
    ctrl::SessionSpec spec;
    std::string id_tok, src, arrow;
    if (!(in >> id_tok >> src >> arrow) || arrow != "->") {
      return fail("session needs: session <id> <source> -> <receivers...>");
    }
    const auto id = coding::parse_num<coding::SessionId>(id_tok);
    if (!id) return fail("bad session id '" + id_tok + "'");
    spec.id = *id;
    const auto s = lookup(src);
    if (!s) return fail("unknown node '" + src + "'");
    spec.source = *s;
    std::string tok;
    while (in >> tok) {
      if (tok.find('=') != std::string::npos) {
        std::string key;
        double v = 0;
        if (!parse_option(tok, key, v)) return fail("bad option '" + tok + "'");
        if (key == "lmax") {
          spec.lmax_s = v / 1e3;
        } else if (key == "rate") {
          spec.fixed_rate_mbps = v;
        } else if (key == "maxrate") {
          spec.max_rate_mbps = v;
        } else {
          return fail("unknown session option '" + key + "'");
        }
      } else {
        const auto r = lookup(tok);
        if (!r) return fail("unknown node '" + tok + "'");
        spec.receivers.push_back(*r);
      }
    }
    if (spec.receivers.empty()) return fail("session has no receivers");
    for (const auto& other : scenario.sessions) {
      if (other.id == spec.id) return fail("duplicate session id");
    }
    scenario.sessions.push_back(std::move(spec));
    return true;
  }

  bool handle_fail(std::istringstream& in) {
    std::string from, to;
    if (!(in >> from >> to)) {
      return fail("fail needs: fail <from> <to> at=<s> [for=<s>]");
    }
    const auto f = lookup(from);
    const auto t = lookup(to);
    if (!f) return fail("unknown node '" + from + "'");
    if (!t) return fail("unknown node '" + to + "'");
    if (scenario.topo.find_edge(*f, *t) < 0) {
      return fail("no edge " + from + " -> " + to);
    }
    LinkFailure lf;
    lf.from = *f;
    lf.to = *t;
    bool have_at = false;
    std::string tok;
    while (in >> tok) {
      std::string key;
      double v = 0;
      if (!parse_option(tok, key, v)) return fail("bad option '" + tok + "'");
      if (key == "at") {
        lf.at_s = v;
        have_at = true;
      } else if (key == "for") {
        lf.for_s = v;
      } else {
        return fail("unknown fail option '" + key + "'");
      }
    }
    if (!have_at || lf.at_s < 0 || lf.for_s < 0) {
      return fail("fail needs at=<s> >= 0 (and for=<s> >= 0)");
    }
    scenario.failures.push_back(lf);
    return true;
  }

  bool handle_crash(std::istringstream& in) {
    std::string node;
    if (!(in >> node)) return fail("crash needs: crash <node> at=<s> [for=<s>]");
    const auto n = lookup(node);
    if (!n) return fail("unknown node '" + node + "'");
    if (scenario.topo.node(*n).kind != graph::NodeKind::kDataCenter) {
      return fail("crash target '" + node + "' is not a data center");
    }
    VnfCrash c;
    c.node = *n;
    bool have_at = false;
    std::string tok;
    while (in >> tok) {
      std::string key;
      double v = 0;
      if (!parse_option(tok, key, v)) return fail("bad option '" + tok + "'");
      if (key == "at") {
        c.at_s = v;
        have_at = true;
      } else if (key == "for") {
        c.for_s = v;
      } else {
        return fail("unknown crash option '" + key + "'");
      }
    }
    if (!have_at || c.at_s < 0 || c.for_s < 0) {
      return fail("crash needs at=<s> >= 0 (and for=<s> >= 0)");
    }
    scenario.crashes.push_back(c);
    return true;
  }

  bool handle(const std::string& line) {
    std::istringstream in(line);
    std::string keyword;
    if (!(in >> keyword)) return true;  // blank
    if (keyword[0] == '#') return true;
    if (keyword == "node") return handle_node(in);
    if (keyword == "edge") return handle_edge(in, /*duplex=*/false);
    if (keyword == "duplex") return handle_edge(in, /*duplex=*/true);
    if (keyword == "session") return handle_session(in);
    if (keyword == "fail") return handle_fail(in);
    if (keyword == "crash") return handle_crash(in);
    if (keyword == "alpha") {
      std::string v;
      if (!(in >> v) || !parse_double(v, scenario.alpha)) {
        return fail("alpha needs a number");
      }
      return true;
    }
    if (keyword == "batch") {
      std::string v;
      double n = 0;
      if (!(in >> v) || !parse_double(v, n) || n < 1 ||
          n != static_cast<double>(static_cast<std::size_t>(n))) {
        return fail("batch needs a positive integer");
      }
      if (n > static_cast<double>(coding::kBatchCapacity)) {
        return fail("batch exceeds the PacketBatch capacity of " +
                    std::to_string(coding::kBatchCapacity));
      }
      scenario.max_batch = static_cast<std::size_t>(n);
      return true;
    }
    if (keyword == "workers") {
      std::string v;
      double n = 0;
      if (!(in >> v) || !parse_double(v, n) || n < 1 ||
          n != static_cast<double>(static_cast<std::size_t>(n))) {
        return fail("workers needs a positive integer");
      }
      scenario.workers = static_cast<std::size_t>(n);
      return true;
    }
    return fail("unknown keyword '" + keyword + "'");
  }
};

}  // namespace

std::string Scenario::node_name(graph::NodeIdx idx) const {
  return topo.node(idx).name;
}

std::optional<Scenario> parse_scenario(const std::string& text,
                                       ParseError* error) {
  Scenario scenario;
  LineParser parser{scenario, error};
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++parser.line_no;
    if (!parser.handle(line)) return std::nullopt;
  }
  return scenario;
}

std::optional<Scenario> load_scenario(const std::string& path,
                                      ParseError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = ParseError{0, "cannot open '" + path + "'"};
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario(buf.str(), error);
}

}  // namespace ncfn::app
