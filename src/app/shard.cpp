#include "app/shard.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "netsim/loss.hpp"
#include "netsim/seedstream.hpp"
#include "obs/merge.hpp"

namespace ncfn::app {

namespace {

std::size_t uf_find(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

void uf_union(std::vector<std::size_t>& parent, std::size_t a,
              std::size_t b) {
  a = uf_find(parent, a);
  b = uf_find(parent, b);
  // Lower index wins the root, so group identity is stable under
  // session declaration order alone.
  if (a == b) return;
  if (a < b) {
    parent[b] = a;
  } else {
    parent[a] = b;
  }
}

/// Every topology node session m's traffic can touch: its endpoints plus
/// both endpoints of every edge its plan routes flow over.
std::vector<graph::NodeIdx> session_nodes(const graph::Topology& topo,
                                          const ctrl::DeploymentPlan& plan,
                                          const ctrl::SessionSpec& spec,
                                          std::size_t m) {
  std::vector<graph::NodeIdx> nodes;
  nodes.push_back(spec.source);
  nodes.insert(nodes.end(), spec.receivers.begin(), spec.receivers.end());
  if (m < plan.edge_rate_mbps.size()) {
    for (const auto& [e, rate] : plan.edge_rate_mbps[m]) {
      const graph::EdgeInfo& ei = topo.edge(e);
      nodes.push_back(ei.from);
      nodes.push_back(ei.to);
    }
  }
  return nodes;
}

}  // namespace

ShardPlan partition_sessions(const graph::Topology& topo,
                             const ctrl::DeploymentPlan& plan,
                             const std::vector<ctrl::SessionSpec>& sessions) {
  const std::size_t n = sessions.size();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);

  // First session seen at each node claims it; later sessions touching
  // the node union with the claimant. Transitive by union-find.
  std::map<graph::NodeIdx, std::size_t> claimant;
  for (std::size_t m = 0; m < n; ++m) {
    for (graph::NodeIdx v : session_nodes(topo, plan, sessions[m], m)) {
      auto [it, inserted] = claimant.emplace(v, m);
      if (!inserted) uf_union(parent, it->second, m);
    }
  }

  ShardPlan out;
  out.session_shard.assign(n, 0);
  std::map<std::size_t, std::size_t> root_to_shard;  // ordered by root = min m
  for (std::size_t m = 0; m < n; ++m) {
    const std::size_t root = uf_find(parent, m);
    auto [it, inserted] = root_to_shard.emplace(root, out.shard_sessions.size());
    if (inserted) out.shard_sessions.emplace_back();
    out.session_shard[m] = it->second;
    out.shard_sessions[it->second].push_back(m);
  }
  return out;
}

void run_shard_windows(netsim::WorkerPool& pool,
                       std::span<const std::unique_ptr<SimShard>> shards,
                       double t_end, double window_s) {
  if (window_s <= 0) window_s = t_end;
  double window_end = 0;
  while (window_end < t_end) {
    window_end = std::min(window_end + window_s, t_end);
    // Named captures only: ncfn-lint's ref-capture-thread rule bans a
    // default [&] handed to a pool submit, so every object a lane can
    // reach is spelled out at the capture.
    pool.run(shards.size(), [&shards, window_end](std::size_t k) {
      SimShard& shard = *shards[k];
      // The barrier handed this lane shard k for this window.
      shard.owner.assert_held();
      shard.events += shard.sim->net().sim().run_until(window_end);
    });
    // pool.run IS the barrier: no shard enters the next window before
    // every shard has reached the edge of this one.
  }
}

std::string merged_trace(std::span<const std::unique_ptr<SimShard>> shards) {
  std::vector<const obs::EventTrace*> traces;
  traces.reserve(shards.size());
  for (const auto& s : shards) {
    // Post-barrier: the single calling thread owns every shard, and the
    // merge inputs are quiescent (obs/merge.hpp contract).
    s->owner.assert_held();
    traces.push_back(&s->sim->trace());
  }
  return obs::merge_traces(traces);
}

std::string merged_metrics_json(
    std::span<const std::unique_ptr<SimShard>> shards) {
  std::vector<const obs::MetricsRegistry*> regs;
  regs.reserve(shards.size());
  for (const auto& s : shards) {
    s->owner.assert_held();  // post-barrier single-thread ownership
    regs.push_back(&s->sim->metrics());
  }
  return obs::merge_metrics(regs).to_json();
}

ShardedScenarioRun::ShardedScenarioRun(const Scenario& scenario,
                                       const ctrl::DeploymentPlan& plan,
                                       const ShardedRunOptions& opts)
    : scenario_(&scenario),
      plan_(&plan),
      opts_(opts),
      parts_(partition_sessions(scenario.topo, plan, scenario.sessions)),
      pool_(opts.workers) {}

void ShardedScenarioRun::build_shard(std::size_t k) {
  auto shard = std::make_unique<SimShard>();
  // The building lane owns the freshly allocated shard outright until
  // the move into shards_[k] publishes it (the run() barrier is the
  // release point).
  shard->owner.assert_held();
  SimNetConfig scfg;
  // The shard's network RNG (jitter, probe noise, loss draws) is a
  // stream split from the root seed by shard index — never by worker.
  scfg.seed = netsim::rng_stream_seed(opts_.seed, k);
  shard->sim = std::make_unique<SimNet>(scenario_->topo, scfg);
  if (opts_.trace) shard->sim->trace().enable();
  shard->sim->metrics().counter("mt.shards").inc();

  if (opts_.loss > 0) {
    for (int e = 0; e < scenario_->topo.edge_count(); ++e) {
      const auto& ei = scenario_->topo.edge(e);
      if (scenario_->topo.node(ei.from).kind == graph::NodeKind::kDataCenter &&
          scenario_->topo.node(ei.to).kind == graph::NodeKind::kDataCenter) {
        shard->sim->link(e)->set_loss_model(
            std::make_unique<netsim::UniformLoss>(opts_.loss));
      }
    }
  }

  coding::CodingParams params;
  for (const std::size_t m : parts_.shard_sessions[k]) {
    // Per-SESSION seeds match the single-engine path (tools/ncfn-run):
    // session content and wiring depend on the global session index, so
    // regrouping sessions into shards never changes what a session sends.
    const double lambda = plan_->lambda_mbps[m];
    shard->providers.push_back(std::make_unique<SyntheticProvider>(
        opts_.seed + m,
        static_cast<std::size_t>(std::max(lambda, 1.0) * 1e6 / 8 *
                                 (opts_.duration_s + 5)),
        params));
    SessionWiring wiring;
    wiring.vnf.params = params;
    wiring.vnf.max_batch = scenario_->max_batch;
    wiring.redundancy = opts_.redundancy;
    wiring.seed = opts_.seed + static_cast<std::uint32_t>(m) * 101;
    shard->sessions.push_back(std::make_unique<NcMulticastSession>(
        *shard->sim, *plan_, m, scenario_->sessions[m],
        *shard->providers.back(), wiring));
    for (std::size_t r = 0; r < shard->sessions.back()->receiver_count();
         ++r) {
      shard->sessions.back()->receiver(r).set_verify(
          shard->providers.back().get());
    }
    shard->session_index.push_back(m);
  }
  for (auto& s : shard->sessions) s->start();
  shards_[k] = std::move(shard);
}

void ShardedScenarioRun::run() {
  shards_.resize(parts_.shard_count());
  // Shard construction is per-shard work too (providers, pools, VNF
  // wiring), so it fans out across the same lanes as the windows do.
  pool_.run(parts_.shard_count(), [this](std::size_t k) { build_shard(k); });
  run_shard_windows(pool_, shards_, opts_.duration_s, opts_.window_s);
}

std::uint64_t ShardedScenarioRun::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    s->owner.assert_held();  // post-barrier single-thread ownership
    total += s->events;
  }
  return total;
}

std::vector<ReceiverReport> ShardedScenarioRun::reports() const {
  std::vector<ReceiverReport> rows;
  for (std::size_t m = 0; m < scenario_->sessions.size(); ++m) {
    const ctrl::SessionSpec& spec = scenario_->sessions[m];
    const SimShard& shard = *shards_[parts_.session_shard[m]];
    shard.owner.assert_held();  // post-barrier single-thread ownership
    std::size_t local = 0;
    while (shard.session_index[local] != m) ++local;
    const NcMulticastSession& session = *shard.sessions[local];
    for (std::size_t r = 0; r < session.receiver_count(); ++r) {
      // reports() is const but receiver() is not; go through the shard's
      // non-const session list instead of const_cast gymnastics.
      auto& mutable_session = *shard.sessions[local];
      const auto& st = mutable_session.receiver(r).stats();
      ReceiverReport row;
      row.session = spec.id;
      row.receiver = scenario_->node_name(spec.receivers[r]);
      row.planned_mbps = plan_->lambda_mbps[m];
      row.goodput_mbps = mutable_session.receiver(r).goodput_mbps();
      row.repair_requests = st.repair_requests_sent;
      row.verify_failures = st.verify_failures;
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string ShardedScenarioRun::trace_jsonl() const {
  return merged_trace(shards_);
}

std::string ShardedScenarioRun::metrics_json() const {
  return merged_metrics_json(shards_);
}

}  // namespace ncfn::app
