// Scenario files: a line-oriented text format describing an overlay and
// its multicast sessions, consumed by the CLI tools (tools/ncfn-plan,
// tools/ncfn-run) and usable by any embedder.
//
//   # comments and blank lines are ignored
//   alpha 20                                # VNF cost (Mbps-equivalent)
//   batch 32                                # VNF lane batch size (1..32)
//   workers 4                               # run sharded across 4 workers
//   node V1 host [bin=400] [bout=500]       # caps in Mbps, optional
//   node O1 dc bin=200 bout=200 cap=200     # cap = C(v), coding rate
//   edge V1 O1 30 35                        # delay_ms capacity_Mbps
//   duplex O1 C1 12 100                     # both directions
//   edge O1 O2 15                           # capacity omitted = unlimited
//   session 1 V1 -> O2 C2 lmax=150 maxrate=200
//   session 2 V1 -> C2 rate=25              # fixed-rate (live stream)
//   fail O1 O2 at=2 for=1.5                 # link outage at t=2s for 1.5s
//   fail O1 O2 at=5                         # ... at t=5s, stays down
//   crash O1 at=3 for=0.5                   # coding-process crash at t=3s,
//                                           # cold restart 0.5s later
//
// Node references resolve by name; sessions may appear before or after
// the nodes they reference are declared only if declared-before-use —
// the parser is single-pass and reports the offending line on error.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "coding/batch.hpp"
#include "ctrl/problem.hpp"
#include "graph/topology.hpp"

namespace ncfn::app {

/// A scheduled link outage (`fail <from> <to> at=<s> [for=<s>]`).
struct LinkFailure {
  graph::NodeIdx from = 0;
  graph::NodeIdx to = 0;
  double at_s = 0;
  double for_s = 0;  // 0 = the link stays down
};

/// A scheduled coding-process crash (`crash <node> at=<s> [for=<s>]`).
struct VnfCrash {
  graph::NodeIdx node = 0;
  double at_s = 0;
  double for_s = 0;  // 0 = the default cold-restart latency
};

struct Scenario {
  graph::Topology topo;
  std::map<std::string, graph::NodeIdx> nodes;  // name -> index
  std::vector<ctrl::SessionSpec> sessions;
  std::vector<LinkFailure> failures;
  std::vector<VnfCrash> crashes;
  double alpha = 20.0;
  /// VNF lane batch size (`batch <n>`, 1..coding::kBatchCapacity):
  /// packets drained per lane service event. 1 = strict per-packet
  /// processing (the pre-batching baseline).
  std::size_t max_batch = coding::kBatchCapacity;
  /// Worker threads for the sharded engine (`workers <n>`). 0 (the
  /// default) keeps the legacy single-engine path; any value >= 1 runs
  /// the scenario through app::ShardedScenarioRun. Never affects
  /// results — only which threads execute which shard.
  std::size_t workers = 0;

  [[nodiscard]] std::string node_name(graph::NodeIdx idx) const;
};

struct ParseError {
  int line = 0;          // 1-based line number
  std::string message;
};

/// Parse a scenario from text. Returns the scenario or a ParseError
/// naming the first offending line.
[[nodiscard]] std::optional<Scenario> parse_scenario(const std::string& text,
                                                     ParseError* error = nullptr);

/// Convenience: read and parse a scenario file from disk. Returns
/// std::nullopt (with `error`) if the file is unreadable or malformed.
[[nodiscard]] std::optional<Scenario> load_scenario(const std::string& path,
                                                    ParseError* error = nullptr);

}  // namespace ncfn::app
