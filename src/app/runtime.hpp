// End-to-end session orchestration: builds a simulated network from a
// controller topology, instantiates coding functions per the deployment
// plan, and wires sources and receivers — the programmatic equivalent of
// the paper's prototype gluing the controller's decisions onto EC2/Linode
// VMs.
//
// Node indices in the controller topology map 1:1 onto simulator node ids
// (SimNet adds nodes in topology order), so plans translate directly into
// forwarding configuration.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "app/baseline.hpp"
#include "app/provider.hpp"
#include "app/receiver.hpp"
#include "app/source.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/problem.hpp"
#include "graph/topology.hpp"
#include "netsim/network.hpp"
#include "obs/obs.hpp"
#include "vnf/coding_vnf.hpp"

namespace ncfn::app {

struct SimNetConfig {
  /// Capacity used for topology edges with infinite capacity_bps.
  double default_capacity_bps = 10e9;
  std::size_t queue_packets = 1024;
  std::uint32_t seed = 1;
};

/// The simulated "cloud": one simulator node per topology node, one link
/// per topology edge, and at most one coding-function object per node
/// (shared by all sessions relayed there).
class SimNet {
 public:
  explicit SimNet(const graph::Topology& topo,
                  const SimNetConfig& cfg = {});

  /// Teardown audit (obs::audit_enabled()): every VNF packet-pool row
  /// must come back once the VNFs are gone, and every link's packet
  /// accounting must conserve (offered = delivered + dropped +
  /// in-flight). Violations abort via obs::audit_fail.
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  [[nodiscard]] netsim::Network& net() { return net_; }
  /// Observability hub shared by every layer of this simulated cloud.
  /// Metrics are always collected; the event trace is off until
  /// trace().enable() — both stamped with the simulator clock.
  [[nodiscard]] obs::Observability& obs() { return *obs_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return obs_->metrics; }
  [[nodiscard]] obs::EventTrace& trace() { return obs_->trace; }
  [[nodiscard]] const graph::Topology& topo() const { return *topo_; }
  [[nodiscard]] netsim::NodeId node(graph::NodeIdx i) const {
    return static_cast<netsim::NodeId>(i);
  }
  [[nodiscard]] netsim::Link* link(graph::EdgeIdx e);

  /// The shared coding function at a node, created on first use.
  vnf::CodingVnf& vnf_at(graph::NodeIdx node, const vnf::VnfConfig& cfg);
  [[nodiscard]] vnf::CodingVnf* find_vnf(graph::NodeIdx node);

 private:
  // Declared first so it outlives the network, links, and VNFs that cache
  // raw handles into it.
  std::unique_ptr<obs::Observability> obs_;
  const graph::Topology* topo_;
  netsim::Network net_;
  std::map<graph::NodeIdx, std::unique_ptr<vnf::CodingVnf>> vnfs_;
};

/// Per-session wiring options shared by both transport modes.
struct SessionWiring {
  int redundancy = 0;  // NC0/NC1/NC2
  bool enable_repair = true;
  double repair_timeout_s = 0.25;
  double sample_interval_s = 1.0;
  /// Snap the plan's flows to whole packets per generation before wiring
  /// (ctrl::quantize_plan) — fractional per-generation quanta stall the
  /// decoder on a fraction of generations. Costs at most a few quanta of
  /// planned rate.
  bool quantize = true;
  vnf::VnfConfig vnf;  // processing model (params set from the session)
  std::uint32_t seed = 99;
};

/// A network-coded multicast session instantiated from a deployment plan.
class NcMulticastSession {
 public:
  NcMulticastSession(SimNet& sim, const ctrl::DeploymentPlan& plan,
                     std::size_t plan_index, const ctrl::SessionSpec& spec,
                     const GenerationProvider& provider,
                     const SessionWiring& wiring);

  void start();

  /// Re-wire the *live* session onto a new deployment plan (the
  /// controller's re-solve after a failure): the source is re-steered onto
  /// the new out-edges, relays gain/lose forwarding entries (a relay
  /// dropped from the plan stops forwarding this session), and every
  /// receiver's recovery clock starts (mark_disruption). Generation
  /// progress is preserved — the transfer continues, it does not restart.
  void rewire(const ctrl::DeploymentPlan& raw_plan, std::size_t plan_index);

  [[nodiscard]] McSource& source() { return *source_; }
  [[nodiscard]] McReceiver& receiver(std::size_t k) { return *receivers_.at(k); }
  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }
  /// Session goodput = min over receivers (the paper's multicast rate).
  [[nodiscard]] double session_goodput_mbps() const;
  [[nodiscard]] bool all_complete() const;

 private:
  [[nodiscard]] ctrl::DeploymentPlan prepared(
      const ctrl::DeploymentPlan& raw_plan) const;
  [[nodiscard]] std::vector<std::pair<ctrl::NextHop, double>> source_hops(
      const ctrl::DeploymentPlan& plan, std::size_t m) const;
  void wire_relays(const ctrl::DeploymentPlan& plan, std::size_t m);

  SimNet* sim_ = nullptr;
  ctrl::SessionSpec spec_;
  SessionWiring wiring_;
  std::set<graph::NodeIdx> relays_;  // nodes currently forwarding/recoding
  std::unique_ptr<McSource> source_;
  std::vector<std::unique_ptr<McReceiver>> receivers_;
};

/// A routing-only (Non-NC) session over packed multicast trees.
class TreeMulticastSession {
 public:
  TreeMulticastSession(SimNet& sim, const TreePacking& packing,
                       const ctrl::SessionSpec& spec,
                       const GenerationProvider& provider,
                       const SessionWiring& wiring);

  void start();

  [[nodiscard]] McSource& source() { return *source_; }
  [[nodiscard]] McReceiver& receiver(std::size_t k) { return *receivers_.at(k); }
  [[nodiscard]] std::size_t receiver_count() const { return receivers_.size(); }
  [[nodiscard]] double session_goodput_mbps() const;
  [[nodiscard]] bool all_complete() const;

 private:
  std::unique_ptr<McSource> source_;
  std::vector<std::unique_ptr<McReceiver>> receivers_;
};

/// Feedback port for a session's source.
[[nodiscard]] inline netsim::Port session_feedback_port(coding::SessionId id) {
  return static_cast<netsim::Port>(40000 + id % 20000);
}

}  // namespace ncfn::app
