// Routing-only multicast baseline (the paper's "Non-NC" comparator).
//
// Without coding, the achievable multicast rate is given by fractional
// Steiner tree packing: choose distribution trees (here, DAG unions of one
// feasible path per receiver — forwarding over a DAG is deduplicated by
// innovation-only forwarding at relays) and assign each a rate so that the
// total rate through every link/node respects capacity. The classic
// butterfly needs three trees at rate 17.5 Mbps each to reach its
// routing-only optimum of 52.5 Mbps, versus 70 Mbps with coding.
//
// Tree enumeration takes the cartesian product of per-receiver feasible
// path sets (capped), dedupes by edge set, and packs rates with an LP.
#pragma once

#include <vector>

#include "ctrl/problem.hpp"
#include "graph/paths.hpp"
#include "graph/topology.hpp"

namespace ncfn::app {

struct MulticastTree {
  std::vector<graph::EdgeIdx> edges;  // DAG union of per-receiver paths
  double rate_mbps = 0.0;
  /// Next hops of each node within this tree (indexed by topo node).
  [[nodiscard]] std::vector<graph::NodeIdx> next_hops(
      const graph::Topology& topo, graph::NodeIdx node) const;
};

struct TreePackingLimits {
  std::size_t max_paths_per_receiver = 6;
  std::size_t max_trees = 256;
};

struct TreePacking {
  std::vector<MulticastTree> trees;  // only trees with positive rate
  double total_rate_mbps = 0.0;
};

/// Pack trees for one session: maximize the total rate subject to per-edge
/// capacities and (optionally) per-DC in/out caps scaled by `vnfs_per_dc`
/// (pass empty to use edge capacities only).
[[nodiscard]] TreePacking pack_trees(
    const graph::Topology& topo, graph::NodeIdx source,
    const std::vector<graph::NodeIdx>& receivers, double lmax_s,
    const TreePackingLimits& limits = {},
    const std::map<graph::NodeIdx, int>& vnfs_per_dc = {});

/// Weighted round-robin schedule mapping generation id -> tree index so
/// that tree i serves a share of generations proportional to its rate.
/// Deterministic: source and every relay compute the same mapping.
[[nodiscard]] std::vector<std::uint16_t> tree_schedule(
    const std::vector<MulticastTree>& trees, std::size_t length = 512);

}  // namespace ncfn::app
