// Full control-plane deployment: the central controller runs at its own
// node in the simulated network (the paper ran it on a server in Hong
// Kong) and every data center runs a VnfDaemon. Controller decisions are
// shipped as NC_* signal datagrams over controller<->DC control links and
// parsed by the daemons from the text wire format — the same end-to-end
// path as the paper's prototype, including propagation delay, so signal
// latency is part of the simulation.
//
// The daemons' periodic ping probes feed measured link delays back into
// the controller (Alg. 2's input); per-VM bandwidth reports (Alg. 1's
// input, iperf3 in the paper) come from the scenario driver, since VM NIC
// capacity is a node property the overlay links do not expose directly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "app/runtime.hpp"
#include "ctrl/controller.hpp"
#include "vnf/daemon.hpp"

namespace ncfn::app {

class Orchestrator {
 public:
  struct Config {
    ctrl::Controller::Config controller;
    vnf::DaemonConfig daemon;
    /// One-way delay of the controller <-> DC control links.
    double control_link_delay_s = 0.040;
    double control_link_bps = 100e6;
    /// Period of the daemons' ping probes (0 = no probes).
    double probe_interval_s = 600.0;
    /// Period of the controller's housekeeping tick (0 = manual).
    double tick_interval_s = 600.0;
    /// Period of the daemons' liveness beacons (0 = no heartbeats). The
    /// controller listens on heartbeat_port; pair with a nonzero
    /// controller.heartbeat_timeout_s so stale DCs are declared down at
    /// tick() time.
    double heartbeat_interval_s = 0.0;
    netsim::Port heartbeat_port = 101;
  };

  /// Builds daemons on every data center of `sim` and a controller node
  /// connected to all of them. The topology must be the one `sim` was
  /// built from.
  Orchestrator(SimNet& sim, const Config& cfg);
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // ---- Session lifecycle (timestamps taken from the simulated clock) ----
  bool add_session(const ctrl::SessionSpec& spec);
  void remove_session(coding::SessionId id);
  bool add_receiver(coding::SessionId id, graph::NodeIdx receiver);
  void remove_receiver(coding::SessionId id, graph::NodeIdx receiver);
  /// Per-VM bandwidth measurement for a DC (the iperf3 report).
  void report_vm_bandwidth(graph::NodeIdx dc, double bin_bps,
                           double bout_bps);

  // ---- Failure injection / notification ----
  /// Explicit topology-change event: an external monitor saw edge e fail
  /// or recover. Triggers the controller's failure re-solve and ships the
  /// resulting signals. (The alternative detection path — heartbeat
  /// timeout — needs no call here.)
  void notify_link_state(graph::EdgeIdx e, bool up);
  /// Machine-level failure/recovery of a whole data center.
  void notify_node_state(graph::NodeIdx dc, bool up);
  /// Kill the coding process at a DC mid-run; it restarts cold
  /// `restart_after_s` later (default: the coding-function start latency).
  void crash_vnf(graph::NodeIdx dc,
                 std::optional<double> restart_after_s = std::nullopt);

  [[nodiscard]] ctrl::Controller& controller() { return ctl_; }
  [[nodiscard]] vnf::VnfDaemon& daemon(graph::NodeIdx dc) {
    return *daemons_.at(dc);
  }
  [[nodiscard]] netsim::NodeId controller_node() const { return ctl_node_; }
  /// Signals shipped over the network so far.
  [[nodiscard]] std::size_t signals_dispatched() const { return dispatched_; }

  /// Ship any controller signals logged since the last flush to their
  /// target daemons (called automatically by the session API).
  void flush_signals();

 private:
  void schedule_tick();
  void on_probe_report(graph::NodeIdx from_dc, netsim::NodeId peer,
                       std::optional<netsim::Time> rtt);
  void on_heartbeat(const netsim::Datagram& d);

  SimNet& sim_;
  Config cfg_;
  ctrl::Controller ctl_;
  netsim::NodeId ctl_node_;
  std::map<graph::NodeIdx, std::unique_ptr<vnf::VnfDaemon>> daemons_;
  std::size_t flushed_ = 0;    // signal-log entries already shipped
  std::size_t dispatched_ = 0;
  bool hb_bound_ = false;
};

}  // namespace ncfn::app
