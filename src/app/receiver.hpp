// Multicast receiver endpoint.
//
// Wraps a DECODE-role coding function (so receiver-side decode cost is
// charged through the same processing model as relays), accounts goodput,
// optionally verifies every decoded byte against the expected synthetic
// content, sends the first-generation ACK used by the Table II delay
// measurement, and runs the repair loop: a generation that has been seen
// but not completed within `repair_timeout_s` triggers a retransmission
// request to the source (with the missing-block mask for the Non-NC
// baseline). Without redundancy (NC0), losses make throughput collapse to
// this repair loop — exactly the effect Figs. 8 and 9 show.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "app/messages.hpp"
#include "app/provider.hpp"
#include "netsim/network.hpp"
#include "vnf/coding_vnf.hpp"

namespace ncfn::app {

struct ReceiverConfig {
  coding::SessionId session = 1;
  coding::CodingParams params;
  netsim::Port data_port = 20001;
  /// Source endpoint for repair requests / ACKs.
  std::uint32_t source_node = 0;
  netsim::Port source_feedback_port = 40001;
  bool enable_repair = true;
  double repair_timeout_s = 0.25;  // from first packet of a generation
  int max_repair_rounds = 64;
  /// Periodic throughput sampling interval (0 = no time series).
  double sample_interval_s = 0.0;
  vnf::VnfConfig vnf;  // processing model for the decode function
};

struct ReceiverStats {
  std::uint64_t generations_decoded = 0;
  std::uint64_t payload_bytes = 0;  // decoded, unpadded
  std::uint64_t repair_requests_sent = 0;
  std::uint64_t verify_failures = 0;
  netsim::Time first_generation_decoded_at = -1;
  netsim::Time completed_at = -1;  // all generations decoded
  /// Time from the last mark_disruption() to the next decoded generation.
  netsim::Time last_recovery_s = -1;
};

struct ThroughputSample {
  netsim::Time at_s;
  std::uint64_t cumulative_bytes;
};

class McReceiver {
 public:
  McReceiver(netsim::Network& net, netsim::NodeId node,
             const GenerationProvider& provider,
             const ReceiverConfig& cfg);

  McReceiver(const McReceiver&) = delete;
  McReceiver& operator=(const McReceiver&) = delete;

  void start();

  [[nodiscard]] netsim::NodeId node() const { return node_; }
  [[nodiscard]] const ReceiverStats& stats() const { return stats_; }
  [[nodiscard]] bool complete() const { return stats_.completed_at >= 0; }
  /// Average goodput since start (Mbps).
  [[nodiscard]] double goodput_mbps() const;
  [[nodiscard]] const std::vector<ThroughputSample>& samples() const {
    return samples_;
  }
  /// Goodput over the trailing window ending at the latest sample (Mbps).
  [[nodiscard]] double windowed_goodput_mbps(double window_s) const;

  /// Verify decoded generations against the synthetic provider's expected
  /// content (costs a regeneration per generation; used in tests).
  void set_verify(const SyntheticProvider* expected) { verify_ = expected; }

  /// Failure-injection bookkeeping: a disruption (link outage, VNF crash,
  /// re-route) may have hit this receiver's session now. The time until
  /// the next decoded generation is recorded into the app.recovery_time_s
  /// histogram and stats().last_recovery_s — the per-session recovery
  /// latency of the tentpole acceptance criteria.
  void mark_disruption();

  /// Ordered application delivery: generations are handed to the sink in
  /// generation order (later-decoded earlier generations are held back),
  /// each as its unpadded payload bytes — a file reassembles by
  /// concatenating the calls.
  using OrderedSink =
      std::function<void(coding::GenerationId, std::vector<std::uint8_t>)>;
  void set_ordered_sink(OrderedSink sink) { ordered_sink_ = std::move(sink); }
  /// Generations decoded but still waiting for an earlier one.
  [[nodiscard]] std::size_t held_back() const { return held_back_.size(); }

 private:
  void on_generation_decoded(coding::GenerationId gen,
                             const std::vector<std::vector<std::uint8_t>>& blocks);
  void on_packet(coding::GenerationId gen, std::size_t rank, bool complete);
  void arm_repair_timer(coding::GenerationId gen);
  void sample();

  netsim::Network& net_;
  netsim::NodeId node_;
  const GenerationProvider& provider_;
  ReceiverConfig cfg_;
  std::unique_ptr<vnf::CodingVnf> vnf_;
  const SyntheticProvider* verify_ = nullptr;

  std::set<coding::GenerationId> decoded_;
  struct GenProgress {
    bool timer_armed = false;
    int repair_rounds = 0;
  };
  std::map<coding::GenerationId, GenProgress> progress_;
  netsim::Time start_time_ = 0;
  ReceiverStats stats_;
  std::vector<ThroughputSample> samples_;
  OrderedSink ordered_sink_;
  coding::GenerationId next_ordered_ = 0;
  std::map<coding::GenerationId, std::vector<std::uint8_t>> held_back_;
  netsim::Time disruption_at_ = -1;
  // Cached registry handles (null without a hub on the network).
  obs::Counter* m_generations_decoded_ = nullptr;
  obs::Counter* m_payload_bytes_ = nullptr;
  obs::Counter* m_repair_requests_ = nullptr;
  obs::Counter* m_verify_failures_ = nullptr;
  obs::Histogram* m_recovery_s_ = nullptr;
};

}  // namespace ncfn::app
