// Embarrassingly-parallel scenario sweeps: fan a (seeds x losses x
// batches) matrix over one scenario across worker lanes, one full
// ShardedScenarioRun per cell, and emit one deterministic JSON document.
//
// Parallelism here is ACROSS runs, not within them: each cell runs with
// an inline single-worker engine, so a cell's result is a pure function
// of (scenario, plan, cell parameters). Cells land in a pre-sized slot
// array indexed by cell position, so the output JSON is in matrix order
// and byte-identical for any --jobs value — the same contract the
// multi-worker engine makes for worker counts.
#pragma once

#include <string>
#include <vector>

#include "app/config.hpp"
#include "ctrl/problem.hpp"

namespace ncfn::app {

/// The sweep matrix: every combination of seed x loss x batch runs once.
/// Cell order (and so output order) is seeds outermost, batches innermost.
struct SweepMatrix {
  std::vector<std::uint32_t> seeds = {7};
  std::vector<double> losses = {0.0};
  std::vector<std::size_t> batches = {0};  // 0 = keep the scenario's batch
  double duration_s = 5.0;
  int redundancy = 0;

  [[nodiscard]] std::size_t cell_count() const {
    return seeds.size() * losses.size() * batches.size();
  }
};

/// One cell's aggregate results (reduced over all sessions/receivers).
struct SweepCell {
  std::uint32_t seed = 0;
  double loss = 0;
  std::size_t batch = 0;
  double min_goodput_mbps = 0;   // the multicast-rate bottleneck
  double mean_goodput_mbps = 0;  // across all receivers
  std::uint64_t repair_requests = 0;
  std::uint64_t verify_failures = 0;
  std::uint64_t events = 0;  // simulator events executed
  std::size_t shards = 0;
};

/// Run every cell of the matrix, fanned across `jobs` worker lanes.
/// Results come back in matrix order regardless of `jobs`.
[[nodiscard]] std::vector<SweepCell> run_sweep(const Scenario& scenario,
                                               const ctrl::DeploymentPlan& plan,
                                               const SweepMatrix& matrix,
                                               std::size_t jobs);

/// Deterministic JSON document for a finished sweep. `scenario_name` is
/// echoed verbatim (pass the file path). The jobs count is deliberately
/// NOT recorded: the document must be byte-identical for any fan-out.
[[nodiscard]] std::string sweep_json(const std::string& scenario_name,
                                     const SweepMatrix& matrix,
                                     const std::vector<SweepCell>& cells);

}  // namespace ncfn::app
