// Multicast source endpoint.
//
// NC mode: the source paces random coded packets of the "current"
// generation onto each out-edge at the plan's rate f_m(e); the current
// generation advances at the session rate lambda, so each generation
// receives g * f(e)/lambda packets per edge plus the configured
// redundancy (NC0/NC1/NC2 of Sec. V.B.3). Packets on different edges are
// independent random combinations — this is where the coding gain over
// routing comes from.
//
// Tree (Non-NC) mode: generations are dispatched across packed multicast
// trees by a deterministic weighted-round-robin schedule; each tree
// carries the generation's original (systematic) blocks on every tree
// root edge at the tree's packed rate.
//
// Either way the source listens for repair requests (retransmissions for
// a stalled generation) and first-generation ACKs; repairs preempt fresh
// data on the pacers, so retransmission bandwidth is honestly accounted.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "app/baseline.hpp"
#include "app/messages.hpp"
#include "app/provider.hpp"
#include "coding/encoder.hpp"
#include "coding/pool.hpp"
#include "ctrl/fwdtable.hpp"
#include "netsim/network.hpp"

namespace ncfn::app {

struct SourceConfig {
  coding::SessionId session = 1;
  coding::CodingParams params;
  /// Extra coded packets per generation (NC0 = 0, NC1 = 1, NC2 = 2).
  int redundancy = 0;
  /// Session payload rate lambda (Mbps) — sets the generation clock.
  double lambda_mbps = 10.0;
  netsim::Port data_port = 20001;    // destination port at next hops
  netsim::Port feedback_port = 40001;  // where this source listens
  std::uint32_t seed = 7;
};

struct SourceStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t repair_packets_sent = 0;
  std::uint64_t repair_requests = 0;
  /// now - first-generation-sent timestamps per acked receiver node.
  std::map<std::uint32_t, netsim::Time> first_gen_ack_rtt;
};

class McSource {
 public:
  McSource(netsim::Network& net, netsim::NodeId node,
           const GenerationProvider& provider, const SourceConfig& cfg);
  ~McSource();

  McSource(const McSource&) = delete;
  McSource& operator=(const McSource&) = delete;

  /// NC mode: out-edges with their plan rates (Mbps).
  void configure_hops(std::vector<std::pair<ctrl::NextHop, double>> hops);

  /// Re-steer a *live* source onto new hops (controller re-solve after a
  /// failure): pacers are rebuilt for the new edges, generation progress
  /// resumes from the least-advanced old pacer (a little duplication on
  /// the fast edges beats losing a generation on the slow ones — coded
  /// duplicates are harmless), and stale pacer ticks are invalidated.
  /// `lambda_mbps` > 0 adopts the re-solved session rate for the
  /// per-generation quotas.
  void reconfigure_hops(std::vector<std::pair<ctrl::NextHop, double>> hops,
                        double lambda_mbps = 0.0);

  /// Non-NC mode: packed trees; this node's root hops are derived from
  /// each tree's edges.
  void configure_trees(const graph::Topology& topo,
                       std::vector<MulticastTree> trees,
                       netsim::Port data_port_override = 0);

  void start();
  void stop();

  [[nodiscard]] bool data_exhausted() const;
  [[nodiscard]] const SourceStats& stats() const { return stats_; }
  [[nodiscard]] netsim::Time first_generation_sent_at() const {
    return first_gen_sent_at_;
  }

 private:
  struct Pacer {
    // NC mode: one out-edge. Tree mode: one tree (all its root hops).
    std::vector<ctrl::NextHop> hops;
    double interval_s = 0.0;  // per emitted packet
    // NC mode: deterministic per-generation quota (largest remainder), so
    // every generation receives exactly its share of coded packets on
    // this edge — clock jitter must not starve a generation.
    double quota_per_gen = 0.0;  // (g + R) * rate / lambda
    double quota_acc = 0.0;
    int remaining = 0;               // packets left for gen_cursor
    coding::GenerationId gen_cursor = 0;
    std::size_t tree_index = 0;          // tree mode
    coding::GenerationId tree_cursor = 0;  // next own generation (tree mode)
    std::size_t block_cursor = 0;          // next block within generation
    std::deque<Feedback> repair_queue;
    bool running = false;
  };

  void on_feedback(const netsim::Datagram& d);
  void pacer_tick(std::size_t idx);
  /// Schedule a pacer tick bound to the current pacer generation: ticks
  /// scheduled before a reconfigure_hops() must not touch rebuilt pacers.
  void schedule_tick(std::size_t idx, double delay_s);
  void send_packet(Pacer& p, const coding::CodedPacket& pkt, bool repair);
  void ensure_encoder(coding::GenerationId gen);

  netsim::Network& net_;
  netsim::NodeId node_;
  const GenerationProvider& provider_;
  SourceConfig cfg_;
  std::mt19937 rng_;
  // Coded packets from every cached encoder recycle through one pool, so
  // the paced steady state allocates nothing per packet.
  coding::PacketPool pool_ = coding::PacketPool::make();

  bool tree_mode_ = false;
  std::vector<MulticastTree> trees_;
  std::vector<std::uint16_t> schedule_;
  std::vector<Pacer> pacers_;
  std::uint64_t pacer_epoch_ = 0;  // bumped when pacers_ is rebuilt live

  // Lazily-built encoder for the generation being emitted (LRU of 2: the
  // clock generation and whatever repair is being served).
  std::map<coding::GenerationId,
           std::pair<std::unique_ptr<coding::Generation>,
                     std::unique_ptr<coding::Encoder>>>
      encoders_;

  bool started_ = false;
  bool stopped_ = false;
  netsim::Time start_time_ = 0;
  netsim::Time first_gen_sent_at_ = -1;
  std::size_t repair_rr_ = 0;
  SourceStats stats_;
  // Cached registry handles (null without a hub on the network).
  obs::Counter* m_packets_sent_ = nullptr;
  obs::Counter* m_repair_packets_sent_ = nullptr;
  obs::Counter* m_repair_requests_ = nullptr;
};

}  // namespace ncfn::app
