#include "app/runtime.hpp"

#include "ctrl/quantize.hpp"
#include "obs/audit.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>
#include <string>

namespace ncfn::app {

SimNet::SimNet(const graph::Topology& topo, const SimNetConfig& cfg)
    : obs_(std::make_unique<obs::Observability>()),
      topo_(&topo),
      net_(cfg.seed) {
  obs_->trace.set_clock([sim = &net_.sim()] { return sim->now(); });
  net_.set_obs(obs_.get());
  for (int i = 0; i < topo.node_count(); ++i) {
    const netsim::NodeId id = net_.add_node(topo.node(i).name);
    assert(id == static_cast<netsim::NodeId>(i));
    (void)id;
  }
  for (int e = 0; e < topo.edge_count(); ++e) {
    const graph::EdgeInfo& ei = topo.edge(e);
    netsim::LinkConfig lc;
    lc.capacity_bps = std::isfinite(ei.capacity_bps) ? ei.capacity_bps
                                                     : cfg.default_capacity_bps;
    lc.prop_delay = ei.delay_s;
    lc.queue_packets = cfg.queue_packets;
    net_.add_link(static_cast<netsim::NodeId>(ei.from),
                  static_cast<netsim::NodeId>(ei.to), lc);
  }
}

SimNet::~SimNet() {
  if (!obs::audit_enabled()) return;

  // Keep a handle on each VNF's packet pool (cheap shared_ptr copies),
  // destroy the VNFs — which releases every decoder pivot row — then
  // check that nothing is still holding pool storage.
  std::vector<std::pair<graph::NodeIdx, coding::PacketPool>> pools;
  pools.reserve(vnfs_.size());
  for (const auto& [node, vnf] : vnfs_) {
    pools.emplace_back(node, vnf->buffer().pool());
  }
  vnfs_.clear();

  std::vector<std::string> violations;
  for (const auto& [node, pool] : pools) {
    const std::uint64_t out = pool.stats().outstanding();
    if (out != 0) {
      violations.push_back("vnf node " + std::to_string(node) + ": " +
                           std::to_string(out) +
                           " pool row(s) never returned");
    }
  }
  if (!violations.empty()) obs::audit_fail("PacketPool", violations);

  const std::vector<std::string> link_violations = net_.audit_conservation();
  if (!link_violations.empty()) obs::audit_fail("Network", link_violations);
}

netsim::Link* SimNet::link(graph::EdgeIdx e) {
  const graph::EdgeInfo& ei = topo_->edge(e);
  return net_.link(static_cast<netsim::NodeId>(ei.from),
                   static_cast<netsim::NodeId>(ei.to));
}

vnf::CodingVnf& SimNet::vnf_at(graph::NodeIdx node,
                               const vnf::VnfConfig& cfg) {
  auto it = vnfs_.find(node);
  if (it == vnfs_.end()) {
    it = vnfs_
             .emplace(node, std::make_unique<vnf::CodingVnf>(
                                net_, static_cast<netsim::NodeId>(node), cfg))
             .first;
  }
  return *it->second;
}

vnf::CodingVnf* SimNet::find_vnf(graph::NodeIdx node) {
  auto it = vnfs_.find(node);
  return it == vnfs_.end() ? nullptr : it->second.get();
}

namespace {

double min_session_goodput(
    const std::vector<std::unique_ptr<McReceiver>>& receivers) {
  double mn = std::numeric_limits<double>::infinity();
  for (const auto& r : receivers) mn = std::min(mn, r->goodput_mbps());
  return receivers.empty() ? 0.0 : mn;
}

bool all_receivers_complete(
    const std::vector<std::unique_ptr<McReceiver>>& receivers) {
  return std::all_of(receivers.begin(), receivers.end(),
                     [](const auto& r) { return r->complete(); });
}

}  // namespace

ctrl::DeploymentPlan NcMulticastSession::prepared(
    const ctrl::DeploymentPlan& raw_plan) const {
  ctrl::DeploymentPlan plan = raw_plan;
  if (wiring_.quantize) {
    ctrl::quantize_plan(plan, wiring_.vnf.params.generation_blocks);
  }
  return plan;
}

std::vector<std::pair<ctrl::NextHop, double>> NcMulticastSession::source_hops(
    const ctrl::DeploymentPlan& plan, std::size_t m) const {
  const netsim::Port data_port = ctrl::session_data_port(spec_.id);
  std::vector<std::pair<ctrl::NextHop, double>> hops;
  for (const auto& [to, rate] : plan.next_hops(sim_->topo(), m, spec_.source)) {
    hops.emplace_back(
        ctrl::NextHop{static_cast<std::uint32_t>(sim_->node(to)), data_port},
        rate);
  }
  return hops;
}

void NcMulticastSession::wire_relays(const ctrl::DeploymentPlan& plan,
                                     std::size_t m) {
  const graph::Topology& topo = sim_->topo();
  const netsim::Port data_port = ctrl::session_data_port(spec_.id);

  // ---- Relays: every DC carrying this session's flow ----
  std::set<graph::NodeIdx> relay_nodes;
  std::map<graph::NodeIdx, double> in_rate;
  std::map<graph::NodeIdx, int> in_edges;
  for (const auto& [e, rate] : plan.edge_rate_mbps.at(m)) {
    const graph::EdgeInfo& ei = topo.edge(e);
    if (ei.to != spec_.source &&
        topo.node(ei.to).kind == graph::NodeKind::kDataCenter) {
      relay_nodes.insert(ei.to);
      in_rate[ei.to] += rate;
      in_edges[ei.to] += 1;
    }
  }
  for (graph::NodeIdx v : relay_nodes) {
    vnf::VnfConfig vcfg = wiring_.vnf;
    vcfg.seed = wiring_.seed + static_cast<std::uint32_t>(v) * 131u + 1;
    vnf::CodingVnf& relay = sim_->vnf_at(v, vcfg);
    const auto it = plan.vnf_count.find(v);
    const int lanes = it == plan.vnf_count.end() ? 1 : std::max(1, it->second);
    if (static_cast<std::size_t>(lanes) > relay.lanes()) {
      relay.set_lanes(static_cast<std::size_t>(lanes));
    }
    std::vector<vnf::NextHopRate> hops;
    bool thins = false;  // some out-hop carries less than the inflow
    for (const auto& [to, rate] : plan.next_hops(topo, m, v)) {
      const double share = rate / std::max(in_rate[v], 1e-9);
      if (share < 0.999) thins = true;
      hops.push_back(vnf::NextHopRate{
          ctrl::NextHop{static_cast<std::uint32_t>(sim_->node(to)), data_port},
          share});
    }
    // Coding is needed where multiple flows of the session merge
    // (Sec. IV.A: "direct forwarding is sufficient" otherwise) — and also
    // wherever the relay thins the stream: forwarding would send the SAME
    // packet subset down every branch, collapsing the downstream branches
    // onto one subspace, whereas recoding keeps each branch's packets
    // independent draws from the relay's span.
    const ctrl::VnfRole role =
        in_edges[v] >= 2 || thins ? ctrl::VnfRole::kRecode
                                  : ctrl::VnfRole::kForward;
    relay.configure_session(spec_.id, role, data_port);
    relay.set_next_hops(spec_.id, std::move(hops));
  }

  // Relays dropped by the new plan stop forwarding this session — their
  // node (or the path to it) failed, or the re-solve routed around them.
  for (graph::NodeIdx v : relays_) {
    if (relay_nodes.count(v) > 0) continue;
    if (vnf::CodingVnf* old_relay = sim_->find_vnf(v)) {
      old_relay->set_next_hops(spec_.id, {});
    }
  }
  relays_ = std::move(relay_nodes);
}

NcMulticastSession::NcMulticastSession(SimNet& sim,
                                       const ctrl::DeploymentPlan& raw_plan,
                                       std::size_t m,
                                       const ctrl::SessionSpec& spec,
                                       const GenerationProvider& provider,
                                       const SessionWiring& wiring)
    : sim_(&sim), spec_(spec), wiring_(wiring) {
  const ctrl::DeploymentPlan plan = prepared(raw_plan);
  const netsim::Port data_port = ctrl::session_data_port(spec.id);
  const netsim::Port fb_port = session_feedback_port(spec.id);

  // ---- Source ----
  SourceConfig scfg;
  scfg.session = spec.id;
  scfg.params = wiring.vnf.params;
  scfg.redundancy = wiring.redundancy;
  scfg.lambda_mbps = std::max(plan.lambda_mbps.at(m), 1e-3);
  scfg.data_port = data_port;
  scfg.feedback_port = fb_port;
  scfg.seed = wiring.seed;
  source_ = std::make_unique<McSource>(sim.net(), sim.node(spec.source),
                                       provider, scfg);
  source_->configure_hops(source_hops(plan, m));

  wire_relays(plan, m);

  // ---- Receivers ----
  for (graph::NodeIdx r : spec.receivers) {
    ReceiverConfig rcfg;
    rcfg.session = spec.id;
    rcfg.params = wiring.vnf.params;
    rcfg.data_port = data_port;
    rcfg.source_node = static_cast<std::uint32_t>(sim.node(spec.source));
    rcfg.source_feedback_port = fb_port;
    rcfg.enable_repair = wiring.enable_repair;
    rcfg.repair_timeout_s = wiring.repair_timeout_s;
    rcfg.sample_interval_s = wiring.sample_interval_s;
    rcfg.vnf = wiring.vnf;
    rcfg.vnf.seed = wiring.seed + static_cast<std::uint32_t>(r) * 733u + 5;
    receivers_.push_back(std::make_unique<McReceiver>(
        sim.net(), sim.node(r), provider, rcfg));
  }
}

void NcMulticastSession::rewire(const ctrl::DeploymentPlan& raw_plan,
                                std::size_t m) {
  const ctrl::DeploymentPlan plan = prepared(raw_plan);
  source_->reconfigure_hops(source_hops(plan, m),
                            std::max(plan.lambda_mbps.at(m), 1e-3));
  wire_relays(plan, m);
  for (auto& r : receivers_) r->mark_disruption();
}

void NcMulticastSession::start() {
  for (auto& r : receivers_) r->start();
  source_->start();
}

double NcMulticastSession::session_goodput_mbps() const {
  return min_session_goodput(receivers_);
}

bool NcMulticastSession::all_complete() const {
  return all_receivers_complete(receivers_);
}

TreeMulticastSession::TreeMulticastSession(SimNet& sim,
                                           const TreePacking& packing,
                                           const ctrl::SessionSpec& spec,
                                           const GenerationProvider& provider,
                                           const SessionWiring& wiring) {
  const graph::Topology& topo = sim.topo();
  const netsim::Port data_port = ctrl::session_data_port(spec.id);
  const netsim::Port fb_port = session_feedback_port(spec.id);

  double total_rate = 0.0;
  for (const MulticastTree& t : packing.trees) total_rate += t.rate_mbps;

  SourceConfig scfg;
  scfg.session = spec.id;
  scfg.params = wiring.vnf.params;
  scfg.redundancy = 0;  // routing-only: no coded redundancy
  scfg.lambda_mbps = std::max(total_rate, 1e-3);
  scfg.data_port = data_port;
  scfg.feedback_port = fb_port;
  scfg.seed = wiring.seed;
  source_ = std::make_unique<McSource>(sim.net(), sim.node(spec.source),
                                       provider, scfg);
  source_->configure_trees(topo, packing.trees);

  // Relays: every interior node with out-edges in some tree.
  const auto schedule = tree_schedule(packing.trees);
  std::set<graph::NodeIdx> relay_nodes;
  for (const MulticastTree& t : packing.trees) {
    for (graph::EdgeIdx e : t.edges) {
      const graph::NodeIdx from = topo.edge(e).from;
      if (from != spec.source) relay_nodes.insert(from);
    }
  }
  for (graph::NodeIdx v : relay_nodes) {
    vnf::VnfConfig vcfg = wiring.vnf;
    vcfg.seed = wiring.seed + static_cast<std::uint32_t>(v) * 131u + 1;
    vnf::CodingVnf& relay = sim.vnf_at(v, vcfg);
    relay.configure_session(spec.id, ctrl::VnfRole::kForward, data_port);
    vnf::TreeRouting routing;
    routing.schedule = schedule;
    routing.hops_per_tree.resize(packing.trees.size());
    for (std::size_t j = 0; j < packing.trees.size(); ++j) {
      for (graph::NodeIdx to : packing.trees[j].next_hops(topo, v)) {
        routing.hops_per_tree[j].push_back(ctrl::NextHop{
            static_cast<std::uint32_t>(sim.node(to)), data_port});
      }
    }
    relay.set_tree_routing(spec.id, std::move(routing));
  }

  for (graph::NodeIdx r : spec.receivers) {
    ReceiverConfig rcfg;
    rcfg.session = spec.id;
    rcfg.params = wiring.vnf.params;
    rcfg.data_port = data_port;
    rcfg.source_node = static_cast<std::uint32_t>(sim.node(spec.source));
    rcfg.source_feedback_port = fb_port;
    rcfg.enable_repair = wiring.enable_repair;
    rcfg.repair_timeout_s = wiring.repair_timeout_s;
    rcfg.sample_interval_s = wiring.sample_interval_s;
    rcfg.vnf = wiring.vnf;
    rcfg.vnf.seed = wiring.seed + static_cast<std::uint32_t>(r) * 733u + 5;
    receivers_.push_back(std::make_unique<McReceiver>(
        sim.net(), sim.node(r), provider, rcfg));
  }
}

void TreeMulticastSession::start() {
  for (auto& r : receivers_) r->start();
  source_->start();
}

double TreeMulticastSession::session_goodput_mbps() const {
  return min_session_goodput(receivers_);
}

bool TreeMulticastSession::all_complete() const {
  return all_receivers_complete(receivers_);
}

}  // namespace ncfn::app
