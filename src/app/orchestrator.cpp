#include "app/orchestrator.hpp"

#include <string>
#include <string_view>

#include "coding/strparse.hpp"
#include "ctrl/signals.hpp"

namespace ncfn::app {

Orchestrator::Orchestrator(SimNet& sim, const Config& cfg)
    : sim_(sim), cfg_(cfg), ctl_(sim.topo(), cfg.controller) {
  ctl_.set_obs(&sim_.obs());
  netsim::Network& net = sim_.net();
  ctl_node_ = net.add_node("controller");

  netsim::LinkConfig lc;
  lc.capacity_bps = cfg_.control_link_bps;
  lc.prop_delay = cfg_.control_link_delay_s;

  for (graph::NodeIdx dc : sim_.topo().data_centers()) {
    net.add_link(ctl_node_, static_cast<netsim::NodeId>(dc), lc);
    net.add_link(static_cast<netsim::NodeId>(dc), ctl_node_, lc);
    auto daemon = std::make_unique<vnf::VnfDaemon>(
        net, static_cast<netsim::NodeId>(dc), cfg_.daemon);
    if (cfg_.probe_interval_s > 0) {
      // Probe the other DCs' delays; report into Alg. 2.
      std::vector<netsim::NodeId> peers;
      for (graph::NodeIdx other : sim_.topo().data_centers()) {
        if (other != dc) peers.push_back(static_cast<netsim::NodeId>(other));
      }
      daemon->start_probes(
          std::move(peers), cfg_.probe_interval_s,
          [this, dc](netsim::NodeId peer, std::optional<double> /*bw*/,
                     std::optional<netsim::Time> rtt) {
            on_probe_report(dc, peer, rtt);
          });
    }
    daemons_.emplace(dc, std::move(daemon));
  }
  if (cfg_.heartbeat_interval_s > 0) {
    net.bind(ctl_node_, cfg_.heartbeat_port,
             [this](const netsim::Datagram& d) { on_heartbeat(d); });
    hb_bound_ = true;
    for (auto& [dc, daemon] : daemons_) {
      daemon->start_heartbeats(ctl_node_, cfg_.heartbeat_port,
                               cfg_.heartbeat_interval_s);
    }
  }
  if (cfg_.tick_interval_s > 0) schedule_tick();
}

Orchestrator::~Orchestrator() {
  if (hb_bound_) sim_.net().unbind(ctl_node_, cfg_.heartbeat_port);
}

void Orchestrator::on_heartbeat(const netsim::Datagram& d) {
  const std::string text(d.payload.begin(), d.payload.end());
  if (text.rfind("HB ", 0) != 0) return;
  const auto node =
      coding::parse_num<graph::NodeIdx>(std::string_view(text).substr(3));
  if (!node || *node < 0) return;
  ctl_.heartbeat(*node, sim_.net().sim().now());
  flush_signals();  // a heartbeat from a down DC revives it (re-solve)
}

void Orchestrator::schedule_tick() {
  sim_.net().sim().schedule(cfg_.tick_interval_s, [this] {
    ctl_.tick(sim_.net().sim().now());
    flush_signals();
    schedule_tick();
  });
}

void Orchestrator::on_probe_report(graph::NodeIdx from_dc,
                                   netsim::NodeId peer,
                                   std::optional<netsim::Time> rtt) {
  if (!rtt) return;
  // One-way estimate for the from_dc -> peer overlay edge.
  const graph::EdgeIdx e =
      sim_.topo().find_edge(from_dc, static_cast<graph::NodeIdx>(peer));
  if (e < 0) return;
  ctl_.report_delay(e, *rtt / 2.0, sim_.net().sim().now());
  flush_signals();
}

void Orchestrator::flush_signals() {
  const auto& log = ctl_.signal_log();
  for (; flushed_ < log.size(); ++flushed_) {
    const auto& entry = log[flushed_];
    // Ship to the target's daemon if it runs one (data centers); signals
    // addressed to hosts (sources) are informational in this deployment.
    const auto dc = static_cast<graph::NodeIdx>(entry.target_node);
    if (daemons_.count(dc) == 0) continue;
    const std::string text = ctrl::serialize(entry.signal);
    netsim::Datagram d;
    d.src = ctl_node_;
    d.dst = static_cast<netsim::NodeId>(dc);
    d.dst_port = cfg_.daemon.control_port;
    d.payload.assign(text.begin(), text.end());
    if (sim_.net().send(std::move(d))) ++dispatched_;
  }
}

bool Orchestrator::add_session(const ctrl::SessionSpec& spec) {
  const bool ok = ctl_.add_session(spec, sim_.net().sim().now());
  flush_signals();
  return ok;
}

void Orchestrator::remove_session(coding::SessionId id) {
  ctl_.remove_session(id, sim_.net().sim().now());
  flush_signals();
}

bool Orchestrator::add_receiver(coding::SessionId id,
                                graph::NodeIdx receiver) {
  const bool ok = ctl_.add_receiver(id, receiver, sim_.net().sim().now());
  flush_signals();
  return ok;
}

void Orchestrator::remove_receiver(coding::SessionId id,
                                   graph::NodeIdx receiver) {
  ctl_.remove_receiver(id, receiver, sim_.net().sim().now());
  flush_signals();
}

void Orchestrator::report_vm_bandwidth(graph::NodeIdx dc, double bin_bps,
                                       double bout_bps) {
  ctl_.report_bandwidth(dc, bin_bps, bout_bps, sim_.net().sim().now());
  flush_signals();
}

void Orchestrator::notify_link_state(graph::EdgeIdx e, bool up) {
  ctl_.report_link_state(e, up, sim_.net().sim().now());
  flush_signals();
}

void Orchestrator::notify_node_state(graph::NodeIdx dc, bool up) {
  ctl_.report_node_state(dc, up, sim_.net().sim().now());
  flush_signals();
}

void Orchestrator::crash_vnf(graph::NodeIdx dc,
                             std::optional<double> restart_after_s) {
  daemons_.at(dc)->crash(restart_after_s);
}

}  // namespace ncfn::app
