#include "obs/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ncfn::obs {

bool audit_enabled() noexcept {
  if (const char* e = std::getenv("NCFN_AUDIT"); e != nullptr) {
    return std::strcmp(e, "0") != 0;
  }
#if defined(NDEBUG)
  return false;
#else
  return true;
#endif
}

void audit_fail(const char* component,
                const std::vector<std::string>& violations) {
  std::fprintf(stderr, "ncfn audit: %s: %zu invariant violation(s)\n",
               component, violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "ncfn audit:   %s\n", v.c_str());
  }
  std::abort();
}

}  // namespace ncfn::obs
