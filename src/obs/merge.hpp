// Deterministic merging of per-shard observability output.
//
// A multi-worker run gives every shard its own Observability hub: trace
// and metrics writes stay single-threaded within a shard, so the hot
// path needs no locks and each shard's output is exactly what the same
// shard would produce alone. The merge happens once, after the barrier
// at end of run, on one thread:
//
//   * Traces: a k-way merge of the shards' JSONL buffers ordered by
//     (sim time, shard index, emission order). Each shard's buffer is
//     already time-sorted, and the timestamp comparison happens on the
//     fixed "%.9f" text itself (shorter integer part => smaller; equal
//     length => lexicographic), so the merge is exact — no float
//     round-trip — and byte-identical for any worker count.
//   * Metrics: counters sum, gauges add, histograms fold bucket-wise
//     (Histogram::merge; bounds must match, which they do because every
//     shard registers through the same wiring code).
//
// Concurrency contract: the inputs must be QUIESCENT — no worker lane
// may still be appending to any trace buffer or bumping any registry
// when a merge starts. The callers guarantee this structurally: merges
// run on the single post-barrier thread, after WorkerPool::run has
// joined every lane's last window (shard ownership is the
// NCFN_GUARDED_BY(owner) Role in app::SimShard; the shard accessors
// assert it before handing buffers to the merge). The merge itself
// never mutates its inputs, so no lock is taken here.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ncfn::obs {

/// Merge already-time-sorted JSONL trace buffers into one stream ordered
/// by (sim time, input index, original order). Inputs must be
/// EventTrace-formatted: every line starts with {"t":<%.9f>,...
[[nodiscard]] std::string merge_traces(
    const std::vector<const EventTrace*>& traces);

/// Fold per-shard registries into one: counters sum, gauges add,
/// histograms merge. Deterministic: names visit in map order, shards in
/// input order.
[[nodiscard]] MetricsRegistry merge_metrics(
    const std::vector<const MetricsRegistry*>& regs);

}  // namespace ncfn::obs
