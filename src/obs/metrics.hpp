// Metrics registry — the uniform measurement surface for the whole stack.
//
// The paper's evaluation is a set of measurements (throughput, decode
// latency, VNF launch overhead, table-update cost); this registry gives
// every layer one place to publish those quantities instead of each bench
// re-deriving ad-hoc counters. Design constraints, matching the data
// plane's zero-allocation discipline:
//
//   * Registration (`counter()` / `gauge()` / `histogram()`) may allocate;
//     it happens once, at wiring time. The returned references are stable
//     for the registry's lifetime (node-based map), so hot paths hold a
//     handle and update it with a single add — no lookup, no allocation.
//   * Histograms use fixed buckets chosen at registration; record() is a
//     linear scan over a small immutable bound array — allocation-free.
//   * Snapshots serialize to JSON with keys in lexicographic order, so two
//     identical runs produce byte-identical output (the same determinism
//     contract as the event trace).
//
// Single-threaded by design, like the simulator that feeds it.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace ncfn::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts samples x with
/// bound[i-1] <= x < bound[i]; one implicit overflow bucket catches
/// x >= bound.back(). Bounds are fixed at registration, so record() never
/// allocates. An empty bound list is legal: every sample lands in the
/// single overflow bucket (count/sum/min/max still track exactly).
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::span<const double> bounds)
      : bounds_(bounds.begin(), bounds.end()), buckets_(bounds.size() + 1, 0) {}

  void record(double x) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && x >= bounds_[i]) ++i;
    ++buckets_[i];
    ++count_;
    sum_ += x;
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  /// Fold another histogram with identical bounds into this one.
  /// Mismatched bounds are rejected (returns false, no change).
  bool merge(const Histogram& other) noexcept {
    if (bounds_ != other.bounds_) return false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
    if (other.count_ > 0) {
      if (count_ == 0 || other.min_ < min_) min_ = other.min_;
      if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Min/max of recorded samples; 0 when empty.
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 buckets; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_{0};  // degenerate single-bucket default
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  /// Bounds are taken from the first registration of `name`; later calls
  /// return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::span<const double> bounds) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(bounds)).first;
    }
    return it->second;
  }

  /// Read-only lookups for consumers (benches, tests); nullptr if absent.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }
  /// Counter value or 0 when never registered (absent == never incremented).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    const Counter* c = find_counter(name);
    return c == nullptr ? 0 : c->value();
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Deterministic JSON snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Keys are emitted in lexicographic (map) order.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() (plus a trailing newline) to `path`.
  /// Returns false on I/O error.
  bool write_json(const std::string& path) const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ncfn::obs
