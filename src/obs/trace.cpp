#include "obs/trace.hpp"

#include <cstdio>

namespace ncfn::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

void EventTrace::stamp(const char* ev) {
  char buf[48];
  // Fixed-width nanosecond-resolution timestamps: deterministic for
  // identical doubles and plenty for the simulator's time scales.
  std::snprintf(buf, sizeof(buf), "{\"t\":%.9f,\"ev\":\"%s\"", now(), ev);
  data_ += buf;
}

void EventTrace::finish() {
  data_ += "}\n";
  ++records_;
}

void EventTrace::emit_link(const char* ev, std::uint32_t from,
                           std::uint32_t to, std::size_t bytes,
                           std::size_t queue_depth) {
  stamp(ev);
  data_ += ",\"from\":";
  append_u64(data_, from);
  data_ += ",\"to\":";
  append_u64(data_, to);
  data_ += ",\"bytes\":";
  append_u64(data_, bytes);
  data_ += ",\"q\":";
  append_u64(data_, queue_depth);
  finish();
}

void EventTrace::emit_drop(std::uint32_t from, std::uint32_t to,
                           std::size_t bytes, const char* reason) {
  stamp("pkt_drop");
  data_ += ",\"from\":";
  append_u64(data_, from);
  data_ += ",\"to\":";
  append_u64(data_, to);
  data_ += ",\"bytes\":";
  append_u64(data_, bytes);
  data_ += ",\"reason\":\"";
  data_ += reason;
  data_ += '"';
  finish();
}

void EventTrace::emit_gen(const char* ev, std::uint32_t node,
                          std::uint32_t session, std::uint32_t generation,
                          std::size_t aux) {
  stamp(ev);
  data_ += ",\"node\":";
  append_u64(data_, node);
  data_ += ",\"session\":";
  append_u64(data_, session);
  data_ += ",\"gen\":";
  append_u64(data_, generation);
  data_ += ",\"n\":";
  append_u64(data_, aux);
  finish();
}

void EventTrace::emit_gen_reason(const char* ev, std::uint32_t node,
                                 std::uint32_t session,
                                 std::uint32_t generation,
                                 const char* reason) {
  stamp(ev);
  data_ += ",\"node\":";
  append_u64(data_, node);
  data_ += ",\"session\":";
  append_u64(data_, session);
  data_ += ",\"gen\":";
  append_u64(data_, generation);
  data_ += ",\"reason\":\"";
  data_ += reason;
  data_ += '"';
  finish();
}

void EventTrace::emit_signal(std::uint32_t node, const char* kind) {
  stamp("signal");
  data_ += ",\"node\":";
  append_u64(data_, node);
  data_ += ",\"kind\":\"";
  data_ += kind;
  data_ += '"';
  finish();
}

void EventTrace::emit_fwdtab(std::uint32_t node, std::size_t changed,
                             double cost_s) {
  stamp("fwdtab_swap");
  data_ += ",\"node\":";
  append_u64(data_, node);
  data_ += ",\"changed\":";
  append_u64(data_, changed);
  char buf[32];
  std::snprintf(buf, sizeof(buf), ",\"cost\":%.9f", cost_s);
  data_ += buf;
  finish();
}

void EventTrace::emit_pair(const char* ev, std::uint32_t from,
                           std::uint32_t to) {
  stamp(ev);
  data_ += ",\"from\":";
  append_u64(data_, from);
  data_ += ",\"to\":";
  append_u64(data_, to);
  finish();
}

void EventTrace::emit_node(const char* ev, std::uint32_t node) {
  stamp(ev);
  data_ += ",\"node\":";
  append_u64(data_, node);
  finish();
}

void EventTrace::emit_resolve(const char* cause, std::size_t sessions) {
  stamp("resolve");
  data_ += ",\"cause\":\"";
  data_ += cause;
  data_ += "\",\"sessions\":";
  append_u64(data_, sessions);
  finish();
}

bool EventTrace::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(data_.data(), 1, data_.size(), f) == data_.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ncfn::obs
