#include "obs/merge.hpp"

#include <cstddef>
#include <string_view>

namespace ncfn::obs {

namespace {

constexpr std::string_view kStampPrefix = "{\"t\":";

/// The "%.9f" timestamp text of the JSONL line starting at `pos`.
/// Empty view if the line is not EventTrace-shaped (merged verbatim,
/// ordered as time zero).
std::string_view stamp_text(const std::string& data, std::size_t pos) {
  if (data.compare(pos, kStampPrefix.size(), kStampPrefix) != 0) return {};
  const std::size_t begin = pos + kStampPrefix.size();
  const std::size_t comma = data.find(',', begin);
  if (comma == std::string::npos) return {};
  return std::string_view(data).substr(begin, comma - begin);
}

/// Exact order on "%.9f"-formatted nonnegative times: both stamps carry
/// the same fixed fraction width, so the one with fewer integer digits
/// is smaller, and equal widths compare lexicographically.
bool stamp_less(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

struct Cursor {
  const std::string* data = nullptr;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= data->size(); }
  [[nodiscard]] std::string_view stamp() const {
    return stamp_text(*data, pos);
  }
  /// The current line including its newline; advances past it.
  std::string_view take_line() {
    std::size_t end = data->find('\n', pos);
    end = end == std::string::npos ? data->size() : end + 1;
    const std::string_view line = std::string_view(*data).substr(pos, end - pos);
    pos = end;
    return line;
  }
};

}  // namespace

std::string merge_traces(const std::vector<const EventTrace*>& traces) {
  std::vector<Cursor> cursors;
  cursors.reserve(traces.size());
  std::size_t total = 0;
  for (const EventTrace* t : traces) {
    cursors.push_back(Cursor{&t->data(), 0});
    total += t->data().size();
  }
  std::string out;
  out.reserve(total);
  for (;;) {
    // Lowest (stamp, shard index) among the live cursors; ties keep the
    // lower index, so the order is a pure function of the inputs.
    std::size_t best = cursors.size();
    std::string_view best_stamp;
    for (std::size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].done()) continue;
      const std::string_view s = cursors[i].stamp();
      if (best == cursors.size() || stamp_less(s, best_stamp)) {
        best = i;
        best_stamp = s;
      }
    }
    if (best == cursors.size()) break;
    out += cursors[best].take_line();
  }
  return out;
}

MetricsRegistry merge_metrics(const std::vector<const MetricsRegistry*>& regs) {
  MetricsRegistry out;
  for (const MetricsRegistry* reg : regs) {
    for (const auto& [name, c] : reg->counters()) {
      out.counter(name).inc(c.value());
    }
    for (const auto& [name, g] : reg->gauges()) {
      out.gauge(name).add(g.value());
    }
    for (const auto& [name, h] : reg->histograms()) {
      out.histogram(name, h.bounds()).merge(h);
    }
  }
  return out;
}

}  // namespace ncfn::obs
