#include "obs/metrics.hpp"

#include <cstdio>

namespace ncfn::obs {

namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  // %.12g is deterministic for identical doubles and keeps snapshots
  // readable; metrics are measurements, not bit-exact payloads.
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

void append_key(std::string& out, const std::string& name, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;  // metric names are plain identifiers; no escaping needed
  out += "\":";
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append_key(out, name, first);
    append_u64(out, c.value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    append_key(out, name, first);
    append_double(out, g.value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    append_key(out, name, first);
    out += "{\"count\":";
    append_u64(out, h.count());
    out += ",\"sum\":";
    append_double(out, h.sum());
    out += ",\"min\":";
    append_double(out, h.min());
    out += ",\"max\":";
    append_double(out, h.max());
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) out += ',';
      append_double(out, h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      if (i > 0) out += ',';
      append_u64(out, h.buckets()[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace ncfn::obs
