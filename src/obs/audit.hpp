// Teardown audits: cheap end-of-run invariant checks that turn silent
// leaks into loud failures.
//
// Components with conservation invariants (PacketPool row accounting,
// per-link packet conservation) verify them when the owning SimNet is
// destroyed. The checks are compiled in unconditionally — they are a
// handful of integer compares at teardown — and gated at runtime:
//
//   * NCFN_AUDIT=1 in the environment forces them on,
//   * NCFN_AUDIT=0 forces them off,
//   * otherwise they default to on in debug builds (!NDEBUG) and off in
//     release builds.
//
// A failed audit prints every violation to stderr and aborts, so CI and
// death tests can assert on the "ncfn audit" marker.
#pragma once

#include <string>
#include <vector>

namespace ncfn::obs {

/// Whether teardown audits should run (see file comment for the policy).
[[nodiscard]] bool audit_enabled() noexcept;

/// Report audit violations ("<component>: <what>") and abort.
[[noreturn]] void audit_fail(const char* component,
                             const std::vector<std::string>& violations);

}  // namespace ncfn::obs
