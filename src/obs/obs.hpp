// Observability hub: one metrics registry plus one event trace, owned by
// whoever owns the run (app::SimNet for simulated sessions, a test, or a
// tool's main()). Layers receive a raw pointer — nullptr means "not
// observed" and every instrumentation site degrades to a null check.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ncfn::obs {

struct Observability {
  MetricsRegistry metrics;
  EventTrace trace;
};

}  // namespace ncfn::obs
