// Deterministic structured event trace.
//
// Every layer of the stack reports its externally observable actions here
// as typed, sim-time-stamped records: the netsim layer's packet
// enqueue/drop/deliver, the coding layer's generation open/close/decode,
// the VNF layer's recodes, the control plane's NC_* signals and
// forwarding-table swaps. Records serialize to JSONL — one object per
// line, fixed key order, fixed float formatting — so that two runs with
// the same (seed, scenario) produce *byte-identical* traces. That
// determinism contract turns the trace into a golden-file regression
// harness (tests/test_obs.cpp): a PR that silently changes packet
// ordering, drop behaviour or decode timing fails a tier-1 test instead
// of only shifting a bench number.
//
// The trace is disabled by default. Every emitter starts with an inline
// enabled() check, so a disabled trace costs one predictable branch per
// event and touches no memory. Timestamps come from a clock callback
// (bound to Simulator::now() by the runtime), so lower layers can emit
// events without depending on netsim.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ncfn::obs {

class EventTrace {
 public:
  /// Seconds of simulated time; bound by the owner (e.g. to
  /// Simulator::now()). Unset clock stamps 0.
  using Clock = std::function<double()>;

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }

  void set_clock(Clock clock) { clock_ = std::move(clock); }

  /// Accumulated JSONL (one record per line, each newline-terminated).
  [[nodiscard]] const std::string& data() const noexcept { return data_; }
  [[nodiscard]] std::size_t record_count() const noexcept { return records_; }
  void clear() {
    data_.clear();
    records_ = 0;
  }
  /// Write data() to `path`. Returns false on I/O error.
  bool write(const std::string& path) const;

  // ---- netsim ----
  /// Packet accepted onto a link's egress queue.
  void packet_enqueue(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                      std::size_t queue_depth) {
    if (!enabled_) return;
    emit_link("pkt_enq", from, to, bytes, queue_depth);
  }
  /// Packet dropped by the link; reason is "loss" or "queue".
  void packet_drop(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                   const char* reason) {
    if (!enabled_) return;
    emit_drop(from, to, bytes, reason);
  }
  /// Packet handed to the destination node.
  void packet_deliver(std::uint32_t from, std::uint32_t to,
                      std::size_t bytes, std::size_t queue_depth) {
    if (!enabled_) return;
    emit_link("pkt_dlv", from, to, bytes, queue_depth);
  }
  /// Link administrative state change (outage start / end).
  void link_state(std::uint32_t from, std::uint32_t to, bool up) {
    if (!enabled_) return;
    emit_pair(up ? "link_up" : "link_down", from, to);
  }
  /// Node (machine) state change: all incident links go with it.
  void node_state(std::uint32_t node, bool up) {
    if (!enabled_) return;
    emit_node(up ? "node_up" : "node_down", node);
  }

  // ---- coding ----
  /// New (session, generation) decoding state created at `node`.
  void gen_open(std::uint32_t node, std::uint32_t session,
                std::uint32_t generation) {
    if (!enabled_) return;
    emit_gen("gen_open", node, session, generation, 0);
  }
  /// Generation state dropped; reason is "evict" or "erase".
  void gen_close(std::uint32_t node, std::uint32_t session,
                 std::uint32_t generation, const char* reason) {
    if (!enabled_) return;
    emit_gen_reason("gen_close", node, session, generation, reason);
  }
  /// Generation reached full rank (decode-ready) after `seen` packets.
  void gen_decode(std::uint32_t node, std::uint32_t session,
                  std::uint32_t generation, std::size_t seen) {
    if (!enabled_) return;
    emit_gen("gen_decode", node, session, generation, seen);
  }

  // ---- vnf ----
  /// A recoded packet emitted by the coding function at `node`;
  /// `rank` is the decoding-matrix rank the combination was drawn from.
  void vnf_recode(std::uint32_t node, std::uint32_t session,
                  std::uint32_t generation, std::size_t rank) {
    if (!enabled_) return;
    emit_gen("vnf_recode", node, session, generation, rank);
  }

  /// Coding function at `node` crashed: buffered decoder state is lost.
  void vnf_crash(std::uint32_t node) {
    if (!enabled_) return;
    emit_node("vnf_crash", node);
  }
  /// Coding function at `node` restarted cold after a crash.
  void vnf_restart(std::uint32_t node) {
    if (!enabled_) return;
    emit_node("vnf_restart", node);
  }

  // ---- ctrl ----
  /// An NC_* control signal handled at (or emitted towards) `node`.
  void signal(std::uint32_t node, const char* kind) {
    if (!enabled_) return;
    emit_signal(node, kind);
  }
  /// Controller reacted to a topology change (`cause` is "link_down",
  /// "link_up", "node_down", ... ) by re-solving `sessions` sessions.
  void resolve(const char* cause, std::size_t sessions) {
    if (!enabled_) return;
    emit_resolve(cause, sessions);
  }
  /// Forwarding table replaced at `node`: `changed` entries differed,
  /// modeled apply cost `cost_s`.
  void fwdtab_swap(std::uint32_t node, std::size_t changed, double cost_s) {
    if (!enabled_) return;
    emit_fwdtab(node, changed, cost_s);
  }

 private:
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }
  void emit_link(const char* ev, std::uint32_t from, std::uint32_t to,
                 std::size_t bytes, std::size_t queue_depth);
  void emit_drop(std::uint32_t from, std::uint32_t to, std::size_t bytes,
                 const char* reason);
  void emit_gen(const char* ev, std::uint32_t node, std::uint32_t session,
                std::uint32_t generation, std::size_t aux);
  void emit_gen_reason(const char* ev, std::uint32_t node,
                       std::uint32_t session, std::uint32_t generation,
                       const char* reason);
  void emit_signal(std::uint32_t node, const char* kind);
  void emit_fwdtab(std::uint32_t node, std::size_t changed, double cost_s);
  void emit_pair(const char* ev, std::uint32_t from, std::uint32_t to);
  void emit_node(const char* ev, std::uint32_t node);
  void emit_resolve(const char* cause, std::size_t sessions);
  void stamp(const char* ev);
  void finish();

  bool enabled_ = false;
  Clock clock_;
  std::string data_;
  std::size_t records_ = 0;
};

}  // namespace ncfn::obs
