// Source encoder: produces coded packets from one generation.
//
// Randomized network coding (Ho et al., cited by the paper): each coded
// block is a linear combination of the generation's blocks with
// coefficients drawn uniformly at random from GF(2^8). The encoder also
// supports systematic operation (first emit each original block with a
// unit coefficient vector, then random combinations), an ablation the
// bench suite compares against fully-random encoding.
#pragma once

#include <random>

#include "coding/generation.hpp"
#include "coding/packet.hpp"

namespace ncfn::coding {

class Encoder {
 public:
  Encoder(SessionId session, const Generation& generation,
          std::mt19937& rng)
      : session_(session), generation_(&generation), rng_(&rng) {}

  /// Emit one random coded packet. The coefficient vector is redrawn if it
  /// comes out all-zero (probability 2^-8g, but correctness demands it).
  [[nodiscard]] CodedPacket encode_random();

  /// Emit original block `i` as a systematic packet (unit coefficients).
  [[nodiscard]] CodedPacket encode_systematic(std::size_t i);

  /// Emit a packet with caller-chosen coefficients (used by tests).
  [[nodiscard]] CodedPacket encode_with(
      std::span<const std::uint8_t> coeffs) const;

 private:
  SessionId session_;
  const Generation* generation_;
  std::mt19937* rng_;
};

}  // namespace ncfn::coding
