// Source encoder: produces coded packets from one generation.
//
// Randomized network coding (Ho et al., cited by the paper): each coded
// block is a linear combination of the generation's blocks with
// coefficients drawn uniformly at random from GF(2^8). The encoder also
// supports systematic operation (first emit each original block with a
// unit coefficient vector, then random combinations), an ablation the
// bench suite compares against fully-random encoding.
//
// Hot-path shape: packets come from the (optional) PacketPool, so the
// steady state allocates nothing, and the payload accumulation drives the
// fused four-row muladd kernel — one pass over the output block per four
// source blocks instead of one per block.
#pragma once

#include <random>

#include "coding/batch.hpp"
#include "coding/generation.hpp"
#include "coding/packet.hpp"
#include "coding/pool.hpp"

namespace ncfn::coding {

class Encoder {
 public:
  Encoder(SessionId session, const Generation& generation, std::mt19937& rng,
          PacketPool pool = {})
      : session_(session),
        generation_(&generation),
        rng_(&rng),
        pool_(std::move(pool)) {}

  /// Emit one random coded packet. The coefficient vector is redrawn if it
  /// comes out all-zero (probability 2^-8g, but correctness demands it).
  [[nodiscard]] CodedPacket encode_random();

  /// Batched source coding: append `k` random coded packets to `out`
  /// (k <= out.room()). Draws one k x g coefficient block per call so the
  /// RNG fill amortizes across the batch; for g % 4 == 0 the draw stream
  /// matches k successive encode_random() calls.
  void encode_random_batch(std::size_t k, PacketBatch& out);

  /// Emit original block `i` as a systematic packet (unit coefficients).
  [[nodiscard]] CodedPacket encode_systematic(std::size_t i);

  /// Emit a packet with caller-chosen coefficients (used by tests).
  [[nodiscard]] CodedPacket encode_with(
      std::span<const std::uint8_t> coeffs) const;

 private:
  /// Accumulate sum_i coeffs[i] * block(i) into pkt's (zeroed) payload,
  /// four source rows per fused kernel pass.
  void encode_payload(CodedPacket& pkt) const;

  SessionId session_;
  const Generation* generation_;
  std::mt19937* rng_;
  PacketPool pool_;
};

}  // namespace ncfn::coding
