#include "coding/pool.hpp"

#include <utility>

namespace ncfn::coding {

namespace detail {

struct PoolImpl {
  std::vector<std::vector<std::uint8_t>> free;
  std::size_t max_free = 4096;
  PoolStats stats;
};

namespace {

/// Hand `store` back to its pool (or let it free on the heap).
void release_store(std::vector<std::uint8_t>& store,
                   const std::shared_ptr<PoolImpl>& pool) noexcept {
  if (store.capacity() == 0) return;
  if (pool == nullptr) {
    store = {};
    return;
  }
  ++pool->stats.releases;
  if (pool->free.size() >= pool->max_free) {
    ++pool->stats.dropped;
    store = {};
    return;
  }
  pool->free.push_back(std::move(store));
  store = {};
}

}  // namespace

}  // namespace detail

PooledBuf& PooledBuf::operator=(PooledBuf&& o) noexcept {
  if (this != &o) {
    detail::release_store(store_, pool_);
    store_ = std::move(o.store_);
    pool_ = std::move(o.pool_);
  }
  return *this;
}

PooledBuf::PooledBuf(const PooledBuf& o) : pool_(o.pool_) {
  if (pool_ != nullptr) {
    auto& st = pool_->stats;
    ++st.acquires;
    if (!pool_->free.empty() &&
        pool_->free.back().capacity() >= o.store_.size()) {
      store_ = std::move(pool_->free.back());
      pool_->free.pop_back();
      ++st.reuses;
    } else {
      ++st.heap_allocs;
    }
  }
  store_.assign(o.store_.begin(), o.store_.end());
}

PooledBuf& PooledBuf::operator=(const PooledBuf& o) {
  if (this != &o) {
    PooledBuf copy(o);
    *this = std::move(copy);
  }
  return *this;
}

PooledBuf::~PooledBuf() { detail::release_store(store_, pool_); }

void PooledBuf::reset() noexcept {
  detail::release_store(store_, pool_);
  pool_.reset();
}

PacketPool PacketPool::make(std::size_t max_free) {
  PacketPool p;
  p.impl_ = std::make_shared<detail::PoolImpl>();
  p.impl_->max_free = max_free;
  return p;
}

PooledBuf PacketPool::acquire(std::size_t n) const {
  PooledBuf buf;
  buf.pool_ = impl_;
  if (impl_ == nullptr) {
    buf.store_.assign(n, 0);
    return buf;
  }
  auto& st = impl_->stats;
  ++st.acquires;
  if (!impl_->free.empty() && impl_->free.back().capacity() >= n) {
    buf.store_ = std::move(impl_->free.back());
    impl_->free.pop_back();
    ++st.reuses;
  } else {
    ++st.heap_allocs;
  }
  // assign() zero-fills all n bytes: recycled buffers never leak stale
  // payload into a fresh packet.
  buf.store_.assign(n, 0);
  return buf;
}

PoolStats PacketPool::stats() const {
  if (impl_ == nullptr) return {};
  PoolStats s = impl_->stats;
  s.free_buffers = impl_->free.size();
  return s;
}

}  // namespace ncfn::coding
