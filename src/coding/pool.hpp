// Freelist-backed packet buffer pool — the allocation-free data plane's
// memory layer.
//
// The steady-state coding hot path (encode, recode, decoder row
// elimination, NIC serialize) used to pay two std::vector heap
// allocations per CodedPacket. PacketPool recycles those buffers: a
// released buffer keeps its capacity on a freelist and the next acquire
// of the same-or-smaller size reuses it without touching the heap. After
// a short warmup (one buffer per concurrently-live packet) the hot path
// performs zero heap allocations — PoolStats::heap_allocs stays flat,
// which tests assert.
//
// PacketPool is a cheap value handle (shared_ptr to the freelist), so it
// threads through encoder/decoder/VNF constructors by value and buffers
// may safely outlive any one owner. A default-constructed handle is
// "null": acquire() then returns plain heap-backed buffers, so code paths
// without a pool (tests, one-shot tools) need no branches. Buffers are
// zero-filled on acquire — a recycled packet can never leak stale payload
// bytes. Single-threaded by design, like the rest of the simulator.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace ncfn::coding {

namespace detail {
struct PoolImpl;
}  // namespace detail

struct PoolStats {
  std::uint64_t acquires = 0;     // total acquire() calls
  std::uint64_t reuses = 0;       // served from the freelist, no heap work
  std::uint64_t heap_allocs = 0;  // acquires that had to grow/allocate
  std::uint64_t releases = 0;     // buffers returned to the pool
  std::uint64_t dropped = 0;      // released buffers discarded (freelist full)
  std::size_t free_buffers = 0;   // current freelist depth

  /// Buffers currently held by live PooledBufs. `releases` counts every
  /// buffer that came back, kept or dropped.
  [[nodiscard]] std::uint64_t outstanding() const {
    return acquires - releases;
  }
};

class PacketPool;

/// One recycled byte buffer. Movable; copy re-acquires from the same pool
/// (or the heap for pool-less buffers) and copies the bytes. Returns its
/// storage to the pool on destruction.
class PooledBuf {
 public:
  PooledBuf() = default;
  PooledBuf(PooledBuf&& o) noexcept = default;
  PooledBuf& operator=(PooledBuf&& o) noexcept;
  PooledBuf(const PooledBuf& o);
  PooledBuf& operator=(const PooledBuf& o);
  ~PooledBuf();

  [[nodiscard]] std::size_t size() const noexcept { return store_.size(); }
  [[nodiscard]] bool empty() const noexcept { return store_.empty(); }
  [[nodiscard]] std::uint8_t* data() noexcept { return store_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return store_.data();
  }
  [[nodiscard]] std::span<std::uint8_t> span() noexcept {
    return {store_.data(), store_.size()};
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {store_.data(), store_.size()};
  }

  /// Return the storage to the pool now; the buffer becomes empty.
  void reset() noexcept;

 private:
  friend class PacketPool;
  std::vector<std::uint8_t> store_;
  std::shared_ptr<detail::PoolImpl> pool_;  // null: plain heap buffer
};

class PacketPool {
 public:
  /// Null handle: acquire() hands out plain heap buffers, stats are empty.
  PacketPool() = default;

  /// A live pool keeping at most `max_free` idle buffers.
  [[nodiscard]] static PacketPool make(std::size_t max_free = 4096);

  [[nodiscard]] explicit operator bool() const noexcept {
    return impl_ != nullptr;
  }

  /// A zero-filled buffer of exactly `n` bytes, recycled from the
  /// freelist when possible (growth path: heap-allocates when the
  /// freelist is empty or its buffers are too small — the pool never
  /// fails, it just stops being free).
  [[nodiscard]] PooledBuf acquire(std::size_t n) const;

  [[nodiscard]] PoolStats stats() const;

 private:
  std::shared_ptr<detail::PoolImpl> impl_;
};

}  // namespace ncfn::coding
