#include "coding/buffer.hpp"

#include <algorithm>

namespace ncfn::coding {

void GenerationBuffer::set_obs(obs::Observability* obs, std::uint32_t node) {
  has_obs_ = obs != nullptr;
  if (!has_obs_) {
    obs_handles_ = CodingObs{};
    m_buffered_ = nullptr;
    return;
  }
  obs_handles_ = CodingObs::bind(*obs, node);
  m_buffered_ = &obs->metrics.gauge("coding.node." + std::to_string(node) +
                                    ".generations_buffered");
}

Decoder& GenerationBuffer::state(SessionId session, GenerationId generation) {
  const Key key{session, generation};
  if (auto it = states_.find(key); it != states_.end()) return *it->second;

  auto& order = fifo_[session];
  if (order.size() >= params_.buffer_generations) {
    const GenerationId victim = order.front();
    order.pop_front();
    states_.erase(Key{session, victim});
    ++evictions_;
    if (has_obs_) {
      obs_handles_.trace->gen_close(obs_handles_.node, session, victim,
                                    "evict");
    }
  }
  order.push_back(generation);
  auto [it, inserted] = states_.emplace(
      key, std::make_unique<Decoder>(session, generation, params_, pool_));
  if (has_obs_) {
    it->second->set_obs(&obs_handles_);
    obs_handles_.trace->gen_open(obs_handles_.node, session, generation);
    m_buffered_->set(static_cast<double>(states_.size()));
  }
  return *it->second;
}

Decoder* GenerationBuffer::find(SessionId session, GenerationId generation) {
  auto it = states_.find(Key{session, generation});
  return it == states_.end() ? nullptr : it->second.get();
}

void GenerationBuffer::erase(SessionId session, GenerationId generation) {
  if (states_.erase(Key{session, generation}) == 0) return;
  if (has_obs_) {
    obs_handles_.trace->gen_close(obs_handles_.node, session, generation,
                                  "erase");
    m_buffered_->set(static_cast<double>(states_.size()));
  }
  auto it = fifo_.find(session);
  if (it == fifo_.end()) return;
  auto& order = it->second;
  order.erase(std::remove(order.begin(), order.end(), generation),
              order.end());
  if (order.empty()) fifo_.erase(it);
}

void GenerationBuffer::erase_session(SessionId session) {
  auto it = fifo_.find(session);
  if (it == fifo_.end()) return;
  for (GenerationId gen : it->second) {
    if (states_.erase(Key{session, gen}) > 0 && has_obs_) {
      obs_handles_.trace->gen_close(obs_handles_.node, session, gen, "erase");
    }
  }
  fifo_.erase(it);
  if (has_obs_) m_buffered_->set(static_cast<double>(states_.size()));
}

}  // namespace ncfn::coding
