#include "coding/buffer.hpp"

#include <algorithm>

namespace ncfn::coding {

Decoder& GenerationBuffer::state(SessionId session, GenerationId generation) {
  const Key key{session, generation};
  if (auto it = states_.find(key); it != states_.end()) return *it->second;

  auto& order = fifo_[session];
  if (order.size() >= params_.buffer_generations) {
    const GenerationId victim = order.front();
    order.pop_front();
    states_.erase(Key{session, victim});
    ++evictions_;
  }
  order.push_back(generation);
  auto [it, inserted] = states_.emplace(
      key, std::make_unique<Decoder>(session, generation, params_, pool_));
  return *it->second;
}

Decoder* GenerationBuffer::find(SessionId session, GenerationId generation) {
  auto it = states_.find(Key{session, generation});
  return it == states_.end() ? nullptr : it->second.get();
}

void GenerationBuffer::erase(SessionId session, GenerationId generation) {
  if (states_.erase(Key{session, generation}) == 0) return;
  auto it = fifo_.find(session);
  if (it == fifo_.end()) return;
  auto& order = it->second;
  order.erase(std::remove(order.begin(), order.end(), generation),
              order.end());
  if (order.empty()) fifo_.erase(it);
}

void GenerationBuffer::erase_session(SessionId session) {
  auto it = fifo_.find(session);
  if (it == fifo_.end()) return;
  for (GenerationId gen : it->second) states_.erase(Key{session, gen});
  fifo_.erase(it);
}

}  // namespace ncfn::coding
