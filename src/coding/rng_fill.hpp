// Random coefficient fill for the encode/recode hot path.
//
// A uniform_int_distribution sample per coefficient byte burns one whole
// mt19937 output word (and a rejection loop) per byte. GF(2^8) elements
// are exactly bytes, so slicing whole 32-bit engine words four ways is
// both faster and identically uniform.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace ncfn::coding::detail {

inline void fill_random_bytes(std::span<std::uint8_t> out,
                              std::mt19937& rng) {
  std::size_t i = 0;
  // mt19937 yields exactly 32 value bits, but its result_type is
  // uint_fast32_t (64-bit here) — narrow explicitly.
  for (; i + 4 <= out.size(); i += 4) {
    const auto w = static_cast<std::uint32_t>(rng());
    out[i] = static_cast<std::uint8_t>(w);
    out[i + 1] = static_cast<std::uint8_t>(w >> 8);
    out[i + 2] = static_cast<std::uint8_t>(w >> 16);
    out[i + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  if (i < out.size()) {
    auto w = static_cast<std::uint32_t>(rng());
    for (; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(w);
      w >>= 8;
    }
  }
}

}  // namespace ncfn::coding::detail
