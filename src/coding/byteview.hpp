// Bounds-checked byte views — the one approved window onto raw packet
// memory.
//
// Every wire format in this repo (NC header, feedback messages, TCP
// probe sequence numbers) is big-endian and fixed-layout. Historically
// each site hand-rolled its shifts and memcpys; under attacker-shaped
// input those are exactly the places an NFV data plane goes memory-
// unsafe. ByteView / ByteWriter centralize the raw access:
//
//   * all multi-byte integers are assembled from individual bytes
//     (shift-and-or), so there are no misaligned loads and no
//     endianness assumptions — clean under -fsanitize=undefined,
//     integer,implicit-conversion;
//   * every read/write is bounds-checked against the underlying span.
//     Overrun makes the cursor *sticky-fail*: the access is suppressed,
//     reads return 0, and ok() reports false. Parsers check ok() once
//     at the end instead of guarding every field;
//   * the only memcpy lives in copy_bytes() below, behind a size check.
//
// ncfn-lint enforces the contract: raw memcpy/reinterpret_cast outside
// this header is a lint error (rule `raw-bytes`), so new serialization
// code has to route through these views or carry a justified per-line
// allow() annotation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace ncfn::coding {

/// Size-checked span copy: the data-plane replacement for raw memcpy.
/// Copies min(dst.size(), src.size()) == src.size() bytes only when the
/// destination is large enough; returns false (copying nothing) on
/// mismatch instead of overrunning.
inline bool copy_bytes(std::span<std::uint8_t> dst,
                       std::span<const std::uint8_t> src) noexcept {
  if (src.size() > dst.size()) return false;
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
  return true;
}

/// Sticky-fail big-endian reader over a const byte span.
class ByteView {
 public:
  explicit ByteView(std::span<const std::uint8_t> bytes) noexcept
      : bytes_(bytes) {}

  /// All accesses so far were in bounds.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// In-bounds AND fully consumed — the usual end-of-parse check.
  [[nodiscard]] bool done() const noexcept {
    return ok_ && at_ == bytes_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - at_;
  }

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!take(1)) return 0;
    return bytes_[at_++];
  }

  [[nodiscard]] std::uint16_t u16() noexcept {
    if (!take(2)) return 0;
    const auto v = static_cast<std::uint16_t>(
        (static_cast<std::uint32_t>(bytes_[at_]) << 8) |
        static_cast<std::uint32_t>(bytes_[at_ + 1]));
    at_ += 2;
    return v;
  }

  [[nodiscard]] std::uint32_t u32() noexcept {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v = (v << 8) | static_cast<std::uint32_t>(bytes_[at_ + i]);
    }
    at_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() noexcept {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<std::uint64_t>(bytes_[at_ + i]);
    }
    at_ += 8;
    return v;
  }

  /// View of the next n bytes (empty span + fail when short).
  [[nodiscard]] std::span<const std::uint8_t> view(std::size_t n) noexcept {
    if (!take(n)) return {};
    const auto s = bytes_.subspan(at_, n);
    at_ += n;
    return s;
  }

  /// Copy the next dst.size() bytes out.
  bool bytes(std::span<std::uint8_t> dst) noexcept {
    return copy_bytes(dst, view(dst.size()));
  }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || n > bytes_.size() - at_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

/// Sticky-fail big-endian writer over a caller-sized mutable span.
class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::uint8_t> out) noexcept : out_(out) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// In-bounds AND every byte of the span written — serializers assert
  /// this to catch layout/size drift.
  [[nodiscard]] bool done() const noexcept { return ok_ && at_ == out_.size(); }
  [[nodiscard]] std::size_t written() const noexcept { return at_; }

  void u8(std::uint8_t v) noexcept {
    if (!take(1)) return;
    out_[at_++] = v;
  }

  void u16(std::uint16_t v) noexcept {
    if (!take(2)) return;
    out_[at_++] = static_cast<std::uint8_t>(v >> 8);
    out_[at_++] = static_cast<std::uint8_t>(v);
  }

  void u32(std::uint32_t v) noexcept {
    if (!take(4)) return;
    for (int i = 3; i >= 0; --i) {
      out_[at_++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  void u64(std::uint64_t v) noexcept {
    if (!take(8)) return;
    for (int i = 7; i >= 0; --i) {
      out_[at_++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }

  void bytes(std::span<const std::uint8_t> src) noexcept {
    if (!take(src.size())) return;
    copy_bytes(out_.subspan(at_, src.size()), src);
    at_ += src.size();
  }

 private:
  bool take(std::size_t n) noexcept {
    if (!ok_ || n > out_.size() - at_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<std::uint8_t> out_;
  std::size_t at_ = 0;
  bool ok_ = true;
};

}  // namespace ncfn::coding
