// Source-side generation: the unit of coding (Fig. 3 of the paper).
//
// The application's byte stream is split into generations; each generation
// into `generation_blocks` blocks of `block_size` bytes. A short trailing
// generation is zero-padded (the application protocol carries the true
// length out of band, here in the session manifest).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/types.hpp"

namespace ncfn::coding {

/// Holds the original (uncoded) blocks of one generation at the source.
class Generation {
 public:
  /// Build from raw bytes; pads the tail with zeros up to a whole number
  /// of blocks. `data.size()` must be in (0, params.generation_bytes()].
  Generation(GenerationId id, std::span<const std::uint8_t> data,
             const CodingParams& params);

  [[nodiscard]] GenerationId id() const { return id_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t block_size() const { return block_size_; }
  /// Number of meaningful (unpadded) bytes in this generation.
  [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }

  [[nodiscard]] std::span<const std::uint8_t> block(std::size_t i) const {
    return blocks_.at(i);
  }

 private:
  GenerationId id_;
  std::size_t block_size_;
  std::size_t payload_bytes_;
  std::vector<std::vector<std::uint8_t>> blocks_;
};

/// Split a byte stream into generations, numbered from `first_id`.
[[nodiscard]] std::vector<Generation> split_into_generations(
    std::span<const std::uint8_t> data, const CodingParams& params,
    GenerationId first_id = 0);

}  // namespace ncfn::coding
