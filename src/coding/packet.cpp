#include "coding/packet.hpp"

#include <algorithm>
#include <cassert>

#include "coding/byteview.hpp"

namespace ncfn::coding {

void CodedPacket::acquire(std::size_t g, std::size_t payload_bytes,
                          const PacketPool& pool) {
  buf_ = pool.acquire(g + payload_bytes);
  g_ = static_cast<std::uint32_t>(g);
}

CodedPacket CodedPacket::make(SessionId session, GenerationId generation,
                              std::span<const std::uint8_t> coeffs,
                              std::span<const std::uint8_t> payload,
                              const PacketPool& pool) {
  CodedPacket pkt;
  pkt.session = session;
  pkt.generation = generation;
  pkt.acquire(coeffs.size(), payload.size(), pool);
  std::ranges::copy(coeffs, pkt.coeffs().begin());
  std::ranges::copy(payload, pkt.payload().begin());
  return pkt;
}

std::vector<std::uint8_t> CodedPacket::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(out);
  return out;
}

void CodedPacket::serialize_into(std::vector<std::uint8_t>& out) const {
  out.resize(wire_size());
  ByteWriter w(out);
  w.u32(session);
  w.u32(generation);
  // Coeffs + payload are contiguous: one copy covers both.
  w.bytes(buf_.span());
  assert(w.done());
}

std::optional<CodedPacket> CodedPacket::parse(
    std::span<const std::uint8_t> wire, const CodingParams& params,
    const PacketPool& pool) {
  if (wire.size() != params.packet_bytes()) return std::nullopt;
  ByteView v(wire);
  CodedPacket pkt;
  pkt.session = v.u32();
  pkt.generation = v.u32();
  pkt.acquire(params.generation_blocks, params.block_size, pool);
  if (!v.bytes(pkt.buf_.span()) || !v.done()) return std::nullopt;
  return pkt;
}

std::optional<std::size_t> CodedPacket::systematic_index() const {
  std::optional<std::size_t> idx;
  const auto cs = coeffs();
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (cs[i] == 0) continue;
    if (cs[i] != 1 || idx.has_value()) return std::nullopt;
    idx = i;
  }
  return idx;
}

}  // namespace ncfn::coding
