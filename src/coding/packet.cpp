#include "coding/packet.hpp"

namespace ncfn::coding {

namespace {
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}
}  // namespace

std::vector<std::uint8_t> CodedPacket::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  put_u32(out, session);
  put_u32(out, generation);
  out.insert(out.end(), coeffs.begin(), coeffs.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<CodedPacket> CodedPacket::parse(
    std::span<const std::uint8_t> wire, const CodingParams& params) {
  if (wire.size() != params.packet_bytes()) return std::nullopt;
  CodedPacket pkt;
  pkt.session = get_u32(wire, 0);
  pkt.generation = get_u32(wire, 4);
  const std::size_t g = params.generation_blocks;
  pkt.coeffs.assign(wire.begin() + 8, wire.begin() + 8 + g);
  pkt.payload.assign(wire.begin() + 8 + g, wire.end());
  return pkt;
}

std::optional<std::size_t> CodedPacket::systematic_index() const {
  std::optional<std::size_t> idx;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    if (coeffs[i] == 0) continue;
    if (coeffs[i] != 1 || idx.has_value()) return std::nullopt;
    idx = i;
  }
  return idx;
}

}  // namespace ncfn::coding
