#include "coding/packet.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ncfn::coding {

namespace {
void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}
std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}
}  // namespace

void CodedPacket::acquire(std::size_t g, std::size_t payload_bytes,
                          const PacketPool& pool) {
  buf_ = pool.acquire(g + payload_bytes);
  g_ = static_cast<std::uint32_t>(g);
}

CodedPacket CodedPacket::make(SessionId session, GenerationId generation,
                              std::span<const std::uint8_t> coeffs,
                              std::span<const std::uint8_t> payload,
                              const PacketPool& pool) {
  CodedPacket pkt;
  pkt.session = session;
  pkt.generation = generation;
  pkt.acquire(coeffs.size(), payload.size(), pool);
  std::ranges::copy(coeffs, pkt.coeffs().begin());
  std::ranges::copy(payload, pkt.payload().begin());
  return pkt;
}

std::vector<std::uint8_t> CodedPacket::serialize() const {
  std::vector<std::uint8_t> out;
  serialize_into(out);
  return out;
}

void CodedPacket::serialize_into(std::vector<std::uint8_t>& out) const {
  out.resize(wire_size());
  put_u32(out.data(), session);
  put_u32(out.data() + 4, generation);
  // Coeffs + payload are contiguous: one copy covers both.
  if (!buf_.empty()) std::memcpy(out.data() + 8, buf_.data(), buf_.size());
}

std::optional<CodedPacket> CodedPacket::parse(
    std::span<const std::uint8_t> wire, const CodingParams& params,
    const PacketPool& pool) {
  if (wire.size() != params.packet_bytes()) return std::nullopt;
  CodedPacket pkt;
  pkt.session = get_u32(wire, 0);
  pkt.generation = get_u32(wire, 4);
  pkt.acquire(params.generation_blocks, params.block_size, pool);
  std::memcpy(pkt.buf_.data(), wire.data() + 8, wire.size() - 8);
  return pkt;
}

std::optional<std::size_t> CodedPacket::systematic_index() const {
  std::optional<std::size_t> idx;
  const auto cs = coeffs();
  for (std::size_t i = 0; i < cs.size(); ++i) {
    if (cs[i] == 0) continue;
    if (cs[i] != 1 || idx.has_value()) return std::nullopt;
    idx = i;
  }
  return idx;
}

}  // namespace ncfn::coding
