// Coded packet and NC header wire format.
//
// The paper introduces the network-coding layer between UDP and the
// application, with a header carrying session id, generation id and the
// encoding coefficient vector: "a total of 8 bytes plus the length of
// coefficients, which depends on the number of blocks in each generation".
//
// Wire layout (big-endian):
//   [0..3]  session id
//   [4..7]  generation id
//   [8..8+g)  g coefficient bytes (GF(2^8) elements)
//   [8+g..]   coded block payload
//
// In memory the coefficient vector and the payload live in ONE contiguous
// pool-recycled buffer ([coeffs | payload], the `row()` span). That makes
// a packet a single bulk-kernel operand: relay recoding and decoder row
// elimination apply one fused GF op across coefficients and payload
// instead of two, serialization is one memcpy, and the steady-state data
// plane allocates nothing per packet (see pool.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/pool.hpp"
#include "coding/types.hpp"

namespace ncfn::coding {

/// One coded block: a linear combination of the blocks of one generation,
/// tagged with the combination's coefficient vector.
struct CodedPacket {
  SessionId session = 0;
  GenerationId generation = 0;

  CodedPacket() = default;

  /// Allocate zero-filled storage for `g` coefficients plus
  /// `payload_bytes` of payload, drawn from `pool` (heap when null).
  void acquire(std::size_t g, std::size_t payload_bytes,
               const PacketPool& pool = {});

  /// Convenience constructor (tests, systematic emitters): storage sized
  /// and filled from the given coefficient vector and payload.
  [[nodiscard]] static CodedPacket make(SessionId session,
                                        GenerationId generation,
                                        std::span<const std::uint8_t> coeffs,
                                        std::span<const std::uint8_t> payload,
                                        const PacketPool& pool = {});

  [[nodiscard]] std::size_t coeff_count() const noexcept { return g_; }
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return buf_.size() - g_;
  }

  [[nodiscard]] std::span<std::uint8_t> coeffs() noexcept {
    return buf_.span().subspan(0, g_);
  }
  [[nodiscard]] std::span<const std::uint8_t> coeffs() const noexcept {
    return buf_.span().subspan(0, g_);
  }
  [[nodiscard]] std::span<std::uint8_t> payload() noexcept {
    return buf_.span().subspan(g_);
  }
  [[nodiscard]] std::span<const std::uint8_t> payload() const noexcept {
    return buf_.span().subspan(g_);
  }
  /// The whole contiguous [coeffs | payload] region — one GF bulk-kernel
  /// operand (linear ops act identically on both halves).
  [[nodiscard]] std::span<std::uint8_t> row() noexcept { return buf_.span(); }
  [[nodiscard]] std::span<const std::uint8_t> row() const noexcept {
    return buf_.span();
  }

  /// Serialize header + coeffs + payload to the UDP wire format.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Same, into a caller-provided buffer (cleared first). With a recycled
  /// buffer of sufficient capacity this allocates nothing.
  void serialize_into(std::vector<std::uint8_t>& out) const;

  /// Parse a datagram. Returns std::nullopt if the datagram is malformed
  /// (wrong size for the session's coding parameters). Storage comes from
  /// `pool` when one is given.
  [[nodiscard]] static std::optional<CodedPacket> parse(
      std::span<const std::uint8_t> wire, const CodingParams& params,
      const PacketPool& pool = {});

  /// Wire size of this packet.
  [[nodiscard]] std::size_t wire_size() const { return 8 + buf_.size(); }

  /// True if the coefficient vector is a unit vector (systematic packet
  /// carrying original block `i`); returns the index if so.
  [[nodiscard]] std::optional<std::size_t> systematic_index() const;

 private:
  PooledBuf buf_;           // [coeffs | payload], pool-recycled
  std::uint32_t g_ = 0;     // split point: number of coefficients
};

}  // namespace ncfn::coding
