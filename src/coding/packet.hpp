// Coded packet and NC header wire format.
//
// The paper introduces the network-coding layer between UDP and the
// application, with a header carrying session id, generation id and the
// encoding coefficient vector: "a total of 8 bytes plus the length of
// coefficients, which depends on the number of blocks in each generation".
//
// Wire layout (big-endian):
//   [0..3]  session id
//   [4..7]  generation id
//   [8..8+g)  g coefficient bytes (GF(2^8) elements)
//   [8+g..]   coded block payload
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/types.hpp"

namespace ncfn::coding {

/// One coded block: a linear combination of the blocks of one generation,
/// tagged with the combination's coefficient vector.
struct CodedPacket {
  SessionId session = 0;
  GenerationId generation = 0;
  std::vector<std::uint8_t> coeffs;   // length = blocks per generation
  std::vector<std::uint8_t> payload;  // length = block size

  /// Serialize header + payload to the UDP wire format.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse a datagram. Returns std::nullopt if the datagram is malformed
  /// (wrong size for the session's coding parameters).
  [[nodiscard]] static std::optional<CodedPacket> parse(
      std::span<const std::uint8_t> wire, const CodingParams& params);

  /// Wire size of this packet.
  [[nodiscard]] std::size_t wire_size() const {
    return 8 + coeffs.size() + payload.size();
  }

  /// True if the coefficient vector is a unit vector (systematic packet
  /// carrying original block `i`); returns the index if so.
  [[nodiscard]] std::optional<std::size_t> systematic_index() const;
};

}  // namespace ncfn::coding
