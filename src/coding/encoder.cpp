#include "coding/encoder.hpp"

#include <algorithm>
#include <cassert>

#include "coding/rng_fill.hpp"
#include "gf/gf256.hpp"

namespace ncfn::coding {

CodedPacket Encoder::encode_random() {
  const std::size_t g = generation_->block_count();
  CodedPacket pkt;
  pkt.session = session_;
  pkt.generation = generation_->id();
  pkt.acquire(g, generation_->block_size(), pool_);
  const auto cs = pkt.coeffs();
  do {
    detail::fill_random_bytes(cs, *rng_);
  } while (std::all_of(cs.begin(), cs.end(),
                       [](std::uint8_t c) { return c == 0; }));
  encode_payload(pkt);
  return pkt;
}

void Encoder::encode_random_batch(std::size_t k, PacketBatch& out) {
  const std::size_t g = generation_->block_count();
  assert(k <= out.room());
  assert(g <= 256);
  if (k == 0) return;
  // One coefficient block for the whole batch (see Decoder::recode_batch
  // for the g % 4 draw-order note); an all-zero row redraws just its own
  // slice, mirroring encode_random()'s rejection loop.
  std::uint8_t coeffs[kBatchCapacity * 256];
  const std::span<std::uint8_t> block(coeffs, k * g);
  if (g % 4 == 0) {
    detail::fill_random_bytes(block, *rng_);
  } else {
    for (std::size_t j = 0; j < k; ++j) {
      detail::fill_random_bytes(block.subspan(j * g, g), *rng_);
    }
  }
  for (std::size_t j = 0; j < k; ++j) {
    const auto cs = block.subspan(j * g, g);
    while (std::all_of(cs.begin(), cs.end(),
                       [](std::uint8_t c) { return c == 0; })) {
      detail::fill_random_bytes(cs, *rng_);
    }
    CodedPacket& pkt = out.emplace(g, generation_->block_size(), pool_);
    pkt.session = session_;
    pkt.generation = generation_->id();
    std::ranges::copy(cs, pkt.coeffs().begin());
    encode_payload(pkt);
  }
}

CodedPacket Encoder::encode_systematic(std::size_t i) {
  const std::size_t g = generation_->block_count();
  assert(i < g);
  CodedPacket pkt;
  pkt.session = session_;
  pkt.generation = generation_->id();
  pkt.acquire(g, generation_->block_size(), pool_);
  pkt.coeffs()[i] = 1;
  std::ranges::copy(generation_->block(i), pkt.payload().begin());
  return pkt;
}

CodedPacket Encoder::encode_with(
    std::span<const std::uint8_t> coeffs) const {
  const std::size_t g = generation_->block_count();
  assert(coeffs.size() == g);
  CodedPacket pkt;
  pkt.session = session_;
  pkt.generation = generation_->id();
  pkt.acquire(g, generation_->block_size(), pool_);
  std::ranges::copy(coeffs, pkt.coeffs().begin());
  encode_payload(pkt);
  return pkt;
}

void Encoder::encode_payload(CodedPacket& pkt) const {
  const auto dst = pkt.payload();
  const auto cs = pkt.coeffs();
  const std::size_t g = cs.size();
  std::size_t i = 0;
  for (; i + 4 <= g; i += 4) {
    const std::uint8_t* src[4] = {
        generation_->block(i).data(), generation_->block(i + 1).data(),
        generation_->block(i + 2).data(), generation_->block(i + 3).data()};
    const std::uint8_t c4[4] = {cs[i], cs[i + 1], cs[i + 2], cs[i + 3]};
    gf::bulk_muladd_x4(dst, src, c4);
  }
  for (; i < g; ++i) gf::bulk_muladd(dst, generation_->block(i), cs[i]);
}

}  // namespace ncfn::coding
