#include "coding/encoder.hpp"

#include <algorithm>
#include <cassert>

#include "gf/gf256.hpp"

namespace ncfn::coding {

CodedPacket Encoder::encode_random() {
  const std::size_t g = generation_->block_count();
  std::uniform_int_distribution<int> dist(0, gf::kFieldSize - 1);
  std::vector<std::uint8_t> coeffs(g);
  do {
    for (auto& c : coeffs) c = static_cast<std::uint8_t>(dist(*rng_));
  } while (std::all_of(coeffs.begin(), coeffs.end(),
                       [](std::uint8_t c) { return c == 0; }));
  return encode_with(coeffs);
}

CodedPacket Encoder::encode_systematic(std::size_t i) {
  const std::size_t g = generation_->block_count();
  assert(i < g);
  std::vector<std::uint8_t> coeffs(g, 0);
  coeffs[i] = 1;
  return encode_with(coeffs);
}

CodedPacket Encoder::encode_with(
    std::span<const std::uint8_t> coeffs) const {
  const std::size_t g = generation_->block_count();
  assert(coeffs.size() == g);
  CodedPacket pkt;
  pkt.session = session_;
  pkt.generation = generation_->id();
  pkt.coeffs.assign(coeffs.begin(), coeffs.end());
  pkt.payload.assign(generation_->block_size(), 0);
  for (std::size_t i = 0; i < g; ++i) {
    gf::bulk_muladd(pkt.payload, generation_->block(i), coeffs[i]);
  }
  return pkt;
}

}  // namespace ncfn::coding
