// FIFO generation buffer for coding functions (Sec. III.B.2).
//
// "A newly arriving packet is stored based on its session ID and
// generation ID ... We employ a FIFO buffer management strategy that
// discards the oldest packets once the buffer is full."  The buffer holds
// up to `buffer_generations` generations *per session* (the paper settles
// on 1024 per session, Fig. 5); when a session exceeds its budget the
// oldest generation's state is evicted wholesale.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "coding/decoder.hpp"
#include "coding/pool.hpp"
#include "coding/types.hpp"

namespace ncfn::coding {

class GenerationBuffer {
 public:
  explicit GenerationBuffer(const CodingParams& params)
      : params_(params), pool_(PacketPool::make()) {}

  /// Decoder state for (session, generation), creating it (and possibly
  /// evicting the session's oldest generation) if absent.
  Decoder& state(SessionId session, GenerationId generation);

  /// Existing state or nullptr; never creates.
  [[nodiscard]] Decoder* find(SessionId session, GenerationId generation);

  /// Drop one generation's state (e.g., after the decoder delivered it).
  void erase(SessionId session, GenerationId generation);

  /// Drop everything belonging to a session (session teardown).
  void erase_session(SessionId session);

  [[nodiscard]] std::size_t generations_buffered() const { return states_.size(); }
  [[nodiscard]] std::size_t evictions() const { return evictions_; }
  [[nodiscard]] const CodingParams& params() const { return params_; }

  /// Shared packet pool: decoder rows and recoded/parsed packets for this
  /// buffer's sessions all recycle through here.
  [[nodiscard]] const PacketPool& pool() const { return pool_; }

  /// Attach observability: generation open/close/evict events, the shared
  /// coding counters (threaded into every decoder) and this buffer's
  /// occupancy gauge, namespaced by the hosting node. nullptr detaches
  /// for decoders created from then on.
  void set_obs(obs::Observability* obs, std::uint32_t node);

 private:
  struct Key {
    SessionId session;
    GenerationId generation;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.session) << 32) | k.generation);
    }
  };

  CodingParams params_;
  PacketPool pool_;
  CodingObs obs_handles_;  // decoders hold a pointer to this
  bool has_obs_ = false;
  obs::Gauge* m_buffered_ = nullptr;
  std::unordered_map<Key, std::unique_ptr<Decoder>, KeyHash> states_;
  std::unordered_map<SessionId, std::deque<GenerationId>> fifo_;  // per-session arrival order
  std::size_t evictions_ = 0;
};

}  // namespace ncfn::coding
