#include "coding/generation.hpp"

#include <algorithm>
#include <cassert>

namespace ncfn::coding {

Generation::Generation(GenerationId id, std::span<const std::uint8_t> data,
                       const CodingParams& params)
    : id_(id), block_size_(params.block_size), payload_bytes_(data.size()) {
  assert(!data.empty());
  assert(data.size() <= params.generation_bytes());
  blocks_.resize(params.generation_blocks);
  std::size_t off = 0;
  for (auto& blk : blocks_) {
    blk.assign(block_size_, 0);
    if (off < data.size()) {
      const std::size_t n = std::min(block_size_, data.size() - off);
      std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(off), n,
                  blk.begin());
      off += n;
    }
  }
}

std::vector<Generation> split_into_generations(
    std::span<const std::uint8_t> data, const CodingParams& params,
    GenerationId first_id) {
  std::vector<Generation> out;
  const std::size_t gen_bytes = params.generation_bytes();
  out.reserve((data.size() + gen_bytes - 1) / gen_bytes);
  GenerationId id = first_id;
  for (std::size_t off = 0; off < data.size(); off += gen_bytes) {
    const std::size_t n = std::min(gen_bytes, data.size() - off);
    out.emplace_back(id++, data.subspan(off, n), params);
  }
  return out;
}

}  // namespace ncfn::coding
