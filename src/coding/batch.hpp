// Fixed-capacity packet vector — the unit of work of the batched data
// plane (the BESS PacketBatch idiom).
//
// Per-packet processing pays its fixed costs — header parses, map
// lookups, RNG draws, simulator events, counter updates — once per
// packet. A PacketBatch carries up to kBatchCapacity CodedPackets through
// a processing stage at a time so those costs amortize across the vector:
// a VNF lane drains one batch per service event, the recoder emits k
// packets from one coefficient-matrix sweep, and a link moves a burst
// with one departure and one delivery event.
//
// The batch owns its packets (each row is a pooled [coeffs | payload]
// buffer; see pool.hpp): clearing or destroying a batch returns every row
// to its pool, so a partially-filled batch can never leak rows — the
// NCFN_AUDIT teardown check and the `batch`-labelled tests assert this.
// Slots also carry one metadata byte for pipeline stages to annotate
// packets in flight (innovative / first-of-generation / completed flags);
// push() zeroes the slot's metadata so stale annotations never survive
// recycling.
//
// Capacity is 32, matching BESS's batch size: large enough to amortize
// per-batch costs to noise, small enough that a batch of MTU-sized rows
// stays L2-resident while a stage walks it.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <span>

#include "coding/packet.hpp"
#include "coding/pool.hpp"

namespace ncfn::coding {

inline constexpr std::size_t kBatchCapacity = 32;

class PacketBatch {
 public:
  PacketBatch() = default;
  PacketBatch(PacketBatch&&) = default;
  PacketBatch& operator=(PacketBatch&&) = default;
  PacketBatch(const PacketBatch&) = delete;
  PacketBatch& operator=(const PacketBatch&) = delete;

  [[nodiscard]] static constexpr std::size_t capacity() {
    return kBatchCapacity;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] bool full() const noexcept { return n_ == kBatchCapacity; }
  [[nodiscard]] std::size_t room() const noexcept {
    return kBatchCapacity - n_;
  }

  /// Append a packet. Precondition: !full().
  void push(CodedPacket&& pkt) {
    assert(!full());
    slots_[n_] = std::move(pkt);
    meta_[n_] = 0;
    ++n_;
  }

  /// Append a fresh zero-filled row acquired from `pool` (heap when null)
  /// and return it for in-place filling. Precondition: !full().
  CodedPacket& emplace(std::size_t g, std::size_t payload_bytes,
                       const PacketPool& pool = {}) {
    assert(!full());
    CodedPacket& slot = slots_[n_];
    slot = CodedPacket{};
    slot.acquire(g, payload_bytes, pool);
    meta_[n_] = 0;
    ++n_;
    return slot;
  }

  [[nodiscard]] CodedPacket& operator[](std::size_t i) {
    assert(i < n_);
    return slots_[i];
  }
  [[nodiscard]] const CodedPacket& operator[](std::size_t i) const {
    assert(i < n_);
    return slots_[i];
  }

  /// Per-packet metadata byte for pipeline stages (zeroed by push /
  /// emplace; meaning is defined by the pipeline that owns the batch).
  [[nodiscard]] std::uint8_t& meta(std::size_t i) {
    assert(i < n_);
    return meta_[i];
  }
  [[nodiscard]] std::uint8_t meta(std::size_t i) const {
    assert(i < n_);
    return meta_[i];
  }

  [[nodiscard]] std::span<CodedPacket> packets() noexcept {
    return {slots_.data(), n_};
  }
  [[nodiscard]] std::span<const CodedPacket> packets() const noexcept {
    return {slots_.data(), n_};
  }

  /// Release every row back to its pool and empty the batch.
  void clear() {
    for (std::size_t i = 0; i < n_; ++i) slots_[i] = CodedPacket{};
    n_ = 0;
  }

  /// Partial flush: release the first `k` packets and slide the rest to
  /// the front, preserving arrival order.
  void drop_front(std::size_t k) {
    assert(k <= n_);
    if (k == 0) return;
    for (std::size_t i = k; i < n_; ++i) {
      slots_[i - k] = std::move(slots_[i]);
      meta_[i - k] = meta_[i];
    }
    for (std::size_t i = n_ - k; i < n_; ++i) slots_[i] = CodedPacket{};
    n_ -= k;
  }

 private:
  std::array<CodedPacket, kBatchCapacity> slots_;
  std::array<std::uint8_t, kBatchCapacity> meta_{};
  std::size_t n_ = 0;
};

}  // namespace ncfn::coding
