// Incremental Gaussian-elimination decoder for one generation, which also
// serves as the relay-side recoding state.
//
// A destination can recover the generation "as long as [it receives a]
// sufficient number of [linearly independent] packets" (Sec. III.B.1); an
// intermediate VNF "generates an encoded packet immediately after it
// receives a packet from the same session and generation" (pipelined
// recoding, Sec. III.B.2) — both operate on the row space maintained here.
//
// Each stored row is one contiguous pooled [coeffs | payload] buffer
// (a CodedPacket), so every elimination step is a single fused GF bulk op
// across coefficients and payload, and recoding accumulates pivot rows
// four at a time through the fused multi-row kernel. With a live pool the
// steady state (add-eliminate-recode) performs no heap allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "coding/batch.hpp"
#include "coding/packet.hpp"
#include "coding/pool.hpp"
#include "coding/types.hpp"
#include "obs/obs.hpp"

namespace ncfn::coding {

/// Pre-resolved observability handles for the coding hot path. One
/// instance per GenerationBuffer (i.e. per coding function); all its
/// decoders share it, so add()/recode() never look anything up — each
/// instrumentation site is one pointer check plus counter increments.
struct CodingObs {
  obs::EventTrace* trace = nullptr;
  obs::Counter* packets_seen = nullptr;
  obs::Counter* packets_innovative = nullptr;
  obs::Counter* generations_decoded = nullptr;
  obs::Counter* recode_ops = nullptr;
  std::uint32_t node = 0;  // simulator node hosting this coding function

  /// Resolve the shared coding counters in `obs` for node `node`.
  [[nodiscard]] static CodingObs bind(obs::Observability& obs,
                                      std::uint32_t node);
};

class Decoder {
 public:
  Decoder(SessionId session, GenerationId generation,
          const CodingParams& params, PacketPool pool = {});

  /// Fold one coded packet into the decoding matrix.
  /// Returns true iff the packet was innovative (increased the rank).
  bool add(const CodedPacket& pkt);

  [[nodiscard]] SessionId session() const { return session_; }
  [[nodiscard]] GenerationId generation() const { return generation_; }
  [[nodiscard]] std::size_t rank() const { return rank_; }
  /// True if the decoding matrix has a pivot at column c. For systematic
  /// traffic this is exactly "original block c has been received".
  [[nodiscard]] bool has_pivot(std::size_t c) const {
    return pivots_.at(c).has_value();
  }
  [[nodiscard]] std::size_t block_count() const { return g_; }
  [[nodiscard]] bool complete() const { return rank_ == g_; }

  /// Total packets offered to add(), and how many were innovative.
  [[nodiscard]] std::size_t packets_seen() const { return seen_; }
  [[nodiscard]] std::size_t packets_innovative() const { return rank_; }

  /// Produce a fresh random linear combination of everything received so
  /// far (relay recoding). Precondition: rank() >= 1.
  [[nodiscard]] CodedPacket recode(std::mt19937& rng) const;

  /// Batched recoding: append `k` fresh random combinations to `out`
  /// (k <= out.room()). One call draws the whole k x g coefficient block
  /// from `rng` and walks the stored pivot set once, so the RNG, the
  /// present-pivot scan and the obs updates amortize across the batch;
  /// the byte stream drawn from `rng` is identical to k successive
  /// recode() calls. Precondition: rank() >= 1.
  void recode_batch(std::mt19937& rng, std::size_t k, PacketBatch& out) const;

  /// Tests only: disable the systematic (identity-coefficient) ingest
  /// fast path so differential suites can compare it against the general
  /// elimination path.
  void set_systematic_fastpath(bool on) { systematic_fastpath_ = on; }

  /// Recover the original blocks. Precondition: complete().
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> recover() const;

  /// Attach observability handles (owned by the enclosing buffer and
  /// outliving this decoder); nullptr detaches.
  void set_obs(const CodingObs* obs) { obs_ = obs; }

 private:
  /// Adopt `row` as the pivot for column `c` and account the rank gain.
  void install_pivot(CodedPacket&& row, std::size_t c);

  SessionId session_;
  GenerationId generation_;
  std::size_t g_;
  std::size_t block_size_;
  std::size_t rank_ = 0;
  std::size_t seen_ = 0;
  PacketPool pool_;
  const CodingObs* obs_ = nullptr;
  bool systematic_fastpath_ = true;
  // pivots_[c]: contiguous [coeffs | payload] row with leading 1 at column c
  std::vector<std::optional<CodedPacket>> pivots_;
};

}  // namespace ncfn::coding
