// Checked numeric parsing for untrusted text — the one approved home of
// string→number conversion.
//
// The control plane exchanges text frames (NC_* signals, forwarding
// tables, scenario files) whose numeric fields are attacker-shaped. The
// std::stoul/std::stod family throws on malformed input and silently
// accepts trailing garbage ("12abc" → 12), and the strtol/atoi family
// reports errors through errno or not at all — both are exactly the
// wrong contract for a parser that must be a total function. parse_num<T>
// wraps std::from_chars with the strict contract every text parser in
// this repo relies on:
//
//   * never throws, never touches errno;
//   * the WHOLE token must be consumed — trailing garbage rejects;
//   * out-of-range values reject (no wrap, no truncation, no inf);
//   * no leading whitespace, no '+', no hex/octal auto-detection;
//   * floating-point accepts only finite decimal values.
//
// ncfn-lint enforces the funnel: rule `throwing-numparse` bans
// std::sto* / atoi / strtol outside this header, so new parsing code has
// to route through parse_num or carry a justified per-line allow().
#pragma once

#include <charconv>
#include <cmath>
#include <optional>
#include <string_view>
#include <type_traits>

namespace ncfn::coding {

/// Parse the entire token `s` as a value of arithmetic type T.
/// Returns std::nullopt on empty input, trailing garbage, sign/base
/// prefixes from_chars rejects, out-of-range values, and (for floating
/// point) non-finite results. Never throws.
template <typename T>
[[nodiscard]] std::optional<T> parse_num(std::string_view s) noexcept {
  static_assert(std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                "parse_num parses arithmetic types only");
  if (s.empty()) return std::nullopt;
  T value{};
  std::from_chars_result r{};
  if constexpr (std::is_floating_point_v<T>) {
    r = std::from_chars(s.data(), s.data() + s.size(), value,
                        std::chars_format::general);
  } else {
    r = std::from_chars(s.data(), s.data() + s.size(), value);
  }
  if (r.ec != std::errc{} || r.ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  if constexpr (std::is_floating_point_v<T>) {
    if (!std::isfinite(value)) return std::nullopt;
  }
  return value;
}

}  // namespace ncfn::coding
