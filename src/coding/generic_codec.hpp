// Field-parameterized mini-codec used by the field-size ablation bench
// (the paper fixes GF(2^8) citing prior measurements that it maximizes
// throughput; this codec lets the bench re-derive that comparison for
// GF(2^4), GF(2^8) and GF(2^16)).
//
// The production data plane uses the concrete GF(2^8) Encoder/Decoder in
// encoder.hpp/decoder.hpp; this template exists only to measure how coding
// throughput varies with field size, so it trades a little speed for
// genericity.
#pragma once

#include <cassert>
#include <random>
#include <vector>

#include "gf/gf_generic.hpp"

namespace ncfn::coding {

template <unsigned M>
struct GenericCoded {
  std::vector<typename gf::Field<M>::Elem> coeffs;
  std::vector<typename gf::Field<M>::Elem> payload;
};

template <unsigned M>
class GenericEncoder {
 public:
  using Elem = typename gf::Field<M>::Elem;

  GenericEncoder(const gf::Field<M>& field,
                 std::vector<std::vector<Elem>> blocks)
      : field_(&field), blocks_(std::move(blocks)) {
    assert(!blocks_.empty());
  }

  [[nodiscard]] GenericCoded<M> encode_random(std::mt19937& rng) const {
    std::uniform_int_distribution<unsigned> dist(0, gf::Field<M>::kMax);
    GenericCoded<M> out;
    out.coeffs.assign(blocks_.size(), 0);
    out.payload.assign(blocks_.front().size(), 0);
    bool any = false;
    while (!any) {
      for (auto& c : out.coeffs) {
        c = static_cast<Elem>(dist(rng));
        any = any || c != 0;
      }
    }
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      field_->bulk_muladd(std::span<Elem>(out.payload),
                          std::span<const Elem>(blocks_[i]), out.coeffs[i]);
    }
    return out;
  }

 private:
  const gf::Field<M>* field_;
  std::vector<std::vector<Elem>> blocks_;
};

template <unsigned M>
class GenericDecoder {
 public:
  using Elem = typename gf::Field<M>::Elem;

  GenericDecoder(const gf::Field<M>& field, std::size_t blocks,
                 std::size_t block_elems)
      : field_(&field), g_(blocks), block_elems_(block_elems), pivots_(g_) {}

  bool add(GenericCoded<M> pkt) {
    assert(pkt.coeffs.size() == g_ && pkt.payload.size() == block_elems_);
    for (std::size_t c = 0; c < g_; ++c) {
      const Elem lead = pkt.coeffs[c];
      if (lead == 0) continue;
      if (pivots_[c].has) {
        field_->bulk_muladd(std::span<Elem>(pkt.coeffs),
                            std::span<const Elem>(pivots_[c].coeffs), lead);
        field_->bulk_muladd(std::span<Elem>(pkt.payload),
                            std::span<const Elem>(pivots_[c].payload), lead);
        continue;
      }
      if (lead != 1) {
        const Elem s = field_->inv(lead);
        scale(pkt.coeffs, s);
        scale(pkt.payload, s);
      }
      pivots_[c].has = true;
      pivots_[c].coeffs = std::move(pkt.coeffs);
      pivots_[c].payload = std::move(pkt.payload);
      ++rank_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] bool complete() const { return rank_ == g_; }

  /// Back-substitute and return the recovered blocks.
  [[nodiscard]] std::vector<std::vector<Elem>> recover() const {
    assert(complete());
    std::vector<std::vector<Elem>> coeffs(g_), payload(g_);
    for (std::size_t c = 0; c < g_; ++c) {
      coeffs[c] = pivots_[c].coeffs;
      payload[c] = pivots_[c].payload;
    }
    for (std::size_t c = g_; c-- > 0;) {
      for (std::size_t r = 0; r < c; ++r) {
        const Elem f = coeffs[r][c];
        if (f == 0) continue;
        field_->bulk_muladd(std::span<Elem>(coeffs[r]),
                            std::span<const Elem>(coeffs[c]), f);
        field_->bulk_muladd(std::span<Elem>(payload[r]),
                            std::span<const Elem>(payload[c]), f);
      }
    }
    return payload;
  }

 private:
  struct Row {
    bool has = false;
    std::vector<Elem> coeffs;
    std::vector<Elem> payload;
  };

  void scale(std::vector<Elem>& v, Elem s) const {
    for (auto& e : v) e = field_->mul(e, s);
  }

  const gf::Field<M>* field_;
  std::size_t g_;
  std::size_t block_elems_;
  std::size_t rank_ = 0;
  std::vector<Row> pivots_;
};

}  // namespace ncfn::coding
