#include "coding/decoder.hpp"

#include <algorithm>
#include <cassert>

#include "coding/byteview.hpp"
#include "coding/rng_fill.hpp"
#include "gf/gf256.hpp"

namespace ncfn::coding {

CodingObs CodingObs::bind(obs::Observability& obs, std::uint32_t node) {
  CodingObs o;
  o.trace = &obs.trace;
  o.packets_seen = &obs.metrics.counter("coding.packets_seen");
  o.packets_innovative = &obs.metrics.counter("coding.packets_innovative");
  o.generations_decoded = &obs.metrics.counter("coding.generations_decoded");
  o.recode_ops = &obs.metrics.counter("coding.recode_ops");
  o.node = node;
  return o;
}

Decoder::Decoder(SessionId session, GenerationId generation,
                 const CodingParams& params, PacketPool pool)
    : session_(session),
      generation_(generation),
      g_(params.generation_blocks),
      block_size_(params.block_size),
      pool_(std::move(pool)),
      pivots_(g_) {}

bool Decoder::add(const CodedPacket& pkt) {
  assert(pkt.session == session_ && pkt.generation == generation_);
  assert(pkt.coeff_count() == g_ && pkt.payload_size() == block_size_);
  ++seen_;
  if (obs_ != nullptr) obs_->packets_seen->inc();
  if (complete()) return false;

  // Copy the arrival into a pooled working row; all elimination below is
  // fused over the contiguous [coeffs | payload] region.
  CodedPacket row;
  row.session = session_;
  row.generation = generation_;
  row.acquire(g_, block_size_, pool_);
  copy_bytes(row.row(), pkt.row());

  // Forward-eliminate against existing pivots.
  for (std::size_t c = 0; c < g_; ++c) {
    const std::uint8_t lead = row.coeffs()[c];
    if (lead == 0) continue;
    if (pivots_[c].has_value()) {
      gf::bulk_muladd(row.row(), pivots_[c]->row(), lead);
      continue;
    }
    // New pivot at column c: normalize leading coefficient to 1.
    if (lead != 1) gf::bulk_mul(row.row(), gf::inv(lead));
    pivots_[c] = std::move(row);
    ++rank_;
    if (obs_ != nullptr) {
      obs_->packets_innovative->inc();
      if (rank_ == g_) {
        obs_->generations_decoded->inc();
        obs_->trace->gen_decode(obs_->node, session_, generation_, seen_);
      }
    }
    return true;
  }
  return false;  // reduced to zero: linearly dependent
}

CodedPacket Decoder::recode(std::mt19937& rng) const {
  assert(rank_ >= 1);
  if (obs_ != nullptr) obs_->recode_ops->inc();
  CodedPacket out;
  out.session = session_;
  out.generation = generation_;
  out.acquire(g_, block_size_, pool_);
  // Draw one random weight per stored pivot; accumulate the weighted rows
  // four at a time with the fused kernel. Redraw if every weight for a
  // present pivot came out zero.
  std::uint8_t weights[256];
  assert(g_ <= sizeof(weights));
  for (;;) {
    detail::fill_random_bytes(std::span<std::uint8_t>(weights, g_), rng);
    bool any = false;
    for (std::size_t c = 0; c < g_; ++c) {
      if (pivots_[c].has_value() && weights[c] != 0) {
        any = true;
        break;
      }
    }
    if (any) break;
  }
  const std::uint8_t* src[4];
  std::uint8_t c4[4];
  int k = 0;
  for (std::size_t c = 0; c < g_; ++c) {
    if (!pivots_[c].has_value() || weights[c] == 0) continue;
    src[k] = pivots_[c]->row().data();
    c4[k] = weights[c];
    if (++k == 4) {
      gf::bulk_muladd_x4(out.row(), src, c4);
      k = 0;
    }
  }
  for (int j = 0; j < k; ++j) {
    gf::bulk_muladd(out.row(),
                    std::span<const std::uint8_t>(src[j], out.row().size()),
                    c4[j]);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Decoder::recover() const {
  assert(complete());
  // Back-substitution: walk pivots from the last column to the first,
  // eliminating above-diagonal coefficients. Working rows are pooled
  // copies; each elimination is one fused op over [coeffs | payload].
  std::vector<CodedPacket> rows(g_);
  for (std::size_t c = 0; c < g_; ++c) rows[c] = *pivots_[c];
  for (std::size_t c = g_; c-- > 0;) {
    for (std::size_t r = 0; r < c; ++r) {
      const std::uint8_t f = rows[r].coeffs()[c];
      if (f == 0) continue;
      gf::bulk_muladd(rows[r].row(), rows[c].row(), f);
    }
  }
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(g_);
  for (auto& row : rows) {
    blocks.emplace_back(row.payload().begin(), row.payload().end());
  }
  return blocks;
}

}  // namespace ncfn::coding
