#include "coding/decoder.hpp"

#include <algorithm>
#include <cassert>

#include "coding/byteview.hpp"
#include "coding/rng_fill.hpp"
#include "gf/gf256.hpp"

namespace ncfn::coding {

CodingObs CodingObs::bind(obs::Observability& obs, std::uint32_t node) {
  CodingObs o;
  o.trace = &obs.trace;
  o.packets_seen = &obs.metrics.counter("coding.packets_seen");
  o.packets_innovative = &obs.metrics.counter("coding.packets_innovative");
  o.generations_decoded = &obs.metrics.counter("coding.generations_decoded");
  o.recode_ops = &obs.metrics.counter("coding.recode_ops");
  o.node = node;
  return o;
}

Decoder::Decoder(SessionId session, GenerationId generation,
                 const CodingParams& params, PacketPool pool)
    : session_(session),
      generation_(generation),
      g_(params.generation_blocks),
      block_size_(params.block_size),
      pool_(std::move(pool)),
      pivots_(g_) {}

void Decoder::install_pivot(CodedPacket&& row, std::size_t c) {
  pivots_[c] = std::move(row);
  ++rank_;
  if (obs_ != nullptr) {
    obs_->packets_innovative->inc();
    if (rank_ == g_) {
      obs_->generations_decoded->inc();
      obs_->trace->gen_decode(obs_->node, session_, generation_, seen_);
    }
  }
}

bool Decoder::add(const CodedPacket& pkt) {
  assert(pkt.session == session_ && pkt.generation == generation_);
  assert(pkt.coeff_count() == g_ && pkt.payload_size() == block_size_);
  ++seen_;
  if (obs_ != nullptr) obs_->packets_seen->inc();
  if (complete()) return false;

  // Systematic fast path: an identity-coefficient arrival whose column
  // has no pivot yet is already a fully-reduced unit row (every
  // coefficient past the pivot is zero), so elimination cannot change it
  // — copy it straight into place. When the column is occupied the
  // general path below reduces it as usual.
  if (systematic_fastpath_) {
    if (const auto idx = pkt.systematic_index();
        idx.has_value() && !pivots_[*idx].has_value()) {
      CodedPacket row;
      row.session = session_;
      row.generation = generation_;
      row.acquire(g_, block_size_, pool_);
      copy_bytes(row.row(), pkt.row());
      install_pivot(std::move(row), *idx);
      return true;
    }
  }

  // Copy the arrival into a pooled working row; all elimination below is
  // fused over the contiguous [coeffs | payload] region.
  CodedPacket row;
  row.session = session_;
  row.generation = generation_;
  row.acquire(g_, block_size_, pool_);
  copy_bytes(row.row(), pkt.row());

  // Forward-eliminate against existing pivots.
  for (std::size_t c = 0; c < g_; ++c) {
    const std::uint8_t lead = row.coeffs()[c];
    if (lead == 0) continue;
    if (pivots_[c].has_value()) {
      gf::bulk_muladd(row.row(), pivots_[c]->row(), lead);
      continue;
    }
    // New pivot at column c: normalize leading coefficient to 1.
    if (lead != 1) gf::bulk_mul(row.row(), gf::inv(lead));
    install_pivot(std::move(row), c);
    return true;
  }
  return false;  // reduced to zero: linearly dependent
}

CodedPacket Decoder::recode(std::mt19937& rng) const {
  assert(rank_ >= 1);
  if (obs_ != nullptr) obs_->recode_ops->inc();
  CodedPacket out;
  out.session = session_;
  out.generation = generation_;
  out.acquire(g_, block_size_, pool_);
  // Draw one random weight per stored pivot; accumulate the weighted rows
  // four at a time with the fused kernel. Redraw if every weight for a
  // present pivot came out zero.
  std::uint8_t weights[256];
  assert(g_ <= sizeof(weights));
  for (;;) {
    detail::fill_random_bytes(std::span<std::uint8_t>(weights, g_), rng);
    bool any = false;
    for (std::size_t c = 0; c < g_; ++c) {
      if (pivots_[c].has_value() && weights[c] != 0) {
        any = true;
        break;
      }
    }
    if (any) break;
  }
  const std::uint8_t* src[4];
  std::uint8_t c4[4];
  int k = 0;
  for (std::size_t c = 0; c < g_; ++c) {
    if (!pivots_[c].has_value() || weights[c] == 0) continue;
    src[k] = pivots_[c]->row().data();
    c4[k] = weights[c];
    if (++k == 4) {
      gf::bulk_muladd_x4(out.row(), src, c4);
      k = 0;
    }
  }
  for (int j = 0; j < k; ++j) {
    gf::bulk_muladd(out.row(),
                    std::span<const std::uint8_t>(src[j], out.row().size()),
                    c4[j]);
  }
  return out;
}

void Decoder::recode_batch(std::mt19937& rng, std::size_t k,
                           PacketBatch& out) const {
  assert(rank_ >= 1);
  assert(k <= out.room());
  assert(g_ <= 256);
  if (k == 0) return;
  if (obs_ != nullptr) obs_->recode_ops->inc(k);

  // Scan the pivot set once per batch instead of once per output packet.
  const std::uint8_t* rows[256];
  std::uint16_t cols[256];
  std::size_t npiv = 0;
  for (std::size_t c = 0; c < g_; ++c) {
    if (pivots_[c].has_value()) {
      rows[npiv] = pivots_[c]->row().data();
      cols[npiv] = static_cast<std::uint16_t>(c);
      ++npiv;
    }
  }

  // One coefficient block for the whole batch. fill_random_bytes slices
  // each 32-bit Twister word into four bytes and discards the remainder
  // of a partial tail word, so a single fill of k*g bytes consumes the
  // exact byte stream of k successive g-byte fills iff g % 4 == 0; for
  // other g we fill row slices sequentially to keep recode_batch
  // draw-for-draw identical to k recode() calls. (If a rejection redraw
  // fires below — all present-pivot weights zero, probability 256^-rank —
  // the single-fill ordering appends the redraw instead of interleaving
  // it; k == 1 is always exactly equivalent.)
  std::uint8_t weights[kBatchCapacity * 256];
  const std::span<std::uint8_t> block(weights, k * g_);
  if (g_ % 4 == 0) {
    detail::fill_random_bytes(block, rng);
  } else {
    for (std::size_t j = 0; j < k; ++j) {
      detail::fill_random_bytes(block.subspan(j * g_, g_), rng);
    }
  }

  for (std::size_t j = 0; j < k; ++j) {
    std::uint8_t* w = weights + j * g_;
    // Redraw this row's slice if every weight on a present pivot came
    // out zero (recode()'s rejection loop).
    for (;;) {
      bool any = false;
      for (std::size_t i = 0; i < npiv; ++i) {
        if (w[cols[i]] != 0) {
          any = true;
          break;
        }
      }
      if (any) break;
      detail::fill_random_bytes(std::span<std::uint8_t>(w, g_), rng);
    }
    CodedPacket& pkt = out.emplace(g_, block_size_, pool_);
    pkt.session = session_;
    pkt.generation = generation_;
    const std::uint8_t* src[4];
    std::uint8_t c4[4];
    int m = 0;
    for (std::size_t i = 0; i < npiv; ++i) {
      if (w[cols[i]] == 0) continue;
      src[m] = rows[i];
      c4[m] = w[cols[i]];
      if (++m == 4) {
        gf::bulk_muladd_x4(pkt.row(), src, c4);
        m = 0;
      }
    }
    for (int t = 0; t < m; ++t) {
      gf::bulk_muladd(pkt.row(),
                      std::span<const std::uint8_t>(src[t], pkt.row().size()),
                      c4[t]);
    }
  }
}

std::vector<std::vector<std::uint8_t>> Decoder::recover() const {
  assert(complete());
  // Back-substitution: walk pivots from the last column to the first,
  // eliminating above-diagonal coefficients. Working rows are pooled
  // copies; each elimination is one fused op over [coeffs | payload].
  std::vector<CodedPacket> rows(g_);
  for (std::size_t c = 0; c < g_; ++c) rows[c] = *pivots_[c];
  for (std::size_t c = g_; c-- > 0;) {
    for (std::size_t r = 0; r < c; ++r) {
      const std::uint8_t f = rows[r].coeffs()[c];
      if (f == 0) continue;
      gf::bulk_muladd(rows[r].row(), rows[c].row(), f);
    }
  }
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(g_);
  for (auto& row : rows) {
    blocks.emplace_back(row.payload().begin(), row.payload().end());
  }
  return blocks;
}

}  // namespace ncfn::coding
