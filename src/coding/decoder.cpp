#include "coding/decoder.hpp"

#include <algorithm>
#include <cassert>

#include "gf/gf256.hpp"

namespace ncfn::coding {

Decoder::Decoder(SessionId session, GenerationId generation,
                 const CodingParams& params)
    : session_(session),
      generation_(generation),
      g_(params.generation_blocks),
      block_size_(params.block_size),
      pivots_(g_) {}

bool Decoder::add(const CodedPacket& pkt) {
  assert(pkt.session == session_ && pkt.generation == generation_);
  assert(pkt.coeffs.size() == g_ && pkt.payload.size() == block_size_);
  ++seen_;
  if (complete()) return false;

  Row row{pkt.coeffs, pkt.payload};
  // Forward-eliminate against existing pivots.
  for (std::size_t c = 0; c < g_; ++c) {
    const std::uint8_t lead = row.coeffs[c];
    if (lead == 0) continue;
    if (pivots_[c].has_value()) {
      const Row& p = *pivots_[c];
      gf::bulk_muladd(row.coeffs, p.coeffs, lead);
      gf::bulk_muladd(row.payload, p.payload, lead);
      continue;
    }
    // New pivot at column c: normalize leading coefficient to 1.
    if (lead != 1) {
      const std::uint8_t s = gf::inv(lead);
      gf::bulk_mul(row.coeffs, s);
      gf::bulk_mul(row.payload, s);
    }
    pivots_[c] = std::move(row);
    ++rank_;
    return true;
  }
  return false;  // reduced to zero: linearly dependent
}

CodedPacket Decoder::recode(std::mt19937& rng) const {
  assert(rank_ >= 1);
  std::uniform_int_distribution<int> dist(0, gf::kFieldSize - 1);
  CodedPacket out;
  out.session = session_;
  out.generation = generation_;
  out.coeffs.assign(g_, 0);
  out.payload.assign(block_size_, 0);
  bool any = false;
  while (!any) {
    std::fill(out.coeffs.begin(), out.coeffs.end(), 0);
    std::fill(out.payload.begin(), out.payload.end(), 0);
    for (const auto& p : pivots_) {
      if (!p.has_value()) continue;
      const auto r = static_cast<std::uint8_t>(dist(rng));
      if (r == 0) continue;
      any = true;
      gf::bulk_muladd(out.coeffs, p->coeffs, r);
      gf::bulk_muladd(out.payload, p->payload, r);
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Decoder::recover() const {
  assert(complete());
  // Back-substitution: walk pivots from the last column to the first,
  // eliminating above-diagonal coefficients.
  std::vector<Row> rows(g_);
  for (std::size_t c = 0; c < g_; ++c) rows[c] = *pivots_[c];
  for (std::size_t c = g_; c-- > 0;) {
    for (std::size_t r = 0; r < c; ++r) {
      const std::uint8_t f = rows[r].coeffs[c];
      if (f == 0) continue;
      gf::bulk_muladd(rows[r].coeffs, rows[c].coeffs, f);
      gf::bulk_muladd(rows[r].payload, rows[c].payload, f);
    }
  }
  std::vector<std::vector<std::uint8_t>> blocks;
  blocks.reserve(g_);
  for (auto& row : rows) blocks.push_back(std::move(row.payload));
  return blocks;
}

}  // namespace ncfn::coding
