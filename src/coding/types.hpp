// Basic identifiers and coding parameters shared by the data plane.
//
// Defaults follow Sec. III.B.1 of the paper: block size 1460 bytes (so a
// coded block + 12 B NC header + 8 B UDP + 20 B IP fits a 1500 B MTU with
// 4 blocks per generation), 4 blocks per generation (Fig. 4 shows the
// throughput peak there), and a FIFO buffer of 1024 generations per
// session (Fig. 5 shows larger buffers gain little).
#pragma once

#include <cstdint>

namespace ncfn::coding {

using SessionId = std::uint32_t;
using GenerationId = std::uint32_t;

inline constexpr std::size_t kDefaultBlockSize = 1460;
inline constexpr std::size_t kDefaultGenerationBlocks = 4;
inline constexpr std::size_t kDefaultBufferGenerations = 1024;

/// Per-system coding parameters, distributed to every coding function via
/// NC_SETTINGS at initialization (the paper assumes the same generation and
/// block sizes across all sessions).
struct CodingParams {
  std::size_t block_size = kDefaultBlockSize;        // bytes per block
  std::size_t generation_blocks = kDefaultGenerationBlocks;  // blocks per generation
  std::size_t buffer_generations = kDefaultBufferGenerations;

  /// Payload bytes carried by one full generation.
  [[nodiscard]] std::size_t generation_bytes() const {
    return block_size * generation_blocks;
  }
  /// NC header length: 8 bytes (session + generation ids) plus one
  /// coefficient per block in the generation.
  [[nodiscard]] std::size_t header_bytes() const {
    return 8 + generation_blocks;
  }
  /// Wire size of one coded packet (NC header + one coded block).
  [[nodiscard]] std::size_t packet_bytes() const {
    return header_bytes() + block_size;
  }
};

}  // namespace ncfn::coding
