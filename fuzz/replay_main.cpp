// ncfn-fuzz-replay — deterministic corpus replay driver.
//
// Linked with exactly one fuzz target's LLVMFuzzerTestOneInput, this main
// replays every file of the checked-in corpus directories given on the
// command line, in filename order, and prints one line per file:
//
//     <filename> <bytes> <behaviour-digest>
//
// plus a combined digest trailer. The output depends only on the corpus
// contents and the target's decisions — no paths, no timestamps — so two
// presets (default vs asan vs ubsan-strict) replaying the same corpus
// must produce byte-identical stdout. CI diffs them; any divergence means
// a parser behaves differently under instrumentation, which is exactly
// the bug class the differential harness exists to catch.
//
// Exit codes: 0 all files replayed, 2 usage/IO error (an empty or missing
// corpus is an error: a silently skipped corpus would read as coverage).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "harness.hpp"

namespace {

namespace fs = std::filesystem;

std::vector<fs::path> collect(const fs::path& root) {
  std::vector<fs::path> files;
  if (fs::is_regular_file(root)) {
    files.push_back(root);
    return files;
  }
  if (!fs::is_directory(root)) return files;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.filename().string() < b.filename().string();
            });
  return files;
}

bool read_file(const fs::path& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir|file>...\n", argv[0]);
    return 2;
  }
  std::uint64_t combined = ncfn::fuzzing::kFnvOffset;
  std::size_t replayed = 0;
  std::vector<std::uint8_t> bytes;
  for (int i = 1; i < argc; ++i) {
    const auto files = collect(argv[i]);
    if (files.empty()) {
      std::fprintf(stderr, "ncfn-fuzz-replay: no corpus files in %s\n",
                   argv[i]);
      return 2;
    }
    for (const fs::path& file : files) {
      if (!read_file(file, &bytes)) {
        std::fprintf(stderr, "ncfn-fuzz-replay: cannot read %s\n",
                     file.string().c_str());
        return 2;
      }
      ncfn::fuzzing::reset_digest();
      LLVMFuzzerTestOneInput(bytes.empty() ? nullptr : bytes.data(),
                             bytes.size());
      const std::uint64_t d = ncfn::fuzzing::digest();
      std::printf("%s %zu %016llx\n", file.filename().string().c_str(),
                  bytes.size(), static_cast<unsigned long long>(d));
      combined = ncfn::fuzzing::fold(combined, d);
      ++replayed;
    }
  }
  std::printf("ncfn-fuzz-replay: %zu file(s), combined %016llx\n", replayed,
              static_cast<unsigned long long>(combined));
  return 0;
}
