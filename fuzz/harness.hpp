// Shared scaffolding for the fuzz targets under fuzz/.
//
// Every target defines the libFuzzer entry point
//
//     extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t n);
//
// and is built two ways from the same source:
//
//   * `cmake --preset fuzz` (clang): linked with -fsanitize=fuzzer into a
//     coverage-guided fuzzer with ASan+UBSan — the exploration build;
//   * every other preset (gcc included): linked against replay_main.cpp
//     into a `fuzz_<target>_replay` binary that deterministically replays
//     the checked-in corpus under tests/corpus/<target>/ as a plain
//     `ctest -L fuzz` test — the regression build.
//
// Contract helpers:
//
//   check(cond, what)  — abort() with a message when a harness invariant
//     fails. abort() is what libFuzzer treats as a crash, so a violated
//     contract becomes a minimized reproducer instead of a green run.
//   note(v) / note_bytes(s) — fold parser outcomes into a per-input
//     FNV-1a digest. The replay driver prints one digest line per corpus
//     file, so `fuzz_<t>_replay` output is a behavioural fingerprint:
//     byte-comparing it across presets (default vs asan vs ubsan) proves
//     the parsers decide identically under every build. In the libFuzzer
//     build the digest is simply never read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string_view>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

// FNV-1a depends on 64-bit wraparound, which is well-defined for
// unsigned types but flagged by clang's optional unsigned-integer-
// overflow sanitizer (part of the ubsan-strict preset). The wrap here is
// the algorithm, not a bug — exempt exactly these fold functions.
#if defined(__clang__)
#define NCFN_FUZZ_WRAPS \
  __attribute__((no_sanitize("unsigned-integer-overflow")))
#else
#define NCFN_FUZZ_WRAPS
#endif

namespace ncfn::fuzzing {

inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t g_digest = kFnvOffset;  // NOLINT: per-input scratch

inline void reset_digest() noexcept { g_digest = kFnvOffset; }
[[nodiscard]] inline std::uint64_t digest() noexcept { return g_digest; }

/// FNV-1a fold of one 64-bit value into an accumulator.
NCFN_FUZZ_WRAPS inline std::uint64_t fold(std::uint64_t acc,
                                          std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    acc = (acc ^ ((v >> (8 * i)) & 0xffu)) * kFnvPrime;
  }
  return acc;
}

/// Fold one 64-bit observation into the input's behaviour digest.
inline void note(std::uint64_t v) noexcept { g_digest = fold(g_digest, v); }

NCFN_FUZZ_WRAPS inline void note_bytes(
    std::span<const std::uint8_t> s) noexcept {
  for (const std::uint8_t b : s) g_digest = (g_digest ^ b) * kFnvPrime;
}

NCFN_FUZZ_WRAPS inline void note_text(std::string_view s) noexcept {
  for (const char c : s) {
    g_digest = (g_digest ^ static_cast<std::uint8_t>(c)) * kFnvPrime;
  }
}

/// Abort (→ libFuzzer crash, replay failure) on a violated harness
/// contract. `what` names the broken invariant in the crash log.
inline void check(bool cond, const char* what) noexcept {
  if (cond) return;
  std::fprintf(stderr, "ncfn-fuzz: contract violated: %s\n", what);
  std::abort();
}

}  // namespace ncfn::fuzzing
